//! Export → import round-trip coverage over hand-built graphs exercising
//! every format feature: seeded and explicit-data weights, non-f32 weight
//! dtypes, multi-output nodes, inputs marked as outputs, multiple output
//! markings in order, seq-axis markings, and awkward names.

use dnnf_graph::{Graph, ValueKind};
use dnnf_io::{from_text, to_text};
use dnnf_ops::{Attrs, OpKind};
use dnnf_tensor::{DataType, Shape, Tensor};

/// Asserts the full round-trip contract: fingerprint identity, canonical
/// re-export byte identity, and preservation of everything the fingerprint
/// does not cover (name, seq axes, weight data bits).
fn assert_round_trips(graph: &Graph) -> Graph {
    let text = to_text(graph);
    let back = from_text(&text).unwrap_or_else(|e| panic!("import failed: {e}\n{text}"));
    assert_eq!(back.fingerprint(), graph.fingerprint(), "fingerprint drift");
    assert_eq!(to_text(&back), text, "canonical form is not stable");
    assert_eq!(back.name(), graph.name());
    assert_eq!(back.value_count(), graph.value_count());
    assert_eq!(back.node_count(), graph.node_count());
    for (v, b) in graph.values().zip(back.values()) {
        assert_eq!(v.name, b.name);
        assert_eq!(v.shape, b.shape);
        assert_eq!(v.dtype, b.dtype);
        assert_eq!(v.kind, b.kind);
        assert_eq!(graph.seq_axis(v.id), back.seq_axis(b.id));
        match (graph.weight_data(v.id), back.weight_data(b.id)) {
            (None, None) => {}
            (Some(a), Some(c)) => {
                assert_eq!(a.shape(), c.shape());
                assert_eq!(a.dtype(), c.dtype());
                let bits_a: Vec<u32> = a.data().iter().map(|x| x.to_bits()).collect();
                let bits_c: Vec<u32> = c.data().iter().map(|x| x.to_bits()).collect();
                assert_eq!(bits_a, bits_c, "weight `{}` data bits drifted", v.name);
            }
            _ => panic!("weight-data presence drifted for `{}`", v.name),
        }
    }
    back
}

#[test]
fn cnn_with_attrs_round_trips() {
    let mut g = Graph::new("toy-cnn");
    let x = g.add_input("x", Shape::new(vec![1, 3, 8, 8]));
    let w = g.add_weight("conv.w", Shape::new(vec![4, 3, 3, 3]));
    let b = g.add_weight("conv.b", Shape::new(vec![4]));
    let conv = g
        .add_op(
            OpKind::Conv,
            Attrs::new()
                .with_ints("pads", vec![1, 1, 1, 1])
                .with_ints("strides", vec![1, 1]),
            &[x, w, b],
            "conv1",
        )
        .unwrap()[0];
    let relu = g
        .add_op(OpKind::Relu, Attrs::new(), &[conv], "relu1")
        .unwrap()[0];
    g.mark_output(relu);
    assert_round_trips(&g);
}

#[test]
fn explicit_weight_data_round_trips_bit_exactly() {
    let mut g = Graph::new("data-weights");
    let x = g.add_input("x", Shape::new(vec![2, 4]));
    // Awkward bit patterns: negative zero, subnormal, infinity.
    let w = g.add_weight_with_data(
        "w",
        Tensor::from_vec(
            Shape::new(vec![4, 4]),
            vec![
                -0.0,
                f32::MIN_POSITIVE / 2.0,
                f32::INFINITY,
                1e-20,
                1.5,
                -2.5,
                0.0,
                3.25,
                -1.0,
                0.125,
                7.0,
                -0.5,
                2.0,
                4.0,
                8.0,
                16.0,
            ],
        )
        .unwrap(),
    );
    let y = g
        .add_op(OpKind::MatMul, Attrs::new(), &[x, w], "fc")
        .unwrap()[0];
    g.mark_output(y);
    let back = assert_round_trips(&g);
    // And the fingerprint actually depends on those bits.
    let mut other = from_text(&to_text(&g)).unwrap();
    let wid = other.values().find(|v| v.name == "w").unwrap().id;
    let mut flipped = other.weight_data(wid).unwrap().data().to_vec();
    flipped[0] = 42.0;
    other
        .set_weight_data(
            wid,
            Tensor::from_vec(Shape::new(vec![4, 4]), flipped).unwrap(),
        )
        .unwrap();
    assert_ne!(other.fingerprint(), back.fingerprint());
}

#[test]
fn non_f32_weight_dtype_round_trips() {
    let mut g = Graph::new("mask-weight");
    let x = g.add_input("x", Shape::new(vec![1, 4]));
    let mask = g.add_weight_with_data(
        "mask",
        Tensor::from_vec(Shape::new(vec![1, 4]), vec![0.0, 1.0, 1.0, 0.0])
            .unwrap()
            .with_dtype(DataType::Bool),
    );
    let y = g
        .add_op(OpKind::Mul, Attrs::new(), &[x, mask], "apply")
        .unwrap()[0];
    g.mark_output(y);
    let back = assert_round_trips(&g);
    let mid = back.values().find(|v| v.name == "mask").unwrap().id;
    assert_eq!(back.value(mid).dtype, DataType::Bool);
}

#[test]
fn multi_output_split_round_trips() {
    let mut g = Graph::new("split");
    let x = g.add_input("x", Shape::new(vec![2, 8]));
    let outs = g
        .add_op(
            OpKind::Split,
            Attrs::new()
                .with_int("axis", 1)
                .with_ints("split", vec![4, 4]),
            &[x],
            "split",
        )
        .unwrap();
    // Mark in reverse order: marking order is structural and must survive.
    g.mark_output(outs[1]);
    g.mark_output(outs[0]);
    let back = assert_round_trips(&g);
    let marked: Vec<usize> = back.outputs().iter().map(|v| v.index()).collect();
    assert_eq!(marked, vec![2, 1]);
}

#[test]
fn input_marked_as_output_round_trips() {
    let mut g = Graph::new("passthrough");
    let x = g.add_input("x", Shape::new(vec![4]));
    let y = g.add_op(OpKind::Relu, Attrs::new(), &[x], "act").unwrap()[0];
    g.mark_output(y);
    g.mark_output(x); // inputs keep ValueKind::Input but join the output list
    let back = assert_round_trips(&g);
    assert_eq!(back.value(back.inputs()[0]).kind, ValueKind::Input);
    assert_eq!(back.outputs().len(), 2);
}

#[test]
fn seq_axis_markings_round_trip_and_rebind() {
    let mut g = Graph::new("kv-frag");
    let q = g.add_input("q", Shape::new(vec![2, 1, 8]));
    let past = g.add_input("past", Shape::new(vec![2, 6, 8]));
    g.mark_seq_axis(past, 1).unwrap();
    let kt = g
        .add_op(
            OpKind::Transpose,
            Attrs::new().with_ints("perm", vec![0, 2, 1]),
            &[past],
            "kt",
        )
        .unwrap()[0];
    let scores = g
        .add_op(OpKind::MatMul, Attrs::new(), &[q, kt], "scores")
        .unwrap()[0];
    g.mark_output(scores);

    let back = assert_round_trips(&g);
    assert_eq!(back.seq_axis(back.inputs()[1]), Some(1));
    assert_eq!(back.seq_shape_signature(), g.seq_shape_signature());
    // The marking is live: the imported graph rebinds like the original.
    let rebound = back.with_seq_len(3).unwrap();
    assert_eq!(
        rebound.fingerprint(),
        g.with_seq_len(3).unwrap().fingerprint()
    );
}

#[test]
fn awkward_names_round_trip() {
    let mut g = Graph::new("spaces & ünïcode; 100%");
    let x = g.add_input("input with spaces", Shape::new(vec![2, 2]));
    let w = g.add_weight("w=eird;na,me", Shape::new(vec![2, 2]));
    let y = g
        .add_op(
            OpKind::Add,
            Attrs::new().with_str("note", "a;b,c=d e"),
            &[x, w],
            "na me",
        )
        .unwrap()[0];
    g.mark_output(y);
    let back = assert_round_trips(&g);
    assert_eq!(back.name(), "spaces & ünïcode; 100%");
    assert_eq!(back.value(back.inputs()[0]).name, "input with spaces");
}

#[test]
fn scalar_values_round_trip() {
    let mut g = Graph::new("scalars");
    let x = g.add_input("x", Shape::new(vec![4]));
    let s = g.add_weight_with_data(
        "scale",
        Tensor::from_vec(Shape::new(vec![]), vec![0.5]).unwrap(),
    );
    let y = g
        .add_op(OpKind::Mul, Attrs::new(), &[x, s], "scaled")
        .unwrap()[0];
    g.mark_output(y);
    assert_round_trips(&g);
}

#[test]
fn model_builders_round_trip() {
    // The full 15-model + decoder sweep lives in the workspace-root tests;
    // here a representative CNN and transformer plus the decoder pair keep
    // the crate's own suite self-contained.
    use dnnf_models::{decoder_prefill, decoder_step, DecoderConfig, ModelKind, ModelScale};
    let scale = ModelScale::tiny();
    for kind in [ModelKind::MobileNetV1Ssd, ModelKind::TinyBert] {
        let g = kind.build(scale).unwrap();
        assert_round_trips(&g);
    }
    let config = DecoderConfig::test_tiny();
    assert_round_trips(&decoder_prefill(&config, 5).unwrap());
    assert_round_trips(&decoder_step(&config, 7).unwrap());
}

#[test]
fn save_and_load_round_trip_through_disk() {
    let mut g = Graph::new("disk");
    let x = g.add_input("x", Shape::new(vec![2, 2]));
    let y = g.add_op(OpKind::Relu, Attrs::new(), &[x], "act").unwrap()[0];
    g.mark_output(y);
    let dir = std::env::temp_dir().join("dnnf-io-roundtrip-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("disk.dnnfg");
    dnnf_io::save(&g, &path).unwrap();
    let back = dnnf_io::load(&path).unwrap();
    assert_eq!(back.fingerprint(), g.fingerprint());
    std::fs::remove_file(&path).ok();
}
