//! # dnnfusion
//!
//! A comprehensive Rust reproduction of **DNNFusion: Accelerating Deep
//! Neural Networks Execution with Advanced Operator Fusion** (Niu et al.,
//! PLDI 2021).
//!
//! This facade crate re-exports the whole workspace so applications can pull
//! in one dependency:
//!
//! * [`tensor`] — dense tensors, shapes, layouts, broadcasting;
//! * [`ops`] — the ONNX-flavoured operator library with mapping types,
//!   mathematical properties, cost model and reference kernels;
//! * [`graph`] — the computational graph IR with shape inference;
//! * [`io`] — the versioned, checksummed `.dnnfg` text serialization with
//!   export/strict-import round-trip guarantees (spec:
//!   `docs/graph-format.md`);
//! * [`core`] — DNNFusion itself: the Extended Computational Graph, Table 3
//!   mapping analysis, graph rewriting, fusion plan generation, fused code
//!   generation and the end-to-end [`core::Compiler`];
//! * [`runtime`] — the executor, memory planner and fused-kernel interpreter;
//! * [`serve`] — the batched multi-tenant serving layer (request queue,
//!   worker pool, dynamic batching over one polymorphic plan per model);
//! * [`simdev`] — simulated mobile devices (cache hierarchy, cost model);
//! * [`profiledb`] — the offline profiling database;
//! * [`baselines`] — fixed-pattern fusion baselines and the TASO-like pass;
//! * [`models`] — structural builders for the 15 evaluated models.
//!
//! # Quickstart
//!
//! ```
//! use dnnfusion::core::{Compiler, CompilerOptions};
//! use dnnfusion::models::{ModelKind, ModelScale};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let graph = ModelKind::MobileNetV1Ssd.build(ModelScale::tiny())?;
//! let mut compiler = Compiler::new(CompilerOptions::default());
//! let compiled = compiler.compile(&graph)?;
//! assert!(compiled.stats.fusion_rate() > 1.5);
//! # Ok(())
//! # }
//! ```
//!
//! See the `examples/` directory for end-to-end walkthroughs and the
//! `dnnf-bench` crate for the binaries regenerating every table and figure
//! of the paper.

#![warn(missing_docs)]

/// Baseline fusion strategies (fixed-pattern fusers, TASO-like rewriting).
pub mod baselines {
    pub use dnnf_baselines::*;
}

/// DNNFusion's compiler: ECG, mapping analysis, rewriting, fusion planning,
/// code generation.
pub mod core {
    pub use dnnf_core::*;
}

/// Computational graph IR.
pub mod graph {
    pub use dnnf_graph::*;
}

/// `.dnnfg` graph serialization: versioned, checksummed text export and
/// strict import (see `docs/graph-format.md`).
pub mod io {
    pub use dnnf_io::*;
}

/// The 15 evaluated model architectures.
pub mod models {
    pub use dnnf_models::*;
}

/// ONNX-flavoured operator library.
pub mod ops {
    pub use dnnf_ops::*;
}

/// Offline profiling database.
pub mod profiledb {
    pub use dnnf_profiledb::*;
}

/// Executor, memory planner and fused-kernel interpreter.
pub mod runtime {
    pub use dnnf_runtime::*;
}

/// Batched multi-tenant serving layer (request queue, worker pool,
/// dynamic batching).
pub mod serve {
    pub use dnnf_serve::*;
}

/// Simulated mobile devices.
pub mod simdev {
    pub use dnnf_simdev::*;
}

/// Dense tensor substrate.
pub mod tensor {
    pub use dnnf_tensor::*;
}
