//! Graph construction and validation errors.

use std::fmt;

use dnnf_ops::OpError;

/// Errors raised while building or validating a computational graph.
#[derive(Debug, Clone, PartialEq)]
pub enum GraphError {
    /// A referenced value id does not exist in the graph.
    UnknownValue {
        /// The offending id (raw index).
        id: usize,
    },
    /// A referenced node id does not exist in the graph.
    UnknownNode {
        /// The offending id (raw index).
        id: usize,
    },
    /// Shape inference failed while adding a node.
    ShapeInference {
        /// Name of the node being added.
        node: String,
        /// Underlying operator error.
        source: OpError,
    },
    /// The graph failed validation (dangling values, cycles, …).
    Invalid {
        /// Human-readable explanation.
        reason: String,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::UnknownValue { id } => write!(f, "unknown value id {id}"),
            GraphError::UnknownNode { id } => write!(f, "unknown node id {id}"),
            GraphError::ShapeInference { node, source } => {
                write!(f, "shape inference failed for node `{node}`: {source}")
            }
            GraphError::Invalid { reason } => write!(f, "invalid graph: {reason}"),
        }
    }
}

impl std::error::Error for GraphError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            GraphError::ShapeInference { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl From<OpError> for GraphError {
    fn from(e: OpError) -> Self {
        GraphError::ShapeInference {
            node: "<unnamed>".into(),
            source: e,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnnf_ops::OpKind;

    #[test]
    fn display_is_informative() {
        let e = GraphError::UnknownValue { id: 3 };
        assert!(e.to_string().contains("3"));
        let e = GraphError::ShapeInference {
            node: "conv1".into(),
            source: OpError::Unsupported { op: OpKind::Einsum },
        };
        assert!(e.to_string().contains("conv1"));
        assert!(std::error::Error::source(&e).is_some());
    }

    #[test]
    fn error_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<GraphError>();
    }
}
