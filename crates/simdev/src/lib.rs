//! Simulated mobile devices for the DNNFusion reproduction.
//!
//! The paper evaluates on three phones (Samsung Galaxy S20 / Snapdragon 865,
//! Galaxy S10 / Snapdragon 855, Honor Magic 2 / Kirin 980), each with a
//! mobile CPU and a mobile GPU, and reports latency, memory accesses, cache
//! misses and processor utilization measured with the Snapdragon Profiler.
//! None of that hardware is available here, so this crate provides the
//! substitute: parametric [`DeviceSpec`]s with published peak-throughput /
//! bandwidth / cache figures, a set-associative [`CacheHierarchy`] simulator
//! (including TLBs) driven by the executor's real access trace, execution
//! [`Counters`], and a roofline-style [`DeviceCostModel`] that converts
//! work + traffic + kernel launches into latency and utilization estimates.
//!
//! The absolute numbers are estimates; what the substitution preserves is
//! the *relative* behaviour the paper's evaluation relies on — fewer
//! intermediate tensors mean fewer memory accesses and cache misses, fewer
//! kernel launches matter more on the GPU, and older devices with smaller
//! caches are more sensitive to fusion.

#![warn(missing_docs)]

mod cache;
mod cost;
mod counters;
mod device;

pub use cache::{CacheConfig, CacheHierarchy, CacheLevelConfig, CacheStats, TlbConfig};
pub use cost::{BlockWork, DeviceCostModel};
pub use counters::Counters;
pub use device::{DeviceKind, DeviceSpec, Phone};
