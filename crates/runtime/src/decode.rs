//! Autoregressive greedy decoding over a prefill/step model pair with an
//! `Arc`-backed KV cache.
//!
//! A [`DecodeSession`] drives the decode loop of a decoder built by
//! `dnnf-models::decoder` (or any pair honouring the same conventions):
//!
//! 1. **prefill** — one run of the prompt-length model produces the first
//!    greedy token and every layer's keys/values, which seed the cache;
//! 2. **step** — each further token runs the single-token model against
//!    the cached keys/values through [`Executor::run_compiled_seq`]: the
//!    cache tensors are shared into the engine as `Arc`s (no copying of a
//!    cache that grows every token) and the appended keys/values coming
//!    back *replace* the cache for the next step.
//!
//! The step model is compiled **once** through
//! [`PlanCache::compile_seq`](crate::PlanCache::compile_seq), so decoding
//! `T` tokens costs exactly one plan search — per step only cheap shape
//! inference + codegen run (cached per length on the model). Decoding is
//! greedy argmax over raw logits, which keeps the whole loop deterministic:
//! the token sequence is bit-identical across thread counts, scalar mode,
//! and — because prefill and step share every weight by name and masked
//! softmax terms are exactly zero — identical to recomputing the full
//! prefix from scratch at every position.
//!
//! # Graph conventions
//!
//! The session derives its wiring from the step graph rather than from
//! hard-coded names:
//!
//! * the step graph's **unmarked** inputs, in declaration order, are the
//!   token-id input and the position input, both shape `[1]`
//!   (integer-valued f32);
//! * its **seq-marked** inputs ([`dnnf_graph::Graph::mark_seq_axis`]), in
//!   declaration order, are per-layer `(past keys, past values)` pairs;
//! * outputs are `(appended keys, appended values)` per layer in the same
//!   order, with the logits tensor **last**;
//! * the prefill graph declares the same two unmarked inputs at prompt
//!   length `[P]` and the same output convention, and names its weights
//!   identically to the step graph.

use std::collections::HashMap;
use std::sync::Arc;

use dnnf_core::{CompiledModel, Compiler, LatencyModel};
use dnnf_graph::{Graph, GraphError};
use dnnf_tensor::{Shape, Tensor};

use crate::{Executor, PlanCache, RuntimeError};

/// Index of the first strict maximum of a logit row — the greedy decoding
/// rule. Ties break toward the lower index, so the result is a pure
/// function of the bits of `row`; shared by [`DecodeSession`] and the
/// recompute-from-scratch oracle in the determinism tests.
///
/// Returns 0 for an empty row (a decoder never produces one).
#[must_use]
pub fn greedy_argmax(row: &[f32]) -> usize {
    let mut best = 0;
    for (i, &x) in row.iter().enumerate().skip(1) {
        if x > row[best] {
            best = i;
        }
    }
    best
}

/// One layer's cached keys and values (`[heads, S, head_dim]` each).
struct LayerKv {
    k: Arc<Tensor>,
    v: Arc<Tensor>,
}

/// An autoregressive decoding session: a prefill/step model pair, the
/// per-layer KV cache, and the token history. See the module docs.
pub struct DecodeSession {
    executor: Executor,
    prefill: Arc<CompiledModel>,
    step: Arc<CompiledModel>,
    token_input: String,
    position_input: String,
    /// Per-layer `(past keys, past values)` input names, in layer order.
    past_inputs: Vec<(String, String)>,
    /// Empty until [`DecodeSession::prefill`] runs.
    kv: Vec<LayerKv>,
    /// Prompt tokens followed by every generated token.
    tokens: Vec<u32>,
}

fn invalid(reason: impl Into<String>) -> RuntimeError {
    RuntimeError::Graph(GraphError::Invalid {
        reason: reason.into(),
    })
}

impl DecodeSession {
    /// Builds a session over an already-compiled prefill/step pair. The
    /// step model should come from
    /// [`PlanCache::compile_seq`](crate::PlanCache::compile_seq) so that
    /// its single plan serves every cache length. Both models may be shared
    /// with other concurrently-running sessions — per-session state is only
    /// the cache and the token history.
    ///
    /// # Errors
    ///
    /// Returns a [`RuntimeError`] when either graph violates the decode
    /// conventions in the module docs.
    pub fn new(
        executor: Executor,
        prefill: Arc<CompiledModel>,
        step: Arc<CompiledModel>,
    ) -> Result<Self, RuntimeError> {
        let sg = step.graph();
        let mut unmarked = Vec::new();
        let mut marked = Vec::new();
        for &id in sg.inputs() {
            let value = sg.value(id);
            if sg.seq_axis(id).is_some() {
                marked.push(value.name.clone());
            } else {
                if value.shape.dims() != [1] {
                    return Err(invalid(format!(
                        "step input `{}` must have shape [1], got {:?}",
                        value.name,
                        value.shape.dims()
                    )));
                }
                unmarked.push(value.name.clone());
            }
        }
        let [token_input, position_input] = <[String; 2]>::try_from(unmarked).map_err(|names| {
            invalid(format!(
                "step graph must have exactly 2 unmarked inputs (token ids, positions), got {names:?}"
            ))
        })?;
        if marked.is_empty() || marked.len() % 2 != 0 {
            return Err(invalid(format!(
                "step graph must mark per-layer (past keys, past values) input pairs, got {} marked inputs",
                marked.len()
            )));
        }
        let past_inputs: Vec<(String, String)> = marked
            .chunks_exact(2)
            .map(|pair| (pair[0].clone(), pair[1].clone()))
            .collect();
        let expected_outputs = 2 * past_inputs.len() + 1;
        if sg.outputs().len() != expected_outputs {
            return Err(invalid(format!(
                "step graph must emit (keys, values) per layer then logits: expected {expected_outputs} outputs, got {}",
                sg.outputs().len()
            )));
        }
        let pg = prefill.graph();
        if pg.outputs().len() != expected_outputs {
            return Err(invalid(format!(
                "prefill graph must emit (keys, values) per layer then logits: expected {expected_outputs} outputs, got {}",
                pg.outputs().len()
            )));
        }
        let prefill_names: Vec<&str> = pg
            .inputs()
            .iter()
            .map(|&id| pg.value(id).name.as_str())
            .collect();
        if prefill_names != [token_input.as_str(), position_input.as_str()] {
            return Err(invalid(format!(
                "prefill graph inputs {prefill_names:?} do not match the step graph's `{token_input}`, `{position_input}`"
            )));
        }
        Ok(DecodeSession {
            executor,
            prefill,
            step,
            token_input,
            position_input,
            past_inputs,
            kv: Vec::new(),
            tokens: Vec::new(),
        })
    }

    /// Convenience constructor: compiles the prefill graph through
    /// [`PlanCache::compile_cached`](crate::PlanCache::compile_cached) and
    /// the step graph through
    /// [`PlanCache::compile_seq`](crate::PlanCache::compile_seq), then
    /// builds the session. Repeated calls with the same graphs hit the
    /// cache — further sessions cost no plan search at all.
    ///
    /// # Errors
    ///
    /// Propagates compilation errors and the convention checks of
    /// [`DecodeSession::new`].
    pub fn compile<L: LatencyModel>(
        executor: Executor,
        cache: &PlanCache,
        compiler: &mut Compiler<L>,
        prefill_graph: &Graph,
        step_graph: &Graph,
    ) -> Result<Self, RuntimeError> {
        let (prefill, _) = cache.compile_cached(compiler, prefill_graph)?;
        let (step, _) = cache.compile_seq(compiler, step_graph)?;
        DecodeSession::new(executor, prefill, step)
    }

    /// The prompt length the prefill model was compiled at.
    #[must_use]
    pub fn prompt_len(&self) -> usize {
        let pg = self.prefill.graph();
        pg.value(pg.inputs()[0]).shape.dim(0)
    }

    /// Prompt tokens followed by every generated token so far.
    #[must_use]
    pub fn tokens(&self) -> &[u32] {
        &self.tokens
    }

    /// Current KV-cache length (0 before [`DecodeSession::prefill`]).
    #[must_use]
    pub fn cache_len(&self) -> usize {
        self.kv.first().map_or(0, |layer| layer.k.shape().dim(1))
    }

    /// The compiled single-token step model (shared, seq-polymorphic).
    #[must_use]
    pub fn step_model(&self) -> &Arc<CompiledModel> {
        &self.step
    }

    /// The compiled prompt-length prefill model (shared).
    #[must_use]
    pub fn prefill_model(&self) -> &Arc<CompiledModel> {
        &self.prefill
    }

    /// Runs the prompt through the prefill model: seeds the KV cache with
    /// every layer's keys/values, records the prompt, and returns the first
    /// greedily-decoded token (already appended to the history). Calling it
    /// again restarts the session on the new prompt.
    ///
    /// # Errors
    ///
    /// Returns a [`RuntimeError`] when the prompt length differs from the
    /// length the prefill model was compiled at, or when execution fails.
    pub fn prefill(&mut self, prompt: &[u32]) -> Result<u32, RuntimeError> {
        let expected = self.prompt_len();
        if prompt.len() != expected {
            return Err(invalid(format!(
                "prompt has {} tokens but the prefill model was compiled for {expected}",
                prompt.len()
            )));
        }
        let as_f32 = |values: Vec<f32>| {
            Tensor::from_vec(Shape::new(vec![expected]), values).expect("length matches shape")
        };
        let mut inputs = HashMap::new();
        inputs.insert(
            self.token_input.clone(),
            as_f32(prompt.iter().map(|&t| t as f32).collect()),
        );
        inputs.insert(
            self.position_input.clone(),
            as_f32((0..expected).map(|p| p as f32).collect()),
        );
        let report = self.executor.run_compiled(&self.prefill, &inputs)?;
        self.tokens.clear();
        self.tokens.extend_from_slice(prompt);
        Ok(self.absorb(report.outputs))
    }

    /// Decodes one more token: runs the step model on the latest token
    /// against the cache, swaps the appended keys/values in as the new
    /// cache, and returns the greedily-decoded token (already appended to
    /// the history).
    ///
    /// # Errors
    ///
    /// Returns a [`RuntimeError`] when called before
    /// [`DecodeSession::prefill`], or when execution fails (e.g. the
    /// position embedding table is exhausted).
    pub fn step(&mut self) -> Result<u32, RuntimeError> {
        if self.kv.is_empty() {
            return Err(invalid("decode step before prefill"));
        }
        let pos = self.tokens.len() - 1;
        let scalar = |value: f32| {
            Arc::new(
                Tensor::from_vec(Shape::new(vec![1]), vec![value]).expect("length matches shape"),
            )
        };
        let mut inputs = HashMap::new();
        inputs.insert(self.token_input.clone(), scalar(self.tokens[pos] as f32));
        inputs.insert(self.position_input.clone(), scalar(pos as f32));
        for ((k_name, v_name), layer) in self.past_inputs.iter().zip(&self.kv) {
            inputs.insert(k_name.clone(), Arc::clone(&layer.k));
            inputs.insert(v_name.clone(), Arc::clone(&layer.v));
        }
        let report = self.executor.run_compiled_seq(&self.step, &inputs)?;
        Ok(self.absorb(report.outputs))
    }

    /// Prefills on `prompt` and keeps stepping until `generate` tokens have
    /// been produced; returns exactly the generated tokens.
    ///
    /// # Errors
    ///
    /// As for [`DecodeSession::prefill`] and [`DecodeSession::step`];
    /// `generate` must be at least 1.
    pub fn decode(&mut self, prompt: &[u32], generate: usize) -> Result<Vec<u32>, RuntimeError> {
        if generate == 0 {
            return Err(invalid("must generate at least one token"));
        }
        let mut out = Vec::with_capacity(generate);
        out.push(self.prefill(prompt)?);
        for _ in 1..generate {
            out.push(self.step()?);
        }
        Ok(out)
    }

    /// Installs a run's outputs: per-layer keys/values become the new cache
    /// and the greedy token of the **last** logit row joins the history.
    fn absorb(&mut self, outputs: Vec<Tensor>) -> u32 {
        let mut outputs = outputs.into_iter();
        self.kv = (0..self.past_inputs.len())
            .map(|_| LayerKv {
                k: Arc::new(outputs.next().expect("output arity validated")),
                v: Arc::new(outputs.next().expect("output arity validated")),
            })
            .collect();
        let logits = outputs.next().expect("output arity validated");
        let vocab = logits.shape().dim(logits.shape().rank() - 1);
        let data = logits.data();
        let token = greedy_argmax(&data[data.len() - vocab..]) as u32;
        self.tokens.push(token);
        token
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn greedy_argmax_takes_the_first_strict_maximum() {
        assert_eq!(greedy_argmax(&[0.0, 2.0, 1.0]), 1);
        assert_eq!(greedy_argmax(&[3.0, 3.0, 1.0]), 0); // tie -> lower index
        assert_eq!(greedy_argmax(&[-1.0]), 0);
        assert_eq!(greedy_argmax(&[]), 0);
        assert_eq!(greedy_argmax(&[f32::NEG_INFINITY, -5.0]), 1);
    }
}
