//! A dependency-free scoped-thread work pool for data-parallel kernels.
//!
//! The fused execution engine splits anchor kernels and scalar tapes over
//! threads by **output ownership**: every output element is computed, start
//! to finish, by exactly one thread, running the very same accumulation loop
//! the serial kernel runs. No reduction is ever split across threads
//! (never a split-K), so results are bit-identical for every thread count
//! and every task-to-thread assignment — determinism is structural, not a
//! property of scheduling.
//!
//! [`WorkPool`] is intentionally tiny: it carries a thread count and a
//! minimum-work threshold, and parallel regions are realized with
//! [`std::thread::scope`] (the build environment has no crate registry, so
//! no rayon). Threads are spawned per parallel region; the
//! [`WorkPool::for_work`] gate keeps small kernels serial so spawn latency
//! is only ever paid where the region is large enough to amortize it.

/// Work (roughly: scalar multiply-accumulates) below which a parallel region
/// is not worth its thread spawns. A region of this size runs in the low
/// hundreds of microseconds serially; scoped spawn + join of a few threads
/// costs tens of microseconds.
pub const DEFAULT_PARALLEL_WORK_GRAIN: usize = 1 << 18;

/// A scoped-thread work pool.
///
/// Copyable and allocation-free to hold; threads only exist for the duration
/// of each parallel region ([`WorkPool::run_parts`] /
/// [`WorkPool::run_chunks`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkPool {
    threads: usize,
    min_work: usize,
    simd: bool,
}

impl WorkPool {
    /// A pool that runs everything on the calling thread.
    #[must_use]
    pub const fn serial() -> Self {
        WorkPool {
            threads: 1,
            min_work: DEFAULT_PARALLEL_WORK_GRAIN,
            simd: true,
        }
    }

    /// A pool using up to `threads` threads (clamped to at least 1) with the
    /// default work gate.
    #[must_use]
    pub fn new(threads: usize) -> Self {
        WorkPool {
            threads: threads.max(1),
            ..WorkPool::serial()
        }
    }

    /// A pool with an explicit minimum-work gate. `min_work = 0` forces the
    /// parallel path regardless of region size — the differential tests use
    /// this to exercise the threaded kernels on small fixtures.
    #[must_use]
    pub fn with_min_work(threads: usize, min_work: usize) -> Self {
        WorkPool {
            threads: threads.max(1),
            min_work,
            simd: true,
        }
    }

    /// Enables or disables the lane-blocked (SIMD) kernel paths. Both paths
    /// are bit-identical by construction (lanes own whole output elements —
    /// see [`crate::simd`]); `simd = false` exists so differential suites
    /// can pin that equivalence and benches can measure the vectorization
    /// win (`ExecOptions::force_scalar` in `dnnf-runtime` maps here).
    #[must_use]
    pub const fn with_simd(mut self, simd: bool) -> Self {
        self.simd = simd;
        self
    }

    /// Whether kernels should take their lane-blocked (SIMD) paths.
    #[must_use]
    pub const fn use_simd(&self) -> bool {
        self.simd
    }

    /// A pool sized to the host's available parallelism.
    #[must_use]
    pub fn host() -> Self {
        let threads = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1);
        WorkPool::new(threads)
    }

    /// Number of threads parallel regions may use.
    #[must_use]
    pub const fn threads(&self) -> usize {
        self.threads
    }

    /// Whether this pool runs everything on the calling thread.
    #[must_use]
    pub const fn is_serial(&self) -> bool {
        self.threads <= 1
    }

    /// Gates a parallel region by its size: returns `self` when `work`
    /// (≈ scalar operations in the region) meets the pool's threshold, and a
    /// serial pool otherwise. Kernels call this before partitioning so tiny
    /// launches never pay thread-spawn latency.
    #[must_use]
    pub fn for_work(self, work: usize) -> WorkPool {
        if self.threads > 1 && work >= self.min_work {
            self
        } else {
            WorkPool { threads: 1, ..self }
        }
    }

    /// Runs `f` once per part, each part on exactly one thread. The caller
    /// prepares at most [`WorkPool::threads`] parts (one per worker); the
    /// first part runs on the calling thread while the rest run on scoped
    /// threads. With one part (or a serial pool) nothing is spawned.
    pub fn run_parts<T: Send>(&self, parts: Vec<T>, f: impl Fn(T) + Sync) {
        debug_assert!(parts.len() <= self.threads.max(1));
        if parts.len() <= 1 || self.is_serial() {
            for part in parts {
                f(part);
            }
            return;
        }
        std::thread::scope(|scope| {
            let f = &f;
            let mut rest = parts.into_iter();
            let local = rest.next().expect("more than one part");
            for part in rest {
                scope.spawn(move || f(part));
            }
            f(local);
        });
    }

    /// Splits `data` into consecutive chunks of `chunk_len` elements (the
    /// last may be shorter) and calls `f(chunk_index, chunk)` for each, with
    /// chunks distributed round-robin over the pool's threads. Chunk `i`
    /// always covers `data[i * chunk_len ..]` — the mapping from index to
    /// elements never depends on the thread count, and each chunk is written
    /// by exactly one thread.
    pub fn run_chunks(
        &self,
        data: &mut [f32],
        chunk_len: usize,
        f: impl Fn(usize, &mut [f32]) + Sync,
    ) {
        assert!(chunk_len > 0, "chunk_len must be positive");
        let chunks = data.len().div_ceil(chunk_len);
        let workers = self.threads.min(chunks).max(1);
        if workers <= 1 {
            for (i, chunk) in data.chunks_mut(chunk_len).enumerate() {
                f(i, chunk);
            }
            return;
        }
        let mut parts: Vec<Vec<(usize, &mut [f32])>> = (0..workers)
            .map(|_| Vec::with_capacity(chunks.div_ceil(workers)))
            .collect();
        for (i, chunk) in data.chunks_mut(chunk_len).enumerate() {
            parts[i % workers].push((i, chunk));
        }
        self.run_parts(parts, |part| {
            for (i, chunk) in part {
                f(i, chunk);
            }
        });
    }
}

impl Default for WorkPool {
    fn default() -> Self {
        WorkPool::serial()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn serial_pool_runs_on_the_calling_thread() {
        let pool = WorkPool::serial();
        assert!(pool.is_serial());
        let caller = std::thread::current().id();
        let mut data = vec![0.0f32; 10];
        pool.run_chunks(&mut data, 3, |i, chunk| {
            assert_eq!(std::thread::current().id(), caller);
            for v in chunk.iter_mut() {
                *v = i as f32;
            }
        });
        assert_eq!(data, vec![0.0, 0.0, 0.0, 1.0, 1.0, 1.0, 2.0, 2.0, 2.0, 3.0]);
    }

    #[test]
    fn chunks_cover_the_slice_exactly_once_under_parallelism() {
        let pool = WorkPool::with_min_work(8, 0);
        let mut data = vec![-1.0f32; 1000];
        pool.run_chunks(&mut data, 7, |i, chunk| {
            let base = i * 7;
            for (k, v) in chunk.iter_mut().enumerate() {
                *v = (base + k) as f32;
            }
        });
        for (k, &v) in data.iter().enumerate() {
            assert_eq!(v, k as f32);
        }
    }

    #[test]
    fn run_parts_executes_every_part() {
        let pool = WorkPool::with_min_work(4, 0);
        let counter = AtomicUsize::new(0);
        let parts: Vec<usize> = (0..4).collect();
        pool.run_parts(parts, |p| {
            counter.fetch_add(p + 1, Ordering::SeqCst);
        });
        assert_eq!(counter.load(Ordering::SeqCst), 1 + 2 + 3 + 4);
    }

    #[test]
    fn work_gate_serializes_small_regions() {
        let pool = WorkPool::new(8);
        assert!(pool.for_work(16).is_serial());
        assert_eq!(pool.for_work(DEFAULT_PARALLEL_WORK_GRAIN).threads(), 8);
        // An explicit zero gate always stays parallel.
        let eager = WorkPool::with_min_work(8, 0);
        assert_eq!(eager.for_work(0).threads(), 8);
        // Serial pools stay serial regardless of work size.
        assert!(WorkPool::serial().for_work(usize::MAX).is_serial());
    }

    #[test]
    fn chunk_count_caps_the_worker_count() {
        // Two chunks, eight threads: only two parts may be built; the
        // debug_assert in run_parts would catch an oversubscribed split.
        let pool = WorkPool::with_min_work(8, 0);
        let mut data = vec![0.0f32; 8];
        pool.run_chunks(&mut data, 4, |i, chunk| {
            for v in chunk.iter_mut() {
                *v = i as f32 + 1.0;
            }
        });
        assert_eq!(&data[..4], &[1.0; 4]);
        assert_eq!(&data[4..], &[2.0; 4]);
    }

    #[test]
    fn host_pool_reports_at_least_one_thread() {
        assert!(WorkPool::host().threads() >= 1);
        assert_eq!(WorkPool::default(), WorkPool::serial());
    }

    #[test]
    fn simd_flag_defaults_on_and_survives_gating() {
        assert!(WorkPool::serial().use_simd());
        assert!(WorkPool::new(4).use_simd());
        let scalar = WorkPool::new(4).with_simd(false);
        assert!(!scalar.use_simd());
        // The work-size gate must not re-enable the SIMD path.
        assert!(!scalar.for_work(0).use_simd());
        assert!(!scalar.for_work(usize::MAX).use_simd());
        assert!(scalar.with_simd(true).use_simd());
    }
}
