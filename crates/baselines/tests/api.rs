//! Integration tests exercising the `dnnf-baselines` public re-export
//! surface: every framework's pattern fuser produces a valid plan on a
//! representative graph, and the TASO-like pass preserves graph structure.

use dnnf_baselines::{taso_optimize, BaselineFramework, PatternConfig, PatternFuser};
use dnnf_core::{Ecg, FusionPlan};
use dnnf_graph::Graph;
use dnnf_ops::{Attrs, OpKind};
use dnnf_tensor::Shape;

/// A Conv → Add(bias) → ReLU → Sigmoid → Tanh chain: the prefix is the
/// pattern every fixed-pattern baseline recognises, the suffix separates the
/// frameworks that fuse trailing element-wise chains from those that don't.
fn conv_chain() -> Graph {
    let mut g = Graph::new("conv_chain");
    let x = g.add_input("x", Shape::new(vec![1, 4, 6, 6]));
    let w = g.add_weight("w", Shape::new(vec![4, 4, 3, 3]));
    let conv = g
        .add_op(
            OpKind::Conv,
            Attrs::new().with_ints("pads", vec![1, 1, 1, 1]),
            &[x, w],
            "conv",
        )
        .unwrap()[0];
    let b = g.add_weight("b", Shape::new(vec![1, 4, 1, 1]));
    let biased = g
        .add_op(OpKind::Add, Attrs::new(), &[conv, b], "bias")
        .unwrap()[0];
    let relu = g
        .add_op(OpKind::Relu, Attrs::new(), &[biased], "relu")
        .unwrap()[0];
    let sig = g
        .add_op(OpKind::Sigmoid, Attrs::new(), &[relu], "sig")
        .unwrap()[0];
    let tanh = g
        .add_op(OpKind::Tanh, Attrs::new(), &[sig], "tanh")
        .unwrap()[0];
    g.mark_output(tanh);
    g
}

#[test]
fn every_framework_produces_a_valid_plan() {
    let graph = conv_chain();
    let ecg = Ecg::new(graph.clone());
    let unfused_blocks = FusionPlan::singletons(&ecg).fused_layer_count();
    for &fw in BaselineFramework::all() {
        let plan = PatternFuser::for_framework(fw).plan(&ecg).unwrap();
        plan.validate(&graph).unwrap();
        assert!(
            plan.fused_layer_count() <= unfused_blocks,
            "{fw}: pattern fusion must never produce more blocks than unfused execution"
        );
        assert!(
            plan.fused_layer_count() >= 1,
            "{fw}: plan must cover the graph"
        );
    }
}

#[test]
fn every_framework_fuses_the_conv_bias_relu_prefix() {
    let graph = conv_chain();
    let ecg = Ecg::new(graph.clone());
    let unfused_blocks = FusionPlan::singletons(&ecg).fused_layer_count();
    for &fw in BaselineFramework::all() {
        let plan = PatternFuser::for_framework(fw).plan(&ecg).unwrap();
        // Conv+bias+activation is the one pattern all four frameworks share.
        assert!(
            plan.fused_layer_count() < unfused_blocks,
            "{fw}: expected at least the Conv+Add+ReLU pattern to fuse"
        );
        assert!(
            plan.multi_op_blocks() >= 1,
            "{fw}: expected a multi-operator block"
        );
    }
}

#[test]
fn framework_metadata_is_consistent() {
    assert_eq!(BaselineFramework::all().len(), 4);
    for &fw in BaselineFramework::all() {
        assert!(!fw.name().is_empty());
        assert_eq!(format!("{fw}"), fw.name());
        // `PatternFuser::for_framework` must agree with the standalone config
        // constructor it is documented to wrap.
        let via_fuser = PatternFuser::for_framework(fw);
        let via_config = PatternFuser::new(PatternConfig::for_framework(fw));
        assert_eq!(via_fuser.config(), via_config.config());
    }
}

#[test]
fn taso_pass_preserves_interface_and_reports_rewrites() {
    let graph = conv_chain();
    let (optimized, rewrites) = taso_optimize(&graph);
    assert_eq!(optimized.inputs().len(), graph.inputs().len());
    assert_eq!(optimized.outputs().len(), graph.outputs().len());
    // A plain conv chain offers no substitution opportunities, so the pass
    // must leave it alone rather than inventing rewrites.
    assert_eq!(rewrites, 0);
    assert_eq!(optimized.node_count(), graph.node_count());
}
