//! Error type for operator shape inference and execution.

use std::fmt;

use dnnf_tensor::TensorError;

use crate::OpKind;

/// Errors raised by shape inference, cost estimation or kernel execution.
#[derive(Debug, Clone, PartialEq)]
pub enum OpError {
    /// The operator received the wrong number of inputs.
    ArityMismatch {
        /// Operator concerned.
        op: OpKind,
        /// Expected input count (minimum).
        expected: usize,
        /// Actual input count.
        actual: usize,
    },
    /// An input shape is invalid for the operator.
    InvalidShape {
        /// Operator concerned.
        op: OpKind,
        /// Human-readable explanation.
        reason: String,
    },
    /// A required attribute is missing or malformed.
    InvalidAttribute {
        /// Operator concerned.
        op: OpKind,
        /// Attribute name.
        name: String,
        /// Human-readable explanation.
        reason: String,
    },
    /// The reference kernel for this operator is not implemented.
    Unsupported {
        /// Operator concerned.
        op: OpKind,
    },
    /// An underlying tensor operation failed.
    Tensor(TensorError),
}

impl fmt::Display for OpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OpError::ArityMismatch {
                op,
                expected,
                actual,
            } => {
                write!(f, "{op} expects at least {expected} inputs, got {actual}")
            }
            OpError::InvalidShape { op, reason } => write!(f, "{op}: invalid shape: {reason}"),
            OpError::InvalidAttribute { op, name, reason } => {
                write!(f, "{op}: invalid attribute `{name}`: {reason}")
            }
            OpError::Unsupported { op } => write!(f, "{op}: reference kernel not implemented"),
            OpError::Tensor(e) => write!(f, "tensor error: {e}"),
        }
    }
}

impl std::error::Error for OpError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            OpError::Tensor(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TensorError> for OpError {
    fn from(e: TensorError) -> Self {
        OpError::Tensor(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_operator() {
        let e = OpError::ArityMismatch {
            op: OpKind::Conv,
            expected: 2,
            actual: 1,
        };
        assert!(e.to_string().contains("Conv"));
        let e = OpError::Unsupported { op: OpKind::Einsum };
        assert!(e.to_string().contains("not implemented"));
    }

    #[test]
    fn tensor_errors_convert() {
        let te = TensorError::ReshapeMismatch { from: 2, to: 3 };
        let oe: OpError = te.clone().into();
        assert_eq!(oe, OpError::Tensor(te));
    }

    #[test]
    fn error_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<OpError>();
    }
}
