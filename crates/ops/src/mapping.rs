//! The five mapping types of DNNFusion (paper §3.1, Table 2).
//!
//! A mapping type describes the relationship between input elements and
//! output elements of an operator. It is the abstraction that replaces
//! per-operator fusion patterns: the fusion legality/profitability analysis
//! (paper Table 3, implemented in `dnnf-core`) is defined purely over pairs
//! of mapping types.

use std::fmt;

/// Relationship between an operator's input elements and output elements.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MappingType {
    /// Each output element is computed from exactly one input element
    /// (e.g. `Add`, `Relu`, `Sigmoid`).
    OneToOne,
    /// One input element contributes to many output elements
    /// (e.g. `Expand`, `Gather`, broadcasted element-wise ops).
    OneToMany,
    /// Many input elements contribute to one or many output elements
    /// (e.g. `Conv`, `GEMM`, reductions, `Softmax`). Includes Many-to-One.
    ManyToMany,
    /// A pure re-interpretation of the data's dimensionality with a 1-1
    /// element mapping and unchanged element order (e.g. `Reshape`, `Flatten`).
    Reorganize,
    /// A 1-1 element mapping whose index function is a permutation of the
    /// dimensions (e.g. `Transpose`, `DepthToSpace`).
    Shuffle,
}

impl MappingType {
    /// All five mapping types, in the paper's order of increasing
    /// *transformation impedance*.
    #[must_use]
    pub fn all() -> &'static [MappingType] {
        &[
            MappingType::OneToOne,
            MappingType::Reorganize,
            MappingType::Shuffle,
            MappingType::OneToMany,
            MappingType::ManyToMany,
        ]
    }

    /// Transformation impedance (paper §3.2): the capability of a mapping
    /// type to decide the fused mapping type when combined with another.
    ///
    /// `One-to-One < (Reorganize, Shuffle) < (One-to-Many, Many-to-Many)`;
    /// Reorganize/Shuffle share a level, as do One-to-Many/Many-to-Many.
    #[must_use]
    pub fn impedance(self) -> u8 {
        match self {
            MappingType::OneToOne => 0,
            MappingType::Reorganize | MappingType::Shuffle => 1,
            MappingType::OneToMany | MappingType::ManyToMany => 2,
        }
    }

    /// Complexity used when an operator has several input/output pairs with
    /// different mapping types: the most complex one wins (paper footnote 1:
    /// One-to-One < Reorganize < Shuffle < One-to-Many < Many-to-Many).
    #[must_use]
    pub fn complexity(self) -> u8 {
        match self {
            MappingType::OneToOne => 0,
            MappingType::Reorganize => 1,
            MappingType::Shuffle => 2,
            MappingType::OneToMany => 3,
            MappingType::ManyToMany => 4,
        }
    }

    /// Picks the more complex of two mapping types (used when an operator has
    /// multiple heterogeneous input/output pairs).
    #[must_use]
    pub fn max_complexity(self, other: MappingType) -> MappingType {
        if self.complexity() >= other.complexity() {
            self
        } else {
            other
        }
    }

    /// Whether this type preserves a 1-1 correspondence between input and
    /// output elements (One-to-One, Reorganize and Shuffle all do).
    #[must_use]
    pub fn is_one_to_one_correspondence(self) -> bool {
        matches!(
            self,
            MappingType::OneToOne | MappingType::Reorganize | MappingType::Shuffle
        )
    }

    /// Short name as used in the paper's tables.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            MappingType::OneToOne => "One-to-One",
            MappingType::OneToMany => "One-to-Many",
            MappingType::ManyToMany => "Many-to-Many",
            MappingType::Reorganize => "Reorganize",
            MappingType::Shuffle => "Shuffle",
        }
    }
}

impl fmt::Display for MappingType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn impedance_ordering_matches_paper() {
        assert!(MappingType::OneToOne.impedance() < MappingType::Reorganize.impedance());
        assert_eq!(
            MappingType::Reorganize.impedance(),
            MappingType::Shuffle.impedance()
        );
        assert!(MappingType::Shuffle.impedance() < MappingType::OneToMany.impedance());
        assert_eq!(
            MappingType::OneToMany.impedance(),
            MappingType::ManyToMany.impedance()
        );
    }

    #[test]
    fn complexity_ordering_matches_footnote() {
        let order = [
            MappingType::OneToOne,
            MappingType::Reorganize,
            MappingType::Shuffle,
            MappingType::OneToMany,
            MappingType::ManyToMany,
        ];
        for w in order.windows(2) {
            assert!(w[0].complexity() < w[1].complexity());
        }
    }

    #[test]
    fn max_complexity_selects_more_complex() {
        assert_eq!(
            MappingType::OneToOne.max_complexity(MappingType::ManyToMany),
            MappingType::ManyToMany
        );
        assert_eq!(
            MappingType::Shuffle.max_complexity(MappingType::Reorganize),
            MappingType::Shuffle
        );
    }

    #[test]
    fn one_to_one_correspondence_classification() {
        assert!(MappingType::OneToOne.is_one_to_one_correspondence());
        assert!(MappingType::Reorganize.is_one_to_one_correspondence());
        assert!(MappingType::Shuffle.is_one_to_one_correspondence());
        assert!(!MappingType::OneToMany.is_one_to_one_correspondence());
        assert!(!MappingType::ManyToMany.is_one_to_one_correspondence());
    }

    #[test]
    fn all_lists_five_types() {
        assert_eq!(MappingType::all().len(), 5);
    }

    #[test]
    fn display_matches_paper_names() {
        assert_eq!(MappingType::ManyToMany.to_string(), "Many-to-Many");
        assert_eq!(MappingType::Reorganize.to_string(), "Reorganize");
    }
}
