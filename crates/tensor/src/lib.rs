//! Dense tensor substrate for the DNNFusion reproduction.
//!
//! This crate provides the minimal-but-complete tensor machinery the rest of
//! the workspace is built on: [`Shape`] with stride/broadcast logic,
//! [`Layout`] descriptors for the data formats the inter-block optimization
//! chooses between, a dense row-major [`Tensor`] of `f32` elements, and
//! multi-dimensional index iteration used by the reference kernels and the
//! fused-kernel interpreter.
//!
//! # Example
//!
//! ```
//! use dnnf_tensor::{Shape, Tensor};
//!
//! # fn main() -> Result<(), dnnf_tensor::TensorError> {
//! let a = Tensor::from_vec(Shape::new(vec![2, 3]), vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0])?;
//! let b = Tensor::full(Shape::new(vec![2, 3]), 2.0);
//! let sum: f32 = a.iter().zip(b.iter()).map(|(x, y)| x + y).sum();
//! assert_eq!(sum, 33.0);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

mod broadcast;
mod dtype;
mod error;
mod index;
mod layout;
mod shape;
mod tensor;

pub use broadcast::{broadcast_index, broadcast_shapes};
pub use dtype::DataType;
pub use error::TensorError;
pub use index::IndexIter;
pub use layout::Layout;
pub use shape::Shape;
pub use tensor::Tensor;
