//! Minimal, dependency-free shim of the parts of the `rand` crate API that
//! this workspace uses. The build environment has no registry access, so the
//! workspace vendors this crate and path-depends on it under the name `rand`.
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — deterministic,
//! fast, and of ample statistical quality for test-data generation. It is
//! **not** the real `rand` crate: streams differ from upstream `StdRng`, and
//! only the API surface actually exercised here is provided ([`SeedableRng`],
//! [`RngCore`], [`Rng::gen_range`], [`distributions::Uniform`]).

#![warn(missing_docs)]

/// Core trait for random number generators: raw integer output.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// A generator that can be deterministically constructed from a seed.
pub trait SeedableRng: Sized {
    /// Creates a generator whose stream is fully determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Convenience extension methods over [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value uniformly from `range` (half-open).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: distributions::uniform::SampleUniform,
        R: Into<distributions::Uniform<T>>,
        Self: Sized,
    {
        use distributions::Distribution;
        range.into().sample(self)
    }
}

impl<T: RngCore> Rng for T {}

pub mod rngs {
    //! Concrete generator types.

    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator standing in for `rand::rngs::StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub mod distributions {
    //! Sampling distributions.

    use super::RngCore;

    /// A distribution over values of type `T`.
    pub trait Distribution<T> {
        /// Draws one sample using `rng`.
        fn sample<R: RngCore>(&self, rng: &mut R) -> T;
    }

    /// Uniform distribution over a half-open range `[low, high)`.
    #[derive(Debug, Clone, Copy)]
    pub struct Uniform<T> {
        low: T,
        high: T,
    }

    impl<T: uniform::SampleUniform> Uniform<T> {
        /// Creates a uniform distribution over `[low, high)`.
        ///
        /// # Panics
        /// Panics if `low >= high`.
        pub fn new(low: T, high: T) -> Self {
            assert!(low < high, "Uniform::new requires low < high");
            Uniform { low, high }
        }
    }

    impl<T: uniform::SampleUniform> From<core::ops::Range<T>> for Uniform<T> {
        fn from(range: core::ops::Range<T>) -> Self {
            Uniform::new(range.start, range.end)
        }
    }

    impl<T: uniform::SampleUniform> Distribution<T> for Uniform<T> {
        fn sample<R: RngCore>(&self, rng: &mut R) -> T {
            T::sample_uniform(&self.low, &self.high, rng)
        }
    }

    pub mod uniform {
        //! Support traits for uniform sampling.

        use super::super::RngCore;

        /// Types that can be sampled uniformly from a half-open range.
        pub trait SampleUniform: PartialOrd + Copy {
            /// Draws a value in `[low, high)`.
            fn sample_uniform<R: RngCore>(low: &Self, high: &Self, rng: &mut R) -> Self;
        }

        macro_rules! impl_sample_uniform_int {
            ($($t:ty),*) => {$(
                impl SampleUniform for $t {
                    fn sample_uniform<R: RngCore>(low: &Self, high: &Self, rng: &mut R) -> Self {
                        let span = (*high as i128 - *low as i128) as u128;
                        // Modulo bias is negligible for the small spans used
                        // in tests (span << 2^64).
                        let draw = (rng.next_u64() as u128) % span;
                        (*low as i128 + draw as i128) as $t
                    }
                }
            )*};
        }

        impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

        impl SampleUniform for f32 {
            fn sample_uniform<R: RngCore>(low: &Self, high: &Self, rng: &mut R) -> Self {
                // 24 random mantissa bits -> uniform in [0, 1). The final
                // rounding of the affine map can still land on `high` (e.g.
                // 1.0 + 0.99999994 ties-to-even up to 2.0), so clamp to keep
                // the half-open contract.
                let unit = (rng.next_u32() >> 8) as f32 / (1u32 << 24) as f32;
                (low + (high - low) * unit).min(high.next_down())
            }
        }

        impl SampleUniform for f64 {
            fn sample_uniform<R: RngCore>(low: &Self, high: &Self, rng: &mut R) -> Self {
                let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
                (low + (high - low) * unit).min(high.next_down())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::distributions::{Distribution, Uniform};
    use super::rngs::StdRng;
    use super::SeedableRng;

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let dist = Uniform::new(-1.0f32, 1.0f32);
        for _ in 0..100 {
            assert_eq!(dist.sample(&mut a), dist.sample(&mut b));
        }
    }

    #[test]
    fn uniform_f32_stays_in_range() {
        let mut rng = StdRng::seed_from_u64(7);
        let dist = Uniform::new(-1.0f32, 1.0f32);
        for _ in 0..10_000 {
            let v = dist.sample(&mut rng);
            assert!((-1.0..1.0).contains(&v));
        }
    }

    #[test]
    fn uniform_int_stays_in_range() {
        let mut rng = StdRng::seed_from_u64(7);
        let dist = Uniform::new(3usize, 9usize);
        for _ in 0..10_000 {
            let v = dist.sample(&mut rng);
            assert!((3..9).contains(&v));
        }
    }

    #[test]
    fn float_uniform_never_returns_high_even_on_the_maximum_draw() {
        // A generator pinned at the all-ones draw produces the largest
        // possible `unit`; without clamping, 1.0..2.0 would round to 2.0.
        struct MaxRng;
        impl super::RngCore for MaxRng {
            fn next_u64(&mut self) -> u64 {
                u64::MAX
            }
        }
        let f32_dist = Uniform::new(1.0f32, 2.0f32);
        assert!(f32_dist.sample(&mut MaxRng) < 2.0);
        let f64_dist = Uniform::new(1.0f64, 2.0f64);
        assert!(f64_dist.sample(&mut MaxRng) < 2.0);
        // Adjacent floats: the only representable value in range is `low`.
        let lo = 1.0f32;
        let hi = f32::from_bits(lo.to_bits() + 1);
        assert_eq!(Uniform::new(lo, hi).sample(&mut MaxRng), lo);
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        use super::RngCore;
        assert_ne!(a.next_u64(), b.next_u64());
    }
}
