//! Criterion benchmarks of compilation time: graph rewriting, fusion plan
//! generation and full DNNFusion compilation versus the fixed-pattern
//! baseline planner (complements Figure 9b, which additionally models the
//! on-device profiling/tuning cost).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dnnf_baselines::{BaselineFramework, PatternFuser};
use dnnf_core::{Compiler, CompilerOptions, Ecg};
use dnnf_models::{ModelKind, ModelScale};

fn bench_compilation(c: &mut Criterion) {
    let mut group = c.benchmark_group("compilation");
    group.sample_size(10);
    for kind in [
        ModelKind::Vgg16,
        ModelKind::MobileNetV1Ssd,
        ModelKind::TinyBert,
    ] {
        let graph = kind.build(ModelScale::tiny()).expect("model builds");
        group.bench_with_input(
            BenchmarkId::new("dnnfusion", kind.name()),
            &graph,
            |b, g| {
                b.iter(|| {
                    let mut compiler = Compiler::new(CompilerOptions::default());
                    compiler.compile(g).expect("compiles")
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("fixed-pattern", kind.name()),
            &graph,
            |b, g| {
                b.iter(|| {
                    let ecg = Ecg::new(g.clone());
                    PatternFuser::for_framework(BaselineFramework::Tvm)
                        .plan(&ecg)
                        .expect("plans")
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("rewriting-only", kind.name()),
            &graph,
            |b, g| {
                b.iter(|| {
                    let mut compiler = Compiler::new(CompilerOptions::rewriting_only());
                    compiler.compile(g).expect("compiles")
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_compilation);
criterion_main!(benches);
