//! Property-based tests for operator kernels and shape inference.

use dnnf_ops::{execute, infer_shapes, Attrs, OpKind};
use dnnf_tensor::{Shape, Tensor};
use proptest::prelude::*;

fn small_dims() -> impl Strategy<Value = Vec<usize>> {
    prop::collection::vec(1usize..5, 1..4)
}

proptest! {
    #[test]
    fn kernel_outputs_match_inferred_shapes_for_unary(dims in small_dims(), seed in 0u64..500) {
        let x = Tensor::random(Shape::new(dims), seed);
        for op in [OpKind::Relu, OpKind::Sigmoid, OpKind::Exp, OpKind::Abs, OpKind::Square] {
            let inferred = infer_shapes(op, &Attrs::new(), &[x.shape().clone()]).unwrap();
            let out = execute(op, &Attrs::new(), &[&x]).unwrap();
            prop_assert_eq!(out[0].shape(), &inferred[0]);
        }
    }

    #[test]
    fn add_and_mul_are_commutative(dims in small_dims(), seed in 0u64..500) {
        let shape = Shape::new(dims);
        let a = Tensor::random(shape.clone(), seed);
        let b = Tensor::random(shape, seed.wrapping_add(7));
        for op in [OpKind::Add, OpKind::Mul, OpKind::Min, OpKind::Max] {
            let ab = execute(op, &Attrs::new(), &[&a, &b]).unwrap();
            let ba = execute(op, &Attrs::new(), &[&b, &a]).unwrap();
            prop_assert!(ab[0].allclose(&ba[0], 1e-6));
        }
    }

    #[test]
    fn mul_distributes_over_add(dims in small_dims(), seed in 0u64..500) {
        // The identity behind the paper's Distributive rewrite rules:
        // A⊙C + B⊙C == (A + B)⊙C.
        let shape = Shape::new(dims);
        let a = Tensor::random(shape.clone(), seed);
        let b = Tensor::random(shape.clone(), seed.wrapping_add(1));
        let c = Tensor::random(shape, seed.wrapping_add(2));
        let ac = execute(OpKind::Mul, &Attrs::new(), &[&a, &c]).unwrap();
        let bc = execute(OpKind::Mul, &Attrs::new(), &[&b, &c]).unwrap();
        let lhs = execute(OpKind::Add, &Attrs::new(), &[&ac[0], &bc[0]]).unwrap();
        let ab = execute(OpKind::Add, &Attrs::new(), &[&a, &b]).unwrap();
        let rhs = execute(OpKind::Mul, &Attrs::new(), &[&ab[0], &c]).unwrap();
        prop_assert!(lhs[0].allclose(&rhs[0], 1e-4));
    }

    #[test]
    fn reduce_sum_equals_manual_sum(dims in small_dims(), seed in 0u64..500) {
        let x = Tensor::random(Shape::new(dims), seed);
        let out = execute(OpKind::ReduceSum, &Attrs::new().with_int("keepdims", 0), &[&x]).unwrap();
        let expected: f32 = x.iter().sum();
        prop_assert!((out[0].data()[0] - expected).abs() < 1e-3);
    }

    #[test]
    fn softmax_outputs_are_a_distribution(rows in 1usize..5, cols in 1usize..8, seed in 0u64..500) {
        let x = Tensor::random(Shape::new(vec![rows, cols]), seed);
        let out = execute(OpKind::Softmax, &Attrs::new(), &[&x]).unwrap();
        for r in 0..rows {
            let sum: f32 = (0..cols).map(|c| out[0].at(&[r, c]).unwrap()).sum();
            prop_assert!((sum - 1.0).abs() < 1e-4);
            for c in 0..cols {
                prop_assert!(out[0].at(&[r, c]).unwrap() >= 0.0);
            }
        }
    }

    #[test]
    fn transpose_roundtrips_through_kernel(dims in prop::collection::vec(1usize..5, 2..4), seed in 0u64..500) {
        let x = Tensor::random(Shape::new(dims.clone()), seed);
        let perm: Vec<i64> = (0..dims.len() as i64).rev().collect();
        let attrs = Attrs::new().with_ints("perm", perm.clone());
        let once = execute(OpKind::Transpose, &attrs, &[&x]).unwrap();
        let twice = execute(OpKind::Transpose, &attrs, &[&once[0]]).unwrap();
        prop_assert_eq!(&twice[0], &x);
    }

    #[test]
    fn maxpool_never_exceeds_input_max(h in 2usize..7, w in 2usize..7, seed in 0u64..500) {
        let x = Tensor::random(Shape::new(vec![1, 2, h, w]), seed);
        let attrs = Attrs::new().with_ints("kernel_shape", vec![2, 2]).with_ints("strides", vec![1, 1]);
        let out = execute(OpKind::MaxPool, &attrs, &[&x]).unwrap();
        let input_max = x.iter().fold(f32::NEG_INFINITY, |a, &b| a.max(b));
        for &v in out[0].iter() {
            prop_assert!(v <= input_max + 1e-6);
        }
    }

    #[test]
    fn gemm_is_linear_in_first_argument(m in 1usize..4, k in 1usize..4, n in 1usize..4, seed in 0u64..200) {
        let a1 = Tensor::random(Shape::new(vec![m, k]), seed);
        let a2 = Tensor::random(Shape::new(vec![m, k]), seed.wrapping_add(3));
        let b = Tensor::random(Shape::new(vec![k, n]), seed.wrapping_add(5));
        let sum_a = execute(OpKind::Add, &Attrs::new(), &[&a1, &a2]).unwrap();
        let lhs = execute(OpKind::Gemm, &Attrs::new(), &[&sum_a[0], &b]).unwrap();
        let p1 = execute(OpKind::Gemm, &Attrs::new(), &[&a1, &b]).unwrap();
        let p2 = execute(OpKind::Gemm, &Attrs::new(), &[&a2, &b]).unwrap();
        let rhs = execute(OpKind::Add, &Attrs::new(), &[&p1[0], &p2[0]]).unwrap();
        prop_assert!(lhs[0].allclose(&rhs[0], 1e-3));
    }
}
