//! Runtime errors.

use std::fmt;

use dnnf_core::CoreError;
use dnnf_graph::GraphError;
use dnnf_ops::OpError;

/// Errors raised while executing a model.
#[derive(Debug, Clone, PartialEq)]
pub enum RuntimeError {
    /// A graph input was not provided (or has the wrong shape).
    MissingInput {
        /// Name of the missing input.
        name: String,
    },
    /// A provided input's shape does not match the graph's declaration.
    InputShapeMismatch {
        /// Input name.
        name: String,
        /// Expected dims.
        expected: Vec<usize>,
        /// Provided dims.
        actual: Vec<usize>,
    },
    /// A kernel failed during execution.
    Kernel(OpError),
    /// The underlying graph or plan is malformed.
    Graph(GraphError),
    /// A compilation-layer invariant was violated.
    Core(CoreError),
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::MissingInput { name } => write!(f, "missing input tensor `{name}`"),
            RuntimeError::InputShapeMismatch {
                name,
                expected,
                actual,
            } => {
                write!(
                    f,
                    "input `{name}` expects shape {expected:?}, got {actual:?}"
                )
            }
            RuntimeError::Kernel(e) => write!(f, "kernel error: {e}"),
            RuntimeError::Graph(e) => write!(f, "graph error: {e}"),
            RuntimeError::Core(e) => write!(f, "compiler error: {e}"),
        }
    }
}

impl std::error::Error for RuntimeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RuntimeError::Kernel(e) => Some(e),
            RuntimeError::Graph(e) => Some(e),
            RuntimeError::Core(e) => Some(e),
            _ => None,
        }
    }
}

impl From<OpError> for RuntimeError {
    fn from(e: OpError) -> Self {
        RuntimeError::Kernel(e)
    }
}

impl From<GraphError> for RuntimeError {
    fn from(e: GraphError) -> Self {
        RuntimeError::Graph(e)
    }
}

impl From<CoreError> for RuntimeError {
    fn from(e: CoreError) -> Self {
        RuntimeError::Core(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_conversions() {
        let e = RuntimeError::MissingInput { name: "x".into() };
        assert!(e.to_string().contains("x"));
        let e: RuntimeError = GraphError::UnknownValue { id: 3 }.into();
        assert!(matches!(e, RuntimeError::Graph(_)));
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<RuntimeError>();
    }
}
