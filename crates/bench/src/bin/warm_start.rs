//! CI's warm-start round trip for the compilation cache and profile store.
//!
//! Two modes, run as consecutive CI steps (the second in a fresh process,
//! which is the whole point):
//!
//! * `warm_start save <dir>` — compiles every benchmark model cold through
//!   a [`PlanCache`], profiles each fused block's wall-clock on this host
//!   ([`Executor::profile_compiled`]), and persists both stores:
//!   `<dir>/plans.cache` (plan seeds) and `<dir>/profile.tsv` (measured
//!   block latencies).
//! * `warm_start verify <dir>` — loads both stores and asserts, per model:
//!   the compile is a **disk hit** (the persisted seed replays — no plan
//!   exploration), its outputs are **bit-identical at tolerance 0** to a
//!   cold compile's, and a cold plan search against the loaded profile
//!   database actually consults the persisted measurements
//!   (`profile_db_hits > 0`). Exits non-zero on any violation.
//!
//! Damage tolerance is tested elsewhere (a corrupted store must fail its
//! load and leave callers compiling cold); this binary checks the happy
//! path CI cares about: a second process warm-starts from the artifacts.

use std::collections::HashMap;
use std::process::ExitCode;
use std::time::Instant;

use dnnf_core::{Compiler, CompilerOptions};
use dnnf_graph::Graph;
use dnnf_models::{ModelKind, ModelScale};
use dnnf_profiledb::ProfileDatabase;
use dnnf_runtime::{CacheOutcome, ExecOptions, Executor, PlanCache};
use dnnf_simdev::DeviceSpec;
use dnnf_tensor::Tensor;

const MODELS: [ModelKind; 3] = [ModelKind::Vgg16, ModelKind::TinyBert, ModelKind::C3d];

fn inputs_for(graph: &Graph) -> HashMap<String, Tensor> {
    graph
        .inputs()
        .iter()
        .map(|&id| {
            let v = graph.value(id);
            let tensor = if v.name.contains("token") {
                Tensor::zeros(v.shape.clone())
            } else {
                Tensor::random(v.shape.clone(), 7)
            };
            (v.name.clone(), tensor)
        })
        .collect()
}

fn executor() -> Executor {
    Executor::new(DeviceSpec::snapdragon_865_cpu())
        .without_cache_simulation()
        .with_options(ExecOptions::serial())
}

fn save(dir: &std::path::Path) -> Result<(), String> {
    std::fs::create_dir_all(dir).map_err(|e| format!("create {}: {e}", dir.display()))?;
    let cache = PlanCache::new();
    let mut compiler = Compiler::new(CompilerOptions::default());
    let exec = executor();

    let mut compiled = Vec::new();
    for kind in MODELS {
        let graph = kind.build(ModelScale::tiny()).map_err(|e| e.to_string())?;
        let (model, outcome) = cache
            .compile_cached(&mut compiler, &graph)
            .map_err(|e| e.to_string())?;
        assert_eq!(outcome, CacheOutcome::Miss, "{}: fresh cache", kind.name());
        compiled.push((kind, graph, model));
    }

    // Profile every fused block on this host; the measurements land in the
    // same database the compiler's plan search reads.
    let mut db = compiler.into_database();
    for (kind, graph, model) in &compiled {
        let inputs = inputs_for(graph);
        exec.profile_compiled(model, &inputs, &mut db)
            .map_err(|e| format!("{}: {e}", kind.name()))?;
    }

    let plans = dir.join("plans.cache");
    let profile = dir.join("profile.tsv");
    cache.save(&plans).map_err(|e| e.to_string())?;
    db.save(&profile).map_err(|e| e.to_string())?;
    let stats = cache.stats();
    println!(
        "saved {} plan seed(s) to {} and {} profiled block latenc(ies) to {}",
        stats.seeds,
        plans.display(),
        db.iter().count(),
        profile.display()
    );
    Ok(())
}

fn verify(dir: &std::path::Path) -> Result<(), String> {
    let plans = dir.join("plans.cache");
    let profile = dir.join("profile.tsv");
    let cache = PlanCache::new();
    let seeds = cache
        .load_seeds(&plans)
        .map_err(|e| format!("load {}: {e}", plans.display()))?;
    let db =
        ProfileDatabase::load(&profile).map_err(|e| format!("load {}: {e}", profile.display()))?;
    println!(
        "loaded {seeds} plan seed(s) and {} profiled block latenc(ies)",
        db.iter().count()
    );
    let mut warm_compiler = Compiler::new(CompilerOptions::default()).with_database(db);
    let exec = executor();

    for kind in MODELS {
        let graph = kind.build(ModelScale::tiny()).map_err(|e| e.to_string())?;
        let inputs = inputs_for(&graph);

        let started = Instant::now();
        let mut cold_compiler = Compiler::new(CompilerOptions::default());
        let cold = cold_compiler.compile(&graph).map_err(|e| e.to_string())?;
        let cold_ms = started.elapsed().as_secs_f64() * 1e3;
        let expected = exec
            .run_compiled(&cold, &inputs)
            .map_err(|e| e.to_string())?
            .outputs;

        let started = Instant::now();
        let (warm, outcome) = cache
            .compile_cached(&mut warm_compiler, &graph)
            .map_err(|e| e.to_string())?;
        let warm_ms = started.elapsed().as_secs_f64() * 1e3;
        if outcome != CacheOutcome::DiskHit {
            return Err(format!(
                "{}: expected a disk hit from the persisted seeds, got {outcome:?}",
                kind.name()
            ));
        }
        let outputs = exec
            .run_compiled(&warm, &inputs)
            .map_err(|e| e.to_string())?
            .outputs;
        for (a, b) in expected.iter().zip(&outputs) {
            if let Some(diff) = a.first_disagreement(b, 0.0) {
                return Err(format!(
                    "{}: warm-started outputs diverge from the cold compile at {diff:?}",
                    kind.name()
                ));
            }
        }

        // The persisted host measurements must be visible to plan search.
        let searched = warm_compiler.compile(&graph).map_err(|e| e.to_string())?;
        if searched.stats.profile_db_hits == 0 {
            return Err(format!(
                "{}: plan search never consulted the persisted profile database",
                kind.name()
            ));
        }
        println!(
            "{:<10} cold compile {cold_ms:>8.3} ms, warm start {warm_ms:>8.3} ms \
             ({:.1}x), outputs bit-identical, {} profile-db hit(s)",
            kind.name(),
            cold_ms / warm_ms,
            searched.stats.profile_db_hits
        );
    }
    println!("warm start verified: disk hits, bit-identical outputs, profile reuse");
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    let result = match &args[..] {
        [_, mode, dir] if mode == "save" => save(std::path::Path::new(dir)),
        [_, mode, dir] if mode == "verify" => verify(std::path::Path::new(dir)),
        _ => {
            eprintln!("usage: warm_start <save|verify> <dir>");
            return ExitCode::FAILURE;
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("warm_start: {msg}");
            ExitCode::FAILURE
        }
    }
}
