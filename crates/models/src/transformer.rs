//! Transformer models: TinyBERT, DistilBERT, ALBERT, BERT-Base, MobileBERT
//! and GPT-2.
//!
//! The builders emit the graphs the way mobile exporters do — LayerNorm,
//! Softmax and GELU decomposed into primitive operators — because that is
//! precisely what creates the long memory-intensive chains (the paper's
//! "Sub + Pow + ReduceMean + Add + Sqrt" example) that fixed-pattern fusion
//! cannot handle and DNNFusion can.

use dnnf_graph::{Graph, GraphError, ValueId};
use dnnf_ops::{Attrs, OpKind};
use dnnf_tensor::Shape;

use crate::common::{
    gelu_decomposed, layer_norm_decomposed, linear, softmax_decomposed, ModelScale,
};

/// Configuration of a transformer encoder/decoder stack.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TransformerConfig {
    /// Model name.
    pub name: &'static str,
    /// Number of layers (blocks).
    pub layers: usize,
    /// Hidden size.
    pub hidden: usize,
    /// Attention heads.
    pub heads: usize,
    /// Feed-forward intermediate size.
    pub intermediate: usize,
    /// Optional bottleneck size (MobileBERT) — adds bottleneck in/out
    /// projections and stacked feed-forward networks per layer.
    pub bottleneck: Option<usize>,
    /// Number of stacked FFNs per layer (1 for most models, 4 for
    /// MobileBERT).
    pub ffn_per_layer: usize,
    /// Whether the model is a decoder (GPT-2) — adds the causal-mask `Where`
    /// before the softmax.
    pub causal: bool,
}

impl TransformerConfig {
    /// TinyBERT (4 layers, hidden 312).
    #[must_use]
    pub fn tiny_bert() -> Self {
        TransformerConfig {
            name: "TinyBERT",
            layers: 4,
            hidden: 312,
            heads: 12,
            intermediate: 1200,
            bottleneck: None,
            ffn_per_layer: 1,
            causal: false,
        }
    }

    /// DistilBERT (6 layers, hidden 768).
    #[must_use]
    pub fn distil_bert() -> Self {
        TransformerConfig {
            name: "DistilBERT",
            layers: 6,
            hidden: 768,
            heads: 12,
            intermediate: 3072,
            bottleneck: None,
            ffn_per_layer: 1,
            causal: false,
        }
    }

    /// ALBERT (12 layers, hidden 768; parameters are shared across layers in
    /// the original, which does not change the executed graph).
    #[must_use]
    pub fn albert() -> Self {
        TransformerConfig {
            name: "ALBERT",
            layers: 12,
            hidden: 768,
            heads: 12,
            intermediate: 3072,
            bottleneck: None,
            ffn_per_layer: 1,
            causal: false,
        }
    }

    /// BERT-Base (12 layers, hidden 768).
    #[must_use]
    pub fn bert_base() -> Self {
        TransformerConfig {
            name: "BERT-Base",
            layers: 12,
            hidden: 768,
            heads: 12,
            intermediate: 3072,
            bottleneck: None,
            ffn_per_layer: 1,
            causal: false,
        }
    }

    /// MobileBERT (24 thin layers with bottlenecks and stacked FFNs).
    #[must_use]
    pub fn mobile_bert() -> Self {
        TransformerConfig {
            name: "MobileBERT",
            layers: 24,
            hidden: 512,
            heads: 4,
            intermediate: 512,
            bottleneck: Some(128),
            ffn_per_layer: 4,
            causal: false,
        }
    }

    /// GPT-2 (24 decoder layers, hidden 1024).
    #[must_use]
    pub fn gpt2() -> Self {
        TransformerConfig {
            name: "GPT-2",
            layers: 24,
            hidden: 1024,
            heads: 16,
            intermediate: 4096,
            bottleneck: None,
            ffn_per_layer: 1,
            causal: true,
        }
    }
}

/// Multi-head self-attention with decomposed softmax. Returns the attention
/// output (pre-residual).
#[allow(clippy::too_many_arguments)]
fn attention(
    g: &mut Graph,
    input: ValueId,
    seq: usize,
    hidden: usize,
    heads: usize,
    causal: bool,
    name: &str,
) -> Result<ValueId, GraphError> {
    let head_dim = hidden / heads;
    let mut projections = Vec::new();
    for proj in ["q", "k", "v"] {
        let p = linear(g, input, hidden, hidden, None, &format!("{name}.{proj}"))?;
        let reshaped = g.add_op(
            OpKind::Reshape,
            Attrs::new().with_ints("shape", vec![seq as i64, heads as i64, head_dim as i64]),
            &[p],
            format!("{name}.{proj}.reshape"),
        )?[0];
        let transposed = g.add_op(
            OpKind::Transpose,
            Attrs::new().with_ints("perm", vec![1, 0, 2]),
            &[reshaped],
            format!("{name}.{proj}.transpose"),
        )?[0];
        projections.push(transposed);
    }
    let (q, k, v) = (projections[0], projections[1], projections[2]);
    let k_t = g.add_op(
        OpKind::Transpose,
        Attrs::new().with_ints("perm", vec![0, 2, 1]),
        &[k],
        format!("{name}.k_t"),
    )?[0];
    let scores = g.add_op(
        OpKind::MatMul,
        Attrs::new(),
        &[q, k_t],
        format!("{name}.qk"),
    )?[0];
    let scale = g.add_weight(format!("{name}.scale"), Shape::new(vec![1]));
    let scaled = g.add_op(
        OpKind::Mul,
        Attrs::new(),
        &[scores, scale],
        format!("{name}.scaled"),
    )?[0];
    let masked = if causal {
        let mask = g.add_weight(format!("{name}.mask"), Shape::new(vec![1, seq, seq]));
        let neg = g.add_weight(format!("{name}.neg_inf"), Shape::new(vec![1]));
        g.add_op(
            OpKind::Where,
            Attrs::new(),
            &[mask, scaled, neg],
            format!("{name}.mask.where"),
        )?[0]
    } else {
        scaled
    };
    let probs = softmax_decomposed(g, masked, &format!("{name}.softmax"))?;
    let context = g.add_op(
        OpKind::MatMul,
        Attrs::new(),
        &[probs, v],
        format!("{name}.av"),
    )?[0];
    let back = g.add_op(
        OpKind::Transpose,
        Attrs::new().with_ints("perm", vec![1, 0, 2]),
        &[context],
        format!("{name}.merge.transpose"),
    )?[0];
    let merged = g.add_op(
        OpKind::Reshape,
        Attrs::new().with_ints("shape", vec![seq as i64, hidden as i64]),
        &[back],
        format!("{name}.merge.reshape"),
    )?[0];
    linear(g, merged, hidden, hidden, None, &format!("{name}.out"))
}

/// Builds the full transformer graph for a configuration.
pub fn transformer(config: TransformerConfig, scale: ModelScale) -> Result<Graph, GraphError> {
    let mut g = Graph::new(config.name);
    let seq = scale.seq_len.max(4);
    let hidden = scale.hidden(config.hidden, config.heads);
    let intermediate = scale.hidden(config.intermediate, config.heads);
    let bottleneck = config.bottleneck.map(|b| scale.hidden(b, config.heads));

    // Embedding lookup: token ids gathered from the embedding table plus a
    // learned positional embedding.
    let vocab = 128usize;
    let ids = g.add_input("token_ids", Shape::new(vec![seq]));
    let table = g.add_weight("embeddings.word", Shape::new(vec![vocab, hidden]));
    let tokens = g.add_op(
        OpKind::Gather,
        Attrs::new(),
        &[table, ids],
        "embeddings.gather",
    )?[0];
    let positions = g.add_weight("embeddings.position", Shape::new(vec![seq, hidden]));
    let mut x = g.add_op(
        OpKind::Add,
        Attrs::new(),
        &[tokens, positions],
        "embeddings.add",
    )?[0];
    x = layer_norm_decomposed(&mut g, x, hidden, "embeddings.ln")?;

    for layer in 0..config.layers {
        let prefix = format!("layer{layer}");
        // Optional bottleneck input projection (MobileBERT).
        let (block_input, block_hidden) = match bottleneck {
            Some(b) => {
                let projected = linear(
                    &mut g,
                    x,
                    hidden,
                    b,
                    None,
                    &format!("{prefix}.bottleneck.in"),
                )?;
                (projected, b)
            }
            None => (x, hidden),
        };
        // Self-attention + residual + LN.
        let attn = attention(
            &mut g,
            block_input,
            seq,
            block_hidden,
            config.heads,
            config.causal,
            &format!("{prefix}.attn"),
        )?;
        let attn_res = g.add_op(
            OpKind::Add,
            Attrs::new(),
            &[block_input, attn],
            format!("{prefix}.attn.residual"),
        )?[0];
        let mut h =
            layer_norm_decomposed(&mut g, attn_res, block_hidden, &format!("{prefix}.attn.ln"))?;
        // Feed-forward network(s) + residual + LN.
        for f in 0..config.ffn_per_layer.max(1) {
            let up = linear(
                &mut g,
                h,
                block_hidden,
                intermediate,
                None,
                &format!("{prefix}.ffn{f}.up"),
            )?;
            let act = gelu_decomposed(&mut g, up, &format!("{prefix}.ffn{f}.gelu"))?;
            let down = linear(
                &mut g,
                act,
                intermediate,
                block_hidden,
                None,
                &format!("{prefix}.ffn{f}.down"),
            )?;
            let res = g.add_op(
                OpKind::Add,
                Attrs::new(),
                &[h, down],
                format!("{prefix}.ffn{f}.residual"),
            )?[0];
            h = layer_norm_decomposed(&mut g, res, block_hidden, &format!("{prefix}.ffn{f}.ln"))?;
        }
        // Optional bottleneck output projection + outer residual.
        x = match bottleneck {
            Some(b) => {
                let projected = linear(
                    &mut g,
                    h,
                    b,
                    hidden,
                    None,
                    &format!("{prefix}.bottleneck.out"),
                )?;
                let res = g.add_op(
                    OpKind::Add,
                    Attrs::new(),
                    &[x, projected],
                    format!("{prefix}.bottleneck.residual"),
                )?[0];
                layer_norm_decomposed(&mut g, res, hidden, &format!("{prefix}.bottleneck.ln"))?
            }
            None => h,
        };
    }

    // Task head: for encoders a pooled classification head, for GPT-2 the
    // language-model projection back onto the vocabulary.
    if config.causal {
        let lm_w = g.add_weight("lm_head.w", Shape::new(vec![hidden, vocab]));
        let logits = g.add_op(OpKind::MatMul, Attrs::new(), &[x, lm_w], "lm_head.matmul")?[0];
        let probs = softmax_decomposed(&mut g, logits, "lm_head.softmax")?;
        g.mark_output(probs);
    } else {
        let pooled = linear(&mut g, x, hidden, hidden, Some(OpKind::Tanh), "pooler")?;
        let logits = linear(&mut g, pooled, hidden, 2, None, "classifier")?;
        let probs = softmax_decomposed(&mut g, logits, "classifier.softmax")?;
        g.mark_output(probs);
    }
    Ok(g)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bert_base_layer_count_is_in_the_paper_ballpark() {
        let g = transformer(TransformerConfig::bert_base(), ModelScale::tiny()).unwrap();
        assert!(g.validate().is_ok());
        // Paper: 976 total layers for BERT-Base; the structural graph with
        // decomposed LN/GELU/Softmax lands in the same range.
        assert!(
            g.node_count() > 600 && g.node_count() < 1200,
            "{}",
            g.node_count()
        );
        let stats = g.stats();
        assert!(stats.memory_intensive_layers > 5 * stats.compute_intensive_layers);
    }

    #[test]
    fn tinybert_is_the_smallest_and_gpt2_among_the_largest() {
        let tiny = transformer(TransformerConfig::tiny_bert(), ModelScale::tiny()).unwrap();
        let gpt2 = transformer(TransformerConfig::gpt2(), ModelScale::tiny()).unwrap();
        let mobile = transformer(TransformerConfig::mobile_bert(), ModelScale::tiny()).unwrap();
        assert!(tiny.node_count() < gpt2.node_count());
        assert!(tiny.node_count() < mobile.node_count());
        // MobileBERT is deeper than BERT-Base in layer count despite being
        // thinner — exactly the paper's Table 1 point.
        let bert = transformer(TransformerConfig::bert_base(), ModelScale::tiny()).unwrap();
        assert!(mobile.node_count() > bert.node_count());
    }

    #[test]
    fn gpt2_uses_a_causal_mask_and_gather_embeddings() {
        let g = transformer(TransformerConfig::gpt2(), ModelScale::tiny()).unwrap();
        assert!(g.nodes().any(|n| n.op == OpKind::Where));
        assert!(g.nodes().any(|n| n.op == OpKind::Gather));
        assert!(g.validate().is_ok());
    }

    #[test]
    fn transformer_contains_the_tinybert_fusion_chain() {
        // The paper calls out "Sub + Pow + ReduceMean + Add + Sqrt" as a
        // chain TVM cannot fuse: our decomposed LayerNorm produces exactly
        // that operator mix.
        let g = transformer(TransformerConfig::tiny_bert(), ModelScale::tiny()).unwrap();
        for op in [
            OpKind::Sub,
            OpKind::Square,
            OpKind::ReduceMean,
            OpKind::Add,
            OpKind::Sqrt,
        ] {
            assert!(g.nodes().any(|n| n.op == op), "missing {op}");
        }
    }

    #[test]
    fn mobilebert_has_bottlenecks_and_stacked_ffns() {
        let g = transformer(TransformerConfig::mobile_bert(), ModelScale::tiny()).unwrap();
        assert!(g.nodes().any(|n| n.name.contains("bottleneck.in")));
        assert!(g.nodes().any(|n| n.name.contains("ffn3")));
    }
}
