//! Deterministic weight materialization.
//!
//! The evaluation only needs structurally-faithful models, not trained
//! weights (the paper notes accuracy is identical across frameworks and
//! irrelevant to latency). Weights without explicit data are materialized as
//! small random tensors seeded by the *name* of the weight, so the same
//! logical weight gets identical data before and after graph rewriting —
//! which is what makes the fused-vs-unfused and rewritten-vs-original
//! numerical equivalence checks meaningful.

use std::collections::HashMap;

use dnnf_graph::{Graph, ValueId};
use dnnf_tensor::Tensor;

/// Scale applied to randomly materialized weights to keep activations in a
/// numerically comfortable range through deep models.
const WEIGHT_SCALE: f32 = 0.05;

/// FNV-1a hash of a name, used as the weight's RNG seed.
fn name_seed(name: &str) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.as_bytes() {
        hash ^= u64::from(*b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Whether a weight must be non-negative for the model to stay finite:
/// variance parameters feed a `sqrt` (BatchNormalization, decomposed
/// LayerNorm) and epsilon terms must not cancel the variance. A random
/// negative value here would turn half the channels into NaN and make every
/// fused-vs-unfused numerical comparison vacuous.
fn must_be_non_negative(name: &str) -> bool {
    name.ends_with(".var") || name.ends_with(".eps") || name.ends_with(".running_var")
}

/// Materializes every weight of a graph: explicit data when attached,
/// otherwise deterministic (name-seeded) random data.
#[must_use]
pub fn materialize_weights(graph: &Graph) -> HashMap<ValueId, Tensor> {
    let mut weights = HashMap::new();
    for value in graph.values() {
        if !value.is_weight() {
            continue;
        }
        let tensor = match graph.weight_data(value.id) {
            Some(data) => data.clone(),
            None => {
                let t = Tensor::random(value.shape.clone(), name_seed(&value.name))
                    .map(|v| v * WEIGHT_SCALE);
                if must_be_non_negative(&value.name) {
                    t.map(f32::abs)
                } else {
                    t
                }
            }
        };
        weights.insert(value.id, tensor);
    }
    weights
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnnf_ops::{Attrs, OpKind};
    use dnnf_tensor::Shape;

    #[test]
    fn weights_are_deterministic_in_name_not_id() {
        let mut g1 = Graph::new("a");
        let w1 = g1.add_weight("layer.w", Shape::new(vec![4, 4]));
        let mut g2 = Graph::new("b");
        // Different id (an input precedes it) but the same name.
        let _x = g2.add_input("x", Shape::new(vec![1]));
        let w2 = g2.add_weight("layer.w", Shape::new(vec![4, 4]));
        let m1 = materialize_weights(&g1);
        let m2 = materialize_weights(&g2);
        assert_eq!(m1[&w1], m2[&w2]);
    }

    #[test]
    fn explicit_data_wins_over_random() {
        let mut g = Graph::new("explicit");
        let data = Tensor::full(Shape::new(vec![2]), 3.0);
        let w = g.add_weight_with_data("w", data.clone());
        let m = materialize_weights(&g);
        assert_eq!(m[&w], data);
    }

    #[test]
    fn only_weights_are_materialized() {
        let mut g = Graph::new("mixed");
        let x = g.add_input("x", Shape::new(vec![2]));
        let w = g.add_weight("w", Shape::new(vec![2]));
        let y = g.add_op(OpKind::Add, Attrs::new(), &[x, w], "add").unwrap()[0];
        g.mark_output(y);
        let m = materialize_weights(&g);
        assert_eq!(m.len(), 1);
        assert!(m.contains_key(&w));
    }

    #[test]
    fn random_weights_are_small() {
        let mut g = Graph::new("scale");
        let w = g.add_weight("w", Shape::new(vec![64]));
        let m = materialize_weights(&g);
        assert!(m[&w].iter().all(|v| v.abs() <= WEIGHT_SCALE));
    }

    #[test]
    fn variance_like_weights_are_non_negative() {
        let mut g = Graph::new("variance");
        let var = g.add_weight("layer.bn.var", Shape::new(vec![64]));
        let eps = g.add_weight("layer.eps", Shape::new(vec![1]));
        let plain = g.add_weight("layer.w", Shape::new(vec![64]));
        let m = materialize_weights(&g);
        assert!(m[&var].iter().all(|&v| v >= 0.0), "variance must not feed sqrt a negative");
        assert!(m[&eps].iter().all(|&v| v >= 0.0));
        assert!(m[&plain].iter().any(|&v| v < 0.0), "ordinary weights stay signed");
    }
}
