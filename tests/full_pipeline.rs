//! Integration tests spanning the whole workspace: models are built,
//! compiled with DNNFusion and with every baseline, executed on the
//! simulated devices, and the paper's qualitative claims are checked —
//! fusion never changes results, DNNFusion fuses at least as much as every
//! fixed-pattern baseline, and the counters move in the direction the paper
//! reports.
//!
//! Timing: this suite executes reference kernels on real (tiny-scale)
//! models and took ~55 s at opt-level 0 covering only 4 of the 15 builders.
//! With the workspace's `[profile.test]`/`[profile.dev.package.*]`
//! opt-level 2 overrides (see the workspace `Cargo.toml`) it covers all 15
//! builders in ~20 s, dominated by the all-builders reference-interpreter
//! golden run (~13 s); the remaining cases finish in ~5 s combined.

use std::collections::HashMap;

use dnnfusion::baselines::{BaselineFramework, PatternFuser};
use dnnfusion::core::{Compiler, CompilerOptions, Ecg, FusionPlan};
use dnnfusion::graph::Graph;
use dnnfusion::models::{ModelKind, ModelScale};
use dnnfusion::runtime::Executor;
use dnnfusion::simdev::{DeviceKind, DeviceSpec, Phone};
use dnnfusion::tensor::Tensor;

fn inputs_for(graph: &Graph, seed: u64) -> HashMap<String, Tensor> {
    graph
        .inputs()
        .iter()
        .map(|&id| {
            let v = graph.value(id);
            // Keep NLP token ids at zero so Gather indices stay valid.
            let tensor = if v.name.contains("token") {
                Tensor::zeros(v.shape.clone())
            } else {
                Tensor::random(v.shape.clone(), seed)
            };
            (v.name.clone(), tensor)
        })
        .collect()
}

/// Element-wise golden check: within `tol` when finite; non-finite elements
/// must agree in class too (+inf == +inf, -inf == -inf, NaN with NaN).
fn assert_outputs_agree(kind: ModelKind, reference: &Tensor, fused: &Tensor, tol: f32) {
    if let Some(i) = reference.first_disagreement(fused, tol) {
        panic!(
            "{kind}: output element {i} reference={} fused={}",
            reference.data()[i],
            fused.data().get(i).copied().unwrap_or(f32::NAN)
        );
    }
}

#[test]
fn fused_engine_matches_reference_execution_for_every_model_builder() {
    // Golden differential check over the full model zoo: the fused-block
    // engine (same graph, DNNFusion plan, rewriting off) must reproduce the
    // reference interpreter within 1e-5 on every element, and fusing must
    // strictly reduce kernel launches.
    let executor = Executor::new(DeviceSpec::snapdragon_865_cpu()).without_cache_simulation();
    for &kind in ModelKind::all() {
        let graph = kind.build(ModelScale::tiny()).unwrap();
        let inputs = inputs_for(&graph, 7);
        let unfused = executor.run_unfused(&graph, &inputs).unwrap();
        let mut compiler = Compiler::new(CompilerOptions::without_rewriting());
        let compiled = compiler.compile(&graph).unwrap();
        let fused = executor.run_compiled(&compiled, &inputs).unwrap();
        assert_eq!(unfused.outputs.len(), fused.outputs.len(), "{kind}");
        for (a, b) in unfused.outputs.iter().zip(&fused.outputs) {
            assert_outputs_agree(kind, a, b, 1e-5);
        }
        assert!(
            fused.counters.kernel_launches < unfused.counters.kernel_launches,
            "{kind}: fusion must strictly reduce kernel launches ({} vs {})",
            fused.counters.kernel_launches,
            unfused.counters.kernel_launches
        );
    }
}

#[test]
fn full_compiler_pipeline_preserves_results_on_representative_models() {
    // With graph rewriting on, reassociation may perturb float results; the
    // end-to-end pipeline must still agree with the reference interpreter to
    // a practical tolerance. One representative model per family keeps this
    // case from duplicating the all-builders golden test above.
    let executor = Executor::new(DeviceSpec::snapdragon_865_cpu()).without_cache_simulation();
    for kind in [
        ModelKind::Vgg16,
        ModelKind::C3d,
        ModelKind::TinyBert,
        ModelKind::FasterRcnn,
    ] {
        let graph = kind.build(ModelScale::tiny()).unwrap();
        let inputs = inputs_for(&graph, 7);
        let unfused = executor.run_unfused(&graph, &inputs).unwrap();
        let mut compiler = Compiler::new(CompilerOptions::default());
        let compiled = compiler.compile(&graph).unwrap();
        let fused = executor.run_compiled(&compiled, &inputs).unwrap();
        for (a, b) in unfused.outputs.iter().zip(&fused.outputs) {
            assert_outputs_agree(kind, a, b, 1e-3);
        }
    }
}

#[test]
fn dnnfusion_fuses_at_least_as_much_as_every_fixed_pattern_baseline() {
    for &kind in ModelKind::all() {
        // The R-CNNs are large even at tiny scale; planning them here keeps
        // the test meaningful but we skip the slowest one in debug builds.
        if kind == ModelKind::MaskRcnn && cfg!(debug_assertions) {
            continue;
        }
        let graph = kind.build(ModelScale::tiny()).unwrap();
        let mut compiler = Compiler::new(CompilerOptions::default());
        let compiled = compiler.compile(&graph).unwrap();
        let ecg = Ecg::new(graph.clone());
        for framework in BaselineFramework::all() {
            let plan = PatternFuser::for_framework(*framework).plan(&ecg).unwrap();
            assert!(
                compiled.stats.fused_layers <= plan.fused_layer_count(),
                "{kind}: DNNFusion produced {} blocks but {framework} produced {}",
                compiled.stats.fused_layers,
                plan.fused_layer_count()
            );
        }
        // And the paper's headline: large fusion rates on deep models.
        assert!(
            compiled.stats.fusion_rate() > 1.5,
            "{kind}: fusion rate only {:.2}",
            compiled.stats.fusion_rate()
        );
    }
}

#[test]
fn fusion_reduces_intermediate_results_latency_and_launches() {
    let executor = Executor::new(Phone::GalaxyS20.device(DeviceKind::MobileGpu));
    for kind in [
        ModelKind::EfficientNetB0,
        ModelKind::DistilBert,
        ModelKind::UNet,
    ] {
        let graph = kind.build(ModelScale::tiny()).unwrap();
        let mut compiler = Compiler::new(CompilerOptions::default());
        let compiled = compiler.compile(&graph).unwrap();
        let (unfused, _) = executor.estimate_unfused(&graph);
        let (fused, _) = executor.estimate_plan(compiled.graph(), &compiled.plan);
        assert!(fused.kernel_launches < unfused.kernel_launches, "{kind}");
        assert!(
            fused.memory_access_bytes < unfused.memory_access_bytes,
            "{kind}"
        );
        assert!(fused.latency_us < unfused.latency_us, "{kind}");
        assert!(
            compiled.stats.fused_irs_bytes < compiled.stats.original_irs_bytes,
            "{kind}"
        );
    }
}

#[test]
fn graph_rewriting_preserves_model_semantics() {
    // Compile the same model with and without graph rewriting and check the
    // executed outputs agree: the rewrites are semantics-preserving on a
    // full model, not just on the rule-level unit tests.
    let executor = Executor::new(DeviceSpec::snapdragon_865_cpu()).without_cache_simulation();
    let graph = ModelKind::TinyBert.build(ModelScale::tiny()).unwrap();
    let inputs = inputs_for(&graph, 3);
    let mut with_rewriting = Compiler::new(CompilerOptions::default());
    let mut without_rewriting = Compiler::new(CompilerOptions::without_rewriting());
    let a = executor
        .run_compiled(&with_rewriting.compile(&graph).unwrap(), &inputs)
        .unwrap();
    let b = executor
        .run_compiled(&without_rewriting.compile(&graph).unwrap(), &inputs)
        .unwrap();
    for (x, y) in a.outputs.iter().zip(&b.outputs) {
        assert!(x.allclose(y, 1e-3));
    }
}

#[test]
fn every_baseline_plan_executes_correctly_on_a_cnn() {
    let graph = ModelKind::Vgg16.build(ModelScale::tiny()).unwrap();
    let inputs = inputs_for(&graph, 11);
    let executor = Executor::new(DeviceSpec::snapdragon_865_cpu()).without_cache_simulation();
    let reference = executor.run_unfused(&graph, &inputs).unwrap();
    let ecg = Ecg::new(graph.clone());
    for framework in BaselineFramework::all() {
        let plan = PatternFuser::for_framework(*framework).plan(&ecg).unwrap();
        let report = executor.run_plan(&graph, &plan, &inputs).unwrap();
        assert!(
            reference.outputs[0].allclose(&report.outputs[0], 1e-4),
            "{framework}"
        );
    }
}

#[test]
fn singleton_plan_matches_graph_layer_count() {
    let graph = ModelKind::S3d.build(ModelScale::tiny()).unwrap();
    let ecg = Ecg::new(graph.clone());
    let plan = FusionPlan::singletons(&ecg);
    assert_eq!(plan.fused_layer_count(), graph.node_count());
    plan.validate(&graph).unwrap();
}

#[test]
fn compilation_statistics_are_internally_consistent() {
    for kind in [ModelKind::YoloV4, ModelKind::BertBase] {
        let graph = kind.build(ModelScale::tiny()).unwrap();
        let mut compiler = Compiler::new(CompilerOptions::default());
        let compiled = compiler.compile(&graph).unwrap();
        let stats = &compiled.stats;
        assert_eq!(stats.original_layers, graph.node_count());
        assert_eq!(stats.fused_layers, compiled.plan.fused_layer_count());
        assert_eq!(compiled.fused_ops.len(), stats.fused_layers);
        assert!(stats.optimized_flops <= stats.original_flops);
        assert!(stats.layers_after_rewriting <= stats.original_layers);
        // Every fused operator's members exist in the optimized graph.
        let node_count = compiled.graph().node_count();
        for fused in &compiled.fused_ops {
            assert!(fused.nodes.iter().all(|n| n.index() < node_count));
        }
    }
}
