//! Fixed-pattern fusion, parameterized per framework.

use std::collections::BTreeSet;
use std::fmt;

use dnnf_core::{CoreError, Ecg, FusionPlan};
use dnnf_graph::NodeId;
use dnnf_ops::OpKind;

/// The end-to-end frameworks the paper compares against (Table 5 / Table 6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BaselineFramework {
    /// Alibaba MNN.
    Mnn,
    /// Apache TVM (also the pattern set of the paper's `OurB+` baseline).
    Tvm,
    /// TensorFlow-Lite.
    TfLite,
    /// PyTorch-Mobile.
    PytorchMobile,
}

impl BaselineFramework {
    /// All comparison frameworks in the order the paper lists them.
    #[must_use]
    pub fn all() -> &'static [BaselineFramework] {
        &[
            BaselineFramework::Mnn,
            BaselineFramework::Tvm,
            BaselineFramework::TfLite,
            BaselineFramework::PytorchMobile,
        ]
    }

    /// Display name used in the result tables.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            BaselineFramework::Mnn => "MNN",
            BaselineFramework::Tvm => "TVM",
            BaselineFramework::TfLite => "TFLite",
            BaselineFramework::PytorchMobile => "PyTorch",
        }
    }
}

impl fmt::Display for BaselineFramework {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Configuration of a fixed-pattern fuser.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PatternConfig {
    /// Name shown in reports.
    pub name: &'static str,
    /// Operators that can anchor a fused group (compute-intensive ops).
    pub anchors: Vec<OpKind>,
    /// Operators that may be appended to an anchor as an epilogue.
    pub epilogue: Vec<OpKind>,
    /// Maximum number of epilogue operators fused behind one anchor.
    pub max_epilogue: usize,
    /// Whether standalone chains of element-wise operators fuse together.
    pub fuse_elementwise_chains: bool,
    /// Maximum length of a fused element-wise chain.
    pub max_elementwise_chain: usize,
}

impl PatternConfig {
    /// TVM-style fusion: any compute anchor followed by a chain of injective
    /// (element-wise) operators, plus standalone injective chains. This is
    /// also the paper's `OurB+` configuration ("OurB with a fixed-pattern
    /// fusion as TVM").
    #[must_use]
    pub fn tvm_like() -> Self {
        PatternConfig {
            name: "TVM-style fixed patterns",
            anchors: vec![
                OpKind::Conv,
                OpKind::ConvTranspose,
                OpKind::Gemm,
                OpKind::MatMul,
                OpKind::AveragePool,
                OpKind::MaxPool,
                OpKind::GlobalAveragePool,
            ],
            epilogue: vec![
                OpKind::Add,
                OpKind::Sub,
                OpKind::Mul,
                OpKind::Div,
                OpKind::Relu,
                OpKind::Clip,
                OpKind::Sigmoid,
                OpKind::Tanh,
                OpKind::LeakyRelu,
                OpKind::BatchNormalization,
            ],
            max_epilogue: 3,
            fuse_elementwise_chains: true,
            max_elementwise_chain: 4,
        }
    }

    /// MNN-style fusion: Conv/Deconv + BN + activation and binary+activation
    /// merges; no generic element-wise chain fusion.
    #[must_use]
    pub fn mnn_like() -> Self {
        PatternConfig {
            name: "MNN-style fixed patterns",
            anchors: vec![
                OpKind::Conv,
                OpKind::ConvTranspose,
                OpKind::Gemm,
                OpKind::MatMul,
            ],
            epilogue: vec![
                OpKind::Add,
                OpKind::Mul,
                OpKind::Relu,
                OpKind::Clip,
                OpKind::BatchNormalization,
            ],
            max_epilogue: 2,
            fuse_elementwise_chains: false,
            max_elementwise_chain: 0,
        }
    }

    /// TensorFlow-Lite-style fusion: bias + a fused activation folded into
    /// Conv / fully-connected kernels only.
    #[must_use]
    pub fn tflite_like() -> Self {
        PatternConfig {
            name: "TFLite-style fixed patterns",
            anchors: vec![
                OpKind::Conv,
                OpKind::ConvTranspose,
                OpKind::Gemm,
                OpKind::MatMul,
            ],
            epilogue: vec![OpKind::Add, OpKind::Relu, OpKind::Clip],
            max_epilogue: 2,
            fuse_elementwise_chains: false,
            max_elementwise_chain: 0,
        }
    }

    /// PyTorch-Mobile-style fusion: Conv+BN folding and Conv+ReLU.
    #[must_use]
    pub fn pytorch_like() -> Self {
        PatternConfig {
            name: "PyTorch-Mobile-style fixed patterns",
            anchors: vec![OpKind::Conv, OpKind::ConvTranspose],
            epilogue: vec![
                OpKind::Add,
                OpKind::Mul,
                OpKind::Relu,
                OpKind::BatchNormalization,
            ],
            max_epilogue: 2,
            fuse_elementwise_chains: false,
            max_elementwise_chain: 0,
        }
    }

    /// The configuration modeling a given framework.
    #[must_use]
    pub fn for_framework(framework: BaselineFramework) -> Self {
        match framework {
            BaselineFramework::Mnn => PatternConfig::mnn_like(),
            BaselineFramework::Tvm => PatternConfig::tvm_like(),
            BaselineFramework::TfLite => PatternConfig::tflite_like(),
            BaselineFramework::PytorchMobile => PatternConfig::pytorch_like(),
        }
    }
}

/// A fixed-pattern fuser producing [`FusionPlan`]s.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PatternFuser {
    config: PatternConfig,
}

impl PatternFuser {
    /// Creates a fuser from a configuration.
    #[must_use]
    pub fn new(config: PatternConfig) -> Self {
        PatternFuser { config }
    }

    /// Creates the fuser modeling a framework.
    #[must_use]
    pub fn for_framework(framework: BaselineFramework) -> Self {
        PatternFuser::new(PatternConfig::for_framework(framework))
    }

    /// The fuser's configuration.
    #[must_use]
    pub fn config(&self) -> &PatternConfig {
        &self.config
    }

    /// Produces the fixed-pattern fusion plan for a graph.
    ///
    /// # Errors
    ///
    /// Returns a [`CoreError`] if the resulting grouping is inconsistent
    /// (which would indicate a bug in the pattern matching).
    pub fn plan(&self, ecg: &Ecg) -> Result<FusionPlan, CoreError> {
        let graph = ecg.graph();
        let mut assigned: BTreeSet<NodeId> = BTreeSet::new();
        let mut groups: Vec<Vec<NodeId>> = Vec::new();

        // Anchor + epilogue patterns.
        for node_id in graph.topo_order() {
            if assigned.contains(&node_id) {
                continue;
            }
            let node = graph.node(node_id);
            if !self.config.anchors.contains(&node.op) {
                continue;
            }
            let mut group = vec![node_id];
            assigned.insert(node_id);
            self.extend_chain(
                ecg,
                node_id,
                &self.config.epilogue,
                self.config.max_epilogue,
                &mut group,
                &mut assigned,
            );
            groups.push(group);
        }

        // Standalone element-wise chains.
        if self.config.fuse_elementwise_chains {
            for node_id in graph.topo_order() {
                if assigned.contains(&node_id) {
                    continue;
                }
                let node = graph.node(node_id);
                if !(node.op.is_elementwise_unary() || node.op.is_elementwise_binary()) {
                    continue;
                }
                let mut group = vec![node_id];
                assigned.insert(node_id);
                self.extend_elementwise_chain(ecg, node_id, &mut group, &mut assigned);
                if group.len() > 1 {
                    groups.push(group);
                } else {
                    assigned.remove(&node_id);
                }
            }
        }

        FusionPlan::from_blocks(ecg, groups)
    }

    /// Follows the single-consumer chain out of `from`, fusing whitelisted
    /// operators.
    fn extend_chain(
        &self,
        ecg: &Ecg,
        from: NodeId,
        whitelist: &[OpKind],
        max_extra: usize,
        group: &mut Vec<NodeId>,
        assigned: &mut BTreeSet<NodeId>,
    ) {
        let graph = ecg.graph();
        let mut current = from;
        for _ in 0..max_extra {
            let outputs = &graph.node(current).outputs;
            if outputs.len() != 1 {
                break;
            }
            let value = graph.value(outputs[0]);
            if value.consumers.len() != 1 || graph.outputs().contains(&outputs[0]) {
                break;
            }
            let next = value.consumers[0];
            if assigned.contains(&next) || !whitelist.contains(&graph.node(next).op) {
                break;
            }
            group.push(next);
            assigned.insert(next);
            current = next;
        }
    }

    fn extend_elementwise_chain(
        &self,
        ecg: &Ecg,
        from: NodeId,
        group: &mut Vec<NodeId>,
        assigned: &mut BTreeSet<NodeId>,
    ) {
        let graph = ecg.graph();
        let mut current = from;
        while group.len() < self.config.max_elementwise_chain {
            let outputs = &graph.node(current).outputs;
            if outputs.len() != 1 {
                break;
            }
            let value = graph.value(outputs[0]);
            if value.consumers.len() != 1 || graph.outputs().contains(&outputs[0]) {
                break;
            }
            let next = value.consumers[0];
            let op = graph.node(next).op;
            if assigned.contains(&next)
                || !(op.is_elementwise_unary() || op.is_elementwise_binary())
            {
                break;
            }
            group.push(next);
            assigned.insert(next);
            current = next;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnnf_graph::Graph;
    use dnnf_ops::Attrs;
    use dnnf_tensor::Shape;

    /// Conv -> bias -> Relu -> Sigmoid -> Tanh -> Gemm graph exercising both
    /// anchor-epilogue and element-wise-chain fusion.
    fn sample() -> Graph {
        let mut g = Graph::new("sample");
        let x = g.add_input("x", Shape::new(vec![1, 4, 8, 8]));
        let w = g.add_weight("w", Shape::new(vec![4, 4, 3, 3]));
        let conv = g
            .add_op(
                OpKind::Conv,
                Attrs::new().with_ints("pads", vec![1, 1, 1, 1]),
                &[x, w],
                "conv",
            )
            .unwrap()[0];
        let b = g.add_weight("b", Shape::new(vec![1, 4, 1, 1]));
        let bias = g
            .add_op(OpKind::Add, Attrs::new(), &[conv, b], "bias")
            .unwrap()[0];
        let relu = g
            .add_op(OpKind::Relu, Attrs::new(), &[bias], "relu")
            .unwrap()[0];
        let sig = g
            .add_op(OpKind::Sigmoid, Attrs::new(), &[relu], "sig")
            .unwrap()[0];
        let tanh = g
            .add_op(OpKind::Tanh, Attrs::new(), &[sig], "tanh")
            .unwrap()[0];
        let flat = g
            .add_op(
                OpKind::Flatten,
                Attrs::new().with_int("axis", 1),
                &[tanh],
                "flat",
            )
            .unwrap()[0];
        let fw = g.add_weight("fw", Shape::new(vec![256, 16]));
        let fc = g
            .add_op(OpKind::MatMul, Attrs::new(), &[flat, fw], "fc")
            .unwrap()[0];
        let out = g
            .add_op(OpKind::Softmax, Attrs::new(), &[fc], "softmax")
            .unwrap()[0];
        g.mark_output(out);
        g
    }

    #[test]
    fn tvm_like_fuses_anchor_epilogues_and_chains() {
        let g = sample();
        let ecg = Ecg::new(g.clone());
        let plan = PatternFuser::for_framework(BaselineFramework::Tvm)
            .plan(&ecg)
            .unwrap();
        plan.validate(&g).unwrap();
        // 9 layers shrink, but not as far as DNNFusion would.
        assert!(plan.fused_layer_count() < g.node_count());
        // Conv and its bias/relu epilogue share a block.
        let conv = g.nodes().find(|n| n.op == OpKind::Conv).unwrap().id;
        let bias = g.nodes().find(|n| n.name == "bias").unwrap().id;
        let relu = g.nodes().find(|n| n.name == "relu").unwrap().id;
        assert_eq!(plan.block_of(conv), plan.block_of(bias));
        assert_eq!(plan.block_of(conv), plan.block_of(relu));
        // The Flatten (Reorganize) never fuses under fixed patterns.
        let flat = g.nodes().find(|n| n.op == OpKind::Flatten).unwrap().id;
        assert_eq!(plan.blocks()[plan.block_of(flat)].len(), 1);
    }

    #[test]
    fn framework_pattern_sets_are_ordered_by_generality() {
        let g = sample();
        let ecg = Ecg::new(g.clone());
        let counts: Vec<usize> = BaselineFramework::all()
            .iter()
            .map(|&f| {
                PatternFuser::for_framework(f)
                    .plan(&ecg)
                    .unwrap()
                    .fused_layer_count()
            })
            .collect();
        // TVM (index 1) fuses at least as much as every other baseline.
        assert!(counts[1] <= counts[0]);
        assert!(counts[1] <= counts[2]);
        assert!(counts[1] <= counts[3]);
        // And PyTorch (conv-only patterns) fuses the least.
        assert!(counts[3] >= counts[2]);
    }

    #[test]
    fn dnnfusion_beats_every_fixed_pattern_baseline_on_fusion_rate() {
        use dnnf_core::{Compiler, CompilerOptions};
        let g = sample();
        let ecg = Ecg::new(g.clone());
        let dnnf = Compiler::new(CompilerOptions::default())
            .compile(&g)
            .unwrap();
        for &f in BaselineFramework::all() {
            let baseline = PatternFuser::for_framework(f).plan(&ecg).unwrap();
            assert!(
                dnnf.stats.fused_layers <= baseline.fused_layer_count(),
                "DNNFusion should fuse at least as much as {f}"
            );
        }
    }

    #[test]
    fn chains_stop_at_multi_consumer_values() {
        // conv -> relu -> (two consumers): the relu output fans out, so the
        // chain must stop after relu.
        let mut g = Graph::new("fanout");
        let x = g.add_input("x", Shape::new(vec![1, 4, 8, 8]));
        let w = g.add_weight("w", Shape::new(vec![4, 4, 3, 3]));
        let conv = g
            .add_op(
                OpKind::Conv,
                Attrs::new().with_ints("pads", vec![1, 1, 1, 1]),
                &[x, w],
                "conv",
            )
            .unwrap()[0];
        let relu = g
            .add_op(OpKind::Relu, Attrs::new(), &[conv], "relu")
            .unwrap()[0];
        let a = g
            .add_op(OpKind::Sigmoid, Attrs::new(), &[relu], "a")
            .unwrap()[0];
        let b = g.add_op(OpKind::Tanh, Attrs::new(), &[relu], "b").unwrap()[0];
        let sum = g.add_op(OpKind::Add, Attrs::new(), &[a, b], "sum").unwrap()[0];
        g.mark_output(sum);
        let ecg = Ecg::new(g.clone());
        let plan = PatternFuser::for_framework(BaselineFramework::Tvm)
            .plan(&ecg)
            .unwrap();
        let conv_block = plan.block_of(g.nodes().find(|n| n.op == OpKind::Conv).unwrap().id);
        let sig_block = plan.block_of(g.nodes().find(|n| n.op == OpKind::Sigmoid).unwrap().id);
        assert_ne!(conv_block, sig_block);
        plan.validate(&g).unwrap();
    }

    #[test]
    fn framework_names_and_config_access() {
        assert_eq!(BaselineFramework::Tvm.to_string(), "TVM");
        assert_eq!(BaselineFramework::all().len(), 4);
        let fuser = PatternFuser::for_framework(BaselineFramework::Mnn);
        assert!(fuser.config().name.contains("MNN"));
        assert!(!fuser.config().fuse_elementwise_chains);
    }
}
