//! GEMM and batched matrix multiplication kernels.

use dnnf_tensor::{broadcast_index, Shape, Tensor};

use crate::{Attrs, OpError, OpKind};

/// ONNX `Gemm`: `alpha * op(A) * op(B) + beta * C`.
pub fn gemm(attrs: &Attrs, inputs: &[&Tensor], out_shape: &Shape) -> Result<Tensor, OpError> {
    let a = inputs[0];
    let b = inputs[1];
    let alpha = attrs.float_or("alpha", 1.0);
    let beta = attrs.float_or("beta", 1.0);
    let trans_a = attrs.int_or("transA", 0) != 0;
    let trans_b = attrs.int_or("transB", 0) != 0;
    let m = out_shape.dim(0);
    let n = out_shape.dim(1);
    let k = if trans_a {
        a.shape().dim(0)
    } else {
        a.shape().dim(1)
    };

    let mut out = Tensor::zeros(out_shape.clone());
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0f32;
            for p in 0..k {
                let av = if trans_a {
                    a.at(&[p, i])?
                } else {
                    a.at(&[i, p])?
                };
                let bv = if trans_b {
                    b.at(&[j, p])?
                } else {
                    b.at(&[p, j])?
                };
                acc += av * bv;
            }
            let mut v = alpha * acc;
            if let Some(c) = inputs.get(2) {
                let idx = broadcast_index(&[i, j], c.shape());
                v += beta * c.at(&idx)?;
            }
            out.set(&[i, j], v)?;
        }
    }
    Ok(out)
}

/// Batched `MatMul` with broadcasting over the batch dimensions.
pub fn matmul(a: &Tensor, b: &Tensor, out_shape: &Shape) -> Result<Tensor, OpError> {
    let a_shape = a.shape();
    let b_shape = b.shape();
    if a_shape.rank() < 2 || b_shape.rank() < 2 {
        return Err(OpError::InvalidShape {
            op: OpKind::MatMul,
            reason: "operands must be rank >= 2".into(),
        });
    }
    let m = out_shape.dim(out_shape.rank() - 2);
    let n = out_shape.dim(out_shape.rank() - 1);
    let k = a_shape.dim(a_shape.rank() - 1);
    let batch_shape = Shape::new(out_shape.dims()[..out_shape.rank() - 2].to_vec());
    let a_batch = Shape::new(a_shape.dims()[..a_shape.rank() - 2].to_vec());
    let b_batch = Shape::new(b_shape.dims()[..b_shape.rank() - 2].to_vec());

    let mut out = Tensor::zeros(out_shape.clone());
    let mut out_offset = 0usize;
    for batch in 0..batch_shape.numel().max(1) {
        let batch_idx = batch_shape.multi_index(batch);
        let a_prefix = broadcast_index(&batch_idx, &a_batch);
        let b_prefix = broadcast_index(&batch_idx, &b_batch);
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0f32;
                for p in 0..k {
                    let mut ai = a_prefix.clone();
                    ai.push(i);
                    ai.push(p);
                    let mut bi = b_prefix.clone();
                    bi.push(p);
                    bi.push(j);
                    acc += a.at(&ai)? * b.at(&bi)?;
                }
                out.data_mut()[out_offset] = acc;
                out_offset += 1;
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::infer_shapes;

    fn run_gemm(attrs: &Attrs, inputs: &[&Tensor]) -> Tensor {
        let shapes: Vec<_> = inputs.iter().map(|t| t.shape().clone()).collect();
        let out = infer_shapes(OpKind::Gemm, attrs, &shapes).unwrap();
        gemm(attrs, inputs, &out[0]).unwrap()
    }

    #[test]
    fn gemm_identity_times_matrix() {
        let eye = Tensor::from_vec(Shape::new(vec![2, 2]), vec![1.0, 0.0, 0.0, 1.0]).unwrap();
        let b = Tensor::from_vec(Shape::new(vec![2, 2]), vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let out = run_gemm(&Attrs::new(), &[&eye, &b]);
        assert_eq!(out.data(), b.data());
    }

    #[test]
    fn gemm_known_product_with_bias_and_alpha_beta() {
        // A = [[1,2],[3,4]], B = [[5,6],[7,8]] -> AB = [[19,22],[43,50]].
        let a = Tensor::from_vec(Shape::new(vec![2, 2]), vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let b = Tensor::from_vec(Shape::new(vec![2, 2]), vec![5.0, 6.0, 7.0, 8.0]).unwrap();
        let c = Tensor::from_vec(Shape::new(vec![2]), vec![1.0, -1.0]).unwrap();
        let attrs = Attrs::new()
            .with_float("alpha", 2.0)
            .with_float("beta", 1.0);
        let out = run_gemm(&attrs, &[&a, &b, &c]);
        assert_eq!(out.data(), &[39.0, 43.0, 87.0, 99.0]);
    }

    #[test]
    fn gemm_transpose_flags() {
        let a =
            Tensor::from_vec(Shape::new(vec![2, 3]), vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        let b =
            Tensor::from_vec(Shape::new(vec![2, 3]), vec![1.0, 0.0, 0.0, 0.0, 1.0, 0.0]).unwrap();
        // A (2x3) x B^T (3x2) = 2x2.
        let attrs = Attrs::new().with_int("transB", 1);
        let out = run_gemm(&attrs, &[&a, &b]);
        assert_eq!(out.shape().dims(), &[2, 2]);
        assert_eq!(out.data(), &[1.0, 2.0, 4.0, 5.0]);
    }

    #[test]
    fn matmul_matches_gemm_on_2d() {
        let a = Tensor::random(Shape::new(vec![3, 4]), 1);
        let b = Tensor::random(Shape::new(vec![4, 5]), 2);
        let shapes = [a.shape().clone(), b.shape().clone()];
        let out_shape = infer_shapes(OpKind::MatMul, &Attrs::new(), &shapes).unwrap();
        let mm = matmul(&a, &b, &out_shape[0]).unwrap();
        let gm = run_gemm(&Attrs::new(), &[&a, &b]);
        assert!(mm.allclose(&gm, 1e-5));
    }

    #[test]
    fn matmul_batched_with_broadcast() {
        // Batch of 2 on the left, unbatched right operand.
        let a = Tensor::arange(Shape::new(vec![2, 2, 3]));
        let b = Tensor::from_vec(Shape::new(vec![3, 1]), vec![1.0, 1.0, 1.0]).unwrap();
        let shapes = [a.shape().clone(), b.shape().clone()];
        let out_shape = infer_shapes(OpKind::MatMul, &Attrs::new(), &shapes).unwrap();
        let out = matmul(&a, &b, &out_shape[0]).unwrap();
        assert_eq!(out.shape().dims(), &[2, 2, 1]);
        // Row sums of arange(2,2,3): [0+1+2, 3+4+5, 6+7+8, 9+10+11].
        assert_eq!(out.data(), &[3.0, 12.0, 21.0, 30.0]);
    }
}
