//! Computational graph IR for the DNNFusion reproduction.
//!
//! A [`Graph`] is the "traditional" computational graph the paper starts
//! from: nodes are operator invocations, values are tensors flowing between
//! them, and shape inference runs as the graph is built. The Extended
//! Computational Graph (ECG) — mapping types, `IR_removable`, mathematical
//! properties — is layered on top of this IR by `dnnf-core`.
//!
//! # Example
//!
//! ```
//! use dnnf_graph::{Graph, ValueKind};
//! use dnnf_ops::{Attrs, OpKind};
//! use dnnf_tensor::Shape;
//!
//! # fn main() -> Result<(), dnnf_graph::GraphError> {
//! let mut g = Graph::new("tiny");
//! let x = g.add_input("x", Shape::new(vec![1, 8]));
//! let w = g.add_weight("w", Shape::new(vec![8, 4]));
//! let y = g.add_op(OpKind::MatMul, Attrs::new(), &[x, w], "proj")?[0];
//! let z = g.add_op(OpKind::Relu, Attrs::new(), &[y], "act")?[0];
//! g.mark_output(z);
//! assert_eq!(g.node_count(), 2);
//! assert_eq!(g.value(z).shape.dims(), &[1, 4]);
//! assert_eq!(g.value(x).kind, ValueKind::Input);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

mod error;
mod fingerprint;
mod graph;
mod node;
mod stats;
mod value;

pub use error::GraphError;
pub use fingerprint::Fingerprint;
pub use graph::Graph;
pub use node::{Node, NodeId};
pub use stats::GraphStats;
pub use value::{Value, ValueId, ValueKind};
