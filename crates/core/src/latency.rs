//! Latency models used to resolve the yellow cells of the mapping analysis.
//!
//! The paper measures candidate fusions on the target device and caches the
//! results in a profiling database. Here the measurement is abstracted behind
//! the [`LatencyModel`] trait: the default [`AnalyticLatencyModel`] is a
//! machine-independent roofline-style estimate used by `dnnf-core`'s own
//! tests; `dnnf-runtime` provides a device-calibrated implementation backed
//! by the `dnnf-simdev` device models.

use dnnf_graph::{Graph, NodeId};
use dnnf_ops::{cost, MappingType};
use dnnf_tensor::Shape;
use std::collections::BTreeSet;

/// Estimates the latency of executing a set of graph nodes, either as one
/// fused kernel or as separate kernels.
pub trait LatencyModel {
    /// Estimated latency, in microseconds, of executing `nodes` as a single
    /// fused kernel: intermediate values internal to the set are assumed to
    /// stay in registers/cache and are not charged as memory traffic.
    fn fused_latency_us(&self, graph: &Graph, nodes: &[NodeId]) -> f64;

    /// Estimated latency of executing every node as its own kernel.
    fn unfused_latency_us(&self, graph: &Graph, nodes: &[NodeId]) -> f64 {
        nodes
            .iter()
            .map(|&n| self.fused_latency_us(graph, &[n]))
            .sum()
    }
}

/// A simple roofline latency model:
/// `latency = max(flops / peak_flops, bytes / bandwidth) + launch_overhead`,
/// where `bytes` only counts values crossing the kernel boundary, plus a
/// penalty factor when operators with disruptive access patterns (Shuffle,
/// One-to-Many) are fused into a compute-intensive kernel — this is what
/// makes some yellow-cell fusions genuinely unprofitable, as in the paper.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AnalyticLatencyModel {
    /// Peak floating point throughput in FLOPs per microsecond.
    pub flops_per_us: f64,
    /// Memory bandwidth in bytes per microsecond.
    pub bytes_per_us: f64,
    /// Fixed per-kernel launch/scheduling overhead in microseconds.
    pub kernel_launch_us: f64,
    /// Bytes per element (4 for fp32, 2 for fp16).
    pub elem_bytes: u64,
    /// Multiplicative compute penalty per access-disrupting operator fused
    /// into a block that contains a Many-to-Many anchor.
    pub access_disruption_penalty: f64,
}

impl Default for AnalyticLatencyModel {
    fn default() -> Self {
        // Ballpark mobile-CPU numbers (Kryo 585-class): ~50 GFLOP/s fp32 and
        // ~25 GB/s effective bandwidth, ~5 µs per kernel dispatch.
        AnalyticLatencyModel {
            flops_per_us: 50_000.0,
            bytes_per_us: 25_000.0,
            kernel_launch_us: 5.0,
            elem_bytes: 4,
            access_disruption_penalty: 0.35,
        }
    }
}

impl AnalyticLatencyModel {
    /// External memory traffic (bytes) of executing `nodes` as one kernel:
    /// inputs read from outside the set plus outputs consumed outside the set
    /// (or marked as graph outputs).
    #[must_use]
    pub fn boundary_bytes(&self, graph: &Graph, nodes: &[NodeId]) -> u64 {
        let set: BTreeSet<NodeId> = nodes.iter().copied().collect();
        let mut bytes = 0u64;
        let mut counted = BTreeSet::new();
        for &n in nodes {
            let node = graph.node(n);
            for &input in &node.inputs {
                let v = graph.value(input);
                let produced_inside = v.producer.map(|p| set.contains(&p)).unwrap_or(false);
                if !produced_inside && counted.insert(input) {
                    bytes += v.size_bytes() as u64 / 4 * self.elem_bytes;
                }
            }
            for &output in &node.outputs {
                let v = graph.value(output);
                let consumed_outside = v.consumers.iter().any(|c| !set.contains(c))
                    || graph.outputs().contains(&output)
                    || v.consumers.is_empty();
                if consumed_outside && counted.insert(output) {
                    bytes += v.size_bytes() as u64 / 4 * self.elem_bytes;
                }
            }
        }
        bytes
    }

    /// Total FLOPs of the node set, with the access-disruption penalty
    /// applied when relevant.
    #[must_use]
    pub fn effective_flops(&self, graph: &Graph, nodes: &[NodeId]) -> f64 {
        let mut flops = 0u64;
        let mut has_anchor = false;
        let mut disruptive = 0usize;
        for &n in nodes {
            let node = graph.node(n);
            let input_shapes: Vec<Shape> = node
                .inputs
                .iter()
                .map(|&id| graph.value(id).shape.clone())
                .collect();
            let output_shapes: Vec<Shape> = node
                .outputs
                .iter()
                .map(|&id| graph.value(id).shape.clone())
                .collect();
            flops += cost::flops(node.op, &node.attrs, &input_shapes, &output_shapes);
            match node.op.mapping_type() {
                MappingType::ManyToMany => has_anchor = true,
                // Only data-movement operators (Transpose, Expand, Resize, …)
                // disrupt the anchor's access pattern; a broadcasted bias Add
                // is One-to-Many by classification but reads contiguously.
                MappingType::Shuffle | MappingType::OneToMany if node.op.is_data_movement() => {
                    disruptive += 1;
                }
                _ => {}
            }
        }
        let penalty = if has_anchor && nodes.len() > 1 {
            1.0 + self.access_disruption_penalty * disruptive as f64
        } else {
            1.0
        };
        flops as f64 * penalty
    }
}

impl LatencyModel for AnalyticLatencyModel {
    fn fused_latency_us(&self, graph: &Graph, nodes: &[NodeId]) -> f64 {
        if nodes.is_empty() {
            return 0.0;
        }
        let flops = self.effective_flops(graph, nodes);
        let bytes = self.boundary_bytes(graph, nodes) as f64;
        (flops / self.flops_per_us).max(bytes / self.bytes_per_us) + self.kernel_launch_us
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnnf_graph::Graph;
    use dnnf_ops::{Attrs, OpKind};

    fn elementwise_chain(n: usize) -> Graph {
        let mut g = Graph::new("chain");
        let mut v = g.add_input("x", Shape::new(vec![1, 64, 32, 32]));
        for i in 0..n {
            v = g
                .add_op(OpKind::Relu, Attrs::new(), &[v], format!("relu{i}"))
                .unwrap()[0];
        }
        g.mark_output(v);
        g
    }

    #[test]
    fn fusing_memory_bound_chain_reduces_latency() {
        let g = elementwise_chain(4);
        let nodes: Vec<NodeId> = g.nodes().map(|n| n.id).collect();
        let model = AnalyticLatencyModel::default();
        let fused = model.fused_latency_us(&g, &nodes);
        let unfused = model.unfused_latency_us(&g, &nodes);
        assert!(
            fused < unfused,
            "fused {fused} should beat unfused {unfused}"
        );
        // Fused traffic is one read + one write of the tensor.
        let bytes = model.boundary_bytes(&g, &nodes);
        assert_eq!(bytes, 2 * 64 * 32 * 32 * 4);
    }

    #[test]
    fn boundary_bytes_exclude_internal_values() {
        let g = elementwise_chain(2);
        let nodes: Vec<NodeId> = g.nodes().map(|n| n.id).collect();
        let model = AnalyticLatencyModel::default();
        let all = model.boundary_bytes(&g, &nodes);
        let single = model.boundary_bytes(&g, &nodes[..1]);
        // A single node reads and writes the full tensor; the fused pair does
        // the same amount of boundary traffic (the intermediate is free).
        assert_eq!(all, single);
    }

    #[test]
    fn access_disruption_penalty_applies_to_anchored_blocks() {
        let mut g = Graph::new("conv-transpose");
        let x = g.add_input("x", Shape::new(vec![1, 8, 16, 16]));
        let w = g.add_weight("w", Shape::new(vec![8, 8, 3, 3]));
        let c = g
            .add_op(
                OpKind::Conv,
                Attrs::new().with_ints("pads", vec![1, 1, 1, 1]),
                &[x, w],
                "conv",
            )
            .unwrap()[0];
        let t = g
            .add_op(
                OpKind::Transpose,
                Attrs::new().with_ints("perm", vec![0, 2, 3, 1]),
                &[c],
                "tr",
            )
            .unwrap()[0];
        g.mark_output(t);
        let model = AnalyticLatencyModel::default();
        let nodes: Vec<NodeId> = g.nodes().map(|n| n.id).collect();
        let conv_only_flops = model.effective_flops(&g, &nodes[..1]);
        let both_flops = model.effective_flops(&g, &nodes);
        assert!(both_flops > conv_only_flops * 1.3);
    }

    #[test]
    fn empty_node_set_has_zero_latency() {
        let g = elementwise_chain(1);
        assert_eq!(
            AnalyticLatencyModel::default().fused_latency_us(&g, &[]),
            0.0
        );
    }

    #[test]
    fn launch_overhead_is_charged_per_kernel() {
        let g = elementwise_chain(3);
        let nodes: Vec<NodeId> = g.nodes().map(|n| n.id).collect();
        let model = AnalyticLatencyModel {
            kernel_launch_us: 100.0,
            ..Default::default()
        };
        let fused = model.fused_latency_us(&g, &nodes);
        let unfused = model.unfused_latency_us(&g, &nodes);
        // Three launches vs one launch dominates with a huge launch cost.
        assert!(unfused > fused + 150.0);
    }
}
