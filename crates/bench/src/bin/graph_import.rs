//! Loads `.dnnfg` files, validates them, and optionally executes them.
//!
//! For every path given, the file is parsed with the strict importer (any
//! damage rejects the whole file with a typed error) and a one-line summary
//! is printed: model name, operator/value counts, structural fingerprint
//! and input shape signature. With `--run`, each graph is additionally
//! compiled through the default pipeline and executed on seeded random
//! inputs, and the fused outputs are checked against the reference-kernel
//! interpreter within the fuzzer's `1e-5` tolerance — the same differential
//! the `random_model` fuzzer applies, but driven from a file.
//!
//! Exits non-zero if any file fails to parse, compile or agree.
//!
//! ```text
//! cargo run --release -p dnnf-bench --bin graph_import -- [--run] <file>...
//! ```

use std::process::ExitCode;

use dnnf_bench::fuzz::{fuzz_inputs, FUZZ_TOLERANCE};
use dnnf_core::{Compiler, CompilerOptions, Ecg, FusionPlan};
use dnnf_graph::Graph;
use dnnf_runtime::{ExecOptions, Executor};
use dnnf_simdev::DeviceSpec;

/// Input seed for `--run`; arbitrary but fixed so runs are reproducible.
const RUN_SEED: u64 = 0xD0_0DAD;

/// Compiles and executes the imported graph, differencing fused outputs
/// against the reference interpreter. Returns a violation, or `None`.
fn run_differential(graph: &Graph) -> Option<String> {
    let inputs = fuzz_inputs(graph, RUN_SEED);
    let executor = Executor::new(DeviceSpec::snapdragon_865_cpu())
        .without_cache_simulation()
        .with_options(ExecOptions::serial());
    let ecg = Ecg::new(graph.clone());
    let singletons = FusionPlan::singletons(&ecg);
    let reference = match executor.run_plan_reference(graph, &singletons, &inputs) {
        Ok(report) => report,
        Err(e) => return Some(format!("reference run failed: {e}")),
    };
    let compiled = match Compiler::new(CompilerOptions::default()).compile(graph) {
        Ok(compiled) => compiled,
        Err(e) => return Some(format!("compile failed: {e}")),
    };
    let fused = match executor.run_compiled(&compiled, &inputs) {
        Ok(report) => report,
        Err(e) => return Some(format!("fused run failed: {e}")),
    };
    for (i, (r, f)) in reference.outputs.iter().zip(&fused.outputs).enumerate() {
        if r.shape() != f.shape() {
            return Some(format!("output {i}: shape drift"));
        }
        if let Some(at) = r.first_disagreement(f, FUZZ_TOLERANCE) {
            return Some(format!(
                "output {i} disagrees with reference at element {at}: {} vs {}",
                r.data()[at],
                f.data()[at]
            ));
        }
    }
    None
}

fn main() -> ExitCode {
    let mut run = false;
    let mut paths: Vec<String> = Vec::new();
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--run" => run = true,
            "--help" | "-h" => {
                eprintln!("usage: graph_import [--run] <file>...");
                return ExitCode::FAILURE;
            }
            _ => paths.push(arg),
        }
    }
    if paths.is_empty() {
        eprintln!("usage: graph_import [--run] <file>...");
        return ExitCode::FAILURE;
    }

    let mut failed = false;
    for path in &paths {
        let graph = match dnnf_io::load(path) {
            Ok(graph) => graph,
            Err(e) => {
                eprintln!("FAIL {path}: {e}");
                failed = true;
                continue;
            }
        };
        print!(
            "ok   {path}: `{}` {} ops, {} values, fingerprint {}, inputs {}",
            graph.name(),
            graph.node_count(),
            graph.value_count(),
            graph.fingerprint(),
            graph.shape_signature()
        );
        if run {
            match run_differential(&graph) {
                None => println!(" (executed, within {FUZZ_TOLERANCE:e} of reference)"),
                Some(violation) => {
                    println!();
                    eprintln!("FAIL {path}: {violation}");
                    failed = true;
                }
            }
        } else {
            println!();
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
