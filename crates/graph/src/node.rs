//! Graph nodes (operator invocations).

use dnnf_ops::{Attrs, OpKind};

use crate::ValueId;

/// Identifier of a node within its graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub(crate) usize);

impl NodeId {
    /// Raw index of this node (stable for the lifetime of the graph).
    #[must_use]
    pub fn index(self) -> usize {
        self.0
    }

    /// Rebuilds a node id from a raw index, e.g. one previously obtained
    /// from [`NodeId::index`] and round-tripped through a serialized plan.
    /// The index is only meaningful for the graph it came from; APIs that
    /// accept reconstructed ids (such as `FusionPlan::from_blocks` in
    /// `dnnf-core`) validate them against the target graph.
    #[must_use]
    pub fn from_index(index: usize) -> Self {
        NodeId(index)
    }
}

/// One operator invocation in the computational graph.
#[derive(Debug, Clone, PartialEq)]
pub struct Node {
    /// Identifier within the graph.
    pub id: NodeId,
    /// Human-readable name (layer name).
    pub name: String,
    /// The operator performed.
    pub op: OpKind,
    /// Operator attributes.
    pub attrs: Attrs,
    /// Input values, in operator order.
    pub inputs: Vec<ValueId>,
    /// Output values, in operator order.
    pub outputs: Vec<ValueId>,
}

impl Node {
    /// Whether the node is a compute-intensive layer (CIL) in the paper's
    /// Table 5 terminology.
    #[must_use]
    pub fn is_compute_intensive(&self) -> bool {
        self.op.is_compute_intensive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_cil_follows_op() {
        let n = Node {
            id: NodeId(0),
            name: "conv".into(),
            op: OpKind::Conv,
            attrs: Attrs::new(),
            inputs: vec![],
            outputs: vec![],
        };
        assert!(n.is_compute_intensive());
        let n = Node {
            op: OpKind::Relu,
            ..n
        };
        assert!(!n.is_compute_intensive());
    }

    #[test]
    fn ids_expose_indices() {
        assert_eq!(NodeId(4).index(), 4);
    }
}
