//! Device specifications for the phones used in the paper's evaluation.

use std::fmt;

use crate::cache::CacheConfig;

/// Whether a device model describes a mobile CPU or a mobile GPU.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DeviceKind {
    /// A multi-core mobile CPU (8 threads in the paper's runs, fp32).
    MobileCpu,
    /// A mobile GPU (all pipelines, fp16 in the paper's runs).
    MobileGpu,
}

impl fmt::Display for DeviceKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeviceKind::MobileCpu => f.write_str("CPU"),
            DeviceKind::MobileGpu => f.write_str("GPU"),
        }
    }
}

/// The phones evaluated in the paper (§5.1 and §5.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Phone {
    /// Samsung Galaxy S20 — Snapdragon 865 (Kryo 585 CPU, Adreno 650 GPU).
    GalaxyS20,
    /// Samsung Galaxy S10 — Snapdragon 855 (Kryo 485 CPU, Adreno 640 GPU).
    GalaxyS10,
    /// Honor Magic 2 — Kirin 980 (ARM CPU, Mali-G76 GPU).
    HonorMagic2,
}

impl Phone {
    /// All phones, in the order the paper introduces them.
    #[must_use]
    pub fn all() -> &'static [Phone] {
        &[Phone::GalaxyS20, Phone::GalaxyS10, Phone::HonorMagic2]
    }

    /// Marketing name of the phone.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Phone::GalaxyS20 => "Samsung Galaxy S20 (Snapdragon 865)",
            Phone::GalaxyS10 => "Samsung Galaxy S10 (Snapdragon 855)",
            Phone::HonorMagic2 => "Honor Magic 2 (Kirin 980)",
        }
    }

    /// The device model for this phone's CPU or GPU.
    #[must_use]
    pub fn device(self, kind: DeviceKind) -> DeviceSpec {
        match (self, kind) {
            (Phone::GalaxyS20, DeviceKind::MobileCpu) => DeviceSpec::snapdragon_865_cpu(),
            (Phone::GalaxyS20, DeviceKind::MobileGpu) => DeviceSpec::snapdragon_865_gpu(),
            (Phone::GalaxyS10, DeviceKind::MobileCpu) => DeviceSpec::snapdragon_855_cpu(),
            (Phone::GalaxyS10, DeviceKind::MobileGpu) => DeviceSpec::snapdragon_855_gpu(),
            (Phone::HonorMagic2, DeviceKind::MobileCpu) => DeviceSpec::kirin_980_cpu(),
            (Phone::HonorMagic2, DeviceKind::MobileGpu) => DeviceSpec::kirin_980_gpu(),
        }
    }
}

/// A parametric device model.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceSpec {
    /// Human-readable name.
    pub name: String,
    /// CPU or GPU.
    pub kind: DeviceKind,
    /// Peak sustained floating-point throughput in GFLOP/s for the element
    /// width used on this device.
    pub peak_gflops: f64,
    /// Effective DRAM bandwidth in GB/s.
    pub bandwidth_gbs: f64,
    /// Per-kernel dispatch/launch overhead in microseconds.
    pub kernel_launch_us: f64,
    /// Bytes per tensor element (4 = fp32 CPU, 2 = fp16 GPU).
    pub elem_bytes: u64,
    /// Number of cores (CPU) or compute-unit groups (GPU) used to estimate
    /// utilization for small kernels.
    pub parallel_units: usize,
    /// Compute penalty applied per access-disrupting operator fused into a
    /// compute-intensive kernel (models strided / gathered reads).
    pub access_disruption_penalty: f64,
    /// Cache and TLB hierarchy.
    pub cache: CacheConfig,
}

impl DeviceSpec {
    /// Snapdragon 865 (Kryo 585) mobile CPU, fp32, 8 threads.
    #[must_use]
    pub fn snapdragon_865_cpu() -> Self {
        DeviceSpec {
            name: "Snapdragon 865 CPU (Kryo 585)".into(),
            kind: DeviceKind::MobileCpu,
            peak_gflops: 60.0,
            bandwidth_gbs: 25.0,
            kernel_launch_us: 4.0,
            elem_bytes: 4,
            parallel_units: 8,
            access_disruption_penalty: 0.35,
            cache: CacheConfig::mobile_cpu(64 * 1024, 512 * 1024, 4 * 1024 * 1024),
        }
    }

    /// Snapdragon 865 (Adreno 650) mobile GPU, fp16.
    #[must_use]
    pub fn snapdragon_865_gpu() -> Self {
        DeviceSpec {
            name: "Snapdragon 865 GPU (Adreno 650)".into(),
            kind: DeviceKind::MobileGpu,
            peak_gflops: 220.0,
            bandwidth_gbs: 34.0,
            kernel_launch_us: 18.0,
            elem_bytes: 2,
            parallel_units: 512,
            access_disruption_penalty: 0.5,
            cache: CacheConfig::mobile_gpu(128 * 1024, 1024 * 1024),
        }
    }

    /// Snapdragon 855 (Kryo 485) mobile CPU, fp32.
    #[must_use]
    pub fn snapdragon_855_cpu() -> Self {
        DeviceSpec {
            name: "Snapdragon 855 CPU (Kryo 485)".into(),
            peak_gflops: 48.0,
            bandwidth_gbs: 20.0,
            kernel_launch_us: 5.0,
            cache: CacheConfig::mobile_cpu(64 * 1024, 384 * 1024, 2 * 1024 * 1024),
            ..DeviceSpec::snapdragon_865_cpu()
        }
    }

    /// Snapdragon 855 (Adreno 640) mobile GPU, fp16.
    #[must_use]
    pub fn snapdragon_855_gpu() -> Self {
        DeviceSpec {
            name: "Snapdragon 855 GPU (Adreno 640)".into(),
            peak_gflops: 170.0,
            bandwidth_gbs: 28.0,
            kernel_launch_us: 22.0,
            cache: CacheConfig::mobile_gpu(96 * 1024, 768 * 1024),
            ..DeviceSpec::snapdragon_865_gpu()
        }
    }

    /// Kirin 980 mobile CPU, fp32.
    #[must_use]
    pub fn kirin_980_cpu() -> Self {
        DeviceSpec {
            name: "Kirin 980 CPU".into(),
            peak_gflops: 42.0,
            bandwidth_gbs: 18.0,
            kernel_launch_us: 5.5,
            cache: CacheConfig::mobile_cpu(64 * 1024, 512 * 1024, 2 * 1024 * 1024),
            ..DeviceSpec::snapdragon_865_cpu()
        }
    }

    /// Kirin 980 (Mali-G76) mobile GPU, fp16.
    #[must_use]
    pub fn kirin_980_gpu() -> Self {
        DeviceSpec {
            name: "Kirin 980 GPU (Mali-G76)".into(),
            peak_gflops: 140.0,
            bandwidth_gbs: 25.0,
            kernel_launch_us: 26.0,
            cache: CacheConfig::mobile_gpu(64 * 1024, 512 * 1024),
            ..DeviceSpec::snapdragon_865_gpu()
        }
    }

    /// Peak throughput in FLOPs per microsecond.
    #[must_use]
    pub fn flops_per_us(&self) -> f64 {
        self.peak_gflops * 1e3
    }

    /// Bandwidth in bytes per microsecond.
    #[must_use]
    pub fn bytes_per_us(&self) -> f64 {
        self.bandwidth_gbs * 1e3
    }
}

impl fmt::Display for DeviceSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} [{:.0} GFLOP/s, {:.0} GB/s]",
            self.name, self.peak_gflops, self.bandwidth_gbs
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_cover_all_phones_and_kinds() {
        for &phone in Phone::all() {
            for kind in [DeviceKind::MobileCpu, DeviceKind::MobileGpu] {
                let d = phone.device(kind);
                assert_eq!(d.kind, kind);
                assert!(d.peak_gflops > 0.0);
                assert!(d.bandwidth_gbs > 0.0);
                assert!(!d.cache.levels.is_empty());
            }
        }
    }

    #[test]
    fn gpu_has_higher_peak_but_higher_launch_cost_and_smaller_hierarchy() {
        let cpu = DeviceSpec::snapdragon_865_cpu();
        let gpu = DeviceSpec::snapdragon_865_gpu();
        assert!(gpu.peak_gflops > cpu.peak_gflops);
        assert!(gpu.kernel_launch_us > cpu.kernel_launch_us);
        assert!(gpu.cache.levels.len() < cpu.cache.levels.len());
        assert_eq!(gpu.elem_bytes, 2);
        assert_eq!(cpu.elem_bytes, 4);
    }

    #[test]
    fn newer_devices_are_faster_than_older_ones() {
        assert!(
            DeviceSpec::snapdragon_865_cpu().peak_gflops
                > DeviceSpec::snapdragon_855_cpu().peak_gflops
        );
        assert!(
            DeviceSpec::snapdragon_855_gpu().peak_gflops > DeviceSpec::kirin_980_gpu().peak_gflops
        );
    }

    #[test]
    fn unit_conversions() {
        let d = DeviceSpec::snapdragon_865_cpu();
        assert!((d.flops_per_us() - 60_000.0).abs() < 1e-6);
        assert!((d.bytes_per_us() - 25_000.0).abs() < 1e-6);
        assert!(d.to_string().contains("Kryo"));
        assert_eq!(DeviceKind::MobileCpu.to_string(), "CPU");
    }
}
