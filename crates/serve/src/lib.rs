//! Batched multi-tenant model serving for the DNNFusion reproduction.
//!
//! The engine below this crate compiles, caches and executes fused plans;
//! this crate is the front door: a request queue plus a worker pool over
//! shared [`dnnf_core::CompiledModel`]s, with **dynamic batching** — workers
//! coalesce same-model requests along the batch dimension within a
//! configurable latency budget, execute them as one fused-engine run, and
//! split the outputs back per request.
//!
//! Design points:
//!
//! * **Async-free.** Plain `std` threads, a mutex-guarded queue and a
//!   condvar, consistent with the engine's own `WorkPool`. Clients block on
//!   a [`Ticket`] (an mpsc receiver) for their response.
//! * **One plan per model, any batch size.** Models are compiled once (at
//!   batch 1, typically through `dnnf_runtime::PlanCache::compile_batched`)
//!   and executed at whatever batch the coalescer assembled via
//!   `Executor::run_compiled_batched`, which reuses the fusion plan and
//!   re-runs only cheap code generation per batch size.
//! * **Backpressure, not buffering.** Each model has an admission limit
//!   ([`ServeConfig::queue_capacity`]); a submit beyond it fails fast with
//!   [`ServeError::QueueFull`] instead of growing the queue without bound.
//! * **Deterministic.** Every kernel partitions work so each thread/SIMD
//!   lane owns whole output elements of independent batch rows, so a
//!   coalesced batch produces **bit-identical** outputs to running each
//!   request alone — batching is invisible to clients, not a numerics
//!   trade-off.
//!
//! # Example
//!
//! ```
//! use std::collections::HashMap;
//! use std::sync::Arc;
//! use dnnf_core::{Compiler, CompilerOptions};
//! use dnnf_graph::Graph;
//! use dnnf_ops::{Attrs, OpKind};
//! use dnnf_serve::{ServeConfig, Server};
//! use dnnf_tensor::{Shape, Tensor};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut g = Graph::new("mlp");
//! let x = g.add_input("x", Shape::new(vec![1, 8]));
//! let w = g.add_weight("w", Shape::new(vec![8, 4]));
//! let y = g.add_op(OpKind::MatMul, Attrs::new(), &[x, w], "proj")?[0];
//! g.mark_output(y);
//! let model = Arc::new(Compiler::new(CompilerOptions::default()).compile(&g)?);
//!
//! let server = Server::builder(ServeConfig::default())
//!     .model("mlp", model)?
//!     .start();
//! let inputs: HashMap<String, Tensor> =
//!     [("x".to_string(), Tensor::random(Shape::new(vec![1, 8]), 7))].into();
//! let ticket = server.submit("mlp", inputs)?;
//! let response = ticket.wait()?;
//! assert_eq!(response.outputs[0].shape().dims(), &[1, 4]);
//! server.shutdown();
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

mod config;
mod error;
mod server;

pub use config::ServeConfig;
pub use error::ServeError;
pub use server::{ModelStats, Response, Server, ServerBuilder, ServerStats, Ticket};
