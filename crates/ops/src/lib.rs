//! ONNX-flavoured DNN operator library for the DNNFusion reproduction.
//!
//! Each operator ([`OpKind`]) carries the metadata DNNFusion's analyses rely
//! on:
//!
//! * its **mapping type** (Table 2 of the paper) — see [`MappingType`],
//! * its **mathematical properties** (associativity / commutativity /
//!   distributivity) used by the graph-rewriting pass,
//! * whether it is **compute-intensive** (CIL) or **memory-intensive** (MIL),
//!   the distinction used by Table 5,
//! * a **FLOP / byte cost model** ([`cost`]) used by rewriting and by the
//!   simulated device latency model, and
//! * **shape inference** ([`infer_shapes`]) plus a **reference kernel**
//!   ([`execute`]) so graphs can actually be run and fused execution checked
//!   for bit-exact equivalence.
//!
//! # Example
//!
//! ```
//! use dnnf_ops::{execute, Attrs, MappingType, OpKind};
//! use dnnf_tensor::{Shape, Tensor};
//!
//! # fn main() -> Result<(), dnnf_ops::OpError> {
//! assert_eq!(OpKind::Relu.mapping_type(), MappingType::OneToOne);
//! let x = Tensor::from_vec(Shape::new(vec![3]), vec![-1.0, 0.0, 2.0]).unwrap();
//! let y = execute(OpKind::Relu, &Attrs::new(), &[&x])?;
//! assert_eq!(y[0].data(), &[0.0, 0.0, 2.0]);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

mod attrs;
pub mod cost;
mod error;
mod kernels;
mod mapping;
mod op;
pub mod parallel;
mod properties;
mod scalar;
mod shape_infer;
pub mod simd;

pub use attrs::{AttrValue, Attrs};
pub use cost::{bytes_accessed, flops, OpCost};
pub use error::OpError;
pub use kernels::execute;
pub use kernels::fast::{
    execute_fast_into, execute_fast_into_packed, execute_fast_into_threaded, has_fast_kernel,
    pack_conv_oc_panel, CONV_PANEL_LANES,
};
pub use mapping::MappingType;
pub use op::OpKind;
pub use parallel::WorkPool;
pub use properties::MathProperties;
pub use scalar::ScalarUnaryFn;
pub use shape_infer::infer_shapes;
pub use simd::{F32x4, F32x8};
