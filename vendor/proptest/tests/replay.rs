//! End-to-end check of failure-persistence replay: the checked-in
//! `proptest-regressions/replay.txt` lists seed 424242, and the shim promises
//! to run persisted seeds *before* any generated cases. The first case this
//! test observes must therefore reproduce exactly what seed 424242 generates.

use std::sync::atomic::{AtomicBool, Ordering};

use proptest::prelude::*;

static FIRST_CASE_SEEN: AtomicBool = AtomicBool::new(false);

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn persisted_seed_is_replayed_first(value in 0u64..1_000_000_000) {
        if !FIRST_CASE_SEEN.swap(true, Ordering::SeqCst) {
            let mut expected_rng = TestRng::new(424242);
            let expected = Strategy::new_value(&(0u64..1_000_000_000), &mut expected_rng);
            prop_assert_eq!(
                value,
                expected,
                "first case must come from the persisted seed in proptest-regressions/replay.txt"
            );
        }
    }
}
