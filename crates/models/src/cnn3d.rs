//! 3-D CNN models for action recognition: C3D and S3D.

use dnnf_graph::{Graph, GraphError, ValueId};
use dnnf_ops::{Attrs, OpKind};
use dnnf_tensor::Shape;

use crate::common::{linear, ModelScale};

/// A 3-D convolution + ReLU layer.
fn conv3d_relu(
    g: &mut Graph,
    input: ValueId,
    in_ch: usize,
    out_ch: usize,
    kernel: [usize; 3],
    name: &str,
) -> Result<ValueId, GraphError> {
    let w = g.add_weight(
        format!("{name}.w"),
        Shape::new(vec![out_ch, in_ch, kernel[0], kernel[1], kernel[2]]),
    );
    let pads: Vec<i64> = kernel
        .iter()
        .map(|&k| (k / 2) as i64)
        .chain(kernel.iter().map(|&k| (k / 2) as i64))
        .collect();
    let conv = g.add_op(
        OpKind::Conv,
        Attrs::new().with_ints("pads", pads),
        &[input, w],
        format!("{name}.conv"),
    )?[0];
    Ok(g.add_op(OpKind::Relu, Attrs::new(), &[conv], format!("{name}.relu"))?[0])
}

/// A 3-D max pooling layer. The requested kernel is clamped per dimension to
/// the input's remaining extent, so heavily scaled-down configurations never
/// produce empty tensors.
fn pool3d(
    g: &mut Graph,
    input: ValueId,
    kernel: [usize; 3],
    name: &str,
) -> Result<ValueId, GraphError> {
    let dims = g.value(input).shape.dims().to_vec();
    let k: Vec<i64> = kernel
        .iter()
        .enumerate()
        .map(|(i, &x)| x.min(dims.get(2 + i).copied().unwrap_or(1)).max(1) as i64)
        .collect();
    Ok(g.add_op(
        OpKind::MaxPool,
        Attrs::new()
            .with_ints("kernel_shape", k.clone())
            .with_ints("strides", k),
        &[input],
        name,
    )?[0])
}

/// C3D: eight 3-D convolutions, five poolings and two fully-connected layers
/// (action recognition). The original has 27 layers (paper Table 5).
pub fn c3d(scale: ModelScale) -> Result<Graph, GraphError> {
    let mut g = Graph::new("C3D");
    let s = scale.spatial.max(16);
    let frames = 8;
    let mut x = g.add_input("clip", Shape::new(vec![1, 3, frames, s, s]));
    let widths = [64usize, 128, 256, 256, 512, 512, 512, 512];
    let mut ch = 3;
    // conv1 -> pool1 (spatial only) -> conv2 -> pool2 -> conv3a/b -> pool3 ...
    x = conv3d_relu(&mut g, x, ch, scale.ch(widths[0]), [3, 3, 3], "conv1")?;
    ch = scale.ch(widths[0]);
    x = pool3d(&mut g, x, [1, 2, 2], "pool1")?;
    x = conv3d_relu(&mut g, x, ch, scale.ch(widths[1]), [3, 3, 3], "conv2")?;
    ch = scale.ch(widths[1]);
    x = pool3d(&mut g, x, [2, 2, 2], "pool2")?;
    for (i, pair) in [(2usize, 3usize), (4, 5), (6, 7)].iter().enumerate() {
        x = conv3d_relu(
            &mut g,
            x,
            ch,
            scale.ch(widths[pair.0]),
            [3, 3, 3],
            &format!("conv{}a", i + 3),
        )?;
        ch = scale.ch(widths[pair.0]);
        x = conv3d_relu(
            &mut g,
            x,
            ch,
            scale.ch(widths[pair.1]),
            [3, 3, 3],
            &format!("conv{}b", i + 3),
        )?;
        ch = scale.ch(widths[pair.1]);
        x = pool3d(&mut g, x, [2, 2, 2], &format!("pool{}", i + 3))?;
    }
    let flat = g.add_op(
        OpKind::Flatten,
        Attrs::new().with_int("axis", 1),
        &[x],
        "flatten",
    )?[0];
    let features = g.value(flat).shape.dim(1);
    let fc6 = linear(
        &mut g,
        flat,
        features,
        scale.ch(4096),
        Some(OpKind::Relu),
        "fc6",
    )?;
    let fc7 = linear(&mut g, fc6, scale.ch(4096), scale.ch(101), None, "fc7")?;
    let probs = g.add_op(OpKind::Softmax, Attrs::new(), &[fc7], "softmax")?[0];
    g.mark_output(probs);
    Ok(g)
}

/// One S3D separable temporal block: a spatial (1,k,k) convolution followed
/// by a temporal (k,1,1) convolution, each with BN-style scaling and ReLU.
fn sep_conv3d(
    g: &mut Graph,
    input: ValueId,
    in_ch: usize,
    out_ch: usize,
    name: &str,
) -> Result<ValueId, GraphError> {
    let spatial = conv3d_relu(
        g,
        input,
        in_ch,
        out_ch,
        [1, 3, 3],
        &format!("{name}.spatial"),
    )?;
    conv3d_relu(
        g,
        spatial,
        out_ch,
        out_ch,
        [3, 1, 1],
        &format!("{name}.temporal"),
    )
}

/// An S3D Inception-style branch block: 1x1x1 branch, two separable
/// branches and a pooled branch, concatenated.
fn s3d_inception(
    g: &mut Graph,
    input: ValueId,
    in_ch: usize,
    width: usize,
    name: &str,
) -> Result<(ValueId, usize), GraphError> {
    let b0 = conv3d_relu(g, input, in_ch, width, [1, 1, 1], &format!("{name}.b0"))?;
    let b1a = conv3d_relu(g, input, in_ch, width, [1, 1, 1], &format!("{name}.b1a"))?;
    let b1 = sep_conv3d(g, b1a, width, width, &format!("{name}.b1"))?;
    let b2a = conv3d_relu(g, input, in_ch, width, [1, 1, 1], &format!("{name}.b2a"))?;
    let b2 = sep_conv3d(g, b2a, width, width, &format!("{name}.b2"))?;
    let pooled = g.add_op(
        OpKind::MaxPool,
        Attrs::new()
            .with_ints("kernel_shape", vec![3, 3, 3])
            .with_ints("strides", vec![1, 1, 1])
            .with_ints("pads", vec![1, 1, 1, 1, 1, 1]),
        &[input],
        format!("{name}.pool"),
    )?[0];
    let b3 = conv3d_relu(g, pooled, in_ch, width, [1, 1, 1], &format!("{name}.b3"))?;
    let cat = g.add_op(
        OpKind::Concat,
        Attrs::new().with_int("axis", 1),
        &[b0, b1, b2, b3],
        format!("{name}.concat"),
    )?[0];
    Ok((cat, width * 4))
}

/// S3D: separable 3-D convolutions arranged in Inception-style blocks
/// (action recognition).
pub fn s3d(scale: ModelScale) -> Result<Graph, GraphError> {
    let mut g = Graph::new("S3D");
    let s = scale.spatial.max(16);
    let frames = 8;
    let input = g.add_input("clip", Shape::new(vec![1, 3, frames, s, s]));
    let stem_ch = scale.ch(64);
    let mut x = sep_conv3d(&mut g, input, 3, stem_ch, "stem")?;
    x = pool3d(&mut g, x, [1, 2, 2], "stem.pool")?;
    let mut ch = stem_ch;
    // Inception stages, pooled between groups.
    let stage_plan: [(usize, usize); 3] = [(2, 64), (3, 128), (2, 256)];
    for (si, &(blocks, width)) in stage_plan.iter().enumerate() {
        let blocks = scale.repeats(blocks).max(1);
        for b in 0..blocks {
            let (y, c) = s3d_inception(&mut g, x, ch, scale.ch(width), &format!("inc{si}.{b}"))?;
            x = y;
            ch = c;
        }
        if si + 1 < stage_plan.len() {
            x = pool3d(&mut g, x, [2, 2, 2], &format!("stage{si}.pool"))?;
        }
    }
    let pooled = g.add_op(OpKind::GlobalAveragePool, Attrs::new(), &[x], "avgpool")?[0];
    let flat = g.add_op(
        OpKind::Flatten,
        Attrs::new().with_int("axis", 1),
        &[pooled],
        "flatten",
    )?[0];
    let logits = linear(&mut g, flat, ch, scale.ch(101), None, "classifier")?;
    let probs = g.add_op(OpKind::Softmax, Attrs::new(), &[logits], "softmax")?[0];
    g.mark_output(probs);
    Ok(g)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn c3d_matches_the_paper_layer_count_closely() {
        let g = c3d(ModelScale::tiny()).unwrap();
        assert!(g.validate().is_ok());
        // Paper: 27 total layers (11 CIL, 16 MIL).
        assert!(
            g.node_count() >= 24 && g.node_count() <= 32,
            "{}",
            g.node_count()
        );
        assert!(g
            .nodes()
            .any(|n| { n.op == OpKind::Conv && g.value(n.inputs[0]).shape.rank() == 5 }));
    }

    #[test]
    fn s3d_uses_separable_temporal_convolutions() {
        let g = s3d(ModelScale::tiny()).unwrap();
        assert!(g.validate().is_ok());
        // Separable blocks mean there are (1,3,3) and (3,1,1) kernels.
        let has_temporal = g.nodes().any(|n| {
            n.op == OpKind::Conv && g.value(n.inputs[1]).shape.dims().ends_with(&[3, 1, 1])
        });
        assert!(has_temporal);
        assert!(g.node_count() > 60, "{}", g.node_count());
    }

    #[test]
    fn s3d_is_deeper_than_c3d_but_less_compute_dense() {
        let c3d_graph = c3d(ModelScale::tiny()).unwrap();
        let s3d_graph = s3d(ModelScale::tiny()).unwrap();
        assert!(s3d_graph.node_count() > 2 * c3d_graph.node_count());
        let c3d_stats = c3d_graph.stats();
        let s3d_stats = s3d_graph.stats();
        let c3d_flops_per_layer = c3d_stats.flops as f64 / c3d_stats.total_layers as f64;
        let s3d_flops_per_layer = s3d_stats.flops as f64 / s3d_stats.total_layers as f64;
        assert!(c3d_flops_per_layer > s3d_flops_per_layer);
    }
}
