//! The operator vocabulary and its per-operator metadata.

use std::fmt;

use dnnf_tensor::{Layout, Shape};

use crate::{Attrs, MappingType, MathProperties};

/// Operator kinds supported by the reproduction.
///
/// The list covers the ONNX operators the paper's Table 2 classifies plus the
/// operators needed to express the 15 evaluated models (e.g. `Mish` for
/// YOLO-v4, `Gelu`/`LayerNormalization` for the transformer family).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[allow(missing_docs)]
pub enum OpKind {
    // --- One-to-One: arithmetic ---
    Add,
    Sub,
    Mul,
    Div,
    Pow,
    Min,
    Max,
    Neg,
    Abs,
    Sqrt,
    Square,
    Reciprocal,
    Exp,
    Log,
    Erf,
    Sin,
    Cos,
    Asin,
    BitShift,
    // --- One-to-One: activations ---
    Relu,
    LeakyRelu,
    PRelu,
    Sigmoid,
    HardSigmoid,
    HardSwish,
    Silu,
    Mish,
    Gelu,
    Tanh,
    Softplus,
    Clip,
    // --- One-to-One: rounding / casting / logic ---
    Ceil,
    Floor,
    Round,
    Cast,
    Greater,
    Equal,
    Not,
    Where,
    Identity,
    // --- One-to-One: normalization (inference form) and data selection ---
    BatchNormalization,
    Concat,
    Slice,
    Split,
    Pad,
    // --- One-to-Many ---
    Expand,
    Gather,
    Resize,
    Upsample,
    Tile,
    // --- Many-to-Many ---
    Conv,
    ConvTranspose,
    Gemm,
    MatMul,
    AveragePool,
    MaxPool,
    GlobalAveragePool,
    Softmax,
    LogSoftmax,
    ReduceSum,
    ReduceMean,
    ReduceProd,
    ReduceMax,
    ReduceMin,
    ArgMax,
    CumSum,
    Einsum,
    InstanceNormalization,
    LayerNormalization,
    // --- Reorganize ---
    Reshape,
    Flatten,
    Squeeze,
    Unsqueeze,
    // --- Shuffle ---
    Transpose,
    DepthToSpace,
    SpaceToDepth,
}

impl OpKind {
    /// Every operator kind, in declaration order. Used to regenerate the
    /// paper's Table 2.
    #[must_use]
    pub fn all() -> Vec<OpKind> {
        use OpKind::*;
        vec![
            Add,
            Sub,
            Mul,
            Div,
            Pow,
            Min,
            Max,
            Neg,
            Abs,
            Sqrt,
            Square,
            Reciprocal,
            Exp,
            Log,
            Erf,
            Sin,
            Cos,
            Asin,
            BitShift,
            Relu,
            LeakyRelu,
            PRelu,
            Sigmoid,
            HardSigmoid,
            HardSwish,
            Silu,
            Mish,
            Gelu,
            Tanh,
            Softplus,
            Clip,
            Ceil,
            Floor,
            Round,
            Cast,
            Greater,
            Equal,
            Not,
            Where,
            Identity,
            BatchNormalization,
            Concat,
            Slice,
            Split,
            Pad,
            Expand,
            Gather,
            Resize,
            Upsample,
            Tile,
            Conv,
            ConvTranspose,
            Gemm,
            MatMul,
            AveragePool,
            MaxPool,
            GlobalAveragePool,
            Softmax,
            LogSoftmax,
            ReduceSum,
            ReduceMean,
            ReduceProd,
            ReduceMax,
            ReduceMin,
            ArgMax,
            CumSum,
            Einsum,
            InstanceNormalization,
            LayerNormalization,
            Reshape,
            Flatten,
            Squeeze,
            Unsqueeze,
            Transpose,
            DepthToSpace,
            SpaceToDepth,
        ]
    }

    /// The ONNX-style operator name.
    #[must_use]
    pub fn name(self) -> &'static str {
        use OpKind::*;
        match self {
            Add => "Add",
            Sub => "Sub",
            Mul => "Mul",
            Div => "Div",
            Pow => "Pow",
            Min => "Min",
            Max => "Max",
            Neg => "Neg",
            Abs => "Abs",
            Sqrt => "Sqrt",
            Square => "Square",
            Reciprocal => "Reciprocal",
            Exp => "Exp",
            Log => "Log",
            Erf => "Erf",
            Sin => "Sin",
            Cos => "Cos",
            Asin => "Asin",
            BitShift => "BitShift",
            Relu => "Relu",
            LeakyRelu => "LeakyRelu",
            PRelu => "PRelu",
            Sigmoid => "Sigmoid",
            HardSigmoid => "HardSigmoid",
            HardSwish => "HardSwish",
            Silu => "Silu",
            Mish => "Mish",
            Gelu => "Gelu",
            Tanh => "Tanh",
            Softplus => "Softplus",
            Clip => "Clip",
            Ceil => "Ceil",
            Floor => "Floor",
            Round => "Round",
            Cast => "Cast",
            Greater => "Greater",
            Equal => "Equal",
            Not => "Not",
            Where => "Where",
            Identity => "Identity",
            BatchNormalization => "BatchNormalization",
            Concat => "Concat",
            Slice => "Slice",
            Split => "Split",
            Pad => "Pad",
            Expand => "Expand",
            Gather => "Gather",
            Resize => "Resize",
            Upsample => "Upsample",
            Tile => "Tile",
            Conv => "Conv",
            ConvTranspose => "ConvTranspose",
            Gemm => "Gemm",
            MatMul => "MatMul",
            AveragePool => "AveragePool",
            MaxPool => "MaxPool",
            GlobalAveragePool => "GlobalAveragePool",
            Softmax => "Softmax",
            LogSoftmax => "LogSoftmax",
            ReduceSum => "ReduceSum",
            ReduceMean => "ReduceMean",
            ReduceProd => "ReduceProd",
            ReduceMax => "ReduceMax",
            ReduceMin => "ReduceMin",
            ArgMax => "ArgMax",
            CumSum => "CumSum",
            Einsum => "Einsum",
            InstanceNormalization => "InstanceNormalization",
            LayerNormalization => "LayerNormalization",
            Reshape => "Reshape",
            Flatten => "Flatten",
            Squeeze => "Squeeze",
            Unsqueeze => "Unsqueeze",
            Transpose => "Transpose",
            DepthToSpace => "DepthToSpace",
            SpaceToDepth => "SpaceToDepth",
        }
    }

    /// Parses the ONNX-style name produced by [`OpKind::name`] back into the
    /// operator kind. Returns `None` for names no bundled operator carries —
    /// the strict-import path of the `.dnnfg` graph format turns that into a
    /// typed unknown-operator error rather than guessing.
    #[must_use]
    pub fn from_name(name: &str) -> Option<OpKind> {
        OpKind::all().into_iter().find(|op| op.name() == name)
    }

    /// The operator's mapping type per the paper's Table 2 classification,
    /// assuming non-broadcasting inputs. Use
    /// [`OpKind::mapping_type_with_shapes`] when input shapes are known.
    #[must_use]
    pub fn mapping_type(self) -> MappingType {
        use OpKind::*;
        match self {
            Add | Sub | Mul | Div | Pow | Min | Max | Neg | Abs | Sqrt | Square | Reciprocal
            | Exp | Log | Erf | Sin | Cos | Asin | BitShift | Relu | LeakyRelu | PRelu
            | Sigmoid | HardSigmoid | HardSwish | Silu | Mish | Gelu | Tanh | Softplus | Clip
            | Ceil | Floor | Round | Cast | Greater | Equal | Not | Where | Identity
            | BatchNormalization | Concat | Slice | Split | Pad => MappingType::OneToOne,
            Expand | Gather | Resize | Upsample | Tile => MappingType::OneToMany,
            Conv
            | ConvTranspose
            | Gemm
            | MatMul
            | AveragePool
            | MaxPool
            | GlobalAveragePool
            | Softmax
            | LogSoftmax
            | ReduceSum
            | ReduceMean
            | ReduceProd
            | ReduceMax
            | ReduceMin
            | ArgMax
            | CumSum
            | Einsum
            | InstanceNormalization
            | LayerNormalization => MappingType::ManyToMany,
            Reshape | Flatten | Squeeze | Unsqueeze => MappingType::Reorganize,
            Transpose | DepthToSpace | SpaceToDepth => MappingType::Shuffle,
        }
    }

    /// Mapping type refined with shape information: an element-wise operator
    /// whose inputs broadcast (Table 2: "Elementwise w/ broadcast") is
    /// classified as One-to-Many because a single input element feeds many
    /// output elements.
    #[must_use]
    pub fn mapping_type_with_shapes(self, inputs: &[Shape], output: &Shape) -> MappingType {
        let base = self.mapping_type();
        if base == MappingType::OneToOne
            && self.is_elementwise_binary()
            && inputs.iter().any(|s| s != output)
        {
            return MappingType::OneToMany;
        }
        base
    }

    /// Mathematical properties of the operator, stored in the ECG and used by
    /// the graph-rewriting pass.
    #[must_use]
    pub fn math_properties(self) -> MathProperties {
        use OpKind::*;
        match self {
            Mul => MathProperties::ring_like(),
            Add | Min | Max => MathProperties::semigroup(),
            // Matrix product and convolution are associative and distribute
            // over addition (A·B + A·C = A·(B+C)), but are not commutative.
            MatMul | Gemm | Conv => MathProperties {
                associative: true,
                commutative: false,
                distributive_over_add: true,
                commutes_with_reduction: false,
            },
            // Paper Table 4 "Commutative" rows: BitShift/Exp can be swapped
            // with the reduction that follows them.
            BitShift | Exp => MathProperties {
                associative: false,
                commutative: false,
                distributive_over_add: false,
                commutes_with_reduction: true,
            },
            _ => MathProperties::none(),
        }
    }

    /// Whether the paper would count a layer of this operator as
    /// compute-intensive (CIL: "each input is used more than once, e.g.
    /// MatMul, CONV"). Everything else is memory-intensive (MIL).
    #[must_use]
    pub fn is_compute_intensive(self) -> bool {
        use OpKind::*;
        matches!(self, Conv | ConvTranspose | Gemm | MatMul | Einsum)
    }

    /// Minimum number of inputs.
    #[must_use]
    pub fn min_inputs(self) -> usize {
        use OpKind::*;
        match self {
            Add | Sub | Mul | Div | Pow | Min | Max | Greater | Equal | BitShift | PRelu
            | MatMul | Gather => 2,
            Where => 3,
            Gemm | Conv | ConvTranspose => 2,
            BatchNormalization => 5,
            InstanceNormalization | LayerNormalization => 3,
            Concat | Einsum => 1,
            _ => 1,
        }
    }

    /// Maximum number of inputs, or `None` for variadic operators.
    #[must_use]
    pub fn max_inputs(self) -> Option<usize> {
        use OpKind::*;
        match self {
            Concat | Einsum | Min | Max => None,
            Where => Some(3),
            Gemm | Conv | ConvTranspose => Some(3),
            BatchNormalization => Some(5),
            InstanceNormalization | LayerNormalization => Some(3),
            Clip => Some(3),
            Slice => Some(5),
            Pad => Some(3),
            Resize | Upsample => Some(4),
            x if x.min_inputs() == 2 => Some(2),
            _ => Some(1),
        }
    }

    /// Whether this is a unary element-wise operator (`y[i] = f(x[i])`).
    #[must_use]
    pub fn is_elementwise_unary(self) -> bool {
        use OpKind::*;
        matches!(
            self,
            Neg | Abs
                | Sqrt
                | Square
                | Reciprocal
                | Exp
                | Log
                | Erf
                | Sin
                | Cos
                | Asin
                | Relu
                | LeakyRelu
                | Sigmoid
                | HardSigmoid
                | HardSwish
                | Silu
                | Mish
                | Gelu
                | Tanh
                | Softplus
                | Clip
                | Ceil
                | Floor
                | Round
                | Cast
                | Not
                | Identity
        )
    }

    /// Whether this is a binary element-wise operator (`y[i] = f(a[i], b[i])`
    /// with broadcasting).
    #[must_use]
    pub fn is_elementwise_binary(self) -> bool {
        use OpKind::*;
        matches!(
            self,
            Add | Sub | Mul | Div | Pow | Min | Max | Greater | Equal | BitShift | PRelu
        )
    }

    /// Whether this operator reduces one or more axes (`Reduce*`, `ArgMax`).
    #[must_use]
    pub fn is_reduction(self) -> bool {
        use OpKind::*;
        matches!(
            self,
            ReduceSum | ReduceMean | ReduceProd | ReduceMax | ReduceMin | ArgMax
        )
    }

    /// Whether the operator only moves data (no arithmetic): the Reorganize
    /// and Shuffle classes plus pure data-selection operators. These are the
    /// candidates of the intra-block data-movement elimination (Figure 5).
    #[must_use]
    pub fn is_data_movement(self) -> bool {
        use OpKind::*;
        matches!(
            self.mapping_type(),
            MappingType::Reorganize | MappingType::Shuffle
        ) || matches!(
            self,
            Slice | Split | Concat | Identity | Gather | Expand | Tile | Pad
        )
    }

    /// The data layout this operator prefers, used by the inter-block
    /// data-format selection (paper §4.4.2). `None` means the operator is
    /// layout-agnostic (most One-to-One operators).
    #[must_use]
    pub fn preferred_layout(self) -> Option<Layout> {
        use OpKind::*;
        match self {
            Conv
            | ConvTranspose
            | MaxPool
            | AveragePool
            | GlobalAveragePool
            | BatchNormalization
            | InstanceNormalization => Some(Layout::Nchw),
            Resize | Upsample | DepthToSpace | SpaceToDepth => Some(Layout::Nhwc),
            Gemm | MatMul | Einsum | Softmax | LogSoftmax | LayerNormalization => {
                Some(Layout::RowMajor)
            }
            _ => None,
        }
    }

    /// Whether this operator is a *dominant* operator for layout selection:
    /// its performance is significantly affected by the data format (the
    /// paper names CONV, GEMM and Softmax as examples).
    #[must_use]
    pub fn is_layout_dominant(self) -> bool {
        use OpKind::*;
        matches!(
            self,
            Conv | ConvTranspose | Gemm | MatMul | Einsum | Softmax | AveragePool | MaxPool
        )
    }

    /// Applies the operator as a scalar unary function, if it is one.
    ///
    /// This is the kernel used both by the reference element-wise kernels and
    /// by the fused-block engine when One-to-One operators are inlined into a
    /// fusion block. It delegates to [`crate::ScalarUnaryFn`], the compiled
    /// form with attributes resolved ahead of time, so the two paths share
    /// one implementation and cannot drift apart.
    #[must_use]
    pub fn scalar_unary(self, x: f32, attrs: &Attrs) -> Option<f32> {
        crate::ScalarUnaryFn::compile(self, attrs).map(|f| f.apply(x))
    }

    /// Applies the operator as a scalar binary function, if it is one.
    #[inline]
    #[must_use]
    pub fn scalar_binary(self, a: f32, b: f32) -> Option<f32> {
        use OpKind::*;
        let y = match self {
            Add => a + b,
            Sub => a - b,
            Mul => a * b,
            Div => a / b,
            Pow => a.powf(b),
            Min => a.min(b),
            Max => a.max(b),
            Greater => {
                if a > b {
                    1.0
                } else {
                    0.0
                }
            }
            Equal => {
                if a == b {
                    1.0
                } else {
                    0.0
                }
            }
            BitShift => {
                // Left bit-shift on the integer interpretation, matching the
                // paper's BitShift examples; elements are assumed integral.
                ((a as i64) << (b as i64).clamp(0, 62)) as f32
            }
            PRelu => {
                if a < 0.0 {
                    a * b
                } else {
                    a
                }
            }
            _ => return None,
        };
        Some(y)
    }
}

impl fmt::Display for OpKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_classification_spot_checks() {
        // Representative rows of Table 2.
        assert_eq!(OpKind::Add.mapping_type(), MappingType::OneToOne);
        assert_eq!(OpKind::Relu.mapping_type(), MappingType::OneToOne);
        assert_eq!(
            OpKind::BatchNormalization.mapping_type(),
            MappingType::OneToOne
        );
        assert_eq!(OpKind::Expand.mapping_type(), MappingType::OneToMany);
        assert_eq!(OpKind::Gather.mapping_type(), MappingType::OneToMany);
        assert_eq!(OpKind::Conv.mapping_type(), MappingType::ManyToMany);
        assert_eq!(OpKind::Gemm.mapping_type(), MappingType::ManyToMany);
        assert_eq!(OpKind::Softmax.mapping_type(), MappingType::ManyToMany);
        assert_eq!(OpKind::Reshape.mapping_type(), MappingType::Reorganize);
        assert_eq!(OpKind::Flatten.mapping_type(), MappingType::Reorganize);
        assert_eq!(OpKind::Transpose.mapping_type(), MappingType::Shuffle);
        assert_eq!(OpKind::DepthToSpace.mapping_type(), MappingType::Shuffle);
    }

    #[test]
    fn broadcasting_elementwise_becomes_one_to_many() {
        let a = Shape::new(vec![2, 3]);
        let b = Shape::new(vec![3]);
        let out = Shape::new(vec![2, 3]);
        assert_eq!(
            OpKind::Add.mapping_type_with_shapes(&[a.clone(), b], &out),
            MappingType::OneToMany
        );
        assert_eq!(
            OpKind::Add.mapping_type_with_shapes(&[a.clone(), a.clone()], &out),
            MappingType::OneToOne
        );
        // Unary ops never become One-to-Many.
        assert_eq!(
            OpKind::Relu.mapping_type_with_shapes(std::slice::from_ref(&a), &out),
            MappingType::OneToOne
        );
    }

    #[test]
    fn cil_mil_classification() {
        assert!(OpKind::Conv.is_compute_intensive());
        assert!(OpKind::MatMul.is_compute_intensive());
        assert!(!OpKind::Relu.is_compute_intensive());
        assert!(!OpKind::MaxPool.is_compute_intensive());
        assert!(!OpKind::Softmax.is_compute_intensive());
    }

    #[test]
    fn math_properties_match_paper_examples() {
        assert!(OpKind::Mul.math_properties().distributive_over_add);
        assert!(OpKind::Add.math_properties().commutative);
        assert!(OpKind::BitShift.math_properties().commutes_with_reduction);
        assert!(OpKind::Exp.math_properties().commutes_with_reduction);
        assert!(OpKind::MatMul.math_properties().distributive_over_add);
        assert!(!OpKind::MatMul.math_properties().commutative);
        assert!(!OpKind::Relu.math_properties().any());
    }

    #[test]
    fn scalar_unary_kernels() {
        let a = Attrs::new();
        assert_eq!(OpKind::Relu.scalar_unary(-2.0, &a), Some(0.0));
        assert_eq!(OpKind::Relu.scalar_unary(3.0, &a), Some(3.0));
        assert_eq!(OpKind::Square.scalar_unary(3.0, &a), Some(9.0));
        assert_eq!(OpKind::Reciprocal.scalar_unary(4.0, &a), Some(0.25));
        assert!((OpKind::Sigmoid.scalar_unary(0.0, &a).unwrap() - 0.5).abs() < 1e-6);
        assert!((OpKind::Gelu.scalar_unary(0.0, &a).unwrap()).abs() < 1e-6);
        assert!((OpKind::Erf.scalar_unary(0.0, &a).unwrap()).abs() < 1e-6);
        assert!(OpKind::Add.scalar_unary(1.0, &a).is_none());
        let clip = Attrs::new().with_float("min", 0.0).with_float("max", 6.0);
        assert_eq!(OpKind::Clip.scalar_unary(8.0, &clip), Some(6.0));
        let leaky = Attrs::new().with_float("alpha", 0.1);
        assert!((OpKind::LeakyRelu.scalar_unary(-1.0, &leaky).unwrap() + 0.1).abs() < 1e-6);
    }

    #[test]
    fn scalar_binary_kernels() {
        assert_eq!(OpKind::Add.scalar_binary(2.0, 3.0), Some(5.0));
        assert_eq!(OpKind::Sub.scalar_binary(2.0, 3.0), Some(-1.0));
        assert_eq!(OpKind::Mul.scalar_binary(2.0, 3.0), Some(6.0));
        assert_eq!(OpKind::Div.scalar_binary(3.0, 2.0), Some(1.5));
        assert_eq!(OpKind::Max.scalar_binary(2.0, 3.0), Some(3.0));
        assert_eq!(OpKind::Greater.scalar_binary(2.0, 3.0), Some(0.0));
        assert_eq!(OpKind::BitShift.scalar_binary(3.0, 2.0), Some(12.0));
        assert_eq!(OpKind::PRelu.scalar_binary(-2.0, 0.5), Some(-1.0));
        assert!(OpKind::Relu.scalar_binary(1.0, 2.0).is_none());
    }

    #[test]
    fn erf_matches_known_values() {
        let erf = |x| OpKind::Erf.scalar_unary(x, &Attrs::new()).unwrap();
        assert!((erf(1.0) - 0.842_700_8).abs() < 1e-4);
        assert!((erf(-1.0) + 0.842_700_8).abs() < 1e-4);
        assert!((erf(2.0) - 0.995_322_3).abs() < 1e-4);
    }

    #[test]
    fn unary_binary_classification_is_consistent_with_scalar_kernels() {
        let attrs = Attrs::new();
        for op in OpKind::all() {
            if op.is_elementwise_unary() {
                assert!(
                    op.scalar_unary(0.5, &attrs).is_some(),
                    "{op} should have a unary kernel"
                );
            }
            if op.is_elementwise_binary() {
                assert!(
                    op.scalar_binary(0.5, 0.25).is_some(),
                    "{op} should have a binary kernel"
                );
            }
        }
    }

    #[test]
    fn data_movement_classification() {
        assert!(OpKind::Transpose.is_data_movement());
        assert!(OpKind::Reshape.is_data_movement());
        assert!(OpKind::Slice.is_data_movement());
        assert!(OpKind::Concat.is_data_movement());
        assert!(!OpKind::Conv.is_data_movement());
        assert!(!OpKind::Relu.is_data_movement());
    }

    #[test]
    fn layout_preferences() {
        assert_eq!(OpKind::Conv.preferred_layout(), Some(Layout::Nchw));
        assert_eq!(OpKind::Gemm.preferred_layout(), Some(Layout::RowMajor));
        assert_eq!(OpKind::Relu.preferred_layout(), None);
        assert!(OpKind::Conv.is_layout_dominant());
        assert!(!OpKind::Relu.is_layout_dominant());
    }

    #[test]
    fn all_ops_have_unique_names() {
        let all = OpKind::all();
        let mut names: Vec<&str> = all.iter().map(|o| o.name()).collect();
        let total = names.len();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), total);
        assert!(
            total >= 70,
            "expected a rich operator vocabulary, got {total}"
        );
    }

    #[test]
    fn from_name_round_trips_every_op_and_rejects_unknowns() {
        for op in OpKind::all() {
            assert_eq!(OpKind::from_name(op.name()), Some(op));
        }
        assert_eq!(OpKind::from_name("NotAnOp"), None);
        assert_eq!(OpKind::from_name("conv"), None); // case-sensitive
        assert_eq!(OpKind::from_name(""), None);
    }

    #[test]
    fn arity_bounds_are_consistent() {
        for op in OpKind::all() {
            if let Some(max) = op.max_inputs() {
                assert!(max >= op.min_inputs(), "{op}: max < min inputs");
            }
        }
        assert_eq!(OpKind::Where.min_inputs(), 3);
        assert_eq!(OpKind::Concat.max_inputs(), None);
        assert_eq!(OpKind::BatchNormalization.min_inputs(), 5);
    }
}
