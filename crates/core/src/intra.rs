//! Intra-block optimization: data-movement operator elimination (paper
//! §4.4.2, Figure 5).
//!
//! Inside a fusion block, operators of the Shuffle/Reorganize classes (and
//! pure data-selection operators such as `Slice`) whose result feeds exactly
//! one consumer *within the same block* do not need to materialize anything:
//! the consumer can read the producer's data through a transformed index.
//! This pass identifies those operators and reports the intermediate bytes
//! they no longer have to write.

use dnnf_graph::NodeId;

use crate::{Ecg, FusionPlan};

/// Result of the data-movement elimination pass.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct DataMovementElimination {
    /// Nodes replaced by index transforms.
    pub eliminated_nodes: Vec<NodeId>,
    /// Intermediate-result bytes that no longer need to be written and
    /// re-read.
    pub bytes_saved: u64,
}

impl DataMovementElimination {
    /// Number of eliminated data-movement operators.
    #[must_use]
    pub fn count(&self) -> usize {
        self.eliminated_nodes.len()
    }
}

/// Runs the intra-block data-movement elimination over a fusion plan.
#[must_use]
pub fn eliminate_data_movement(ecg: &Ecg, plan: &FusionPlan) -> DataMovementElimination {
    let graph = ecg.graph();
    let mut result = DataMovementElimination::default();
    for block in plan.blocks() {
        if block.len() < 2 {
            continue;
        }
        for &n in &block.nodes {
            let node = graph.node(n);
            if !node.op.is_data_movement() {
                continue;
            }
            // Every output must have exactly one consumer, inside this block,
            // and must not be a graph output (Figure 5: "the transformed data
            // is used by only one subsequent operator").
            let removable = node.outputs.iter().all(|&out| {
                let v = graph.value(out);
                v.consumers.len() == 1
                    && !graph.outputs().contains(&out)
                    && v.consumers.iter().all(|&c| plan.block_of(c) == block.id)
            });
            if removable {
                result.eliminated_nodes.push(n);
                result.bytes_saved += node
                    .outputs
                    .iter()
                    .map(|&out| graph.value(out).size_bytes() as u64)
                    .sum::<u64>();
            }
        }
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AnalyticLatencyModel, FusionPlanner, PlanOptions};
    use dnnf_graph::Graph;
    use dnnf_ops::{Attrs, OpKind};
    use dnnf_profiledb::ProfileDatabase;
    use dnnf_tensor::Shape;

    fn plan_for(graph: &Graph) -> (Ecg, FusionPlan) {
        let ecg = Ecg::new(graph.clone());
        let model = AnalyticLatencyModel::default();
        let planner = FusionPlanner::new(&ecg, &model, PlanOptions::default());
        let mut db = ProfileDatabase::new();
        let plan = planner.plan(&mut db);
        (ecg, plan)
    }

    #[test]
    fn transpose_feeding_single_consumer_in_block_is_eliminated() {
        // Relu -> Transpose -> Sigmoid : all one block, the Transpose's output
        // feeds exactly one in-block consumer.
        let mut g = Graph::new("t");
        let x = g.add_input("x", Shape::new(vec![2, 3, 4]));
        let r = g.add_op(OpKind::Relu, Attrs::new(), &[x], "relu").unwrap()[0];
        let t = g
            .add_op(
                OpKind::Transpose,
                Attrs::new().with_ints("perm", vec![0, 2, 1]),
                &[r],
                "tr",
            )
            .unwrap()[0];
        let s = g
            .add_op(OpKind::Sigmoid, Attrs::new(), &[t], "sig")
            .unwrap()[0];
        g.mark_output(s);
        let (ecg, plan) = plan_for(&g);
        assert_eq!(plan.fused_layer_count(), 1);
        let elim = eliminate_data_movement(&ecg, &plan);
        assert_eq!(elim.count(), 1);
        assert_eq!(elim.bytes_saved, 2 * 3 * 4 * 4);
    }

    #[test]
    fn graph_output_data_movement_is_not_eliminated() {
        let mut g = Graph::new("t-out");
        let x = g.add_input("x", Shape::new(vec![2, 3]));
        let r = g.add_op(OpKind::Relu, Attrs::new(), &[x], "relu").unwrap()[0];
        let t = g
            .add_op(
                OpKind::Transpose,
                Attrs::new().with_ints("perm", vec![1, 0]),
                &[r],
                "tr",
            )
            .unwrap()[0];
        g.mark_output(t);
        let (ecg, plan) = plan_for(&g);
        let elim = eliminate_data_movement(&ecg, &plan);
        assert_eq!(elim.count(), 0);
    }

    #[test]
    fn multi_consumer_data_movement_survives() {
        // The Transpose output is consumed twice — the data locality benefit
        // may outweigh elimination, so the pass must keep it.
        let mut g = Graph::new("fanout");
        let x = g.add_input("x", Shape::new(vec![2, 3]));
        let r = g.add_op(OpKind::Relu, Attrs::new(), &[x], "relu").unwrap()[0];
        let t = g
            .add_op(
                OpKind::Transpose,
                Attrs::new().with_ints("perm", vec![1, 0]),
                &[r],
                "tr",
            )
            .unwrap()[0];
        let a = g
            .add_op(OpKind::Sigmoid, Attrs::new(), &[t], "sig")
            .unwrap()[0];
        let b = g.add_op(OpKind::Tanh, Attrs::new(), &[t], "tanh").unwrap()[0];
        let add = g.add_op(OpKind::Add, Attrs::new(), &[a, b], "add").unwrap()[0];
        g.mark_output(add);
        let (ecg, plan) = plan_for(&g);
        let elim = eliminate_data_movement(&ecg, &plan);
        assert!(elim
            .eliminated_nodes
            .iter()
            .all(|&n| g.node(n).op != OpKind::Transpose));
    }

    #[test]
    fn singleton_blocks_are_untouched() {
        let mut g = Graph::new("lonely");
        let x = g.add_input("x", Shape::new(vec![4, 4]));
        let t = g
            .add_op(
                OpKind::Transpose,
                Attrs::new().with_ints("perm", vec![1, 0]),
                &[x],
                "tr",
            )
            .unwrap()[0];
        g.mark_output(t);
        let (ecg, plan) = plan_for(&g);
        let elim = eliminate_data_movement(&ecg, &plan);
        assert_eq!(elim.count(), 0);
        assert_eq!(elim.bytes_saved, 0);
    }
}
