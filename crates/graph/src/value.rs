//! Values (tensors) flowing through the graph.

use dnnf_tensor::{DataType, Shape};

use crate::NodeId;

/// Identifier of a value within its graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ValueId(pub(crate) usize);

impl ValueId {
    /// Raw index of this value (stable for the lifetime of the graph).
    #[must_use]
    pub fn index(self) -> usize {
        self.0
    }
}

/// The role a value plays in the graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ValueKind {
    /// A model input (activation fed at inference time).
    Input,
    /// A constant weight/parameter baked into the model.
    Weight,
    /// An intermediate result produced by one node and consumed by others.
    Intermediate,
    /// A graph output (also counted as an intermediate result for memory
    /// accounting, matching the paper's IRS definition).
    Output,
}

/// A tensor value in the graph: shape, dtype, role, producer and consumers.
#[derive(Debug, Clone, PartialEq)]
pub struct Value {
    /// Identifier within the graph.
    pub id: ValueId,
    /// Human-readable name.
    pub name: String,
    /// Inferred (static) shape.
    pub shape: Shape,
    /// Element type tag.
    pub dtype: DataType,
    /// Role of the value.
    pub kind: ValueKind,
    /// The node producing this value (`None` for inputs and weights).
    pub producer: Option<NodeId>,
    /// Nodes consuming this value.
    pub consumers: Vec<NodeId>,
}

impl Value {
    /// Size of the value in bytes under its dtype tag.
    #[must_use]
    pub fn size_bytes(&self) -> usize {
        self.shape.size_bytes(self.dtype.size_bytes())
    }

    /// Whether this value is an intermediate result (including outputs),
    /// i.e. it contributes to the paper's "IRS size" metric.
    #[must_use]
    pub fn is_intermediate(&self) -> bool {
        matches!(self.kind, ValueKind::Intermediate | ValueKind::Output)
    }

    /// Whether the value is a constant weight.
    #[must_use]
    pub fn is_weight(&self) -> bool {
        self.kind == ValueKind::Weight
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn value(kind: ValueKind) -> Value {
        Value {
            id: ValueId(0),
            name: "v".into(),
            shape: Shape::new(vec![2, 3]),
            dtype: DataType::F32,
            kind,
            producer: None,
            consumers: Vec::new(),
        }
    }

    #[test]
    fn size_bytes_uses_dtype() {
        assert_eq!(value(ValueKind::Input).size_bytes(), 24);
    }

    #[test]
    fn intermediate_classification() {
        assert!(value(ValueKind::Intermediate).is_intermediate());
        assert!(value(ValueKind::Output).is_intermediate());
        assert!(!value(ValueKind::Input).is_intermediate());
        assert!(!value(ValueKind::Weight).is_intermediate());
        assert!(value(ValueKind::Weight).is_weight());
    }
}
