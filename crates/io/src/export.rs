//! Graph → `.dnnfg` text serialization.

use std::path::Path;

use dnnf_graph::{Graph, ValueKind};

use crate::error::IoError;
use crate::text::{attrs_token, data_token, dtype_token, escape, fnv64, shape_token};

/// The v1 format header — the first line of every `.dnnfg` file.
pub const FORMAT_HEADER: &str = "dnnfusion-graph/v1";

/// Serializes a graph to canonical `.dnnfg` text (see
/// `docs/graph-format.md`). The output is deterministic: the same graph
/// always produces byte-identical text, and
/// [`from_text`](crate::from_text)`(to_text(g))` reconstructs a graph with
/// the same structural fingerprint, the same seq-axis markings, and the
/// same weight data — strictly enough that re-exporting the import is again
/// byte-identical.
#[must_use]
pub fn to_text(graph: &Graph) -> String {
    let mut body = format!("{FORMAT_HEADER}\n");
    body.push_str(&format!("graph {}\n", escape(graph.name())));

    body.push_str(&format!("values {}\n", graph.value_count()));
    for value in graph.values() {
        let role = match value.kind {
            ValueKind::Input => "input",
            ValueKind::Weight => "weight",
            ValueKind::Intermediate => "inter",
            ValueKind::Output => "output",
        };
        body.push_str(&format!(
            "value {} {role} {} {} {}",
            value.id.index(),
            escape(&value.name),
            shape_token(&value.shape),
            dtype_token(value.dtype),
        ));
        match value.kind {
            ValueKind::Weight => {
                if graph.weight_data(value.id).is_some() {
                    body.push_str(" data");
                } else {
                    body.push_str(" seeded");
                }
            }
            ValueKind::Intermediate | ValueKind::Output => {
                // Every intermediate/output value is produced by exactly one
                // node; `Graph` cannot construct one otherwise.
                let producer = value.producer.expect("produced value has a producer");
                body.push_str(&format!(" from {}", producer.index()));
            }
            ValueKind::Input => {}
        }
        body.push('\n');
    }

    body.push_str(&format!("nodes {}\n", graph.node_count()));
    for node in graph.nodes() {
        body.push_str(&format!(
            "node {} {} {} in",
            node.id.index(),
            node.op.name(),
            escape(&node.name),
        ));
        for &v in &node.inputs {
            body.push_str(&format!(" {}", v.index()));
        }
        body.push_str(" out");
        for &v in &node.outputs {
            body.push_str(&format!(" {}", v.index()));
        }
        body.push_str(&format!(" attrs {}\n", attrs_token(&node.attrs)));
    }

    body.push_str(&format!("outputs {}\n", graph.outputs().len()));
    for &id in graph.outputs() {
        body.push_str(&format!("output {}\n", id.index()));
    }

    let seq_marked: Vec<_> = graph
        .values()
        .filter_map(|v| graph.seq_axis(v.id).map(|axis| (v.id, axis)))
        .collect();
    body.push_str(&format!("seq_axes {}\n", seq_marked.len()));
    for (id, axis) in seq_marked {
        body.push_str(&format!("seq_axis {} {axis}\n", id.index()));
    }

    let data_weights: Vec<_> = graph
        .values()
        .filter_map(|v| graph.weight_data(v.id).map(|t| (v.id, t)))
        .collect();
    body.push_str(&format!("weights {}\n", data_weights.len()));
    for (id, tensor) in data_weights {
        body.push_str(&format!(
            "weight {} {} {}\n",
            id.index(),
            tensor.data().len(),
            data_token(tensor.data()),
        ));
    }

    let checksum = fnv64(body.as_bytes());
    body.push_str(&format!("checksum {checksum:016x}\n"));
    body
}

/// Serializes a graph and writes it to `path`.
///
/// # Errors
///
/// Returns [`IoError::Write`] when the file cannot be written.
pub fn save(graph: &Graph, path: impl AsRef<Path>) -> Result<(), IoError> {
    let path = path.as_ref();
    std::fs::write(path, to_text(graph)).map_err(|e| IoError::Write {
        path: path.display().to_string(),
        message: e.to_string(),
    })
}
