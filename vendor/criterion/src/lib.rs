//! Minimal, dependency-free shim of the parts of the `criterion` crate API
//! that this workspace's benches use. The build environment has no registry
//! access, so the workspace vendors this crate and path-depends on it under
//! the name `criterion`.
//!
//! Benchmarks compile and run under `cargo bench` with `harness = false`,
//! timing each closure over a fixed number of samples and printing
//! mean/min/max wall-clock per iteration. There is no statistical analysis,
//! HTML report, or baseline comparison — this is a smoke-timing harness that
//! keeps the bench code honest until the real criterion can be used.

#![warn(missing_docs)]

use std::fmt::Display;
use std::hint;
use std::time::{Duration, Instant};

/// Opaque value barrier, re-exported for bench code that wants it.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Identifies one benchmark within a group: a function name plus a parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Creates an id like `"{name}/{parameter}"`.
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{name}/{parameter}"),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            label: s.to_owned(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { label: s }
    }
}

/// Passed to bench closures; [`Bencher::iter`] times the workload.
#[derive(Debug, Default)]
pub struct Bencher {
    samples: Vec<Duration>,
    sample_count: usize,
}

impl Bencher {
    fn new(sample_count: usize) -> Self {
        Bencher {
            samples: Vec::with_capacity(sample_count),
            sample_count,
        }
    }

    /// Runs `routine` once for warm-up, then `sample_count` timed times.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        hint::black_box(routine());
        for _ in 0..self.sample_count {
            let start = Instant::now();
            hint::black_box(routine());
            self.samples.push(start.elapsed());
        }
    }

    fn report(&self, label: &str) {
        if self.samples.is_empty() {
            println!("{label}: no samples (Bencher::iter never called)");
            return;
        }
        let total: Duration = self.samples.iter().sum();
        let mean = total / self.samples.len() as u32;
        let min = self.samples.iter().min().expect("non-empty");
        let max = self.samples.iter().max().expect("non-empty");
        println!(
            "{label}: mean {mean:?}, min {min:?}, max {max:?} ({} samples)",
            self.samples.len()
        );
    }
}

/// A named collection of related benchmarks sharing a sample size.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples each benchmark collects.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Benchmarks `routine`, handing it a reference to `input`.
    pub fn bench_with_input<I: ?Sized, R>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut routine: R,
    ) -> &mut Self
    where
        R: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let mut bencher = Bencher::new(self.sample_size);
        routine(&mut bencher, input);
        bencher.report(&format!("{}/{}", self.name, id.label));
        self
    }

    /// Benchmarks `routine` with no input.
    pub fn bench_function<R>(&mut self, id: impl Into<BenchmarkId>, mut routine: R) -> &mut Self
    where
        R: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher::new(self.sample_size);
        routine(&mut bencher);
        bencher.report(&format!("{}/{}", self.name, id.label));
        self
    }

    /// Finishes the group (upstream flushes reports here; the shim prints
    /// eagerly, so this is a no-op kept for API compatibility).
    pub fn finish(self) {}
}

/// Entry point mirroring `criterion::Criterion`.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            _criterion: self,
        }
    }

    /// Benchmarks a standalone function outside any group.
    pub fn bench_function<R: FnMut(&mut Bencher)>(
        &mut self,
        name: &str,
        mut routine: R,
    ) -> &mut Self {
        let mut bencher = Bencher::new(10);
        routine(&mut bencher);
        bencher.report(name);
        self
    }
}

/// Declares a benchmark group runner, mirroring `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench `main`, mirroring `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_samples() {
        let mut b = Bencher::new(5);
        let mut count = 0u64;
        b.iter(|| count += 1);
        // One warm-up call plus five timed samples.
        assert_eq!(count, 6);
        assert_eq!(b.samples.len(), 5);
    }

    #[test]
    fn group_runs_benchmarks() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(2);
        let mut runs = 0u64;
        group.bench_with_input(BenchmarkId::new("with-input", 1), &3u64, |b, &x| {
            b.iter(|| runs += x)
        });
        group.bench_function(BenchmarkId::new("no-input", 2), |b| b.iter(|| runs += 1));
        group.finish();
        assert!(runs > 0);
    }
}
