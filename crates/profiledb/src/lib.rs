//! Offline profiling database used by DNNFusion's fusion plan exploration.
//!
//! The paper resolves the "yellow" cells of its mapping-type analysis with a
//! profiling database collected offline: each entry records the operators
//! involved (types, shapes and combination) and the measured latency. With a
//! pre-computed database, compilation-time profiling becomes a lookup
//! (Figure 9b); without it, the compiler measures (or, in this reproduction,
//! simulates) the latency and records it for future compilations.
//!
//! # Example
//!
//! ```
//! use dnnf_profiledb::{ProfileDatabase, ProfileKey};
//!
//! let mut db = ProfileDatabase::new();
//! let key = ProfileKey::new(["Conv", "Relu"], "1x16x32x32");
//! assert_eq!(db.lookup(&key), None);
//! db.record(key.clone(), 42.0);
//! assert_eq!(db.lookup(&key), Some(42.0));
//! assert_eq!(db.hits(), 1);
//! assert_eq!(db.misses(), 1);
//! ```

#![warn(missing_docs)]

use std::collections::BTreeMap;
use std::fmt;
use std::io::{self, Read, Write};
use std::path::Path;

/// Key identifying one profiled operator combination.
///
/// A key is the ordered list of operator names in the (candidate) fusion
/// block plus a shape fingerprint — mirroring the paper's "operator types,
/// shape, and their combinations".
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ProfileKey {
    ops: Vec<String>,
    shape_fingerprint: String,
}

impl ProfileKey {
    /// Creates a key from operator names and a shape fingerprint.
    pub fn new<I, S>(ops: I, shape_fingerprint: impl Into<String>) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        ProfileKey {
            ops: ops.into_iter().map(Into::into).collect(),
            shape_fingerprint: shape_fingerprint.into(),
        }
    }

    /// Operator names in block order.
    #[must_use]
    pub fn ops(&self) -> &[String] {
        &self.ops
    }

    /// The shape fingerprint.
    #[must_use]
    pub fn shape_fingerprint(&self) -> &str {
        &self.shape_fingerprint
    }

    fn encode(&self) -> String {
        format!("{}|{}", self.ops.join("+"), self.shape_fingerprint)
    }

    fn decode(text: &str) -> Option<Self> {
        let (ops, fp) = text.split_once('|')?;
        Some(ProfileKey {
            ops: ops.split('+').map(str::to_string).collect(),
            shape_fingerprint: fp.to_string(),
        })
    }
}

impl fmt::Display for ProfileKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.encode())
    }
}

/// A latency database keyed by [`ProfileKey`], with hit/miss accounting.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ProfileDatabase {
    entries: BTreeMap<ProfileKey, f64>,
    hits: u64,
    misses: u64,
}

impl ProfileDatabase {
    /// Creates an empty database.
    #[must_use]
    pub fn new() -> Self {
        ProfileDatabase::default()
    }

    /// Number of stored entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the database holds no entries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Records a measured latency (microseconds) for a combination,
    /// overwriting any previous value.
    pub fn record(&mut self, key: ProfileKey, latency_us: f64) {
        self.entries.insert(key, latency_us);
    }

    /// Looks up a latency, counting the access as a hit or a miss.
    pub fn lookup(&mut self, key: &ProfileKey) -> Option<f64> {
        match self.entries.get(key) {
            Some(&v) => {
                self.hits += 1;
                Some(v)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Looks up a latency without touching the hit/miss counters.
    #[must_use]
    pub fn peek(&self, key: &ProfileKey) -> Option<f64> {
        self.entries.get(key).copied()
    }

    /// Looks up a latency, or computes it with `measure`, records it, and
    /// returns it. This is the paper's "profiling" step: expensive on the
    /// first compilation, a cheap lookup afterwards.
    pub fn lookup_or_measure(&mut self, key: ProfileKey, measure: impl FnOnce() -> f64) -> f64 {
        if let Some(v) = self.lookup(&key) {
            return v;
        }
        let v = measure();
        self.record(key, v);
        v
    }

    /// Number of successful lookups so far.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Number of failed lookups so far.
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Resets the hit/miss counters (entries are kept).
    pub fn reset_counters(&mut self) {
        self.hits = 0;
        self.misses = 0;
    }

    /// Iterates over `(key, latency)` entries in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&ProfileKey, f64)> {
        self.entries.iter().map(|(k, &v)| (k, v))
    }

    /// Serializes the database to its line-based text format.
    #[must_use]
    pub fn to_text(&self) -> String {
        let mut s = String::new();
        for (k, v) in &self.entries {
            s.push_str(&k.encode());
            s.push('\t');
            s.push_str(&v.to_string());
            s.push('\n');
        }
        s
    }

    /// Parses a database from the text format produced by
    /// [`ProfileDatabase::to_text`]. Malformed lines are skipped.
    #[must_use]
    pub fn from_text(text: &str) -> Self {
        let mut db = ProfileDatabase::new();
        for line in text.lines() {
            if let Some((key, val)) = line.split_once('\t') {
                if let (Some(key), Ok(val)) = (ProfileKey::decode(key), val.parse::<f64>()) {
                    db.record(key, val);
                }
            }
        }
        db
    }

    /// Saves the database to a file.
    ///
    /// # Errors
    ///
    /// Propagates any I/O error.
    pub fn save(&self, path: impl AsRef<Path>) -> io::Result<()> {
        let mut f = std::fs::File::create(path)?;
        f.write_all(self.to_text().as_bytes())
    }

    /// Loads a database from a file.
    ///
    /// # Errors
    ///
    /// Propagates any I/O error.
    pub fn load(path: impl AsRef<Path>) -> io::Result<Self> {
        let mut text = String::new();
        std::fs::File::open(path)?.read_to_string(&mut text)?;
        Ok(Self::from_text(&text))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_lookup_and_counters() {
        let mut db = ProfileDatabase::new();
        let k = ProfileKey::new(["Add", "Gemm"], "4x8;8x16");
        assert_eq!(db.lookup(&k), None);
        db.record(k.clone(), 12.5);
        assert_eq!(db.lookup(&k), Some(12.5));
        assert_eq!(db.len(), 1);
        assert_eq!((db.hits(), db.misses()), (1, 1));
        db.reset_counters();
        assert_eq!((db.hits(), db.misses()), (0, 0));
        assert_eq!(db.peek(&k), Some(12.5));
        assert_eq!((db.hits(), db.misses()), (0, 0));
    }

    #[test]
    fn lookup_or_measure_only_measures_once() {
        let mut db = ProfileDatabase::new();
        let k = ProfileKey::new(["Conv", "Relu"], "1x8x16x16");
        let mut calls = 0;
        let v1 = db.lookup_or_measure(k.clone(), || {
            calls += 1;
            7.0
        });
        let v2 = db.lookup_or_measure(k, || {
            calls += 1;
            9.0
        });
        assert_eq!(v1, 7.0);
        assert_eq!(v2, 7.0);
        assert_eq!(calls, 1);
    }

    #[test]
    fn text_roundtrip_preserves_entries() {
        let mut db = ProfileDatabase::new();
        db.record(
            ProfileKey::new(["Conv", "Relu", "Add"], "1x64x56x56"),
            101.25,
        );
        db.record(ProfileKey::new(["MatMul"], "128x768;768x768"), 930.0);
        let text = db.to_text();
        let restored = ProfileDatabase::from_text(&text);
        assert_eq!(restored.len(), 2);
        assert_eq!(
            restored.peek(&ProfileKey::new(["MatMul"], "128x768;768x768")),
            Some(930.0)
        );
        // Counters are not part of the persisted state.
        assert_eq!(restored.hits(), 0);
    }

    #[test]
    fn from_text_skips_malformed_lines() {
        let db = ProfileDatabase::from_text("garbage\nConv+Relu|1x1\tnot_a_number\nAdd|2x2\t5.0\n");
        assert_eq!(db.len(), 1);
        assert_eq!(db.peek(&ProfileKey::new(["Add"], "2x2")), Some(5.0));
    }

    #[test]
    fn save_and_load_roundtrip() {
        let mut db = ProfileDatabase::new();
        db.record(ProfileKey::new(["Relu"], "1x10"), 1.5);
        let dir = std::env::temp_dir().join("dnnf_profiledb_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("db.tsv");
        db.save(&path).unwrap();
        let loaded = ProfileDatabase::load(&path).unwrap();
        assert_eq!(loaded, ProfileDatabase::from_text(&db.to_text()));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn key_display_and_accessors() {
        let k = ProfileKey::new(["Conv", "Relu"], "1x8");
        assert_eq!(k.to_string(), "Conv+Relu|1x8");
        assert_eq!(k.ops(), &["Conv".to_string(), "Relu".to_string()]);
        assert_eq!(k.shape_fingerprint(), "1x8");
    }
}
