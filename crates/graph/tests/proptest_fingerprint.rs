//! Property-based mutation pairs for the structural fingerprint.
//!
//! The compilation cache's safety rests on one implication: *any* change to
//! what a model computes changes its fingerprint. These properties generate
//! random MLP-style graphs and apply a single structural mutation —
//! topology, attributes, shapes, weight identity, or weight data — then
//! assert the mutated twin fingerprints differently, while an unmutated
//! rebuild fingerprints identically (determinism).

use dnnf_graph::Graph;
use dnnf_ops::{Attrs, OpKind};
use dnnf_tensor::{Shape, Tensor};
use proptest::prelude::*;

/// One structural mutation applied while building the twin graph.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Mutation {
    None,
    /// Append one extra activation node before the output.
    ExtraNode,
    /// Widen one hidden layer by one unit (changes shapes end-to-end).
    BumpWidth,
    /// Flip the trailing Softmax's `axis` attribute (shape-neutral).
    FlipAttr,
    /// Rename one weight (weights are name-seeded: new name = new data).
    RenameWeight,
    /// Change one explicit weight's data bits (same name, same shape).
    TweakWeightData,
}

/// Builds a `[1, w0] -> MatMul -> (Relu?) -> … -> Softmax` chain. `mutation`
/// perturbs exactly one aspect of the construction.
fn build(widths: &[usize], relu_mask: u32, mutation: Mutation) -> Graph {
    let mut widths = widths.to_vec();
    if mutation == Mutation::BumpWidth {
        let mid = widths.len() / 2;
        widths[mid] += 1;
    }
    let mut g = Graph::new("mlp");
    let mut cur = g.add_input("x", Shape::new(vec![1, widths[0]]));
    let mut cur_width = widths[0];
    for (i, &w) in widths.iter().enumerate().skip(1) {
        let wname = if mutation == Mutation::RenameWeight && i == 1 {
            format!("w{i}.renamed")
        } else {
            format!("w{i}")
        };
        let wid = g.add_weight(&wname, Shape::new(vec![cur_width, w]));
        if i == 1 {
            let fill = if mutation == Mutation::TweakWeightData {
                0.75
            } else {
                0.5
            };
            g.set_weight_data(wid, Tensor::full(Shape::new(vec![cur_width, w]), fill))
                .unwrap();
        }
        cur = g
            .add_op(OpKind::MatMul, Attrs::new(), &[cur, wid], format!("fc{i}"))
            .unwrap()[0];
        if relu_mask & (1 << i) != 0 {
            cur = g
                .add_op(OpKind::Relu, Attrs::new(), &[cur], format!("act{i}"))
                .unwrap()[0];
        }
        cur_width = w;
    }
    if mutation == Mutation::ExtraNode {
        cur = g
            .add_op(OpKind::Sigmoid, Attrs::new(), &[cur], "extra")
            .unwrap()[0];
    }
    let axis = i64::from(mutation == Mutation::FlipAttr);
    let out = g
        .add_op(
            OpKind::Softmax,
            Attrs::new().with_int("axis", axis),
            &[cur],
            "softmax",
        )
        .unwrap()[0];
    g.mark_output(out);
    g
}

fn widths_strategy() -> impl Strategy<Value = Vec<usize>> {
    prop::collection::vec(1usize..6, 2..5)
}

proptest! {
    #[test]
    fn rebuilding_the_same_graph_reproduces_the_fingerprint(
        widths in widths_strategy(),
        relu_mask in 0u32..16,
    ) {
        let a = build(&widths, relu_mask, Mutation::None);
        let b = build(&widths, relu_mask, Mutation::None);
        prop_assert_eq!(a.fingerprint(), b.fingerprint());
        prop_assert_eq!(a.shape_signature(), b.shape_signature());
    }

    #[test]
    fn every_mutation_kind_changes_the_fingerprint(
        widths in widths_strategy(),
        relu_mask in 0u32..16,
    ) {
        let base = build(&widths, relu_mask, Mutation::None);
        for mutation in [
            Mutation::ExtraNode,
            Mutation::BumpWidth,
            Mutation::FlipAttr,
            Mutation::RenameWeight,
            Mutation::TweakWeightData,
        ] {
            let twin = build(&widths, relu_mask, mutation);
            prop_assert_ne!(
                base.fingerprint(),
                twin.fingerprint(),
                "mutation {:?} left the fingerprint unchanged",
                mutation
            );
        }
    }

    #[test]
    fn distinct_parameterizations_rarely_collide(
        widths_a in widths_strategy(),
        mask_a in 0u32..16,
        widths_b in widths_strategy(),
        mask_b in 0u32..16,
    ) {
        // Different construction parameters must give different
        // fingerprints whenever they give structurally different graphs.
        let a = build(&widths_a, mask_a, Mutation::None);
        let b = build(&widths_b, mask_b, Mutation::None);
        if widths_a != widths_b || {
            // Only bits addressing existing layers matter.
            let relevant_a = mask_a & ((1 << widths_a.len()) - 2);
            let relevant_b = mask_b & ((1 << widths_b.len()) - 2);
            relevant_a != relevant_b
        } {
            prop_assert_ne!(a.fingerprint(), b.fingerprint());
        } else {
            prop_assert_eq!(a.fingerprint(), b.fingerprint());
        }
    }
}
