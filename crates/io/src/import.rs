//! `.dnnfg` text → Graph strict deserialization.
//!
//! Import is a *replay*: the parser first validates the whole file (header,
//! checksum, line grammar, section counts), then reconstructs the graph by
//! replaying the same builder calls the original construction made —
//! `add_input` / `add_weight` / `add_weight_with_data` / `add_op` /
//! `mark_output` / `mark_seq_axis` — and cross-checks every declared id,
//! name, shape and role against what the builder actually produced. Shape
//! inference therefore runs again on import, so a file cannot smuggle in
//! shapes the operators would never derive.

use std::path::Path;

use dnnf_graph::{Graph, GraphError, ValueKind};
use dnnf_ops::{Attrs, OpKind};
use dnnf_tensor::{DataType, Shape, Tensor};

use crate::error::IoError;
use crate::export::FORMAT_HEADER;
use crate::text::{fnv64, parse_attrs, parse_data, parse_dtype, parse_shape, unescape};

/// One parsed `value` line.
struct ValueRecord {
    line: usize,
    name: String,
    shape: Shape,
    dtype: DataType,
    role: ValueKind,
    /// `Some` for produced (inter/output) values: the producing node id.
    producer: Option<usize>,
    /// `true` for weights flagged `data` (payload arrives in the weights
    /// section).
    has_data: bool,
}

/// One parsed `node` line.
struct NodeRecord {
    line: usize,
    op: OpKind,
    name: String,
    attrs: Attrs,
    inputs: Vec<usize>,
    outputs: Vec<usize>,
}

/// Line-cursor over the body with 1-based line numbers for error reporting.
struct Lines<'a> {
    iter: std::str::Lines<'a>,
    current: usize,
}

impl<'a> Lines<'a> {
    fn new(body: &'a str) -> Self {
        Lines {
            iter: body.lines(),
            current: 0,
        }
    }

    fn next(&mut self) -> Option<(usize, &'a str)> {
        let line = self.iter.next()?;
        self.current += 1;
        Some((self.current, line))
    }
}

fn malformed(line: usize, reason: impl Into<String>) -> IoError {
    IoError::Malformed {
        line,
        reason: reason.into(),
    }
}

/// Parses canonical `.dnnfg` text back into a [`Graph`].
///
/// The parser is strict: the whole file is validated (trailing FNV-1a/64
/// checksum first, then grammar, then a full replay through the graph
/// builder with shape inference re-run) and any deviation rejects the file
/// wholesale with a typed [`IoError`]. On success the returned graph
/// satisfies `import.fingerprint() == original.fingerprint()` and carries
/// the original's seq-axis markings and explicit weight data bit-for-bit.
///
/// # Errors
///
/// See [`IoError`] — every variant except `Read`/`Write` can be produced
/// here; `docs/graph-format.md` documents the triggering conditions.
pub fn from_text(text: &str) -> Result<Graph, IoError> {
    // --- Checksum envelope -------------------------------------------------
    // A complete file ends with `checksum <16 hex>\n`; a file cut off
    // mid-write loses that line first.
    let trimmed = text.strip_suffix('\n').ok_or(IoError::Truncated)?;
    let (body, checksum_line) = match trimmed.rfind('\n') {
        Some(idx) => (&text[..idx + 1], &trimmed[idx + 1..]),
        None => ("", trimmed),
    };
    let stated = checksum_line
        .strip_prefix("checksum ")
        .ok_or(IoError::Truncated)?;
    let computed = format!("{:016x}", fnv64(body.as_bytes()));
    let canonical_hex = stated.len() == 16
        && stated
            .bytes()
            .all(|b| b.is_ascii_hexdigit() && !b.is_ascii_uppercase());
    if !canonical_hex || stated != computed {
        return Err(IoError::BadChecksum {
            stated: stated.to_string(),
            computed,
        });
    }

    let mut lines = Lines::new(body);

    // --- Header ------------------------------------------------------------
    let (line_no, header) = lines.next().ok_or(IoError::Truncated)?;
    if header != FORMAT_HEADER {
        if let Some(version) = header.strip_prefix("dnnfusion-graph/v") {
            if let Ok(found) = version.parse::<u32>() {
                return Err(IoError::UnknownVersion { found });
            }
        }
        return Err(IoError::BadHeader {
            found: header.to_string(),
        });
    }
    let _ = line_no;

    // --- graph line --------------------------------------------------------
    let (line_no, graph_line) = lines
        .next()
        .ok_or_else(|| malformed(2, "missing `graph` line"))?;
    let name_token = graph_line
        .strip_prefix("graph ")
        .ok_or_else(|| malformed(line_no, "expected `graph <name>`"))?;
    let graph_name = unescape(name_token)
        .ok_or_else(|| malformed(line_no, format!("bad name escape `{name_token}`")))?;

    // --- Sections ----------------------------------------------------------
    let value_records = parse_values(&mut lines)?;
    let node_records = parse_nodes(&mut lines, value_records.len())?;
    let output_ids = parse_simple_section(&mut lines, "outputs", "output", |tokens, line| {
        if tokens.len() != 1 {
            return Err(malformed(line, "expected `output <value-id>`"));
        }
        parse_index(tokens[0], line)
    })?;
    let seq_markings = parse_simple_section(&mut lines, "seq_axes", "seq_axis", |tokens, line| {
        if tokens.len() != 2 {
            return Err(malformed(line, "expected `seq_axis <value-id> <axis>`"));
        }
        Ok((parse_index(tokens[0], line)?, parse_index(tokens[1], line)?))
    })?;
    let weight_rows = parse_simple_section(&mut lines, "weights", "weight", |tokens, line| {
        if tokens.len() != 3 {
            return Err(malformed(
                line,
                "expected `weight <value-id> <numel> <hex>`",
            ));
        }
        Ok((
            parse_index(tokens[0], line)?,
            parse_index(tokens[1], line)?,
            tokens[2].to_string(),
            line,
        ))
    })?;
    if let Some((line, _)) = lines.next() {
        return Err(malformed(line, "unexpected line after `weights` section"));
    }

    // --- Cross-section checks before the replay ----------------------------
    // seq-axis and weight rows must come in strictly increasing value-id
    // order (the canonical order the exporter emits).
    for pair in seq_markings.windows(2) {
        if pair[0].0 >= pair[1].0 {
            return Err(malformed(
                0,
                "`seq_axis` lines not in increasing value-id order",
            ));
        }
    }
    for pair in weight_rows.windows(2) {
        if pair[0].0 >= pair[1].0 {
            return Err(malformed(
                0,
                "`weight` lines not in increasing value-id order",
            ));
        }
    }

    // Decode weight payloads up front, keyed by value id.
    let mut weight_data: std::collections::BTreeMap<usize, (Vec<f32>, usize)> = Default::default();
    for (id, numel, hex, line) in weight_rows {
        let record = value_records
            .get(id)
            .ok_or(IoError::BadValueRef { line, id })?;
        if !record.has_data {
            return Err(malformed(
                line,
                format!("value {id} is not a `data`-flagged weight"),
            ));
        }
        if numel != record.shape.numel() {
            return Err(IoError::WeightLengthMismatch {
                value: record.name.clone(),
                expected: record.shape.numel(),
                found: numel,
            });
        }
        let data = parse_data(&hex, numel).ok_or(IoError::WeightLengthMismatch {
            value: record.name.clone(),
            expected: numel,
            found: hex.len() / 8,
        })?;
        weight_data.insert(id, (data, line));
    }
    for (id, record) in value_records.iter().enumerate() {
        if record.has_data && !weight_data.contains_key(&id) {
            return Err(malformed(
                record.line,
                format!("weight {id} is flagged `data` but the weights section has no row for it"),
            ));
        }
    }

    // --- Replay ------------------------------------------------------------
    let mut graph = Graph::new(graph_name);
    let mut nodes_added = 0usize;
    for (id, record) in value_records.iter().enumerate() {
        match record.role {
            ValueKind::Input => {
                if record.dtype != DataType::F32 {
                    return Err(malformed(
                        record.line,
                        "graph inputs are always f32 in format v1",
                    ));
                }
                let got = graph.add_input(record.name.clone(), record.shape.clone());
                debug_assert_eq!(got.index(), id);
            }
            ValueKind::Weight => {
                if let Some((data, line)) = weight_data.get(&id) {
                    let tensor = Tensor::from_vec(record.shape.clone(), data.clone())
                        .map_err(|e| malformed(*line, format!("bad weight payload: {e}")))?
                        .with_dtype(record.dtype);
                    let got = graph.add_weight_with_data(record.name.clone(), tensor);
                    debug_assert_eq!(got.index(), id);
                } else {
                    if record.dtype != DataType::F32 {
                        return Err(malformed(
                            record.line,
                            "seeded weights are always f32 in format v1",
                        ));
                    }
                    let got = graph.add_weight(record.name.clone(), record.shape.clone());
                    debug_assert_eq!(got.index(), id);
                }
            }
            ValueKind::Intermediate | ValueKind::Output => {
                if record.dtype != DataType::F32 {
                    return Err(malformed(
                        record.line,
                        "produced values are always f32 in format v1",
                    ));
                }
                let producer = record
                    .producer
                    .expect("parser set producer for produced values");
                if producer == nodes_added {
                    add_node(&mut graph, &node_records[producer], &value_records)?;
                    nodes_added += 1;
                } else if producer > nodes_added {
                    return Err(malformed(
                        record.line,
                        format!(
                            "value {id} is produced by node {producer}, but node {nodes_added} \
                             has produced no values yet (node outputs must appear in node order)"
                        ),
                    ));
                }
                // The producing node has been replayed; this value must be
                // one of the ids it just created.
                if id >= graph.value_count() {
                    return Err(malformed(
                        record.line,
                        format!("value {id} is not an output of node {producer}"),
                    ));
                }
                let built = graph.value(value_id(&graph, id));
                if built.producer.map(dnnf_graph::NodeId::index) != Some(producer) {
                    return Err(malformed(
                        record.line,
                        format!("value {id} is not an output of node {producer}"),
                    ));
                }
                if built.shape != record.shape {
                    return Err(IoError::ShapeMismatch {
                        value: record.name.clone(),
                        declared: record.shape.to_string(),
                        inferred: built.shape.to_string(),
                    });
                }
                if built.name != record.name {
                    return Err(malformed(
                        record.line,
                        format!(
                            "produced value {id} must carry its derived name `{}`, found `{}`",
                            built.name, record.name
                        ),
                    ));
                }
            }
        }
    }
    if nodes_added != node_records.len() {
        return Err(malformed(
            node_records[nodes_added].line,
            format!("node {nodes_added} produces no values"),
        ));
    }

    // Output markings, in marking order.
    for &id in &output_ids {
        if id >= graph.value_count() {
            return Err(IoError::BadValueRef { line: 0, id });
        }
        graph.mark_output(value_id(&graph, id));
    }
    let marked: Vec<usize> = graph.outputs().iter().map(|v| v.index()).collect();
    if marked != output_ids {
        return Err(malformed(
            0,
            "duplicate or conflicting `output` entries".to_string(),
        ));
    }

    // Declared roles must agree with the replayed graph (an `inter` value
    // must not have ended up output-marked and vice versa).
    for (id, record) in value_records.iter().enumerate() {
        let built = graph.value(value_id(&graph, id)).kind;
        if built != record.role {
            return Err(malformed(
                record.line,
                format!(
                    "value {id} declared {:?} but replay derives {built:?}",
                    record.role
                ),
            ));
        }
    }

    // Seq-axis markings.
    for (id, axis) in seq_markings {
        if id >= graph.value_count() {
            return Err(IoError::BadValueRef { line: 0, id });
        }
        graph.mark_seq_axis(value_id(&graph, id), axis)?;
    }

    graph
        .validate()
        .map_err(|source| IoError::Graph { source })?;
    Ok(graph)
}

/// Reads and parses a `.dnnfg` file.
///
/// # Errors
///
/// Returns [`IoError::Read`] when the file cannot be read as UTF-8 text,
/// otherwise whatever [`from_text`] returns.
pub fn load(path: impl AsRef<Path>) -> Result<Graph, IoError> {
    let path = path.as_ref();
    let text = std::fs::read_to_string(path).map_err(|e| IoError::Read {
        path: path.display().to_string(),
        message: e.to_string(),
    })?;
    from_text(&text)
}

/// Looks up the `ValueId` with raw index `id`. `Graph` exposes no public
/// index→id constructor, so recover it from the value table.
fn value_id(graph: &Graph, id: usize) -> dnnf_graph::ValueId {
    graph
        .values()
        .nth(id)
        .expect("caller bounds-checked the index")
        .id
}

fn parse_index(token: &str, line: usize) -> Result<usize, IoError> {
    if token.is_empty() || (token.len() > 1 && token.starts_with('0')) {
        return Err(malformed(line, format!("bad index `{token}`")));
    }
    token
        .parse::<usize>()
        .map_err(|_| malformed(line, format!("bad index `{token}`")))
}

/// Parses a `<section> <n>` header followed by `n` entry lines, mapping
/// each entry's post-keyword tokens through `parse_entry`.
fn parse_simple_section<T>(
    lines: &mut Lines<'_>,
    section: &'static str,
    keyword: &str,
    parse_entry: impl Fn(&[&str], usize) -> Result<T, IoError>,
) -> Result<Vec<T>, IoError> {
    let declared = parse_section_header(lines, section)?;
    let mut out = Vec::with_capacity(declared.min(1024));
    for found in 0..declared {
        let Some((line, text)) = lines.next() else {
            return Err(IoError::CountMismatch {
                section,
                declared,
                found,
            });
        };
        let tokens: Vec<&str> = text.split(' ').collect();
        if tokens.first() != Some(&keyword) {
            return Err(IoError::CountMismatch {
                section,
                declared,
                found,
            });
        }
        out.push(parse_entry(&tokens[1..], line)?);
    }
    Ok(out)
}

fn parse_section_header(lines: &mut Lines<'_>, section: &'static str) -> Result<usize, IoError> {
    let Some((line, text)) = lines.next() else {
        return Err(malformed(0, format!("missing `{section}` section")));
    };
    let rest = text
        .strip_prefix(section)
        .and_then(|r| r.strip_prefix(' '))
        .ok_or_else(|| malformed(line, format!("expected `{section} <count>`")))?;
    parse_index(rest, line)
}

fn parse_values(lines: &mut Lines<'_>) -> Result<Vec<ValueRecord>, IoError> {
    let entries = parse_simple_section(lines, "values", "value", |tokens, line| {
        // value <id> <role> <name> <shape> <dtype> [seeded|data | from <node>]
        if tokens.len() < 5 {
            return Err(malformed(line, "short `value` line"));
        }
        let id = parse_index(tokens[0], line)?;
        let name = unescape(tokens[2])
            .ok_or_else(|| malformed(line, format!("bad name escape `{}`", tokens[2])))?;
        let shape = parse_shape(tokens[3])
            .ok_or_else(|| malformed(line, format!("bad shape `{}`", tokens[3])))?;
        let dtype = parse_dtype(tokens[4]).ok_or(IoError::UnknownDataType {
            line,
            token: tokens[4].to_string(),
        })?;
        let (role, producer, has_data) = match (tokens[1], &tokens[5..]) {
            ("input", []) => (ValueKind::Input, None, false),
            ("weight", ["seeded"]) => (ValueKind::Weight, None, false),
            ("weight", ["data"]) => (ValueKind::Weight, None, true),
            ("inter", ["from", node]) => (
                ValueKind::Intermediate,
                Some(parse_index(node, line)?),
                false,
            ),
            ("output", ["from", node]) => {
                (ValueKind::Output, Some(parse_index(node, line)?), false)
            }
            _ => {
                return Err(malformed(
                    line,
                    format!("bad value role/extras for role `{}`", tokens[1]),
                ))
            }
        };
        Ok((
            id,
            ValueRecord {
                line,
                name,
                shape,
                dtype,
                role,
                producer,
                has_data,
            },
        ))
    })?;
    let mut records = Vec::with_capacity(entries.len());
    for (position, (id, record)) in entries.into_iter().enumerate() {
        if id != position {
            return Err(malformed(
                record.line,
                format!("value id {id} out of order (expected {position})"),
            ));
        }
        records.push(record);
    }
    Ok(records)
}

fn parse_nodes(lines: &mut Lines<'_>, value_count: usize) -> Result<Vec<NodeRecord>, IoError> {
    let entries = parse_simple_section(lines, "nodes", "node", |tokens, line| {
        // node <id> <Op> <name> in <ids…> out <ids…> attrs <attrs>
        if tokens.len() < 6 {
            return Err(malformed(line, "short `node` line"));
        }
        let id = parse_index(tokens[0], line)?;
        let op = OpKind::from_name(tokens[1]).ok_or(IoError::UnknownOp {
            line,
            name: tokens[1].to_string(),
        })?;
        let name = unescape(tokens[2])
            .ok_or_else(|| malformed(line, format!("bad name escape `{}`", tokens[2])))?;
        if tokens[3] != "in" {
            return Err(malformed(line, "expected `in` after node name"));
        }
        let mut cursor = 4;
        let mut inputs = Vec::new();
        while cursor < tokens.len() && tokens[cursor] != "out" {
            let vid = parse_index(tokens[cursor], line)?;
            if vid >= value_count {
                return Err(IoError::BadValueRef { line, id: vid });
            }
            inputs.push(vid);
            cursor += 1;
        }
        if tokens.get(cursor) != Some(&"out") {
            return Err(malformed(line, "expected `out` after node inputs"));
        }
        cursor += 1;
        let mut outputs = Vec::new();
        while cursor < tokens.len() && tokens[cursor] != "attrs" {
            let vid = parse_index(tokens[cursor], line)?;
            if vid >= value_count {
                return Err(IoError::BadValueRef { line, id: vid });
            }
            outputs.push(vid);
            cursor += 1;
        }
        if outputs.is_empty() {
            return Err(malformed(line, "node declares no outputs"));
        }
        if tokens.get(cursor) != Some(&"attrs") || cursor + 2 != tokens.len() {
            return Err(malformed(
                line,
                "expected `attrs <attrs>` to end the node line",
            ));
        }
        let attrs = parse_attrs(tokens[cursor + 1])
            .ok_or_else(|| malformed(line, format!("bad attrs `{}`", tokens[cursor + 1])))?;
        Ok((
            id,
            NodeRecord {
                line,
                op,
                name,
                attrs,
                inputs,
                outputs,
            },
        ))
    })?;
    let mut records = Vec::with_capacity(entries.len());
    for (position, (id, record)) in entries.into_iter().enumerate() {
        if id != position {
            return Err(malformed(
                record.line,
                format!("node id {id} out of order (expected {position})"),
            ));
        }
        records.push(record);
    }
    Ok(records)
}

/// Replays one node through `Graph::add_op` and cross-checks the produced
/// value ids against the declared wiring.
fn add_node(
    graph: &mut Graph,
    record: &NodeRecord,
    value_records: &[ValueRecord],
) -> Result<(), IoError> {
    let expected_first = graph.value_count();
    for &vid in &record.inputs {
        // Node inputs must already exist at this point of the replay
        // (values are created in id order, so any reference at or past the
        // node's own first output is a forward reference).
        if vid >= expected_first {
            return Err(IoError::BadValueRef {
                line: record.line,
                id: vid,
            });
        }
    }
    let input_ids: Vec<_> = record.inputs.iter().map(|&v| value_id(graph, v)).collect();
    let produced = graph
        .add_op(
            record.op,
            record.attrs.clone(),
            &input_ids,
            record.name.clone(),
        )
        .map_err(|source| match source {
            GraphError::UnknownValue { id } => IoError::BadValueRef {
                line: record.line,
                id,
            },
            other => IoError::Graph { source: other },
        })?;
    let produced: Vec<usize> = produced.iter().map(|v| v.index()).collect();
    if produced != record.outputs {
        return Err(malformed(
            record.line,
            format!(
                "node `{}` declares outputs {:?} but produces {:?}",
                record.name, record.outputs, produced
            ),
        ));
    }
    // Shapes of the produced values are checked by the caller against each
    // value record; here just make sure the declared records exist.
    for &vid in &record.outputs {
        if vid >= value_records.len() {
            return Err(IoError::BadValueRef {
                line: record.line,
                id: vid,
            });
        }
    }
    Ok(())
}
