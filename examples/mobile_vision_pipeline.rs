//! Mobile vision pipeline: compile and "deploy" an object-detection model
//! (MobileNetV1-SSD) to three simulated phones, comparing DNNFusion against
//! a fixed-pattern baseline on each — the portability scenario of the
//! paper's Figure 10.
//!
//! Run with `cargo run --release --example mobile_vision_pipeline`.

use std::error::Error;

use dnnfusion::baselines::{BaselineFramework, PatternFuser};
use dnnfusion::core::{Compiler, CompilerOptions, Ecg};
use dnnfusion::models::{ModelKind, ModelScale};
use dnnfusion::runtime::{DeviceLatencyModel, Executor};
use dnnfusion::simdev::{DeviceKind, Phone};

fn main() -> Result<(), Box<dyn Error>> {
    let graph = ModelKind::MobileNetV1Ssd.build(ModelScale::tiny())?;
    println!("model `{}`: {}\n", graph.name(), graph.stats());

    for &phone in Phone::all() {
        for kind in [DeviceKind::MobileCpu, DeviceKind::MobileGpu] {
            let device = phone.device(kind);
            let executor = Executor::new(device.clone()).without_cache_simulation();

            // Fixed-pattern baseline (TVM-style).
            let ecg = Ecg::new(graph.clone());
            let baseline_plan = PatternFuser::for_framework(BaselineFramework::Tvm).plan(&ecg)?;
            let (baseline, _) = executor.estimate_plan(&graph, &baseline_plan);

            // DNNFusion, profiled against this specific device.
            let latency_model = DeviceLatencyModel::new(device.clone());
            let mut compiler =
                Compiler::with_latency_model(CompilerOptions::default(), latency_model);
            let compiled = compiler.compile(&graph)?;
            let (dnnf, _) = executor.estimate_plan(compiled.graph(), &compiled.plan);

            println!(
                "{:<40} {:>4}: TVM-style {:>7.2} ms ({} kernels)  |  DNNFusion {:>7.2} ms ({} kernels)  ->  {:.2}x",
                phone.name(),
                kind.to_string(),
                baseline.latency_us / 1e3,
                baseline.kernel_launches,
                dnnf.latency_us / 1e3,
                dnnf.kernel_launches,
                baseline.latency_us / dnnf.latency_us
            );
        }
    }
    println!("\nOlder phones (smaller caches, lower bandwidth) benefit the most from fusion.");
    Ok(())
}
