//! Figure 6: speedup of DNNFusion over TASO-optimized execution (TASO graph
//! substitutions + TFLite-style fixed-pattern fusion) on the mobile CPU.
//!
//! Run with `cargo run --release -p dnnf-bench --bin fig6_taso`.

use dnnf_bench::{format_table, taso_speedup};
use dnnf_models::{ModelKind, ModelScale};
use dnnf_simdev::DeviceSpec;

fn main() {
    let scale = if std::env::args().any(|a| a == "--reduced") {
        ModelScale::reduced()
    } else {
        ModelScale::tiny()
    };
    let device = DeviceSpec::snapdragon_865_cpu();
    // The eleven TFLite-supported models of Figure 6.
    let models = [
        ModelKind::EfficientNetB0,
        ModelKind::Vgg16,
        ModelKind::MobileNetV1Ssd,
        ModelKind::YoloV4,
        ModelKind::UNet,
        ModelKind::TinyBert,
        ModelKind::DistilBert,
        ModelKind::Albert,
        ModelKind::BertBase,
        ModelKind::MobileBert,
        ModelKind::Gpt2,
    ];
    let mut rows = Vec::new();
    for kind in models {
        let speedup = taso_speedup(kind, scale, &device);
        rows.push(vec![kind.name().to_string(), format!("{speedup:.2}x")]);
    }
    println!("Figure 6 — DNNFusion speedup over TASO-optimized execution (mobile CPU)\n");
    println!("{}", format_table(&["Model", "Speedup"], &rows));
    println!("Paper reports 1.4x–2.6x over TASO on the mobile CPU.");
}
