//! Optimized kernels for the compute-heavy anchor operators, used by the
//! fused-block execution engine.
//!
//! The reference kernels in this crate define the semantics; they index every
//! element through bounds-checked multi-dimensional lookups and allocate
//! scratch index vectors in their innermost loops, which makes them 1–2
//! orders of magnitude slower than necessary. The kernels here compute the
//! *same* result — they visit taps in exactly the same order and accumulate
//! in the same sequence, so outputs are bit-identical — but with precomputed
//! strides, flat-slice indexing and no allocation inside the hot loops.
//!
//! Every kernel is additionally **data-parallel** over a [`WorkPool`]: the
//! output index space is partitioned into disjoint tiles (convolution and
//! pooling over `(batch, channel)` planes, matrix products over output
//! rows), and each tile is computed start-to-finish by one thread with the
//! serial kernel's exact accumulation order. No reduction is ever split
//! across threads, so results are bit-identical for every thread count —
//! [`execute_fast_into`] with a serial pool and
//! [`execute_fast_into_threaded`] with any pool produce the same bytes.
//!
//! Within a thread's tile, the Conv / MatMul / Gemm microkernels are
//! additionally **lane-blocked** over the [`crate::simd`] bundles: 4–8
//! consecutive output elements accumulate in lockstep, one element per lane,
//! each lane running the scalar kernel's exact operation sequence (two
//! rounding steps per tap, no fused multiply-add, no split reduction). The
//! 2-D convolution vectorizes only the *interior* output columns — those
//! whose every kernel tap is in bounds, so no tap-skip test fires — and
//! leaves the padded borders (plus the 1-D/3-D odometer path and the
//! pooling kernels) on the checked scalar loop; the two regions compute
//! identical tap sequences, so SIMD-on and SIMD-off
//! ([`WorkPool::with_simd`]) produce the same bytes at every lane width.
//!
//! Inputs are expected to be shape-consistent with `out_shape`, exactly as
//! produced by graph construction / shape inference (the fused engine always
//! calls with graph-derived shapes). The differential test harness pins
//! every kernel here against its reference twin.

use dnnf_tensor::{broadcast_index, Shape, Tensor};

use crate::parallel::WorkPool;
use crate::simd::{F32Lanes, LANES};
use crate::{Attrs, OpError, OpKind};

/// Whether `op` has an optimized kernel in this module. The fused engine
/// uses this registry to decide between the fast path and the reference
/// fallback ([`crate::execute`]).
#[must_use]
pub fn has_fast_kernel(op: OpKind) -> bool {
    use OpKind::*;
    matches!(op, Conv | MatMul | Gemm | MaxPool | AveragePool | GlobalAveragePool)
}

/// Executes `op` with its optimized kernel on the calling thread. Equivalent
/// to [`execute_fast_into_threaded`] with a serial pool.
///
/// # Errors
///
/// Returns an [`OpError`] when the inputs are structurally invalid for the
/// operator (wrong arity or rank).
pub fn execute_fast_into(
    op: OpKind,
    attrs: &Attrs,
    inputs: &[&Tensor],
    out_shape: &Shape,
    out: &mut [f32],
) -> Result<bool, OpError> {
    execute_fast_into_threaded(op, attrs, inputs, out_shape, out, WorkPool::serial())
}

/// Executes `op` with its optimized kernel, writing the single output into
/// `out` (length `out_shape.numel()`), splitting the output space over
/// `pool`'s threads. Returns `Ok(false)` without touching `out` when the
/// operator has no fast kernel. Results are bit-identical to
/// [`execute_fast_into`] for every pool (per-element ownership split; the
/// pool's [`WorkPool::for_work`] gate keeps small launches serial).
///
/// # Errors
///
/// Returns an [`OpError`] when the inputs are structurally invalid for the
/// operator (wrong arity or rank).
///
/// # Panics
///
/// May panic on inputs whose shapes are inconsistent with `out_shape`;
/// callers are expected to pass shapes produced by shape inference.
pub fn execute_fast_into_threaded(
    op: OpKind,
    attrs: &Attrs,
    inputs: &[&Tensor],
    out_shape: &Shape,
    out: &mut [f32],
    pool: WorkPool,
) -> Result<bool, OpError> {
    debug_assert_eq!(out.len(), out_shape.numel());
    match op {
        OpKind::Conv => fast_conv(attrs, inputs, out_shape, out, pool)?,
        OpKind::MatMul => fast_matmul(op, inputs, out_shape, out, pool)?,
        OpKind::Gemm => fast_gemm(attrs, inputs, out_shape, out, pool)?,
        OpKind::MaxPool | OpKind::AveragePool => fast_pool(op, attrs, inputs, out_shape, out, pool)?,
        OpKind::GlobalAveragePool => fast_global_average_pool(inputs, out_shape, out, pool)?,
        _ => return Ok(false),
    }
    Ok(true)
}

fn arity(op: OpKind, inputs: &[&Tensor], min: usize) -> Result<(), OpError> {
    if inputs.len() < min {
        return Err(OpError::ArityMismatch { op, expected: min, actual: inputs.len() });
    }
    Ok(())
}

fn spatial_attrs(attrs: &Attrs, spatial_rank: usize) -> (Vec<usize>, Vec<usize>, Vec<usize>) {
    let strides: Vec<usize> = attrs
        .ints_or("strides", &vec![1; spatial_rank])
        .iter()
        .map(|&s| s.max(1) as usize)
        .collect();
    let dilations: Vec<usize> = attrs
        .ints_or("dilations", &vec![1; spatial_rank])
        .iter()
        .map(|&d| d.max(1) as usize)
        .collect();
    let pads: Vec<usize> = attrs
        .ints_or("pads", &vec![0; spatial_rank * 2])
        .iter()
        .map(|&p| p.max(0) as usize)
        .collect();
    (strides, dilations, pads)
}

/// Direct convolution with precomputed strides. Accumulates over input
/// channels then kernel taps in row-major order — the reference kernel's
/// exact summation sequence. Parallel over `(batch, out_channel)` output
/// planes; each plane is owned by one thread.
fn fast_conv(
    attrs: &Attrs,
    inputs: &[&Tensor],
    out_shape: &Shape,
    out: &mut [f32],
    pool: WorkPool,
) -> Result<(), OpError> {
    arity(OpKind::Conv, inputs, 2)?;
    let x = inputs[0];
    let w = inputs[1];
    let bias = inputs.get(2).map(|b| b.data());
    if x.shape().rank() < 3 || w.shape().rank() != x.shape().rank() {
        return Err(OpError::InvalidShape {
            op: OpKind::Conv,
            reason: "expected (N, C, spatial...) input and matching-rank weight".into(),
        });
    }
    if out.is_empty() {
        return Ok(());
    }
    let spatial_rank = x.shape().rank() - 2;
    let (strides, dilations, pads) = spatial_attrs(attrs, spatial_rank);
    let group = attrs.int_or("group", 1).max(1) as usize;

    let xd = x.shape().dims().to_vec();
    let xs = x.shape().strides();
    let ws = w.shape().strides();
    let out_channels = out_shape.dim(1);
    let in_per_group = w.shape().dim(1);
    let channels_per_group_out = (out_channels / group).max(1);
    let xdat = x.data();
    let wdat = w.data();
    let kernel_elems: usize = w.shape().dims()[2..].iter().product();
    let pool = pool.for_work(out.len().saturating_mul(in_per_group).saturating_mul(kernel_elems));

    if spatial_rank == 2 {
        let (oh, ow) = (out_shape.dim(2), out_shape.dim(3));
        let (ih, iw) = (xd[2], xd[3]);
        let (kh, kw) = (w.shape().dim(2), w.shape().dim(3));
        let (sh, sw) = (strides[0], strides[1]);
        let (dh, dw) = (dilations[0], dilations[1]);
        let (ph, pw) = (pads[0], pads[1]);
        // Hoist the stride vectors into scalars so the closure captures
        // plain values the optimizer keeps in registers.
        let (xs0, xs1, xs2) = (xs[0], xs[1], xs[2]);
        let (ws0, ws1, ws2) = (ws[0], ws[1], ws[2]);
        let tile = Conv2d {
            xdat,
            wdat,
            ih,
            iw,
            kh,
            kw,
            sh,
            sw,
            dh,
            dw,
            ph,
            pw,
            in_per_group,
            xs1,
            xs2,
            ws1,
            ws2,
        };
        // Interior output columns: every kx tap lands in bounds, for every
        // lane, so the lane-blocked path never needs a tap-skip test. The
        // left border needs ox*sw >= pw; the right border needs the furthest
        // tap, ox*sw + (kw-1)*dw - pw, to stay below iw.
        let span = (kw - 1) * dw;
        let x_hi = if iw + pw > span { ((iw + pw - span - 1) / sw + 1).min(ow) } else { 0 };
        let x_lo = pw.div_ceil(sw).min(x_hi);
        let simd = pool.use_simd();
        // One chunk per (n, oc) output plane, written by exactly one thread.
        pool.run_chunks(out, oh * ow, |plane, chunk| {
            let n = plane / out_channels;
            let oc = plane % out_channels;
            let g = oc / channels_per_group_out;
            let b0 = bias.map_or(0.0, |b| b[oc]);
            let w_oc = oc * ws0;
            let x_plane = n * xs0 + g * in_per_group * xs1;
            for (oy, row) in chunk.chunks_mut(ow).enumerate() {
                if simd {
                    tile.scalar_cols(row, x_plane, w_oc, b0, oy, 0, x_lo);
                    let mut ox = x_lo;
                    while ox + LANES <= x_hi {
                        tile.simd_cols::<LANES>(row, x_plane, w_oc, b0, oy, ox);
                        ox += LANES;
                    }
                    if ox + 4 <= x_hi {
                        tile.simd_cols::<4>(row, x_plane, w_oc, b0, oy, ox);
                        ox += 4;
                    }
                    tile.scalar_cols(row, x_plane, w_oc, b0, oy, ox, ow);
                } else {
                    tile.scalar_cols(row, x_plane, w_oc, b0, oy, 0, ow);
                }
            }
        });
        return Ok(());
    }

    // Generic spatial rank (1-D and 3-D convolutions) with odometer loops,
    // parallel over the same (n, oc) planes.
    let out_sp: Vec<usize> = out_shape.dims()[2..].to_vec();
    let kernel_sp: Vec<usize> = w.shape().dims()[2..].to_vec();
    let out_sp_count: usize = out_sp.iter().product();
    let kernel_count: usize = kernel_sp.iter().product();
    pool.run_chunks(out, out_sp_count, |plane, chunk| {
        let n = plane / out_channels;
        let oc = plane % out_channels;
        let g = oc / channels_per_group_out;
        let b0 = bias.map_or(0.0, |b| b[oc]);
        let mut out_pos = vec![0usize; spatial_rank];
        let mut k_pos = vec![0usize; spatial_rank];
        for slot in chunk.iter_mut() {
            let mut acc = b0;
            for ic in 0..in_per_group {
                let x_base = n * xs[0] + (g * in_per_group + ic) * xs[1];
                let w_base = oc * ws[0] + ic * ws[1];
                k_pos.iter_mut().for_each(|p| *p = 0);
                for _ in 0..kernel_count {
                    let mut x_off = x_base;
                    let mut w_off = w_base;
                    let mut in_bounds = true;
                    for d in 0..spatial_rank {
                        let pos = out_pos[d] * strides[d] + k_pos[d] * dilations[d];
                        if pos < pads[d] || pos - pads[d] >= xd[2 + d] {
                            in_bounds = false;
                            break;
                        }
                        x_off += (pos - pads[d]) * xs[2 + d];
                        w_off += k_pos[d] * ws[2 + d];
                    }
                    if in_bounds {
                        acc += xdat[x_off] * wdat[w_off];
                    }
                    advance(&mut k_pos, &kernel_sp);
                }
            }
            *slot = acc;
            advance(&mut out_pos, &out_sp);
        }
    });
    Ok(())
}

/// Loop constants of one 2-D convolution launch, shared by the scalar and
/// lane-blocked column kernels so both walk the identical tap sequence.
struct Conv2d<'a> {
    xdat: &'a [f32],
    wdat: &'a [f32],
    ih: usize,
    iw: usize,
    kh: usize,
    kw: usize,
    sh: usize,
    sw: usize,
    dh: usize,
    dw: usize,
    ph: usize,
    pw: usize,
    in_per_group: usize,
    xs1: usize,
    xs2: usize,
    ws1: usize,
    ws2: usize,
}

impl Conv2d<'_> {
    /// Columns `[ox0, ox1)` of output row `oy`, one element at a time with
    /// per-tap bounds checks — the reference accumulation order, used for
    /// padded borders, lane remainders and the full-scalar mode.
    #[allow(clippy::too_many_arguments)]
    fn scalar_cols(
        &self,
        row: &mut [f32],
        x_plane: usize,
        w_oc: usize,
        b0: f32,
        oy: usize,
        ox0: usize,
        ox1: usize,
    ) {
        for (ox, slot) in row[..ox1].iter_mut().enumerate().skip(ox0) {
            let mut acc = b0;
            for ic in 0..self.in_per_group {
                let x_base = x_plane + ic * self.xs1;
                let w_base = w_oc + ic * self.ws1;
                for ky in 0..self.kh {
                    let y = oy * self.sh + ky * self.dh;
                    if y < self.ph || y - self.ph >= self.ih {
                        continue;
                    }
                    let x_row = x_base + (y - self.ph) * self.xs2;
                    let w_row = w_base + ky * self.ws2;
                    for kx in 0..self.kw {
                        let xx = ox * self.sw + kx * self.dw;
                        if xx < self.pw || xx - self.pw >= self.iw {
                            continue;
                        }
                        acc += self.xdat[x_row + (xx - self.pw)] * self.wdat[w_row + kx];
                    }
                }
            }
            *slot = acc;
        }
    }

    /// `N` consecutive interior columns starting at `ox`: one output element
    /// per lane, all taps in bounds by the caller's interior-range
    /// computation, accumulated tap by tap in the scalar order (`acc = acc +
    /// x * w` per lane — bit-identical to [`Conv2d::scalar_cols`]).
    #[allow(clippy::too_many_arguments)]
    fn simd_cols<const N: usize>(
        &self,
        row: &mut [f32],
        x_plane: usize,
        w_oc: usize,
        b0: f32,
        oy: usize,
        ox: usize,
    ) {
        let mut acc = F32Lanes::<N>::splat(b0);
        for ic in 0..self.in_per_group {
            let x_base = x_plane + ic * self.xs1;
            let w_base = w_oc + ic * self.ws1;
            for ky in 0..self.kh {
                let y = oy * self.sh + ky * self.dh;
                if y < self.ph || y - self.ph >= self.ih {
                    continue;
                }
                let x_row = x_base + (y - self.ph) * self.xs2;
                let w_row = w_base + ky * self.ws2;
                for kx in 0..self.kw {
                    let x0 = x_row + ox * self.sw + kx * self.dw - self.pw;
                    let xv = if self.sw == 1 {
                        F32Lanes::<N>::load(&self.xdat[x0..])
                    } else {
                        F32Lanes::<N>::gather(self.xdat, x0, self.sw)
                    };
                    acc = acc + xv * F32Lanes::<N>::splat(self.wdat[w_row + kx]);
                }
            }
        }
        acc.store(&mut row[ox..]);
    }
}

/// Row-major odometer increment.
fn advance(pos: &mut [usize], dims: &[usize]) {
    for axis in (0..dims.len()).rev() {
        pos[axis] += 1;
        if pos[axis] < dims[axis] {
            break;
        }
        pos[axis] = 0;
    }
}

/// Batched matrix multiplication with broadcasting over batch dimensions.
/// Parallel over output rows across all batches (per-batch operand offsets
/// are precomputed, so a small batch count never caps thread utilization);
/// the per-element dot product is never split.
fn fast_matmul(
    op: OpKind,
    inputs: &[&Tensor],
    out_shape: &Shape,
    out: &mut [f32],
    pool: WorkPool,
) -> Result<(), OpError> {
    arity(op, inputs, 2)?;
    let a = inputs[0];
    let b = inputs[1];
    if a.shape().rank() < 2 || b.shape().rank() < 2 {
        return Err(OpError::InvalidShape { op, reason: "operands must be rank >= 2".into() });
    }
    if out.is_empty() {
        return Ok(());
    }
    let m = out_shape.dim(out_shape.rank() - 2);
    let n = out_shape.dim(out_shape.rank() - 1);
    let k = a.shape().dim(a.shape().rank() - 1);
    let batch_shape = Shape::new(out_shape.dims()[..out_shape.rank() - 2].to_vec());
    let a_batch = Shape::new(a.shape().dims()[..a.shape().rank() - 2].to_vec());
    let b_batch = Shape::new(b.shape().dims()[..b.shape().rank() - 2].to_vec());
    let a_strides = a.shape().strides();
    let b_strides = b.shape().strides();
    let adat = a.data();
    let bdat = b.data();
    let a_row_stride = a_strides[a.shape().rank() - 2];
    let b_row_stride = b_strides[b.shape().rank() - 2];
    let batches = batch_shape.numel().max(1);
    let pool = pool.for_work(out.len().saturating_mul(k));

    // Broadcast-resolved operand offsets, one entry per batch, computed once
    // so the per-row closure stays index-arithmetic only.
    let bases: Vec<(usize, usize)> = (0..batches)
        .map(|batch| {
            let batch_idx = batch_shape.multi_index(batch);
            let a_prefix = broadcast_index(&batch_idx, &a_batch);
            let b_prefix = broadcast_index(&batch_idx, &b_batch);
            let a_base = a_prefix.iter().zip(&a_strides).map(|(&i, &s)| i * s).sum();
            let b_base = b_prefix.iter().zip(&b_strides).map(|(&i, &s)| i * s).sum();
            (a_base, b_base)
        })
        .collect();

    // One chunk per output row, across all batches. Lane-blocked over the
    // output columns: `b`'s column stride is 1, so each reduction step loads
    // one contiguous `N`-wide slice of `b`'s row `p` and every lane
    // accumulates its own column's dot product in the scalar order.
    let simd = pool.use_simd();
    pool.run_chunks(out, n, |row, chunk| {
        let (a_base, b_base) = bases[row / m];
        let i = row % m;
        let a_row = &adat[a_base + i * a_row_stride..a_base + i * a_row_stride + k];
        let mut j0 = 0usize;
        if simd {
            while j0 + LANES <= n {
                matmul_cols::<LANES>(chunk, j0, a_row, bdat, b_base, b_row_stride);
                j0 += LANES;
            }
            if j0 + 4 <= n {
                matmul_cols::<4>(chunk, j0, a_row, bdat, b_base, b_row_stride);
                j0 += 4;
            }
        }
        for (j, slot) in chunk.iter_mut().enumerate().skip(j0) {
            let mut acc = 0.0f32;
            for (p, &av) in a_row.iter().enumerate() {
                acc += av * bdat[b_base + p * b_row_stride + j];
            }
            *slot = acc;
        }
    });
    Ok(())
}

/// `N` consecutive output columns of one `MatMul` row: lane `l` owns column
/// `j + l` and runs the scalar dot-product sequence on it.
fn matmul_cols<const N: usize>(
    chunk: &mut [f32],
    j: usize,
    a_row: &[f32],
    bdat: &[f32],
    b_base: usize,
    b_row_stride: usize,
) {
    let mut acc = F32Lanes::<N>::splat(0.0);
    for (p, &av) in a_row.iter().enumerate() {
        let bv = F32Lanes::<N>::load(&bdat[b_base + p * b_row_stride + j..]);
        acc = acc + F32Lanes::<N>::splat(av) * bv;
    }
    acc.store(&mut chunk[j..]);
}

/// ONNX `Gemm` with transpose flags, `alpha`/`beta` scaling and broadcast
/// bias, in the reference kernel's evaluation order. Parallel over output
/// rows.
fn fast_gemm(
    attrs: &Attrs,
    inputs: &[&Tensor],
    out_shape: &Shape,
    out: &mut [f32],
    pool: WorkPool,
) -> Result<(), OpError> {
    arity(OpKind::Gemm, inputs, 2)?;
    let a = inputs[0];
    let b = inputs[1];
    if a.shape().rank() != 2 || b.shape().rank() != 2 {
        return Err(OpError::InvalidShape {
            op: OpKind::Gemm,
            reason: "operands must be rank 2".into(),
        });
    }
    if out.is_empty() {
        return Ok(());
    }
    let alpha = attrs.float_or("alpha", 1.0);
    let beta = attrs.float_or("beta", 1.0);
    let trans_a = attrs.int_or("transA", 0) != 0;
    let trans_b = attrs.int_or("transB", 0) != 0;
    let m = out_shape.dim(0);
    let n = out_shape.dim(1);
    let k = if trans_a { a.shape().dim(0) } else { a.shape().dim(1) };
    let adat = a.data();
    let bdat = b.data();
    let (a_cols, b_cols) = (a.shape().dim(1), b.shape().dim(1));
    // Broadcast strides of the optional bias over the (m, n) output.
    let c = inputs.get(2);
    let (c_dat, c_si, c_sj) = match c {
        Some(c) => {
            let cd = c.shape().dims();
            let (si, sj) = match cd.len() {
                2 => (
                    if cd[0] == 1 { 0 } else { cd[1] },
                    if cd[1] == 1 { 0 } else { 1 },
                ),
                1 => (0, if cd[0] == 1 { 0 } else { 1 }),
                _ => (0, 0),
            };
            (Some(c.data()), si, sj)
        }
        None => (None, 0, 0),
    };

    let pool = pool.for_work(m.saturating_mul(n).saturating_mul(k));
    // Lane-blocked over output columns: `a`'s element is uniform per
    // reduction step (splat), `b` loads contiguously (or gathers with
    // column stride when transposed), and the bias broadcast reuses its
    // existing per-axis strides as gather strides.
    let simd = pool.use_simd();
    pool.run_chunks(out, n, |i, chunk| {
        let mut j0 = 0usize;
        if simd {
            while j0 + LANES <= n {
                gemm_cols::<LANES>(chunk, i, j0, k, trans_a, trans_b, adat, bdat, a_cols, b_cols, alpha, beta, c_dat, c_si, c_sj);
                j0 += LANES;
            }
            if j0 + 4 <= n {
                gemm_cols::<4>(chunk, i, j0, k, trans_a, trans_b, adat, bdat, a_cols, b_cols, alpha, beta, c_dat, c_si, c_sj);
                j0 += 4;
            }
        }
        for (j, slot) in chunk.iter_mut().enumerate().skip(j0) {
            let mut acc = 0.0f32;
            for p in 0..k {
                let av = if trans_a { adat[p * a_cols + i] } else { adat[i * a_cols + p] };
                let bv = if trans_b { bdat[j * b_cols + p] } else { bdat[p * b_cols + j] };
                acc += av * bv;
            }
            let mut v = alpha * acc;
            if let Some(cd) = c_dat {
                v += beta * cd[i * c_si + j * c_sj];
            }
            *slot = v;
        }
    });
    Ok(())
}

/// `N` consecutive output columns of one `Gemm` row: lane `l` owns column
/// `j + l`, accumulating `a[i,:] · b[:,j+l]` then applying `alpha`/`beta`
/// and the broadcast bias with the scalar kernel's operation sequence.
#[allow(clippy::too_many_arguments)]
fn gemm_cols<const N: usize>(
    chunk: &mut [f32],
    i: usize,
    j: usize,
    k: usize,
    trans_a: bool,
    trans_b: bool,
    adat: &[f32],
    bdat: &[f32],
    a_cols: usize,
    b_cols: usize,
    alpha: f32,
    beta: f32,
    c_dat: Option<&[f32]>,
    c_si: usize,
    c_sj: usize,
) {
    let mut acc = F32Lanes::<N>::splat(0.0);
    for p in 0..k {
        let av = if trans_a { adat[p * a_cols + i] } else { adat[i * a_cols + p] };
        let bv = if trans_b {
            F32Lanes::<N>::gather(bdat, j * b_cols + p, b_cols)
        } else {
            F32Lanes::<N>::load(&bdat[p * b_cols + j..])
        };
        acc = acc + F32Lanes::<N>::splat(av) * bv;
    }
    let mut v = F32Lanes::<N>::splat(alpha) * acc;
    if let Some(cd) = c_dat {
        let cv = F32Lanes::<N>::gather(cd, i * c_si + j * c_sj, c_sj);
        v = v + F32Lanes::<N>::splat(beta) * cv;
    }
    v.store(&mut chunk[j..]);
}

/// `MaxPool` / `AveragePool` with the reference kernel's window order and
/// padding-count semantics. Parallel over `(batch, channel)` output planes.
fn fast_pool(
    op: OpKind,
    attrs: &Attrs,
    inputs: &[&Tensor],
    out_shape: &Shape,
    out: &mut [f32],
    pool: WorkPool,
) -> Result<(), OpError> {
    arity(op, inputs, 1)?;
    let x = inputs[0];
    if x.shape().rank() < 3 {
        return Err(OpError::InvalidShape {
            op,
            reason: "expected (N, C, spatial...) input".into(),
        });
    }
    if out.is_empty() {
        return Ok(());
    }
    let spatial_rank = x.shape().rank() - 2;
    let kernel: Vec<usize> = attrs
        .ints_or("kernel_shape", &vec![1; spatial_rank])
        .iter()
        .map(|&k| k.max(1) as usize)
        .collect();
    let (strides, _, pads) = spatial_attrs(attrs, spatial_rank);
    let count_include_pad = attrs.int_or("count_include_pad", 0) != 0;
    let kernel_total: usize = kernel.iter().product();
    let is_max = op == OpKind::MaxPool;

    let xd = x.shape().dims().to_vec();
    let xs = x.shape().strides();
    let xdat = x.data();
    let channels = out_shape.dim(1);
    let out_sp: Vec<usize> = out_shape.dims()[2..].to_vec();
    let out_sp_count: usize = out_sp.iter().product();
    let pool = pool.for_work(out.len().saturating_mul(kernel_total));

    if spatial_rank == 2 {
        let (ih, iw) = (xd[2], xd[3]);
        let (kh, kw) = (kernel[0], kernel[1]);
        let (sh, sw) = (strides[0], strides[1]);
        let (ph, pw) = (pads[0], pads[1]);
        let (oh, ow) = (out_sp[0], out_sp[1]);
        let (xs0, xs1, xs2) = (xs[0], xs[1], xs[2]);
        pool.run_chunks(out, oh * ow, |plane, chunk| {
            let n = plane / channels;
            let c = plane % channels;
            let base = n * xs0 + c * xs1;
            let mut o = 0usize;
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut acc = if is_max { f32::NEG_INFINITY } else { 0.0 };
                    let mut count = 0usize;
                    for ky in 0..kh {
                        let y = oy * sh + ky;
                        if y < ph || y - ph >= ih {
                            continue;
                        }
                        let row = base + (y - ph) * xs2;
                        for kx in 0..kw {
                            let xx = ox * sw + kx;
                            if xx < pw || xx - pw >= iw {
                                continue;
                            }
                            let v = xdat[row + (xx - pw)];
                            if is_max {
                                acc = acc.max(v);
                            } else {
                                acc += v;
                            }
                            count += 1;
                        }
                    }
                    chunk[o] = pool_result(is_max, acc, count, count_include_pad, kernel_total);
                    o += 1;
                }
            }
        });
        return Ok(());
    }

    pool.run_chunks(out, out_sp_count, |plane, chunk| {
        let n = plane / channels;
        let c = plane % channels;
        let base = n * xs[0] + c * xs[1];
        let mut out_pos = vec![0usize; spatial_rank];
        let mut k_pos = vec![0usize; spatial_rank];
        for slot in chunk.iter_mut() {
            let mut acc = if is_max { f32::NEG_INFINITY } else { 0.0 };
            let mut count = 0usize;
            k_pos.iter_mut().for_each(|p| *p = 0);
            for _ in 0..kernel_total {
                let mut off = base;
                let mut in_bounds = true;
                for d in 0..spatial_rank {
                    let pos = out_pos[d] * strides[d] + k_pos[d];
                    if pos < pads[d] || pos - pads[d] >= xd[2 + d] {
                        in_bounds = false;
                        break;
                    }
                    off += (pos - pads[d]) * xs[2 + d];
                }
                if in_bounds {
                    let v = xdat[off];
                    if is_max {
                        acc = acc.max(v);
                    } else {
                        acc += v;
                    }
                    count += 1;
                }
                advance(&mut k_pos, &kernel);
            }
            *slot = pool_result(is_max, acc, count, count_include_pad, kernel_total);
            advance(&mut out_pos, &out_sp);
        }
    });
    Ok(())
}

fn pool_result(
    is_max: bool,
    acc: f32,
    count: usize,
    count_include_pad: bool,
    kernel_total: usize,
) -> f32 {
    if is_max {
        acc
    } else {
        let denom = if count_include_pad { kernel_total } else { count.max(1) };
        acc / denom as f32
    }
}

/// `GlobalAveragePool` over contiguous per-channel spatial slices, parallel
/// over `(batch, channel)` — each output element's spatial sum is one task.
fn fast_global_average_pool(
    inputs: &[&Tensor],
    out_shape: &Shape,
    out: &mut [f32],
    pool: WorkPool,
) -> Result<(), OpError> {
    arity(OpKind::GlobalAveragePool, inputs, 1)?;
    let x = inputs[0];
    if x.shape().rank() < 3 {
        return Err(OpError::InvalidShape {
            op: OpKind::GlobalAveragePool,
            reason: "expected (N, C, spatial...) input".into(),
        });
    }
    if out.is_empty() {
        return Ok(());
    }
    let channels = out_shape.dim(1);
    debug_assert_eq!(out.len(), out_shape.dim(0) * channels);
    let spatial: usize = x.shape().dims()[2..].iter().product();
    let xdat = x.data();
    let pool = pool.for_work(xdat.len());
    pool.run_chunks(out, 1, |plane, chunk| {
        let base = plane * spatial;
        let sum: f32 = xdat[base..base + spatial].iter().sum();
        chunk[0] = sum / spatial.max(1) as f32;
    });
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{execute, infer_shapes};

    /// Runs `op` through both the fast and reference kernels and checks the
    /// outputs are bit-identical (same taps, same accumulation order). The
    /// fast kernel runs with its lane-blocked (SIMD) path enabled — the
    /// default — so every case here also pins SIMD == reference; the
    /// explicit scalar mode is checked against it bit for bit as well.
    fn assert_fast_matches_reference(op: OpKind, attrs: &Attrs, inputs: &[&Tensor]) {
        let shapes: Vec<Shape> = inputs.iter().map(|t| t.shape().clone()).collect();
        let out_shape = infer_shapes(op, attrs, &shapes).unwrap().remove(0);
        let mut fast = vec![0.0f32; out_shape.numel()];
        assert!(execute_fast_into(op, attrs, inputs, &out_shape, &mut fast).unwrap());
        let reference = execute(op, attrs, inputs).unwrap().remove(0);
        assert_eq!(fast.as_slice(), reference.data(), "{op} diverged from reference");
        let mut scalar = vec![0.0f32; out_shape.numel()];
        assert!(execute_fast_into_threaded(
            op,
            attrs,
            inputs,
            &out_shape,
            &mut scalar,
            WorkPool::serial().with_simd(false),
        )
        .unwrap());
        assert_eq!(scalar, fast, "{op} scalar mode diverged from the SIMD path");
        assert_threaded_matches_serial(op, attrs, inputs, &out_shape, &fast);
    }

    /// Runs `op` through the threaded kernel at several thread counts (with
    /// the work gate disabled, so the parallel partitioning really runs) and
    /// checks every output byte matches the serial result.
    fn assert_threaded_matches_serial(
        op: OpKind,
        attrs: &Attrs,
        inputs: &[&Tensor],
        out_shape: &Shape,
        serial: &[f32],
    ) {
        for threads in [2, 3, 8] {
            let pool = WorkPool::with_min_work(threads, 0);
            let mut threaded = vec![0.0f32; out_shape.numel()];
            assert!(
                execute_fast_into_threaded(op, attrs, inputs, out_shape, &mut threaded, pool)
                    .unwrap()
            );
            assert_eq!(
                threaded.as_slice(),
                serial,
                "{op} not bit-identical at {threads} threads"
            );
        }
    }

    #[test]
    fn registry_matches_dispatch() {
        for op in OpKind::all() {
            if !has_fast_kernel(op) {
                let mut out = [0.0f32];
                let x = Tensor::scalar(1.0);
                // Elementwise ops get Ok(false); the registry is authoritative.
                if op.is_elementwise_unary() {
                    assert!(!execute_fast_into(op, &Attrs::new(), &[&x], &Shape::scalar(), &mut out)
                        .unwrap());
                }
            }
        }
        assert!(has_fast_kernel(OpKind::Conv));
        assert!(!has_fast_kernel(OpKind::Softmax));
    }

    #[test]
    fn conv_2d_matches_reference_with_padding_strides_and_bias() {
        let x = Tensor::random(Shape::new(vec![2, 3, 9, 7]), 1);
        let w = Tensor::random(Shape::new(vec![4, 3, 3, 3]), 2);
        let b = Tensor::random(Shape::new(vec![4]), 3);
        for attrs in [
            Attrs::new().with_ints("pads", vec![1, 1, 1, 1]),
            Attrs::new().with_ints("strides", vec![2, 2]),
            Attrs::new().with_ints("pads", vec![2, 0, 2, 0]).with_ints("dilations", vec![2, 1]),
        ] {
            assert_fast_matches_reference(OpKind::Conv, &attrs, &[&x, &w, &b]);
            assert_fast_matches_reference(OpKind::Conv, &attrs, &[&x, &w]);
        }
    }

    #[test]
    fn grouped_conv_matches_reference() {
        let x = Tensor::random(Shape::new(vec![1, 4, 6, 6]), 4);
        let w = Tensor::random(Shape::new(vec![4, 1, 3, 3]), 5);
        let attrs = Attrs::new().with_int("group", 4).with_ints("pads", vec![1, 1, 1, 1]);
        assert_fast_matches_reference(OpKind::Conv, &attrs, &[&x, &w]);
    }

    #[test]
    fn conv_3d_matches_reference() {
        let x = Tensor::random(Shape::new(vec![1, 2, 4, 5, 4]), 6);
        let w = Tensor::random(Shape::new(vec![3, 2, 3, 3, 3]), 7);
        let attrs = Attrs::new().with_ints("pads", vec![1, 1, 1, 1, 1, 1]);
        assert_fast_matches_reference(OpKind::Conv, &attrs, &[&x, &w]);
    }

    #[test]
    fn matmul_matches_reference_including_batch_broadcast() {
        let a = Tensor::random(Shape::new(vec![3, 4]), 8);
        let b = Tensor::random(Shape::new(vec![4, 5]), 9);
        assert_fast_matches_reference(OpKind::MatMul, &Attrs::new(), &[&a, &b]);
        let a = Tensor::random(Shape::new(vec![2, 3, 4]), 10);
        let b = Tensor::random(Shape::new(vec![4, 5]), 11);
        assert_fast_matches_reference(OpKind::MatMul, &Attrs::new(), &[&a, &b]);
        let a = Tensor::random(Shape::new(vec![2, 1, 3, 4]), 12);
        let b = Tensor::random(Shape::new(vec![2, 4, 2]), 13);
        assert_fast_matches_reference(OpKind::MatMul, &Attrs::new(), &[&a, &b]);
        // Leading all-ones batch prefix takes the per-row parallel path.
        let a = Tensor::random(Shape::new(vec![1, 6, 4]), 24);
        let b = Tensor::random(Shape::new(vec![1, 4, 3]), 25);
        assert_fast_matches_reference(OpKind::MatMul, &Attrs::new(), &[&a, &b]);
    }

    #[test]
    fn gemm_matches_reference_with_transpose_and_bias() {
        let a = Tensor::random(Shape::new(vec![3, 4]), 14);
        let bt = Tensor::random(Shape::new(vec![5, 4]), 15);
        let c = Tensor::random(Shape::new(vec![5]), 16);
        let attrs = Attrs::new()
            .with_int("transB", 1)
            .with_float("alpha", 0.5)
            .with_float("beta", 2.0);
        assert_fast_matches_reference(OpKind::Gemm, &attrs, &[&a, &bt, &c]);
        let at = Tensor::random(Shape::new(vec![4, 3]), 17);
        let b = Tensor::random(Shape::new(vec![4, 5]), 18);
        let c2 = Tensor::random(Shape::new(vec![3, 1]), 19);
        let attrs = Attrs::new().with_int("transA", 1);
        assert_fast_matches_reference(OpKind::Gemm, &attrs, &[&at, &b, &c2]);
    }

    #[test]
    fn pools_match_reference() {
        let x = Tensor::random(Shape::new(vec![1, 3, 7, 7]), 20);
        let attrs = Attrs::new()
            .with_ints("kernel_shape", vec![3, 3])
            .with_ints("strides", vec![2, 2])
            .with_ints("pads", vec![1, 1, 1, 1]);
        assert_fast_matches_reference(OpKind::MaxPool, &attrs, &[&x]);
        assert_fast_matches_reference(OpKind::AveragePool, &attrs, &[&x]);
        let include = attrs.clone().with_int("count_include_pad", 1);
        assert_fast_matches_reference(OpKind::AveragePool, &include, &[&x]);
        // 3-D pooling takes the generic odometer path.
        let x3 = Tensor::random(Shape::new(vec![1, 2, 4, 4, 4]), 21);
        let attrs3 =
            Attrs::new().with_ints("kernel_shape", vec![2, 2, 2]).with_ints("strides", vec![2, 2, 2]);
        assert_fast_matches_reference(OpKind::MaxPool, &attrs3, &[&x3]);
        assert_fast_matches_reference(OpKind::GlobalAveragePool, &Attrs::new(), &[&x3]);
    }

    #[test]
    fn simd_interiors_cover_every_lane_width_and_stride_form() {
        // Output widths chosen to force each lane split: 8-lane bundles
        // (ow >= 8 + borders), the 4-lane remainder pass, and scalar tails;
        // strides > 1 take the gather load, stride 1 the contiguous load.
        let x = Tensor::random(Shape::new(vec![1, 2, 5, 23]), 50);
        let w = Tensor::random(Shape::new(vec![3, 2, 3, 3]), 51);
        for attrs in [
            Attrs::new(),
            Attrs::new().with_ints("pads", vec![1, 1, 1, 1]),
            Attrs::new().with_ints("strides", vec![1, 2]).with_ints("pads", vec![1, 1, 1, 1]),
            Attrs::new().with_ints("dilations", vec![1, 2]),
            Attrs::new().with_ints("pads", vec![0, 9, 0, 9]),
        ] {
            assert_fast_matches_reference(OpKind::Conv, &attrs, &[&x, &w]);
        }
        // 1x1 kernel: the whole row is interior.
        let w1 = Tensor::random(Shape::new(vec![3, 2, 1, 1]), 52);
        assert_fast_matches_reference(OpKind::Conv, &Attrs::new(), &[&x, &w1]);
        // MatMul/Gemm columns across the 8/4/scalar splits (n = 4, 7, 8, 21).
        for n in [4usize, 7, 8, 21] {
            let a = Tensor::random(Shape::new(vec![3, 5]), 53 + n as u64);
            let b = Tensor::random(Shape::new(vec![5, n]), 60 + n as u64);
            assert_fast_matches_reference(OpKind::MatMul, &Attrs::new(), &[&a, &b]);
            let bt = Tensor::random(Shape::new(vec![n, 5]), 70 + n as u64);
            let c = Tensor::random(Shape::new(vec![n]), 80 + n as u64);
            let attrs = Attrs::new().with_int("transB", 1).with_float("beta", 0.5);
            assert_fast_matches_reference(OpKind::Gemm, &attrs, &[&a, &bt, &c]);
        }
    }

    #[test]
    fn large_conv_passes_the_default_work_gate_bit_identically() {
        // Big enough that WorkPool::new's default gate keeps the region
        // parallel — the production configuration, not just min_work = 0.
        let x = Tensor::random(Shape::new(vec![1, 8, 20, 20]), 26);
        let w = Tensor::random(Shape::new(vec![16, 8, 3, 3]), 27);
        let attrs = Attrs::new().with_ints("pads", vec![1, 1, 1, 1]);
        let out_shape =
            infer_shapes(OpKind::Conv, &attrs, &[x.shape().clone(), w.shape().clone()])
                .unwrap()
                .remove(0);
        let mut serial = vec![0.0f32; out_shape.numel()];
        execute_fast_into(OpKind::Conv, &attrs, &[&x, &w], &out_shape, &mut serial).unwrap();
        let mut threaded = vec![0.0f32; out_shape.numel()];
        execute_fast_into_threaded(
            OpKind::Conv,
            &attrs,
            &[&x, &w],
            &out_shape,
            &mut threaded,
            WorkPool::new(4),
        )
        .unwrap();
        assert_eq!(serial, threaded);
    }

    #[test]
    fn invalid_ranks_are_rejected_not_panicked() {
        let x = Tensor::random(Shape::new(vec![4]), 22);
        let w = Tensor::random(Shape::new(vec![4]), 23);
        let mut out = vec![0.0f32; 4];
        let shape = Shape::new(vec![4]);
        assert!(execute_fast_into(OpKind::Conv, &Attrs::new(), &[&x, &w], &shape, &mut out).is_err());
        assert!(execute_fast_into(OpKind::MatMul, &Attrs::new(), &[&x, &w], &shape, &mut out).is_err());
        assert!(execute_fast_into(OpKind::MaxPool, &Attrs::new(), &[&x], &shape, &mut out).is_err());
    }
}
