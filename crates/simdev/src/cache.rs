//! Set-associative cache and TLB simulator.
//!
//! Figure 8 of the paper compares L1/L2/L3 data-cache and L1/L2 TLB miss
//! counts across frameworks (CPU) and L1/L2 miss counts (GPU). The executor
//! feeds every tensor read/write through this simulator so those counters
//! can be regenerated from the actual access stream of fused vs unfused
//! execution.

/// Configuration of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheLevelConfig {
    /// Total capacity in bytes.
    pub size_bytes: usize,
    /// Cache line size in bytes.
    pub line_bytes: usize,
    /// Associativity (ways per set).
    pub associativity: usize,
}

/// Configuration of one TLB level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TlbConfig {
    /// Number of entries.
    pub entries: usize,
    /// Page size in bytes.
    pub page_bytes: usize,
}

/// A full cache + TLB hierarchy configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheConfig {
    /// Data-cache levels, ordered L1 → last level.
    pub levels: Vec<CacheLevelConfig>,
    /// TLB levels, ordered L1 → last level.
    pub tlbs: Vec<TlbConfig>,
}

impl CacheConfig {
    /// A three-level mobile-CPU hierarchy with two TLB levels.
    #[must_use]
    pub fn mobile_cpu(l1: usize, l2: usize, l3: usize) -> Self {
        CacheConfig {
            levels: vec![
                CacheLevelConfig {
                    size_bytes: l1,
                    line_bytes: 64,
                    associativity: 4,
                },
                CacheLevelConfig {
                    size_bytes: l2,
                    line_bytes: 64,
                    associativity: 8,
                },
                CacheLevelConfig {
                    size_bytes: l3,
                    line_bytes: 64,
                    associativity: 16,
                },
            ],
            tlbs: vec![
                TlbConfig {
                    entries: 48,
                    page_bytes: 4096,
                },
                TlbConfig {
                    entries: 1024,
                    page_bytes: 4096,
                },
            ],
        }
    }

    /// A two-level mobile-GPU hierarchy (no TLB counters reported on GPU).
    #[must_use]
    pub fn mobile_gpu(l1: usize, l2: usize) -> Self {
        CacheConfig {
            levels: vec![
                CacheLevelConfig {
                    size_bytes: l1,
                    line_bytes: 64,
                    associativity: 4,
                },
                CacheLevelConfig {
                    size_bytes: l2,
                    line_bytes: 64,
                    associativity: 8,
                },
            ],
            tlbs: Vec::new(),
        }
    }
}

/// Per-level miss counts after a simulation run.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Accesses that reached each data-cache level.
    pub level_accesses: Vec<u64>,
    /// Misses at each data-cache level.
    pub level_misses: Vec<u64>,
    /// Accesses that reached each TLB level.
    pub tlb_accesses: Vec<u64>,
    /// Misses at each TLB level.
    pub tlb_misses: Vec<u64>,
}

impl CacheStats {
    /// Miss rate of a data-cache level (0 when the level saw no accesses).
    #[must_use]
    pub fn miss_rate(&self, level: usize) -> f64 {
        match (self.level_accesses.get(level), self.level_misses.get(level)) {
            (Some(&a), Some(&m)) if a > 0 => m as f64 / a as f64,
            _ => 0.0,
        }
    }
}

/// One set-associative LRU cache level.
#[derive(Debug, Clone)]
struct CacheLevel {
    config: CacheLevelConfig,
    /// `sets[set] = Vec<(tag, lru_counter)>`.
    sets: Vec<Vec<(u64, u64)>>,
    accesses: u64,
    misses: u64,
    clock: u64,
}

impl CacheLevel {
    fn new(config: CacheLevelConfig) -> Self {
        let num_sets = (config.size_bytes / config.line_bytes / config.associativity).max(1);
        CacheLevel {
            config,
            sets: vec![Vec::new(); num_sets],
            accesses: 0,
            misses: 0,
            clock: 0,
        }
    }

    /// Accesses the line containing `address`; returns `true` on a hit.
    fn access(&mut self, address: u64) -> bool {
        self.clock += 1;
        self.accesses += 1;
        let line = address / self.config.line_bytes as u64;
        let set_idx = (line % self.sets.len() as u64) as usize;
        let tag = line / self.sets.len() as u64;
        let set = &mut self.sets[set_idx];
        if let Some(entry) = set.iter_mut().find(|(t, _)| *t == tag) {
            entry.1 = self.clock;
            return true;
        }
        self.misses += 1;
        if set.len() >= self.config.associativity {
            // Evict the least-recently-used way.
            if let Some(pos) = set
                .iter()
                .enumerate()
                .min_by_key(|(_, (_, lru))| *lru)
                .map(|(i, _)| i)
            {
                set.remove(pos);
            }
        }
        set.push((tag, self.clock));
        false
    }
}

/// A fully-associative LRU TLB level.
#[derive(Debug, Clone)]
struct TlbLevel {
    config: TlbConfig,
    entries: Vec<(u64, u64)>,
    accesses: u64,
    misses: u64,
    clock: u64,
}

impl TlbLevel {
    fn new(config: TlbConfig) -> Self {
        TlbLevel {
            config,
            entries: Vec::new(),
            accesses: 0,
            misses: 0,
            clock: 0,
        }
    }

    fn access(&mut self, address: u64) -> bool {
        self.clock += 1;
        self.accesses += 1;
        let page = address / self.config.page_bytes as u64;
        if let Some(entry) = self.entries.iter_mut().find(|(p, _)| *p == page) {
            entry.1 = self.clock;
            return true;
        }
        self.misses += 1;
        if self.entries.len() >= self.config.entries {
            if let Some(pos) = self
                .entries
                .iter()
                .enumerate()
                .min_by_key(|(_, (_, lru))| *lru)
                .map(|(i, _)| i)
            {
                self.entries.remove(pos);
            }
        }
        self.entries.push((page, self.clock));
        false
    }
}

/// A simulated cache + TLB hierarchy.
#[derive(Debug, Clone)]
pub struct CacheHierarchy {
    levels: Vec<CacheLevel>,
    tlbs: Vec<TlbLevel>,
}

impl CacheHierarchy {
    /// Builds a hierarchy from its configuration.
    #[must_use]
    pub fn new(config: &CacheConfig) -> Self {
        CacheHierarchy {
            levels: config.levels.iter().map(|&c| CacheLevel::new(c)).collect(),
            tlbs: config.tlbs.iter().map(|&c| TlbLevel::new(c)).collect(),
        }
    }

    /// Simulates an access of `bytes` bytes starting at `address`, walking
    /// the hierarchy line by line: a miss at level *i* probes level *i+1*.
    pub fn access(&mut self, address: u64, bytes: u64) {
        let line = self
            .levels
            .first()
            .map(|l| l.config.line_bytes as u64)
            .unwrap_or(64);
        let mut addr = address;
        let end = address + bytes.max(1);
        while addr < end {
            // Data caches.
            for level in &mut self.levels {
                if level.access(addr) {
                    break;
                }
            }
            // TLBs.
            for tlb in &mut self.tlbs {
                if tlb.access(addr) {
                    break;
                }
            }
            addr += line;
        }
    }

    /// Collected statistics so far.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            level_accesses: self.levels.iter().map(|l| l.accesses).collect(),
            level_misses: self.levels.iter().map(|l| l.misses).collect(),
            tlb_accesses: self.tlbs.iter().map(|t| t.accesses).collect(),
            tlb_misses: self.tlbs.iter().map(|t| t.misses).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config() -> CacheConfig {
        CacheConfig {
            levels: vec![
                CacheLevelConfig {
                    size_bytes: 1024,
                    line_bytes: 64,
                    associativity: 2,
                },
                CacheLevelConfig {
                    size_bytes: 8192,
                    line_bytes: 64,
                    associativity: 4,
                },
            ],
            tlbs: vec![TlbConfig {
                entries: 4,
                page_bytes: 4096,
            }],
        }
    }

    #[test]
    fn repeated_access_to_same_line_hits_after_first_miss() {
        let mut h = CacheHierarchy::new(&tiny_config());
        h.access(0, 4);
        h.access(0, 4);
        h.access(8, 4); // same 64-byte line
        let s = h.stats();
        assert_eq!(s.level_accesses[0], 3);
        assert_eq!(s.level_misses[0], 1);
        // L2 only sees the single L1 miss.
        assert_eq!(s.level_accesses[1], 1);
    }

    #[test]
    fn streaming_a_large_buffer_misses_every_line_once() {
        let mut h = CacheHierarchy::new(&tiny_config());
        let bytes = 64 * 100;
        h.access(0, bytes);
        let s = h.stats();
        assert_eq!(s.level_accesses[0], 100);
        assert_eq!(s.level_misses[0], 100);
        // A second pass over a buffer much larger than L1 but smaller than
        // L2 hits in L2.
        h.access(0, bytes);
        let s = h.stats();
        assert_eq!(s.level_misses[0], 200);
        assert_eq!(s.level_misses[1], 100);
    }

    #[test]
    fn working_set_within_l1_stays_resident() {
        let mut h = CacheHierarchy::new(&tiny_config());
        // 512 bytes = 8 lines fits a 1 KiB 2-way cache.
        for _ in 0..10 {
            h.access(0, 512);
        }
        let s = h.stats();
        assert_eq!(s.level_misses[0], 8);
        assert!(s.miss_rate(0) < 0.11);
    }

    #[test]
    fn lru_eviction_keeps_recent_lines() {
        // Two lines mapping to the same set with associativity 2 plus a third
        // forces an eviction of the least-recently-used one.
        let config = CacheConfig {
            levels: vec![CacheLevelConfig {
                size_bytes: 128,
                line_bytes: 64,
                associativity: 1,
            }],
            tlbs: vec![],
        };
        let mut h = CacheHierarchy::new(&config);
        // 2 sets; addresses 0 and 128 map to set 0.
        h.access(0, 1);
        h.access(128, 1);
        h.access(0, 1);
        let s = h.stats();
        assert_eq!(s.level_misses[0], 3, "direct-mapped conflict misses");
    }

    #[test]
    fn tlb_counts_page_granularity() {
        let mut h = CacheHierarchy::new(&tiny_config());
        // Touch 3 distinct pages.
        h.access(0, 1);
        h.access(4096, 1);
        h.access(8192, 1);
        h.access(0, 1);
        let s = h.stats();
        assert_eq!(s.tlb_misses[0], 3);
        assert_eq!(s.tlb_accesses[0], 4);
    }

    #[test]
    fn miss_rate_handles_empty_levels() {
        let s = CacheStats::default();
        assert_eq!(s.miss_rate(0), 0.0);
    }
}
