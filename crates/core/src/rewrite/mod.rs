//! Mathematical-property-based graph rewriting (paper §4.2, Table 4,
//! Figure 2).
//!
//! The engine partitions the ECG at operators that carry none of the
//! associative / commutative / distributive properties, exhaustively matches
//! rewrite rules inside each partition, and greedily applies the rule with
//! the largest #FLOPs reduction until no rule matches — exactly the paper's
//! procedure. Ties on #FLOPs are broken by memory loads and then by operator
//! count, which captures the rules the paper annotates with "although #FLOPS
//! is not reduced, A is loaded once instead of twice".
//!
//! The rule set implemented here covers every rewrite the paper presents
//! explicitly (Table 4 and Figure 2) plus the fusion-facilitating
//! simplifications (§4.2's "remove unnecessary operations, eliminate
//! redundant intermediate data copies"); the paper's full 149-rule catalogue
//! enumerates operand-order and operator variants of these same patterns.

mod rules;

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use dnnf_graph::{Graph, GraphError, Node, NodeId, ValueId};

use crate::Ecg;

pub use rules::default_rules;

/// Category of a rewrite rule (the paper's three property families plus the
/// structural simplifications that facilitate fusion).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RuleCategory {
    /// Exploits associativity to reorder an operator chain.
    Associative,
    /// Exploits distributivity to factor a common operand.
    Distributive,
    /// Exploits commutativity (with a reduction) to reorder operators.
    Commutative,
    /// Removes redundant data-movement / identity structure.
    Simplification,
}

impl fmt::Display for RuleCategory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            RuleCategory::Associative => "associative",
            RuleCategory::Distributive => "distributive",
            RuleCategory::Commutative => "commutative",
            RuleCategory::Simplification => "simplification",
        };
        f.write_str(s)
    }
}

/// A single graph-rewriting rule.
pub trait RewriteRule: fmt::Debug {
    /// Stable rule name (used in reports).
    fn name(&self) -> &'static str;
    /// The property family the rule belongs to.
    fn category(&self) -> RuleCategory;
    /// Attempts to apply the rule once, anchored at a node inside
    /// `partition`. Returns the rewritten graph, or `None` if the rule does
    /// not match.
    fn try_apply(&self, graph: &Graph, partition: &[NodeId]) -> Option<Graph>;
}

/// Record of one applied rewrite.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AppliedRewrite {
    /// Rule name.
    pub rule: String,
    /// Rule category.
    pub category: RuleCategory,
    /// FLOPs eliminated by this application.
    pub flops_saved: i64,
    /// Change in operator count (positive = fewer operators).
    pub nodes_removed: i64,
}

/// The greedy, FLOPs-driven rewrite engine.
pub struct RewriteEngine {
    rules: Vec<Box<dyn RewriteRule>>,
    max_applications: usize,
}

impl fmt::Debug for RewriteEngine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RewriteEngine")
            .field(
                "rules",
                &self.rules.iter().map(|r| r.name()).collect::<Vec<_>>(),
            )
            .field("max_applications", &self.max_applications)
            .finish()
    }
}

impl Default for RewriteEngine {
    fn default() -> Self {
        RewriteEngine::with_default_rules()
    }
}

impl RewriteEngine {
    /// Creates an engine with the full default rule set.
    #[must_use]
    pub fn with_default_rules() -> Self {
        RewriteEngine {
            rules: default_rules(),
            max_applications: 10_000,
        }
    }

    /// Creates an engine with a custom rule set.
    #[must_use]
    pub fn new(rules: Vec<Box<dyn RewriteRule>>) -> Self {
        RewriteEngine {
            rules,
            max_applications: 10_000,
        }
    }

    /// Names of the registered rules, grouped by category.
    #[must_use]
    pub fn rule_names(&self) -> Vec<(&'static str, RuleCategory)> {
        self.rules
            .iter()
            .map(|r| (r.name(), r.category()))
            .collect()
    }

    /// Runs the engine to fixpoint, returning the rewritten graph and the
    /// rewrites applied (in application order).
    #[must_use]
    pub fn run(&self, graph: &Graph) -> (Graph, Vec<AppliedRewrite>) {
        let mut current = graph.clone();
        let mut applied = Vec::new();
        for _ in 0..self.max_applications {
            let ecg = Ecg::new(current.clone());
            let partitions = ecg.rewrite_partitions();
            let cur_flops = current.stats().flops as i64;
            let cur_loads = total_load_elems(&current) as i64;
            let cur_nodes = current.node_count() as i64;

            // Evaluate every rule on every partition; keep the best
            // improvement (greedy, as in the paper).
            let mut best: Option<(Graph, AppliedRewrite, (i64, i64, i64))> = None;
            for partition in &partitions {
                for rule in &self.rules {
                    if let Some(candidate) = rule.try_apply(&current, partition) {
                        let flops_saved = cur_flops - candidate.stats().flops as i64;
                        let loads_saved = cur_loads - total_load_elems(&candidate) as i64;
                        let nodes_removed = cur_nodes - candidate.node_count() as i64;
                        let score = (flops_saved, loads_saved, nodes_removed);
                        let improves = score > (0, 0, 0);
                        let better = best.as_ref().map(|(_, _, s)| score > *s).unwrap_or(true);
                        if improves && better && candidate.validate().is_ok() {
                            best = Some((
                                candidate,
                                AppliedRewrite {
                                    rule: rule.name().to_string(),
                                    category: rule.category(),
                                    flops_saved,
                                    nodes_removed,
                                },
                                score,
                            ));
                        }
                    }
                }
            }
            match best {
                Some((next, record, _)) => {
                    current = next;
                    applied.push(record);
                }
                None => break,
            }
        }
        (current, applied)
    }
}

/// Total number of elements loaded as operator inputs across the whole graph
/// — the tie-break metric for rewrites that keep #FLOPs constant but halve
/// the number of times a tensor is read.
fn total_load_elems(graph: &Graph) -> u64 {
    graph
        .nodes()
        .flat_map(|n| n.inputs.iter())
        .map(|&v| graph.value(v).shape.numel() as u64)
        .sum()
}

/// The producer node of a value, if any.
pub(crate) fn producer(graph: &Graph, value: ValueId) -> Option<&Node> {
    graph.value(value).producer.map(|p| graph.node(p))
}

/// Whether a value has exactly one consumer and is not a graph output — the
/// precondition for folding its producer into a rewrite.
pub(crate) fn single_use(graph: &Graph, value: ValueId) -> bool {
    graph.value(value).consumers.len() == 1 && !graph.outputs().contains(&value)
}

/// Splice callback for [`rebuild_replacing`]: given the partially-built new
/// graph and the old-to-new value-id mapping, adds the replacement operators
/// and returns the mapping for the removed nodes' output values.
pub(crate) type SpliceFn<'a> = dyn FnMut(&mut Graph, &BTreeMap<ValueId, ValueId>) -> Result<BTreeMap<ValueId, ValueId>, GraphError>
    + 'a;

/// Rebuilds `graph` with the nodes in `removed` deleted and a replacement
/// sub-graph spliced in.
///
/// The `splice` callback is invoked exactly once, with the partially-built
/// new graph and the mapping from old to new value ids established so far; it
/// must add the replacement operators and return the mapping for the removed
/// nodes' externally-visible output values.
pub(crate) fn rebuild_replacing(
    graph: &Graph,
    removed: &BTreeSet<NodeId>,
    splice: &mut SpliceFn,
) -> Result<Graph, GraphError> {
    let mut new = Graph::new(graph.name());
    let mut map: BTreeMap<ValueId, ValueId> = BTreeMap::new();

    // Carry over inputs and weights.
    for value in graph.values() {
        match value.kind {
            dnnf_graph::ValueKind::Input => {
                let id = new.add_input(value.name.clone(), value.shape.clone());
                if let Some(axis) = graph.seq_axis(value.id) {
                    new.mark_seq_axis(id, axis)?;
                }
                map.insert(value.id, id);
            }
            dnnf_graph::ValueKind::Weight => {
                let id = match graph.weight_data(value.id) {
                    Some(data) => new.add_weight_with_data(value.name.clone(), data.clone()),
                    None => new.add_weight(value.name.clone(), value.shape.clone()),
                };
                map.insert(value.id, id);
            }
            _ => {}
        }
    }

    let mut spliced = false;
    for node_id in graph.topo_order() {
        if removed.contains(&node_id) {
            continue;
        }
        let node = graph.node(node_id);
        if !spliced && node.inputs.iter().any(|i| !map.contains_key(i)) {
            let extra = splice(&mut new, &map)?;
            map.extend(extra);
            spliced = true;
        }
        let new_inputs: Vec<ValueId> = node
            .inputs
            .iter()
            .map(|i| {
                map.get(i).copied().ok_or_else(|| GraphError::Invalid {
                    reason: format!("rewrite lost value `{}`", graph.value(*i).name),
                })
            })
            .collect::<Result<_, _>>()?;
        let outs = new.add_op(node.op, node.attrs.clone(), &new_inputs, node.name.clone())?;
        for (old, newv) in node.outputs.iter().zip(outs) {
            map.insert(*old, newv);
        }
    }
    if !spliced {
        let extra = splice(&mut new, &map)?;
        map.extend(extra);
    }

    for &out in graph.outputs() {
        let mapped = map.get(&out).copied().ok_or_else(|| GraphError::Invalid {
            reason: "rewrite lost a graph output".into(),
        })?;
        new.mark_output(mapped);
    }
    Ok(new)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnnf_ops::{Attrs, OpKind};
    use dnnf_tensor::Shape;

    fn relu_chain() -> Graph {
        let mut g = Graph::new("chain");
        let x = g.add_input("x", Shape::new(vec![4]));
        let a = g.add_op(OpKind::Relu, Attrs::new(), &[x], "a").unwrap()[0];
        let b = g.add_op(OpKind::Identity, Attrs::new(), &[a], "b").unwrap()[0];
        let c = g.add_op(OpKind::Sigmoid, Attrs::new(), &[b], "c").unwrap()[0];
        g.mark_output(c);
        g
    }

    #[test]
    fn rebuild_without_removals_is_equivalent() {
        let g = relu_chain();
        let rebuilt =
            rebuild_replacing(&g, &BTreeSet::new(), &mut |_, _| Ok(BTreeMap::new())).unwrap();
        assert_eq!(rebuilt.node_count(), g.node_count());
        assert_eq!(rebuilt.stats(), g.stats());
        assert!(rebuilt.validate().is_ok());
    }

    #[test]
    fn rebuild_can_drop_an_identity_node() {
        let g = relu_chain();
        let identity = g.nodes().find(|n| n.op == OpKind::Identity).unwrap();
        let removed: BTreeSet<NodeId> = [identity.id].into_iter().collect();
        let identity_in = identity.inputs[0];
        let identity_out = identity.outputs[0];
        let rebuilt = rebuild_replacing(&g, &removed, &mut |_, map| {
            let mut extra = BTreeMap::new();
            extra.insert(identity_out, map[&identity_in]);
            Ok(extra)
        })
        .unwrap();
        assert_eq!(rebuilt.node_count(), 2);
        assert!(rebuilt.validate().is_ok());
    }

    #[test]
    fn engine_reports_rule_names() {
        let engine = RewriteEngine::with_default_rules();
        let names = engine.rule_names();
        assert!(names.len() >= 10);
        assert!(names.iter().any(|(_, c)| *c == RuleCategory::Associative));
        assert!(names.iter().any(|(_, c)| *c == RuleCategory::Distributive));
        assert!(names.iter().any(|(_, c)| *c == RuleCategory::Commutative));
        assert!(names
            .iter()
            .any(|(_, c)| *c == RuleCategory::Simplification));
    }

    #[test]
    fn engine_is_idempotent_on_graphs_without_matches() {
        let g = relu_chain();
        let engine = RewriteEngine::with_default_rules();
        let (rewritten, applied) = engine.run(&g);
        // Only the Identity elimination can fire here.
        assert!(applied
            .iter()
            .all(|a| a.category == RuleCategory::Simplification));
        let (again, applied2) = engine.run(&rewritten);
        assert!(applied2.is_empty());
        assert_eq!(again.node_count(), rewritten.node_count());
    }

    #[test]
    fn total_load_elems_counts_every_input_edge() {
        let g = relu_chain();
        // Three nodes each read a 4-element tensor.
        assert_eq!(total_load_elems(&g), 12);
    }
}
