//! Adapter exposing the simulated-device cost model as a `dnnf-core`
//! latency model, so fusion-plan exploration profiles candidate blocks
//! against the same device the evaluation later measures.

use std::collections::BTreeSet;

use dnnf_core::LatencyModel;
use dnnf_graph::{Graph, NodeId};
use dnnf_ops::{cost, MappingType};
use dnnf_simdev::{BlockWork, DeviceCostModel, DeviceSpec};
use dnnf_tensor::Shape;

/// A [`LatencyModel`] backed by a simulated device.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceLatencyModel {
    cost_model: DeviceCostModel,
}

impl DeviceLatencyModel {
    /// Creates the latency model for a device.
    #[must_use]
    pub fn new(spec: DeviceSpec) -> Self {
        DeviceLatencyModel {
            cost_model: DeviceCostModel::new(spec),
        }
    }

    /// The underlying device cost model.
    #[must_use]
    pub fn cost_model(&self) -> &DeviceCostModel {
        &self.cost_model
    }

    /// Describes the work of executing `nodes` as one fused kernel.
    ///
    /// Malformed blocks are costed conservatively, never panicked on — a
    /// long-lived serving process must survive a planner probing a bad
    /// candidate. Concretely: an empty block is zero work, and a node
    /// without outputs (impossible through [`Graph::add_op`], which always
    /// materializes the inferred output values, but representable in a
    /// hand-built block) contributes its FLOPs and boundary reads but is
    /// never classified as a compute anchor from a fabricated shape.
    #[must_use]
    pub fn block_work(&self, graph: &Graph, nodes: &[NodeId]) -> BlockWork {
        if nodes.is_empty() {
            // An empty probe does no work; don't fabricate a 1-element
            // output for it below.
            return BlockWork::default();
        }
        let set: BTreeSet<NodeId> = nodes.iter().copied().collect();
        let mut work = BlockWork::default();
        let mut counted = BTreeSet::new();
        // Widest member step, by first-output element count. The engine
        // executes a fused block step by step, parallelizing each step over
        // its *own* output, so the block's achievable parallelism is set by
        // its widest step — not by what escapes. A block whose tail
        // contracts (Conv + epilogue fused through a pool, Gemm behind a
        // wide Flatten) still parallelizes its anchor over the anchor's full
        // output.
        let mut widest_step: u64 = 0;
        for &n in nodes {
            let node = graph.node(n);
            if let Some(&out) = node.outputs.first() {
                widest_step = widest_step.max(graph.value(out).shape.numel() as u64);
            }
            let input_shapes: Vec<Shape> = node
                .inputs
                .iter()
                .map(|&id| graph.value(id).shape.clone())
                .collect();
            let output_shapes: Vec<Shape> = node
                .outputs
                .iter()
                .map(|&id| graph.value(id).shape.clone())
                .collect();
            work.flops += cost::flops(node.op, &node.attrs, &input_shapes, &output_shapes);
            // Invariant: every node built by `Graph::add_op` has at least
            // one output (shape inference creates them). Classify an
            // outputless node as plain element-wise work instead of
            // inventing a scalar output shape for it.
            let Some(output_shape) = output_shapes.first() else {
                continue;
            };
            match node
                .op
                .mapping_type_with_shapes(&input_shapes, output_shape)
            {
                MappingType::ManyToMany => work.has_compute_anchor = true,
                // Only data-movement operators disrupt the anchor's access
                // pattern; broadcasted element-wise operators do not.
                MappingType::Shuffle | MappingType::OneToMany if node.op.is_data_movement() => {
                    work.access_disrupting_ops += 1;
                }
                _ => {}
            }
            for &input in &node.inputs {
                let v = graph.value(input);
                let internal = v.producer.map(|p| set.contains(&p)).unwrap_or(false);
                if !internal && counted.insert(input) {
                    work.boundary_elems += v.shape.numel() as u64;
                }
            }
            for &output in &node.outputs {
                let v = graph.value(output);
                let escapes = graph.outputs().contains(&output)
                    || v.consumers.is_empty()
                    || v.consumers.iter().any(|c| !set.contains(c));
                if escapes && counted.insert(output) {
                    let elems = v.shape.numel() as u64;
                    work.boundary_elems += elems;
                    work.output_elems += elems;
                }
            }
        }
        if work.output_elems == 0 {
            // Internal-only probe: every output is consumed inside the
            // block, so nothing "escaped" above. Real plans never produce
            // such blocks (a block's last value always escapes), but the
            // planner may probe one. Cost it by its last node's output so
            // downstream per-element math never divides by zero; a
            // malformed last node without outputs costs one element.
            work.output_elems = match nodes.last().and_then(|&n| graph.node(n).outputs.first()) {
                Some(&v) => (graph.value(v).shape.numel() as u64).max(1),
                None => 1,
            };
        }
        work.output_elems = work.output_elems.max(widest_step);
        work
    }
}

impl LatencyModel for DeviceLatencyModel {
    fn fused_latency_us(&self, graph: &Graph, nodes: &[NodeId]) -> f64 {
        if nodes.is_empty() {
            return 0.0;
        }
        self.cost_model
            .kernel_latency_us(&self.block_work(graph, nodes))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnnf_graph::Graph;
    use dnnf_ops::{Attrs, OpKind};

    fn chain() -> Graph {
        let mut g = Graph::new("chain");
        let mut v = g.add_input("x", Shape::new(vec![1, 16, 32, 32]));
        for i in 0..4 {
            v = g
                .add_op(OpKind::Relu, Attrs::new(), &[v], format!("r{i}"))
                .unwrap()[0];
        }
        g.mark_output(v);
        g
    }

    #[test]
    fn fused_chain_is_faster_than_unfused_on_every_device() {
        let g = chain();
        let nodes: Vec<NodeId> = g.nodes().map(|n| n.id).collect();
        for spec in [
            DeviceSpec::snapdragon_865_cpu(),
            DeviceSpec::snapdragon_865_gpu(),
            DeviceSpec::kirin_980_cpu(),
        ] {
            let model = DeviceLatencyModel::new(spec);
            assert!(model.fused_latency_us(&g, &nodes) < model.unfused_latency_us(&g, &nodes));
        }
    }

    #[test]
    fn block_work_counts_boundary_traffic_once() {
        let g = chain();
        let nodes: Vec<NodeId> = g.nodes().map(|n| n.id).collect();
        let model = DeviceLatencyModel::new(DeviceSpec::snapdragon_865_cpu());
        let work = model.block_work(&g, &nodes);
        // One read of the input plus one write of the output.
        assert_eq!(work.boundary_elems, 2 * 16 * 32 * 32);
        assert_eq!(work.output_elems, 16 * 32 * 32);
        assert!(!work.has_compute_anchor);
    }

    #[test]
    fn conv_blocks_are_marked_as_anchored() {
        let mut g = Graph::new("conv");
        let x = g.add_input("x", Shape::new(vec![1, 4, 8, 8]));
        let w = g.add_weight("w", Shape::new(vec![4, 4, 3, 3]));
        let c = g
            .add_op(
                OpKind::Conv,
                Attrs::new().with_ints("pads", vec![1, 1, 1, 1]),
                &[x, w],
                "conv",
            )
            .unwrap()[0];
        g.mark_output(c);
        let model = DeviceLatencyModel::new(DeviceSpec::snapdragon_865_cpu());
        let nodes: Vec<NodeId> = g.nodes().map(|n| n.id).collect();
        let work = model.block_work(&g, &nodes);
        assert!(work.has_compute_anchor);
        assert!(work.flops > 0);
    }

    #[test]
    fn empty_block_has_zero_latency() {
        let g = chain();
        let model = DeviceLatencyModel::new(DeviceSpec::snapdragon_865_cpu());
        assert_eq!(model.fused_latency_us(&g, &[]), 0.0);
        // And zero work — no fabricated output elements.
        assert_eq!(model.block_work(&g, &[]), BlockWork::default());
    }

    #[test]
    fn single_interior_node_probe_is_costed_without_panicking() {
        // A probe block of one mid-chain node: its input comes from outside
        // the block and its output escapes to the rest of the chain. The
        // model must cost it like any block, with non-zero output elements.
        let g = chain();
        let model = DeviceLatencyModel::new(DeviceSpec::snapdragon_865_cpu());
        let mid = g.nodes().nth(2).unwrap().id;
        let work = model.block_work(&g, &[mid]);
        assert_eq!(work.output_elems, 16 * 32 * 32);
        assert_eq!(work.boundary_elems, 2 * 16 * 32 * 32);
        assert!(model.fused_latency_us(&g, &[mid]) > 0.0);
    }
}
