//! Wall-clock regression harness for the fused-block execution engine.
//!
//! Times three configurations per model and writes the medians to
//! `BENCH_exec.json`, so future PRs can track the execution-engine
//! trajectory the same way the `table*`/`fig*` binaries track the paper's
//! counter metrics:
//!
//! * `unfused_ms` — the unfused baseline: every operator through its
//!   reference kernel via the interpreter (`Executor::run_unfused`). This
//!   is the paper's `OurB` role and the ISSUE's "unfused" side.
//! * `engine_unfused_ms` — the *same singleton plan* through the compiled
//!   engine, isolating how much of the win comes from the optimized anchor
//!   kernels alone.
//! * `fused_ms` — the DNNFusion plan through the compiled engine; the gap
//!   to `engine_unfused_ms` is the fusion-only benefit (fewer launches, no
//!   intermediate materialization).
//!
//! Run with `cargo run --release -p dnnf-bench --bin bench_exec`.

use std::collections::HashMap;
use std::time::Instant;

use dnnf_core::{compile_plan, Compiler, CompilerOptions, Ecg, FusionPlan};
use dnnf_graph::Graph;
use dnnf_models::{ModelKind, ModelScale};
use dnnf_runtime::Executor;
use dnnf_simdev::DeviceSpec;
use dnnf_tensor::Tensor;

/// Runs per configuration; the median is reported.
const RUNS: usize = 7;

fn inputs_for(graph: &Graph) -> HashMap<String, Tensor> {
    graph
        .inputs()
        .iter()
        .map(|&id| {
            let v = graph.value(id);
            let tensor = if v.name.contains("token") {
                Tensor::zeros(v.shape.clone())
            } else {
                Tensor::random(v.shape.clone(), 7)
            };
            (v.name.clone(), tensor)
        })
        .collect()
}

fn median_ms(mut samples: Vec<f64>) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    samples[samples.len() / 2]
}

fn time_ms(mut run: impl FnMut()) -> Vec<f64> {
    (0..RUNS)
        .map(|_| {
            let t = Instant::now();
            run();
            t.elapsed().as_secs_f64() * 1e3
        })
        .collect()
}

struct Row {
    model: &'static str,
    unfused_ms: f64,
    engine_unfused_ms: f64,
    fused_ms: f64,
    kernel_launches_unfused: u64,
    kernel_launches_fused: u64,
}

impl Row {
    /// Fused engine vs the unfused reference interpreter (the ISSUE gate).
    fn speedup(&self) -> f64 {
        self.unfused_ms / self.fused_ms
    }

    /// Fused plan vs the singleton plan on the same engine: fusion only.
    fn fusion_only_speedup(&self) -> f64 {
        self.engine_unfused_ms / self.fused_ms
    }
}

fn main() {
    let device = DeviceSpec::snapdragon_865_cpu();
    let executor = Executor::new(device).without_cache_simulation();
    let mut rows = Vec::new();

    for kind in [ModelKind::Vgg16, ModelKind::TinyBert, ModelKind::C3d] {
        let graph = kind.build(ModelScale::tiny()).expect("model builds");
        let inputs = inputs_for(&graph);
        let mut compiler = Compiler::new(CompilerOptions::default());
        let compiled = compiler.compile(&graph).expect("model compiles");

        let ecg = Ecg::new(graph.clone());
        let singletons = FusionPlan::singletons(&ecg);
        // Pre-compile the singleton engine so this configuration, like the
        // fused one, times dispatch only — not per-run plan compilation.
        let singleton_engine = compile_plan(&graph, &singletons);

        let unfused_report = executor.run_unfused(&graph, &inputs).expect("unfused runs");
        let fused_report = executor.run_compiled(&compiled, &inputs).expect("fused runs");

        let unfused_ms = median_ms(time_ms(|| {
            executor.run_unfused(&graph, &inputs).expect("unfused runs");
        }));
        let engine_unfused_ms = median_ms(time_ms(|| {
            executor
                .run_plan_with_engine(&graph, &singletons, &singleton_engine, &inputs)
                .expect("engine singleton runs");
        }));
        let fused_ms = median_ms(time_ms(|| {
            executor.run_compiled(&compiled, &inputs).expect("fused runs");
        }));

        rows.push(Row {
            model: kind.name(),
            unfused_ms,
            engine_unfused_ms,
            fused_ms,
            kernel_launches_unfused: unfused_report.counters.kernel_launches,
            kernel_launches_fused: fused_report.counters.kernel_launches,
        });
    }

    println!("Execution wall-clock, median of {RUNS} runs");
    println!(
        "{:<16} {:>12} {:>15} {:>10} {:>9} {:>12} {:>10} {:>10}",
        "model", "unfused ms", "engine-unf ms", "fused ms", "speedup", "fusion-only", "launches_u", "launches_f"
    );
    for row in &rows {
        println!(
            "{:<16} {:>12.3} {:>15.3} {:>10.3} {:>8.1}x {:>11.2}x {:>10} {:>10}",
            row.model,
            row.unfused_ms,
            row.engine_unfused_ms,
            row.fused_ms,
            row.speedup(),
            row.fusion_only_speedup(),
            row.kernel_launches_unfused,
            row.kernel_launches_fused
        );
    }

    let mut json = String::from("{\n");
    json.push_str("  \"schema\": \"dnnf-bench-exec/v1\",\n");
    json.push_str(&format!("  \"runs_per_config\": {RUNS},\n"));
    json.push_str("  \"scale\": \"tiny\",\n");
    json.push_str("  \"models\": [\n");
    for (i, row) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"model\": \"{}\", \"unfused_ms\": {:.3}, \"engine_unfused_ms\": {:.3}, \
             \"fused_ms\": {:.3}, \"speedup\": {:.2}, \"fusion_only_speedup\": {:.2}, \
             \"kernel_launches_unfused\": {}, \"kernel_launches_fused\": {}}}{}\n",
            row.model,
            row.unfused_ms,
            row.engine_unfused_ms,
            row.fused_ms,
            row.speedup(),
            row.fusion_only_speedup(),
            row.kernel_launches_unfused,
            row.kernel_launches_fused,
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write("BENCH_exec.json", &json).expect("write BENCH_exec.json");
    println!("\nwrote BENCH_exec.json");

    let vgg = &rows[0];
    assert!(
        vgg.speedup() >= 2.0,
        "regression: fused VGG-16 execution is only {:.2}x faster than unfused",
        vgg.speedup()
    );
}
