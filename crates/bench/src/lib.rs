//! Benchmark harness regenerating every table and figure of the DNNFusion
//! paper's evaluation (§5).
//!
//! Each binary under `src/bin/` prints one table or figure; the shared
//! machinery here builds the models, produces fusion plans for every
//! compared configuration (the four framework baselines, the paper's own
//! `OurB`/`OurB+` baselines and DNNFusion), and evaluates them on the
//! simulated devices.
//!
//! Run with `cargo run --release -p dnnf-bench --bin <experiment>`; the
//! Criterion benches under `benches/` additionally measure compilation and
//! execution wall-clock on this machine.

#![warn(missing_docs)]

pub mod fuzz;

use std::fmt;

use dnnf_baselines::{taso_optimize, BaselineFramework, PatternFuser};
use dnnf_core::{CompilationStats, Compiler, CompilerOptions, Ecg, FusionPlan};
use dnnf_graph::Graph;
use dnnf_models::{ModelFamily, ModelKind, ModelScale};
use dnnf_profiledb::ProfileDatabase;
use dnnf_runtime::{DeviceLatencyModel, Executor, MemoryPlan};
use dnnf_simdev::{Counters, DeviceKind, DeviceSpec};

/// One execution configuration of the paper's comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ExecutionConfig {
    /// MNN-style fixed-pattern fusion.
    Mnn,
    /// TVM-style fixed-pattern fusion.
    Tvm,
    /// TFLite-style fixed-pattern fusion.
    TfLite,
    /// PyTorch-Mobile-style fixed-pattern fusion.
    Pytorch,
    /// The paper's `OurB` baseline: no fusion at all.
    OurBaseline,
    /// The paper's `OurB+` baseline: fixed-pattern (TVM-style) fusion on the
    /// paper's own runtime.
    OurBaselinePlus,
    /// Full DNNFusion.
    DnnFusion,
}

impl ExecutionConfig {
    /// All configurations in the order of Table 6's columns.
    #[must_use]
    pub fn all() -> &'static [ExecutionConfig] {
        use ExecutionConfig::*;
        &[
            Mnn,
            Tvm,
            TfLite,
            Pytorch,
            OurBaseline,
            OurBaselinePlus,
            DnnFusion,
        ]
    }

    /// The framework columns of Table 5 (everything but the OurB variants).
    #[must_use]
    pub fn frameworks() -> &'static [ExecutionConfig] {
        use ExecutionConfig::*;
        &[Mnn, Tvm, TfLite, Pytorch, DnnFusion]
    }

    /// Short display name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            ExecutionConfig::Mnn => "MNN",
            ExecutionConfig::Tvm => "TVM",
            ExecutionConfig::TfLite => "TFLite",
            ExecutionConfig::Pytorch => "PyTorch",
            ExecutionConfig::OurBaseline => "OurB",
            ExecutionConfig::OurBaselinePlus => "OurB+",
            ExecutionConfig::DnnFusion => "DNNF",
        }
    }
}

impl fmt::Display for ExecutionConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Whether a framework supports running a model on a device kind, per the
/// "-" entries of the paper's Tables 5 and 6 (e.g. no competitor runs the
/// R-CNNs at all, only TFLite runs transformers and only on the CPU).
#[must_use]
pub fn supports(config: ExecutionConfig, model: ModelKind, device: DeviceKind) -> bool {
    use ExecutionConfig::*;
    use ModelFamily::*;
    let family = model.family();
    match config {
        OurBaseline | OurBaselinePlus | DnnFusion => true,
        Mnn => match family {
            Cnn2d => true,
            Cnn3d => model == ModelKind::C3d && device == DeviceKind::MobileCpu,
            _ => false,
        },
        Tvm => match family {
            Cnn2d => true,
            Cnn3d => model == ModelKind::C3d && device == DeviceKind::MobileCpu,
            _ => false,
        },
        TfLite => match family {
            Cnn2d => true,
            Transformer => device == DeviceKind::MobileCpu,
            _ => false,
        },
        Pytorch => {
            device == DeviceKind::MobileCpu
                && matches!(family, Cnn2d | Cnn3d)
                && model != ModelKind::UNet
        }
    }
}

/// A planned (graph, fusion plan) pair ready for execution or estimation.
#[derive(Debug, Clone)]
pub struct PlannedModel {
    /// The configuration that produced the plan.
    pub config: ExecutionConfig,
    /// The graph the plan refers to (rewritten for DNNFusion, original
    /// otherwise).
    pub graph: Graph,
    /// The fusion plan.
    pub plan: FusionPlan,
    /// Full compilation statistics (DNNFusion only).
    pub compilation: Option<CompilationStats>,
}

impl PlannedModel {
    /// Fused layer count of the plan.
    #[must_use]
    pub fn fused_layers(&self) -> usize {
        self.plan.fused_layer_count()
    }

    /// Post-fusion intermediate-result bytes.
    #[must_use]
    pub fn fused_irs_bytes(&self) -> u64 {
        self.plan.fused_irs_bytes(&self.graph)
    }
}

/// Produces the fusion plan a configuration would use for a graph.
///
/// # Panics
///
/// Panics if the graph is invalid (model builders guarantee validity).
#[must_use]
pub fn plan_model(config: ExecutionConfig, graph: &Graph, device: &DeviceSpec) -> PlannedModel {
    match config {
        ExecutionConfig::OurBaseline => {
            let ecg = Ecg::new(graph.clone());
            let plan = FusionPlan::singletons(&ecg);
            PlannedModel {
                config,
                graph: graph.clone(),
                plan,
                compilation: None,
            }
        }
        ExecutionConfig::Mnn
        | ExecutionConfig::Tvm
        | ExecutionConfig::TfLite
        | ExecutionConfig::Pytorch
        | ExecutionConfig::OurBaselinePlus => {
            let fuser = match config {
                ExecutionConfig::Mnn => PatternFuser::for_framework(BaselineFramework::Mnn),
                ExecutionConfig::TfLite => PatternFuser::for_framework(BaselineFramework::TfLite),
                ExecutionConfig::Pytorch => {
                    PatternFuser::for_framework(BaselineFramework::PytorchMobile)
                }
                // TVM and the paper's OurB+ share the TVM-style pattern set.
                _ => PatternFuser::for_framework(BaselineFramework::Tvm),
            };
            let ecg = Ecg::new(graph.clone());
            let plan = fuser.plan(&ecg).expect("pattern fusion plan");
            PlannedModel {
                config,
                graph: graph.clone(),
                plan,
                compilation: None,
            }
        }
        ExecutionConfig::DnnFusion => {
            let latency = DeviceLatencyModel::new(device.clone());
            let mut compiler = Compiler::with_latency_model(CompilerOptions::default(), latency);
            let compiled = compiler.compile(graph).expect("DNNFusion compilation");
            PlannedModel {
                config,
                graph: compiled.ecg.graph().clone(),
                plan: compiled.plan.clone(),
                compilation: Some(compiled.stats),
            }
        }
    }
}

/// The result of evaluating one (model, configuration, device) cell.
#[derive(Debug, Clone)]
pub struct EvalResult {
    /// Fused layer count.
    pub fused_layers: usize,
    /// Post-fusion intermediate-result bytes.
    pub fused_irs_bytes: u64,
    /// Simulated counters (latency, traffic, cache, utilization).
    pub counters: Counters,
    /// Memory plan (peak memory, boundary traffic).
    pub memory: MemoryPlan,
    /// Compilation statistics (DNNFusion only).
    pub compilation: Option<CompilationStats>,
}

/// Evaluates one model under one configuration on one device, using the
/// estimation path (no reference-kernel execution). Returns `None` when the
/// framework does not support the model/device combination.
#[must_use]
pub fn evaluate(
    kind: ModelKind,
    scale: ModelScale,
    config: ExecutionConfig,
    device: &DeviceSpec,
) -> Option<EvalResult> {
    if !supports(config, kind, device.kind) {
        return None;
    }
    let graph = kind.build(scale).expect("model builds");
    Some(evaluate_graph(&graph, config, device))
}

/// Evaluates an already-built graph under one configuration on one device.
#[must_use]
pub fn evaluate_graph(graph: &Graph, config: ExecutionConfig, device: &DeviceSpec) -> EvalResult {
    let planned = plan_model(config, graph, device);
    let executor = Executor::new(device.clone());
    let (counters, memory) = executor.estimate_plan(&planned.graph, &planned.plan);
    EvalResult {
        fused_layers: planned.fused_layers(),
        fused_irs_bytes: planned.fused_irs_bytes(),
        counters,
        memory,
        compilation: planned.compilation,
    }
}

/// Evaluates the Figure 6 TASO comparison for one model: the TASO-optimized
/// graph executed with TFLite-style fusion vs the full DNNFusion pipeline.
/// Returns the speedup of DNNFusion over TASO+TFLite.
#[must_use]
pub fn taso_speedup(kind: ModelKind, scale: ModelScale, device: &DeviceSpec) -> f64 {
    let graph = kind.build(scale).expect("model builds");
    let (taso_graph, _) = taso_optimize(&graph);
    let taso_result = evaluate_graph(&taso_graph, ExecutionConfig::TfLite, device);
    let dnnf_result = evaluate_graph(&graph, ExecutionConfig::DnnFusion, device);
    taso_result.counters.latency_us / dnnf_result.counters.latency_us
}

/// Ablation configurations of Figure 7 (speedups are reported over `OurB`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AblationConfig {
    /// Graph rewriting only.
    RewritingOnly,
    /// Graph rewriting + fusion.
    RewritingAndFusion,
    /// Graph rewriting + fusion + other fusion-related optimizations.
    Full,
    /// Fusion + other optimizations, but no graph rewriting.
    FusionWithoutRewriting,
}

impl AblationConfig {
    /// All ablation configurations, in Figure 7's bar order.
    #[must_use]
    pub fn all() -> &'static [AblationConfig] {
        use AblationConfig::*;
        &[
            RewritingOnly,
            RewritingAndFusion,
            Full,
            FusionWithoutRewriting,
        ]
    }

    /// Display label used in Figure 7.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            AblationConfig::RewritingOnly => "GR",
            AblationConfig::RewritingAndFusion => "GR + Fuse",
            AblationConfig::Full => "GR + Fuse + Other",
            AblationConfig::FusionWithoutRewriting => "Fuse + Other",
        }
    }

    /// The compiler options implementing this ablation point.
    #[must_use]
    pub fn options(self) -> CompilerOptions {
        match self {
            AblationConfig::RewritingOnly => CompilerOptions::rewriting_only(),
            AblationConfig::RewritingAndFusion => CompilerOptions::rewriting_and_fusion(),
            AblationConfig::Full => CompilerOptions::default(),
            AblationConfig::FusionWithoutRewriting => CompilerOptions::without_rewriting(),
        }
    }
}

/// Latency of a model compiled with specific compiler options, on a device.
#[must_use]
pub fn ablation_latency(graph: &Graph, ablation: AblationConfig, device: &DeviceSpec) -> f64 {
    let latency = DeviceLatencyModel::new(device.clone());
    let mut compiler = Compiler::with_latency_model(ablation.options(), latency);
    let compiled = compiler.compile(graph).expect("ablation compilation");
    let executor = Executor::new(device.clone()).without_cache_simulation();
    let (counters, _) = executor.estimate_plan(compiled.ecg.graph(), &compiled.plan);
    counters.latency_us
}

/// Compiles a model twice — without and with a pre-computed profiling
/// database — and reports `(misses_cold, misses_warm, stats_warm)` for the
/// Figure 9b compilation-time experiment.
#[must_use]
pub fn compilation_with_database(
    graph: &Graph,
    device: &DeviceSpec,
) -> (u64, u64, CompilationStats) {
    let latency = DeviceLatencyModel::new(device.clone());
    let mut cold = Compiler::with_latency_model(CompilerOptions::default(), latency.clone());
    let cold_stats = cold.compile(graph).expect("cold compilation").stats;
    let database: ProfileDatabase = cold.into_database();
    let mut warm =
        Compiler::with_latency_model(CompilerOptions::default(), latency).with_database(database);
    let warm_stats = warm.compile(graph).expect("warm compilation").stats;
    (
        cold_stats.profile_db_misses,
        warm_stats.profile_db_misses,
        warm_stats,
    )
}

/// Simple fixed-width table printer used by the experiment binaries.
#[must_use]
pub fn format_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        cells
            .iter()
            .zip(widths)
            .map(|(c, w)| format!("{c:>w$}", w = w))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let header_cells: Vec<String> = headers.iter().map(|h| (*h).to_string()).collect();
    out.push_str(&fmt_row(&header_cells, &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * widths.len()));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

/// Formats an optional measurement, printing `-` for unsupported cells just
/// like the paper's tables.
#[must_use]
pub fn cell(value: Option<f64>, precision: usize) -> String {
    match value {
        Some(v) => format!("{v:.precision$}"),
        None => "-".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn support_matrix_matches_the_papers_dashes() {
        // No competitor supports the R-CNNs.
        for &cfg in ExecutionConfig::frameworks() {
            if cfg == ExecutionConfig::DnnFusion {
                continue;
            }
            assert!(!supports(cfg, ModelKind::FasterRcnn, DeviceKind::MobileCpu));
        }
        // Transformers: TFLite CPU only.
        assert!(supports(
            ExecutionConfig::TfLite,
            ModelKind::Gpt2,
            DeviceKind::MobileCpu
        ));
        assert!(!supports(
            ExecutionConfig::TfLite,
            ModelKind::Gpt2,
            DeviceKind::MobileGpu
        ));
        assert!(!supports(
            ExecutionConfig::Tvm,
            ModelKind::Gpt2,
            DeviceKind::MobileCpu
        ));
        // PyTorch has no mobile-GPU support in the paper's runs.
        assert!(!supports(
            ExecutionConfig::Pytorch,
            ModelKind::Vgg16,
            DeviceKind::MobileGpu
        ));
        // DNNFusion supports everything.
        for &m in ModelKind::all() {
            assert!(supports(
                ExecutionConfig::DnnFusion,
                m,
                DeviceKind::MobileGpu
            ));
        }
    }

    #[test]
    fn dnnfusion_wins_fusion_rate_and_latency_on_a_small_model() {
        let device = DeviceSpec::snapdragon_865_cpu();
        let scale = ModelScale::tiny();
        let dnnf = evaluate(ModelKind::Vgg16, scale, ExecutionConfig::DnnFusion, &device).unwrap();
        let ourb = evaluate(
            ModelKind::Vgg16,
            scale,
            ExecutionConfig::OurBaseline,
            &device,
        )
        .unwrap();
        let tvm = evaluate(ModelKind::Vgg16, scale, ExecutionConfig::Tvm, &device).unwrap();
        assert!(dnnf.fused_layers < tvm.fused_layers);
        assert!(tvm.fused_layers < ourb.fused_layers);
        assert!(dnnf.counters.latency_us < ourb.counters.latency_us);
        assert!(dnnf.counters.latency_us <= tvm.counters.latency_us);
        assert!(dnnf.fused_irs_bytes < ourb.fused_irs_bytes);
    }

    #[test]
    fn ablation_configs_cover_figure7_bars() {
        assert_eq!(AblationConfig::all().len(), 4);
        let graph = ModelKind::EfficientNetB0.build(ModelScale::tiny()).unwrap();
        let device = DeviceSpec::snapdragon_865_cpu();
        let full = ablation_latency(&graph, AblationConfig::Full, &device);
        let gr_only = ablation_latency(&graph, AblationConfig::RewritingOnly, &device);
        assert!(
            full <= gr_only,
            "full pipeline must not be slower than rewriting alone"
        );
    }

    #[test]
    fn table_formatting_pads_columns() {
        let text = format_table(
            &["Model", "ms"],
            &[
                vec!["VGG-16".into(), "171".into()],
                vec!["GPT-2".into(), "394".into()],
            ],
        );
        assert!(text.contains("VGG-16"));
        assert!(text.lines().count() >= 4);
        assert_eq!(cell(None, 1), "-");
        assert_eq!(cell(Some(1.25), 1), "1.2");
    }

    #[test]
    fn taso_comparison_reports_a_speedup_greater_than_one() {
        let device = DeviceSpec::snapdragon_865_cpu();
        let speedup = taso_speedup(ModelKind::TinyBert, ModelScale::tiny(), &device);
        assert!(
            speedup > 1.0,
            "DNNFusion should outperform TASO+TFLite, got {speedup}"
        );
    }

    #[test]
    fn profile_database_reduces_profiling_misses() {
        let graph = ModelKind::MobileNetV1Ssd.build(ModelScale::tiny()).unwrap();
        let device = DeviceSpec::snapdragon_865_cpu();
        let (cold, warm, stats) = compilation_with_database(&graph, &device);
        assert!(warm <= cold);
        assert!(stats.profile_db_hits > 0 || cold == 0);
    }
}
