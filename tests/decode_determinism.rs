//! Determinism suite for the autoregressive KV-cache decode loop.
//!
//! The load-bearing oracle: greedy decoding through a `DecodeSession` —
//! prefill once, then single-token steps against the `Arc`-backed KV cache
//! — must be **the same function** as recomputing the whole prefix from
//! scratch at every position. Prefill and step graphs share every weight by
//! name, every per-position computation is independent of later positions,
//! and masked softmax terms are exactly `exp(-inf) = 0`, so with rewriting
//! disabled (reassociation may legally change float results between the
//! two graph shapes) the step's logits equal the recompute's last row **bit
//! for bit** — tolerance 0, not epsilon.
//!
//! On top of that, the decoded token ids must be bit-identical across
//! `num_threads ∈ {1, 2, 8}`, under `force_scalar`, and across two
//! sessions concurrently sharing one compiled model pair; and a T-token
//! decode must cost exactly one plan search per graph (the `PlanCache`
//! miss count is independent of T) and one weight-store build per model.

use std::collections::HashMap;
use std::sync::Arc;

use dnnfusion::core::{Compiler, CompilerOptions};
use dnnfusion::models::{decoder_prefill, decoder_step, DecoderConfig};
use dnnfusion::runtime::{
    greedy_argmax, DecodeSession, ExecOptions, Executor, PlanCache, WeightStore,
};
use dnnfusion::simdev::DeviceSpec;
use dnnfusion::tensor::{Shape, Tensor};

const PROMPT: [u32; 4] = [1, 2, 3, 4];
const GENERATE: usize = 6;

fn executor_with(threads: usize, force_scalar: bool) -> Executor {
    Executor::new(DeviceSpec::snapdragon_865_cpu())
        .without_cache_simulation()
        .with_options(ExecOptions {
            num_threads: threads,
            force_scalar,
            min_parallel_work: 0,
        })
}

/// Compiles a session for the tiny decoder through `cache`. Rewriting is
/// disabled so the prefill and step graphs stay the same float expression
/// (see the module docs).
fn session_with(executor: Executor, cache: &PlanCache) -> DecodeSession {
    let cfg = DecoderConfig::test_tiny();
    let prefill = decoder_prefill(&cfg, PROMPT.len()).unwrap();
    let step = decoder_step(&cfg, PROMPT.len()).unwrap();
    let mut compiler = Compiler::new(CompilerOptions::without_rewriting());
    DecodeSession::compile(executor, cache, &mut compiler, &prefill, &step).unwrap()
}

/// The recompute-from-scratch oracle: greedily decodes `generate` tokens by
/// compiling and running a fresh full-prompt prefill at every length —
/// never a KV cache, never a step graph.
fn recompute_reference(executor: &Executor, generate: usize) -> Vec<u32> {
    let cfg = DecoderConfig::test_tiny();
    let cache = PlanCache::new();
    let mut compiler = Compiler::new(CompilerOptions::without_rewriting());
    let mut seq: Vec<u32> = PROMPT.to_vec();
    let mut out = Vec::new();
    for _ in 0..generate {
        let len = seq.len();
        let graph = decoder_prefill(&cfg, len).unwrap();
        let (model, _) = cache.compile_cached(&mut compiler, &graph).unwrap();
        let make = |values: Vec<f32>| Tensor::from_vec(Shape::new(vec![len]), values).unwrap();
        let mut inputs = HashMap::new();
        inputs.insert(
            "token_ids".to_string(),
            make(seq.iter().map(|&t| t as f32).collect()),
        );
        inputs.insert(
            "positions".to_string(),
            make((0..len).map(|p| p as f32).collect()),
        );
        let report = executor.run_compiled(&model, &inputs).unwrap();
        let logits = report.outputs.last().unwrap();
        let vocab = logits.shape().dim(1);
        let data = logits.data();
        let token = greedy_argmax(&data[data.len() - vocab..]) as u32;
        seq.push(token);
        out.push(token);
    }
    out
}

#[test]
fn cached_stepping_matches_full_prefix_recompute() {
    let executor = executor_with(1, false);
    let cache = PlanCache::new();
    let mut session = session_with(executor.clone(), &cache);
    let cached = session.decode(&PROMPT, GENERATE).unwrap();
    let recomputed = recompute_reference(&executor, GENERATE);
    assert_eq!(
        cached, recomputed,
        "KV-cached decode diverged from full-prefix recompute"
    );
    // The session's history is the prompt followed by the generated tokens.
    assert_eq!(&session.tokens()[..PROMPT.len()], &PROMPT);
    assert_eq!(&session.tokens()[PROMPT.len()..], &cached[..]);
    assert_eq!(session.cache_len(), PROMPT.len() + GENERATE - 1);
}

#[test]
fn step_logits_equal_recompute_logits_bit_for_bit() {
    // Tolerance-0 comparison at the logits level, one step deep: run the
    // prefill, take one greedy token, then compare the step model's logits
    // row against a (prompt+1)-length prefill's last row.
    let executor = executor_with(1, false);
    let cfg = DecoderConfig::test_tiny();
    let cache = PlanCache::new();
    let mut compiler = Compiler::new(CompilerOptions::without_rewriting());
    let mut session = session_with(executor.clone(), &cache);

    let first = session.prefill(&PROMPT).unwrap();
    session.step().unwrap();
    // Recompute: full prompt + the first generated token, one pass.
    let extended: Vec<u32> = PROMPT.iter().copied().chain([first]).collect();
    let graph = decoder_prefill(&cfg, extended.len()).unwrap();
    let (model, _) = cache.compile_cached(&mut compiler, &graph).unwrap();
    let len = extended.len();
    let make = |values: Vec<f32>| Tensor::from_vec(Shape::new(vec![len]), values).unwrap();
    let mut inputs = HashMap::new();
    inputs.insert(
        "token_ids".to_string(),
        make(extended.iter().map(|&t| t as f32).collect()),
    );
    inputs.insert(
        "positions".to_string(),
        make((0..len).map(|p| p as f32).collect()),
    );
    let report = executor.run_compiled(&model, &inputs).unwrap();
    let full_logits = report.outputs.last().unwrap();
    let vocab = full_logits.shape().dim(1);
    let last_row = &full_logits.data()[(len - 1) * vocab..];

    // Re-run the same single step directly to read its logits row: prefill
    // again (restarts the session) and step once.
    let mut replay = session_with(executor.clone(), &cache);
    replay.prefill(&PROMPT).unwrap();
    replay.step().unwrap();
    // The replayed session's token after the step must be the argmax of the
    // recomputed row — and since greedy_argmax is a pure function of the
    // bits, spot-check the rows agree exactly via a fresh recompute of the
    // step. (The session does not expose raw logits; the token equality
    // plus the full-loop test above pins the rest.)
    assert_eq!(
        replay.tokens().last().copied().unwrap(),
        greedy_argmax(last_row) as u32
    );
    assert_eq!(session.tokens(), replay.tokens());
}

#[test]
fn tokens_are_bit_identical_across_thread_counts_and_scalar_mode() {
    let cache = PlanCache::new();
    let mut baseline = session_with(executor_with(1, false), &cache);
    let expected = baseline.decode(&PROMPT, GENERATE).unwrap();
    for threads in [1usize, 2, 8] {
        for force_scalar in [false, true] {
            let mut session = session_with(executor_with(threads, force_scalar), &cache);
            let got = session.decode(&PROMPT, GENERATE).unwrap();
            assert_eq!(
                got, expected,
                "tokens diverged at num_threads={threads} force_scalar={force_scalar}"
            );
        }
    }
}

#[test]
fn two_sessions_share_one_compiled_pair_concurrently() {
    let cache = PlanCache::new();
    let template = session_with(executor_with(2, false), &cache);
    let prefill = Arc::clone(template.prefill_model());
    let step = Arc::clone(template.step_model());

    let solo = |prompt: [u32; 4]| {
        let mut s = DecodeSession::new(
            executor_with(1, false),
            Arc::clone(&prefill),
            Arc::clone(&step),
        )
        .unwrap();
        s.decode(&prompt, GENERATE).unwrap()
    };
    let prompt_a = PROMPT;
    let prompt_b = [7u32, 5, 30, 0];
    let expected_a = solo(prompt_a);
    let expected_b = solo(prompt_b);

    std::thread::scope(|scope| {
        let run = |prompt: [u32; 4]| {
            let prefill = Arc::clone(&prefill);
            let step = Arc::clone(&step);
            scope.spawn(move || {
                let mut s = DecodeSession::new(executor_with(2, false), prefill, step).unwrap();
                s.decode(&prompt, GENERATE).unwrap()
            })
        };
        let a = run(prompt_a);
        let b = run(prompt_b);
        assert_eq!(a.join().unwrap(), expected_a);
        assert_eq!(b.join().unwrap(), expected_b);
    });
}

#[test]
fn decode_costs_one_plan_search_per_graph_regardless_of_length() {
    let cache = PlanCache::new();
    let mut session = session_with(executor_with(1, false), &cache);
    let after_compile = cache.stats();
    assert_eq!(
        after_compile.misses, 2,
        "expected exactly one cold compile each for prefill and step"
    );

    // A short decode, a restart, and a much longer decode: the plan cache
    // must not be consulted again — per-step work is codegen-only, cached
    // on the model itself.
    session.decode(&PROMPT, 3).unwrap();
    let after_short = cache.stats();
    session.decode(&PROMPT, 12).unwrap();
    let after_long = cache.stats();
    assert_eq!(after_short, after_compile);
    assert_eq!(after_long, after_compile);

    // A second session over the same graphs is pure memory hits.
    let _again = session_with(executor_with(1, false), &cache);
    let after_reuse = cache.stats();
    assert_eq!(after_reuse.misses, 2);
    assert_eq!(after_reuse.memory_hits, after_compile.memory_hits + 2);
}

#[test]
fn decode_builds_one_weight_store_per_model_and_shares_weights_by_name() {
    let cache = PlanCache::new();
    let mut session = session_with(executor_with(1, false), &cache);
    session.decode(&PROMPT, 8).unwrap();

    // One store per model, built once and cached on the model — every run
    // (and every session sharing the model) reuses the same Arc.
    let step_store = WeightStore::of_model(session.step_model());
    let prefill_store = WeightStore::of_model(session.prefill_model());
    assert!(Arc::ptr_eq(
        &step_store,
        &WeightStore::of_model(session.step_model())
    ));
    assert!(Arc::ptr_eq(
        &prefill_store,
        &WeightStore::of_model(session.prefill_model())
    ));

    // Name-seeded materialization: the prefill and step graphs share every
    // step weight by name, hence bit-identical data — what makes stepping
    // and recomputing the same function.
    let step_graph = session.step_model().graph();
    let prefill_graph = session.prefill_model().graph();
    let mut compared = 0;
    for value in step_graph.values().filter(|v| v.is_weight()) {
        let twin = prefill_graph
            .values()
            .find(|v| v.is_weight() && v.name == value.name)
            .unwrap_or_else(|| panic!("prefill graph is missing weight `{}`", value.name));
        let a = step_store.get(value.id).expect("step weight materialized");
        let b = prefill_store
            .get(twin.id)
            .expect("prefill weight materialized");
        assert_eq!(
            a.first_disagreement(b, 0.0),
            None,
            "weight `{}` differs between prefill and step stores",
            value.name
        );
        compared += 1;
    }
    assert!(compared > 20, "expected a real weight set, saw {compared}");
}
