//! Minimal, dependency-free shim of the parts of the `proptest` crate API
//! that this workspace uses. The build environment has no registry access,
//! so the workspace vendors this crate and path-depends on it under the name
//! `proptest`.
//!
//! Provided surface:
//!
//! * the [`proptest!`] macro (with optional `#![proptest_config(..)]` line);
//! * [`Strategy`] with `prop_map`, integer-range strategies,
//!   `prop::collection::vec`, and [`any`] for `Arbitrary` types;
//! * [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_assert_ne!`];
//! * [`ProptestConfig::with_cases`];
//! * persisted regression seeds: before the random cases run, seeds listed as
//!   `cc <u64>` lines in `<crate root>/proptest-regressions/<file stem>.txt`
//!   are replayed first, mirroring upstream proptest's failure persistence.
//!
//! Unlike upstream there is no shrinking: a failing case reports the seed
//! that produced it, which can be checked into the regression file verbatim.

#![warn(missing_docs)]

use std::ops::Range;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};

pub mod prelude {
    //! One-stop import mirroring `proptest::prelude`.
    /// Alias of the crate root so `prop::collection::vec(..)` resolves.
    pub use crate as prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary, Just,
        ProptestConfig, Strategy, TestRng,
    };
}

pub mod collection {
    //! Strategies for collections.

    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy generating `Vec`s whose length is drawn from `len` and whose
    /// elements are drawn from `element`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// Generates vectors of values from `element` with length in `len`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn new_value(&self, rng: &mut TestRng) -> Self::Value {
            let n = rng.below_range(&self.len);
            (0..n).map(|_| self.element.new_value(rng)).collect()
        }
    }
}

/// Deterministic generator handed to strategies while a property test runs.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator for one test case from `seed`.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        TestRng {
            state: seed ^ 0x5DEE_CE66_D1CE_CAFE,
        }
    }

    /// Returns the next 64 random bits (SplitMix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw from `[0, n)`; `n` must be non-zero.
    pub fn below(&mut self, n: u64) -> u64 {
        // Modulo bias is negligible for the small ranges used in tests.
        self.next_u64() % n
    }

    fn below_range(&mut self, range: &Range<usize>) -> usize {
        assert!(range.start < range.end, "empty range strategy");
        range.start + self.below((range.end - range.start) as u64) as usize
    }
}

/// A generator of values of one type, the heart of the proptest API.
pub trait Strategy {
    /// The type of values this strategy produces.
    type Value;

    /// Draws one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn new_value(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.new_value(rng))
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Types with a canonical strategy, usable through [`any`].
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct AnyStrategy<T> {
    _marker: std::marker::PhantomData<T>,
}

/// Canonical strategy for `T`, mirroring `proptest::prelude::any`.
#[must_use]
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy {
        _marker: std::marker::PhantomData,
    }
}

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Configuration for one `proptest!` block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per test (after regression seeds).
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases per test.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x1000_0000_01B3);
    }
    h
}

/// Path of the persisted-seed file for a given source file, mirroring
/// upstream's `proptest-regressions/` convention (keyed by file stem since
/// each package's test files have unique stems).
fn regression_path(manifest_dir: &str, source_file: &str) -> PathBuf {
    let stem = Path::new(source_file)
        .file_stem()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_else(|| "unknown".to_owned());
    Path::new(manifest_dir)
        .join("proptest-regressions")
        .join(format!("{stem}.txt"))
}

fn regression_seeds(path: &Path) -> Vec<u64> {
    let Ok(contents) = std::fs::read_to_string(path) else {
        return Vec::new();
    };
    parse_regression_seeds(&contents)
}

fn parse_regression_seeds(contents: &str) -> Vec<u64> {
    contents
        .lines()
        .filter_map(|line| {
            let line = line.trim();
            let rest = line.strip_prefix("cc ")?;
            rest.trim().parse::<u64>().ok()
        })
        .collect()
}

/// Drives one property test: replays persisted regression seeds, then runs
/// `config.cases` deterministic pseudo-random cases. On failure the offending
/// seed and the regression-file line to persist it are printed before the
/// panic is propagated.
///
/// Called by the [`proptest!`] macro; not part of the public proptest API.
pub fn run_test<F: FnMut(&mut TestRng)>(
    config: &ProptestConfig,
    manifest_dir: &str,
    source_file: &str,
    test_name: &str,
    mut body: F,
) {
    let reg_path = regression_path(manifest_dir, source_file);
    let persisted = regression_seeds(&reg_path);
    let base = fnv1a(format!("{source_file}::{test_name}").as_bytes());

    let seeds = persisted.iter().copied().chain(
        (0..config.cases)
            .map(|i| base.wrapping_add(u64::from(i).wrapping_mul(0x9E37_79B9_7F4A_7C15))),
    );

    for (case, seed) in seeds.enumerate() {
        let mut rng = TestRng::new(seed);
        let result = catch_unwind(AssertUnwindSafe(|| body(&mut rng)));
        if let Err(payload) = result {
            eprintln!(
                "proptest: {test_name} failed at case {case} (seed {seed}).\n\
                 proptest: to persist this case, add the line `cc {seed}` to {}",
                reg_path.display()
            );
            std::panic::resume_unwind(payload);
        }
    }
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Declares property tests. Mirrors `proptest::proptest!`: an optional
/// `#![proptest_config(expr)]` line followed by `#[test]` functions whose
/// arguments are drawn from strategies with `name in strategy` syntax.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($config:expr); $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config = $config;
                $crate::run_test(
                    &config,
                    env!("CARGO_MANIFEST_DIR"),
                    file!(),
                    stringify!($name),
                    |rng| {
                        $(let $arg = $crate::Strategy::new_value(&($strat), rng);)*
                        $body
                    },
                );
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn range_strategy_in_bounds() {
        let mut rng = TestRng::new(1);
        for _ in 0..1000 {
            let v = Strategy::new_value(&(3usize..9), &mut rng);
            assert!((3..9).contains(&v));
        }
    }

    #[test]
    fn vec_strategy_len_in_bounds() {
        let mut rng = TestRng::new(2);
        for _ in 0..1000 {
            let v = prop::collection::vec(0u8..5, 2..6).new_value(&mut rng);
            assert!((2..6).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 5));
        }
    }

    #[test]
    fn prop_map_applies() {
        let mut rng = TestRng::new(3);
        let doubled = (1usize..10).prop_map(|x| x * 2);
        for _ in 0..100 {
            let v = doubled.new_value(&mut rng);
            assert!(v % 2 == 0 && (2..20).contains(&v));
        }
    }

    #[test]
    fn regression_file_parsing_skips_comments_and_garbage() {
        let contents = "# Seeds for failure cases proptest has generated.\n\
                        cc 12345\n\
                        not a seed line\n\
                        cc 678\n\
                        cc nonsense\n";
        assert_eq!(super::parse_regression_seeds(contents), vec![12345, 678]);
    }

    #[test]
    fn missing_regression_file_yields_no_seeds() {
        let path = super::regression_path("/nonexistent-dir", "tests/foo.rs");
        assert_eq!(
            path,
            std::path::Path::new("/nonexistent-dir/proptest-regressions/foo.txt")
        );
        assert!(super::regression_seeds(&path).is_empty());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_roundtrip(xs in prop::collection::vec(0u8..10, 0..4), flag in any::<bool>()) {
            prop_assert!(xs.len() < 4);
            prop_assert_eq!(flag as u8 & 1, flag as u8);
        }
    }
}
