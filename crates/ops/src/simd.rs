//! Portable fixed-width SIMD lane bundles for the optimized kernels.
//!
//! The build environment has no registry access and the workspace targets
//! stable Rust, so this module provides the `std::simd` subset the kernels
//! need as plain `[f32; N]` wrappers: every operation is a fixed-trip-count
//! lane loop that LLVM reliably auto-vectorizes at `opt-level >= 2` into
//! SSE/AVX/NEON instructions when the target has them, and compiles to the
//! identical scalar sequence when it does not. [`F32x8`] and [`F32x4`] are
//! the two widths the microkernels use ([`LANES`] elements per bundle for
//! the main loop, a 4-wide pass plus a scalar tail for remainders).
//!
//! # The determinism contract
//!
//! Lanes always map to **independent output elements** — never to partial
//! sums of one reduction. Each lane executes exactly the scalar kernel's
//! operation sequence on its own element (`acc = acc + x * w` is two
//! distinct float ops per lane; nothing here emits a fused multiply-add, a
//! reassociated sum or a masked skip), so results are bit-identical between
//! the SIMD and scalar paths, at every lane width and every thread count.
//! This extends the thread-level output-ownership rule of
//! [`crate::parallel`] down to the instruction level. The engine-wide
//! escape hatch (`ExecOptions::force_scalar` in `dnnf-runtime`) exists so
//! the differential suites can assert that equivalence at tolerance zero,
//! not because the paths are expected to differ.

use std::ops::{Add, Div, Mul};

/// Lane count of the wide bundle ([`F32x8`]) — the unit the microkernels'
/// main loops advance by.
pub const LANES: usize = 8;

/// A bundle of `N` independent `f32` lanes, processed in lockstep.
///
/// Arithmetic is element-wise and unfused; lane `l` of a result depends only
/// on lane `l` of the operands, via the same `f32` operation the scalar
/// kernel performs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct F32Lanes<const N: usize>([f32; N]);

/// Eight-lane `f32` bundle (one AVX register, two NEON/SSE registers).
pub type F32x8 = F32Lanes<8>;
/// Four-lane `f32` bundle (one NEON/SSE register); used for remainders.
pub type F32x4 = F32Lanes<4>;

impl<const N: usize> F32Lanes<N> {
    /// All lanes set to `v`.
    #[inline]
    #[must_use]
    pub fn splat(v: f32) -> Self {
        F32Lanes([v; N])
    }

    /// Loads `N` consecutive elements starting at `slice[0]`.
    ///
    /// # Panics
    ///
    /// Panics when `slice` has fewer than `N` elements.
    #[inline]
    #[must_use]
    pub fn load(slice: &[f32]) -> Self {
        let mut lanes = [0.0f32; N];
        lanes.copy_from_slice(&slice[..N]);
        F32Lanes(lanes)
    }

    /// Loads `N` elements at `data[base + l * stride]` for lane `l` — the
    /// gather form for strided access patterns (`stride == 0` splats
    /// `data[base]`, `stride == 1` is equivalent to [`F32Lanes::load`]).
    ///
    /// # Panics
    ///
    /// Panics when `base + (N - 1) * stride` is out of bounds.
    #[inline]
    #[must_use]
    pub fn gather(data: &[f32], base: usize, stride: usize) -> Self {
        let mut lanes = [0.0f32; N];
        for (l, lane) in lanes.iter_mut().enumerate() {
            *lane = data[base + l * stride];
        }
        F32Lanes(lanes)
    }

    /// Stores the lanes into the first `N` slots of `slice`.
    ///
    /// # Panics
    ///
    /// Panics when `slice` has fewer than `N` elements.
    #[inline]
    pub fn store(self, slice: &mut [f32]) {
        slice[..N].copy_from_slice(&self.0);
    }

    /// The lanes as an array (lane `l` at index `l`).
    #[inline]
    #[must_use]
    pub const fn to_array(self) -> [f32; N] {
        self.0
    }

    /// Builds a bundle from per-lane values (lane `l` from index `l`).
    #[inline]
    #[must_use]
    pub const fn from_array(lanes: [f32; N]) -> Self {
        F32Lanes(lanes)
    }

    /// Applies a scalar function to every lane. The function is invoked
    /// once per lane in lane order — this is the bridge for kernels (e.g.
    /// transcendentals) that have no vector form but still benefit from the
    /// surrounding loads/stores being lane-blocked.
    #[inline]
    #[must_use]
    pub fn map(self, mut f: impl FnMut(f32) -> f32) -> Self {
        let mut lanes = self.0;
        for lane in &mut lanes {
            *lane = f(*lane);
        }
        F32Lanes(lanes)
    }

    /// Lane-wise maximum via [`f32::max`] — exactly the scalar pooling
    /// kernel's per-tap operation (IEEE `maxNum`: a NaN operand yields the
    /// other operand), applied independently per lane.
    #[inline]
    #[must_use]
    pub fn max(self, rhs: Self) -> Self {
        let mut lanes = self.0;
        for (l, lane) in lanes.iter_mut().enumerate() {
            *lane = lane.max(rhs.0[l]);
        }
        F32Lanes(lanes)
    }
}

impl<const N: usize> Add for F32Lanes<N> {
    type Output = Self;

    #[inline]
    fn add(self, rhs: Self) -> Self {
        let mut lanes = self.0;
        for (l, lane) in lanes.iter_mut().enumerate() {
            *lane += rhs.0[l];
        }
        F32Lanes(lanes)
    }
}

impl<const N: usize> Mul for F32Lanes<N> {
    type Output = Self;

    #[inline]
    fn mul(self, rhs: Self) -> Self {
        let mut lanes = self.0;
        for (l, lane) in lanes.iter_mut().enumerate() {
            *lane *= rhs.0[l];
        }
        F32Lanes(lanes)
    }
}

impl<const N: usize> Div for F32Lanes<N> {
    type Output = Self;

    /// Lane-wise IEEE division — one rounding step per lane, identical to
    /// the scalar kernels' `acc / denom` (the averaging pools divide; a
    /// reciprocal-multiply would round differently and break bit-identity).
    #[inline]
    fn div(self, rhs: Self) -> Self {
        let mut lanes = self.0;
        for (l, lane) in lanes.iter_mut().enumerate() {
            *lane /= rhs.0[l];
        }
        F32Lanes(lanes)
    }
}

/// The widest `f32` lane count the compilation target's instruction set can
/// execute as one vector operation (compile-time: this reflects the enabled
/// `target_feature`s, not runtime CPU detection).
///
/// The lane-blocked kernels run everywhere — on narrower targets the 8-lane
/// bundles simply lower to more instructions — but performance gates (the
/// `simd_speedup` floor in `bench_exec`) only arm where this is at least 8,
/// i.e. where the wide path maps onto real vector registers. Build with
/// `RUSTFLAGS="-C target-cpu=native"` to enable the host's full width.
#[must_use]
pub const fn detected_simd_width() -> usize {
    if cfg!(target_feature = "avx512f") {
        16
    } else if cfg!(any(target_feature = "avx2", target_feature = "avx")) {
        8
    } else if cfg!(any(target_feature = "sse2", target_arch = "aarch64")) {
        4
    } else {
        1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splat_load_store_roundtrip() {
        let data: Vec<f32> = (0..12).map(|i| i as f32).collect();
        let v = F32x8::load(&data[2..]);
        assert_eq!(v.to_array(), [2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0]);
        let mut out = [0.0f32; 10];
        v.store(&mut out[1..]);
        assert_eq!(&out[1..9], &data[2..10]);
        assert_eq!(F32x4::splat(1.5).to_array(), [1.5; 4]);
    }

    #[test]
    fn gather_covers_splat_contiguous_and_strided() {
        let data: Vec<f32> = (0..32).map(|i| i as f32).collect();
        assert_eq!(F32x4::gather(&data, 5, 0).to_array(), [5.0; 4]);
        assert_eq!(F32x4::gather(&data, 3, 1).to_array(), [3.0, 4.0, 5.0, 6.0]);
        assert_eq!(
            F32x4::gather(&data, 1, 7).to_array(),
            [1.0, 8.0, 15.0, 22.0]
        );
    }

    #[test]
    fn arithmetic_is_lane_wise_and_bit_identical_to_scalar() {
        let a: Vec<f32> = (0..8).map(|i| 0.1f32 * i as f32 - 0.3).collect();
        let b: Vec<f32> = (0..8).map(|i| 1.0 - 0.07f32 * i as f32).collect();
        let va = F32x8::load(&a);
        let vb = F32x8::load(&b);
        let sum = (va + vb).to_array();
        let prod = (va * vb).to_array();
        for l in 0..8 {
            assert_eq!(sum[l].to_bits(), (a[l] + b[l]).to_bits());
            assert_eq!(prod[l].to_bits(), (a[l] * b[l]).to_bits());
        }
    }

    #[test]
    fn mul_then_add_matches_the_scalar_accumulation_sequence() {
        // The microkernels' accumulation step: acc = acc + x * w, two
        // separate rounding steps per lane — never a fused multiply-add.
        let x = F32x4::load(&[1e-8, 2.5, -3.75, 0.1]);
        let w = F32x4::splat(3.000_000_2);
        let acc = F32x4::splat(1.0);
        let vec = (acc + x * w).to_array();
        for (l, &xv) in [1e-8f32, 2.5, -3.75, 0.1].iter().enumerate() {
            let scalar = 1.0f32 + xv * 3.000_000_2;
            assert_eq!(vec[l].to_bits(), scalar.to_bits());
        }
    }

    #[test]
    fn max_and_div_match_the_scalar_operations_per_lane() {
        let a = F32x4::load(&[1.0, -2.0, f32::NEG_INFINITY, 0.3]);
        let b = F32x4::load(&[0.5, -1.5, 7.0, 0.3]);
        let m = a.max(b).to_array();
        let d = (a / b).to_array();
        for (l, (&av, &bv)) in [1.0f32, -2.0, f32::NEG_INFINITY, 0.3]
            .iter()
            .zip(&[0.5f32, -1.5, 7.0, 0.3])
            .enumerate()
        {
            assert_eq!(m[l].to_bits(), av.max(bv).to_bits());
            assert_eq!(d[l].to_bits(), (av / bv).to_bits());
        }
        // NaN taps follow f32::max (the other operand wins), as in MaxPool.
        let n = F32x4::splat(f32::NAN).max(F32x4::splat(2.0)).to_array();
        assert_eq!(n, [2.0; 4]);
    }

    #[test]
    fn map_applies_in_lane_order() {
        let mut order = Vec::new();
        let v = F32x4::load(&[1.0, 2.0, 3.0, 4.0]).map(|x| {
            order.push(x);
            x * 2.0
        });
        assert_eq!(v.to_array(), [2.0, 4.0, 6.0, 8.0]);
        assert_eq!(order, vec![1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn detected_width_is_a_sane_power_of_two() {
        let w = detected_simd_width();
        assert!(w.is_power_of_two() && w <= 16);
    }
}
