//! Normalization and softmax kernels.

use dnnf_tensor::{Shape, Tensor};

use crate::{Attrs, OpError, OpKind};

/// Inference-form `BatchNormalization`:
/// `y = scale * (x - mean) / sqrt(var + eps) + bias`, per channel (axis 1).
pub fn batch_norm(attrs: &Attrs, inputs: &[&Tensor]) -> Result<Tensor, OpError> {
    let x = inputs[0];
    let scale = inputs[1];
    let bias = inputs[2];
    let mean = inputs[3];
    let var = inputs[4];
    let eps = attrs.float_or("epsilon", 1e-5);
    per_channel_affine(x, |c, v| {
        let s = scale.at_linear(c);
        let b = bias.at_linear(c);
        let m = mean.at_linear(c);
        let va = var.at_linear(c);
        s * (v - m) / (va + eps).sqrt() + b
    })
}

/// `InstanceNormalization`: normalizes over the spatial dimensions of each
/// `(n, c)` slice, then applies per-channel scale and bias.
pub fn instance_norm(attrs: &Attrs, inputs: &[&Tensor]) -> Result<Tensor, OpError> {
    let x = inputs[0];
    let scale = inputs[1];
    let bias = inputs[2];
    let eps = attrs.float_or("epsilon", 1e-5);
    if x.shape().rank() < 3 {
        return Err(OpError::InvalidShape {
            op: OpKind::InstanceNormalization,
            reason: "expected at least rank-3 input".into(),
        });
    }
    let batch = x.shape().dim(0);
    let channels = x.shape().dim(1);
    let spatial: usize = x.shape().dims()[2..].iter().product();
    let mut out = Tensor::zeros(x.shape().clone());
    for n in 0..batch {
        for c in 0..channels {
            let base = (n * channels + c) * spatial;
            let mean: f32 =
                (0..spatial).map(|s| x.at_linear(base + s)).sum::<f32>() / spatial as f32;
            let var: f32 = (0..spatial)
                .map(|s| (x.at_linear(base + s) - mean).powi(2))
                .sum::<f32>()
                / spatial as f32;
            let denom = (var + eps).sqrt();
            for s in 0..spatial {
                out.data_mut()[base + s] =
                    scale.at_linear(c) * (x.at_linear(base + s) - mean) / denom + bias.at_linear(c);
            }
        }
    }
    Ok(out)
}

/// `LayerNormalization` over the last axis (the transformer-standard form):
/// `y = scale * (x - mean) / sqrt(var + eps) + bias`.
pub fn layer_norm(attrs: &Attrs, inputs: &[&Tensor]) -> Result<Tensor, OpError> {
    let x = inputs[0];
    let scale = inputs[1];
    let bias = inputs[2];
    let eps = attrs.float_or("epsilon", 1e-5);
    let rank = x.shape().rank();
    if rank == 0 {
        return Err(OpError::InvalidShape {
            op: OpKind::LayerNormalization,
            reason: "expected at least rank-1 input".into(),
        });
    }
    let inner = x.shape().dim(rank - 1);
    let outer = x.numel() / inner;
    let mut out = Tensor::zeros(x.shape().clone());
    for o in 0..outer {
        let base = o * inner;
        let mean: f32 = (0..inner).map(|i| x.at_linear(base + i)).sum::<f32>() / inner as f32;
        let var: f32 = (0..inner)
            .map(|i| (x.at_linear(base + i) - mean).powi(2))
            .sum::<f32>()
            / inner as f32;
        let denom = (var + eps).sqrt();
        for i in 0..inner {
            out.data_mut()[base + i] =
                scale.at_linear(i) * (x.at_linear(base + i) - mean) / denom + bias.at_linear(i);
        }
    }
    Ok(out)
}

/// `Softmax` / `LogSoftmax` along `axis` (default: last).
pub fn softmax(attrs: &Attrs, x: &Tensor, log: bool) -> Result<Tensor, OpError> {
    let rank = x.shape().rank();
    let axis = x.shape().normalize_axis(attrs.int_or("axis", -1))?;
    // Iterate over all slices along `axis`.
    let axis_len = x.shape().dim(axis);
    let outer: usize = x.shape().dims()[..axis].iter().product();
    let inner: usize = x.shape().dims()[axis + 1..].iter().product();
    let _ = rank;
    let mut out = Tensor::zeros(x.shape().clone());
    for o in 0..outer.max(1) {
        for i in 0..inner.max(1) {
            let offset = |a: usize| (o * axis_len + a) * inner + i;
            let max = (0..axis_len)
                .map(|a| x.at_linear(offset(a)))
                .fold(f32::NEG_INFINITY, f32::max);
            let sum: f32 = (0..axis_len)
                .map(|a| (x.at_linear(offset(a)) - max).exp())
                .sum();
            for a in 0..axis_len {
                let e = (x.at_linear(offset(a)) - max).exp();
                out.data_mut()[offset(a)] = if log { (e / sum).ln() } else { e / sum };
            }
        }
    }
    Ok(out)
}

/// Helper: applies `f(channel, value)` over an `(N, C, ...)` tensor.
fn per_channel_affine(x: &Tensor, f: impl Fn(usize, f32) -> f32) -> Result<Tensor, OpError> {
    if x.shape().rank() < 2 {
        return Err(OpError::InvalidShape {
            op: OpKind::BatchNormalization,
            reason: "expected at least rank-2 input".into(),
        });
    }
    let batch = x.shape().dim(0);
    let channels = x.shape().dim(1);
    let spatial: usize = x.shape().dims()[2..].iter().product::<usize>().max(1);
    let mut out = Tensor::zeros(x.shape().clone());
    for n in 0..batch {
        for c in 0..channels {
            let base = (n * channels + c) * spatial;
            for s in 0..spatial {
                out.data_mut()[base + s] = f(c, x.at_linear(base + s));
            }
        }
    }
    Ok(out)
}

#[allow(dead_code)]
fn unused_shape(_: &Shape) {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_norm_standardizes_with_unit_scale() {
        let x = Tensor::from_vec(Shape::new(vec![1, 1, 4]), vec![2.0, 4.0, 6.0, 8.0]).unwrap();
        let scale = Tensor::full(Shape::new(vec![1]), 1.0);
        let bias = Tensor::zeros(Shape::new(vec![1]));
        let mean = Tensor::full(Shape::new(vec![1]), 5.0);
        let var = Tensor::full(Shape::new(vec![1]), 4.0);
        let attrs = Attrs::new().with_float("epsilon", 0.0);
        let y = batch_norm(&attrs, &[&x, &scale, &bias, &mean, &var]).unwrap();
        assert_eq!(y.data(), &[-1.5, -0.5, 0.5, 1.5]);
    }

    #[test]
    fn batch_norm_scale_and_bias_per_channel() {
        let x = Tensor::full(Shape::new(vec![1, 2, 2]), 1.0);
        let scale = Tensor::from_vec(Shape::new(vec![2]), vec![2.0, 3.0]).unwrap();
        let bias = Tensor::from_vec(Shape::new(vec![2]), vec![10.0, 20.0]).unwrap();
        let mean = Tensor::zeros(Shape::new(vec![2]));
        let var = Tensor::full(Shape::new(vec![2]), 1.0);
        let attrs = Attrs::new().with_float("epsilon", 0.0);
        let y = batch_norm(&attrs, &[&x, &scale, &bias, &mean, &var]).unwrap();
        assert_eq!(y.data(), &[12.0, 12.0, 23.0, 23.0]);
    }

    #[test]
    fn instance_norm_zero_mean_unit_variance() {
        let x = Tensor::from_vec(Shape::new(vec![1, 1, 4]), vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let scale = Tensor::full(Shape::new(vec![1]), 1.0);
        let bias = Tensor::zeros(Shape::new(vec![1]));
        let y = instance_norm(&Attrs::new(), &[&x, &scale, &bias]).unwrap();
        let mean: f32 = y.iter().sum::<f32>() / 4.0;
        assert!(mean.abs() < 1e-5);
        let var: f32 = y.iter().map(|v| (v - mean).powi(2)).sum::<f32>() / 4.0;
        assert!((var - 1.0).abs() < 1e-3);
    }

    #[test]
    fn layer_norm_normalizes_last_axis_rows_independently() {
        let x = Tensor::from_vec(
            Shape::new(vec![2, 3]),
            vec![1.0, 2.0, 3.0, 10.0, 20.0, 30.0],
        )
        .unwrap();
        let scale = Tensor::full(Shape::new(vec![3]), 1.0);
        let bias = Tensor::zeros(Shape::new(vec![3]));
        let y = layer_norm(&Attrs::new(), &[&x, &scale, &bias]).unwrap();
        // Both rows have the same normalized pattern.
        assert!((y.at(&[0, 0]).unwrap() - y.at(&[1, 0]).unwrap()).abs() < 1e-4);
        assert!(y.at(&[0, 1]).unwrap().abs() < 1e-5);
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let x = Tensor::random(Shape::new(vec![3, 5]), 3);
        let y = softmax(&Attrs::new(), &x, false).unwrap();
        for r in 0..3 {
            let sum: f32 = (0..5).map(|c| y.at(&[r, c]).unwrap()).sum();
            assert!((sum - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn softmax_respects_axis_zero() {
        let x = Tensor::random(Shape::new(vec![3, 5]), 4);
        let attrs = Attrs::new().with_int("axis", 0);
        let y = softmax(&attrs, &x, false).unwrap();
        for c in 0..5 {
            let sum: f32 = (0..3).map(|r| y.at(&[r, c]).unwrap()).sum();
            assert!((sum - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn log_softmax_is_log_of_softmax() {
        let x = Tensor::random(Shape::new(vec![2, 4]), 5);
        let sm = softmax(&Attrs::new(), &x, false).unwrap();
        let lsm = softmax(&Attrs::new(), &x, true).unwrap();
        let expected = sm.map(|v| v.ln());
        assert!(lsm.allclose(&expected, 1e-5));
    }

    #[test]
    fn softmax_is_invariant_to_constant_shift() {
        let x = Tensor::random(Shape::new(vec![2, 6]), 6);
        let shifted = x.map(|v| v + 100.0);
        let a = softmax(&Attrs::new(), &x, false).unwrap();
        let b = softmax(&Attrs::new(), &shifted, false).unwrap();
        assert!(a.allclose(&b, 1e-5));
    }
}
