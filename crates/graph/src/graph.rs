//! The computational graph container and builder.

use std::collections::{BTreeMap, VecDeque};

use dnnf_ops::{cost, infer_shapes, Attrs, OpKind};
use dnnf_tensor::{DataType, Shape, Tensor};

use crate::{GraphError, GraphStats, Node, NodeId, Value, ValueId, ValueKind};

/// A computational graph: operator nodes connected through tensor values.
///
/// Graphs are built incrementally with [`Graph::add_input`],
/// [`Graph::add_weight`] and [`Graph::add_op`]; shape inference runs at
/// `add_op` time so every value always carries a static shape.
#[derive(Debug, Clone, PartialEq)]
pub struct Graph {
    name: String,
    nodes: Vec<Node>,
    values: Vec<Value>,
    inputs: Vec<ValueId>,
    outputs: Vec<ValueId>,
    weight_data: BTreeMap<ValueId, Tensor>,
    /// Inputs whose marked axis is the symbolic sequence dimension, set with
    /// [`Graph::mark_seq_axis`]. Unlike the batch convention (always the
    /// leading axis of every input), sequence axes are opt-in and per-input:
    /// an autoregressive step graph marks only its KV-cache inputs, whose
    /// sequence axis is axis 1 (`[heads, seq, head_dim]`), while the
    /// fixed-length token inputs stay unmarked.
    seq_axes: BTreeMap<ValueId, usize>,
}

impl Graph {
    /// Creates an empty graph with the given model name.
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        Graph {
            name: name.into(),
            nodes: Vec::new(),
            values: Vec::new(),
            inputs: Vec::new(),
            outputs: Vec::new(),
            weight_data: BTreeMap::new(),
            seq_axes: BTreeMap::new(),
        }
    }

    /// Model name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of operator nodes (layers).
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of values.
    #[must_use]
    pub fn value_count(&self) -> usize {
        self.values.len()
    }

    /// Registers a model input of the given shape and returns its id.
    pub fn add_input(&mut self, name: impl Into<String>, shape: Shape) -> ValueId {
        self.push_value(name.into(), shape, DataType::F32, ValueKind::Input, None)
    }

    /// Registers a weight value of the given shape (data can be attached
    /// later with [`Graph::set_weight_data`], otherwise the runtime
    /// materializes deterministic random data).
    pub fn add_weight(&mut self, name: impl Into<String>, shape: Shape) -> ValueId {
        self.push_value(name.into(), shape, DataType::F32, ValueKind::Weight, None)
    }

    /// Registers a weight with explicit data.
    pub fn add_weight_with_data(&mut self, name: impl Into<String>, data: Tensor) -> ValueId {
        let id = self.push_value(
            name.into(),
            data.shape().clone(),
            data.dtype(),
            ValueKind::Weight,
            None,
        );
        self.weight_data.insert(id, data);
        id
    }

    /// Attaches concrete data to an existing weight value.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::UnknownValue`] for an invalid id and
    /// [`GraphError::Invalid`] when the value is not a weight or the shapes
    /// differ.
    pub fn set_weight_data(&mut self, id: ValueId, data: Tensor) -> Result<(), GraphError> {
        let value = self
            .values
            .get(id.0)
            .ok_or(GraphError::UnknownValue { id: id.0 })?;
        if value.kind != ValueKind::Weight {
            return Err(GraphError::Invalid {
                reason: format!("value `{}` is not a weight", value.name),
            });
        }
        if value.shape != *data.shape() {
            return Err(GraphError::Invalid {
                reason: format!(
                    "weight `{}` shape {} != data shape {}",
                    value.name,
                    value.shape,
                    data.shape()
                ),
            });
        }
        self.weight_data.insert(id, data);
        Ok(())
    }

    /// Returns the explicit data attached to a weight, if any.
    #[must_use]
    pub fn weight_data(&self, id: ValueId) -> Option<&Tensor> {
        self.weight_data.get(&id)
    }

    /// Adds an operator node. Shape inference determines the output value
    /// shapes; the new output value ids are returned in operator order.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::UnknownValue`] if an input id is invalid or
    /// [`GraphError::ShapeInference`] if the operator rejects the inputs.
    pub fn add_op(
        &mut self,
        op: OpKind,
        attrs: Attrs,
        inputs: &[ValueId],
        name: impl Into<String>,
    ) -> Result<Vec<ValueId>, GraphError> {
        let name = name.into();
        for &id in inputs {
            if id.0 >= self.values.len() {
                return Err(GraphError::UnknownValue { id: id.0 });
            }
        }
        let input_shapes: Vec<Shape> = inputs
            .iter()
            .map(|&id| self.values[id.0].shape.clone())
            .collect();
        let output_shapes = infer_shapes(op, &attrs, &input_shapes).map_err(|source| {
            GraphError::ShapeInference {
                node: name.clone(),
                source,
            }
        })?;

        let node_id = NodeId(self.nodes.len());
        let mut output_ids = Vec::with_capacity(output_shapes.len());
        for (i, shape) in output_shapes.into_iter().enumerate() {
            let vname = if i == 0 {
                format!("{name}:out")
            } else {
                format!("{name}:out{i}")
            };
            let vid = self.push_value(
                vname,
                shape,
                DataType::F32,
                ValueKind::Intermediate,
                Some(node_id),
            );
            output_ids.push(vid);
        }
        for &id in inputs {
            self.values[id.0].consumers.push(node_id);
        }
        self.nodes.push(Node {
            id: node_id,
            name,
            op,
            attrs,
            inputs: inputs.to_vec(),
            outputs: output_ids.clone(),
        });
        Ok(output_ids)
    }

    /// Marks a value as a graph output.
    pub fn mark_output(&mut self, id: ValueId) {
        if let Some(v) = self.values.get_mut(id.0) {
            if v.kind == ValueKind::Intermediate {
                v.kind = ValueKind::Output;
            }
            if !self.outputs.contains(&id) {
                self.outputs.push(id);
            }
        }
    }

    /// Graph input values.
    #[must_use]
    pub fn inputs(&self) -> &[ValueId] {
        &self.inputs
    }

    /// Graph output values.
    #[must_use]
    pub fn outputs(&self) -> &[ValueId] {
        &self.outputs
    }

    /// Borrow a node by id.
    ///
    /// # Panics
    ///
    /// Panics if the id is not from this graph.
    #[must_use]
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.0]
    }

    /// Borrow a value by id.
    ///
    /// # Panics
    ///
    /// Panics if the id is not from this graph.
    #[must_use]
    pub fn value(&self, id: ValueId) -> &Value {
        &self.values[id.0]
    }

    /// Iterate over all nodes in insertion order.
    pub fn nodes(&self) -> impl Iterator<Item = &Node> {
        self.nodes.iter()
    }

    /// Iterate over all values in insertion order.
    pub fn values(&self) -> impl Iterator<Item = &Value> {
        self.values.iter()
    }

    /// Immediate predecessor nodes of `id` (producers of its inputs).
    #[must_use]
    pub fn predecessors(&self, id: NodeId) -> Vec<NodeId> {
        let mut out = Vec::new();
        for &input in &self.nodes[id.0].inputs {
            if let Some(p) = self.values[input.0].producer {
                if !out.contains(&p) {
                    out.push(p);
                }
            }
        }
        out
    }

    /// Immediate successor nodes of `id` (consumers of its outputs).
    #[must_use]
    pub fn successors(&self, id: NodeId) -> Vec<NodeId> {
        let mut out = Vec::new();
        for &output in &self.nodes[id.0].outputs {
            for &c in &self.values[output.0].consumers {
                if !out.contains(&c) {
                    out.push(c);
                }
            }
        }
        out
    }

    /// Nodes in a topological order (producers before consumers).
    ///
    /// Because `add_op` only accepts already-existing values, insertion order
    /// is itself topological; this method nevertheless performs a Kahn-style
    /// sort so the invariant survives graph rewriting.
    #[must_use]
    pub fn topo_order(&self) -> Vec<NodeId> {
        let mut in_degree: Vec<usize> = self
            .nodes
            .iter()
            .map(|n| self.predecessors(n.id).len())
            .collect();
        let mut queue: VecDeque<NodeId> = self
            .nodes
            .iter()
            .filter(|n| in_degree[n.id.0] == 0)
            .map(|n| n.id)
            .collect();
        let mut order = Vec::with_capacity(self.nodes.len());
        while let Some(id) = queue.pop_front() {
            order.push(id);
            for succ in self.successors(id) {
                in_degree[succ.0] -= 1;
                if in_degree[succ.0] == 0 {
                    queue.push_back(succ);
                }
            }
        }
        order
    }

    /// Validates graph invariants: every node input exists, every
    /// intermediate value has a producer, outputs are marked, and the graph
    /// is acyclic (topological order covers every node).
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::Invalid`] describing the first violation found.
    pub fn validate(&self) -> Result<(), GraphError> {
        for node in &self.nodes {
            for &input in &node.inputs {
                if input.0 >= self.values.len() {
                    return Err(GraphError::Invalid {
                        reason: format!(
                            "node `{}` references missing value {}",
                            node.name, input.0
                        ),
                    });
                }
            }
        }
        for value in &self.values {
            if value.is_intermediate() && value.producer.is_none() {
                return Err(GraphError::Invalid {
                    reason: format!("intermediate value `{}` has no producer", value.name),
                });
            }
        }
        if self.outputs.is_empty() && !self.nodes.is_empty() {
            return Err(GraphError::Invalid {
                reason: "no outputs marked".into(),
            });
        }
        if self.topo_order().len() != self.nodes.len() {
            return Err(GraphError::Invalid {
                reason: "graph contains a cycle".into(),
            });
        }
        Ok(())
    }

    /// Computes whole-graph statistics (layer counts, IRS size, FLOPs,
    /// parameters) — the raw material of the paper's Tables 1 and 5.
    #[must_use]
    pub fn stats(&self) -> GraphStats {
        let mut stats = GraphStats {
            total_layers: self.nodes.len(),
            ..GraphStats::default()
        };
        for node in &self.nodes {
            if node.is_compute_intensive() {
                stats.compute_intensive_layers += 1;
            } else {
                stats.memory_intensive_layers += 1;
            }
            let input_shapes: Vec<Shape> = node
                .inputs
                .iter()
                .map(|&id| self.values[id.0].shape.clone())
                .collect();
            let output_shapes: Vec<Shape> = node
                .outputs
                .iter()
                .map(|&id| self.values[id.0].shape.clone())
                .collect();
            stats.flops += cost::flops(node.op, &node.attrs, &input_shapes, &output_shapes);
        }
        for value in &self.values {
            if value.is_intermediate() {
                stats.intermediate_bytes += value.size_bytes() as u64;
            } else if value.is_weight() {
                stats.parameters += value.shape.numel() as u64;
                stats.parameter_bytes += value.size_bytes() as u64;
            }
        }
        stats
    }

    /// Rebuilds this graph with every input's leading (batch) dimension set
    /// to `batch`, re-running shape inference over all nodes so every value
    /// carries the rebatched shape. Node and value ids, names, weights and
    /// attached weight data are preserved exactly, which is what lets a
    /// [`FusionPlan`](https://docs.rs/dnnf-core)-style node grouping computed
    /// on one batch size be replayed on another: only shapes change.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::Invalid`] when `batch == 0` or an input is
    /// rank-0 (no batch dimension to rebind), and
    /// [`GraphError::ShapeInference`] when an operator is not
    /// batch-polymorphic (e.g. a `Reshape` whose target shape bakes in the
    /// original batch size).
    pub fn with_batch_size(&self, batch: usize) -> Result<Graph, GraphError> {
        if batch == 0 {
            return Err(GraphError::Invalid {
                reason: "batch size must be at least 1".into(),
            });
        }
        let mut g = self.clone();
        let mut changed = false;
        for &id in &self.inputs {
            let v = &mut g.values[id.0];
            if v.shape.rank() == 0 {
                return Err(GraphError::Invalid {
                    reason: format!("input `{}` is rank-0 and has no batch dimension", v.name),
                });
            }
            if v.shape.dim(0) != batch {
                let mut dims = v.shape.dims().to_vec();
                dims[0] = batch;
                v.shape = Shape::new(dims);
                changed = true;
            }
        }
        if !changed {
            return Ok(g);
        }
        Self::reinfer_all(&mut g)?;
        Ok(g)
    }

    /// Re-infers every node output in topological order so rebound input
    /// shapes propagate through the whole graph. Shared by
    /// [`Graph::with_batch_size`] and [`Graph::with_seq_len`].
    fn reinfer_all(g: &mut Graph) -> Result<(), GraphError> {
        for id in g.topo_order() {
            let input_shapes: Vec<Shape> = g.nodes[id.0]
                .inputs
                .iter()
                .map(|&v| g.values[v.0].shape.clone())
                .collect();
            let node = &g.nodes[id.0];
            let output_shapes =
                infer_shapes(node.op, &node.attrs, &input_shapes).map_err(|source| {
                    GraphError::ShapeInference {
                        node: node.name.clone(),
                        source,
                    }
                })?;
            if output_shapes.len() != node.outputs.len() {
                return Err(GraphError::Invalid {
                    reason: format!("node `{}` changed output arity under rebatching", node.name),
                });
            }
            let outputs = node.outputs.clone();
            for (vid, shape) in outputs.into_iter().zip(output_shapes) {
                g.values[vid.0].shape = shape;
            }
        }
        Ok(())
    }

    /// Marks `axis` of graph input `id` as its symbolic sequence dimension.
    /// Marked inputs are the ones [`Graph::with_seq_len`] rebinds and the
    /// ones [`Graph::seq_shape_signature`] prints symbolically; unmarked
    /// inputs keep their static shape. The markings survive
    /// [`Graph::with_batch_size`] / [`Graph::with_seq_len`] cloning.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::UnknownValue`] for an invalid id and
    /// [`GraphError::Invalid`] when the value is not a graph input or the
    /// axis is out of range for its rank.
    pub fn mark_seq_axis(&mut self, id: ValueId, axis: usize) -> Result<(), GraphError> {
        let value = self
            .values
            .get(id.0)
            .ok_or(GraphError::UnknownValue { id: id.0 })?;
        if value.kind != ValueKind::Input {
            return Err(GraphError::Invalid {
                reason: format!("value `{}` is not a graph input", value.name),
            });
        }
        if axis >= value.shape.rank() {
            return Err(GraphError::Invalid {
                reason: format!(
                    "seq axis {axis} out of range for input `{}` of rank {}",
                    value.name,
                    value.shape.rank()
                ),
            });
        }
        self.seq_axes.insert(id, axis);
        Ok(())
    }

    /// The marked sequence axis of input `id`, if any.
    #[must_use]
    pub fn seq_axis(&self, id: ValueId) -> Option<usize> {
        self.seq_axes.get(&id).copied()
    }

    /// Rebuilds this graph with every marked sequence axis (see
    /// [`Graph::mark_seq_axis`]) set to `seq`, re-running shape inference
    /// over all nodes. Node and value ids, names, weights, attached weight
    /// data and the seq-axis markings themselves are preserved exactly —
    /// the sequence-length analogue of [`Graph::with_batch_size`], which is
    /// what lets one compiled plan (keyed by
    /// [`Graph::seq_shape_signature`]) serve an autoregressive decode loop
    /// whose KV-cache length grows every step.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::Invalid`] when `seq == 0` or no input carries a
    /// seq-axis marking, and [`GraphError::ShapeInference`] when an operator
    /// is not polymorphic in the marked dimension (e.g. a `Reshape` whose
    /// target shape bakes in the original sequence length).
    pub fn with_seq_len(&self, seq: usize) -> Result<Graph, GraphError> {
        if seq == 0 {
            return Err(GraphError::Invalid {
                reason: "sequence length must be at least 1".into(),
            });
        }
        if self.seq_axes.is_empty() {
            return Err(GraphError::Invalid {
                reason: "no input carries a seq-axis marking".into(),
            });
        }
        let mut g = self.clone();
        let mut changed = false;
        for (&id, &axis) in &self.seq_axes {
            let v = &mut g.values[id.0];
            if v.shape.dim(axis) != seq {
                let mut dims = v.shape.dims().to_vec();
                dims[axis] = seq;
                v.shape = Shape::new(dims);
                changed = true;
            }
        }
        if !changed {
            return Ok(g);
        }
        Self::reinfer_all(&mut g)?;
        Ok(g)
    }

    /// The current sequence length: the marked dimension of the first marked
    /// input (all marked inputs agree on any graph produced by
    /// [`Graph::with_seq_len`]). `None` when no input is marked.
    #[must_use]
    pub fn seq_len(&self) -> Option<usize> {
        let (&id, &axis) = self.seq_axes.iter().next()?;
        Some(self.values[id.0].shape.dim(axis))
    }

    /// The leading dimension of the first graph input — the batch size by
    /// the NCHW / `[batch, features]` convention every bundled model follows.
    /// `None` when the graph has no inputs or the first input is rank-0.
    #[must_use]
    pub fn batch_size(&self) -> Option<usize> {
        let &first = self.inputs.first()?;
        let shape = &self.values[first.0].shape;
        if shape.rank() == 0 {
            None
        } else {
            Some(shape.dim(0))
        }
    }

    /// Computes the deterministic structural fingerprint of this graph:
    /// a 128-bit hash over topology, operator attributes, value shapes and
    /// dtypes, output markings, and weight identities (names plus any
    /// explicit data bits). The model name and intermediate value names are
    /// *not* covered, so structurally identical models fingerprint
    /// identically. See [`crate::Fingerprint`] for the guarantees.
    #[must_use]
    pub fn fingerprint(&self) -> crate::Fingerprint {
        crate::fingerprint::graph_fingerprint(self)
    }

    /// Human-readable signature of the graph's input shapes, e.g.
    /// `x=1x3x224x224`. Used together with [`Graph::fingerprint`] as the
    /// compilation-cache key.
    #[must_use]
    pub fn shape_signature(&self) -> String {
        crate::fingerprint::shape_signature(self)
    }

    /// Like [`Graph::shape_signature`] but with every input's leading
    /// (batch) dimension printed as the symbolic `N`, e.g. `x=Nx3x224x224`.
    /// Batch-polymorphic cache entries are keyed by this signature so one
    /// compiled plan serves every batch size.
    #[must_use]
    pub fn batch_shape_signature(&self) -> String {
        crate::fingerprint::batch_shape_signature(self)
    }

    /// Like [`Graph::shape_signature`] but with every *marked* sequence axis
    /// (see [`Graph::mark_seq_axis`]) printed as the symbolic `S`, e.g.
    /// `token_ids=1;past_k0=2xSx8`. Sequence-polymorphic cache entries are
    /// keyed by this signature so one compiled plan serves every KV-cache
    /// length of a decode loop.
    #[must_use]
    pub fn seq_shape_signature(&self) -> String {
        crate::fingerprint::seq_shape_signature(self)
    }

    /// Exports the graph in Graphviz DOT format (nodes labelled with operator
    /// and output shape), useful for debugging fusion decisions.
    #[must_use]
    pub fn to_dot(&self) -> String {
        let mut s = format!("digraph \"{}\" {{\n", self.name);
        for node in &self.nodes {
            let shape = node
                .outputs
                .first()
                .map(|&o| self.values[o.0].shape.to_string())
                .unwrap_or_default();
            s.push_str(&format!(
                "  n{} [label=\"{} {}\"];\n",
                node.id.0, node.op, shape
            ));
        }
        for node in &self.nodes {
            for succ in self.successors(node.id) {
                s.push_str(&format!("  n{} -> n{};\n", node.id.0, succ.0));
            }
        }
        s.push_str("}\n");
        s
    }

    fn push_value(
        &mut self,
        name: String,
        shape: Shape,
        dtype: DataType,
        kind: ValueKind,
        producer: Option<NodeId>,
    ) -> ValueId {
        let id = ValueId(self.values.len());
        self.values.push(Value {
            id,
            name,
            shape,
            dtype,
            kind,
            producer,
            consumers: Vec::new(),
        });
        match kind {
            ValueKind::Input => self.inputs.push(id),
            ValueKind::Output => self.outputs.push(id),
            _ => {}
        }
        id
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Conv -> Relu -> MaxPool -> Flatten -> Gemm toy CNN used across tests.
    fn toy_cnn() -> Graph {
        let mut g = Graph::new("toy-cnn");
        let x = g.add_input("x", Shape::new(vec![1, 3, 8, 8]));
        let w = g.add_weight("conv.w", Shape::new(vec![4, 3, 3, 3]));
        let b = g.add_weight("conv.b", Shape::new(vec![4]));
        let conv = g
            .add_op(
                OpKind::Conv,
                Attrs::new().with_ints("pads", vec![1, 1, 1, 1]),
                &[x, w, b],
                "conv1",
            )
            .unwrap()[0];
        let relu = g
            .add_op(OpKind::Relu, Attrs::new(), &[conv], "relu1")
            .unwrap()[0];
        let pool = g
            .add_op(
                OpKind::MaxPool,
                Attrs::new()
                    .with_ints("kernel_shape", vec![2, 2])
                    .with_ints("strides", vec![2, 2]),
                &[relu],
                "pool1",
            )
            .unwrap()[0];
        let flat = g
            .add_op(
                OpKind::Flatten,
                Attrs::new().with_int("axis", 1),
                &[pool],
                "flatten",
            )
            .unwrap()[0];
        let fc_w = g.add_weight("fc.w", Shape::new(vec![64, 10]));
        let fc = g
            .add_op(OpKind::MatMul, Attrs::new(), &[flat, fc_w], "fc")
            .unwrap()[0];
        g.mark_output(fc);
        g
    }

    #[test]
    fn builder_infers_shapes() {
        let g = toy_cnn();
        assert_eq!(g.node_count(), 5);
        let conv_out = g.node(NodeId(0)).outputs[0];
        assert_eq!(g.value(conv_out).shape.dims(), &[1, 4, 8, 8]);
        let fc_out = *g.outputs().first().unwrap();
        assert_eq!(g.value(fc_out).shape.dims(), &[1, 10]);
        assert_eq!(g.value(fc_out).kind, ValueKind::Output);
    }

    #[test]
    fn add_op_rejects_bad_inputs() {
        let mut g = Graph::new("bad");
        let x = g.add_input("x", Shape::new(vec![2, 3]));
        // Wrong arity.
        assert!(g.add_op(OpKind::Add, Attrs::new(), &[x], "add").is_err());
        // Unknown value id.
        let bogus = ValueId(99);
        assert!(matches!(
            g.add_op(OpKind::Relu, Attrs::new(), &[bogus], "r"),
            Err(GraphError::UnknownValue { id: 99 })
        ));
    }

    #[test]
    fn predecessors_successors_and_topo_order() {
        let g = toy_cnn();
        let order = g.topo_order();
        assert_eq!(order.len(), 5);
        let positions: Vec<usize> = g
            .nodes()
            .map(|n| order.iter().position(|&o| o == n.id).unwrap())
            .collect();
        // Conv before Relu before MaxPool.
        assert!(positions[0] < positions[1]);
        assert!(positions[1] < positions[2]);
        assert_eq!(g.predecessors(NodeId(1)), vec![NodeId(0)]);
        assert_eq!(g.successors(NodeId(0)), vec![NodeId(1)]);
        assert!(g.predecessors(NodeId(0)).is_empty());
    }

    #[test]
    fn validate_accepts_well_formed_and_rejects_outputless() {
        let g = toy_cnn();
        assert!(g.validate().is_ok());
        let mut g = Graph::new("no-out");
        let x = g.add_input("x", Shape::new(vec![2]));
        g.add_op(OpKind::Relu, Attrs::new(), &[x], "r").unwrap();
        assert!(g.validate().is_err());
    }

    #[test]
    fn stats_count_layers_and_bytes() {
        let g = toy_cnn();
        let s = g.stats();
        assert_eq!(s.total_layers, 5);
        assert_eq!(s.compute_intensive_layers, 2); // Conv + MatMul
        assert_eq!(s.memory_intensive_layers, 3);
        assert!(s.flops > 0);
        assert!(s.intermediate_bytes > 0);
        // Parameters: 4*3*3*3 + 4 + 64*10 = 108 + 4 + 640.
        assert_eq!(s.parameters, 752);
    }

    #[test]
    fn weight_data_roundtrip_and_validation() {
        let mut g = Graph::new("w");
        let w = g.add_weight("w", Shape::new(vec![2, 2]));
        assert!(g.weight_data(w).is_none());
        let t = Tensor::arange(Shape::new(vec![2, 2]));
        g.set_weight_data(w, t.clone()).unwrap();
        assert_eq!(g.weight_data(w), Some(&t));
        // Shape mismatch rejected.
        assert!(g
            .set_weight_data(w, Tensor::zeros(Shape::new(vec![3])))
            .is_err());
        // Non-weight values rejected.
        let x = g.add_input("x", Shape::new(vec![2, 2]));
        assert!(g.set_weight_data(x, t).is_err());
        // Explicit-data constructor.
        let w2 = g.add_weight_with_data("w2", Tensor::full(Shape::new(vec![2]), 1.0));
        assert!(g.weight_data(w2).is_some());
    }

    #[test]
    fn multi_output_ops_create_multiple_values() {
        let mut g = Graph::new("split");
        let x = g.add_input("x", Shape::new(vec![2, 8]));
        let outs = g
            .add_op(
                OpKind::Split,
                Attrs::new()
                    .with_int("axis", 1)
                    .with_ints("split", vec![4, 4]),
                &[x],
                "split",
            )
            .unwrap();
        assert_eq!(outs.len(), 2);
        assert_eq!(g.value(outs[0]).shape.dims(), &[2, 4]);
        assert_eq!(g.value(outs[1]).shape.dims(), &[2, 4]);
    }

    #[test]
    fn with_batch_size_rebatches_every_value() {
        let g = toy_cnn();
        assert_eq!(g.batch_size(), Some(1));
        let g4 = g.with_batch_size(4).unwrap();
        assert_eq!(g4.batch_size(), Some(4));
        // Same structure, new shapes everywhere downstream of the input.
        assert_eq!(g4.node_count(), g.node_count());
        assert_eq!(g4.value_count(), g.value_count());
        let conv_out = g4.node(NodeId(0)).outputs[0];
        assert_eq!(g4.value(conv_out).shape.dims(), &[4, 4, 8, 8]);
        let fc_out = *g4.outputs().first().unwrap();
        assert_eq!(g4.value(fc_out).shape.dims(), &[4, 10]);
        // Weights are batch-free and untouched.
        for (v, v4) in g.values().zip(g4.values()) {
            if v.is_weight() {
                assert_eq!(v.shape, v4.shape);
            }
        }
        assert!(g4.validate().is_ok());
    }

    #[test]
    fn with_batch_size_round_trips_to_the_same_fingerprint() {
        let g = toy_cnn();
        let g4 = g.with_batch_size(4).unwrap();
        assert_ne!(g4.fingerprint(), g.fingerprint());
        // Rebatching back to 1 reproduces the original graph exactly.
        let back = g4.with_batch_size(1).unwrap();
        assert_eq!(back.fingerprint(), g.fingerprint());
        // Rebatching to the current batch size is the identity.
        assert_eq!(g.with_batch_size(1).unwrap().fingerprint(), g.fingerprint());
    }

    #[test]
    fn with_batch_size_rejects_zero_and_rank0_inputs() {
        let g = toy_cnn();
        assert!(matches!(
            g.with_batch_size(0),
            Err(GraphError::Invalid { .. })
        ));
        let mut scalar = Graph::new("scalar-in");
        scalar.add_input("s", Shape::new(vec![]));
        assert!(matches!(
            scalar.with_batch_size(2),
            Err(GraphError::Invalid { .. })
        ));
        assert_eq!(scalar.batch_size(), None);
        assert_eq!(Graph::new("empty").batch_size(), None);
    }

    /// Single-query attention score fragment over a length-6 KV cache:
    /// `q [2,1,8] @ transpose(past, [0,2,1]) [2,8,S] -> scores [2,1,S]`.
    fn toy_seq_graph() -> Graph {
        let mut g = Graph::new("toy-seq");
        let q = g.add_input("q", Shape::new(vec![2, 1, 8]));
        let past = g.add_input("past", Shape::new(vec![2, 6, 8]));
        g.mark_seq_axis(past, 1).unwrap();
        let kt = g
            .add_op(
                OpKind::Transpose,
                Attrs::new().with_ints("perm", vec![0, 2, 1]),
                &[past],
                "kt",
            )
            .unwrap()[0];
        let scores = g
            .add_op(OpKind::MatMul, Attrs::new(), &[q, kt], "scores")
            .unwrap()[0];
        g.mark_output(scores);
        g
    }

    #[test]
    fn with_seq_len_rebinds_only_marked_axes() {
        let g = toy_seq_graph();
        assert_eq!(g.seq_len(), Some(6));
        let g3 = g.with_seq_len(3).unwrap();
        assert_eq!(g3.seq_len(), Some(3));
        assert_eq!(g3.node_count(), g.node_count());
        assert_eq!(g3.value_count(), g.value_count());
        // The unmarked input keeps its static shape; the marked one and
        // everything downstream rebind.
        assert_eq!(g3.value(g3.inputs()[0]).shape.dims(), &[2, 1, 8]);
        assert_eq!(g3.value(g3.inputs()[1]).shape.dims(), &[2, 3, 8]);
        let out = *g3.outputs().first().unwrap();
        assert_eq!(g3.value(out).shape.dims(), &[2, 1, 3]);
        // Markings survive the rebind, so the result rebinds again.
        assert_eq!(g3.seq_axis(g3.inputs()[1]), Some(1));
        assert!(g3.validate().is_ok());
    }

    #[test]
    fn with_seq_len_round_trips_to_the_same_fingerprint() {
        let g = toy_seq_graph();
        // Rebinding to the current length is the identity.
        assert_eq!(g.with_seq_len(6).unwrap().fingerprint(), g.fingerprint());
        let back = g.with_seq_len(1).unwrap().with_seq_len(6).unwrap();
        assert_eq!(back.fingerprint(), g.fingerprint());
    }

    #[test]
    fn with_seq_len_rejects_zero_and_unmarked_graphs() {
        let g = toy_seq_graph();
        assert!(matches!(g.with_seq_len(0), Err(GraphError::Invalid { .. })));
        let unmarked = toy_cnn();
        assert_eq!(unmarked.seq_len(), None);
        assert!(matches!(
            unmarked.with_seq_len(2),
            Err(GraphError::Invalid { .. })
        ));
    }

    #[test]
    fn mark_seq_axis_rejects_non_inputs_and_bad_axes() {
        let mut g = Graph::new("marks");
        let x = g.add_input("x", Shape::new(vec![2, 4]));
        let w = g.add_weight("w", Shape::new(vec![4]));
        assert!(matches!(
            g.mark_seq_axis(w, 0),
            Err(GraphError::Invalid { .. })
        ));
        assert!(matches!(
            g.mark_seq_axis(x, 2),
            Err(GraphError::Invalid { .. })
        ));
        assert!(matches!(
            g.mark_seq_axis(ValueId(99), 0),
            Err(GraphError::UnknownValue { id: 99 })
        ));
        g.mark_seq_axis(x, 1).unwrap();
        assert_eq!(g.seq_axis(x), Some(1));
        assert_eq!(g.seq_axis(w), None);
    }

    #[test]
    fn dot_export_mentions_every_node() {
        let g = toy_cnn();
        let dot = g.to_dot();
        assert!(dot.contains("digraph"));
        assert!(dot.contains("Conv"));
        assert!(dot.contains("->"));
    }

    #[test]
    fn diamond_graph_topo_order_is_complete() {
        // x -> a -> c, x -> b -> c (residual-style diamond).
        let mut g = Graph::new("diamond");
        let x = g.add_input("x", Shape::new(vec![4]));
        let a = g.add_op(OpKind::Relu, Attrs::new(), &[x], "a").unwrap()[0];
        let b = g.add_op(OpKind::Sigmoid, Attrs::new(), &[x], "b").unwrap()[0];
        let c = g.add_op(OpKind::Add, Attrs::new(), &[a, b], "c").unwrap()[0];
        g.mark_output(c);
        assert!(g.validate().is_ok());
        let order = g.topo_order();
        assert_eq!(order.len(), 3);
        assert_eq!(order.last(), Some(&NodeId(2)));
    }
}
