//! End-to-end tests for the serving layer: queue drain, bit-identity,
//! mixed-batch coalescing, backpressure, and PlanCache races under
//! eviction pressure.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use dnnf_core::{CompiledModel, Compiler, CompilerOptions};
use dnnf_graph::Graph;
use dnnf_ops::{Attrs, OpKind};
use dnnf_runtime::{Executor, PlanCache};
use dnnf_serve::{ServeConfig, ServeError, Server};
use dnnf_simdev::DeviceSpec;
use dnnf_tensor::{Shape, Tensor};

/// A tiny conv + bias + relu model with `channels` output channels; the
/// channel count doubles as a knob to mint distinct fingerprints.
fn conv_graph(channels: usize) -> Graph {
    let mut g = Graph::new(format!("conv{channels}"));
    let x = g.add_input("x", Shape::new(vec![1, 3, 8, 8]));
    let w = g.add_weight_with_data(
        "w",
        Tensor::random(Shape::new(vec![channels, 3, 3, 3]), 11 + channels as u64),
    );
    let b = g.add_weight_with_data(
        "b",
        Tensor::random(Shape::new(vec![1, channels, 1, 1]), 23 + channels as u64),
    );
    let c = g
        .add_op(
            OpKind::Conv,
            Attrs::new().with_ints("pads", vec![1, 1, 1, 1]),
            &[x, w],
            "conv",
        )
        .expect("conv")[0];
    let a = g
        .add_op(OpKind::Add, Attrs::new(), &[c, b], "bias")
        .expect("bias")[0];
    let r = g
        .add_op(OpKind::Relu, Attrs::new(), &[a], "relu")
        .expect("relu")[0];
    g.mark_output(r);
    g
}

fn compile(graph: &Graph) -> Arc<CompiledModel> {
    let mut compiler = Compiler::new(CompilerOptions::default());
    Arc::new(compiler.compile(graph).expect("compile"))
}

fn request(rows: usize, seed: u64) -> HashMap<String, Tensor> {
    [(
        "x".to_string(),
        Tensor::random(Shape::new(vec![rows, 3, 8, 8]), seed),
    )]
    .into()
}

fn direct_outputs(model: &Arc<CompiledModel>, inputs: &HashMap<String, Tensor>) -> Vec<Tensor> {
    Executor::new(DeviceSpec::snapdragon_865_cpu())
        .without_cache_simulation()
        .run_compiled_batched(model, inputs)
        .expect("direct run")
        .outputs
}

#[test]
fn empty_queue_drains_and_shuts_down_cleanly() {
    let server = Server::builder(ServeConfig::default())
        .model("conv", compile(&conv_graph(4)))
        .expect("register")
        .start();
    assert_eq!(server.model_names(), vec!["conv".to_string()]);
    let stats = server.stats();
    assert_eq!(stats.model("conv").expect("stats").pending, 0);
    server.shutdown(); // nothing queued: must not hang or panic
}

#[test]
fn single_request_is_bit_identical_to_direct_execution() {
    let model = compile(&conv_graph(4));
    let server = Server::builder(ServeConfig {
        workers: 1,
        batch_window: Duration::ZERO, // pass-through
        ..ServeConfig::default()
    })
    .model("conv", Arc::clone(&model))
    .expect("register")
    .start();

    let inputs = request(1, 42);
    let expected = direct_outputs(&model, &inputs);
    let response = server
        .submit("conv", inputs)
        .expect("submit")
        .wait()
        .expect("response");
    server.shutdown();

    assert_eq!(response.outputs.len(), expected.len());
    for (got, want) in response.outputs.iter().zip(&expected) {
        assert_eq!(got.shape(), want.shape());
        // Tolerance 0: the served result must be the same bits.
        assert_eq!(got.data(), want.data());
    }
}

#[test]
fn mixed_batch_sizes_coalesce_through_one_polymorphic_plan() {
    let cache = PlanCache::new();
    let graph = conv_graph(4);
    let mut compiler = Compiler::new(CompilerOptions::default());
    let (model, _) = cache
        .compile_batched(&mut compiler, &graph)
        .expect("compile via cache");

    let server = Server::builder(ServeConfig {
        workers: 1,
        max_batch: 16,
        // Generous window so all three submits land in one dispatch.
        batch_window: Duration::from_millis(400),
        ..ServeConfig::default()
    })
    .model("conv", Arc::clone(&model))
    .expect("register")
    .start();

    let cases: Vec<(usize, u64)> = vec![(1, 1), (2, 2), (3, 3)];
    let tickets: Vec<_> = cases
        .iter()
        .map(|&(rows, seed)| {
            let inputs = request(rows, seed);
            (
                inputs.clone(),
                server.submit("conv", inputs).expect("submit"),
            )
        })
        .collect();
    let responses: Vec<_> = tickets
        .into_iter()
        .map(|(inputs, t)| (inputs, t.wait().expect("response")))
        .collect();

    for ((inputs, response), &(rows, _)) in responses.iter().zip(&cases) {
        let expected = direct_outputs(&model, inputs);
        assert_eq!(response.outputs.len(), expected.len());
        for (got, want) in response.outputs.iter().zip(&expected) {
            assert_eq!(got.shape().dim(0), rows);
            assert_eq!(got.shape(), want.shape());
            assert_eq!(got.data(), want.data()); // bit-identical despite coalescing
        }
    }

    let stats = server.stats();
    let m = stats.model("conv").expect("stats").clone();
    server.shutdown();
    assert_eq!(m.completed, 3);
    // All three rode one dispatch (1 + 2 + 3 = 6 rows ≤ max_batch).
    assert_eq!(m.batches, 1, "expected one coalesced dispatch, got {m:?}");
    assert_eq!(m.max_coalesced, 3);

    // The polymorphic plan means one PlanCache entry served every batch size.
    let cache_stats = cache.stats();
    assert_eq!(cache_stats.models, 1);
}

#[test]
fn backpressure_rejects_submits_beyond_queue_capacity() {
    let server = Server::builder(ServeConfig {
        workers: 0, // nothing drains: the queue fills deterministically
        queue_capacity: 2,
        ..ServeConfig::default()
    })
    .model("conv", compile(&conv_graph(4)))
    .expect("register")
    .start();

    let t1 = server.submit("conv", request(1, 1)).expect("first admit");
    let t2 = server.submit("conv", request(1, 2)).expect("second admit");
    let err = server
        .submit("conv", request(1, 3))
        .expect_err("third must bounce");
    assert_eq!(
        err,
        ServeError::QueueFull {
            model: "conv".into(),
            capacity: 2
        }
    );

    let stats = server.stats();
    let m = stats.model("conv").expect("stats").clone();
    assert_eq!(m.submitted, 2);
    assert_eq!(m.rejected, 1);
    assert_eq!(m.pending, 2);

    // With no workers the pending requests are answered on shutdown.
    server.shutdown();
    assert_eq!(t1.wait(), Err(ServeError::ShuttingDown));
    assert_eq!(t2.wait(), Err(ServeError::ShuttingDown));
}

#[test]
fn submit_validates_model_names_and_shapes() {
    let server = Server::builder(ServeConfig {
        workers: 0,
        max_batch: 4,
        ..ServeConfig::default()
    })
    .model("conv", compile(&conv_graph(4)))
    .expect("register")
    .start();

    assert!(matches!(
        server.submit("nope", request(1, 1)),
        Err(ServeError::UnknownModel { .. })
    ));
    assert!(matches!(
        server.submit("conv", HashMap::new()),
        Err(ServeError::BadRequest { .. })
    ));
    let wrong_tail: HashMap<String, Tensor> = [(
        "x".to_string(),
        Tensor::random(Shape::new(vec![1, 3, 4, 4]), 1),
    )]
    .into();
    assert!(matches!(
        server.submit("conv", wrong_tail),
        Err(ServeError::BadRequest { .. })
    ));
    assert!(matches!(
        server.submit("conv", request(5, 1)), // above max_batch
        Err(ServeError::BadRequest { .. })
    ));
    server.shutdown();
}

#[test]
fn two_tenants_are_served_independently() {
    let small = compile(&conv_graph(2));
    let large = compile(&conv_graph(6));
    let server = Server::builder(ServeConfig {
        workers: 2,
        batch_window: Duration::from_millis(1),
        ..ServeConfig::default()
    })
    .model("small", Arc::clone(&small))
    .expect("register small")
    .model("large", Arc::clone(&large))
    .expect("register large")
    .start();

    let mut tickets = Vec::new();
    for seed in 0..4u64 {
        let inputs = request(1, 100 + seed);
        tickets.push((
            "small",
            inputs.clone(),
            server.submit("small", inputs).unwrap(),
        ));
        let inputs = request(2, 200 + seed);
        tickets.push((
            "large",
            inputs.clone(),
            server.submit("large", inputs).unwrap(),
        ));
    }
    for (name, inputs, ticket) in tickets {
        let response = ticket.wait().expect("response");
        let model = if name == "small" { &small } else { &large };
        let expected = direct_outputs(model, &inputs);
        for (got, want) in response.outputs.iter().zip(&expected) {
            assert_eq!(got.shape(), want.shape());
            assert_eq!(got.data(), want.data());
        }
    }
    server.shutdown();
}

/// Regression test for the lost-wakeup after dispatch: when a worker
/// extracts a batch while *another* tenant's queue is also dispatchable, it
/// must hand the condvar on so the second worker drains that tenant
/// concurrently instead of the first worker serving both serially (or, in
/// the worst interleaving, the second tenant stalling until its batch
/// window expires). With a multi-second window, every full batch must
/// dispatch on the row threshold alone — none may ride out the timeout.
#[test]
fn two_workers_drain_two_ready_tenants_without_window_timeouts() {
    let window = Duration::from_secs(5);
    let server = Server::builder(ServeConfig {
        workers: 2,
        max_batch: 4,
        batch_window: window,
        ..ServeConfig::default()
    })
    .model("a", compile(&conv_graph(2)))
    .expect("register a")
    .model("b", compile(&conv_graph(4)))
    .expect("register b")
    .start();

    let start = Instant::now();
    let rounds = 3u64;
    for round in 0..rounds {
        // Interleave single-row submits so both queues cross the row
        // threshold back to back while the workers are already moving.
        let mut tickets = Vec::new();
        for i in 0..4u64 {
            tickets.push(server.submit("a", request(1, round * 100 + i)).unwrap());
            tickets.push(
                server
                    .submit("b", request(1, round * 100 + 50 + i))
                    .unwrap(),
            );
        }
        for ticket in tickets {
            ticket.wait().expect("response");
        }
    }
    let elapsed = start.elapsed();
    let stats = server.stats();
    let a = stats.model("a").expect("stats a").clone();
    let b = stats.model("b").expect("stats b").clone();
    server.shutdown();

    // If either tenant's ready batch had been left to its window deadline,
    // a round would take ≥ 5 s; dispatched on the row threshold, the whole
    // test takes milliseconds.
    assert!(
        elapsed < window / 2,
        "ready tenants waited out the batch window: {elapsed:?}"
    );
    for (name, m) in [("a", &a), ("b", &b)] {
        assert_eq!(m.completed, rounds * 4, "tenant {name}: {m:?}");
        assert_eq!(
            m.batches, rounds,
            "tenant {name} must dispatch one full batch per round: {m:?}"
        );
        assert_eq!(m.max_coalesced, 4, "tenant {name}: {m:?}");
    }
}

/// Regression test for scan-order starvation: a tenant with a standing
/// backlog of full batches must not monopolize the workers. The rotating
/// scan start guarantees the light tenant's ready batch is picked up after
/// at most one dispatch per worker, so its waits stay bounded by the batch
/// window rather than the length of the heavy tenant's burst.
#[test]
fn a_saturated_tenant_cannot_starve_the_other_tenants_dispatches() {
    let window = Duration::from_millis(400);
    let server = Server::builder(ServeConfig {
        workers: 2,
        max_batch: 4,
        batch_window: window,
        queue_capacity: 64,
        ..ServeConfig::default()
    })
    .model("heavy", compile(&conv_graph(4)))
    .expect("register heavy")
    .model("light", compile(&conv_graph(2)))
    .expect("register light")
    .start();

    let stop = AtomicBool::new(false);
    let mut waits: Vec<Duration> = Vec::new();
    std::thread::scope(|scope| {
        let server = &server;
        let stop = &stop;
        scope.spawn(move || {
            // Keep the heavy queue permanently dispatchable: every request
            // is a full batch, and backpressure only slows the firehose.
            // The wall-clock bound keeps a scheduler regression from
            // turning this test into a deadlock (the light tenant would
            // never finish, so `stop` would never be set).
            let begin = Instant::now();
            let mut seed = 0u64;
            while !stop.load(Ordering::Relaxed) && begin.elapsed() < Duration::from_secs(10) {
                match server.submit("heavy", request(4, seed)) {
                    Ok(_) => seed += 1,
                    Err(ServeError::QueueFull { .. }) => {
                        std::thread::sleep(Duration::from_micros(200));
                    }
                    Err(e) => panic!("heavy submit failed: {e:?}"),
                }
            }
        });

        // Let the saturator build a standing backlog before probing.
        while server.stats().model("heavy").expect("stats").pending < 16 {
            std::thread::sleep(Duration::from_millis(1));
        }
        for i in 0..20u64 {
            let begin = Instant::now();
            let ticket = server
                .submit("light", request(4, 1000 + i))
                .expect("light submit");
            ticket.wait().expect("light response");
            waits.push(begin.elapsed());
            std::thread::sleep(Duration::from_millis(2));
        }
        stop.store(true, Ordering::Relaxed);
    });
    let heavy = server.stats().model("heavy").expect("stats").clone();
    server.shutdown();

    // The heavy tenant really was being served the whole time — this is
    // contention, not an idle server.
    assert!(heavy.batches >= 20, "heavy tenant barely ran: {heavy:?}");
    waits.sort();
    let p99 = waits[waits.len() - 1]; // 20 samples: P99 is the max
    assert!(
        p99 <= window,
        "light tenant starved under heavy load: P99 wait {p99:?} > window {window:?} ({waits:?})"
    );
}

#[test]
fn concurrent_clients_race_one_plan_cache_under_eviction_pressure() {
    // Capacity 1 forces every distinct model compile to evict the previous
    // entry, so concurrent clients constantly race memory-hit / disk-hit /
    // miss paths on one shared cache.
    let cache = Arc::new(PlanCache::with_capacity(1));
    let channel_counts = [2usize, 4, 6];

    let handles: Vec<_> = (0..4u64)
        .map(|tid| {
            let cache = Arc::clone(&cache);
            std::thread::spawn(move || {
                for round in 0..3u64 {
                    for &channels in &channel_counts {
                        let graph = conv_graph(channels);
                        let mut compiler = Compiler::new(CompilerOptions::default());
                        let (model, _) = cache
                            .compile_batched(&mut compiler, &graph)
                            .expect("cached compile");
                        let inputs = request(1, tid * 1000 + round * 10 + channels as u64);
                        let report = Executor::new(DeviceSpec::snapdragon_865_cpu())
                            .without_cache_simulation()
                            .run_compiled_batched(&model, &inputs)
                            .expect("run");
                        assert_eq!(report.outputs[0].shape().dims(), &[1, channels, 8, 8]);
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("client thread");
    }

    let stats = cache.stats();
    assert_eq!(stats.capacity, 1);
    assert!(
        stats.models <= 1,
        "capped cache held {} entries",
        stats.models
    );
    assert!(stats.evictions > 0, "expected eviction pressure: {stats:?}");
    // Evicted entries still warm-start from their retained plan seeds.
    assert!(
        stats.disk_hits > 0,
        "expected disk-tier warm starts: {stats:?}"
    );
}

#[test]
fn tenant_loaded_from_dnnfg_file_matches_in_memory_tenant_bit_for_bit() {
    let graph = conv_graph(4);
    let dir = std::env::temp_dir().join("dnnf-serve-dnnfg-test");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("conv4.dnnfg");
    dnnf_io::save(&graph, &path).expect("export model");

    let server = Server::builder(ServeConfig {
        workers: 1,
        batch_window: Duration::ZERO, // pass-through
        ..ServeConfig::default()
    })
    .model("memory", compile(&graph))
    .expect("register in-memory tenant")
    .model_from_dnnfg("file", &path)
    .expect("register file-loaded tenant")
    .start();

    let inputs = request(2, 77);
    let from_memory = server
        .submit("memory", inputs.clone())
        .expect("submit memory")
        .wait()
        .expect("memory response");
    let from_file = server
        .submit("file", inputs)
        .expect("submit file")
        .wait()
        .expect("file response");
    server.shutdown();
    std::fs::remove_file(&path).ok();

    assert_eq!(from_file.outputs.len(), from_memory.outputs.len());
    for (got, want) in from_file.outputs.iter().zip(&from_memory.outputs) {
        assert_eq!(got.shape(), want.shape());
        // Tolerance 0: the file round-trip must not perturb a single bit.
        assert_eq!(got.data(), want.data());
    }
}

#[test]
fn model_from_dnnfg_surfaces_load_errors_without_panicking() {
    let missing = match Server::builder(ServeConfig::default())
        .model_from_dnnfg("ghost", "/nonexistent/ghost.dnnfg")
    {
        Ok(_) => panic!("missing file must be rejected"),
        Err(e) => e,
    };
    match &missing {
        ServeError::ModelLoad { path, .. } => assert!(path.contains("ghost.dnnfg")),
        other => panic!("expected ModelLoad, got {other:?}"),
    }
    assert!(missing.to_string().contains("cannot load model"));

    // A corrupt file fails strict import and is rejected the same way.
    let dir = std::env::temp_dir().join("dnnf-serve-dnnfg-test");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("corrupt.dnnfg");
    let mut text = dnnf_io::to_text(&conv_graph(4));
    text.truncate(text.len() / 2);
    std::fs::write(&path, text).expect("write corrupt file");
    let corrupt = match Server::builder(ServeConfig::default()).model_from_dnnfg("corrupt", &path) {
        Ok(_) => panic!("corrupt file must be rejected"),
        Err(e) => e,
    };
    std::fs::remove_file(&path).ok();
    assert!(matches!(corrupt, ServeError::ModelLoad { .. }));
}
