//! Roofline-style device cost model.
//!
//! Converts the machine-independent work description of a fused kernel
//! ([`BlockWork`]) into latency and utilization estimates for a specific
//! [`DeviceSpec`]. This is the stand-in for running on the paper's phones:
//! the model captures the first-order effects fusion changes — memory
//! traffic, kernel-launch count, per-kernel parallelism — while staying
//! deliberately simple and documented.

use crate::{DeviceKind, DeviceSpec};

/// Machine-independent description of one kernel's work.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct BlockWork {
    /// Floating point operations performed by the kernel.
    pub flops: u64,
    /// Elements read from and written to memory outside the kernel.
    pub boundary_elems: u64,
    /// Number of operators with access-disrupting mapping types (Shuffle /
    /// One-to-Many) fused into the kernel.
    pub access_disrupting_ops: usize,
    /// Whether the kernel contains a compute-intensive (Many-to-Many) anchor.
    pub has_compute_anchor: bool,
    /// Number of output elements of the kernel's widest parallel step (used
    /// to estimate achievable parallelism — a fused kernel runs step by
    /// step, each step parallelized over its own output).
    pub output_elems: u64,
}

/// A device-calibrated cost model.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceCostModel {
    spec: DeviceSpec,
}

impl DeviceCostModel {
    /// Creates a cost model for a device.
    #[must_use]
    pub fn new(spec: DeviceSpec) -> Self {
        DeviceCostModel { spec }
    }

    /// The underlying device.
    #[must_use]
    pub fn spec(&self) -> &DeviceSpec {
        &self.spec
    }

    /// Memory traffic in bytes for a kernel's boundary elements.
    #[must_use]
    pub fn boundary_bytes(&self, work: &BlockWork) -> u64 {
        work.boundary_elems * self.spec.elem_bytes
    }

    /// Fraction of the device's parallel units a kernel with this many
    /// output elements can keep busy (small kernels under-utilize wide
    /// devices — the effect that makes deep, thin models slow in Table 1).
    #[must_use]
    pub fn parallel_efficiency(&self, work: &BlockWork) -> f64 {
        let per_unit = 256u64; // elements of work needed to fill one unit
        let usable = (work.output_elems / per_unit).max(1) as f64;
        (usable / self.spec.parallel_units as f64).min(1.0)
    }

    /// Estimated latency of one kernel in microseconds.
    #[must_use]
    pub fn kernel_latency_us(&self, work: &BlockWork) -> f64 {
        let penalty = if work.has_compute_anchor && work.access_disrupting_ops > 0 {
            1.0 + self.spec.access_disruption_penalty * work.access_disrupting_ops as f64
        } else {
            1.0
        };
        let efficiency = self.parallel_efficiency(work).max(0.05);
        let compute_us = work.flops as f64 * penalty / (self.spec.flops_per_us() * efficiency);
        let memory_us = self.boundary_bytes(work) as f64 / self.spec.bytes_per_us();
        compute_us.max(memory_us) + self.spec.kernel_launch_us
    }

    /// Estimated latency of a whole model given its kernels' work
    /// descriptions.
    #[must_use]
    pub fn model_latency_us(&self, blocks: &[BlockWork]) -> f64 {
        blocks.iter().map(|b| self.kernel_latency_us(b)).sum()
    }

    /// Estimated processor utilization (percent) over a whole model: the
    /// work-weighted average of per-kernel parallel efficiency, discounted by
    /// the fraction of time spent in kernel-launch overhead.
    #[must_use]
    pub fn utilization_percent(&self, blocks: &[BlockWork]) -> f64 {
        if blocks.is_empty() {
            return 0.0;
        }
        let total_latency = self.model_latency_us(blocks);
        if total_latency <= 0.0 {
            return 0.0;
        }
        let launch_time = blocks.len() as f64 * self.spec.kernel_launch_us;
        let busy_fraction = 1.0 - (launch_time / total_latency).min(1.0);
        let weighted_eff: f64 = blocks
            .iter()
            .map(|b| self.parallel_efficiency(b) * self.kernel_latency_us(b))
            .sum::<f64>()
            / total_latency;
        // Base utilization floor reflects that even launch-bound execution
        // keeps some units busy.
        let base = match self.spec.kind {
            DeviceKind::MobileCpu => 0.55,
            DeviceKind::MobileGpu => 0.60,
        };
        100.0 * (base + (1.0 - base) * busy_fraction * weighted_eff).min(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn conv_like() -> BlockWork {
        BlockWork {
            flops: 200_000_000,
            boundary_elems: 2_000_000,
            access_disrupting_ops: 0,
            has_compute_anchor: true,
            output_elems: 1_000_000,
        }
    }

    fn elementwise_like() -> BlockWork {
        BlockWork {
            flops: 1_000_000,
            boundary_elems: 2_000_000,
            access_disrupting_ops: 0,
            has_compute_anchor: false,
            output_elems: 1_000_000,
        }
    }

    #[test]
    fn compute_bound_kernels_scale_with_flops() {
        let model = DeviceCostModel::new(DeviceSpec::snapdragon_865_cpu());
        let small = BlockWork {
            flops: 10_000_000,
            ..conv_like()
        };
        assert!(model.kernel_latency_us(&conv_like()) > model.kernel_latency_us(&small));
    }

    #[test]
    fn memory_bound_kernels_scale_with_traffic() {
        let model = DeviceCostModel::new(DeviceSpec::snapdragon_865_cpu());
        let heavy = BlockWork {
            boundary_elems: 20_000_000,
            ..elementwise_like()
        };
        assert!(model.kernel_latency_us(&heavy) > model.kernel_latency_us(&elementwise_like()));
    }

    #[test]
    fn fusing_elementwise_kernels_saves_latency() {
        // Two separate element-wise kernels vs one fused kernel with the same
        // FLOPs but half the boundary traffic and one launch.
        let model = DeviceCostModel::new(DeviceSpec::snapdragon_865_gpu());
        let separate = vec![elementwise_like(), elementwise_like()];
        let fused = vec![BlockWork {
            flops: 2_000_000,
            boundary_elems: 2_000_000,
            ..elementwise_like()
        }];
        assert!(model.model_latency_us(&fused) < model.model_latency_us(&separate));
    }

    #[test]
    fn gpu_benefits_more_from_launch_reduction_than_cpu() {
        let cpu = DeviceCostModel::new(DeviceSpec::snapdragon_865_cpu());
        let gpu = DeviceCostModel::new(DeviceSpec::snapdragon_865_gpu());
        let many: Vec<BlockWork> = (0..50).map(|_| elementwise_like()).collect();
        let few = vec![BlockWork {
            flops: 50 * 1_000_000,
            boundary_elems: 2_000_000,
            ..elementwise_like()
        }];
        let cpu_speedup = cpu.model_latency_us(&many) / cpu.model_latency_us(&few);
        let gpu_speedup = gpu.model_latency_us(&many) / gpu.model_latency_us(&few);
        assert!(
            gpu_speedup > cpu_speedup,
            "gpu {gpu_speedup} vs cpu {cpu_speedup}"
        );
    }

    #[test]
    fn access_disruption_penalizes_anchored_kernels_only() {
        let model = DeviceCostModel::new(DeviceSpec::snapdragon_865_cpu());
        let clean = conv_like();
        let disrupted = BlockWork {
            access_disrupting_ops: 2,
            ..conv_like()
        };
        assert!(model.kernel_latency_us(&disrupted) > model.kernel_latency_us(&clean));
        let eltwise_disrupted = BlockWork {
            access_disrupting_ops: 2,
            ..elementwise_like()
        };
        assert!(
            (model.kernel_latency_us(&eltwise_disrupted)
                - model.kernel_latency_us(&elementwise_like()))
            .abs()
                < 1e-9
        );
    }

    #[test]
    fn utilization_increases_with_coarser_kernels() {
        let model = DeviceCostModel::new(DeviceSpec::snapdragon_865_gpu());
        let many: Vec<BlockWork> = (0..100)
            .map(|_| BlockWork {
                output_elems: 10_000,
                flops: 100_000,
                boundary_elems: 20_000,
                ..BlockWork::default()
            })
            .collect();
        let few: Vec<BlockWork> = (0..5)
            .map(|_| BlockWork {
                output_elems: 200_000,
                flops: 2_000_000,
                boundary_elems: 400_000,
                ..BlockWork::default()
            })
            .collect();
        assert!(model.utilization_percent(&few) > model.utilization_percent(&many));
        assert!(model.utilization_percent(&few) <= 100.0);
        assert_eq!(model.utilization_percent(&[]), 0.0);
    }

    #[test]
    fn small_kernels_underutilize_wide_devices() {
        let model = DeviceCostModel::new(DeviceSpec::snapdragon_865_gpu());
        let tiny = BlockWork {
            output_elems: 128,
            ..elementwise_like()
        };
        let big = BlockWork {
            output_elems: 4_000_000,
            ..elementwise_like()
        };
        assert!(model.parallel_efficiency(&tiny) < model.parallel_efficiency(&big));
        assert!(model.parallel_efficiency(&big) <= 1.0);
    }
}
