//! Deterministic structural fingerprints for graphs.
//!
//! A [`Fingerprint`] is a 128-bit FNV-1a hash over a canonical byte
//! serialization of everything that determines what a compiled plan *means*:
//!
//! * **topology** — every node's operator kind and its input/output value
//!   wiring, in insertion order (insertion order is itself structural: it is
//!   how `ValueId`s and `NodeId`s are assigned);
//! * **operator attributes** — each node's [`dnnf_ops::Attrs`] in its
//!   canonical (name-ordered) textual form;
//! * **shapes and dtypes** — every value's inferred shape and element type,
//!   plus its role (input / weight / intermediate / output) and which values
//!   are marked as graph outputs;
//! * **weight identities** — each weight's *name* (the runtime materializes
//!   missing weight data deterministically from the name, so the name is the
//!   data's identity) and, when explicit data is attached, the exact bits of
//!   that data;
//! * **binding names** — input and weight names (inference binds input
//!   tensors by name, so two graphs that differ only in an input name are
//!   *not* interchangeable at run time).
//!
//! The model name and intermediate-value names are deliberately excluded:
//! they are labels, not structure, so two structurally identical models keyed
//! under different names share one compilation.
//!
//! The fingerprint is the cache key of the shape-specialized compilation
//! cache (`dnnf-runtime`'s `PlanCache`): compiled plans are keyed by
//! `(fingerprint, shape signature, compiler options)`, and any structural
//! change — an extra node, a different stride, a reshaped weight, different
//! weight data — changes the fingerprint and therefore invalidates the
//! cached plan. Hashing is fully deterministic across processes and hosts
//! (no pointer values, no `std::hash::Hash` randomization), which is what
//! makes the on-disk cache format trustworthy across restarts.

use std::fmt;

use crate::Graph;

/// 128-bit FNV-1a offset basis.
const FNV128_OFFSET: u128 = 0x6c62_272e_07bb_0142_62b8_2175_6295_c58d;
/// 128-bit FNV-1a prime.
const FNV128_PRIME: u128 = 0x0000_0000_0100_0000_0000_0000_0000_013b;

/// A deterministic 128-bit structural hash of a [`Graph`].
///
/// Stable across processes, hosts and compilations of this crate: the hash
/// covers only canonical graph bytes, never addresses or randomized state.
/// Display/parse round-trips through 32 lowercase hex digits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Fingerprint(u128);

impl Fingerprint {
    /// The raw 128-bit value.
    #[must_use]
    pub fn as_u128(self) -> u128 {
        self.0
    }

    /// Parses the 32-hex-digit form produced by `Display`.
    #[must_use]
    pub fn from_hex(text: &str) -> Option<Self> {
        if text.len() != 32 {
            return None;
        }
        u128::from_str_radix(text, 16).ok().map(Fingerprint)
    }
}

impl fmt::Display for Fingerprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:032x}", self.0)
    }
}

/// Incremental 128-bit FNV-1a hasher over a canonical byte stream.
#[derive(Debug, Clone)]
pub(crate) struct Hasher {
    state: u128,
}

impl Hasher {
    pub(crate) fn new() -> Self {
        Hasher {
            state: FNV128_OFFSET,
        }
    }

    pub(crate) fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= u128::from(b);
            self.state = self.state.wrapping_mul(FNV128_PRIME);
        }
    }

    /// Writes a length-prefixed byte string, so `("ab", "c")` and
    /// `("a", "bc")` hash differently.
    pub(crate) fn write_str(&mut self, s: &str) {
        self.write_usize(s.len());
        self.write(s.as_bytes());
    }

    pub(crate) fn write_usize(&mut self, v: usize) {
        self.write(&(v as u64).to_le_bytes());
    }

    pub(crate) fn finish(&self) -> Fingerprint {
        Fingerprint(self.state)
    }
}

/// Computes the structural fingerprint of a graph. See the module docs for
/// exactly what is (and is not) covered.
#[must_use]
pub(crate) fn graph_fingerprint(graph: &Graph) -> Fingerprint {
    let mut h = Hasher::new();

    // Values: shape, dtype, role, and the binding identity of inputs and
    // weights. Producer/consumer wiring is covered from the node side.
    h.write_usize(graph.value_count());
    for value in graph.values() {
        h.write(b"v");
        h.write_usize(value.shape.dims().len());
        for &d in value.shape.dims() {
            h.write_usize(d);
        }
        h.write_str(&format!("{:?}", value.dtype));
        h.write(match value.kind {
            crate::ValueKind::Input => b"i",
            crate::ValueKind::Weight => b"w",
            crate::ValueKind::Intermediate => b"t",
            crate::ValueKind::Output => b"o",
        });
        match value.kind {
            crate::ValueKind::Input | crate::ValueKind::Weight => h.write_str(&value.name),
            _ => h.write_str(""),
        }
        if value.is_weight() {
            match graph.weight_data(value.id) {
                // Explicit data: the exact bits are the identity.
                Some(data) => {
                    h.write(b"d");
                    h.write_usize(data.data().len());
                    for &x in data.data() {
                        h.write(&x.to_bits().to_le_bytes());
                    }
                }
                // Name-seeded data: the name (hashed above) is the identity.
                None => h.write(b"n"),
            }
        }
    }

    // Nodes: operator, canonical attribute text, and value wiring.
    h.write_usize(graph.node_count());
    for node in graph.nodes() {
        h.write(b"n");
        h.write_str(node.op.name());
        h.write_str(&node.attrs.fingerprint());
        h.write_usize(node.inputs.len());
        for &v in &node.inputs {
            h.write_usize(v.index());
        }
        h.write_usize(node.outputs.len());
        for &v in &node.outputs {
            h.write_usize(v.index());
        }
    }

    // Output marking, in marking order.
    h.write_usize(graph.outputs().len());
    for &o in graph.outputs() {
        h.write_usize(o.index());
    }

    h.finish()
}

/// Builds the human-readable shape signature of a graph: every input's name
/// and shape, in input order (`x=1x3x224x224;mask=1x128`). Part of the plan
/// cache key alongside the [`Fingerprint`] — redundant with it (shapes are
/// hashed too) but kept explicit so cache files and diagnostics stay
/// inspectable.
#[must_use]
pub(crate) fn shape_signature(graph: &Graph) -> String {
    let mut s = String::new();
    for (i, &id) in graph.inputs().iter().enumerate() {
        if i > 0 {
            s.push(';');
        }
        let v = graph.value(id);
        s.push_str(&v.name);
        s.push('=');
        let dims: Vec<String> = v.shape.dims().iter().map(ToString::to_string).collect();
        s.push_str(&dims.join("x"));
    }
    s
}

/// Builds the batch-polymorphic shape signature: identical to
/// [`shape_signature`] except every input's leading (batch) dimension is
/// printed as the symbolic `N` (`x=Nx3x224x224;mask=Nx128`). Rank-0 inputs
/// have no batch dimension and print unchanged. Keying a cache entry by this
/// signature expresses that one compiled plan serves any batch size.
#[must_use]
pub(crate) fn batch_shape_signature(graph: &Graph) -> String {
    let mut s = String::new();
    for (i, &id) in graph.inputs().iter().enumerate() {
        if i > 0 {
            s.push(';');
        }
        let v = graph.value(id);
        s.push_str(&v.name);
        s.push('=');
        let dims: Vec<String> = v
            .shape
            .dims()
            .iter()
            .enumerate()
            .map(|(axis, d)| {
                if axis == 0 {
                    "N".to_string()
                } else {
                    d.to_string()
                }
            })
            .collect();
        s.push_str(&dims.join("x"));
    }
    s
}

/// Builds the sequence-polymorphic shape signature: identical to
/// [`shape_signature`] except every input's *marked* sequence axis (see
/// `Graph::mark_seq_axis`) is printed as the symbolic `S`
/// (`token_ids=1;past_k0=2xSx8`). Unmarked inputs print unchanged. Keying a
/// cache entry by this signature expresses that one compiled plan serves
/// any sequence length — the autoregressive analogue of
/// [`batch_shape_signature`].
#[must_use]
pub(crate) fn seq_shape_signature(graph: &Graph) -> String {
    let mut s = String::new();
    for (i, &id) in graph.inputs().iter().enumerate() {
        if i > 0 {
            s.push(';');
        }
        let v = graph.value(id);
        s.push_str(&v.name);
        s.push('=');
        let seq_axis = graph.seq_axis(id);
        let dims: Vec<String> = v
            .shape
            .dims()
            .iter()
            .enumerate()
            .map(|(axis, d)| {
                if Some(axis) == seq_axis {
                    "S".to_string()
                } else {
                    d.to_string()
                }
            })
            .collect();
        s.push_str(&dims.join("x"));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnnf_ops::{Attrs, OpKind};
    use dnnf_tensor::{Shape, Tensor};

    fn base_graph() -> Graph {
        let mut g = Graph::new("base");
        let x = g.add_input("x", Shape::new(vec![1, 4, 8, 8]));
        let w = g.add_weight("conv.w", Shape::new(vec![4, 4, 3, 3]));
        let c = g
            .add_op(
                OpKind::Conv,
                Attrs::new().with_ints("pads", vec![1, 1, 1, 1]),
                &[x, w],
                "conv",
            )
            .unwrap()[0];
        let r = g.add_op(OpKind::Relu, Attrs::new(), &[c], "relu").unwrap()[0];
        g.mark_output(r);
        g
    }

    #[test]
    fn identical_construction_gives_identical_fingerprints() {
        assert_eq!(base_graph().fingerprint(), base_graph().fingerprint());
    }

    #[test]
    fn model_name_and_node_names_do_not_matter() {
        let mut g = Graph::new("other-name");
        let x = g.add_input("x", Shape::new(vec![1, 4, 8, 8]));
        let w = g.add_weight("conv.w", Shape::new(vec![4, 4, 3, 3]));
        let c = g
            .add_op(
                OpKind::Conv,
                Attrs::new().with_ints("pads", vec![1, 1, 1, 1]),
                &[x, w],
                "renamed-conv-node",
            )
            .unwrap()[0];
        let r = g
            .add_op(OpKind::Relu, Attrs::new(), &[c], "renamed-relu")
            .unwrap()[0];
        g.mark_output(r);
        assert_eq!(g.fingerprint(), base_graph().fingerprint());
    }

    #[test]
    fn topology_attrs_shapes_and_weights_all_invalidate() {
        let base = base_graph().fingerprint();

        // Extra node.
        let mut g = base_graph();
        let out = g.outputs()[0];
        let s = g
            .add_op(OpKind::Sigmoid, Attrs::new(), &[out], "sig")
            .unwrap()[0];
        g.mark_output(s);
        assert_ne!(g.fingerprint(), base, "topology change must invalidate");

        // Different attribute value.
        let mut g = Graph::new("attrs");
        let x = g.add_input("x", Shape::new(vec![1, 4, 8, 8]));
        let w = g.add_weight("conv.w", Shape::new(vec![4, 4, 3, 3]));
        let c = g
            .add_op(OpKind::Conv, Attrs::new(), &[x, w], "conv")
            .unwrap()[0];
        let r = g.add_op(OpKind::Relu, Attrs::new(), &[c], "relu").unwrap()[0];
        g.mark_output(r);
        assert_ne!(g.fingerprint(), base, "attr change must invalidate");

        // Different input shape.
        let mut g = Graph::new("shape");
        let x = g.add_input("x", Shape::new(vec![1, 4, 16, 16]));
        let w = g.add_weight("conv.w", Shape::new(vec![4, 4, 3, 3]));
        let c = g
            .add_op(
                OpKind::Conv,
                Attrs::new().with_ints("pads", vec![1, 1, 1, 1]),
                &[x, w],
                "conv",
            )
            .unwrap()[0];
        let r = g.add_op(OpKind::Relu, Attrs::new(), &[c], "relu").unwrap()[0];
        g.mark_output(r);
        assert_ne!(g.fingerprint(), base, "shape change must invalidate");

        // Different weight name (name-seeded data would differ).
        let mut g = Graph::new("wname");
        let x = g.add_input("x", Shape::new(vec![1, 4, 8, 8]));
        let w = g.add_weight("conv.w2", Shape::new(vec![4, 4, 3, 3]));
        let c = g
            .add_op(
                OpKind::Conv,
                Attrs::new().with_ints("pads", vec![1, 1, 1, 1]),
                &[x, w],
                "conv",
            )
            .unwrap()[0];
        let r = g.add_op(OpKind::Relu, Attrs::new(), &[c], "relu").unwrap()[0];
        g.mark_output(r);
        assert_ne!(g.fingerprint(), base, "weight identity must invalidate");
    }

    #[test]
    fn explicit_weight_data_is_part_of_the_identity() {
        let mut with_data = base_graph();
        let w = with_data
            .values()
            .find(|v| v.is_weight())
            .map(|v| v.id)
            .unwrap();
        let base = with_data.fingerprint();
        with_data
            .set_weight_data(w, Tensor::full(Shape::new(vec![4, 4, 3, 3]), 0.25))
            .unwrap();
        let with_quarter = with_data.fingerprint();
        assert_ne!(with_quarter, base, "attaching data must invalidate");
        with_data
            .set_weight_data(w, Tensor::full(Shape::new(vec![4, 4, 3, 3]), 0.5))
            .unwrap();
        assert_ne!(
            with_data.fingerprint(),
            with_quarter,
            "changing data bits must invalidate"
        );
    }

    #[test]
    fn output_marking_matters() {
        // Same nodes, but the intermediate conv output additionally marked.
        let mut g = Graph::new("marks");
        let x = g.add_input("x", Shape::new(vec![1, 4, 8, 8]));
        let w = g.add_weight("conv.w", Shape::new(vec![4, 4, 3, 3]));
        let c = g
            .add_op(
                OpKind::Conv,
                Attrs::new().with_ints("pads", vec![1, 1, 1, 1]),
                &[x, w],
                "conv",
            )
            .unwrap()[0];
        let r = g.add_op(OpKind::Relu, Attrs::new(), &[c], "relu").unwrap()[0];
        g.mark_output(r);
        g.mark_output(c);
        assert_ne!(g.fingerprint(), base_graph().fingerprint());
    }

    #[test]
    fn input_names_bind_and_therefore_matter() {
        let mut g = Graph::new("in-name");
        let x = g.add_input("x2", Shape::new(vec![1, 4, 8, 8]));
        let w = g.add_weight("conv.w", Shape::new(vec![4, 4, 3, 3]));
        let c = g
            .add_op(
                OpKind::Conv,
                Attrs::new().with_ints("pads", vec![1, 1, 1, 1]),
                &[x, w],
                "conv",
            )
            .unwrap()[0];
        let r = g.add_op(OpKind::Relu, Attrs::new(), &[c], "relu").unwrap()[0];
        g.mark_output(r);
        assert_ne!(g.fingerprint(), base_graph().fingerprint());
    }

    #[test]
    fn hex_round_trip_and_shape_signature() {
        let g = base_graph();
        let fp = g.fingerprint();
        let hex = fp.to_string();
        assert_eq!(hex.len(), 32);
        assert_eq!(Fingerprint::from_hex(&hex), Some(fp));
        assert_eq!(Fingerprint::from_hex("zz"), None);
        assert_eq!(Fingerprint::from_hex(&"0".repeat(31)), None);
        assert_eq!(g.shape_signature(), "x=1x4x8x8");
    }

    #[test]
    fn batch_shape_signature_symbolizes_leading_dim() {
        let g = base_graph();
        assert_eq!(g.batch_shape_signature(), "x=Nx4x8x8");
        // Every batch variant of the same model shares one signature.
        let g8 = g.with_batch_size(8).unwrap();
        assert_eq!(g8.batch_shape_signature(), g.batch_shape_signature());
        assert_ne!(g8.shape_signature(), g.shape_signature());
    }

    #[test]
    fn seq_shape_signature_symbolizes_only_marked_axes() {
        let mut g = Graph::new("seq-sig");
        let q = g.add_input("q", Shape::new(vec![2, 1, 8]));
        let past = g.add_input("past", Shape::new(vec![2, 6, 8]));
        g.mark_seq_axis(past, 1).unwrap();
        let kt = g
            .add_op(
                OpKind::Transpose,
                Attrs::new().with_ints("perm", vec![0, 2, 1]),
                &[past],
                "kt",
            )
            .unwrap()[0];
        let scores = g
            .add_op(OpKind::MatMul, Attrs::new(), &[q, kt], "scores")
            .unwrap()[0];
        g.mark_output(scores);
        assert_eq!(g.seq_shape_signature(), "q=2x1x8;past=2xSx8");
        // Every sequence-length variant shares one signature.
        let g3 = g.with_seq_len(3).unwrap();
        assert_eq!(g3.seq_shape_signature(), g.seq_shape_signature());
        assert_ne!(g3.shape_signature(), g.shape_signature());
        // Unmarked graphs degrade to the plain static signature.
        let plain = base_graph();
        assert_eq!(plain.seq_shape_signature(), plain.shape_signature());
    }
}
