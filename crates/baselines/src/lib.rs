//! Baseline fusion strategies the paper compares DNNFusion against.
//!
//! The paper's competitors (MNN, TVM, TensorFlow-Lite, PyTorch-Mobile) all
//! use *fixed-pattern* operator fusion: a hand-maintained list of operator
//! sequences (Conv+Bias+ReLU, GEMM+Bias+Activation, short element-wise
//! chains, …) that get merged when matched exactly. This crate models each
//! framework's pattern set with a [`PatternFuser`], producing ordinary
//! [`dnnf_core::FusionPlan`]s so the same runtime can execute and measure them, plus a
//! TASO-like substitution-only pass ([`taso_optimize`]) used by the Figure 6
//! comparison.
//!
//! These are *models of* the competitors' fusion behaviour, not ports of
//! their code: the pattern sets are chosen to reflect what each framework's
//! documentation and the paper's own comparison describe (e.g. TVM fuses an
//! anchor with a following chain of injective operators, TFLite only fuses
//! bias+activation into Conv/FC, PyTorch-Mobile folds Conv+BN+ReLU).

#![warn(missing_docs)]

mod patterns;
mod taso;

pub use patterns::{BaselineFramework, PatternConfig, PatternFuser};
pub use taso::taso_optimize;
