//! Custom model fusion: walk through DNNFusion's individual phases on a
//! hand-built graph — ECG annotation, mapping-type analysis, graph
//! rewriting, fusion planning and code generation — the way a compiler
//! developer would debug a new model.
//!
//! Run with `cargo run --release --example custom_model_fusion`.

use std::error::Error;

use dnnfusion::core::rewrite::RewriteEngine;
use dnnfusion::core::{
    analyze_pair, codegen, AnalyticLatencyModel, Ecg, FusionPlanner, FusionVerdict, PlanOptions,
};
use dnnfusion::graph::Graph;
use dnnfusion::ops::{Attrs, MappingType, OpKind};
use dnnfusion::profiledb::ProfileDatabase;
use dnnfusion::tensor::Shape;

fn main() -> Result<(), Box<dyn Error>> {
    // A graph with a rewritable prefix (A⊙C + A⊙B) feeding a GEMM with a
    // transpose epilogue — the kind of mixed structure the paper targets.
    let mut graph = Graph::new("custom");
    let a = graph.add_input("A", Shape::new(vec![32, 32]));
    let b = graph.add_weight("B", Shape::new(vec![32, 32]));
    let c = graph.add_weight("C", Shape::new(vec![32, 32]));
    let ac = graph.add_op(OpKind::Mul, Attrs::new(), &[a, c], "ac")?[0];
    let ab = graph.add_op(OpKind::Mul, Attrs::new(), &[a, b], "ab")?[0];
    let sum = graph.add_op(OpKind::Add, Attrs::new(), &[ac, ab], "sum")?[0];
    let w = graph.add_weight("W", Shape::new(vec![32, 16]));
    let mm = graph.add_op(OpKind::MatMul, Attrs::new(), &[sum, w], "proj")?[0];
    let act = graph.add_op(OpKind::Gelu, Attrs::new(), &[mm], "gelu")?[0];
    let out = graph.add_op(
        OpKind::Transpose,
        Attrs::new().with_ints("perm", vec![1, 0]),
        &[act],
        "transpose",
    )?[0];
    graph.mark_output(out);

    // Phase 0: the mapping-type analysis that drives everything.
    println!("Table 3 spot checks:");
    for (first, second) in [
        (MappingType::OneToOne, MappingType::ManyToMany),
        (MappingType::ManyToMany, MappingType::ManyToMany),
        (MappingType::ManyToMany, MappingType::Shuffle),
    ] {
        let decision = analyze_pair(first, second);
        let verdict = match decision.verdict {
            FusionVerdict::Direct => "green",
            FusionVerdict::Profile => "yellow",
            FusionVerdict::Break => "red",
        };
        println!(
            "  {first} + {second} -> {} ({verdict})",
            decision.fused_type
        );
    }

    // Phase 1: graph rewriting.
    let engine = RewriteEngine::with_default_rules();
    let (rewritten, applied) = engine.run(&graph);
    println!(
        "\ngraph rewriting: {} -> {} operators",
        graph.node_count(),
        rewritten.node_count()
    );
    for rewrite in &applied {
        println!(
            "  applied {} ({:?}): saved {} FLOPs",
            rewrite.rule, rewrite.category, rewrite.flops_saved
        );
    }

    // Phase 2: ECG + fusion plan.
    let ecg = Ecg::new(rewritten);
    for node in ecg.graph().nodes() {
        println!(
            "  node `{}` [{}] mapping={} CIL={}",
            node.name,
            node.op,
            ecg.mapping_type(node.id),
            node.is_compute_intensive()
        );
    }
    let latency = AnalyticLatencyModel::default();
    let planner = FusionPlanner::new(&ecg, &latency, PlanOptions::default());
    let mut db = ProfileDatabase::new();
    let plan = planner.plan(&mut db);
    println!("\nfusion plan: {} blocks", plan.fused_layer_count());

    // Phase 3: fused code generation.
    for block in plan.blocks() {
        let fused = codegen::generate_fused_op(&ecg, &plan, block);
        println!(
            "\nblock {} -> `{}` ({} ops, {} mapping, layout {})",
            block.id,
            fused.name,
            fused.fused_op_count(),
            fused.mapping_type,
            fused.layout
        );
        print!("{}", fused.source);
    }
    println!(
        "\nprofiling database now holds {} entries for future compilations",
        db.len()
    );
    Ok(())
}
