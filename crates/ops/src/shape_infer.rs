//! Shape inference for every operator.
//!
//! Shape inference runs when a computational graph is built and is what lets
//! DNNFusion's analyses (intermediate-result sizes, FLOP counts, fusion-seed
//! selection) work without executing anything.

use dnnf_tensor::{broadcast_shapes, Shape};

use crate::{Attrs, OpError, OpKind};

/// Infers the output shape(s) of `op` given its input shapes and attributes.
///
/// Most operators produce exactly one output; `Split` produces several.
///
/// # Errors
///
/// Returns an [`OpError`] if the arity, shapes or attributes are invalid for
/// the operator.
pub fn infer_shapes(op: OpKind, attrs: &Attrs, inputs: &[Shape]) -> Result<Vec<Shape>, OpError> {
    check_arity(op, inputs.len())?;
    use OpKind::*;
    let out = match op {
        // Unary element-wise (and Cast/Identity/Not): shape-preserving.
        _ if op.is_elementwise_unary() => vec![inputs[0].clone()],
        // Binary element-wise: multidirectional broadcasting.
        _ if op.is_elementwise_binary() => {
            vec![broadcast_pair(op, &inputs[0], &inputs[1])?]
        }
        Where => {
            let cond_x = broadcast_pair(op, &inputs[0], &inputs[1])?;
            vec![broadcast_pair(op, &cond_x, &inputs[2])?]
        }
        BatchNormalization
        | InstanceNormalization
        | LayerNormalization
        | Softmax
        | LogSoftmax
        | CumSum => vec![inputs[0].clone()],
        Concat => infer_concat(attrs, inputs).map(|s| vec![s])?,
        Slice => infer_slice(attrs, &inputs[0]).map(|s| vec![s])?,
        Split => infer_split(attrs, &inputs[0])?,
        Pad => infer_pad(attrs, &inputs[0]).map(|s| vec![s])?,
        Expand => infer_expand(attrs, &inputs[0]).map(|s| vec![s])?,
        Gather => infer_gather(attrs, inputs).map(|s| vec![s])?,
        Resize | Upsample => infer_resize(op, attrs, &inputs[0]).map(|s| vec![s])?,
        Tile => infer_tile(attrs, &inputs[0]).map(|s| vec![s])?,
        Conv => infer_conv(attrs, inputs).map(|s| vec![s])?,
        ConvTranspose => infer_conv_transpose(attrs, inputs).map(|s| vec![s])?,
        Gemm => infer_gemm(attrs, inputs).map(|s| vec![s])?,
        MatMul => infer_matmul(inputs).map(|s| vec![s])?,
        AveragePool | MaxPool => infer_pool(op, attrs, &inputs[0]).map(|s| vec![s])?,
        GlobalAveragePool => infer_global_pool(&inputs[0]).map(|s| vec![s])?,
        ReduceSum | ReduceMean | ReduceProd | ReduceMax | ReduceMin => {
            infer_reduce(attrs, &inputs[0]).map(|s| vec![s])?
        }
        ArgMax => infer_argmax(attrs, &inputs[0]).map(|s| vec![s])?,
        Einsum => return Err(OpError::Unsupported { op }),
        Reshape => infer_reshape(op, attrs, &inputs[0]).map(|s| vec![s])?,
        Flatten => infer_flatten(attrs, &inputs[0]).map(|s| vec![s])?,
        Squeeze => infer_squeeze(attrs, &inputs[0]).map(|s| vec![s])?,
        Unsqueeze => infer_unsqueeze(attrs, &inputs[0]).map(|s| vec![s])?,
        Transpose => infer_transpose(attrs, &inputs[0]).map(|s| vec![s])?,
        DepthToSpace => infer_depth_to_space(attrs, &inputs[0]).map(|s| vec![s])?,
        SpaceToDepth => infer_space_to_depth(attrs, &inputs[0]).map(|s| vec![s])?,
        // Remaining One-to-One ops with data inputs handled above.
        _ => vec![inputs[0].clone()],
    };
    Ok(out)
}

fn check_arity(op: OpKind, actual: usize) -> Result<(), OpError> {
    let min = op.min_inputs();
    if actual < min {
        return Err(OpError::ArityMismatch {
            op,
            expected: min,
            actual,
        });
    }
    if let Some(max) = op.max_inputs() {
        if actual > max {
            return Err(OpError::ArityMismatch {
                op,
                expected: max,
                actual,
            });
        }
    }
    Ok(())
}

fn broadcast_pair(op: OpKind, a: &Shape, b: &Shape) -> Result<Shape, OpError> {
    broadcast_shapes(a, b).map_err(|_| OpError::InvalidShape {
        op,
        reason: format!("shapes {a} and {b} do not broadcast"),
    })
}

fn infer_concat(attrs: &Attrs, inputs: &[Shape]) -> Result<Shape, OpError> {
    let op = OpKind::Concat;
    let first = &inputs[0];
    let axis = first
        .normalize_axis(attrs.int_or("axis", 0))
        .map_err(|_| invalid_attr(op, "axis", "out of range"))?;
    let mut dims = first.dims().to_vec();
    for s in &inputs[1..] {
        if s.rank() != first.rank() {
            return Err(OpError::InvalidShape {
                op,
                reason: "rank mismatch across inputs".into(),
            });
        }
        for (ax, (&d, &d0)) in s.dims().iter().zip(first.dims()).enumerate() {
            if ax != axis && d != d0 {
                return Err(OpError::InvalidShape {
                    op,
                    reason: format!("non-concat axis {ax} differs: {d} vs {d0}"),
                });
            }
        }
        dims[axis] += s.dim(axis);
    }
    Ok(Shape::new(dims))
}

fn infer_slice(attrs: &Attrs, input: &Shape) -> Result<Shape, OpError> {
    let op = OpKind::Slice;
    let starts = attrs.ints_or("starts", &[]);
    let ends = attrs.ints_or("ends", &[]);
    let axes = attrs.ints_or("axes", &(0..starts.len() as i64).collect::<Vec<_>>());
    if starts.len() != ends.len() || starts.len() != axes.len() {
        return Err(invalid_attr(op, "starts/ends/axes", "length mismatch"));
    }
    let mut dims = input.dims().to_vec();
    for ((&s, &e), &ax) in starts.iter().zip(&ends).zip(&axes) {
        let axis = input
            .normalize_axis(ax)
            .map_err(|_| invalid_attr(op, "axes", "axis out of range"))?;
        let extent = input.dim(axis) as i64;
        let s = clamp_index(s, extent);
        let e = clamp_index(e, extent);
        dims[axis] = (e - s).max(0) as usize;
    }
    Ok(Shape::new(dims))
}

fn clamp_index(i: i64, extent: i64) -> i64 {
    let i = if i < 0 { i + extent } else { i };
    i.clamp(0, extent)
}

fn infer_split(attrs: &Attrs, input: &Shape) -> Result<Vec<Shape>, OpError> {
    let op = OpKind::Split;
    let axis = input
        .normalize_axis(attrs.int_or("axis", 0))
        .map_err(|_| invalid_attr(op, "axis", "out of range"))?;
    let extent = input.dim(axis);
    let splits = attrs.ints_or("split", &[]);
    let parts: Vec<usize> = if splits.is_empty() {
        let n = attrs.int_or("num_outputs", 2).max(1) as usize;
        if !extent.is_multiple_of(n) {
            return Err(OpError::InvalidShape {
                op,
                reason: format!("axis extent {extent} not divisible into {n} outputs"),
            });
        }
        vec![extent / n; n]
    } else {
        splits.iter().map(|&s| s as usize).collect()
    };
    if parts.iter().sum::<usize>() != extent {
        return Err(invalid_attr(
            op,
            "split",
            "sizes do not sum to the axis extent",
        ));
    }
    Ok(parts
        .into_iter()
        .map(|p| {
            let mut dims = input.dims().to_vec();
            dims[axis] = p;
            Shape::new(dims)
        })
        .collect())
}

fn infer_pad(attrs: &Attrs, input: &Shape) -> Result<Shape, OpError> {
    let op = OpKind::Pad;
    let pads = attrs.ints_or("pads", &vec![0; input.rank() * 2]);
    if pads.len() != input.rank() * 2 {
        return Err(invalid_attr(op, "pads", "expected 2*rank entries"));
    }
    let dims = input
        .dims()
        .iter()
        .enumerate()
        .map(|(i, &d)| (d as i64 + pads[i] + pads[i + input.rank()]).max(0) as usize)
        .collect();
    Ok(Shape::new(dims))
}

fn infer_expand(attrs: &Attrs, input: &Shape) -> Result<Shape, OpError> {
    let op = OpKind::Expand;
    let target = attrs.ints_or("shape", &[]);
    if target.is_empty() {
        return Err(invalid_attr(op, "shape", "missing target shape"));
    }
    let target = Shape::new(target.iter().map(|&d| d as usize).collect());
    broadcast_pair(op, input, &target)
}

fn infer_gather(attrs: &Attrs, inputs: &[Shape]) -> Result<Shape, OpError> {
    let op = OpKind::Gather;
    let data = &inputs[0];
    let indices = &inputs[1];
    let axis = data
        .normalize_axis(attrs.int_or("axis", 0))
        .map_err(|_| invalid_attr(op, "axis", "out of range"))?;
    let mut dims: Vec<usize> = data.dims()[..axis].to_vec();
    dims.extend_from_slice(indices.dims());
    dims.extend_from_slice(&data.dims()[axis + 1..]);
    Ok(Shape::new(dims))
}

fn infer_resize(op: OpKind, attrs: &Attrs, input: &Shape) -> Result<Shape, OpError> {
    let scales = match attrs.get("scales") {
        Some(crate::AttrValue::Floats(v)) => v.clone(),
        _ => vec![1.0; input.rank()],
    };
    if scales.len() != input.rank() {
        return Err(invalid_attr(
            op,
            "scales",
            "expected one scale per dimension",
        ));
    }
    let dims = input
        .dims()
        .iter()
        .zip(&scales)
        .map(|(&d, &s)| ((d as f32) * s).floor().max(1.0) as usize)
        .collect();
    Ok(Shape::new(dims))
}

fn infer_tile(attrs: &Attrs, input: &Shape) -> Result<Shape, OpError> {
    let op = OpKind::Tile;
    let repeats = attrs.ints_or("repeats", &vec![1; input.rank()]);
    if repeats.len() != input.rank() {
        return Err(invalid_attr(
            op,
            "repeats",
            "expected one repeat per dimension",
        ));
    }
    let dims = input
        .dims()
        .iter()
        .zip(&repeats)
        .map(|(&d, &r)| d * r.max(0) as usize)
        .collect();
    Ok(Shape::new(dims))
}

/// Spatial output extent for a conv/pool window.
fn window_out(
    input: usize,
    kernel: usize,
    pad_begin: usize,
    pad_end: usize,
    stride: usize,
    dilation: usize,
) -> usize {
    let effective = dilation * (kernel - 1) + 1;
    let padded = input + pad_begin + pad_end;
    if padded < effective {
        0
    } else {
        (padded - effective) / stride + 1
    }
}

fn conv_like_params(
    attrs: &Attrs,
    spatial_rank: usize,
    kernel_from_weight: Option<&[usize]>,
) -> (Vec<usize>, Vec<usize>, Vec<usize>, Vec<usize>) {
    let kernel: Vec<usize> = match kernel_from_weight {
        Some(k) => k.to_vec(),
        None => attrs
            .ints_or("kernel_shape", &vec![1; spatial_rank])
            .iter()
            .map(|&x| x as usize)
            .collect(),
    };
    let strides: Vec<usize> = attrs
        .ints_or("strides", &vec![1; spatial_rank])
        .iter()
        .map(|&x| x.max(1) as usize)
        .collect();
    let dilations: Vec<usize> = attrs
        .ints_or("dilations", &vec![1; spatial_rank])
        .iter()
        .map(|&x| x.max(1) as usize)
        .collect();
    let pads: Vec<usize> = attrs
        .ints_or("pads", &vec![0; spatial_rank * 2])
        .iter()
        .map(|&x| x.max(0) as usize)
        .collect();
    (kernel, strides, dilations, pads)
}

fn infer_conv(attrs: &Attrs, inputs: &[Shape]) -> Result<Shape, OpError> {
    let op = OpKind::Conv;
    let x = &inputs[0];
    let w = &inputs[1];
    if x.rank() < 3 || w.rank() != x.rank() {
        return Err(OpError::InvalidShape {
            op,
            reason: format!("expected N+2-D input and weight, got {x} and {w}"),
        });
    }
    let spatial_rank = x.rank() - 2;
    let group = attrs.int_or("group", 1).max(1) as usize;
    if x.dim(1) != w.dim(1) * group {
        return Err(OpError::InvalidShape {
            op,
            reason: format!(
                "input channels {} != weight channels {} * group {group}",
                x.dim(1),
                w.dim(1)
            ),
        });
    }
    let (kernel, strides, dilations, pads) =
        conv_like_params(attrs, spatial_rank, Some(&w.dims()[2..]));
    let mut dims = vec![x.dim(0), w.dim(0)];
    for i in 0..spatial_rank {
        dims.push(window_out(
            x.dim(2 + i),
            kernel[i],
            pads[i],
            pads[spatial_rank + i],
            strides[i],
            dilations[i],
        ));
    }
    Ok(Shape::new(dims))
}

fn infer_conv_transpose(attrs: &Attrs, inputs: &[Shape]) -> Result<Shape, OpError> {
    let op = OpKind::ConvTranspose;
    let x = &inputs[0];
    let w = &inputs[1];
    if x.rank() < 3 || w.rank() != x.rank() {
        return Err(OpError::InvalidShape {
            op,
            reason: "expected N+2-D input and weight".into(),
        });
    }
    let spatial_rank = x.rank() - 2;
    let group = attrs.int_or("group", 1).max(1) as usize;
    let (kernel, strides, dilations, pads) =
        conv_like_params(attrs, spatial_rank, Some(&w.dims()[2..]));
    // Weight layout is (C_in, C_out/group, k...).
    let mut dims = vec![x.dim(0), w.dim(1) * group];
    for i in 0..spatial_rank {
        let out = strides[i] * (x.dim(2 + i) - 1) + dilations[i] * (kernel[i] - 1) + 1;
        let out = out.saturating_sub(pads[i] + pads[spatial_rank + i]);
        dims.push(out);
    }
    Ok(Shape::new(dims))
}

fn infer_pool(op: OpKind, attrs: &Attrs, x: &Shape) -> Result<Shape, OpError> {
    if x.rank() < 3 {
        return Err(OpError::InvalidShape {
            op,
            reason: "expected N+2-D input".into(),
        });
    }
    let spatial_rank = x.rank() - 2;
    let (kernel, strides, dilations, pads) = conv_like_params(attrs, spatial_rank, None);
    let mut dims = vec![x.dim(0), x.dim(1)];
    for i in 0..spatial_rank {
        dims.push(window_out(
            x.dim(2 + i),
            kernel[i],
            pads[i],
            pads[spatial_rank + i],
            strides[i],
            dilations[i],
        ));
    }
    Ok(Shape::new(dims))
}

fn infer_global_pool(x: &Shape) -> Result<Shape, OpError> {
    if x.rank() < 3 {
        return Err(OpError::InvalidShape {
            op: OpKind::GlobalAveragePool,
            reason: "expected N+2-D input".into(),
        });
    }
    let mut dims = vec![x.dim(0), x.dim(1)];
    dims.extend(std::iter::repeat_n(1, x.rank() - 2));
    Ok(Shape::new(dims))
}

fn infer_gemm(attrs: &Attrs, inputs: &[Shape]) -> Result<Shape, OpError> {
    let op = OpKind::Gemm;
    let a = &inputs[0];
    let b = &inputs[1];
    if a.rank() != 2 || b.rank() != 2 {
        return Err(OpError::InvalidShape {
            op,
            reason: "Gemm operands must be rank-2".into(),
        });
    }
    let trans_a = attrs.int_or("transA", 0) != 0;
    let trans_b = attrs.int_or("transB", 0) != 0;
    let (m, ka) = if trans_a {
        (a.dim(1), a.dim(0))
    } else {
        (a.dim(0), a.dim(1))
    };
    let (kb, n) = if trans_b {
        (b.dim(1), b.dim(0))
    } else {
        (b.dim(0), b.dim(1))
    };
    if ka != kb {
        return Err(OpError::InvalidShape {
            op,
            reason: format!("inner dimensions differ: {ka} vs {kb}"),
        });
    }
    Ok(Shape::new(vec![m, n]))
}

fn infer_matmul(inputs: &[Shape]) -> Result<Shape, OpError> {
    let op = OpKind::MatMul;
    let a = &inputs[0];
    let b = &inputs[1];
    if a.rank() < 2 || b.rank() < 2 {
        return Err(OpError::InvalidShape {
            op,
            reason: "MatMul operands must be rank >= 2".into(),
        });
    }
    let (m, ka) = (a.dim(a.rank() - 2), a.dim(a.rank() - 1));
    let (kb, n) = (b.dim(b.rank() - 2), b.dim(b.rank() - 1));
    if ka != kb {
        return Err(OpError::InvalidShape {
            op,
            reason: format!("inner dimensions differ: {ka} vs {kb}"),
        });
    }
    let batch_a = Shape::new(a.dims()[..a.rank() - 2].to_vec());
    let batch_b = Shape::new(b.dims()[..b.rank() - 2].to_vec());
    let batch = broadcast_pair(op, &batch_a, &batch_b)?;
    let mut dims = batch.dims().to_vec();
    dims.push(m);
    dims.push(n);
    Ok(Shape::new(dims))
}

fn reduce_axes(attrs: &Attrs, input: &Shape) -> Result<Vec<usize>, OpError> {
    let axes = attrs.ints_or("axes", &[]);
    if axes.is_empty() {
        return Ok((0..input.rank()).collect());
    }
    axes.iter()
        .map(|&a| {
            input
                .normalize_axis(a)
                .map_err(|_| invalid_attr(OpKind::ReduceSum, "axes", "axis out of range"))
        })
        .collect()
}

fn infer_reduce(attrs: &Attrs, input: &Shape) -> Result<Shape, OpError> {
    let axes = reduce_axes(attrs, input)?;
    let keepdims = attrs.int_or("keepdims", 1) != 0;
    let mut dims = Vec::new();
    for (i, &d) in input.dims().iter().enumerate() {
        if axes.contains(&i) {
            if keepdims {
                dims.push(1);
            }
        } else {
            dims.push(d);
        }
    }
    Ok(Shape::new(dims))
}

fn infer_argmax(attrs: &Attrs, input: &Shape) -> Result<Shape, OpError> {
    let op = OpKind::ArgMax;
    let axis = input
        .normalize_axis(attrs.int_or("axis", 0))
        .map_err(|_| invalid_attr(op, "axis", "out of range"))?;
    let keepdims = attrs.int_or("keepdims", 1) != 0;
    let mut dims = input.dims().to_vec();
    if keepdims {
        dims[axis] = 1;
    } else {
        dims.remove(axis);
    }
    Ok(Shape::new(dims))
}

fn infer_reshape(op: OpKind, attrs: &Attrs, input: &Shape) -> Result<Shape, OpError> {
    let target = attrs.ints_or("shape", &[]);
    if target.is_empty() {
        return Err(invalid_attr(op, "shape", "missing target shape"));
    }
    let mut dims: Vec<usize> = Vec::with_capacity(target.len());
    let mut infer_pos = None;
    for (i, &t) in target.iter().enumerate() {
        match t {
            -1 => {
                if infer_pos.is_some() {
                    return Err(invalid_attr(op, "shape", "more than one -1"));
                }
                infer_pos = Some(i);
                dims.push(1);
            }
            0 => {
                if i >= input.rank() {
                    return Err(invalid_attr(op, "shape", "0 refers past the input rank"));
                }
                dims.push(input.dim(i));
            }
            t if t > 0 => dims.push(t as usize),
            _ => return Err(invalid_attr(op, "shape", "negative extent")),
        }
    }
    let known: usize = dims
        .iter()
        .enumerate()
        .filter(|(i, _)| Some(*i) != infer_pos)
        .map(|(_, &d)| d)
        .product();
    if let Some(pos) = infer_pos {
        if known == 0 || !input.numel().is_multiple_of(known) {
            return Err(OpError::InvalidShape {
                op,
                reason: format!("cannot infer -1: {} elements over {known}", input.numel()),
            });
        }
        dims[pos] = input.numel() / known;
    }
    let out = Shape::new(dims);
    if out.numel() != input.numel() {
        return Err(OpError::InvalidShape {
            op,
            reason: format!(
                "element count changes from {} to {}",
                input.numel(),
                out.numel()
            ),
        });
    }
    Ok(out)
}

fn infer_flatten(attrs: &Attrs, input: &Shape) -> Result<Shape, OpError> {
    let op = OpKind::Flatten;
    let axis_raw = attrs.int_or("axis", 1);
    let axis = if axis_raw == input.rank() as i64 {
        input.rank()
    } else {
        input
            .normalize_axis(axis_raw)
            .map_err(|_| invalid_attr(op, "axis", "out of range"))?
    };
    let first: usize = input.dims()[..axis].iter().product();
    let second: usize = input.dims()[axis..].iter().product();
    Ok(Shape::new(vec![first.max(1), second.max(1)]))
}

fn infer_squeeze(attrs: &Attrs, input: &Shape) -> Result<Shape, OpError> {
    let axes = attrs.ints_or("axes", &[]);
    let dims: Vec<usize> = if axes.is_empty() {
        input.dims().iter().copied().filter(|&d| d != 1).collect()
    } else {
        let mut normalized = Vec::new();
        for &a in &axes {
            normalized.push(
                input
                    .normalize_axis(a)
                    .map_err(|_| invalid_attr(OpKind::Squeeze, "axes", "axis out of range"))?,
            );
        }
        input
            .dims()
            .iter()
            .enumerate()
            .filter(|(i, _)| !normalized.contains(i))
            .map(|(_, &d)| d)
            .collect()
    };
    Ok(Shape::new(dims))
}

fn infer_unsqueeze(attrs: &Attrs, input: &Shape) -> Result<Shape, OpError> {
    let op = OpKind::Unsqueeze;
    let axes = attrs.ints_or("axes", &[]);
    if axes.is_empty() {
        return Err(invalid_attr(op, "axes", "missing axes"));
    }
    let out_rank = input.rank() + axes.len();
    let mut normalized: Vec<usize> = Vec::new();
    for &a in &axes {
        let a = if a < 0 { a + out_rank as i64 } else { a };
        if a < 0 || a as usize >= out_rank {
            return Err(invalid_attr(op, "axes", "axis out of range"));
        }
        normalized.push(a as usize);
    }
    normalized.sort_unstable();
    normalized.dedup();
    if normalized.len() != axes.len() {
        return Err(invalid_attr(op, "axes", "duplicate axes"));
    }
    let mut dims = Vec::with_capacity(out_rank);
    let mut src = input.dims().iter();
    for i in 0..out_rank {
        if normalized.contains(&i) {
            dims.push(1);
        } else {
            dims.push(*src.next().expect("rank bookkeeping"));
        }
    }
    Ok(Shape::new(dims))
}

fn infer_transpose(attrs: &Attrs, input: &Shape) -> Result<Shape, OpError> {
    let op = OpKind::Transpose;
    let default: Vec<i64> = (0..input.rank() as i64).rev().collect();
    let perm: Vec<usize> = attrs
        .ints_or("perm", &default)
        .iter()
        .map(|&p| p as usize)
        .collect();
    input
        .permute(&perm)
        .map_err(|_| invalid_attr(op, "perm", "not a valid permutation"))
}

fn infer_depth_to_space(attrs: &Attrs, input: &Shape) -> Result<Shape, OpError> {
    let op = OpKind::DepthToSpace;
    let b = attrs.int_or("blocksize", 1).max(1) as usize;
    if input.rank() != 4 || !input.dim(1).is_multiple_of(b * b) {
        return Err(OpError::InvalidShape {
            op,
            reason: "expected NCHW input with C divisible by blocksize^2".into(),
        });
    }
    Ok(Shape::new(vec![
        input.dim(0),
        input.dim(1) / (b * b),
        input.dim(2) * b,
        input.dim(3) * b,
    ]))
}

fn infer_space_to_depth(attrs: &Attrs, input: &Shape) -> Result<Shape, OpError> {
    let op = OpKind::SpaceToDepth;
    let b = attrs.int_or("blocksize", 1).max(1) as usize;
    if input.rank() != 4 || !input.dim(2).is_multiple_of(b) || !input.dim(3).is_multiple_of(b) {
        return Err(OpError::InvalidShape {
            op,
            reason: "expected NCHW input with H and W divisible by blocksize".into(),
        });
    }
    Ok(Shape::new(vec![
        input.dim(0),
        input.dim(1) * b * b,
        input.dim(2) / b,
        input.dim(3) / b,
    ]))
}

fn invalid_attr(op: OpKind, name: &str, reason: &str) -> OpError {
    OpError::InvalidAttribute {
        op,
        name: name.to_string(),
        reason: reason.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(dims: &[usize]) -> Shape {
        Shape::new(dims.to_vec())
    }

    #[test]
    fn elementwise_and_broadcast() {
        let out = infer_shapes(OpKind::Relu, &Attrs::new(), &[s(&[2, 3])]).unwrap();
        assert_eq!(out, vec![s(&[2, 3])]);
        let out = infer_shapes(OpKind::Add, &Attrs::new(), &[s(&[2, 3]), s(&[3])]).unwrap();
        assert_eq!(out, vec![s(&[2, 3])]);
        assert!(infer_shapes(OpKind::Add, &Attrs::new(), &[s(&[2]), s(&[3])]).is_err());
        let out = infer_shapes(
            OpKind::Where,
            &Attrs::new(),
            &[s(&[2, 1]), s(&[1, 3]), s(&[2, 3])],
        )
        .unwrap();
        assert_eq!(out, vec![s(&[2, 3])]);
    }

    #[test]
    fn arity_is_enforced() {
        assert!(infer_shapes(OpKind::Add, &Attrs::new(), &[s(&[2])]).is_err());
        assert!(infer_shapes(OpKind::Relu, &Attrs::new(), &[s(&[2]), s(&[2])]).is_err());
    }

    #[test]
    fn concat_and_split_are_inverse_on_shapes() {
        let attrs = Attrs::new().with_int("axis", 1);
        let out = infer_shapes(OpKind::Concat, &attrs, &[s(&[2, 3]), s(&[2, 5])]).unwrap();
        assert_eq!(out, vec![s(&[2, 8])]);
        let attrs = Attrs::new()
            .with_int("axis", 1)
            .with_ints("split", vec![3, 5]);
        let parts = infer_shapes(OpKind::Split, &attrs, &[s(&[2, 8])]).unwrap();
        assert_eq!(parts, vec![s(&[2, 3]), s(&[2, 5])]);
    }

    #[test]
    fn concat_rejects_mismatched_ranks() {
        let attrs = Attrs::new().with_int("axis", 0);
        assert!(infer_shapes(OpKind::Concat, &attrs, &[s(&[2, 3]), s(&[2])]).is_err());
        assert!(infer_shapes(OpKind::Concat, &attrs, &[s(&[2, 3]), s(&[2, 4])]).is_err());
    }

    #[test]
    fn slice_clamps_and_supports_negatives() {
        let attrs = Attrs::new()
            .with_ints("starts", vec![1, -2])
            .with_ints("ends", vec![100, 4])
            .with_ints("axes", vec![0, 1]);
        let out = infer_shapes(OpKind::Slice, &attrs, &[s(&[3, 4])]).unwrap();
        assert_eq!(out, vec![s(&[2, 2])]);
    }

    #[test]
    fn pad_and_tile_and_expand() {
        let attrs = Attrs::new().with_ints("pads", vec![0, 1, 0, 1]);
        assert_eq!(
            infer_shapes(OpKind::Pad, &attrs, &[s(&[2, 3])]).unwrap(),
            vec![s(&[2, 5])]
        );
        let attrs = Attrs::new().with_ints("repeats", vec![2, 3]);
        assert_eq!(
            infer_shapes(OpKind::Tile, &attrs, &[s(&[2, 3])]).unwrap(),
            vec![s(&[4, 9])]
        );
        let attrs = Attrs::new().with_ints("shape", vec![4, 2, 3]);
        assert_eq!(
            infer_shapes(OpKind::Expand, &attrs, &[s(&[2, 3])]).unwrap(),
            vec![s(&[4, 2, 3])]
        );
    }

    #[test]
    fn gather_inserts_index_shape() {
        let attrs = Attrs::new().with_int("axis", 0);
        let out = infer_shapes(OpKind::Gather, &attrs, &[s(&[10, 16]), s(&[4, 5])]).unwrap();
        assert_eq!(out, vec![s(&[4, 5, 16])]);
        let attrs = Attrs::new().with_int("axis", 1);
        let out = infer_shapes(OpKind::Gather, &attrs, &[s(&[10, 16]), s(&[3])]).unwrap();
        assert_eq!(out, vec![s(&[10, 3])]);
    }

    #[test]
    fn conv_shape_matches_onnx_semantics() {
        // 1x3x224x224 conv 64x3x7x7, stride 2, pad 3 -> 1x64x112x112 (ResNet stem).
        let attrs = Attrs::new()
            .with_ints("strides", vec![2, 2])
            .with_ints("pads", vec![3, 3, 3, 3]);
        let out = infer_shapes(
            OpKind::Conv,
            &attrs,
            &[s(&[1, 3, 224, 224]), s(&[64, 3, 7, 7])],
        )
        .unwrap();
        assert_eq!(out, vec![s(&[1, 64, 112, 112])]);
        // Depthwise: group == channels.
        let attrs = Attrs::new()
            .with_int("group", 32)
            .with_ints("pads", vec![1, 1, 1, 1]);
        let out = infer_shapes(
            OpKind::Conv,
            &attrs,
            &[s(&[1, 32, 56, 56]), s(&[32, 1, 3, 3])],
        )
        .unwrap();
        assert_eq!(out, vec![s(&[1, 32, 56, 56])]);
        // 3-D convolution (C3D-style).
        let attrs = Attrs::new().with_ints("pads", vec![1, 1, 1, 1, 1, 1]);
        let out = infer_shapes(
            OpKind::Conv,
            &attrs,
            &[s(&[1, 3, 16, 56, 56]), s(&[64, 3, 3, 3, 3])],
        )
        .unwrap();
        assert_eq!(out, vec![s(&[1, 64, 16, 56, 56])]);
        // Channel mismatch errors.
        assert!(infer_shapes(
            OpKind::Conv,
            &Attrs::new(),
            &[s(&[1, 3, 8, 8]), s(&[8, 4, 3, 3])]
        )
        .is_err());
    }

    #[test]
    fn conv_transpose_doubles_spatial_with_stride_two() {
        let attrs = Attrs::new().with_ints("strides", vec![2, 2]);
        let out = infer_shapes(
            OpKind::ConvTranspose,
            &attrs,
            &[s(&[1, 16, 8, 8]), s(&[16, 8, 2, 2])],
        )
        .unwrap();
        assert_eq!(out, vec![s(&[1, 8, 16, 16])]);
    }

    #[test]
    fn pooling_shapes() {
        let attrs = Attrs::new()
            .with_ints("kernel_shape", vec![2, 2])
            .with_ints("strides", vec![2, 2]);
        let out = infer_shapes(OpKind::MaxPool, &attrs, &[s(&[1, 8, 32, 32])]).unwrap();
        assert_eq!(out, vec![s(&[1, 8, 16, 16])]);
        let out = infer_shapes(
            OpKind::GlobalAveragePool,
            &Attrs::new(),
            &[s(&[1, 8, 7, 7])],
        )
        .unwrap();
        assert_eq!(out, vec![s(&[1, 8, 1, 1])]);
    }

    #[test]
    fn gemm_and_matmul() {
        let out = infer_shapes(OpKind::Gemm, &Attrs::new(), &[s(&[4, 8]), s(&[8, 16])]).unwrap();
        assert_eq!(out, vec![s(&[4, 16])]);
        let attrs = Attrs::new().with_int("transB", 1);
        let out = infer_shapes(OpKind::Gemm, &attrs, &[s(&[4, 8]), s(&[16, 8])]).unwrap();
        assert_eq!(out, vec![s(&[4, 16])]);
        assert!(infer_shapes(OpKind::Gemm, &Attrs::new(), &[s(&[4, 8]), s(&[9, 16])]).is_err());
        let out = infer_shapes(
            OpKind::MatMul,
            &Attrs::new(),
            &[s(&[2, 12, 64, 64]), s(&[2, 12, 64, 32])],
        )
        .unwrap();
        assert_eq!(out, vec![s(&[2, 12, 64, 32])]);
        // Batch broadcasting.
        let out =
            infer_shapes(OpKind::MatMul, &Attrs::new(), &[s(&[1, 4, 8]), s(&[8, 3])]).unwrap();
        assert_eq!(out, vec![s(&[1, 4, 3])]);
    }

    #[test]
    fn reductions_and_argmax() {
        let attrs = Attrs::new()
            .with_ints("axes", vec![-1])
            .with_int("keepdims", 1);
        assert_eq!(
            infer_shapes(OpKind::ReduceMean, &attrs, &[s(&[2, 3, 4])]).unwrap(),
            vec![s(&[2, 3, 1])]
        );
        let attrs = Attrs::new()
            .with_ints("axes", vec![1])
            .with_int("keepdims", 0);
        assert_eq!(
            infer_shapes(OpKind::ReduceSum, &attrs, &[s(&[2, 3, 4])]).unwrap(),
            vec![s(&[2, 4])]
        );
        let attrs = Attrs::new();
        assert_eq!(
            infer_shapes(OpKind::ReduceMax, &attrs, &[s(&[2, 3])]).unwrap(),
            vec![s(&[1, 1])]
        );
        let attrs = Attrs::new().with_int("axis", 1).with_int("keepdims", 0);
        assert_eq!(
            infer_shapes(OpKind::ArgMax, &attrs, &[s(&[2, 5])]).unwrap(),
            vec![s(&[2])]
        );
    }

    #[test]
    fn reshape_supports_zero_and_minus_one() {
        let attrs = Attrs::new().with_ints("shape", vec![0, -1]);
        assert_eq!(
            infer_shapes(OpKind::Reshape, &attrs, &[s(&[2, 3, 4])]).unwrap(),
            vec![s(&[2, 12])]
        );
        let attrs = Attrs::new().with_ints("shape", vec![-1, 6]);
        assert_eq!(
            infer_shapes(OpKind::Reshape, &attrs, &[s(&[2, 3, 4])]).unwrap(),
            vec![s(&[4, 6])]
        );
        let attrs = Attrs::new().with_ints("shape", vec![-1, -1]);
        assert!(infer_shapes(OpKind::Reshape, &attrs, &[s(&[4])]).is_err());
        let attrs = Attrs::new().with_ints("shape", vec![5]);
        assert!(infer_shapes(OpKind::Reshape, &attrs, &[s(&[4])]).is_err());
    }

    #[test]
    fn flatten_squeeze_unsqueeze() {
        let attrs = Attrs::new().with_int("axis", 1);
        assert_eq!(
            infer_shapes(OpKind::Flatten, &attrs, &[s(&[2, 3, 4])]).unwrap(),
            vec![s(&[2, 12])]
        );
        let attrs = Attrs::new();
        assert_eq!(
            infer_shapes(OpKind::Squeeze, &attrs, &[s(&[1, 3, 1, 4])]).unwrap(),
            vec![s(&[3, 4])]
        );
        let attrs = Attrs::new().with_ints("axes", vec![0]);
        assert_eq!(
            infer_shapes(OpKind::Unsqueeze, &attrs, &[s(&[3, 4])]).unwrap(),
            vec![s(&[1, 3, 4])]
        );
        let attrs = Attrs::new().with_ints("axes", vec![0, 0]);
        assert!(infer_shapes(OpKind::Unsqueeze, &attrs, &[s(&[3])]).is_err());
    }

    #[test]
    fn transpose_and_space_depth() {
        let attrs = Attrs::new().with_ints("perm", vec![0, 2, 3, 1]);
        assert_eq!(
            infer_shapes(OpKind::Transpose, &attrs, &[s(&[1, 3, 8, 8])]).unwrap(),
            vec![s(&[1, 8, 8, 3])]
        );
        // Default perm reverses.
        assert_eq!(
            infer_shapes(OpKind::Transpose, &Attrs::new(), &[s(&[2, 3, 4])]).unwrap(),
            vec![s(&[4, 3, 2])]
        );
        let attrs = Attrs::new().with_int("blocksize", 2);
        assert_eq!(
            infer_shapes(OpKind::DepthToSpace, &attrs, &[s(&[1, 8, 4, 4])]).unwrap(),
            vec![s(&[1, 2, 8, 8])]
        );
        assert_eq!(
            infer_shapes(OpKind::SpaceToDepth, &attrs, &[s(&[1, 2, 8, 8])]).unwrap(),
            vec![s(&[1, 8, 4, 4])]
        );
    }

    #[test]
    fn resize_scales_spatial_dims() {
        let attrs = Attrs::new().with_floats("scales", vec![1.0, 1.0, 2.0, 2.0]);
        assert_eq!(
            infer_shapes(OpKind::Resize, &attrs, &[s(&[1, 8, 16, 16])]).unwrap(),
            vec![s(&[1, 8, 32, 32])]
        );
    }

    #[test]
    fn einsum_is_reported_unsupported() {
        assert_eq!(
            infer_shapes(OpKind::Einsum, &Attrs::new(), &[s(&[2, 2])]),
            Err(OpError::Unsupported { op: OpKind::Einsum })
        );
    }

    #[test]
    fn batchnorm_preserves_shape() {
        let c = s(&[16]);
        let out = infer_shapes(
            OpKind::BatchNormalization,
            &Attrs::new(),
            &[s(&[1, 16, 8, 8]), c.clone(), c.clone(), c.clone(), c],
        )
        .unwrap();
        assert_eq!(out, vec![s(&[1, 16, 8, 8])]);
    }
}
