//! Multi-tenant serving-layer load harness.
//!
//! Drives a synthetic two-tenant request mix through `dnnf-serve` and writes
//! throughput and latency percentiles to `BENCH_serve.json` (schema
//! `dnnf-bench-serve/v1`), the serving counterpart of `bench_exec`'s
//! `BENCH_exec.json`:
//!
//! * **Baseline** — every request executed one-at-a-time, serially, straight
//!   through `Executor::run_compiled_batched` (no queue, no coalescing).
//!   This is the paper-engine's per-request cost and the ISSUE's
//!   "one-request-at-a-time" side.
//! * **Served** — the same requests submitted as one burst to a running
//!   [`dnnf_serve::Server`] hosting both models; workers coalesce same-model
//!   requests along the batch dimension (up to [`MAX_BATCH`] rows) and each
//!   dispatch amortizes the per-run fixed costs (memory planning, arena
//!   setup, accounting) over every coalesced row. Served latency is
//!   submit-to-response under burst load, so it *includes queueing* — the
//!   headline column is throughput, latency percentiles are informational.
//!
//! Every served response is compared against the baseline's output for the
//! same request and must be **bit-identical** (tolerance 0) — the ≥2x
//! throughput gate only counts at equal correctness. Both phases run
//! [`TRIALS`] times and each side reports its **fastest** trial: on this
//! single-shared-core host, scheduler noise only ever slows a phase down, so
//! best-of-N is the noise-free estimate of each phase's real cost and the
//! gated ratio cannot be failed (or inflated) by one hiccup landing in a
//! milliseconds-long burst.
//!
//! The `serve_throughput_speedup` floor is armed unconditionally: coalescing
//! amortizes per-dispatch *fixed* costs, a structural saving that — unlike
//! `parallel_speedup` — does not need spare cores. The tenants are tiny
//! models precisely so that fixed cost is a visible fraction of a dispatch;
//! single-core hosts reach the floor through amortization alone, extra cores
//! only add margin. See `docs/serving.md`.
//!
//! Run with `cargo run --release -p dnnf-bench --bin serve_load`.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

use dnnf_core::{CompiledModel, Compiler, CompilerOptions};
use dnnf_graph::Graph;
use dnnf_ops::{Attrs, OpKind};
use dnnf_runtime::{ExecOptions, Executor, PlanCache, WorkPool};
use dnnf_serve::{ServeConfig, Server};
use dnnf_simdev::DeviceSpec;
use dnnf_tensor::{Shape, Tensor};

/// Requests per tenant in the mix.
const REQUESTS_PER_MODEL: usize = 96;

/// Per-request row counts cycle through this pattern (mixed batch sizes
/// exercise the polymorphic plan: every distinct coalesced total re-uses the
/// one cached `FusionPlan` and re-runs only code generation).
const ROWS_CYCLE: [usize; 4] = [1, 2, 3, 2];

/// Most rows one coalesced dispatch may carry.
const MAX_BATCH: usize = 64;

/// Serving worker threads. One worker per shared core: the benchmarked win
/// is coalescing (fixed-cost amortization), not parallel dispatch, and on
/// the single-core CI host a second worker only adds context-switch churn
/// to the burst phase.
const WORKERS: usize = 1;

/// Minimum served-vs-baseline throughput ratio for the combined mix.
const THROUGHPUT_FLOOR: f64 = 2.0;

/// Baseline/served measurement pairs; each phase reports its fastest trial
/// (see the module docs for why best-of-N is the right estimator here).
const TRIALS: usize = 5;

/// A tiny two-layer CNN tenant: conv -> bias add -> relu.
fn convnet_graph() -> Graph {
    let mut g = Graph::new("convnet");
    let x = g.add_input("x", Shape::new(vec![1, 2, 4, 4]));
    let w = g.add_weight_with_data("w", Tensor::random(Shape::new(vec![2, 2, 3, 3]), 11));
    let b = g.add_weight_with_data("b", Tensor::random(Shape::new(vec![1, 2, 1, 1]), 13));
    let c = g
        .add_op(
            OpKind::Conv,
            Attrs::new().with_ints("pads", vec![1, 1, 1, 1]),
            &[x, w],
            "conv",
        )
        .expect("conv")[0];
    let a = g
        .add_op(OpKind::Add, Attrs::new(), &[c, b], "bias")
        .expect("bias")[0];
    let r = g
        .add_op(OpKind::Relu, Attrs::new(), &[a], "relu")
        .expect("relu")[0];
    g.mark_output(r);
    g
}

/// A tiny MLP tenant: matmul -> add -> relu -> matmul.
fn mlp_graph() -> Graph {
    let mut g = Graph::new("mlp");
    let x = g.add_input("x", Shape::new(vec![1, 16]));
    let w1 = g.add_weight_with_data("w1", Tensor::random(Shape::new(vec![16, 16]), 17));
    let b1 = g.add_weight_with_data("b1", Tensor::random(Shape::new(vec![1, 16]), 19));
    let w2 = g.add_weight_with_data("w2", Tensor::random(Shape::new(vec![16, 8]), 23));
    let h = g
        .add_op(OpKind::MatMul, Attrs::new(), &[x, w1], "fc1")
        .expect("fc1")[0];
    let a = g
        .add_op(OpKind::Add, Attrs::new(), &[h, b1], "bias1")
        .expect("bias1")[0];
    let r = g
        .add_op(OpKind::Relu, Attrs::new(), &[a], "relu1")
        .expect("relu1")[0];
    let y = g
        .add_op(OpKind::MatMul, Attrs::new(), &[r, w2], "fc2")
        .expect("fc2")[0];
    g.mark_output(y);
    g
}

/// One request of the synthetic mix.
struct Request {
    model: &'static str,
    rows: usize,
    inputs: HashMap<String, Tensor>,
}

fn build_mix(tenants: &[(&'static str, &Graph)]) -> Vec<Request> {
    let mut mix = Vec::new();
    for i in 0..REQUESTS_PER_MODEL {
        let rows = ROWS_CYCLE[i % ROWS_CYCLE.len()];
        for (t, (name, graph)) in tenants.iter().enumerate() {
            let seed = 1000 + (i as u64) * 10 + t as u64;
            let inputs = graph
                .inputs()
                .iter()
                .map(|&id| {
                    let v = graph.value(id);
                    let mut dims = v.shape.dims().to_vec();
                    dims[0] = rows;
                    (v.name.clone(), Tensor::random(Shape::new(dims), seed))
                })
                .collect();
            mix.push(Request {
                model: name,
                rows,
                inputs,
            });
        }
    }
    mix
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx]
}

/// Per-model (and combined) measurements for one phase.
struct PhaseStats {
    total_s: f64,
    latencies_ms: Vec<f64>,
}

impl PhaseStats {
    fn rps(&self) -> f64 {
        self.latencies_ms.len() as f64 / self.total_s
    }

    fn p50(&self) -> f64 {
        let mut s = self.latencies_ms.clone();
        s.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
        percentile(&s, 0.50)
    }

    fn p99(&self) -> f64 {
        let mut s = self.latencies_ms.clone();
        s.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
        percentile(&s, 0.99)
    }
}

struct Row {
    model: String,
    requests: usize,
    rows: usize,
    baseline: PhaseStats,
    served: PhaseStats,
    mean_coalesced: f64,
    max_coalesced: u64,
}

impl Row {
    fn serve_throughput_speedup(&self) -> f64 {
        self.served.rps() / self.baseline.rps()
    }
}

/// One baseline+served measurement pair over the full mix.
struct Trial {
    base_total_s: f64,
    serve_total_s: f64,
    base_lat: HashMap<&'static str, Vec<f64>>,
    serve_lat: HashMap<&'static str, Vec<f64>>,
    /// Per-request dispatch width (how many requests rode that batch),
    /// indexed like the mix.
    coalesced: Vec<usize>,
}

impl Trial {
    fn mix_speedup(&self) -> f64 {
        self.base_total_s / self.serve_total_s
    }
}

fn main() {
    let host_parallelism = WorkPool::host().threads();

    let convnet = convnet_graph();
    let mlp = mlp_graph();
    let tenants: [(&'static str, &Graph); 2] = [("convnet", &convnet), ("mlp", &mlp)];

    // Both tenants compile through one shared PlanCache; the batch-1
    // canonical key means each holds exactly one entry regardless of the
    // request batch sizes below.
    let cache = PlanCache::new();
    let models: HashMap<&'static str, Arc<CompiledModel>> = tenants
        .iter()
        .map(|&(name, graph)| {
            let mut compiler = Compiler::new(CompilerOptions::default());
            let (model, _) = cache
                .compile_batched(&mut compiler, graph)
                .expect("tenant compiles");
            (name, model)
        })
        .collect();
    assert_eq!(
        cache.stats().models,
        tenants.len(),
        "one polymorphic plan per tenant"
    );

    let mix = build_mix(&tenants);
    for (name, _) in tenants {
        let rows: usize = mix.iter().filter(|r| r.model == name).map(|r| r.rows).sum();
        assert_eq!(
            rows % MAX_BATCH,
            0,
            "per-tenant rows must divide MAX_BATCH exactly so every dispatch \
             is a full batch and no request waits out the batch window"
        );
    }
    let executor = Executor::new(DeviceSpec::snapdragon_865_cpu())
        .without_cache_simulation()
        .with_options(ExecOptions::serial());

    // Untimed warmup + expected outputs: warms every weight store and batch
    // instance, and pins down the bit-exact answer for each request.
    let expected: Vec<Vec<Tensor>> = mix
        .iter()
        .map(|r| {
            executor
                .run_compiled_batched(&models[r.model], &r.inputs)
                .expect("warmup run")
                .outputs
        })
        .collect();

    // The server hosts both tenants once for all trials. The window is
    // deliberately generous: dispatch should trigger on the *row threshold*
    // (a full MAX_BATCH accumulated), not on a timer, so batch formation is
    // deterministic instead of at the mercy of how the scheduler interleaves
    // the submitting thread with the worker. The mix is an exact multiple of
    // MAX_BATCH rows per tenant, so no tail request ever waits out the
    // window — every dispatch is a full batch in every trial.
    let server = {
        let mut builder = Server::builder(ServeConfig {
            max_batch: MAX_BATCH,
            batch_window: Duration::from_millis(50),
            queue_capacity: mix.len(),
            workers: WORKERS,
            exec: ExecOptions::serial(),
            device: DeviceSpec::snapdragon_865_cpu(),
            simulate_cache: false,
        });
        for (name, model) in [
            ("convnet", Arc::clone(&models["convnet"])),
            ("mlp", Arc::clone(&models["mlp"])),
        ] {
            builder = builder.model(name, model).expect("register tenant");
        }
        builder.start()
    };

    let mut trials: Vec<Trial> = Vec::with_capacity(TRIALS);
    for _ in 0..TRIALS {
        // Phase 1: one-request-at-a-time baseline, serial.
        let mut base_lat: HashMap<&'static str, Vec<f64>> = HashMap::new();
        let base_start = Instant::now();
        for r in &mix {
            let t = Instant::now();
            executor
                .run_compiled_batched(&models[r.model], &r.inputs)
                .expect("baseline run");
            base_lat
                .entry(r.model)
                .or_default()
                .push(t.elapsed().as_secs_f64() * 1e3);
        }
        let base_total_s = base_start.elapsed().as_secs_f64();

        // Phase 2: the same mix as one burst through the server.
        let serve_start = Instant::now();
        let tickets: Vec<_> = mix
            .iter()
            .map(|r| {
                (
                    Instant::now(),
                    server.submit(r.model, r.inputs.clone()).expect("submit"),
                )
            })
            .collect();
        // Waiting in submission order: per model, dispatches complete FIFO,
        // so the recorded submit->wait latency tracks completion closely.
        let mut serve_lat: HashMap<&'static str, Vec<f64>> = HashMap::new();
        let mut responses = Vec::with_capacity(mix.len());
        for ((submitted, ticket), r) in tickets.into_iter().zip(&mix) {
            let response = ticket.wait().expect("response");
            serve_lat
                .entry(r.model)
                .or_default()
                .push(submitted.elapsed().as_secs_f64() * 1e3);
            responses.push(response);
        }
        let serve_total_s = serve_start.elapsed().as_secs_f64();

        // Equal correctness, every trial: every served output bit-identical
        // to the baseline.
        for (response, want) in responses.iter().zip(&expected) {
            assert_eq!(response.outputs.len(), want.len());
            for (got, want) in response.outputs.iter().zip(want) {
                assert_eq!(got.shape(), want.shape(), "served shape drifted");
                assert!(
                    got.data() == want.data(),
                    "served output not bit-identical to the per-request baseline"
                );
            }
        }

        trials.push(Trial {
            base_total_s,
            serve_total_s,
            base_lat,
            serve_lat,
            coalesced: responses.iter().map(|r| r.coalesced).collect(),
        });
    }
    server.shutdown();

    // Each side reports its fastest trial: best-of-N per phase is the
    // noise-free estimate of that phase's real cost (noise only slows).
    let fastest = |key: fn(&Trial) -> f64| -> &Trial {
        trials
            .iter()
            .min_by(|a, b| key(a).partial_cmp(&key(b)).expect("finite totals"))
            .expect("at least one trial")
    };
    let base_trial = fastest(|t| t.base_total_s);
    let serve_trial = fastest(|t| t.serve_total_s);

    let model_coalesced = |name: &str| -> (f64, u64) {
        let widths: Vec<usize> = mix
            .iter()
            .zip(&serve_trial.coalesced)
            .filter(|(r, _)| r.model == name)
            .map(|(_, &c)| c)
            .collect();
        let mean = widths.iter().sum::<usize>() as f64 / widths.len() as f64;
        (mean, widths.iter().copied().max().unwrap_or(0) as u64)
    };

    let mut rows: Vec<Row> = Vec::new();
    for (name, _) in tenants {
        let requests: usize = REQUESTS_PER_MODEL;
        let total_rows: usize = mix.iter().filter(|r| r.model == name).map(|r| r.rows).sum();
        let (mean_coalesced, max_coalesced) = model_coalesced(name);
        rows.push(Row {
            model: name.to_string(),
            requests,
            rows: total_rows,
            // Per-model wall-clock shares one phase: attribute by request
            // count (the phases interleave tenants uniformly).
            baseline: PhaseStats {
                total_s: base_trial.base_total_s * requests as f64 / mix.len() as f64,
                latencies_ms: base_trial.base_lat[name].clone(),
            },
            served: PhaseStats {
                total_s: serve_trial.serve_total_s * requests as f64 / mix.len() as f64,
                latencies_ms: serve_trial.serve_lat[name].clone(),
            },
            mean_coalesced,
            max_coalesced,
        });
    }
    rows.push(Row {
        model: "mix".to_string(),
        requests: mix.len(),
        rows: mix.iter().map(|r| r.rows).sum(),
        baseline: PhaseStats {
            total_s: base_trial.base_total_s,
            latencies_ms: base_trial.base_lat.values().flatten().copied().collect(),
        },
        served: PhaseStats {
            total_s: serve_trial.serve_total_s,
            latencies_ms: serve_trial.serve_lat.values().flatten().copied().collect(),
        },
        mean_coalesced: serve_trial.coalesced.iter().sum::<usize>() as f64
            / serve_trial.coalesced.len() as f64,
        max_coalesced: rows.iter().map(|r| r.max_coalesced).max().unwrap_or(0),
    });

    println!(
        "Serving load: {} requests x 2 tenants, rows cycling {ROWS_CYCLE:?}, max_batch \
         {MAX_BATCH}, {WORKERS} worker(s), host parallelism {host_parallelism}",
        REQUESTS_PER_MODEL
    );
    println!(
        "trial mix speedups: [{}] -> best-of-{TRIALS} per phase reported below",
        trials
            .iter()
            .map(|t| format!("{:.2}x", t.mix_speedup()))
            .collect::<Vec<_>>()
            .join(", ")
    );
    println!(
        "{:<10} {:>9} {:>7} {:>12} {:>12} {:>9} {:>10} {:>10} {:>10} {:>10} {:>9} {:>9}",
        "model",
        "requests",
        "rows",
        "base rps",
        "served rps",
        "speedup",
        "base p50",
        "base p99",
        "serve p50",
        "serve p99",
        "coalesce",
        "max"
    );
    for row in &rows {
        println!(
            "{:<10} {:>9} {:>7} {:>12.1} {:>12.1} {:>8.2}x {:>8.3}ms {:>8.3}ms {:>8.3}ms \
             {:>8.3}ms {:>9.2} {:>9}",
            row.model,
            row.requests,
            row.rows,
            row.baseline.rps(),
            row.served.rps(),
            row.serve_throughput_speedup(),
            row.baseline.p50(),
            row.baseline.p99(),
            row.served.p50(),
            row.served.p99(),
            row.mean_coalesced,
            row.max_coalesced
        );
    }
    println!(
        "correctness: {} served responses ({} trials x {} requests) bit-identical to the \
         one-request-at-a-time baseline",
        TRIALS * mix.len(),
        TRIALS,
        mix.len()
    );

    let mix_row = rows.last().expect("mix row");
    let floor_value = mix_row.serve_throughput_speedup();

    let mut json = String::from("{\n");
    json.push_str("  \"schema\": \"dnnf-bench-serve/v1\",\n");
    json.push_str(&format!(
        "  \"requests_per_model\": {REQUESTS_PER_MODEL},\n"
    ));
    json.push_str(&format!("  \"max_batch\": {MAX_BATCH},\n"));
    json.push_str(&format!("  \"workers\": {WORKERS},\n"));
    json.push_str(&format!("  \"host_parallelism\": {host_parallelism},\n"));
    json.push_str("  \"models\": [\n");
    for (i, row) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"model\": \"{}\", \"requests\": {}, \"rows\": {}, \
             \"baseline_rps\": {:.1}, \"served_rps\": {:.1}, \
             \"serve_throughput_speedup\": {:.2}, \
             \"baseline_p50_ms\": {:.3}, \"baseline_p99_ms\": {:.3}, \
             \"served_p50_ms\": {:.3}, \"served_p99_ms\": {:.3}, \
             \"mean_coalesced\": {:.2}, \"max_coalesced\": {}}}{}\n",
            row.model,
            row.requests,
            row.rows,
            row.baseline.rps(),
            row.served.rps(),
            row.serve_throughput_speedup(),
            row.baseline.p50(),
            row.baseline.p99(),
            row.served.p50(),
            row.served.p99(),
            row.mean_coalesced,
            row.max_coalesced,
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    json.push_str("  ],\n");
    json.push_str("  \"floors\": [\n");
    json.push_str(&format!(
        "    {{\"model\": \"mix\", \"metric\": \"serve_throughput_speedup\", \
         \"floor\": {THROUGHPUT_FLOOR:.2}, \"armed\": true, \"value\": {floor_value:.2}}}\n"
    ));
    json.push_str("  ]\n}\n");
    std::fs::write("BENCH_serve.json", &json).expect("write BENCH_serve.json");
    println!("wrote BENCH_serve.json");

    assert!(
        floor_value >= THROUGHPUT_FLOOR,
        "regression: mix serve_throughput_speedup is {floor_value:.2}x, below the \
         {THROUGHPUT_FLOOR:.2}x floor"
    );
}
