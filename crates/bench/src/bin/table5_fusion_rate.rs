//! Table 5: fusion-rate evaluation — layer counts and intermediate-result
//! sizes before and after fusion, per framework, for all 15 models.
//!
//! Run with `cargo run --release -p dnnf-bench --bin table5_fusion_rate`
//! (append `--reduced` for full structural depth; tiny scale by default).

use dnnf_bench::{cell, evaluate, format_table, ExecutionConfig};
use dnnf_models::{ModelKind, ModelScale};
use dnnf_simdev::DeviceSpec;

fn main() {
    let scale = if std::env::args().any(|a| a == "--reduced") {
        ModelScale::reduced()
    } else {
        ModelScale::tiny()
    };
    let device = DeviceSpec::snapdragon_865_cpu();
    let mut rows = Vec::new();
    for &kind in ModelKind::all() {
        let graph = kind.build(scale).expect("model builds");
        let stats = graph.stats();
        let paper = kind.paper_reference();
        let mut row = vec![
            kind.name().to_string(),
            kind.family().to_string(),
            format!("{}", stats.compute_intensive_layers),
            format!("{}", stats.memory_intensive_layers),
            format!("{}", stats.total_layers),
            format!("{}", paper.total_layers),
            format!("{:.1}", stats.intermediate_mib()),
        ];
        let mut dnnf_irs = None;
        for &config in ExecutionConfig::frameworks() {
            let result = evaluate(kind, scale, config, &device);
            row.push(cell(result.as_ref().map(|r| r.fused_layers as f64), 0));
            if config == ExecutionConfig::DnnFusion {
                dnnf_irs = result.map(|r| r.fused_irs_bytes as f64 / (1024.0 * 1024.0));
            }
        }
        row.push(format!("{}", paper.dnnf_fused_layers));
        row.push(cell(dnnf_irs, 2));
        rows.push(row);
    }
    println!("Table 5 — fusion rate: layer counts and IRS size before/after fusion\n");
    println!(
        "{}",
        format_table(
            &[
                "Model",
                "Type",
                "#CIL",
                "#MIL",
                "#Total",
                "#Total (paper)",
                "IRS MiB",
                "MNN",
                "TVM",
                "TFLite",
                "PyTorch",
                "DNNF",
                "DNNF (paper)",
                "DNNF IRS MiB",
            ],
            &rows
        )
    );
    println!("'-' marks model/framework combinations the paper reports as unsupported.");
}
