//! Multi-dimensional index iteration.

use crate::Shape;

/// Iterator over all multi-dimensional indices of a [`Shape`] in row-major
/// order.
///
/// # Example
///
/// ```
/// use dnnf_tensor::{IndexIter, Shape};
///
/// let indices: Vec<Vec<usize>> = IndexIter::new(&Shape::new(vec![2, 2])).collect();
/// assert_eq!(indices, vec![vec![0, 0], vec![0, 1], vec![1, 0], vec![1, 1]]);
/// ```
#[derive(Debug, Clone)]
pub struct IndexIter {
    dims: Vec<usize>,
    current: Vec<usize>,
    remaining: usize,
}

impl IndexIter {
    /// Creates an iterator over every index of `shape`.
    #[must_use]
    pub fn new(shape: &Shape) -> Self {
        IndexIter {
            dims: shape.dims().to_vec(),
            current: vec![0; shape.rank()],
            remaining: if shape.is_empty() { 0 } else { shape.numel() },
        }
    }
}

impl Iterator for IndexIter {
    type Item = Vec<usize>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.remaining == 0 {
            return None;
        }
        let item = self.current.clone();
        self.remaining -= 1;
        // Advance odometer-style.
        for axis in (0..self.dims.len()).rev() {
            self.current[axis] += 1;
            if self.current[axis] < self.dims[axis] {
                break;
            }
            self.current[axis] = 0;
        }
        Some(item)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining, Some(self.remaining))
    }
}

impl ExactSizeIterator for IndexIter {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iterates_in_row_major_order() {
        let shape = Shape::new(vec![2, 3]);
        let all: Vec<_> = IndexIter::new(&shape).collect();
        assert_eq!(all.len(), 6);
        assert_eq!(all[0], vec![0, 0]);
        assert_eq!(all[1], vec![0, 1]);
        assert_eq!(all[3], vec![1, 0]);
        assert_eq!(all[5], vec![1, 2]);
    }

    #[test]
    fn scalar_shape_yields_single_empty_index() {
        let all: Vec<_> = IndexIter::new(&Shape::scalar()).collect();
        assert_eq!(all, vec![Vec::<usize>::new()]);
    }

    #[test]
    fn empty_shape_yields_nothing() {
        let all: Vec<_> = IndexIter::new(&Shape::new(vec![2, 0, 3])).collect();
        assert!(all.is_empty());
    }

    #[test]
    fn size_hint_is_exact() {
        let mut it = IndexIter::new(&Shape::new(vec![4, 5]));
        assert_eq!(it.len(), 20);
        it.next();
        assert_eq!(it.len(), 19);
    }

    #[test]
    fn matches_linear_offsets() {
        let shape = Shape::new(vec![3, 2, 4]);
        for (offset, idx) in IndexIter::new(&shape).enumerate() {
            assert_eq!(shape.linear_offset(&idx).unwrap(), offset);
        }
    }
}
