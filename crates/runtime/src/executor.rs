//! The model executor.
//!
//! Executes a graph under an arbitrary fusion plan (DNNFusion's, a fixed-
//! pattern baseline's, or the unfused singleton plan), producing both the
//! output tensors and the simulated device counters: modeled latency, memory
//! traffic, peak memory, cache/TLB misses, kernel launches and utilization.
//!
//! Two execution paths share the counter accounting:
//!
//! * [`Executor::run_plan`] — the **fused-block engine**: every block is
//!   compiled to a [`dnnf_core::FusedKernel`] (single-pass scalar tapes for
//!   element-wise runs, optimized anchor kernels for Conv/MatMul/pooling),
//!   boundary tensors are stored behind `Arc` in slot-indexed storage and
//!   their buffers recycled through a [`TensorArena`] driven by the
//!   [`MemoryPlan`]'s lifetimes.
//! * [`Executor::run_plan_reference`] — the **reference interpreter**: every
//!   operator runs its reference kernel and every boundary tensor is
//!   materialized. This is the semantic oracle the differential test harness
//!   pins the engine against, and the baseline the wall-clock benches
//!   compare with.

use std::collections::HashMap;
use std::sync::Arc;

use dnnf_core::{compile_plan, BufferPool, CompiledModel, Ecg, FusionPlan};
use dnnf_graph::{Graph, ValueId};
use dnnf_ops::execute;
use dnnf_profiledb::ProfileDatabase;
use dnnf_simdev::{BlockWork, CacheHierarchy, Counters, DeviceCostModel, DeviceSpec};
use dnnf_tensor::Tensor;

use crate::{
    materialize_weights, DeviceLatencyModel, ExecOptions, MemoryPlan, RuntimeError, TensorArena,
    WeightStore,
};

/// The result of one inference run.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecutionReport {
    /// Output tensors, in the graph's output order.
    pub outputs: Vec<Tensor>,
    /// Simulated device counters for the run.
    pub counters: Counters,
    /// The memory plan used for the run.
    pub memory: MemoryPlan,
}

impl ExecutionReport {
    /// Modeled latency in milliseconds (the unit of the paper's Table 6).
    #[must_use]
    pub fn latency_ms(&self) -> f64 {
        self.counters.latency_us / 1e3
    }
}

/// Executes models on a simulated device.
#[derive(Debug, Clone, PartialEq)]
pub struct Executor {
    device: DeviceSpec,
    simulate_cache: bool,
    options: ExecOptions,
}

/// Shared per-run device accounting (identical for both execution paths, so
/// counters never depend on which engine produced the numbers).
struct Accounting {
    cost_model: DeviceCostModel,
    work_model: DeviceLatencyModel,
    cache: CacheHierarchy,
    counters: Counters,
    works: Vec<BlockWork>,
    addresses: Vec<u64>,
}

impl Executor {
    /// Creates an executor for a device with the default [`ExecOptions`]
    /// (thread count from the host, or `DNNF_NUM_THREADS` when set).
    #[must_use]
    pub fn new(device: DeviceSpec) -> Self {
        Executor {
            device,
            simulate_cache: true,
            options: ExecOptions::default(),
        }
    }

    /// Disables the cache simulation (useful for large sweeps where only
    /// latency and traffic are needed).
    #[must_use]
    pub fn without_cache_simulation(mut self) -> Self {
        self.simulate_cache = false;
        self
    }

    /// Replaces the execution options (thread count and parallelism gate).
    #[must_use]
    pub fn with_options(mut self, options: ExecOptions) -> Self {
        self.options = options;
        self
    }

    /// Caps kernel launches at `num_threads` threads; `1` recovers the
    /// fully serial engine. Results are bit-identical either way.
    #[must_use]
    pub fn with_num_threads(mut self, num_threads: usize) -> Self {
        self.options.num_threads = num_threads.max(1);
        self
    }

    /// The execution options in effect.
    #[must_use]
    pub fn options(&self) -> &ExecOptions {
        &self.options
    }

    /// The device this executor models.
    #[must_use]
    pub fn device(&self) -> &DeviceSpec {
        &self.device
    }

    /// Runs a compiled model through the fused-block engine.
    ///
    /// # Errors
    ///
    /// Returns a [`RuntimeError`] if inputs are missing/mismatched or a
    /// kernel fails.
    pub fn run_compiled(
        &self,
        model: &CompiledModel,
        inputs: &HashMap<String, Tensor>,
    ) -> Result<ExecutionReport, RuntimeError> {
        // The model carries its compiled kernels and (after the first run)
        // its materialized weight store: repeated inference never
        // re-compiles the plan and never re-materializes or re-packs a
        // weight — every run shares the same Arc-backed tensors, across
        // executors and across threads.
        let store = WeightStore::of_model(model);
        self.run_plan_with_store(
            model.graph(),
            &model.plan,
            &model.engine,
            &store,
            inputs,
            None,
        )
    }

    /// Runs a compiled model accepting any batch size: the leading (batch)
    /// dimension of the provided inputs may differ from the batch size the
    /// model was compiled at. When it does, the model's expensive fusion
    /// plan is reused verbatim and only cheap shape inference + code
    /// generation re-run for the requested batch
    /// ([`CompiledModel::instance_for_batch`], cached on the model), so one
    /// compiled plan — one plan-cache entry — serves every batch size.
    ///
    /// The weight store is shared with the native path (weights are
    /// batch-free and value ids are stable under rebatching), and because
    /// every kernel partitions work so each thread/lane owns whole output
    /// elements of independent batch items, outputs are **bit-identical** to
    /// running each batch row through [`Executor::run_compiled`] separately.
    ///
    /// # Errors
    ///
    /// Returns a [`RuntimeError`] if inputs are missing, disagree on their
    /// batch size, or mismatch the model beyond the batch dimension; and
    /// [`RuntimeError::Core`] when the model cannot be rebatched (e.g. an
    /// operator whose attributes bake in the native batch size).
    pub fn run_compiled_batched(
        &self,
        model: &CompiledModel,
        inputs: &HashMap<String, Tensor>,
    ) -> Result<ExecutionReport, RuntimeError> {
        let graph = model.graph();
        let batch = self.requested_batch(graph, inputs)?;
        if batch.is_none() || batch == model.native_batch() {
            // Native batch (or nothing to rebatch): the precompiled engine
            // serves the request directly.
            return self.run_compiled(model, inputs);
        }
        let instance = model
            .instance_for_batch(batch.expect("checked above"))
            .map_err(RuntimeError::Core)?;
        let store = WeightStore::of_model(model);
        self.run_plan_with_store(
            instance.graph(),
            &model.plan,
            instance.engine(),
            &store,
            inputs,
            None,
        )
    }

    /// Runs a compiled model accepting any KV-cache (sequence) length: the
    /// marked sequence axes ([`Graph::mark_seq_axis`]) of the provided
    /// inputs may differ from the length the model was compiled at. When
    /// they do, the model's expensive fusion plan is reused verbatim and
    /// only cheap shape inference + code generation re-run for the
    /// requested length ([`CompiledModel::instance_for_seq`], cached on the
    /// model) — the per-step dispatch of an autoregressive decode loop.
    ///
    /// Inputs are taken as `Arc<Tensor>` so the growing KV-cache tensors a
    /// `DecodeSession` holds are shared into the engine without copying a
    /// cache that gets larger every token. The weight store is shared with
    /// the native path (weights are length-free and value ids are stable
    /// under rebinding), and outputs are bit-identical across thread counts
    /// and scalar mode exactly as for [`Executor::run_compiled`].
    ///
    /// # Errors
    ///
    /// Returns a [`RuntimeError`] if inputs are missing, disagree on their
    /// sequence length, or mismatch the model beyond the marked axes; and
    /// [`RuntimeError::Core`] when the model cannot be rebound (e.g. an
    /// operator whose attributes bake in the native sequence length).
    pub fn run_compiled_seq(
        &self,
        model: &CompiledModel,
        inputs: &HashMap<String, Arc<Tensor>>,
    ) -> Result<ExecutionReport, RuntimeError> {
        let graph = model.graph();
        let seq_len = self.requested_seq(graph, inputs)?;
        let store = WeightStore::of_model(model);
        if seq_len.is_none() || seq_len == model.native_seq_len() {
            // Native length (or nothing to rebind): the precompiled engine
            // serves the request directly.
            return self.run_plan_with_store_arc(
                graph,
                &model.plan,
                &model.engine,
                &store,
                inputs,
                None,
            );
        }
        let instance = model
            .instance_for_seq(seq_len.expect("checked above"))
            .map_err(RuntimeError::Core)?;
        self.run_plan_with_store_arc(
            instance.graph(),
            &model.plan,
            instance.engine(),
            &store,
            inputs,
            None,
        )
    }

    /// The sequence length the provided inputs request, read off the marked
    /// sequence axes. `None` when no input is marked or a marked input's
    /// rank disagrees with the graph (the native path then reports the
    /// precise mismatch); an error when inputs are missing or two marked
    /// inputs disagree on the length.
    fn requested_seq(
        &self,
        graph: &Graph,
        inputs: &HashMap<String, Arc<Tensor>>,
    ) -> Result<Option<usize>, RuntimeError> {
        let mut seq_len: Option<usize> = None;
        for &input_id in graph.inputs() {
            let Some(axis) = graph.seq_axis(input_id) else {
                continue;
            };
            let value = graph.value(input_id);
            let tensor = inputs
                .get(&value.name)
                .ok_or_else(|| RuntimeError::MissingInput {
                    name: value.name.clone(),
                })?;
            if tensor.shape().rank() != value.shape.rank() {
                return Ok(None);
            }
            let s = tensor.shape().dim(axis);
            match seq_len {
                None => seq_len = Some(s),
                Some(prev) if prev != s => {
                    let mut expected = value.shape.dims().to_vec();
                    expected[axis] = prev;
                    return Err(RuntimeError::InputShapeMismatch {
                        name: value.name.clone(),
                        expected,
                        actual: tensor.shape().dims().to_vec(),
                    });
                }
                Some(_) => {}
            }
        }
        Ok(seq_len)
    }

    /// The batch size the provided inputs request, by the leading-dimension
    /// convention. `None` when the graph has no inputs or an input's rank
    /// disagrees with the graph (the native path then reports the precise
    /// mismatch); an error when inputs are missing or disagree with each
    /// other on the batch size.
    fn requested_batch(
        &self,
        graph: &Graph,
        inputs: &HashMap<String, Tensor>,
    ) -> Result<Option<usize>, RuntimeError> {
        let mut batch: Option<usize> = None;
        for &input_id in graph.inputs() {
            let value = graph.value(input_id);
            let tensor = inputs
                .get(&value.name)
                .ok_or_else(|| RuntimeError::MissingInput {
                    name: value.name.clone(),
                })?;
            if value.shape.rank() == 0 || tensor.shape().rank() != value.shape.rank() {
                return Ok(None);
            }
            let b = tensor.shape().dim(0);
            match batch {
                None => batch = Some(b),
                Some(prev) if prev != b => {
                    let mut expected = value.shape.dims().to_vec();
                    expected[0] = prev;
                    return Err(RuntimeError::InputShapeMismatch {
                        name: value.name.clone(),
                        expected,
                        actual: tensor.shape().dims().to_vec(),
                    });
                }
                Some(_) => {}
            }
        }
        Ok(batch)
    }

    /// Runs a compiled model like [`Executor::run_compiled`] while recording
    /// each fused block's **measured wall-clock latency** (µs) into `db`,
    /// under exactly the key the fusion planner consults during exploration
    /// ([`dnnf_core::block_profile_key`]). Persisting that database and
    /// pre-loading it into the next compilation
    /// ([`dnnf_core::Compiler::with_database`]) makes the plan search
    /// optimize against values measured on this host instead of the static
    /// analytic estimates — the paper's offline profiling step.
    ///
    /// Outputs are bit-identical to [`Executor::run_compiled`]; only the
    /// timing instrumentation differs.
    ///
    /// # Errors
    ///
    /// Returns a [`RuntimeError`] if inputs are missing or mismatched, or a
    /// kernel fails.
    pub fn profile_compiled(
        &self,
        model: &CompiledModel,
        inputs: &HashMap<String, Tensor>,
        db: &mut ProfileDatabase,
    ) -> Result<ExecutionReport, RuntimeError> {
        let store = WeightStore::of_model(model);
        self.run_plan_with_store(
            model.graph(),
            &model.plan,
            &model.engine,
            &store,
            inputs,
            Some(db),
        )
    }

    /// Runs a compiled model against a caller-supplied [`WeightStore`]
    /// instead of the model's cached one. Outputs are bit-identical for any
    /// store built from the model's graph — packed or unpacked, panels only
    /// change access patterns — so this exists for packed-vs-unpacked
    /// differential tests and the `conv_pack_speedup` benchmark column
    /// (which times fused runs with [`WeightStore::build_unpacked`]).
    ///
    /// # Errors
    ///
    /// Same contract as [`Executor::run_compiled`].
    pub fn run_compiled_with_store(
        &self,
        model: &CompiledModel,
        store: &WeightStore,
        inputs: &HashMap<String, Tensor>,
    ) -> Result<ExecutionReport, RuntimeError> {
        self.run_plan_with_store(
            model.graph(),
            &model.plan,
            &model.engine,
            store,
            inputs,
            None,
        )
    }

    /// Runs a graph without any fusion (every operator is its own kernel)
    /// through the reference interpreter. This is the unfused baseline —
    /// `OurB` in the paper's evaluation — and the semantic oracle of the
    /// differential tests.
    ///
    /// # Errors
    ///
    /// Returns a [`RuntimeError`] if inputs are missing/mismatched or a
    /// kernel fails.
    pub fn run_unfused(
        &self,
        graph: &Graph,
        inputs: &HashMap<String, Tensor>,
    ) -> Result<ExecutionReport, RuntimeError> {
        let ecg = Ecg::new(graph.clone());
        let plan = FusionPlan::singletons(&ecg);
        self.run_plan_reference(graph, &plan, inputs)
    }

    /// Estimates the counters of executing a graph under a plan *without*
    /// running any kernels: latency, traffic, peak memory, utilization and
    /// (optionally) cache statistics are produced from the cost model and the
    /// access trace alone. This is what the benchmark harness uses for the
    /// full-depth models, where executing reference kernels would be
    /// pointlessly slow and the paper's metrics are all counter-based.
    #[must_use]
    pub fn estimate_plan(&self, graph: &Graph, plan: &FusionPlan) -> (Counters, MemoryPlan) {
        let order = plan.execution_order(graph);
        let memory = MemoryPlan::build(graph, plan, &order, self.device.elem_bytes);
        let mut acct = self.accounting(graph);
        for &block_idx in &order {
            let block = &plan.blocks()[block_idx];
            self.account_block(graph, plan, block, &mut acct);
        }
        let counters = self.finish(acct, &memory);
        (counters, memory)
    }

    /// Estimates the counters of the unfused execution of a graph (every
    /// operator its own kernel), without running kernels.
    #[must_use]
    pub fn estimate_unfused(&self, graph: &Graph) -> (Counters, MemoryPlan) {
        let ecg = Ecg::new(graph.clone());
        let plan = FusionPlan::singletons(&ecg);
        self.estimate_plan(graph, &plan)
    }

    /// Runs a graph under an explicit fusion plan through the fused-block
    /// engine: each block executes as one compiled kernel, boundary tensors
    /// live in `Arc`-backed slot storage keyed by value id, and output
    /// buffers are recycled through an arena as the memory plan's lifetimes
    /// expire.
    ///
    /// # Errors
    ///
    /// Returns a [`RuntimeError`] if inputs are missing/mismatched or a
    /// kernel fails.
    pub fn run_plan(
        &self,
        graph: &Graph,
        plan: &FusionPlan,
        inputs: &HashMap<String, Tensor>,
    ) -> Result<ExecutionReport, RuntimeError> {
        let engine = compile_plan(graph, plan);
        self.run_plan_with_engine(graph, plan, &engine, inputs)
    }

    /// Engine dispatch with pre-compiled kernels — the path behind
    /// [`Executor::run_plan`] (ad-hoc plans, compiled on the spot) and
    /// [`Executor::run_compiled`] (kernels cached in the [`CompiledModel`]).
    /// Callers timing repeated inference should compile once with
    /// [`dnnf_core::compile_plan`] and dispatch here, so per-run cost never
    /// includes plan compilation.
    ///
    /// This entry point has no [`CompiledModel`] to cache on, so it builds a
    /// fresh [`WeightStore`] per call — the *uncached* configuration
    /// `bench_exec` reports as `uncached_run_ms`. [`Executor::run_compiled`]
    /// reuses the model's cached store instead; outputs are bit-identical
    /// either way.
    ///
    /// # Errors
    ///
    /// Returns a [`RuntimeError`] if inputs are missing/mismatched or a
    /// kernel fails.
    pub fn run_plan_with_engine(
        &self,
        graph: &Graph,
        plan: &FusionPlan,
        engine: &dnnf_core::CompiledPlan,
        inputs: &HashMap<String, Tensor>,
    ) -> Result<ExecutionReport, RuntimeError> {
        let store = WeightStore::build(graph);
        self.run_plan_with_store(graph, plan, engine, &store, inputs, None)
    }

    /// [`Executor::run_plan_with_store_arc`] over a map of owned tensors:
    /// each graph input is cloned into a shared handle once per run.
    fn run_plan_with_store(
        &self,
        graph: &Graph,
        plan: &FusionPlan,
        engine: &dnnf_core::CompiledPlan,
        store: &WeightStore,
        inputs: &HashMap<String, Tensor>,
        profile: Option<&mut ProfileDatabase>,
    ) -> Result<ExecutionReport, RuntimeError> {
        let shared: HashMap<String, Arc<Tensor>> = inputs
            .iter()
            .map(|(name, tensor)| (name.clone(), Arc::new(tensor.clone())))
            .collect();
        self.run_plan_with_store_arc(graph, plan, engine, store, &shared, profile)
    }

    /// The shared engine-dispatch path: boundary tensors in slot storage,
    /// inputs and weights handed out by `Arc` clone (no copying, no
    /// re-materialization), prepacked panels forwarded to the kernels.
    fn run_plan_with_store_arc(
        &self,
        graph: &Graph,
        plan: &FusionPlan,
        engine: &dnnf_core::CompiledPlan,
        store: &WeightStore,
        inputs: &HashMap<String, Arc<Tensor>>,
        mut profile: Option<&mut ProfileDatabase>,
    ) -> Result<ExecutionReport, RuntimeError> {
        let order = plan.execution_order(graph);
        let memory = MemoryPlan::build(graph, plan, &order, self.device.elem_bytes);

        // Slot-indexed boundary storage: inputs, weights, block outputs.
        let mut env: Vec<Option<Arc<Tensor>>> = vec![None; graph.value_count()];
        for &input_id in graph.inputs() {
            let tensor = self.checked_input_arc(graph, input_id, inputs)?;
            env[input_id.index()] = Some(Arc::clone(tensor));
        }
        for value in graph.values() {
            if value.is_weight() {
                env[value.id.index()] = store.get(value.id).cloned();
            }
        }

        // Buffer recycling: each boundary value's buffer returns to the
        // arena right after the block at its death position has executed.
        let mut deaths: Vec<Vec<ValueId>> = vec![Vec::new(); order.len()];
        for lifetime in &memory.lifetimes {
            if !graph.outputs().contains(&lifetime.value) {
                deaths[lifetime.death].push(lifetime.value);
            }
        }
        let mut arena = TensorArena::new();
        let workers = self.options.pool();

        let mut acct = self.accounting(graph);
        for (pos, &block_idx) in order.iter().enumerate() {
            let block = &plan.blocks()[block_idx];
            let kernel = engine.kernel(block_idx);
            let started = profile.as_ref().map(|_| std::time::Instant::now());
            let produced = kernel
                .run(
                    graph,
                    &mut |v| env[v.index()].clone(),
                    store.packed(),
                    &mut arena,
                    workers,
                )
                .map_err(RuntimeError::Core)?;
            if let (Some(db), Some(started)) = (profile.as_deref_mut(), started) {
                let micros = started.elapsed().as_secs_f64() * 1e6;
                db.record(dnnf_core::block_profile_key(graph, &block.nodes), micros);
            }
            for (out_id, tensor) in produced {
                env[out_id.index()] = Some(Arc::new(tensor));
            }
            self.account_block(graph, plan, block, &mut acct);
            for &dead in &deaths[pos] {
                if let Some(handle) = env[dead.index()].take() {
                    if let Ok(tensor) = Arc::try_unwrap(handle) {
                        arena.recycle(tensor.into_vec());
                    }
                }
            }
        }

        let counters = self.finish(acct, &memory);
        // Graph outputs are excluded from recycling, so each slot holds the
        // only reference and unwraps without copying the tensor.
        let outputs = self.collect_outputs(graph, |id| {
            env[id.index()]
                .take()
                .map(|handle| Arc::try_unwrap(handle).unwrap_or_else(|rc| (*rc).clone()))
        })?;
        Ok(ExecutionReport {
            outputs,
            counters,
            memory,
        })
    }

    /// Runs a graph under an explicit fusion plan with the per-operator
    /// reference interpreter: every node executes its reference kernel and
    /// every boundary tensor is cloned into the environment. Slower than
    /// [`Executor::run_plan`] by construction — this path *defines* the
    /// semantics the engine must reproduce.
    ///
    /// # Errors
    ///
    /// Returns a [`RuntimeError`] if inputs are missing/mismatched or a
    /// kernel fails.
    pub fn run_plan_reference(
        &self,
        graph: &Graph,
        plan: &FusionPlan,
        inputs: &HashMap<String, Tensor>,
    ) -> Result<ExecutionReport, RuntimeError> {
        // Environment of boundary tensors: inputs, weights, block outputs.
        let mut env: HashMap<ValueId, Tensor> = HashMap::new();
        for &input_id in graph.inputs() {
            let tensor = self.checked_input(graph, input_id, inputs)?;
            env.insert(input_id, tensor.clone());
        }
        for (id, tensor) in materialize_weights(graph) {
            env.insert(id, tensor);
        }

        let order = plan.execution_order(graph);
        let memory = MemoryPlan::build(graph, plan, &order, self.device.elem_bytes);
        let mut acct = self.accounting(graph);

        for &block_idx in &order {
            let block = &plan.blocks()[block_idx];
            // --- Functional execution of the block ---
            let mut scratch: HashMap<ValueId, Tensor> = HashMap::new();
            for &node_id in &block.nodes {
                let node = graph.node(node_id);
                let input_tensors: Vec<&Tensor> = node
                    .inputs
                    .iter()
                    .map(|v| {
                        scratch.get(v).or_else(|| env.get(v)).ok_or_else(|| {
                            RuntimeError::Graph(dnnf_graph::GraphError::Invalid {
                                reason: format!(
                                    "value `{}` not available for node `{}`",
                                    graph.value(*v).name,
                                    node.name
                                ),
                            })
                        })
                    })
                    .collect::<Result<_, _>>()?;
                let outputs = execute(node.op, &node.attrs, &input_tensors)?;
                for (&out_id, tensor) in node.outputs.iter().zip(outputs) {
                    scratch.insert(out_id, tensor);
                }
            }
            // Promote escaping outputs to the environment; everything else in
            // `scratch` is dropped — it was never "materialized".
            for &node_id in &block.nodes {
                for &out_id in &graph.node(node_id).outputs {
                    if plan.value_escapes(graph, out_id) {
                        if let Some(t) = scratch.get(&out_id) {
                            env.insert(out_id, t.clone());
                        }
                    }
                }
            }
            self.account_block(graph, plan, block, &mut acct);
        }

        let counters = self.finish(acct, &memory);
        let outputs = self.collect_outputs(graph, |id| env.get(&id).cloned())?;
        Ok(ExecutionReport {
            outputs,
            counters,
            memory,
        })
    }

    fn checked_input<'a>(
        &self,
        graph: &Graph,
        input_id: ValueId,
        inputs: &'a HashMap<String, Tensor>,
    ) -> Result<&'a Tensor, RuntimeError> {
        let value = graph.value(input_id);
        let tensor = inputs
            .get(&value.name)
            .ok_or_else(|| RuntimeError::MissingInput {
                name: value.name.clone(),
            })?;
        if tensor.shape() != &value.shape {
            return Err(RuntimeError::InputShapeMismatch {
                name: value.name.clone(),
                expected: value.shape.dims().to_vec(),
                actual: tensor.shape().dims().to_vec(),
            });
        }
        Ok(tensor)
    }

    fn checked_input_arc<'a>(
        &self,
        graph: &Graph,
        input_id: ValueId,
        inputs: &'a HashMap<String, Arc<Tensor>>,
    ) -> Result<&'a Arc<Tensor>, RuntimeError> {
        let value = graph.value(input_id);
        let tensor = inputs
            .get(&value.name)
            .ok_or_else(|| RuntimeError::MissingInput {
                name: value.name.clone(),
            })?;
        if tensor.shape() != &value.shape {
            return Err(RuntimeError::InputShapeMismatch {
                name: value.name.clone(),
                expected: value.shape.dims().to_vec(),
                actual: tensor.shape().dims().to_vec(),
            });
        }
        Ok(tensor)
    }

    fn collect_outputs(
        &self,
        graph: &Graph,
        mut get: impl FnMut(ValueId) -> Option<Tensor>,
    ) -> Result<Vec<Tensor>, RuntimeError> {
        graph
            .outputs()
            .iter()
            .map(|&id| {
                get(id).ok_or_else(|| {
                    RuntimeError::Graph(dnnf_graph::GraphError::Invalid {
                        reason: "graph output was never produced".into(),
                    })
                })
            })
            .collect()
    }

    /// Virtual addresses for the cache simulation: each value gets a
    /// 64-byte-aligned region of a flat address space.
    fn accounting(&self, graph: &Graph) -> Accounting {
        let elem_bytes = self.device.elem_bytes;
        let scale = |bytes: usize| bytes as u64 / 4 * elem_bytes;
        let mut addresses: Vec<u64> = Vec::with_capacity(graph.value_count());
        let mut next_addr = 0u64;
        for value in graph.values() {
            addresses.push(next_addr);
            let bytes = scale(value.size_bytes()).max(1);
            next_addr += bytes.div_ceil(64) * 64;
        }
        Accounting {
            cost_model: DeviceCostModel::new(self.device.clone()),
            work_model: DeviceLatencyModel::new(self.device.clone()),
            cache: CacheHierarchy::new(&self.device.cache),
            counters: Counters::default(),
            works: Vec::new(),
            addresses,
        }
    }

    fn account_block(
        &self,
        graph: &Graph,
        plan: &FusionPlan,
        block: &dnnf_core::FusionBlock,
        acct: &mut Accounting,
    ) {
        let elem_bytes = self.device.elem_bytes;
        let work = acct.work_model.block_work(graph, &block.nodes);
        acct.counters.kernel_launches += 1;
        acct.counters.flops += work.flops;
        acct.counters.memory_access_bytes += work.boundary_elems * elem_bytes;
        acct.counters.latency_us += acct.cost_model.kernel_latency_us(&work);
        if self.simulate_cache {
            self.simulate_block_accesses(
                graph,
                plan,
                block.id,
                &block.nodes,
                &acct.addresses,
                &mut acct.cache,
            );
        }
        acct.works.push(work);
    }

    fn finish(&self, acct: Accounting, memory: &MemoryPlan) -> Counters {
        let mut counters = acct.counters;
        counters.peak_memory_bytes = memory.peak_bytes();
        counters.utilization_percent = acct.cost_model.utilization_percent(&acct.works);
        counters.cache = acct.cache.stats();
        counters
    }

    /// Feeds the block's boundary reads and writes through the cache
    /// simulator (internal values never touch memory).
    fn simulate_block_accesses(
        &self,
        graph: &Graph,
        plan: &FusionPlan,
        block_id: usize,
        nodes: &[dnnf_graph::NodeId],
        addresses: &[u64],
        cache: &mut CacheHierarchy,
    ) {
        let elem_bytes = self.device.elem_bytes;
        let scale = |bytes: usize| bytes as u64 / 4 * elem_bytes;
        let in_block = |n: dnnf_graph::NodeId| plan.block_of(n) == block_id;
        let mut seen: std::collections::BTreeSet<ValueId> = std::collections::BTreeSet::new();
        for &node_id in nodes {
            let node = graph.node(node_id);
            for &input in &node.inputs {
                let v = graph.value(input);
                let internal = v.producer.map(&in_block).unwrap_or(false);
                if !internal && seen.insert(input) {
                    cache.access(addresses[input.index()], scale(v.size_bytes()));
                }
            }
            for &output in &node.outputs {
                let v = graph.value(output);
                if plan.value_escapes(graph, output) && seen.insert(output) {
                    cache.access(addresses[output.index()], scale(v.size_bytes()));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnnf_core::{Compiler, CompilerOptions};
    use dnnf_ops::{Attrs, OpKind};
    use dnnf_tensor::Shape;

    /// Conv -> bias Add -> Relu -> MaxPool -> Flatten -> MatMul network.
    fn small_cnn() -> Graph {
        let mut g = Graph::new("small-cnn");
        let x = g.add_input("x", Shape::new(vec![1, 3, 8, 8]));
        let w = g.add_weight("conv.w", Shape::new(vec![4, 3, 3, 3]));
        let conv = g
            .add_op(
                OpKind::Conv,
                Attrs::new().with_ints("pads", vec![1, 1, 1, 1]),
                &[x, w],
                "conv",
            )
            .unwrap()[0];
        let b = g.add_weight("conv.b", Shape::new(vec![1, 4, 1, 1]));
        let bias = g
            .add_op(OpKind::Add, Attrs::new(), &[conv, b], "bias")
            .unwrap()[0];
        let relu = g
            .add_op(OpKind::Relu, Attrs::new(), &[bias], "relu")
            .unwrap()[0];
        let pool = g
            .add_op(
                OpKind::MaxPool,
                Attrs::new()
                    .with_ints("kernel_shape", vec![2, 2])
                    .with_ints("strides", vec![2, 2]),
                &[relu],
                "pool",
            )
            .unwrap()[0];
        let flat = g
            .add_op(
                OpKind::Flatten,
                Attrs::new().with_int("axis", 1),
                &[pool],
                "flatten",
            )
            .unwrap()[0];
        let fc = g.add_weight("fc.w", Shape::new(vec![64, 10]));
        let out = g
            .add_op(OpKind::MatMul, Attrs::new(), &[flat, fc], "fc")
            .unwrap()[0];
        g.mark_output(out);
        g
    }

    fn inputs_for(graph: &Graph) -> HashMap<String, Tensor> {
        graph
            .inputs()
            .iter()
            .map(|&id| {
                let v = graph.value(id);
                (v.name.clone(), Tensor::random(v.shape.clone(), 42))
            })
            .collect()
    }

    #[test]
    fn threaded_execution_is_bit_identical_to_serial_with_identical_counters() {
        let g = small_cnn();
        let inputs = inputs_for(&g);
        let mut compiler = Compiler::new(CompilerOptions::default());
        let compiled = compiler.compile(&g).unwrap();
        let serial =
            Executor::new(DeviceSpec::snapdragon_865_cpu()).with_options(ExecOptions::serial());
        let base = serial.run_compiled(&compiled, &inputs).unwrap();
        for threads in [2, 8] {
            // min_parallel_work = 0 forces the parallel partitioning even on
            // this small model.
            let threaded = serial.clone().with_options(ExecOptions {
                num_threads: threads,
                min_parallel_work: 0,
                ..ExecOptions::serial()
            });
            assert_eq!(threaded.options().num_threads, threads);
            let report = threaded.run_compiled(&compiled, &inputs).unwrap();
            for (a, b) in base.outputs.iter().zip(&report.outputs) {
                assert_eq!(
                    a.first_disagreement(b, 0.0),
                    None,
                    "threaded execution diverged at {threads} threads"
                );
            }
            // Threading changes wall-clock only; the modeled device counters
            // and memory plan are identical.
            assert_eq!(base.counters, report.counters);
            assert_eq!(base.memory, report.memory);
        }
    }

    #[test]
    fn force_scalar_execution_is_bit_identical_with_identical_counters() {
        let g = small_cnn();
        let inputs = inputs_for(&g);
        let mut compiler = Compiler::new(CompilerOptions::default());
        let compiled = compiler.compile(&g).unwrap();
        let simd =
            Executor::new(DeviceSpec::snapdragon_865_cpu()).with_options(ExecOptions::serial());
        let base = simd.run_compiled(&compiled, &inputs).unwrap();
        let scalar = simd
            .clone()
            .with_options(ExecOptions::serial().scalar_kernels());
        assert!(scalar.options().force_scalar);
        let report = scalar.run_compiled(&compiled, &inputs).unwrap();
        for (a, b) in base.outputs.iter().zip(&report.outputs) {
            assert_eq!(
                a.first_disagreement(b, 0.0),
                None,
                "force_scalar changed output bits"
            );
        }
        // SIMD changes wall-clock only; the modeled counters are identical.
        assert_eq!(base.counters, report.counters);
    }

    #[test]
    fn batched_execution_is_bit_identical_to_per_request_runs() {
        let g = small_cnn();
        let mut compiler = Compiler::new(CompilerOptions::default());
        let compiled = compiler.compile(&g).unwrap();
        let executor = Executor::new(DeviceSpec::snapdragon_865_cpu());
        // One polymorphic plan serves several batch sizes.
        for batch in [1usize, 2, 5] {
            // Batch input: `batch` independent rows concatenated along dim 0.
            let per_row: Vec<Tensor> = (0..batch)
                .map(|i| Tensor::random(Shape::new(vec![1, 3, 8, 8]), 100 + i as u64))
                .collect();
            let mut data = Vec::new();
            for t in &per_row {
                data.extend_from_slice(t.data());
            }
            let batched: HashMap<String, Tensor> = [(
                "x".to_string(),
                Tensor::from_vec(Shape::new(vec![batch, 3, 8, 8]), data).unwrap(),
            )]
            .into();
            let report = executor.run_compiled_batched(&compiled, &batched).unwrap();
            assert_eq!(report.outputs[0].shape().dims(), &[batch, 10]);
            // Each row is bit-identical to its own single-request run.
            for (i, row) in per_row.iter().enumerate() {
                let single: HashMap<String, Tensor> = [("x".to_string(), row.clone())].into();
                let direct = executor.run_compiled(&compiled, &single).unwrap();
                let got = &report.outputs[0].data()[i * 10..(i + 1) * 10];
                assert_eq!(
                    got,
                    direct.outputs[0].data(),
                    "batch {batch} row {i} diverged from the direct run"
                );
            }
        }
        // Inconsistent batch sizes across inputs are rejected up front.
        let mut two_inputs = Graph::new("two-in");
        let a = two_inputs.add_input("a", Shape::new(vec![1, 4]));
        let b = two_inputs.add_input("b", Shape::new(vec![1, 4]));
        let sum = two_inputs
            .add_op(OpKind::Add, Attrs::new(), &[a, b], "sum")
            .unwrap()[0];
        two_inputs.mark_output(sum);
        let compiled2 = Compiler::new(CompilerOptions::default())
            .compile(&two_inputs)
            .unwrap();
        let bad: HashMap<String, Tensor> = [
            ("a".to_string(), Tensor::zeros(Shape::new(vec![2, 4]))),
            ("b".to_string(), Tensor::zeros(Shape::new(vec![3, 4]))),
        ]
        .into();
        assert!(matches!(
            executor.run_compiled_batched(&compiled2, &bad),
            Err(RuntimeError::InputShapeMismatch { .. })
        ));
    }

    #[test]
    fn fused_and_unfused_execution_agree_numerically() {
        let g = small_cnn();
        let inputs = inputs_for(&g);
        let executor = Executor::new(DeviceSpec::snapdragon_865_cpu());
        let unfused = executor.run_unfused(&g, &inputs).unwrap();

        let mut compiler = Compiler::new(CompilerOptions::default());
        let compiled = compiler.compile(&g).unwrap();
        let fused = executor.run_compiled(&compiled, &inputs).unwrap();

        assert_eq!(unfused.outputs.len(), fused.outputs.len());
        for (a, b) in unfused.outputs.iter().zip(&fused.outputs) {
            assert!(a.allclose(b, 1e-4), "fusion changed the numerical result");
        }
    }

    #[test]
    fn engine_and_reference_interpreter_agree_on_the_same_plan() {
        // Same graph, same plan: the compiled engine must reproduce the
        // reference interpreter to within float-identical results.
        let g = small_cnn();
        let inputs = inputs_for(&g);
        let executor = Executor::new(DeviceSpec::snapdragon_865_cpu()).without_cache_simulation();
        let ecg = Ecg::new(g.clone());
        let plan = FusionPlan::singletons(&ecg);
        let engine = executor.run_plan(&g, &plan, &inputs).unwrap();
        let reference = executor.run_plan_reference(&g, &plan, &inputs).unwrap();
        for (a, b) in engine.outputs.iter().zip(&reference.outputs) {
            assert!(a.allclose(b, 0.0), "engine diverged from reference");
        }
        // And the counters are computed identically on both paths.
        assert_eq!(engine.counters, reference.counters);
        assert_eq!(engine.memory, reference.memory);
    }

    #[test]
    fn fusion_reduces_latency_launches_and_memory_traffic() {
        let g = small_cnn();
        let inputs = inputs_for(&g);
        let executor = Executor::new(DeviceSpec::snapdragon_865_gpu());
        let unfused = executor.run_unfused(&g, &inputs).unwrap();
        let mut compiler = Compiler::new(CompilerOptions::default());
        let compiled = compiler.compile(&g).unwrap();
        let fused = executor.run_compiled(&compiled, &inputs).unwrap();

        assert!(fused.counters.kernel_launches < unfused.counters.kernel_launches);
        assert!(fused.counters.memory_access_bytes < unfused.counters.memory_access_bytes);
        assert!(fused.counters.latency_us < unfused.counters.latency_us);
        assert!(fused.counters.peak_memory_bytes <= unfused.counters.peak_memory_bytes);
        assert!(fused.counters.utilization_percent >= unfused.counters.utilization_percent);
    }

    #[test]
    fn cache_misses_drop_with_fusion() {
        let g = small_cnn();
        let inputs = inputs_for(&g);
        let executor = Executor::new(DeviceSpec::snapdragon_865_cpu());
        let unfused = executor.run_unfused(&g, &inputs).unwrap();
        let mut compiler = Compiler::new(CompilerOptions::default());
        let compiled = compiler.compile(&g).unwrap();
        let fused = executor.run_compiled(&compiled, &inputs).unwrap();
        let unfused_l2: u64 = unfused
            .counters
            .cache
            .level_misses
            .get(1)
            .copied()
            .unwrap_or(0);
        let fused_l2: u64 = fused
            .counters
            .cache
            .level_misses
            .get(1)
            .copied()
            .unwrap_or(0);
        assert!(fused_l2 <= unfused_l2);
    }

    #[test]
    fn missing_and_mismatched_inputs_are_rejected() {
        let g = small_cnn();
        let executor = Executor::new(DeviceSpec::snapdragon_865_cpu());
        let empty = HashMap::new();
        assert!(matches!(
            executor.run_unfused(&g, &empty),
            Err(RuntimeError::MissingInput { .. })
        ));
        let bad: HashMap<String, Tensor> =
            [("x".to_string(), Tensor::zeros(Shape::new(vec![2, 2])))].into();
        assert!(matches!(
            executor.run_unfused(&g, &bad),
            Err(RuntimeError::InputShapeMismatch { .. })
        ));
        // The engine path checks inputs the same way.
        let ecg = Ecg::new(g.clone());
        let plan = FusionPlan::singletons(&ecg);
        assert!(matches!(
            executor.run_plan(&g, &plan, &empty),
            Err(RuntimeError::MissingInput { .. })
        ));
    }

    #[test]
    fn latency_report_converts_to_milliseconds() {
        let g = small_cnn();
        let inputs = inputs_for(&g);
        let executor = Executor::new(DeviceSpec::snapdragon_865_cpu()).without_cache_simulation();
        let report = executor.run_unfused(&g, &inputs).unwrap();
        assert!((report.latency_ms() - report.counters.latency_us / 1e3).abs() < 1e-12);
        assert!(report.counters.flops > 0);
        // Cache simulation disabled: no per-level counters recorded.
        assert!(report.counters.cache.level_accesses.iter().all(|&a| a == 0));
    }

    #[test]
    fn gpu_uses_fp16_traffic_accounting() {
        let g = small_cnn();
        let inputs = inputs_for(&g);
        let cpu = Executor::new(DeviceSpec::snapdragon_865_cpu()).without_cache_simulation();
        let gpu = Executor::new(DeviceSpec::snapdragon_865_gpu()).without_cache_simulation();
        let cpu_report = cpu.run_unfused(&g, &inputs).unwrap();
        let gpu_report = gpu.run_unfused(&g, &inputs).unwrap();
        assert_eq!(
            cpu_report.counters.memory_access_bytes,
            2 * gpu_report.counters.memory_access_bytes
        );
    }
}
