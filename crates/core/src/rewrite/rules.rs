//! The concrete rewrite rules (paper Table 4 and Figure 2, plus the
//! fusion-facilitating simplifications).

use std::collections::{BTreeMap, BTreeSet};

use dnnf_graph::{Graph, Node, NodeId, ValueId};
use dnnf_ops::{Attrs, OpKind};
use dnnf_tensor::broadcast_shapes;

use super::{producer, rebuild_replacing, single_use, RewriteRule, RuleCategory};

/// The full default rule set.
#[must_use]
pub fn default_rules() -> Vec<Box<dyn RewriteRule>> {
    vec![
        Box::new(RecipMulAssociative),
        Box::new(SqrtPairAssociative),
        Box::new(AbsMulAssociative),
        Box::new(ReduceSumSquareAssociative),
        Box::new(DistributiveFactor),
        Box::new(MatMulFactor),
        Box::new(SquareSubDistributive),
        Box::new(BitShiftReduceSum),
        Box::new(ExpReduceProd),
        Box::new(ReorganizeChain),
        Box::new(TransposePairCancel),
        Box::new(IdentityElimination),
    ]
}

fn binary_inputs(node: &Node) -> Option<(ValueId, ValueId)> {
    if node.inputs.len() == 2 {
        Some((node.inputs[0], node.inputs[1]))
    } else {
        None
    }
}

fn other_operand(node: &Node, v: ValueId) -> Option<ValueId> {
    let (a, b) = binary_inputs(node)?;
    if a == v {
        Some(b)
    } else if b == v {
        Some(a)
    } else {
        None
    }
}

/// Checks that a node is a single-output producer of `value` with kind `op`
/// and that `value` is only used once (so folding it away is legal).
fn foldable_producer(graph: &Graph, value: ValueId, op: OpKind) -> Option<&Node> {
    let node = producer(graph, value)?;
    if node.op == op && single_use(graph, value) {
        Some(node)
    } else {
        None
    }
}

type Splice<'f> = dyn FnMut(
        &mut Graph,
        &BTreeMap<ValueId, ValueId>,
    ) -> Result<BTreeMap<ValueId, ValueId>, dnnf_graph::GraphError>
    + 'f;

fn apply(graph: &Graph, removed: BTreeSet<NodeId>, splice: &mut Splice<'_>) -> Option<Graph> {
    let rebuilt = rebuild_replacing(graph, &removed, splice).ok()?;
    rebuilt.validate().ok()?;
    Some(rebuilt)
}

// ---------------------------------------------------------------------------
// Associative rules
// ---------------------------------------------------------------------------

/// `Recip(A) ⊙ Recip(A ⊙ B)  →  Square(Recip(A)) ⊙ Recip(B)`
/// (Figure 2(a) / Table 4, Associative row 1). Same FLOPs, but `A` is loaded
/// once instead of twice and the intermediate `A ⊙ B` disappears.
#[derive(Debug)]
pub struct RecipMulAssociative;

impl RewriteRule for RecipMulAssociative {
    fn name(&self) -> &'static str {
        "assoc.recip-mul"
    }

    fn category(&self) -> RuleCategory {
        RuleCategory::Associative
    }

    fn try_apply(&self, graph: &Graph, partition: &[NodeId]) -> Option<Graph> {
        for &anchor in partition {
            let m = graph.node(anchor);
            if m.op != OpKind::Mul {
                continue;
            }
            let (x, y) = match binary_inputs(m) {
                Some(p) => p,
                None => continue,
            };
            for (plain, composed) in [(x, y), (y, x)] {
                let Some(rx) = foldable_producer(graph, plain, OpKind::Reciprocal) else {
                    continue;
                };
                let Some(ry) = foldable_producer(graph, composed, OpKind::Reciprocal) else {
                    continue;
                };
                let Some(inner) = foldable_producer(graph, ry.inputs[0], OpKind::Mul) else {
                    continue;
                };
                let a = rx.inputs[0];
                let Some(b) = other_operand(inner, a) else {
                    continue;
                };
                let out_value = m.outputs[0];
                let removed: BTreeSet<NodeId> =
                    [m.id, rx.id, ry.id, inner.id].into_iter().collect();
                let result = apply(graph, removed, &mut |g, map| {
                    let r1 =
                        g.add_op(OpKind::Reciprocal, Attrs::new(), &[map[&a]], "rw.recip_a")?[0];
                    let s = g.add_op(OpKind::Square, Attrs::new(), &[r1], "rw.square")?[0];
                    let r2 =
                        g.add_op(OpKind::Reciprocal, Attrs::new(), &[map[&b]], "rw.recip_b")?[0];
                    let out = g.add_op(OpKind::Mul, Attrs::new(), &[s, r2], "rw.mul")?[0];
                    Ok([(out_value, out)].into_iter().collect())
                });
                if result.is_some() {
                    return result;
                }
            }
        }
        None
    }
}

/// `(A ⊙ √B) ⊙ (√B ⊙ C)  →  A ⊙ B ⊙ C` (Table 4, Associative row 2).
#[derive(Debug)]
pub struct SqrtPairAssociative;

impl RewriteRule for SqrtPairAssociative {
    fn name(&self) -> &'static str {
        "assoc.sqrt-pair"
    }

    fn category(&self) -> RuleCategory {
        RuleCategory::Associative
    }

    fn try_apply(&self, graph: &Graph, partition: &[NodeId]) -> Option<Graph> {
        shared_operand_rule(
            graph,
            partition,
            OpKind::Sqrt,
            |g, map, a, b_source, c, out_value| {
                let m1 = g.add_op(
                    OpKind::Mul,
                    Attrs::new(),
                    &[map[&a], map[&b_source]],
                    "rw.mul_ab",
                )?[0];
                let out = g.add_op(OpKind::Mul, Attrs::new(), &[m1, map[&c]], "rw.mul_abc")?[0];
                Ok([(out_value, out)].into_iter().collect())
            },
            true,
        )
    }
}

/// `(A ⊙ ReduceSum(B)) ⊙ (ReduceSum(B) ⊙ C) → A ⊙ Square(ReduceSum(B)) ⊙ C`
/// (Table 4, Associative row 4). The reduction itself is kept; its result is
/// squared once instead of being multiplied in twice.
#[derive(Debug)]
pub struct ReduceSumSquareAssociative;

impl RewriteRule for ReduceSumSquareAssociative {
    fn name(&self) -> &'static str {
        "assoc.reducesum-square"
    }

    fn category(&self) -> RuleCategory {
        RuleCategory::Associative
    }

    fn try_apply(&self, graph: &Graph, partition: &[NodeId]) -> Option<Graph> {
        shared_operand_rule(
            graph,
            partition,
            OpKind::ReduceSum,
            |g, map, a, shared, c, out_value| {
                let sq = g.add_op(OpKind::Square, Attrs::new(), &[map[&shared]], "rw.square")?[0];
                let m1 = g.add_op(OpKind::Mul, Attrs::new(), &[map[&a], sq], "rw.mul_a")?[0];
                let out = g.add_op(OpKind::Mul, Attrs::new(), &[m1, map[&c]], "rw.mul_c")?[0];
                Ok([(out_value, out)].into_iter().collect())
            },
            false,
        )
    }
}

/// Common matcher for `Mul(Mul(A, S), Mul(S, C))` where `S` is produced by
/// `shared_op`. When `consume_shared` is true the shared producer is removed
/// and the splice receives the producer's *input*; otherwise the shared value
/// itself is passed through.
fn shared_operand_rule(
    graph: &Graph,
    partition: &[NodeId],
    shared_op: OpKind,
    mut build: impl FnMut(
        &mut Graph,
        &BTreeMap<ValueId, ValueId>,
        ValueId,
        ValueId,
        ValueId,
        ValueId,
    ) -> Result<BTreeMap<ValueId, ValueId>, dnnf_graph::GraphError>,
    consume_shared: bool,
) -> Option<Graph> {
    for &anchor in partition {
        let m = graph.node(anchor);
        if m.op != OpKind::Mul {
            continue;
        }
        let (x, y) = match binary_inputs(m) {
            Some(p) => p,
            None => continue,
        };
        let Some(p1) = foldable_producer(graph, x, OpKind::Mul) else {
            continue;
        };
        let Some(q1) = foldable_producer(graph, y, OpKind::Mul) else {
            continue;
        };
        // Find the shared operand produced by `shared_op`.
        let shared = p1.inputs.iter().copied().find(|&s| {
            q1.inputs.contains(&s)
                && producer(graph, s)
                    .map(|n| n.op == shared_op)
                    .unwrap_or(false)
                && graph.value(s).consumers.len() == 2
                && !graph.outputs().contains(&s)
        });
        let Some(shared) = shared else { continue };
        let Some(a) = other_operand(p1, shared) else {
            continue;
        };
        let Some(c) = other_operand(q1, shared) else {
            continue;
        };
        let shared_node = producer(graph, shared).expect("matched above");
        let out_value = m.outputs[0];
        let mut removed: BTreeSet<NodeId> = [m.id, p1.id, q1.id].into_iter().collect();
        let pass_value = if consume_shared {
            removed.insert(shared_node.id);
            shared_node.inputs[0]
        } else {
            shared
        };
        let result = apply(graph, removed, &mut |g, map| {
            build(g, map, a, pass_value, c, out_value)
        });
        if result.is_some() {
            return result;
        }
    }
    None
}

/// `Abs(A) ⊙ B ⊙ Abs(C)  →  Abs(A ⊙ C) ⊙ B` (Table 4, Associative row 3 —
/// commutativity swaps `B` and `Abs(C)` first, then associativity merges the
/// two `Abs`).
#[derive(Debug)]
pub struct AbsMulAssociative;

impl RewriteRule for AbsMulAssociative {
    fn name(&self) -> &'static str {
        "assoc.abs-mul"
    }

    fn category(&self) -> RuleCategory {
        RuleCategory::Associative
    }

    fn try_apply(&self, graph: &Graph, partition: &[NodeId]) -> Option<Graph> {
        for &anchor in partition {
            let m = graph.node(anchor);
            if m.op != OpKind::Mul {
                continue;
            }
            let (x, y) = match binary_inputs(m) {
                Some(p) => p,
                None => continue,
            };
            for (chain, abs_c_val) in [(x, y), (y, x)] {
                let Some(abs_c) = foldable_producer(graph, abs_c_val, OpKind::Abs) else {
                    continue;
                };
                let Some(inner) = foldable_producer(graph, chain, OpKind::Mul) else {
                    continue;
                };
                // Inner must be Abs(A) ⊙ B.
                let abs_a_val = inner
                    .inputs
                    .iter()
                    .copied()
                    .find(|&v| foldable_producer(graph, v, OpKind::Abs).is_some());
                let Some(abs_a_val) = abs_a_val else { continue };
                let abs_a = foldable_producer(graph, abs_a_val, OpKind::Abs).expect("checked");
                let Some(b) = other_operand(inner, abs_a_val) else {
                    continue;
                };
                let a = abs_a.inputs[0];
                let c = abs_c.inputs[0];
                let out_value = m.outputs[0];
                let removed: BTreeSet<NodeId> =
                    [m.id, inner.id, abs_a.id, abs_c.id].into_iter().collect();
                let result = apply(graph, removed, &mut |g, map| {
                    let ac =
                        g.add_op(OpKind::Mul, Attrs::new(), &[map[&a], map[&c]], "rw.mul_ac")?[0];
                    let abs_ac = g.add_op(OpKind::Abs, Attrs::new(), &[ac], "rw.abs_ac")?[0];
                    let out =
                        g.add_op(OpKind::Mul, Attrs::new(), &[abs_ac, map[&b]], "rw.mul_b")?[0];
                    Ok([(out_value, out)].into_iter().collect())
                });
                if result.is_some() {
                    return result;
                }
            }
        }
        None
    }
}

// ---------------------------------------------------------------------------
// Distributive rules
// ---------------------------------------------------------------------------

/// `A ⊙ C + A ⊙ B  →  A ⊙ (C + B)` (Table 4, Distributive row 1 /
/// Figure 2(b) element-wise case).
#[derive(Debug)]
pub struct DistributiveFactor;

impl RewriteRule for DistributiveFactor {
    fn name(&self) -> &'static str {
        "dist.mul-add-factor"
    }

    fn category(&self) -> RuleCategory {
        RuleCategory::Distributive
    }

    fn try_apply(&self, graph: &Graph, partition: &[NodeId]) -> Option<Graph> {
        for &anchor in partition {
            let add = graph.node(anchor);
            if add.op != OpKind::Add {
                continue;
            }
            let (x, y) = match binary_inputs(add) {
                Some(p) => p,
                None => continue,
            };
            let Some(mul1) = foldable_producer(graph, x, OpKind::Mul) else {
                continue;
            };
            let Some(mul2) = foldable_producer(graph, y, OpKind::Mul) else {
                continue;
            };
            let shared = mul1
                .inputs
                .iter()
                .copied()
                .find(|&s| mul2.inputs.contains(&s));
            let Some(shared) = shared else { continue };
            let Some(o1) = other_operand(mul1, shared) else {
                continue;
            };
            let Some(o2) = other_operand(mul2, shared) else {
                continue;
            };
            // The factored expression must keep the original output shape.
            let orig_shape = &graph.value(add.outputs[0]).shape;
            let Ok(sum_shape) = broadcast_shapes(&graph.value(o1).shape, &graph.value(o2).shape)
            else {
                continue;
            };
            let Ok(new_shape) = broadcast_shapes(&graph.value(shared).shape, &sum_shape) else {
                continue;
            };
            if &new_shape != orig_shape {
                continue;
            }
            let out_value = add.outputs[0];
            let removed: BTreeSet<NodeId> = [add.id, mul1.id, mul2.id].into_iter().collect();
            let result = apply(graph, removed, &mut |g, map| {
                let sum = g.add_op(OpKind::Add, Attrs::new(), &[map[&o1], map[&o2]], "rw.add")?[0];
                let out = g.add_op(OpKind::Mul, Attrs::new(), &[map[&shared], sum], "rw.mul")?[0];
                Ok([(out_value, out)].into_iter().collect())
            });
            if result.is_some() {
                return result;
            }
        }
        None
    }
}

/// `MatMul(A, B) + MatMul(A, C)  →  MatMul(A, B + C)` — the GEMM form of the
/// distributive property (Figure 2(b)), with a large #FLOPs reduction.
#[derive(Debug)]
pub struct MatMulFactor;

impl RewriteRule for MatMulFactor {
    fn name(&self) -> &'static str {
        "dist.matmul-factor"
    }

    fn category(&self) -> RuleCategory {
        RuleCategory::Distributive
    }

    fn try_apply(&self, graph: &Graph, partition: &[NodeId]) -> Option<Graph> {
        for &anchor in partition {
            let add = graph.node(anchor);
            if add.op != OpKind::Add {
                continue;
            }
            let (x, y) = match binary_inputs(add) {
                Some(p) => p,
                None => continue,
            };
            for op in [OpKind::MatMul, OpKind::Gemm] {
                let Some(mm1) = foldable_producer(graph, x, op) else {
                    continue;
                };
                let Some(mm2) = foldable_producer(graph, y, op) else {
                    continue;
                };
                if mm1.inputs.len() != 2 || mm2.inputs.len() != 2 {
                    continue;
                }
                if mm1.inputs[0] != mm2.inputs[0] {
                    continue;
                }
                if mm1.attrs != mm2.attrs {
                    continue;
                }
                let a = mm1.inputs[0];
                let b = mm1.inputs[1];
                let c = mm2.inputs[1];
                if graph.value(b).shape != graph.value(c).shape {
                    continue;
                }
                let out_value = add.outputs[0];
                let attrs = mm1.attrs.clone();
                let removed: BTreeSet<NodeId> = [add.id, mm1.id, mm2.id].into_iter().collect();
                let result = apply(graph, removed, &mut |g, map| {
                    let sum =
                        g.add_op(OpKind::Add, Attrs::new(), &[map[&b], map[&c]], "rw.add_bc")?[0];
                    let out = g.add_op(op, attrs.clone(), &[map[&a], sum], "rw.matmul")?[0];
                    Ok([(out_value, out)].into_iter().collect())
                });
                if result.is_some() {
                    return result;
                }
            }
        }
        None
    }
}

/// `Square(X) − X ⊙ C  →  X ⊙ (X − C)` (Table 4, Distributive row 3, with
/// `X = A + B` in the paper's statement).
#[derive(Debug)]
pub struct SquareSubDistributive;

impl RewriteRule for SquareSubDistributive {
    fn name(&self) -> &'static str {
        "dist.square-sub"
    }

    fn category(&self) -> RuleCategory {
        RuleCategory::Distributive
    }

    fn try_apply(&self, graph: &Graph, partition: &[NodeId]) -> Option<Graph> {
        for &anchor in partition {
            let sub = graph.node(anchor);
            if sub.op != OpKind::Sub {
                continue;
            }
            let (x, y) = match binary_inputs(sub) {
                Some(p) => p,
                None => continue,
            };
            let Some(square) = foldable_producer(graph, x, OpKind::Square) else {
                continue;
            };
            let Some(mul) = foldable_producer(graph, y, OpKind::Mul) else {
                continue;
            };
            let s = square.inputs[0];
            let Some(c) = other_operand(mul, s) else {
                continue;
            };
            let out_value = sub.outputs[0];
            let removed: BTreeSet<NodeId> = [sub.id, square.id, mul.id].into_iter().collect();
            let result = apply(graph, removed, &mut |g, map| {
                let diff = g.add_op(OpKind::Sub, Attrs::new(), &[map[&s], map[&c]], "rw.sub")?[0];
                let out = g.add_op(OpKind::Mul, Attrs::new(), &[map[&s], diff], "rw.mul")?[0];
                Ok([(out_value, out)].into_iter().collect())
            });
            if result.is_some() {
                return result;
            }
        }
        None
    }
}

// ---------------------------------------------------------------------------
// Commutative rules
// ---------------------------------------------------------------------------

/// `ReduceSum(BitShift(A, s))  →  BitShift(ReduceSum(A), s)` (Table 4,
/// Commutative row 2 / Figure 2(c)): the shift is applied to the reduced
/// tensor instead of every element.
#[derive(Debug)]
pub struct BitShiftReduceSum;

impl RewriteRule for BitShiftReduceSum {
    fn name(&self) -> &'static str {
        "comm.bitshift-reducesum"
    }

    fn category(&self) -> RuleCategory {
        RuleCategory::Commutative
    }

    fn try_apply(&self, graph: &Graph, partition: &[NodeId]) -> Option<Graph> {
        for &anchor in partition {
            let reduce = graph.node(anchor);
            if reduce.op != OpKind::ReduceSum {
                continue;
            }
            let x = reduce.inputs[0];
            let Some(shift) = foldable_producer(graph, x, OpKind::BitShift) else {
                continue;
            };
            let a = shift.inputs[0];
            let s = shift.inputs[1];
            // The shift amount must be a scalar so it still broadcasts after
            // the reduction.
            if graph.value(s).shape.numel() != 1 {
                continue;
            }
            let out_value = reduce.outputs[0];
            let reduce_attrs = reduce.attrs.clone();
            let removed: BTreeSet<NodeId> = [reduce.id, shift.id].into_iter().collect();
            let result = apply(graph, removed, &mut |g, map| {
                let rs = g.add_op(
                    OpKind::ReduceSum,
                    reduce_attrs.clone(),
                    &[map[&a]],
                    "rw.reduce",
                )?[0];
                let out = g.add_op(OpKind::BitShift, Attrs::new(), &[rs, map[&s]], "rw.shift")?[0];
                Ok([(out_value, out)].into_iter().collect())
            });
            if result.is_some() {
                return result;
            }
        }
        None
    }
}

/// `ReduceProd(Exp(A))  →  Exp(ReduceSum(A))` (Table 4, Commutative row 3).
#[derive(Debug)]
pub struct ExpReduceProd;

impl RewriteRule for ExpReduceProd {
    fn name(&self) -> &'static str {
        "comm.exp-reduceprod"
    }

    fn category(&self) -> RuleCategory {
        RuleCategory::Commutative
    }

    fn try_apply(&self, graph: &Graph, partition: &[NodeId]) -> Option<Graph> {
        for &anchor in partition {
            let reduce = graph.node(anchor);
            if reduce.op != OpKind::ReduceProd {
                continue;
            }
            let x = reduce.inputs[0];
            let Some(exp) = foldable_producer(graph, x, OpKind::Exp) else {
                continue;
            };
            let a = exp.inputs[0];
            let out_value = reduce.outputs[0];
            let reduce_attrs = reduce.attrs.clone();
            let removed: BTreeSet<NodeId> = [reduce.id, exp.id].into_iter().collect();
            let result = apply(graph, removed, &mut |g, map| {
                let rs = g.add_op(
                    OpKind::ReduceSum,
                    reduce_attrs.clone(),
                    &[map[&a]],
                    "rw.reduce",
                )?[0];
                let out = g.add_op(OpKind::Exp, Attrs::new(), &[rs], "rw.exp")?[0];
                Ok([(out_value, out)].into_iter().collect())
            });
            if result.is_some() {
                return result;
            }
        }
        None
    }
}

// ---------------------------------------------------------------------------
// Simplification rules (fusion-facilitating structure cleanups)
// ---------------------------------------------------------------------------

const REORGANIZE_OPS: [OpKind; 4] = [
    OpKind::Reshape,
    OpKind::Flatten,
    OpKind::Squeeze,
    OpKind::Unsqueeze,
];

/// Collapses chains of Reorganize operators (`Reshape`/`Flatten`/`Squeeze`/
/// `Unsqueeze`) into a single `Reshape` to the final shape — removing a
/// redundant intermediate copy.
#[derive(Debug)]
pub struct ReorganizeChain;

impl RewriteRule for ReorganizeChain {
    fn name(&self) -> &'static str {
        "simplify.reorganize-chain"
    }

    fn category(&self) -> RuleCategory {
        RuleCategory::Simplification
    }

    fn try_apply(&self, graph: &Graph, partition: &[NodeId]) -> Option<Graph> {
        for &anchor in partition {
            let second = graph.node(anchor);
            if !REORGANIZE_OPS.contains(&second.op) {
                continue;
            }
            let x = second.inputs[0];
            let first = REORGANIZE_OPS
                .iter()
                .find_map(|&op| foldable_producer(graph, x, op));
            let Some(first) = first else { continue };
            let source = first.inputs[0];
            let final_shape: Vec<i64> = graph
                .value(second.outputs[0])
                .shape
                .dims()
                .iter()
                .map(|&d| d as i64)
                .collect();
            let out_value = second.outputs[0];
            let removed: BTreeSet<NodeId> = [second.id, first.id].into_iter().collect();
            let result = apply(graph, removed, &mut |g, map| {
                let out = g.add_op(
                    OpKind::Reshape,
                    Attrs::new().with_ints("shape", final_shape.clone()),
                    &[map[&source]],
                    "rw.reshape",
                )?[0];
                Ok([(out_value, out)].into_iter().collect())
            });
            if result.is_some() {
                return result;
            }
        }
        None
    }
}

/// Merges `Transpose(Transpose(x, p1), p2)` into a single `Transpose` (or
/// removes both when the composition is the identity).
#[derive(Debug)]
pub struct TransposePairCancel;

impl RewriteRule for TransposePairCancel {
    fn name(&self) -> &'static str {
        "simplify.transpose-pair"
    }

    fn category(&self) -> RuleCategory {
        RuleCategory::Simplification
    }

    fn try_apply(&self, graph: &Graph, partition: &[NodeId]) -> Option<Graph> {
        for &anchor in partition {
            let t2 = graph.node(anchor);
            if t2.op != OpKind::Transpose {
                continue;
            }
            let x = t2.inputs[0];
            let Some(t1) = foldable_producer(graph, x, OpKind::Transpose) else {
                continue;
            };
            let rank = graph.value(t1.inputs[0]).shape.rank();
            let default: Vec<i64> = (0..rank as i64).rev().collect();
            let p1: Vec<usize> = t1
                .attrs
                .ints_or("perm", &default)
                .iter()
                .map(|&p| p as usize)
                .collect();
            let p2: Vec<usize> = t2
                .attrs
                .ints_or("perm", &default)
                .iter()
                .map(|&p| p as usize)
                .collect();
            if p1.len() != rank || p2.len() != rank {
                continue;
            }
            let composed: Vec<usize> = p2.iter().map(|&i| p1[i]).collect();
            let identity = composed.iter().enumerate().all(|(i, &p)| i == p);
            let source = t1.inputs[0];
            let out_value = t2.outputs[0];
            let removed: BTreeSet<NodeId> = [t2.id, t1.id].into_iter().collect();
            let result = apply(graph, removed, &mut |g, map| {
                if identity {
                    Ok([(out_value, map[&source])].into_iter().collect())
                } else {
                    let perm: Vec<i64> = composed.iter().map(|&p| p as i64).collect();
                    let out = g.add_op(
                        OpKind::Transpose,
                        Attrs::new().with_ints("perm", perm.clone()),
                        &[map[&source]],
                        "rw.transpose",
                    )?[0];
                    Ok([(out_value, out)].into_iter().collect())
                }
            });
            if result.is_some() {
                return result;
            }
        }
        None
    }
}

/// Removes `Identity` nodes by rewiring their consumers to the source value.
#[derive(Debug)]
pub struct IdentityElimination;

impl RewriteRule for IdentityElimination {
    fn name(&self) -> &'static str {
        "simplify.identity"
    }

    fn category(&self) -> RuleCategory {
        RuleCategory::Simplification
    }

    fn try_apply(&self, graph: &Graph, partition: &[NodeId]) -> Option<Graph> {
        for &anchor in partition {
            let node = graph.node(anchor);
            if node.op != OpKind::Identity {
                continue;
            }
            let source = node.inputs[0];
            let out_value = node.outputs[0];
            // Rewiring a graph output directly onto a graph input would lose
            // the output marker's producer; keep such identities.
            if graph.value(source).producer.is_none() && graph.outputs().contains(&out_value) {
                continue;
            }
            let removed: BTreeSet<NodeId> = [node.id].into_iter().collect();
            let result = apply(graph, removed, &mut |_, map| {
                Ok([(out_value, map[&source])].into_iter().collect())
            });
            if result.is_some() {
                return result;
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rewrite::RewriteEngine;
    use dnnf_ops::execute;
    use dnnf_tensor::{Shape, Tensor};
    use std::collections::HashMap;

    /// Executes a graph with the reference kernels (weights must carry
    /// explicit data; inputs are passed by name).
    fn run_graph(graph: &Graph, inputs: &HashMap<String, Tensor>) -> Vec<Tensor> {
        let mut env: HashMap<usize, Tensor> = HashMap::new();
        for value in graph.values() {
            match value.kind {
                dnnf_graph::ValueKind::Input => {
                    env.insert(value.id.index(), inputs[&value.name].clone());
                }
                dnnf_graph::ValueKind::Weight => {
                    let t = graph
                        .weight_data(value.id)
                        .cloned()
                        .unwrap_or_else(|| Tensor::random(value.shape.clone(), 7));
                    env.insert(value.id.index(), t);
                }
                _ => {}
            }
        }
        for node_id in graph.topo_order() {
            let node = graph.node(node_id);
            let ins: Vec<&Tensor> = node.inputs.iter().map(|v| &env[&v.index()]).collect();
            let outs = execute(node.op, &node.attrs, &ins).unwrap();
            for (v, t) in node.outputs.iter().zip(outs) {
                env.insert(v.index(), t);
            }
        }
        graph
            .outputs()
            .iter()
            .map(|v| env[&v.index()].clone())
            .collect()
    }

    fn check_semantics_preserved(
        graph: &Graph,
        inputs: &HashMap<String, Tensor>,
    ) -> (Graph, usize) {
        let engine = RewriteEngine::with_default_rules();
        let (rewritten, applied) = engine.run(graph);
        let before = run_graph(graph, inputs);
        let after = run_graph(&rewritten, inputs);
        assert_eq!(before.len(), after.len());
        for (a, b) in before.iter().zip(&after) {
            assert!(
                a.allclose(b, 1e-3),
                "rewriting changed the graph's semantics"
            );
        }
        (rewritten, applied.len())
    }

    fn shape4() -> Shape {
        Shape::new(vec![4, 4])
    }

    #[test]
    fn recip_mul_rule_preserves_semantics_and_reduces_loads() {
        // Recip(A) ⊙ Recip(A ⊙ B)
        let mut g = Graph::new("recip");
        let a = g.add_input("A", shape4());
        let b = g.add_weight_with_data("B", Tensor::random(shape4(), 3).map(|v| v.abs() + 0.5));
        let ra = g
            .add_op(OpKind::Reciprocal, Attrs::new(), &[a], "recip_a")
            .unwrap()[0];
        let ab = g
            .add_op(OpKind::Mul, Attrs::new(), &[a, b], "mul_ab")
            .unwrap()[0];
        let rab = g
            .add_op(OpKind::Reciprocal, Attrs::new(), &[ab], "recip_ab")
            .unwrap()[0];
        let out = g
            .add_op(OpKind::Mul, Attrs::new(), &[ra, rab], "mul")
            .unwrap()[0];
        g.mark_output(out);
        let inputs: HashMap<String, Tensor> = [(
            "A".to_string(),
            Tensor::random(shape4(), 11).map(|v| v.abs() + 0.5),
        )]
        .into();
        let (rewritten, applied) = check_semantics_preserved(&g, &inputs);
        assert!(applied >= 1);
        assert!(rewritten.nodes().any(|n| n.op == OpKind::Square));
    }

    #[test]
    fn sqrt_pair_rule_eliminates_the_sqrt() {
        // (A ⊙ √B) ⊙ (√B ⊙ C)
        let mut g = Graph::new("sqrt");
        let a = g.add_input("A", shape4());
        let b = g.add_weight_with_data("B", Tensor::random(shape4(), 5).map(|v| v.abs() + 0.1));
        let c = g.add_weight_with_data("C", Tensor::random(shape4(), 6));
        let sb = g.add_op(OpKind::Sqrt, Attrs::new(), &[b], "sqrt").unwrap()[0];
        let p = g.add_op(OpKind::Mul, Attrs::new(), &[a, sb], "p").unwrap()[0];
        let q = g.add_op(OpKind::Mul, Attrs::new(), &[sb, c], "q").unwrap()[0];
        let out = g.add_op(OpKind::Mul, Attrs::new(), &[p, q], "out").unwrap()[0];
        g.mark_output(out);
        let inputs: HashMap<String, Tensor> =
            [("A".to_string(), Tensor::random(shape4(), 2))].into();
        let flops_before = g.stats().flops;
        let (rewritten, applied) = check_semantics_preserved(&g, &inputs);
        assert!(applied >= 1);
        assert!(rewritten.stats().flops < flops_before);
        assert!(!rewritten.nodes().any(|n| n.op == OpKind::Sqrt));
    }

    #[test]
    fn abs_mul_rule_merges_the_two_abs() {
        // Abs(A) ⊙ B ⊙ Abs(C), built as Mul(Mul(Abs(A), B), Abs(C)).
        let mut g = Graph::new("abs");
        let a = g.add_input("A", shape4());
        let b = g.add_weight_with_data("B", Tensor::random(shape4(), 8));
        let c = g.add_weight_with_data("C", Tensor::random(shape4(), 9));
        let abs_a = g.add_op(OpKind::Abs, Attrs::new(), &[a], "abs_a").unwrap()[0];
        let m1 = g
            .add_op(OpKind::Mul, Attrs::new(), &[abs_a, b], "m1")
            .unwrap()[0];
        let abs_c = g.add_op(OpKind::Abs, Attrs::new(), &[c], "abs_c").unwrap()[0];
        let out = g
            .add_op(OpKind::Mul, Attrs::new(), &[m1, abs_c], "out")
            .unwrap()[0];
        g.mark_output(out);
        let inputs: HashMap<String, Tensor> =
            [("A".to_string(), Tensor::random(shape4(), 4))].into();
        let flops_before = g.stats().flops;
        let (rewritten, applied) = check_semantics_preserved(&g, &inputs);
        assert!(applied >= 1);
        assert!(rewritten.stats().flops < flops_before);
        // Only one Abs remains.
        assert_eq!(rewritten.nodes().filter(|n| n.op == OpKind::Abs).count(), 1);
    }

    #[test]
    fn distributive_factor_rule_reduces_flops() {
        // A ⊙ C + A ⊙ B → A ⊙ (C + B)
        let mut g = Graph::new("dist");
        let a = g.add_input("A", shape4());
        let b = g.add_weight_with_data("B", Tensor::random(shape4(), 21));
        let c = g.add_weight_with_data("C", Tensor::random(shape4(), 22));
        let ac = g.add_op(OpKind::Mul, Attrs::new(), &[a, c], "ac").unwrap()[0];
        let ab = g.add_op(OpKind::Mul, Attrs::new(), &[a, b], "ab").unwrap()[0];
        let out = g
            .add_op(OpKind::Add, Attrs::new(), &[ac, ab], "sum")
            .unwrap()[0];
        g.mark_output(out);
        let inputs: HashMap<String, Tensor> =
            [("A".to_string(), Tensor::random(shape4(), 1))].into();
        let flops_before = g.stats().flops;
        let (rewritten, applied) = check_semantics_preserved(&g, &inputs);
        assert!(applied >= 1);
        assert!(rewritten.stats().flops < flops_before);
        assert_eq!(rewritten.node_count(), 2);
    }

    #[test]
    fn matmul_factor_rule_halves_the_matmul_work() {
        let mut g = Graph::new("gemm-dist");
        let a = g.add_input("A", Shape::new(vec![8, 16]));
        let b = g.add_weight_with_data("B", Tensor::random(Shape::new(vec![16, 8]), 31));
        let c = g.add_weight_with_data("C", Tensor::random(Shape::new(vec![16, 8]), 32));
        let ab = g
            .add_op(OpKind::MatMul, Attrs::new(), &[a, b], "ab")
            .unwrap()[0];
        let ac = g
            .add_op(OpKind::MatMul, Attrs::new(), &[a, c], "ac")
            .unwrap()[0];
        let out = g
            .add_op(OpKind::Add, Attrs::new(), &[ab, ac], "sum")
            .unwrap()[0];
        g.mark_output(out);
        let inputs: HashMap<String, Tensor> =
            [("A".to_string(), Tensor::random(Shape::new(vec![8, 16]), 2))].into();
        let flops_before = g.stats().flops;
        let (rewritten, applied) = check_semantics_preserved(&g, &inputs);
        assert!(applied >= 1);
        // One matmul instead of two: close to half the FLOPs.
        assert!(rewritten.stats().flops * 10 < flops_before * 6);
        assert_eq!(
            rewritten.nodes().filter(|n| n.op == OpKind::MatMul).count(),
            1
        );
    }

    #[test]
    fn square_sub_rule_preserves_semantics() {
        // Square(X) - X ⊙ C with X an input.
        let mut g = Graph::new("sq-sub");
        let x = g.add_input("X", shape4());
        let c = g.add_weight_with_data("C", Tensor::random(shape4(), 41));
        let sq = g.add_op(OpKind::Square, Attrs::new(), &[x], "sq").unwrap()[0];
        let xc = g.add_op(OpKind::Mul, Attrs::new(), &[x, c], "xc").unwrap()[0];
        let out = g
            .add_op(OpKind::Sub, Attrs::new(), &[sq, xc], "out")
            .unwrap()[0];
        g.mark_output(out);
        let inputs: HashMap<String, Tensor> =
            [("X".to_string(), Tensor::random(shape4(), 3))].into();
        let flops_before = g.stats().flops;
        let (rewritten, applied) = check_semantics_preserved(&g, &inputs);
        assert!(applied >= 1);
        assert!(rewritten.stats().flops <= flops_before);
    }

    #[test]
    fn bitshift_reducesum_rule_moves_the_shift_after_the_reduction() {
        let mut g = Graph::new("shift");
        let a = g.add_input("A", Shape::new(vec![4, 8]));
        let s = g.add_weight_with_data("S", Tensor::scalar(2.0));
        let shifted = g
            .add_op(OpKind::BitShift, Attrs::new(), &[a, s], "shift")
            .unwrap()[0];
        let out = g
            .add_op(
                OpKind::ReduceSum,
                Attrs::new()
                    .with_ints("axes", vec![1])
                    .with_int("keepdims", 0),
                &[shifted],
                "sum",
            )
            .unwrap()[0];
        g.mark_output(out);
        // Integral input so the bit-shift identity holds exactly.
        let input = Tensor::from_vec(
            Shape::new(vec![4, 8]),
            (0..32).map(|i| (i % 7) as f32).collect(),
        )
        .unwrap();
        let inputs: HashMap<String, Tensor> = [("A".to_string(), input)].into();
        let flops_before = g.stats().flops;
        let (rewritten, applied) = check_semantics_preserved(&g, &inputs);
        assert!(applied >= 1);
        assert!(rewritten.stats().flops < flops_before);
        // The shift now consumes the reduced tensor.
        let shift_node = rewritten
            .nodes()
            .find(|n| n.op == OpKind::BitShift)
            .unwrap();
        assert_eq!(rewritten.value(shift_node.inputs[0]).shape.dims(), &[4]);
    }

    #[test]
    fn exp_reduceprod_rule_rewrites_to_exp_of_sum() {
        let mut g = Graph::new("expprod");
        let a = g.add_input("A", Shape::new(vec![3, 5]));
        let e = g.add_op(OpKind::Exp, Attrs::new(), &[a], "exp").unwrap()[0];
        let out = g
            .add_op(
                OpKind::ReduceProd,
                Attrs::new()
                    .with_ints("axes", vec![1])
                    .with_int("keepdims", 0),
                &[e],
                "prod",
            )
            .unwrap()[0];
        g.mark_output(out);
        let inputs: HashMap<String, Tensor> = [(
            "A".to_string(),
            Tensor::random(Shape::new(vec![3, 5]), 9).map(|v| v * 0.1),
        )]
        .into();
        let (rewritten, applied) = check_semantics_preserved(&g, &inputs);
        assert!(applied >= 1);
        assert!(rewritten.nodes().any(|n| n.op == OpKind::ReduceSum));
        assert!(!rewritten.nodes().any(|n| n.op == OpKind::ReduceProd));
    }

    #[test]
    fn reorganize_chain_collapses_to_one_reshape() {
        let mut g = Graph::new("reorg");
        let x = g.add_input("X", Shape::new(vec![2, 3, 4]));
        let r1 = g
            .add_op(
                OpKind::Reshape,
                Attrs::new().with_ints("shape", vec![6, 4]),
                &[x],
                "r1",
            )
            .unwrap()[0];
        let r2 = g
            .add_op(
                OpKind::Flatten,
                Attrs::new().with_int("axis", 1),
                &[r1],
                "r2",
            )
            .unwrap()[0];
        let relu = g.add_op(OpKind::Relu, Attrs::new(), &[r2], "relu").unwrap()[0];
        g.mark_output(relu);
        let inputs: HashMap<String, Tensor> = [(
            "X".to_string(),
            Tensor::random(Shape::new(vec![2, 3, 4]), 5),
        )]
        .into();
        let (rewritten, applied) = check_semantics_preserved(&g, &inputs);
        assert!(applied >= 1);
        assert_eq!(
            rewritten
                .nodes()
                .filter(|n| REORGANIZE_OPS.contains(&n.op))
                .count(),
            1
        );
    }

    #[test]
    fn transpose_pair_cancels_or_merges() {
        let mut g = Graph::new("tpair");
        let x = g.add_input("X", Shape::new(vec![2, 3, 4]));
        let t1 = g
            .add_op(
                OpKind::Transpose,
                Attrs::new().with_ints("perm", vec![1, 2, 0]),
                &[x],
                "t1",
            )
            .unwrap()[0];
        let t2 = g
            .add_op(
                OpKind::Transpose,
                Attrs::new().with_ints("perm", vec![2, 0, 1]),
                &[t1],
                "t2",
            )
            .unwrap()[0];
        let relu = g.add_op(OpKind::Relu, Attrs::new(), &[t2], "relu").unwrap()[0];
        g.mark_output(relu);
        let inputs: HashMap<String, Tensor> = [(
            "X".to_string(),
            Tensor::random(Shape::new(vec![2, 3, 4]), 5),
        )]
        .into();
        let (rewritten, applied) = check_semantics_preserved(&g, &inputs);
        assert!(applied >= 1);
        // The two transposes compose to the identity and disappear.
        assert!(!rewritten.nodes().any(|n| n.op == OpKind::Transpose));
    }

    #[test]
    fn identity_nodes_are_removed() {
        let mut g = Graph::new("id");
        let x = g.add_input("X", Shape::new(vec![4]));
        let r = g.add_op(OpKind::Relu, Attrs::new(), &[x], "relu").unwrap()[0];
        let i = g
            .add_op(OpKind::Identity, Attrs::new(), &[r], "id")
            .unwrap()[0];
        let s = g
            .add_op(OpKind::Sigmoid, Attrs::new(), &[i], "sig")
            .unwrap()[0];
        g.mark_output(s);
        let inputs: HashMap<String, Tensor> =
            [("X".to_string(), Tensor::random(Shape::new(vec![4]), 5))].into();
        let (rewritten, applied) = check_semantics_preserved(&g, &inputs);
        assert_eq!(applied, 1);
        assert_eq!(rewritten.node_count(), 2);
    }

    #[test]
    fn rules_do_not_fire_on_multi_consumer_intermediates() {
        // The Mul result feeds two consumers, so folding it away is illegal.
        let mut g = Graph::new("fanout");
        let a = g.add_input("A", shape4());
        let b = g.add_weight_with_data("B", Tensor::random(shape4(), 1));
        let ab = g.add_op(OpKind::Mul, Attrs::new(), &[a, b], "ab").unwrap()[0];
        let r = g
            .add_op(OpKind::Reciprocal, Attrs::new(), &[ab], "recip")
            .unwrap()[0];
        let ra = g
            .add_op(OpKind::Reciprocal, Attrs::new(), &[a], "recip_a")
            .unwrap()[0];
        let out = g
            .add_op(OpKind::Mul, Attrs::new(), &[ra, r], "out")
            .unwrap()[0];
        // Second consumer of the inner Mul.
        let extra = g
            .add_op(OpKind::Relu, Attrs::new(), &[ab], "extra")
            .unwrap()[0];
        g.mark_output(out);
        g.mark_output(extra);
        let engine = RewriteEngine::with_default_rules();
        let (_, applied) = engine.run(&g);
        assert!(applied.iter().all(|a| a.rule != "assoc.recip-mul"));
    }
}
