//! Standalone random-model differential fuzzer.
//!
//! Generates seeded random graphs (element-wise DAGs, anchored
//! Conv/MatMul/Gemm/pool DAGs, attention-shaped MatMul chains including
//! KV-cache `Concat` splices), compiles each through the fused engine, and
//! checks every case against the reference interpreter at
//! `num_threads ∈ {1, 2, 8}` with and without `force_scalar` — within
//! `1e-5` of the reference and bit-identical across configurations.
//!
//! ```text
//! cargo run --release -p dnnf-bench --bin random_model -- \
//!     [--seed <start>] [--count <n>] [--max-nodes <n>]
//! ```
//!
//! Every failure prints its seed; replay one exactly with
//! `--seed <failing-seed> --count 1`. Exits non-zero if any seed fails.

use std::process::ExitCode;

use dnnf_bench::fuzz::{check_seed, FuzzFailure};

struct Args {
    seed: u64,
    count: u64,
    max_nodes: usize,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        seed: 0,
        count: 100,
        max_nodes: 12,
    };
    let mut iter = std::env::args().skip(1);
    while let Some(flag) = iter.next() {
        let mut value = |name: &str| {
            iter.next()
                .ok_or_else(|| format!("{name} requires a value"))
        };
        match flag.as_str() {
            "--seed" => {
                args.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?;
            }
            "--count" => {
                args.count = value("--count")?
                    .parse()
                    .map_err(|e| format!("--count: {e}"))?;
            }
            "--max-nodes" => {
                args.max_nodes = value("--max-nodes")?
                    .parse()
                    .map_err(|e| format!("--max-nodes: {e}"))?;
                if args.max_nodes == 0 {
                    return Err("--max-nodes must be at least 1".into());
                }
            }
            "--help" | "-h" => {
                return Err(
                    "usage: random_model [--seed <start>] [--count <n>] [--max-nodes <n>]".into(),
                );
            }
            other => return Err(format!("unknown flag `{other}` (try --help)")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "random_model: seeds {}..{} (max {} nodes per graph)",
        args.seed,
        args.seed + args.count,
        args.max_nodes
    );
    let mut failures: Vec<FuzzFailure> = Vec::new();
    let mut nodes_total = 0usize;
    let mut blocks_total = 0usize;
    for seed in args.seed..args.seed + args.count {
        match check_seed(seed, args.max_nodes) {
            Ok(outcome) => {
                nodes_total += outcome.nodes;
                blocks_total += outcome.fused_blocks;
            }
            Err(failure) => {
                eprintln!("FAIL {failure}");
                eprintln!(
                    "     replay: cargo run --release -p dnnf-bench --bin random_model -- --seed {} --count 1 --max-nodes {}",
                    failure.seed, args.max_nodes
                );
                failures.push(failure);
            }
        }
    }
    let checked = args.count as usize;
    println!(
        "checked {checked} seeds: {} passed, {} failed ({nodes_total} ops, {blocks_total} fused blocks total)",
        checked - failures.len(),
        failures.len()
    );
    if failures.is_empty() {
        ExitCode::SUCCESS
    } else {
        println!(
            "failing seeds: {:?}",
            failures.iter().map(|f| f.seed).collect::<Vec<_>>()
        );
        ExitCode::FAILURE
    }
}
