//! The shape-specialized compilation cache.
//!
//! The paper's Figure 9b point is that profiling data turns plan search into
//! lookups; this module goes one step further and makes the *whole
//! compilation* a lookup when the same model comes back. Compiled plans are
//! keyed by
//!
//! ```text
//! (graph fingerprint, shape signature, compiler-options cache key)
//! ```
//!
//! — [`dnnf_graph::Graph::fingerprint`] covers topology, operator
//! attributes, shapes and weight identities, so *any* structural change
//! yields a new key and the cache can never serve a stale plan. Two tiers
//! back the key:
//!
//! * **In-memory models** — the full [`CompiledModel`] behind an `Arc`. A
//!   hit is a map lookup + `Arc` clone: no rewriting, no plan search, no
//!   kernel compilation, and the weight store already materialized on the
//!   model's [`dnnf_core::RuntimeCacheSlot`] comes along for free.
//! * **On-disk plan seeds** — compiled kernels hold closures and cannot be
//!   serialized, so the persistent tier stores each plan's *seed*: the
//!   fusion block partition (node-index groups on the rewritten graph) plus
//!   the rewritten graph's fingerprint. A warm start replays the seed
//!   through [`Compiler::compile_with_blocks`], skipping the profile-driven
//!   plan exploration — the expensive phase — while code generation
//!   (deterministic, fast) runs normally.
//!
//! Replayed plans are **validated, never trusted**: `compile_with_blocks`
//! rejects groups that do not form an acyclic partition of the rewritten
//! graph, and the recorded rewritten-graph fingerprint must match what this
//! binary's rewrite phase actually produced (so a seed recorded by an older
//! build with different rewrite rules is discarded). Either failure falls
//! back to a cold compile; a damaged cache can cost time, not correctness.
//! The on-disk format is versioned and checksummed like the profile store's
//! (`dnnf-profiledb`), and a corrupted or truncated file fails the load —
//! callers start cold.

use std::collections::BTreeMap;
use std::fmt;
use std::io::{self, Read, Write};
use std::path::Path;
use std::sync::{Arc, Mutex, OnceLock};

use dnnf_core::{CompiledModel, Compiler, CompilerOptions, CoreError, LatencyModel};
use dnnf_graph::{Fingerprint, Graph, NodeId};

/// Header line of the on-disk plan-cache format.
pub const PLAN_CACHE_HEADER: &str = "dnnf-plancache/v1";

/// The cache key of one compiled plan.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct PlanKey {
    fingerprint: Fingerprint,
    shape_signature: String,
    options: String,
}

impl PlanKey {
    /// Builds the key for compiling `graph` with `options`.
    #[must_use]
    pub fn of(graph: &Graph, options: &CompilerOptions) -> Self {
        PlanKey {
            fingerprint: graph.fingerprint(),
            shape_signature: graph.shape_signature(),
            options: options.cache_key(),
        }
    }
}

impl fmt::Display for PlanKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {} {}",
            self.fingerprint, self.shape_signature, self.options
        )
    }
}

/// How a [`PlanCache::compile_cached`] call was satisfied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheOutcome {
    /// The full compiled model was already in memory (`Arc` clone).
    MemoryHit,
    /// A persisted plan seed was replayed, skipping plan exploration.
    DiskHit,
    /// Nothing cached — a full cold compilation ran (and was recorded).
    Miss,
}

/// A persisted plan seed: enough to replay one compilation's fusion
/// decisions on the rewritten graph.
#[derive(Debug, Clone, PartialEq, Eq)]
struct PlanSeed {
    /// Fingerprint of the *rewritten* graph the groups index into. Replay
    /// re-runs rewriting and discards the seed if the result differs (e.g.
    /// the binary's rewrite rules changed since the seed was recorded).
    rewritten_fingerprint: Fingerprint,
    /// Fusion blocks as node-index groups on the rewritten graph.
    groups: Vec<Vec<usize>>,
}

/// Why a persisted plan-cache file was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlanCacheError {
    /// The first line is not the expected format header.
    BadHeader {
        /// What the first line actually was.
        found: String,
    },
    /// The `entries <n>` count line is missing or malformed.
    BadCount,
    /// An entry line failed to parse.
    BadEntry {
        /// 1-based line number of the offending line.
        line: usize,
    },
    /// The file ended before the declared number of entries.
    Truncated {
        /// Entries the header promised.
        expected: usize,
        /// Entries actually present.
        found: usize,
    },
    /// The trailing checksum is missing, malformed, or does not match.
    BadChecksum,
}

impl fmt::Display for PlanCacheError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanCacheError::BadHeader { found } => {
                write!(f, "expected header `{PLAN_CACHE_HEADER}`, found `{found}`")
            }
            PlanCacheError::BadCount => write!(f, "missing or malformed `entries <n>` line"),
            PlanCacheError::BadEntry { line } => write!(f, "malformed entry at line {line}"),
            PlanCacheError::Truncated { expected, found } => {
                write!(f, "truncated: expected {expected} entries, found {found}")
            }
            PlanCacheError::BadChecksum => write!(f, "checksum mismatch or missing"),
        }
    }
}

impl std::error::Error for PlanCacheError {}

/// Counter snapshot of a [`PlanCache`] (see [`PlanCache::stats`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PlanCacheStats {
    /// Compilations satisfied by an in-memory model.
    pub memory_hits: u64,
    /// Compilations satisfied by replaying a persisted plan seed.
    pub disk_hits: u64,
    /// Compilations that ran cold.
    pub misses: u64,
    /// In-memory compiled models currently held (≤ `capacity`).
    pub models: usize,
    /// Plan seeds currently held (in-memory + loaded from disk).
    pub seeds: usize,
    /// Models evicted from the in-memory tier since creation.
    pub evictions: u64,
    /// Maximum in-memory models (the LRU bound).
    pub capacity: usize,
}

/// Default bound on in-memory compiled models — generous (a server tenant
/// set, not a per-request working set), because each entry pins compiled
/// kernels, weight stores and batch instances via `Arc<CompiledModel>`.
/// [`PlanCache::global`] uses this; tune per cache with
/// [`PlanCache::with_capacity`] / [`PlanCache::set_capacity`].
pub const DEFAULT_MODEL_CAPACITY: usize = 64;

/// One resident compiled model plus its last-use tick (for LRU eviction).
struct ModelEntry {
    model: Arc<CompiledModel>,
    tick: u64,
}

struct Inner {
    models: BTreeMap<PlanKey, ModelEntry>,
    seeds: BTreeMap<PlanKey, PlanSeed>,
    capacity: usize,
    tick: u64,
    memory_hits: u64,
    disk_hits: u64,
    misses: u64,
    evictions: u64,
}

impl Default for Inner {
    fn default() -> Self {
        Inner {
            models: BTreeMap::new(),
            seeds: BTreeMap::new(),
            capacity: DEFAULT_MODEL_CAPACITY,
            tick: 0,
            memory_hits: 0,
            disk_hits: 0,
            misses: 0,
            evictions: 0,
        }
    }
}

impl Inner {
    /// Registers `model` under `key` (first insert wins a race), marks the
    /// entry most recently used, and evicts least-recently-used models until
    /// the tier fits its capacity. Seeds are never evicted — an evicted
    /// model whose seed survives warm-starts as a [`CacheOutcome::DiskHit`].
    fn insert_model(&mut self, key: PlanKey, model: CompiledModel) -> Arc<CompiledModel> {
        self.tick += 1;
        let tick = self.tick;
        let entry = self.models.entry(key).or_insert_with(|| ModelEntry {
            model: Arc::new(model),
            tick,
        });
        entry.tick = tick;
        let model = Arc::clone(&entry.model);
        self.enforce_capacity();
        model
    }

    fn enforce_capacity(&mut self) {
        while self.models.len() > self.capacity {
            // The just-touched entry holds the max tick, so it is never the
            // victim (capacity is at least 1).
            let victim = self
                .models
                .iter()
                .min_by_key(|(_, e)| e.tick)
                .map(|(k, _)| k.clone())
                .expect("over-capacity map is non-empty");
            self.models.remove(&victim);
            self.evictions += 1;
        }
    }
}

/// A shape-keyed compilation cache (see the module docs).
#[derive(Default)]
pub struct PlanCache {
    inner: Mutex<Inner>,
}

impl PlanCache {
    /// Creates an empty cache bounded at [`DEFAULT_MODEL_CAPACITY`]
    /// in-memory models.
    #[must_use]
    pub fn new() -> Self {
        PlanCache::default()
    }

    /// Creates an empty cache holding at most `capacity` in-memory models
    /// (clamped to at least 1). Beyond it the least recently used model is
    /// dropped; its plan seed stays, so recompiling an evicted model skips
    /// plan exploration ([`CacheOutcome::DiskHit`]), it does not run cold.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        let cache = PlanCache::default();
        cache.inner.lock().expect("plan cache lock").capacity = capacity.max(1);
        cache
    }

    /// Changes the in-memory model bound (clamped to at least 1), evicting
    /// least-recently-used models immediately if the tier is over the new
    /// bound.
    pub fn set_capacity(&self, capacity: usize) {
        let mut inner = self.inner.lock().expect("plan cache lock");
        inner.capacity = capacity.max(1);
        inner.enforce_capacity();
    }

    /// The current in-memory model bound.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.inner.lock().expect("plan cache lock").capacity
    }

    /// The process-wide cache: every caller compiling through it shares one
    /// model/seed pool, so a model compiled anywhere in the process is a
    /// lookup everywhere else.
    #[must_use]
    pub fn global() -> &'static PlanCache {
        static GLOBAL: OnceLock<PlanCache> = OnceLock::new();
        GLOBAL.get_or_init(PlanCache::new)
    }

    /// Compiles `graph` through the cache. In order of preference:
    ///
    /// 1. an in-memory model for `(fingerprint, shapes, options)` — returned
    ///    by `Arc` clone, the compiler is not invoked at all;
    /// 2. a persisted plan seed — replayed via
    ///    [`Compiler::compile_with_blocks`] (no plan exploration) and
    ///    validated against the rewritten graph's fingerprint;
    /// 3. a cold [`Compiler::compile`], whose plan is recorded as a seed
    ///    for future calls and future processes.
    ///
    /// The compiler's profiling database is still consulted and extended
    /// exactly as in an uncached compile, so persistent profile data and
    /// the plan cache compose.
    ///
    /// # Errors
    ///
    /// Propagates compilation errors ([`CoreError`]) from the cold path. A
    /// stale or invalid seed is *not* an error — it falls back to a cold
    /// compile.
    pub fn compile_cached<L: LatencyModel>(
        &self,
        compiler: &mut Compiler<L>,
        graph: &Graph,
    ) -> Result<(Arc<CompiledModel>, CacheOutcome), CoreError> {
        let key = PlanKey::of(graph, compiler.options());
        self.compile_keyed(compiler, graph, key)
    }

    /// Compiles `graph` through the cache under a **batch-polymorphic** key:
    /// the graph is normalized to batch size 1
    /// ([`Graph::with_batch_size`]) and keyed by the normalized
    /// fingerprint plus the symbolic batch shape signature
    /// ([`Graph::batch_shape_signature`], `x=Nx3x224x224`), so every batch
    /// variant of one model shares a single cache entry. The returned model
    /// is the batch-1 canonical compilation; run it at any batch size with
    /// `Executor::run_compiled_batched`, which reuses the plan and re-runs
    /// only cheap codegen per batch size.
    ///
    /// Graphs that cannot be rebatched (rank-0 inputs, batch-baked
    /// attributes, no inputs) fall back to the exact-shape
    /// [`PlanCache::compile_cached`] behaviour.
    ///
    /// # Errors
    ///
    /// Propagates compilation errors ([`CoreError`]) from the cold path.
    pub fn compile_batched<L: LatencyModel>(
        &self,
        compiler: &mut Compiler<L>,
        graph: &Graph,
    ) -> Result<(Arc<CompiledModel>, CacheOutcome), CoreError> {
        let canonical = match graph.batch_size() {
            Some(1) => graph.clone(),
            Some(_) => match graph.with_batch_size(1) {
                Ok(g) => g,
                // Not batch-polymorphic: cache per exact shape instead.
                Err(_) => return self.compile_cached(compiler, graph),
            },
            None => return self.compile_cached(compiler, graph),
        };
        let key = PlanKey {
            fingerprint: canonical.fingerprint(),
            shape_signature: canonical.batch_shape_signature(),
            options: compiler.options().cache_key(),
        };
        self.compile_keyed(compiler, &canonical, key)
    }

    /// Compiles `graph` through the cache under a **sequence-polymorphic**
    /// key: the graph is normalized to sequence length 1
    /// ([`Graph::with_seq_len`]) and keyed by the normalized fingerprint
    /// plus the symbolic sequence shape signature
    /// ([`Graph::seq_shape_signature`], `token_ids=1;past_k0=2xSx8`), so
    /// every KV-cache length of one decode-step graph shares a single cache
    /// entry. The returned model is the length-1 canonical compilation; run
    /// it at any cache length with `Executor::run_compiled_seq`, which
    /// reuses the plan and re-runs only cheap codegen per length. This is
    /// what makes a T-token decode cost exactly one plan search.
    ///
    /// Graphs with no seq-marked inputs ([`Graph::mark_seq_axis`]) or whose
    /// operators bake in the native sequence length fall back to the
    /// exact-shape [`PlanCache::compile_cached`] behaviour.
    ///
    /// # Errors
    ///
    /// Propagates compilation errors ([`CoreError`]) from the cold path.
    pub fn compile_seq<L: LatencyModel>(
        &self,
        compiler: &mut Compiler<L>,
        graph: &Graph,
    ) -> Result<(Arc<CompiledModel>, CacheOutcome), CoreError> {
        let canonical = match graph.seq_len() {
            Some(1) => graph.clone(),
            Some(_) => match graph.with_seq_len(1) {
                Ok(g) => g,
                // Not seq-polymorphic: cache per exact shape instead.
                Err(_) => return self.compile_cached(compiler, graph),
            },
            None => return self.compile_cached(compiler, graph),
        };
        let key = PlanKey {
            fingerprint: canonical.fingerprint(),
            shape_signature: canonical.seq_shape_signature(),
            options: compiler.options().cache_key(),
        };
        self.compile_keyed(compiler, &canonical, key)
    }

    fn compile_keyed<L: LatencyModel>(
        &self,
        compiler: &mut Compiler<L>,
        graph: &Graph,
        key: PlanKey,
    ) -> Result<(Arc<CompiledModel>, CacheOutcome), CoreError> {
        let seed = {
            let mut inner = self.inner.lock().expect("plan cache lock");
            inner.tick += 1;
            let tick = inner.tick;
            if let Some(entry) = inner.models.get_mut(&key) {
                entry.tick = tick;
                let model = Arc::clone(&entry.model);
                inner.memory_hits += 1;
                return Ok((model, CacheOutcome::MemoryHit));
            }
            inner.seeds.get(&key).cloned()
        };

        // Compilation (replay or cold) runs outside the lock: concurrent
        // compilations of *different* models must not serialize on the
        // cache. Concurrent compiles of the same model race benignly — the
        // first insert wins, later ones return the winner's Arc.
        if let Some(seed) = seed {
            let groups: Vec<Vec<NodeId>> = seed
                .groups
                .iter()
                .map(|g| g.iter().map(|&i| NodeId::from_index(i)).collect())
                .collect();
            match compiler.compile_with_blocks(graph, groups) {
                Ok(model) if model.graph().fingerprint() == seed.rewritten_fingerprint => {
                    let mut inner = self.inner.lock().expect("plan cache lock");
                    inner.disk_hits += 1;
                    let model = inner.insert_model(key, model);
                    return Ok((model, CacheOutcome::DiskHit));
                }
                // Stale seed (different rewrite output) or invalid groups:
                // drop it and compile cold below.
                _ => {
                    self.inner
                        .lock()
                        .expect("plan cache lock")
                        .seeds
                        .remove(&key);
                }
            }
        }

        let model = compiler.compile(graph)?;
        let seed = PlanSeed {
            rewritten_fingerprint: model.graph().fingerprint(),
            groups: model
                .plan
                .blocks()
                .iter()
                .map(|b| b.nodes.iter().map(|n| n.index()).collect())
                .collect(),
        };
        let mut inner = self.inner.lock().expect("plan cache lock");
        inner.misses += 1;
        inner.seeds.insert(key.clone(), seed);
        let model = inner.insert_model(key, model);
        Ok((model, CacheOutcome::Miss))
    }

    /// Current counters and sizes.
    #[must_use]
    pub fn stats(&self) -> PlanCacheStats {
        let inner = self.inner.lock().expect("plan cache lock");
        PlanCacheStats {
            memory_hits: inner.memory_hits,
            disk_hits: inner.disk_hits,
            misses: inner.misses,
            models: inner.models.len(),
            seeds: inner.seeds.len(),
            evictions: inner.evictions,
            capacity: inner.capacity,
        }
    }

    /// Drops every cached model and seed and zeroes the counters (the
    /// capacity setting survives). Mainly for tests exercising the cold
    /// path against the global cache.
    pub fn clear(&self) {
        let mut inner = self.inner.lock().expect("plan cache lock");
        let capacity = inner.capacity;
        *inner = Inner {
            capacity,
            ..Inner::default()
        };
    }

    /// Drops the in-memory compiled models but keeps the plan seeds — the
    /// state a fresh process starts from after [`PlanCache::load_seeds`].
    /// Tests use this to exercise the disk-replay tier in-process.
    pub fn drop_models(&self) {
        self.inner.lock().expect("plan cache lock").models.clear();
    }

    /// Serializes the plan seeds (the persistent tier) to the versioned,
    /// checksummed text format:
    ///
    /// ```text
    /// dnnf-plancache/v1
    /// entries <n>
    /// <fp>\t<shapes>\t<options>\t<rewritten-fp>\t<idx,idx;idx;…>
    /// …
    /// checksum <16-hex fnv64 of everything above>
    /// ```
    #[must_use]
    pub fn to_text(&self) -> String {
        let inner = self.inner.lock().expect("plan cache lock");
        let mut body = format!("{PLAN_CACHE_HEADER}\nentries {}\n", inner.seeds.len());
        for (key, seed) in &inner.seeds {
            let groups = seed
                .groups
                .iter()
                .map(|g| {
                    g.iter()
                        .map(ToString::to_string)
                        .collect::<Vec<_>>()
                        .join(",")
                })
                .collect::<Vec<_>>()
                .join(";");
            body.push_str(&format!(
                "{}\t{}\t{}\t{}\t{}\n",
                key.fingerprint,
                key.shape_signature,
                key.options,
                seed.rewritten_fingerprint,
                groups
            ));
        }
        let sum = fnv64(body.as_bytes());
        body.push_str(&format!("checksum {sum:016x}\n"));
        body
    }

    /// Strictly parses text produced by [`PlanCache::to_text`] and merges
    /// the seeds into this cache (existing seeds with the same key are
    /// overwritten; in-memory models are untouched). Returns the number of
    /// seeds merged.
    ///
    /// # Errors
    ///
    /// Returns a [`PlanCacheError`] on any damage — wrong header, malformed
    /// entry, truncation, checksum mismatch. Nothing is merged on error.
    pub fn merge_text(&self, text: &str) -> Result<usize, PlanCacheError> {
        let mut lines = text.lines().enumerate();
        let header = lines.next().map(|(_, l)| l).unwrap_or("");
        if header != PLAN_CACHE_HEADER {
            return Err(PlanCacheError::BadHeader {
                found: header.to_string(),
            });
        }
        let expected: usize = lines
            .next()
            .and_then(|(_, l)| l.strip_prefix("entries "))
            .and_then(|n| n.parse().ok())
            .ok_or(PlanCacheError::BadCount)?;

        let mut parsed: Vec<(PlanKey, PlanSeed)> = Vec::new();
        let mut checksum_line = None;
        for (i, line) in lines {
            if let Some(sum) = line.strip_prefix("checksum ") {
                checksum_line = Some((i, sum));
                break;
            }
            let entry = parse_seed_line(line).ok_or(PlanCacheError::BadEntry { line: i + 1 })?;
            parsed.push(entry);
        }
        if parsed.len() != expected {
            return Err(PlanCacheError::Truncated {
                expected,
                found: parsed.len(),
            });
        }
        let (checksum_idx, stated) = checksum_line.ok_or(PlanCacheError::BadChecksum)?;
        let stated = u64::from_str_radix(stated, 16).map_err(|_| PlanCacheError::BadChecksum)?;
        let body: String = text
            .lines()
            .take(checksum_idx)
            .flat_map(|l| [l, "\n"])
            .collect();
        if fnv64(body.as_bytes()) != stated {
            return Err(PlanCacheError::BadChecksum);
        }

        let count = parsed.len();
        let mut inner = self.inner.lock().expect("plan cache lock");
        for (key, seed) in parsed {
            inner.seeds.insert(key, seed);
        }
        Ok(count)
    }

    /// Saves the plan seeds to a file.
    ///
    /// # Errors
    ///
    /// Propagates any I/O error.
    pub fn save(&self, path: impl AsRef<Path>) -> io::Result<()> {
        let mut f = std::fs::File::create(path)?;
        f.write_all(self.to_text().as_bytes())
    }

    /// Loads plan seeds from a file written by [`PlanCache::save`] and
    /// merges them into this cache; returns how many were merged.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors; a damaged file fails with
    /// [`io::ErrorKind::InvalidData`] and merges nothing (callers simply
    /// start cold).
    pub fn load_seeds(&self, path: impl AsRef<Path>) -> io::Result<usize> {
        let mut text = String::new();
        std::fs::File::open(path)?.read_to_string(&mut text)?;
        self.merge_text(&text)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
    }
}

impl fmt::Debug for PlanCache {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let stats = self.stats();
        f.debug_struct("PlanCache")
            .field("models", &stats.models)
            .field("seeds", &stats.seeds)
            .finish()
    }
}

fn parse_seed_line(line: &str) -> Option<(PlanKey, PlanSeed)> {
    let mut fields = line.split('\t');
    let fingerprint = Fingerprint::from_hex(fields.next()?)?;
    let shape_signature = fields.next()?.to_string();
    let options = fields.next()?.to_string();
    let rewritten_fingerprint = Fingerprint::from_hex(fields.next()?)?;
    let groups_text = fields.next()?;
    if fields.next().is_some() {
        return None;
    }
    let groups: Vec<Vec<usize>> = if groups_text.is_empty() {
        Vec::new()
    } else {
        groups_text
            .split(';')
            .map(|g| g.split(',').map(|i| i.parse::<usize>().ok()).collect())
            .collect::<Option<Vec<Vec<usize>>>>()?
    };
    Some((
        PlanKey {
            fingerprint,
            shape_signature,
            options,
        },
        PlanSeed {
            rewritten_fingerprint,
            groups,
        },
    ))
}

/// 64-bit FNV-1a — integrity checksum of the on-disk format (kept local so
/// the format is self-contained; matches `dnnf-profiledb`'s).
fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnnf_ops::{Attrs, OpKind};
    use dnnf_tensor::Shape;

    fn model(name: &str, channels: usize) -> Graph {
        let mut g = Graph::new(name);
        let x = g.add_input("x", Shape::new(vec![1, channels, 8, 8]));
        let w = g.add_weight("conv.w", Shape::new(vec![channels, channels, 3, 3]));
        let c = g
            .add_op(
                OpKind::Conv,
                Attrs::new().with_ints("pads", vec![1, 1, 1, 1]),
                &[x, w],
                "conv",
            )
            .unwrap()[0];
        let r = g.add_op(OpKind::Relu, Attrs::new(), &[c], "relu").unwrap()[0];
        g.mark_output(r);
        g
    }

    #[test]
    fn memory_hit_returns_the_same_model() {
        let cache = PlanCache::new();
        let g = model("m", 4);
        let mut compiler = Compiler::new(CompilerOptions::default());
        let (first, outcome) = cache.compile_cached(&mut compiler, &g).unwrap();
        assert_eq!(outcome, CacheOutcome::Miss);
        let (second, outcome) = cache.compile_cached(&mut compiler, &g).unwrap();
        assert_eq!(outcome, CacheOutcome::MemoryHit);
        assert!(Arc::ptr_eq(&first, &second));
        let stats = cache.stats();
        assert_eq!((stats.misses, stats.memory_hits), (1, 1));
        assert_eq!((stats.models, stats.seeds), (1, 1));
    }

    #[test]
    fn different_shapes_options_and_structure_miss() {
        let cache = PlanCache::new();
        let mut compiler = Compiler::new(CompilerOptions::default());
        let (_, o1) = cache.compile_cached(&mut compiler, &model("a", 4)).unwrap();
        let (_, o2) = cache.compile_cached(&mut compiler, &model("b", 8)).unwrap();
        assert_eq!((o1, o2), (CacheOutcome::Miss, CacheOutcome::Miss));
        // Same graph, different options: its own entry.
        let mut baseline = Compiler::new(CompilerOptions::baseline());
        let (_, o3) = cache.compile_cached(&mut baseline, &model("a", 4)).unwrap();
        assert_eq!(o3, CacheOutcome::Miss);
        assert_eq!(cache.stats().models, 3);
        // Each is a memory hit the second time around.
        let (_, o4) = cache.compile_cached(&mut compiler, &model("a", 4)).unwrap();
        assert_eq!(o4, CacheOutcome::MemoryHit);
    }

    #[test]
    fn capacity_bounds_the_model_tier_with_lru_eviction() {
        let cache = PlanCache::with_capacity(2);
        assert_eq!(cache.capacity(), 2);
        let mut compiler = Compiler::new(CompilerOptions::default());
        // Three distinct models through a 2-slot cache.
        cache.compile_cached(&mut compiler, &model("a", 2)).unwrap();
        cache.compile_cached(&mut compiler, &model("b", 4)).unwrap();
        // Touch `a` so `b` is the LRU victim when `c` arrives.
        let (_, o) = cache.compile_cached(&mut compiler, &model("a", 2)).unwrap();
        assert_eq!(o, CacheOutcome::MemoryHit);
        cache.compile_cached(&mut compiler, &model("c", 8)).unwrap();
        let stats = cache.stats();
        assert_eq!(stats.models, 2, "tier must hold <= capacity models");
        assert_eq!(stats.evictions, 1);
        assert_eq!(stats.seeds, 3, "seeds are never evicted");
        // `a` survived (recently used), `b` was evicted but warm-starts
        // from its seed instead of compiling cold.
        let (_, o) = cache.compile_cached(&mut compiler, &model("a", 2)).unwrap();
        assert_eq!(o, CacheOutcome::MemoryHit);
        let (_, o) = cache.compile_cached(&mut compiler, &model("b", 4)).unwrap();
        assert_eq!(o, CacheOutcome::DiskHit, "evicted model replays its seed");
        // Shrinking the capacity evicts immediately; zero clamps to one.
        cache.set_capacity(0);
        assert_eq!(cache.capacity(), 1);
        assert_eq!(cache.stats().models, 1);
        // clear() keeps the configured capacity.
        cache.clear();
        assert_eq!(cache.capacity(), 1);
        assert_eq!(cache.stats().models, 0);
    }

    #[test]
    fn batched_key_shares_one_entry_across_batch_sizes() {
        let cache = PlanCache::new();
        let mut compiler = Compiler::new(CompilerOptions::default());
        let g1 = model("m", 4);
        let (m1, o1) = cache.compile_batched(&mut compiler, &g1).unwrap();
        assert_eq!(o1, CacheOutcome::Miss);
        // The same model presented at batch 8 is a memory hit on the same
        // canonical (batch-1) entry.
        let g8 = g1.with_batch_size(8).unwrap();
        let (m8, o8) = cache.compile_batched(&mut compiler, &g8).unwrap();
        assert_eq!(o8, CacheOutcome::MemoryHit);
        assert!(Arc::ptr_eq(&m1, &m8));
        assert_eq!(cache.stats().models, 1);
        // The canonical model compiles at batch 1 regardless of how it was
        // presented.
        assert_eq!(m8.native_batch(), Some(1));
    }

    #[test]
    fn seed_roundtrip_and_disk_replay() {
        let cache = PlanCache::new();
        let g = model("m", 4);
        let mut compiler = Compiler::new(CompilerOptions::default());
        let (cold, _) = cache.compile_cached(&mut compiler, &g).unwrap();
        let text = cache.to_text();

        // A fresh cache (fresh process) warm-starts from the text.
        let fresh = PlanCache::new();
        assert_eq!(fresh.merge_text(&text), Ok(1));
        let (warm, outcome) = fresh.compile_cached(&mut compiler, &g).unwrap();
        assert_eq!(outcome, CacheOutcome::DiskHit);
        // The replayed plan is the same partition.
        for (w, c) in warm.plan.blocks().iter().zip(cold.plan.blocks()) {
            assert_eq!(w.nodes, c.nodes);
        }

        // drop_models keeps seeds: same replay without re-merging.
        cache.drop_models();
        let (_, outcome) = cache.compile_cached(&mut compiler, &g).unwrap();
        assert_eq!(outcome, CacheOutcome::DiskHit);
    }

    #[test]
    fn corrupted_text_is_rejected_wholesale() {
        let cache = PlanCache::new();
        let g = model("m", 4);
        let mut compiler = Compiler::new(CompilerOptions::default());
        cache.compile_cached(&mut compiler, &g).unwrap();
        let good = cache.to_text();

        let fresh = PlanCache::new();
        assert!(matches!(
            fresh.merge_text("dnnf-plancache/v2\n"),
            Err(PlanCacheError::BadHeader { .. })
        ));
        assert_eq!(
            fresh.merge_text(PLAN_CACHE_HEADER),
            Err(PlanCacheError::BadCount)
        );
        // Flip a digit inside the groups field: checksum catches it.
        let corrupted = good.replacen("\t0,", "\t1,", 1);
        if corrupted != good {
            assert_eq!(
                fresh.merge_text(&corrupted),
                Err(PlanCacheError::BadChecksum)
            );
        }
        // Truncate the entry lines.
        let mut lines: Vec<&str> = good.lines().collect();
        lines.remove(2);
        let truncated = lines.join("\n") + "\n";
        assert!(matches!(
            fresh.merge_text(&truncated),
            Err(PlanCacheError::Truncated { .. })
        ));
        // Nothing was merged by any failed attempt.
        assert_eq!(fresh.stats().seeds, 0);
        // The intact text still merges.
        assert_eq!(fresh.merge_text(&good), Ok(1));
    }

    #[test]
    fn stale_seed_falls_back_to_cold_compile() {
        let cache = PlanCache::new();
        let g = model("m", 4);
        let mut compiler = Compiler::new(CompilerOptions::default());
        cache.compile_cached(&mut compiler, &g).unwrap();
        // Sabotage the stored seed: wrong rewritten fingerprint.
        {
            let mut inner = cache.inner.lock().unwrap();
            let seed = inner.seeds.values_mut().next().unwrap();
            seed.rewritten_fingerprint = Fingerprint::from_hex(&"0".repeat(32)).unwrap();
        }
        cache.drop_models();
        let (_, outcome) = cache.compile_cached(&mut compiler, &g).unwrap();
        assert_eq!(outcome, CacheOutcome::Miss, "stale seed must compile cold");
        // The bad seed was replaced by a fresh one; next time replays fine.
        cache.drop_models();
        let (_, outcome) = cache.compile_cached(&mut compiler, &g).unwrap();
        assert_eq!(outcome, CacheOutcome::DiskHit);
    }

    #[test]
    fn save_and_load_roundtrip() {
        let cache = PlanCache::new();
        let g = model("m", 4);
        let mut compiler = Compiler::new(CompilerOptions::default());
        cache.compile_cached(&mut compiler, &g).unwrap();

        let dir = std::env::temp_dir().join("dnnf_plan_cache_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("plans.cache");
        cache.save(&path).unwrap();

        let fresh = PlanCache::new();
        assert_eq!(fresh.load_seeds(&path).unwrap(), 1);
        let (_, outcome) = fresh.compile_cached(&mut compiler, &g).unwrap();
        assert_eq!(outcome, CacheOutcome::DiskHit);

        // Corrupt the file on disk: load fails with InvalidData.
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
        let another = PlanCache::new();
        let err = another.load_seeds(&path).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert_eq!(another.stats().seeds, 0);
        std::fs::remove_file(path).ok();
    }
}
