//! Optimized kernels for the compute-heavy anchor operators, used by the
//! fused-block execution engine.
//!
//! The reference kernels in this crate define the semantics; they index every
//! element through bounds-checked multi-dimensional lookups and allocate
//! scratch index vectors in their innermost loops, which makes them 1–2
//! orders of magnitude slower than necessary. The kernels here compute the
//! *same* result — they visit taps in exactly the same order and accumulate
//! in the same sequence, so outputs are bit-identical — but with precomputed
//! strides, flat-slice indexing and no allocation inside the hot loops.
//!
//! Every kernel is additionally **data-parallel** over a [`WorkPool`]: the
//! output index space is partitioned into disjoint tiles (convolution and
//! pooling over `(batch, channel)` planes, matrix products over output
//! rows), and each tile is computed start-to-finish by one thread with the
//! serial kernel's exact accumulation order. No reduction is ever split
//! across threads, so results are bit-identical for every thread count —
//! [`execute_fast_into`] with a serial pool and
//! [`execute_fast_into_threaded`] with any pool produce the same bytes.
//!
//! Within a thread's tile, every kernel here is additionally
//! **lane-blocked** over the [`crate::simd`] bundles: 4–8 consecutive output
//! elements accumulate in lockstep, one element per lane, each lane running
//! the scalar kernel's exact operation sequence (two rounding steps per
//! conv/matmul tap, no fused multiply-add, no split reduction; `f32::max` /
//! add-then-one-division for the pools). Convolution and pooling — at every
//! spatial rank, including the 1-D/3-D odometer paths — vectorize only the
//! *interior* output columns of each innermost-axis row: those whose every
//! innermost kernel tap is in bounds, so no column tap-skip test fires
//! (outer-axis taps keep their bounds checks, which are uniform across a
//! row). Padded borders and lane remainders stay on the checked scalar
//! loop; `GlobalAveragePool` lanes own whole `(n, c)` outputs. The scalar
//! and lane regions compute identical tap sequences, so SIMD-on and
//! SIMD-off ([`WorkPool::with_simd`]) produce the same bytes at every lane
//! width.
//!
//! Inputs are expected to be shape-consistent with `out_shape`, exactly as
//! produced by graph construction / shape inference (the fused engine always
//! calls with graph-derived shapes). The differential test harness pins
//! every kernel here against its reference twin.

use dnnf_tensor::{broadcast_index, Shape, Tensor};

use crate::parallel::WorkPool;
use crate::simd::{F32Lanes, LANES};
use crate::{Attrs, OpError, OpKind};

/// Whether `op` has an optimized kernel in this module. The fused engine
/// uses this registry to decide between the fast path and the reference
/// fallback ([`crate::execute`]).
#[must_use]
pub fn has_fast_kernel(op: OpKind) -> bool {
    use OpKind::*;
    matches!(
        op,
        Conv | MatMul | Gemm | MaxPool | AveragePool | GlobalAveragePool
    )
}

/// Output channels per block of a packed conv weight panel — one full
/// [`LANES`]-wide bundle, so a panel tap feeds all lanes with a single
/// contiguous load.
pub const CONV_PANEL_LANES: usize = LANES;

/// Packs a convolution weight `(OC, ICpg, k…)` into the OC-blocked panel
/// layout the lane-blocked conv kernels consume: shape
/// `[OC / LANES, ICpg · ∏k, LANES]`, where `panel[ob][t][l] =
/// w[ob·LANES + l][t]` and `t` ravels `(ic, k…)` row-major — the kernels'
/// exact tap order. Eight SIMD lanes then own eight whole output channels of
/// one output position, and each tap's eight weights are one contiguous
/// load instead of a stride-`ICpg·∏k` gather from the `(OC, ICpg, k…)`
/// layout.
///
/// Returns `None` when the layout does not apply: rank < 3, or `OC` not a
/// multiple of [`CONV_PANEL_LANES`] (the kernels then keep the column-lane
/// path, which handles any channel count).
#[must_use]
pub fn pack_conv_oc_panel(w: &Tensor) -> Option<Tensor> {
    let dims = w.shape().dims();
    if dims.len() < 3 || dims[0] == 0 || !dims[0].is_multiple_of(CONV_PANEL_LANES) {
        return None;
    }
    let oc = dims[0];
    let taps: usize = dims[1..].iter().product();
    if taps == 0 {
        return None;
    }
    let blocks = oc / CONV_PANEL_LANES;
    let src = w.data();
    let mut packed = vec![0.0f32; oc * taps];
    for ob in 0..blocks {
        let block_base = ob * taps * CONV_PANEL_LANES;
        for l in 0..CONV_PANEL_LANES {
            let w_row = (ob * CONV_PANEL_LANES + l) * taps;
            for t in 0..taps {
                packed[block_base + t * CONV_PANEL_LANES + l] = src[w_row + t];
            }
        }
    }
    Some(
        Tensor::from_vec(Shape::new(vec![blocks, taps, CONV_PANEL_LANES]), packed)
            .expect("panel sized to its shape"),
    )
}

/// Executes `op` with its optimized kernel on the calling thread. Equivalent
/// to [`execute_fast_into_threaded`] with a serial pool.
///
/// # Errors
///
/// Returns an [`OpError`] when the inputs are structurally invalid for the
/// operator (wrong arity or rank).
pub fn execute_fast_into(
    op: OpKind,
    attrs: &Attrs,
    inputs: &[&Tensor],
    out_shape: &Shape,
    out: &mut [f32],
) -> Result<bool, OpError> {
    execute_fast_into_threaded(op, attrs, inputs, out_shape, out, WorkPool::serial())
}

/// Executes `op` with its optimized kernel, writing the single output into
/// `out` (length `out_shape.numel()`), splitting the output space over
/// `pool`'s threads. Returns `Ok(false)` without touching `out` when the
/// operator has no fast kernel. Results are bit-identical to
/// [`execute_fast_into`] for every pool (per-element ownership split; the
/// pool's [`WorkPool::for_work`] gate keeps small launches serial).
///
/// # Errors
///
/// Returns an [`OpError`] when the inputs are structurally invalid for the
/// operator (wrong arity or rank).
///
/// # Panics
///
/// May panic on inputs whose shapes are inconsistent with `out_shape`;
/// callers are expected to pass shapes produced by shape inference.
pub fn execute_fast_into_threaded(
    op: OpKind,
    attrs: &Attrs,
    inputs: &[&Tensor],
    out_shape: &Shape,
    out: &mut [f32],
    pool: WorkPool,
) -> Result<bool, OpError> {
    execute_fast_into_packed(op, attrs, inputs, None, out_shape, out, pool)
}

/// [`execute_fast_into_threaded`] with an optional **prepacked operand**: a
/// kernel-friendly re-layout of one input, prepared once by the caller and
/// reused across runs. Two packed forms exist today:
///
/// * a transposed `Gemm` B panel — when `op` is `Gemm` with `transB = 1` and
///   `packed_b` carries `B` already transposed to `(K, N)` row-major, the
///   kernel reads the panel with contiguous loads instead of strided
///   gathers;
/// * an OC-blocked `Conv` weight panel ([`pack_conv_oc_panel`]) — when `op`
///   is an ungrouped `Conv` whose output-channel count is a multiple of
///   [`CONV_PANEL_LANES`], the kernel switches from column lanes to
///   channel-block lanes: eight output channels of one output position
///   accumulate in lockstep, each tap's eight weights arriving as one
///   contiguous panel load instead of an `(OC, ICpg, k…)`-stride gather.
///
/// Packing never changes results — a panel supplies the same operand values
/// in the same accumulation order, so outputs are bit-identical to the
/// unpacked call (pinned by the kernel tests). `packed_b` is ignored for
/// every other operator, for untransposed `Gemm`, and for convs the panel
/// layout does not fit (grouped, remainder channels, or the scalar path).
///
/// # Errors
///
/// Returns an [`OpError`] when the inputs are structurally invalid for the
/// operator (wrong arity or rank).
///
/// # Panics
///
/// May panic on inputs whose shapes are inconsistent with `out_shape`, or a
/// `packed_b` whose shape is not the transposed B; callers are expected to
/// pass shapes produced by shape inference and panels produced from the
/// actual operand.
pub fn execute_fast_into_packed(
    op: OpKind,
    attrs: &Attrs,
    inputs: &[&Tensor],
    packed_b: Option<&Tensor>,
    out_shape: &Shape,
    out: &mut [f32],
    pool: WorkPool,
) -> Result<bool, OpError> {
    debug_assert_eq!(out.len(), out_shape.numel());
    match op {
        OpKind::Conv => fast_conv(attrs, inputs, packed_b, out_shape, out, pool)?,
        OpKind::MatMul => fast_matmul(op, inputs, out_shape, out, pool)?,
        OpKind::Gemm => fast_gemm(attrs, inputs, packed_b, out_shape, out, pool)?,
        OpKind::MaxPool | OpKind::AveragePool => {
            fast_pool(op, attrs, inputs, out_shape, out, pool)?
        }
        OpKind::GlobalAveragePool => fast_global_average_pool(inputs, out_shape, out, pool)?,
        _ => return Ok(false),
    }
    Ok(true)
}

fn arity(op: OpKind, inputs: &[&Tensor], min: usize) -> Result<(), OpError> {
    if inputs.len() < min {
        return Err(OpError::ArityMismatch {
            op,
            expected: min,
            actual: inputs.len(),
        });
    }
    Ok(())
}

fn spatial_attrs(attrs: &Attrs, spatial_rank: usize) -> (Vec<usize>, Vec<usize>, Vec<usize>) {
    let strides: Vec<usize> = attrs
        .ints_or("strides", &vec![1; spatial_rank])
        .iter()
        .map(|&s| s.max(1) as usize)
        .collect();
    let dilations: Vec<usize> = attrs
        .ints_or("dilations", &vec![1; spatial_rank])
        .iter()
        .map(|&d| d.max(1) as usize)
        .collect();
    let pads: Vec<usize> = attrs
        .ints_or("pads", &vec![0; spatial_rank * 2])
        .iter()
        .map(|&p| p.max(0) as usize)
        .collect();
    (strides, dilations, pads)
}

/// Direct convolution with precomputed strides. Accumulates over input
/// channels then kernel taps in row-major order — the reference kernel's
/// exact summation sequence. Parallel over `(batch, out_channel)` output
/// planes; each plane is owned by one thread. With a prepacked OC panel
/// (`packed`, see [`pack_conv_oc_panel`]) and an ungrouped conv whose
/// channel count fits the panel, the kernel parallelizes over
/// `(batch, channel-block)` super-planes instead and lanes own whole output
/// channels — same elements, same per-element tap order, different loop
/// nesting across *independent* elements, so results stay bit-identical.
fn fast_conv(
    attrs: &Attrs,
    inputs: &[&Tensor],
    packed: Option<&Tensor>,
    out_shape: &Shape,
    out: &mut [f32],
    pool: WorkPool,
) -> Result<(), OpError> {
    arity(OpKind::Conv, inputs, 2)?;
    let x = inputs[0];
    let w = inputs[1];
    let bias = inputs.get(2).map(|b| b.data());
    if x.shape().rank() < 3 || w.shape().rank() != x.shape().rank() {
        return Err(OpError::InvalidShape {
            op: OpKind::Conv,
            reason: "expected (N, C, spatial...) input and matching-rank weight".into(),
        });
    }
    if out.is_empty() {
        return Ok(());
    }
    let spatial_rank = x.shape().rank() - 2;
    let (strides, dilations, pads) = spatial_attrs(attrs, spatial_rank);
    let group = attrs.int_or("group", 1).max(1) as usize;

    let xd = x.shape().dims().to_vec();
    let xs = x.shape().strides();
    let ws = w.shape().strides();
    let out_channels = out_shape.dim(1);
    let in_per_group = w.shape().dim(1);
    let channels_per_group_out = (out_channels / group).max(1);
    let xdat = x.data();
    let wdat = w.data();
    let kernel_elems: usize = w.shape().dims()[2..].iter().product();
    let pool = pool.for_work(
        out.len()
            .saturating_mul(in_per_group)
            .saturating_mul(kernel_elems),
    );

    // OC-blocked lane path: with an ungrouped conv, a channel count that
    // fills whole lane bundles, and a prepacked panel matching this weight
    // ([`pack_conv_oc_panel`]'s layout), lanes own eight output channels of
    // one output position instead of eight output columns — each tap's
    // weights arrive as one contiguous panel load (the `(OC, ICpg, k…)`
    // layout would gather them with stride `ICpg·∏k`) and the input value is
    // a splat. Every output element still accumulates with the scalar tap
    // order, so the path is bit-identical to the column-lane and scalar
    // paths; the scalar mode ignores the panel entirely.
    let panel = packed.filter(|p| {
        group == 1
            && out_channels.is_multiple_of(CONV_PANEL_LANES)
            && p.shape().dims()
                == [
                    out_channels / CONV_PANEL_LANES,
                    in_per_group * kernel_elems,
                    CONV_PANEL_LANES,
                ]
    });
    if pool.use_simd() {
        if let Some(panel) = panel {
            fast_conv_packed(
                panel.data(),
                xdat,
                bias,
                &xd,
                &xs,
                &w.shape().dims()[2..],
                out_shape,
                &strides,
                &dilations,
                &pads,
                in_per_group,
                out,
                pool,
            );
            return Ok(());
        }
    }

    if spatial_rank == 2 {
        let (oh, ow) = (out_shape.dim(2), out_shape.dim(3));
        let (ih, iw) = (xd[2], xd[3]);
        let (kh, kw) = (w.shape().dim(2), w.shape().dim(3));
        let (sh, sw) = (strides[0], strides[1]);
        let (dh, dw) = (dilations[0], dilations[1]);
        let (ph, pw) = (pads[0], pads[1]);
        // Hoist the stride vectors into scalars so the closure captures
        // plain values the optimizer keeps in registers.
        let (xs0, xs1, xs2) = (xs[0], xs[1], xs[2]);
        let (ws0, ws1, ws2) = (ws[0], ws[1], ws[2]);
        let tile = Conv2d {
            xdat,
            wdat,
            ih,
            iw,
            kh,
            kw,
            sh,
            sw,
            dh,
            dw,
            ph,
            pw,
            in_per_group,
            xs1,
            xs2,
            ws1,
            ws2,
        };
        // Interior output columns: every kx tap lands in bounds, for every
        // lane, so the lane-blocked path never needs a tap-skip test. The
        // left border needs ox*sw >= pw; the right border needs the furthest
        // tap, ox*sw + (kw-1)*dw - pw, to stay below iw.
        let span = (kw - 1) * dw;
        let x_hi = if iw + pw > span {
            ((iw + pw - span - 1) / sw + 1).min(ow)
        } else {
            0
        };
        let x_lo = pw.div_ceil(sw).min(x_hi);
        let simd = pool.use_simd();
        // One chunk per (n, oc) output plane, written by exactly one thread.
        pool.run_chunks(out, oh * ow, |plane, chunk| {
            let n = plane / out_channels;
            let oc = plane % out_channels;
            let g = oc / channels_per_group_out;
            let b0 = bias.map_or(0.0, |b| b[oc]);
            let w_oc = oc * ws0;
            let x_plane = n * xs0 + g * in_per_group * xs1;
            for (oy, row) in chunk.chunks_mut(ow).enumerate() {
                if simd {
                    tile.scalar_cols(row, x_plane, w_oc, b0, oy, 0, x_lo);
                    let mut ox = x_lo;
                    while ox + LANES <= x_hi {
                        tile.simd_cols::<LANES>(row, x_plane, w_oc, b0, oy, ox);
                        ox += LANES;
                    }
                    if ox + 4 <= x_hi {
                        tile.simd_cols::<4>(row, x_plane, w_oc, b0, oy, ox);
                        ox += 4;
                    }
                    tile.scalar_cols(row, x_plane, w_oc, b0, oy, ox, ow);
                } else {
                    tile.scalar_cols(row, x_plane, w_oc, b0, oy, 0, ow);
                }
            }
        });
        return Ok(());
    }

    // Generic spatial rank (1-D and 3-D convolutions), parallel over the
    // same (n, oc) planes. Each plane is walked row by row along the
    // innermost spatial axis: outer-axis taps keep per-tap bounds checks
    // (the predicate is uniform over a row), while the innermost axis is
    // split into checked border columns and lane-blocked interior columns
    // exactly like the 2-D kernel above.
    let out_sp: Vec<usize> = out_shape.dims()[2..].to_vec();
    let kernel_sp: Vec<usize> = w.shape().dims()[2..].to_vec();
    let out_sp_count: usize = out_sp.iter().product();
    let last = spatial_rank - 1;
    let ow = out_sp[last];
    let iw = xd[2 + last];
    let (sw, dw, pw) = (strides[last], dilations[last], pads[last]);
    let kw = kernel_sp[last];
    // Interior columns: every innermost tap lands in bounds for every lane
    // (same derivation as the 2-D kernel's x_lo / x_hi).
    let span = (kw - 1) * dw;
    let x_hi = if iw + pw > span {
        ((iw + pw - span - 1) / sw + 1).min(ow)
    } else {
        0
    };
    let x_lo = pw.div_ceil(sw).min(x_hi);
    let tile = ConvNd {
        xdat,
        wdat,
        xd_sp: &xd[2..],
        xs_sp: &xs[2..],
        ws_sp: &ws[2..],
        kernel_sp: &kernel_sp,
        kernel_count: kernel_sp.iter().product(),
        outer_count: kernel_sp[..last].iter().product(),
        strides: &strides,
        dilations: &dilations,
        pads: &pads,
        in_per_group,
        xs1: xs[1],
        ws1: ws[1],
    };
    let outer_sp = &out_sp[..last];
    let simd = pool.use_simd();
    pool.run_chunks(out, out_sp_count, |plane, chunk| {
        let n = plane / out_channels;
        let oc = plane % out_channels;
        let g = oc / channels_per_group_out;
        let b0 = bias.map_or(0.0, |b| b[oc]);
        let w_oc = oc * ws[0];
        let x_plane = n * xs[0] + g * in_per_group * xs[1];
        let mut outer_pos = vec![0usize; last];
        // One odometer scratch per plane, shared by every column kernel call
        // (the scalar path walks all axes, the lane path only the outer
        // ones) — no allocation inside the row loop.
        let mut k_pos = vec![0usize; spatial_rank];
        for row in chunk.chunks_mut(ow) {
            if simd {
                tile.scalar_cols(row, x_plane, w_oc, b0, &outer_pos, &mut k_pos, 0, x_lo);
                let mut ox = x_lo;
                while ox + LANES <= x_hi {
                    tile.simd_cols::<LANES>(
                        row,
                        x_plane,
                        w_oc,
                        b0,
                        &outer_pos,
                        &mut k_pos[..last],
                        ox,
                    );
                    ox += LANES;
                }
                if ox + 4 <= x_hi {
                    tile.simd_cols::<4>(row, x_plane, w_oc, b0, &outer_pos, &mut k_pos[..last], ox);
                    ox += 4;
                }
                tile.scalar_cols(row, x_plane, w_oc, b0, &outer_pos, &mut k_pos, ox, ow);
            } else {
                tile.scalar_cols(row, x_plane, w_oc, b0, &outer_pos, &mut k_pos, 0, ow);
            }
            advance(&mut outer_pos, outer_sp);
        }
    });
    Ok(())
}

/// The OC-blocked convolution path: lanes own [`CONV_PANEL_LANES`] whole
/// output channels of one output position, weights stream from the packed
/// panel ([`pack_conv_oc_panel`]), inputs splat. Parallel over
/// `(batch, channel-block)` super-planes of [`CONV_PANEL_LANES`] output
/// planes each — exact chunks, since the caller guarantees
/// `OC % CONV_PANEL_LANES == 0` — so each super-plane is written by exactly
/// one thread. Interior columns additionally take a register-blocked
/// microkernel tile: [`CONV_PACK_COLS`] consecutive columns accumulate in
/// independent registers sharing each tap's single panel load, which both
/// amortizes the weight traffic and breaks the loop-carried dependence on
/// one accumulator. Every output element still accumulates with the scalar
/// kernel's tap order (`acc = acc + x * w`, input channels then kernel taps
/// row-major, no FMA), so the path is bit-identical to the column-lane and
/// scalar paths.
#[allow(clippy::too_many_arguments)]
fn fast_conv_packed(
    panel: &[f32],
    xdat: &[f32],
    bias: Option<&[f32]>,
    xd: &[usize],
    xs: &[usize],
    kernel_sp: &[usize],
    out_shape: &Shape,
    strides: &[usize],
    dilations: &[usize],
    pads: &[usize],
    in_per_group: usize,
    out: &mut [f32],
    pool: WorkPool,
) {
    const B: usize = CONV_PANEL_LANES;
    let spatial_rank = kernel_sp.len();
    let out_channels = out_shape.dim(1);
    let blocks = out_channels / B;
    let out_sp: Vec<usize> = out_shape.dims()[2..].to_vec();
    let out_sp_count: usize = out_sp.iter().product();
    let taps: usize = in_per_group * kernel_sp.iter().product::<usize>();

    // Interior columns of the innermost axis: every innermost tap in bounds,
    // same derivation as the column-lane kernels.
    let last = spatial_rank - 1;
    let ow = out_sp[last];
    let iw = xd[2 + last];
    let (sw, dw, pw) = (strides[last], dilations[last], pads[last]);
    let kw = kernel_sp[last];
    let span = (kw - 1) * dw;
    let x_hi = if iw + pw > span {
        ((iw + pw - span - 1) / sw + 1).min(ow)
    } else {
        0
    };
    let x_lo = pw.div_ceil(sw).min(x_hi);

    if spatial_rank == 2 {
        let tile = ConvPacked2d {
            xdat,
            panel,
            ih: xd[2],
            iw,
            kh: kernel_sp[0],
            kw,
            sh: strides[0],
            sw,
            dh: dilations[0],
            dw,
            ph: pads[0],
            pw,
            in_per_group,
            xs1: xs[1],
            xs2: xs[2],
        };
        let (oh, xs0) = (out_sp[0], xs[0]);
        pool.run_chunks(out, B * out_sp_count, |super_plane, chunk| {
            let n = super_plane / blocks;
            let ob = super_plane % blocks;
            let bias_v = bias.map_or_else(
                || F32Lanes::<B>::splat(0.0),
                |b| F32Lanes::<B>::load(&b[ob * B..]),
            );
            let x_plane = n * xs0;
            let p_block = ob * taps * B;
            for oy in 0..oh {
                let pos = oy * ow;
                for ox in 0..x_lo {
                    tile.border_col(chunk, out_sp_count, x_plane, p_block, bias_v, oy, ox, pos);
                }
                let mut ox = x_lo;
                while ox + CONV_PACK_COLS <= x_hi {
                    tile.interior_cols::<CONV_PACK_COLS>(
                        chunk,
                        out_sp_count,
                        x_plane,
                        p_block,
                        bias_v,
                        oy,
                        ox,
                        pos,
                    );
                    ox += CONV_PACK_COLS;
                }
                while ox < x_hi {
                    tile.interior_cols::<1>(
                        chunk,
                        out_sp_count,
                        x_plane,
                        p_block,
                        bias_v,
                        oy,
                        ox,
                        pos,
                    );
                    ox += 1;
                }
                for ox in x_hi..ow {
                    tile.border_col(chunk, out_sp_count, x_plane, p_block, bias_v, oy, ox, pos);
                }
            }
        });
        return;
    }

    // Generic spatial rank (1-D / 3-D and beyond): outer kernel axes walk by
    // odometer with per-tap bounds checks (uniform over a row and over the
    // channel lanes), the innermost axis takes the same border/interior
    // split.
    let tile = ConvPackedNd {
        xdat,
        panel,
        xd_sp: &xd[2..],
        xs_sp: &xs[2..],
        kernel_sp,
        kernel_count: kernel_sp.iter().product(),
        outer_count: kernel_sp[..last].iter().product(),
        strides,
        dilations,
        pads,
        in_per_group,
        xs1: xs[1],
    };
    let outer_sp = &out_sp[..last];
    let xs0 = xs[0];
    pool.run_chunks(out, B * out_sp_count, |super_plane, chunk| {
        let n = super_plane / blocks;
        let ob = super_plane % blocks;
        let bias_v = bias.map_or_else(
            || F32Lanes::<B>::splat(0.0),
            |b| F32Lanes::<B>::load(&b[ob * B..]),
        );
        let x_plane = n * xs0;
        let p_block = ob * taps * B;
        let mut outer_pos = vec![0usize; last];
        let mut k_pos = vec![0usize; spatial_rank];
        let mut pos = 0usize;
        while pos < out_sp_count {
            for ox in 0..x_lo {
                tile.border_col(
                    chunk,
                    out_sp_count,
                    x_plane,
                    p_block,
                    bias_v,
                    &outer_pos,
                    &mut k_pos,
                    ox,
                    pos,
                );
            }
            let mut ox = x_lo;
            while ox + CONV_PACK_COLS <= x_hi {
                tile.interior_cols::<CONV_PACK_COLS>(
                    chunk,
                    out_sp_count,
                    x_plane,
                    p_block,
                    bias_v,
                    &outer_pos,
                    &mut k_pos[..last],
                    ox,
                    pos,
                );
                ox += CONV_PACK_COLS;
            }
            while ox < x_hi {
                tile.interior_cols::<1>(
                    chunk,
                    out_sp_count,
                    x_plane,
                    p_block,
                    bias_v,
                    &outer_pos,
                    &mut k_pos[..last],
                    ox,
                    pos,
                );
                ox += 1;
            }
            for ox in x_hi..ow {
                tile.border_col(
                    chunk,
                    out_sp_count,
                    x_plane,
                    p_block,
                    bias_v,
                    &outer_pos,
                    &mut k_pos,
                    ox,
                    pos,
                );
            }
            advance(&mut outer_pos, outer_sp);
            pos += ow;
        }
    });
}

/// Columns per register-blocked interior tile of the packed conv path: four
/// independent lane-bundle accumulators share each tap's panel load.
const CONV_PACK_COLS: usize = 4;

/// Loop constants of one 2-D OC-blocked packed convolution launch.
struct ConvPacked2d<'a> {
    xdat: &'a [f32],
    panel: &'a [f32],
    ih: usize,
    iw: usize,
    kh: usize,
    kw: usize,
    sh: usize,
    sw: usize,
    dh: usize,
    dw: usize,
    ph: usize,
    pw: usize,
    in_per_group: usize,
    xs1: usize,
    xs2: usize,
}

impl ConvPacked2d<'_> {
    /// `R` consecutive interior columns at `(oy, ox…ox+R)`: every `kx` tap
    /// in bounds, `ky` checks uniform across the tile. Lane `l` of
    /// accumulator `r` owns output element `(oc0 + l, oy, ox + r)`; each
    /// accumulates `acc = acc + x * w` over input channels then kernel taps
    /// row-major — the scalar order. The panel index advances over skipped
    /// `ky` rows so every tap reads its own fixed panel slot.
    #[allow(clippy::too_many_arguments)]
    fn interior_cols<const R: usize>(
        &self,
        chunk: &mut [f32],
        plane_sp: usize,
        x_plane: usize,
        p_block: usize,
        bias_v: F32Lanes<CONV_PANEL_LANES>,
        oy: usize,
        ox: usize,
        row_pos: usize,
    ) {
        const B: usize = CONV_PANEL_LANES;
        let mut acc = [bias_v; R];
        let mut t = p_block;
        for ic in 0..self.in_per_group {
            let x_ic = x_plane + ic * self.xs1;
            for ky in 0..self.kh {
                let y = oy * self.sh + ky * self.dh;
                if y < self.ph || y - self.ph >= self.ih {
                    t += self.kw * B;
                    continue;
                }
                let x_row = x_ic + (y - self.ph) * self.xs2;
                for kx in 0..self.kw {
                    let wv = F32Lanes::<B>::load(&self.panel[t..]);
                    t += B;
                    let xb = x_row + ox * self.sw + kx * self.dw - self.pw;
                    for (r, a) in acc.iter_mut().enumerate() {
                        let xv = F32Lanes::<B>::splat(self.xdat[xb + r * self.sw]);
                        *a = *a + xv * wv;
                    }
                }
            }
        }
        for (r, a) in acc.iter().enumerate() {
            for (l, &v) in a.to_array().iter().enumerate() {
                chunk[l * plane_sp + row_pos + ox + r] = v;
            }
        }
    }

    /// One border column with full per-tap bounds checks — the checks
    /// depend only on `(oy, ox, ky, kx)`, so they are uniform across the
    /// channel lanes and skip exactly the taps the scalar kernel skips.
    #[allow(clippy::too_many_arguments)]
    fn border_col(
        &self,
        chunk: &mut [f32],
        plane_sp: usize,
        x_plane: usize,
        p_block: usize,
        bias_v: F32Lanes<CONV_PANEL_LANES>,
        oy: usize,
        ox: usize,
        row_pos: usize,
    ) {
        const B: usize = CONV_PANEL_LANES;
        let mut acc = bias_v;
        let mut t = p_block;
        for ic in 0..self.in_per_group {
            let x_ic = x_plane + ic * self.xs1;
            for ky in 0..self.kh {
                let y = oy * self.sh + ky * self.dh;
                if y < self.ph || y - self.ph >= self.ih {
                    t += self.kw * B;
                    continue;
                }
                let x_row = x_ic + (y - self.ph) * self.xs2;
                for kx in 0..self.kw {
                    let xx = ox * self.sw + kx * self.dw;
                    if xx >= self.pw && xx - self.pw < self.iw {
                        let xv = F32Lanes::<B>::splat(self.xdat[x_row + (xx - self.pw)]);
                        acc = acc + xv * F32Lanes::<B>::load(&self.panel[t..]);
                    }
                    t += B;
                }
            }
        }
        for (l, &v) in acc.to_array().iter().enumerate() {
            chunk[l * plane_sp + row_pos + ox] = v;
        }
    }
}

/// Loop constants of one generic-rank OC-blocked packed convolution launch.
struct ConvPackedNd<'a> {
    xdat: &'a [f32],
    panel: &'a [f32],
    xd_sp: &'a [usize],
    xs_sp: &'a [usize],
    kernel_sp: &'a [usize],
    kernel_count: usize,
    outer_count: usize,
    strides: &'a [usize],
    dilations: &'a [usize],
    pads: &'a [usize],
    in_per_group: usize,
    xs1: usize,
}

impl ConvPackedNd<'_> {
    /// `R` consecutive interior columns of the row at `outer_pos`: innermost
    /// taps all in bounds, outer-axis checks uniform across the tile and the
    /// channel lanes. Skipped outer taps advance the panel index by a whole
    /// innermost run, so in-bounds taps read their fixed panel slots in the
    /// scalar ravel order.
    #[allow(clippy::too_many_arguments)]
    fn interior_cols<const R: usize>(
        &self,
        chunk: &mut [f32],
        plane_sp: usize,
        x_plane: usize,
        p_block: usize,
        bias_v: F32Lanes<CONV_PANEL_LANES>,
        outer_pos: &[usize],
        k_outer: &mut [usize],
        ox: usize,
        row_pos: usize,
    ) {
        const B: usize = CONV_PANEL_LANES;
        let rank = self.kernel_sp.len();
        let last = rank - 1;
        let (sw, dw, pw) = (self.strides[last], self.dilations[last], self.pads[last]);
        let xs_last = self.xs_sp[last];
        let kw = self.kernel_sp[last];
        let lane_step = sw * xs_last;
        let mut acc = [bias_v; R];
        let mut t = p_block;
        for ic in 0..self.in_per_group {
            let x_base = x_plane + ic * self.xs1;
            k_outer.iter_mut().for_each(|p| *p = 0);
            for _ in 0..self.outer_count {
                let mut x_off = x_base;
                let mut in_bounds = true;
                for d in 0..last {
                    let pos = outer_pos[d] * self.strides[d] + k_outer[d] * self.dilations[d];
                    if pos < self.pads[d] || pos - self.pads[d] >= self.xd_sp[d] {
                        in_bounds = false;
                        break;
                    }
                    x_off += (pos - self.pads[d]) * self.xs_sp[d];
                }
                if in_bounds {
                    for kx in 0..kw {
                        let wv = F32Lanes::<B>::load(&self.panel[t..]);
                        t += B;
                        let xb = x_off + (ox * sw + kx * dw - pw) * xs_last;
                        for (r, a) in acc.iter_mut().enumerate() {
                            let xv = F32Lanes::<B>::splat(self.xdat[xb + r * lane_step]);
                            *a = *a + xv * wv;
                        }
                    }
                } else {
                    t += kw * B;
                }
                advance(k_outer, &self.kernel_sp[..last]);
            }
        }
        for (r, a) in acc.iter().enumerate() {
            for (l, &v) in a.to_array().iter().enumerate() {
                chunk[l * plane_sp + row_pos + ox + r] = v;
            }
        }
    }

    /// One border column with per-tap bounds checks on every axis — uniform
    /// across the channel lanes, skipping exactly the taps the scalar kernel
    /// skips.
    #[allow(clippy::too_many_arguments)]
    fn border_col(
        &self,
        chunk: &mut [f32],
        plane_sp: usize,
        x_plane: usize,
        p_block: usize,
        bias_v: F32Lanes<CONV_PANEL_LANES>,
        outer_pos: &[usize],
        k_pos: &mut [usize],
        ox: usize,
        row_pos: usize,
    ) {
        const B: usize = CONV_PANEL_LANES;
        let rank = self.kernel_sp.len();
        let last = rank - 1;
        let mut acc = bias_v;
        let mut t = p_block;
        for ic in 0..self.in_per_group {
            let x_base = x_plane + ic * self.xs1;
            k_pos.iter_mut().for_each(|p| *p = 0);
            for _ in 0..self.kernel_count {
                let mut x_off = x_base;
                let mut in_bounds = true;
                for d in 0..rank {
                    let out_coord = if d == last { ox } else { outer_pos[d] };
                    let pos = out_coord * self.strides[d] + k_pos[d] * self.dilations[d];
                    if pos < self.pads[d] || pos - self.pads[d] >= self.xd_sp[d] {
                        in_bounds = false;
                        break;
                    }
                    x_off += (pos - self.pads[d]) * self.xs_sp[d];
                }
                if in_bounds {
                    let xv = F32Lanes::<B>::splat(self.xdat[x_off]);
                    acc = acc + xv * F32Lanes::<B>::load(&self.panel[t..]);
                }
                t += B;
                advance(k_pos, self.kernel_sp);
            }
        }
        for (l, &v) in acc.to_array().iter().enumerate() {
            chunk[l * plane_sp + row_pos + ox] = v;
        }
    }
}

/// Loop constants of one generic-rank (1-D / 3-D / higher) convolution
/// launch, shared by the scalar and lane-blocked column kernels so both walk
/// the identical tap sequence. Spatial axis `last` (`kernel_sp.len() - 1`)
/// is the vectorized one; the outer spatial axes are walked by odometer with
/// per-tap bounds checks that are uniform over an output row.
struct ConvNd<'a> {
    xdat: &'a [f32],
    wdat: &'a [f32],
    /// Input spatial dims (length = spatial rank).
    xd_sp: &'a [usize],
    /// Input strides of the spatial axes.
    xs_sp: &'a [usize],
    /// Weight strides of the spatial axes.
    ws_sp: &'a [usize],
    kernel_sp: &'a [usize],
    /// Product of all kernel extents (taps per input channel).
    kernel_count: usize,
    /// Product of the outer (non-innermost) kernel extents.
    outer_count: usize,
    strides: &'a [usize],
    dilations: &'a [usize],
    pads: &'a [usize],
    in_per_group: usize,
    xs1: usize,
    ws1: usize,
}

impl ConvNd<'_> {
    /// Columns `[ox0, ox1)` of the output row at `outer_pos`, one element at
    /// a time with per-tap bounds checks on every axis — the reference
    /// kernel's accumulation order (input channels, then kernel taps in
    /// row-major order), used for padded borders, lane remainders and the
    /// full-scalar mode.
    #[allow(clippy::too_many_arguments)]
    fn scalar_cols(
        &self,
        row: &mut [f32],
        x_plane: usize,
        w_oc: usize,
        b0: f32,
        outer_pos: &[usize],
        k_pos: &mut [usize],
        ox0: usize,
        ox1: usize,
    ) {
        let rank = self.kernel_sp.len();
        let last = rank - 1;
        for (ox, slot) in row[..ox1].iter_mut().enumerate().skip(ox0) {
            let mut acc = b0;
            for ic in 0..self.in_per_group {
                let x_base = x_plane + ic * self.xs1;
                let w_base = w_oc + ic * self.ws1;
                k_pos.iter_mut().for_each(|p| *p = 0);
                for _ in 0..self.kernel_count {
                    let mut x_off = x_base;
                    let mut w_off = w_base;
                    let mut in_bounds = true;
                    for d in 0..rank {
                        let out_coord = if d == last { ox } else { outer_pos[d] };
                        let pos = out_coord * self.strides[d] + k_pos[d] * self.dilations[d];
                        if pos < self.pads[d] || pos - self.pads[d] >= self.xd_sp[d] {
                            in_bounds = false;
                            break;
                        }
                        x_off += (pos - self.pads[d]) * self.xs_sp[d];
                        w_off += k_pos[d] * self.ws_sp[d];
                    }
                    if in_bounds {
                        acc += self.xdat[x_off] * self.wdat[w_off];
                    }
                    advance(k_pos, self.kernel_sp);
                }
            }
            *slot = acc;
        }
    }

    /// `N` consecutive interior columns starting at `ox`: one output element
    /// per lane, every innermost tap in bounds by the caller's interior-range
    /// computation. Outer-axis taps whose bounds check fails are skipped for
    /// the whole bundle — exactly the taps [`ConvNd::scalar_cols`] skips —
    /// and in-bounds taps accumulate in the scalar order (`acc = acc + x * w`
    /// per lane, no FMA), so the two paths are bit-identical.
    #[allow(clippy::too_many_arguments)]
    fn simd_cols<const N: usize>(
        &self,
        row: &mut [f32],
        x_plane: usize,
        w_oc: usize,
        b0: f32,
        outer_pos: &[usize],
        k_outer: &mut [usize],
        ox: usize,
    ) {
        let rank = self.kernel_sp.len();
        let last = rank - 1;
        let (sw, dw, pw) = (self.strides[last], self.dilations[last], self.pads[last]);
        let (xs_last, ws_last) = (self.xs_sp[last], self.ws_sp[last]);
        let kw = self.kernel_sp[last];
        let lane_stride = sw * xs_last;
        let mut acc = F32Lanes::<N>::splat(b0);
        for ic in 0..self.in_per_group {
            let x_base = x_plane + ic * self.xs1;
            let w_base = w_oc + ic * self.ws1;
            k_outer.iter_mut().for_each(|p| *p = 0);
            for _ in 0..self.outer_count {
                let mut x_off = x_base;
                let mut w_off = w_base;
                let mut in_bounds = true;
                for d in 0..last {
                    let pos = outer_pos[d] * self.strides[d] + k_outer[d] * self.dilations[d];
                    if pos < self.pads[d] || pos - self.pads[d] >= self.xd_sp[d] {
                        in_bounds = false;
                        break;
                    }
                    x_off += (pos - self.pads[d]) * self.xs_sp[d];
                    w_off += k_outer[d] * self.ws_sp[d];
                }
                if in_bounds {
                    for kx in 0..kw {
                        let x0 = x_off + (ox * sw + kx * dw - pw) * xs_last;
                        let xv = if lane_stride == 1 {
                            F32Lanes::<N>::load(&self.xdat[x0..])
                        } else {
                            F32Lanes::<N>::gather(self.xdat, x0, lane_stride)
                        };
                        acc = acc + xv * F32Lanes::<N>::splat(self.wdat[w_off + kx * ws_last]);
                    }
                }
                advance(k_outer, &self.kernel_sp[..last]);
            }
        }
        acc.store(&mut row[ox..]);
    }
}

/// Loop constants of one 2-D convolution launch, shared by the scalar and
/// lane-blocked column kernels so both walk the identical tap sequence.
struct Conv2d<'a> {
    xdat: &'a [f32],
    wdat: &'a [f32],
    ih: usize,
    iw: usize,
    kh: usize,
    kw: usize,
    sh: usize,
    sw: usize,
    dh: usize,
    dw: usize,
    ph: usize,
    pw: usize,
    in_per_group: usize,
    xs1: usize,
    xs2: usize,
    ws1: usize,
    ws2: usize,
}

impl Conv2d<'_> {
    /// Columns `[ox0, ox1)` of output row `oy`, one element at a time with
    /// per-tap bounds checks — the reference accumulation order, used for
    /// padded borders, lane remainders and the full-scalar mode.
    #[allow(clippy::too_many_arguments)]
    fn scalar_cols(
        &self,
        row: &mut [f32],
        x_plane: usize,
        w_oc: usize,
        b0: f32,
        oy: usize,
        ox0: usize,
        ox1: usize,
    ) {
        for (ox, slot) in row[..ox1].iter_mut().enumerate().skip(ox0) {
            let mut acc = b0;
            for ic in 0..self.in_per_group {
                let x_base = x_plane + ic * self.xs1;
                let w_base = w_oc + ic * self.ws1;
                for ky in 0..self.kh {
                    let y = oy * self.sh + ky * self.dh;
                    if y < self.ph || y - self.ph >= self.ih {
                        continue;
                    }
                    let x_row = x_base + (y - self.ph) * self.xs2;
                    let w_row = w_base + ky * self.ws2;
                    for kx in 0..self.kw {
                        let xx = ox * self.sw + kx * self.dw;
                        if xx < self.pw || xx - self.pw >= self.iw {
                            continue;
                        }
                        acc += self.xdat[x_row + (xx - self.pw)] * self.wdat[w_row + kx];
                    }
                }
            }
            *slot = acc;
        }
    }

    /// `N` consecutive interior columns starting at `ox`: one output element
    /// per lane, all taps in bounds by the caller's interior-range
    /// computation, accumulated tap by tap in the scalar order (`acc = acc +
    /// x * w` per lane — bit-identical to [`Conv2d::scalar_cols`]).
    #[allow(clippy::too_many_arguments)]
    fn simd_cols<const N: usize>(
        &self,
        row: &mut [f32],
        x_plane: usize,
        w_oc: usize,
        b0: f32,
        oy: usize,
        ox: usize,
    ) {
        let mut acc = F32Lanes::<N>::splat(b0);
        for ic in 0..self.in_per_group {
            let x_base = x_plane + ic * self.xs1;
            let w_base = w_oc + ic * self.ws1;
            for ky in 0..self.kh {
                let y = oy * self.sh + ky * self.dh;
                if y < self.ph || y - self.ph >= self.ih {
                    continue;
                }
                let x_row = x_base + (y - self.ph) * self.xs2;
                let w_row = w_base + ky * self.ws2;
                for kx in 0..self.kw {
                    let x0 = x_row + ox * self.sw + kx * self.dw - self.pw;
                    let xv = if self.sw == 1 {
                        F32Lanes::<N>::load(&self.xdat[x0..])
                    } else {
                        F32Lanes::<N>::gather(self.xdat, x0, self.sw)
                    };
                    acc = acc + xv * F32Lanes::<N>::splat(self.wdat[w_row + kx]);
                }
            }
        }
        acc.store(&mut row[ox..]);
    }
}

/// Row-major odometer increment.
fn advance(pos: &mut [usize], dims: &[usize]) {
    for axis in (0..dims.len()).rev() {
        pos[axis] += 1;
        if pos[axis] < dims[axis] {
            break;
        }
        pos[axis] = 0;
    }
}

/// Batched matrix multiplication with broadcasting over batch dimensions.
/// Parallel over output rows across all batches (per-batch operand offsets
/// are precomputed, so a small batch count never caps thread utilization);
/// the per-element dot product is never split.
fn fast_matmul(
    op: OpKind,
    inputs: &[&Tensor],
    out_shape: &Shape,
    out: &mut [f32],
    pool: WorkPool,
) -> Result<(), OpError> {
    arity(op, inputs, 2)?;
    let a = inputs[0];
    let b = inputs[1];
    if a.shape().rank() < 2 || b.shape().rank() < 2 {
        return Err(OpError::InvalidShape {
            op,
            reason: "operands must be rank >= 2".into(),
        });
    }
    if out.is_empty() {
        return Ok(());
    }
    let m = out_shape.dim(out_shape.rank() - 2);
    let n = out_shape.dim(out_shape.rank() - 1);
    let k = a.shape().dim(a.shape().rank() - 1);
    let batch_shape = Shape::new(out_shape.dims()[..out_shape.rank() - 2].to_vec());
    let a_batch = Shape::new(a.shape().dims()[..a.shape().rank() - 2].to_vec());
    let b_batch = Shape::new(b.shape().dims()[..b.shape().rank() - 2].to_vec());
    let a_strides = a.shape().strides();
    let b_strides = b.shape().strides();
    let adat = a.data();
    let bdat = b.data();
    let a_row_stride = a_strides[a.shape().rank() - 2];
    let b_row_stride = b_strides[b.shape().rank() - 2];
    let batches = batch_shape.numel().max(1);
    let pool = pool.for_work(out.len().saturating_mul(k));

    // Broadcast-resolved operand offsets, one entry per batch, computed once
    // so the per-row closure stays index-arithmetic only.
    let bases: Vec<(usize, usize)> = (0..batches)
        .map(|batch| {
            let batch_idx = batch_shape.multi_index(batch);
            let a_prefix = broadcast_index(&batch_idx, &a_batch);
            let b_prefix = broadcast_index(&batch_idx, &b_batch);
            let a_base = a_prefix.iter().zip(&a_strides).map(|(&i, &s)| i * s).sum();
            let b_base = b_prefix.iter().zip(&b_strides).map(|(&i, &s)| i * s).sum();
            (a_base, b_base)
        })
        .collect();

    // One chunk per output row, across all batches. Lane-blocked over the
    // output columns: `b`'s column stride is 1, so each reduction step loads
    // one contiguous `N`-wide slice of `b`'s row `p` and every lane
    // accumulates its own column's dot product in the scalar order.
    let simd = pool.use_simd();
    pool.run_chunks(out, n, |row, chunk| {
        let (a_base, b_base) = bases[row / m];
        let i = row % m;
        let a_row = &adat[a_base + i * a_row_stride..a_base + i * a_row_stride + k];
        let mut j0 = 0usize;
        if simd {
            while j0 + 2 * LANES <= n {
                matmul_cols2::<LANES>(chunk, j0, a_row, bdat, b_base, b_row_stride);
                j0 += 2 * LANES;
            }
            while j0 + LANES <= n {
                matmul_cols::<LANES>(chunk, j0, a_row, bdat, b_base, b_row_stride);
                j0 += LANES;
            }
            if j0 + 4 <= n {
                matmul_cols::<4>(chunk, j0, a_row, bdat, b_base, b_row_stride);
                j0 += 4;
            }
        }
        for (j, slot) in chunk.iter_mut().enumerate().skip(j0) {
            let mut acc = 0.0f32;
            for (p, &av) in a_row.iter().enumerate() {
                acc += av * bdat[b_base + p * b_row_stride + j];
            }
            *slot = acc;
        }
    });
    Ok(())
}

/// `N` consecutive output columns of one `MatMul` row: lane `l` owns column
/// `j + l` and runs the scalar dot-product sequence on it.
fn matmul_cols<const N: usize>(
    chunk: &mut [f32],
    j: usize,
    a_row: &[f32],
    bdat: &[f32],
    b_base: usize,
    b_row_stride: usize,
) {
    let mut acc = F32Lanes::<N>::splat(0.0);
    for (p, &av) in a_row.iter().enumerate() {
        let bv = F32Lanes::<N>::load(&bdat[b_base + p * b_row_stride + j..]);
        acc = acc + F32Lanes::<N>::splat(av) * bv;
    }
    acc.store(&mut chunk[j..]);
}

/// Register-blocked tile of `2 * N` consecutive `MatMul` output columns: two
/// independent lane-bundle accumulators share each reduction step's `a`
/// splat, halving the splat traffic and breaking the loop-carried dependence
/// on a single accumulator. Each column's accumulation sequence is exactly
/// [`matmul_cols`]'s, so the tile is bit-identical to two single-bundle
/// calls.
fn matmul_cols2<const N: usize>(
    chunk: &mut [f32],
    j: usize,
    a_row: &[f32],
    bdat: &[f32],
    b_base: usize,
    b_row_stride: usize,
) {
    let mut acc0 = F32Lanes::<N>::splat(0.0);
    let mut acc1 = F32Lanes::<N>::splat(0.0);
    for (p, &av) in a_row.iter().enumerate() {
        let row = b_base + p * b_row_stride + j;
        let avv = F32Lanes::<N>::splat(av);
        acc0 = acc0 + avv * F32Lanes::<N>::load(&bdat[row..]);
        acc1 = acc1 + avv * F32Lanes::<N>::load(&bdat[row + N..]);
    }
    acc0.store(&mut chunk[j..]);
    acc1.store(&mut chunk[j + N..]);
}

/// ONNX `Gemm` with transpose flags, `alpha`/`beta` scaling and broadcast
/// bias, in the reference kernel's evaluation order. Parallel over output
/// rows.
fn fast_gemm(
    attrs: &Attrs,
    inputs: &[&Tensor],
    packed_b: Option<&Tensor>,
    out_shape: &Shape,
    out: &mut [f32],
    pool: WorkPool,
) -> Result<(), OpError> {
    arity(OpKind::Gemm, inputs, 2)?;
    let a = inputs[0];
    let b = inputs[1];
    if a.shape().rank() != 2 || b.shape().rank() != 2 {
        return Err(OpError::InvalidShape {
            op: OpKind::Gemm,
            reason: "operands must be rank 2".into(),
        });
    }
    if out.is_empty() {
        return Ok(());
    }
    let alpha = attrs.float_or("alpha", 1.0);
    let beta = attrs.float_or("beta", 1.0);
    let trans_a = attrs.int_or("transA", 0) != 0;
    let trans_b = attrs.int_or("transB", 0) != 0;
    let m = out_shape.dim(0);
    let n = out_shape.dim(1);
    let k = if trans_a {
        a.shape().dim(0)
    } else {
        a.shape().dim(1)
    };
    let adat = a.data();
    let a_cols = a.shape().dim(1);
    // A prepacked (already transposed, `(K, N)` row-major) B panel replaces
    // the transposed operand: reads become contiguous, while every element
    // value — `packed[p][j] == b[j][p]` — and the accumulation order stay
    // exactly those of the strided loop, so results are bit-identical.
    let (bdat, b_cols, trans_b) = match packed_b {
        Some(panel) if trans_b => {
            debug_assert_eq!(
                panel.shape().dims(),
                &[k, n],
                "packed B panel must be (K, N)"
            );
            (panel.data(), n, false)
        }
        _ => (b.data(), b.shape().dim(1), trans_b),
    };
    // Broadcast strides of the optional bias over the (m, n) output.
    let c = inputs.get(2);
    let (c_dat, c_si, c_sj) = match c {
        Some(c) => {
            let cd = c.shape().dims();
            let (si, sj) = match cd.len() {
                2 => (
                    if cd[0] == 1 { 0 } else { cd[1] },
                    if cd[1] == 1 { 0 } else { 1 },
                ),
                1 => (0, if cd[0] == 1 { 0 } else { 1 }),
                _ => (0, 0),
            };
            (Some(c.data()), si, sj)
        }
        None => (None, 0, 0),
    };

    let pool = pool.for_work(m.saturating_mul(n).saturating_mul(k));
    // Lane-blocked over output columns: `a`'s element is uniform per
    // reduction step (splat), `b` loads contiguously (or gathers with
    // column stride when transposed), and the bias broadcast reuses its
    // existing per-axis strides as gather strides.
    let simd = pool.use_simd();
    pool.run_chunks(out, n, |i, chunk| {
        let mut j0 = 0usize;
        if simd {
            if !trans_b {
                while j0 + 2 * LANES <= n {
                    gemm_cols2::<LANES>(
                        chunk, i, j0, k, trans_a, adat, bdat, a_cols, b_cols, alpha, beta, c_dat,
                        c_si, c_sj,
                    );
                    j0 += 2 * LANES;
                }
            }
            while j0 + LANES <= n {
                gemm_cols::<LANES>(
                    chunk, i, j0, k, trans_a, trans_b, adat, bdat, a_cols, b_cols, alpha, beta,
                    c_dat, c_si, c_sj,
                );
                j0 += LANES;
            }
            if j0 + 4 <= n {
                gemm_cols::<4>(
                    chunk, i, j0, k, trans_a, trans_b, adat, bdat, a_cols, b_cols, alpha, beta,
                    c_dat, c_si, c_sj,
                );
                j0 += 4;
            }
        }
        for (j, slot) in chunk.iter_mut().enumerate().skip(j0) {
            let mut acc = 0.0f32;
            for p in 0..k {
                let av = if trans_a {
                    adat[p * a_cols + i]
                } else {
                    adat[i * a_cols + p]
                };
                let bv = if trans_b {
                    bdat[j * b_cols + p]
                } else {
                    bdat[p * b_cols + j]
                };
                acc += av * bv;
            }
            let mut v = alpha * acc;
            if let Some(cd) = c_dat {
                v += beta * cd[i * c_si + j * c_sj];
            }
            *slot = v;
        }
    });
    Ok(())
}

/// `N` consecutive output columns of one `Gemm` row: lane `l` owns column
/// `j + l`, accumulating `a[i,:] · b[:,j+l]` then applying `alpha`/`beta`
/// and the broadcast bias with the scalar kernel's operation sequence.
#[allow(clippy::too_many_arguments)]
fn gemm_cols<const N: usize>(
    chunk: &mut [f32],
    i: usize,
    j: usize,
    k: usize,
    trans_a: bool,
    trans_b: bool,
    adat: &[f32],
    bdat: &[f32],
    a_cols: usize,
    b_cols: usize,
    alpha: f32,
    beta: f32,
    c_dat: Option<&[f32]>,
    c_si: usize,
    c_sj: usize,
) {
    let mut acc = F32Lanes::<N>::splat(0.0);
    for p in 0..k {
        let av = if trans_a {
            adat[p * a_cols + i]
        } else {
            adat[i * a_cols + p]
        };
        let bv = if trans_b {
            F32Lanes::<N>::gather(bdat, j * b_cols + p, b_cols)
        } else {
            F32Lanes::<N>::load(&bdat[p * b_cols + j..])
        };
        acc = acc + F32Lanes::<N>::splat(av) * bv;
    }
    let mut v = F32Lanes::<N>::splat(alpha) * acc;
    if let Some(cd) = c_dat {
        let cv = F32Lanes::<N>::gather(cd, i * c_si + j * c_sj, c_sj);
        v = v + F32Lanes::<N>::splat(beta) * cv;
    }
    v.store(&mut chunk[j..]);
}

/// Register-blocked tile of `2 * N` consecutive `Gemm` output columns for
/// the contiguous-B case (`transB = 0`, or a prepacked panel): two
/// independent lane-bundle accumulators share each reduction step's `a`
/// splat. Per column, the accumulation and `alpha`/`beta`/bias sequence is
/// exactly [`gemm_cols`]'s, so the tile is bit-identical to two
/// single-bundle calls.
#[allow(clippy::too_many_arguments)]
fn gemm_cols2<const N: usize>(
    chunk: &mut [f32],
    i: usize,
    j: usize,
    k: usize,
    trans_a: bool,
    adat: &[f32],
    bdat: &[f32],
    a_cols: usize,
    b_cols: usize,
    alpha: f32,
    beta: f32,
    c_dat: Option<&[f32]>,
    c_si: usize,
    c_sj: usize,
) {
    let mut acc0 = F32Lanes::<N>::splat(0.0);
    let mut acc1 = F32Lanes::<N>::splat(0.0);
    for p in 0..k {
        let av = if trans_a {
            adat[p * a_cols + i]
        } else {
            adat[i * a_cols + p]
        };
        let avv = F32Lanes::<N>::splat(av);
        let row = p * b_cols + j;
        acc0 = acc0 + avv * F32Lanes::<N>::load(&bdat[row..]);
        acc1 = acc1 + avv * F32Lanes::<N>::load(&bdat[row + N..]);
    }
    let alpha_v = F32Lanes::<N>::splat(alpha);
    let mut v0 = alpha_v * acc0;
    let mut v1 = alpha_v * acc1;
    if let Some(cd) = c_dat {
        let beta_v = F32Lanes::<N>::splat(beta);
        let c_base = i * c_si + j * c_sj;
        v0 = v0 + beta_v * F32Lanes::<N>::gather(cd, c_base, c_sj);
        v1 = v1 + beta_v * F32Lanes::<N>::gather(cd, c_base + N * c_sj, c_sj);
    }
    v0.store(&mut chunk[j..]);
    v1.store(&mut chunk[j + N..]);
}

/// `MaxPool` / `AveragePool` with the reference kernel's window order and
/// padding-count semantics. Parallel over `(batch, channel)` output planes.
fn fast_pool(
    op: OpKind,
    attrs: &Attrs,
    inputs: &[&Tensor],
    out_shape: &Shape,
    out: &mut [f32],
    pool: WorkPool,
) -> Result<(), OpError> {
    arity(op, inputs, 1)?;
    let x = inputs[0];
    if x.shape().rank() < 3 {
        return Err(OpError::InvalidShape {
            op,
            reason: "expected (N, C, spatial...) input".into(),
        });
    }
    if out.is_empty() {
        return Ok(());
    }
    let spatial_rank = x.shape().rank() - 2;
    let kernel: Vec<usize> = attrs
        .ints_or("kernel_shape", &vec![1; spatial_rank])
        .iter()
        .map(|&k| k.max(1) as usize)
        .collect();
    let (strides, _, pads) = spatial_attrs(attrs, spatial_rank);
    let count_include_pad = attrs.int_or("count_include_pad", 0) != 0;
    let kernel_total: usize = kernel.iter().product();
    let is_max = op == OpKind::MaxPool;

    let xd = x.shape().dims().to_vec();
    let xs = x.shape().strides();
    let xdat = x.data();
    let channels = out_shape.dim(1);
    let out_sp: Vec<usize> = out_shape.dims()[2..].to_vec();
    let out_sp_count: usize = out_sp.iter().product();
    let pool = pool.for_work(out.len().saturating_mul(kernel_total));

    // Interior-column split on the innermost spatial axis, shared by the
    // 2-D fast path and the generic-rank odometer path: columns in
    // [x_lo, x_hi) have every innermost tap in bounds (pooling has no
    // dilation, so the furthest tap is ox*sw + kw - 1).
    let last = spatial_rank - 1;
    let ow = out_sp[last];
    let iw = xd[2 + last];
    let (sw, pw, kw) = (strides[last], pads[last], kernel[last]);
    let span = kw - 1;
    let x_hi = if iw + pw > span {
        ((iw + pw - span - 1) / sw + 1).min(ow)
    } else {
        0
    };
    let x_lo = pw.div_ceil(sw).min(x_hi);
    let simd = pool.use_simd();

    if spatial_rank == 2 {
        let (oh, _) = (out_sp[0], out_sp[1]);
        let (xs0, xs1) = (xs[0], xs[1]);
        let tile = Pool2d {
            xdat,
            ih: xd[2],
            iw,
            kh: kernel[0],
            kw,
            sh: strides[0],
            sw,
            ph: pads[0],
            pw,
            xs2: xs[2],
            is_max,
            count_include_pad,
            kernel_total,
        };
        pool.run_chunks(out, oh * ow, |plane, chunk| {
            let n = plane / channels;
            let c = plane % channels;
            let base = n * xs0 + c * xs1;
            for (oy, row) in chunk.chunks_mut(ow).enumerate() {
                if simd {
                    tile.scalar_cols(row, base, oy, 0, x_lo);
                    let mut ox = x_lo;
                    while ox + LANES <= x_hi {
                        tile.simd_cols::<LANES>(row, base, oy, ox);
                        ox += LANES;
                    }
                    if ox + 4 <= x_hi {
                        tile.simd_cols::<4>(row, base, oy, ox);
                        ox += 4;
                    }
                    tile.scalar_cols(row, base, oy, ox, ow);
                } else {
                    tile.scalar_cols(row, base, oy, 0, ow);
                }
            }
        });
        return Ok(());
    }

    // Generic spatial rank (1-D and 3-D pooling): outer-axis taps keep
    // per-tap bounds checks (uniform over a row), the innermost axis takes
    // the border/interior split above.
    let tile = PoolNd {
        xdat,
        xd_sp: &xd[2..],
        xs_sp: &xs[2..],
        kernel_sp: &kernel,
        outer_count: kernel[..last].iter().product(),
        strides: &strides,
        pads: &pads,
        is_max,
        count_include_pad,
        kernel_total,
    };
    let outer_sp = &out_sp[..last];
    pool.run_chunks(out, out_sp_count, |plane, chunk| {
        let n = plane / channels;
        let c = plane % channels;
        let base = n * xs[0] + c * xs[1];
        let mut outer_pos = vec![0usize; last];
        // One odometer scratch per plane, shared by every column kernel call
        // — no allocation inside the row loop.
        let mut k_pos = vec![0usize; spatial_rank];
        for row in chunk.chunks_mut(ow) {
            if simd {
                tile.scalar_cols(row, base, &outer_pos, &mut k_pos, 0, x_lo);
                let mut ox = x_lo;
                while ox + LANES <= x_hi {
                    tile.simd_cols::<LANES>(row, base, &outer_pos, &mut k_pos[..last], ox);
                    ox += LANES;
                }
                if ox + 4 <= x_hi {
                    tile.simd_cols::<4>(row, base, &outer_pos, &mut k_pos[..last], ox);
                    ox += 4;
                }
                tile.scalar_cols(row, base, &outer_pos, &mut k_pos, ox, ow);
            } else {
                tile.scalar_cols(row, base, &outer_pos, &mut k_pos, 0, ow);
            }
            advance(&mut outer_pos, outer_sp);
        }
    });
    Ok(())
}

/// Loop constants of one 2-D pooling launch, shared by the scalar and
/// lane-blocked column kernels so both visit the identical tap sequence.
struct Pool2d<'a> {
    xdat: &'a [f32],
    ih: usize,
    iw: usize,
    kh: usize,
    kw: usize,
    sh: usize,
    sw: usize,
    ph: usize,
    pw: usize,
    xs2: usize,
    is_max: bool,
    count_include_pad: bool,
    kernel_total: usize,
}

impl Pool2d<'_> {
    /// Columns `[ox0, ox1)` of output row `oy`, one element at a time with
    /// per-tap bounds checks — the reference kernel's window order, used for
    /// padded borders, lane remainders and the full-scalar mode.
    fn scalar_cols(&self, row: &mut [f32], base: usize, oy: usize, ox0: usize, ox1: usize) {
        for (ox, slot) in row[..ox1].iter_mut().enumerate().skip(ox0) {
            let mut acc = if self.is_max { f32::NEG_INFINITY } else { 0.0 };
            let mut count = 0usize;
            for ky in 0..self.kh {
                let y = oy * self.sh + ky;
                if y < self.ph || y - self.ph >= self.ih {
                    continue;
                }
                let x_row = base + (y - self.ph) * self.xs2;
                for kx in 0..self.kw {
                    let xx = ox * self.sw + kx;
                    if xx < self.pw || xx - self.pw >= self.iw {
                        continue;
                    }
                    let v = self.xdat[x_row + (xx - self.pw)];
                    if self.is_max {
                        acc = acc.max(v);
                    } else {
                        acc += v;
                    }
                    count += 1;
                }
            }
            *slot = pool_result(acc, count, self);
        }
    }

    /// `N` consecutive interior columns starting at `ox`: one output element
    /// per lane, every column tap in bounds by the caller's interior-range
    /// computation. Row taps outside the input are skipped for the whole
    /// bundle (the same taps the scalar loop skips); in-bounds taps apply
    /// the scalar operation per lane (`f32::max` / `+`, then one division
    /// for averages), so the two paths are bit-identical.
    fn simd_cols<const N: usize>(&self, row: &mut [f32], base: usize, oy: usize, ox: usize) {
        let mut acc = F32Lanes::<N>::splat(if self.is_max { f32::NEG_INFINITY } else { 0.0 });
        let mut valid_rows = 0usize;
        for ky in 0..self.kh {
            let y = oy * self.sh + ky;
            if y < self.ph || y - self.ph >= self.ih {
                continue;
            }
            valid_rows += 1;
            let x_row = base + (y - self.ph) * self.xs2;
            for kx in 0..self.kw {
                let x0 = x_row + ox * self.sw + kx - self.pw;
                let xv = if self.sw == 1 {
                    F32Lanes::<N>::load(&self.xdat[x0..])
                } else {
                    F32Lanes::<N>::gather(self.xdat, x0, self.sw)
                };
                acc = if self.is_max { acc.max(xv) } else { acc + xv };
            }
        }
        store_pool_lanes(acc, valid_rows * self.kw, self, row, ox);
    }
}

impl<'a> PoolKernel for Pool2d<'a> {
    fn is_max(&self) -> bool {
        self.is_max
    }
    fn count_include_pad(&self) -> bool {
        self.count_include_pad
    }
    fn kernel_total(&self) -> usize {
        self.kernel_total
    }
}

/// Loop constants of one generic-rank pooling launch (1-D / 3-D / higher),
/// mirroring [`ConvNd`]: the innermost spatial axis is the vectorized one.
struct PoolNd<'a> {
    xdat: &'a [f32],
    xd_sp: &'a [usize],
    xs_sp: &'a [usize],
    kernel_sp: &'a [usize],
    /// Product of the outer (non-innermost) kernel extents.
    outer_count: usize,
    strides: &'a [usize],
    pads: &'a [usize],
    is_max: bool,
    count_include_pad: bool,
    kernel_total: usize,
}

impl PoolNd<'_> {
    /// Columns `[ox0, ox1)` of the output row at `outer_pos`, one element at
    /// a time with per-tap bounds checks on every axis — the reference
    /// kernel's window order (kernel taps row-major).
    fn scalar_cols(
        &self,
        row: &mut [f32],
        base: usize,
        outer_pos: &[usize],
        k_pos: &mut [usize],
        ox0: usize,
        ox1: usize,
    ) {
        let rank = self.kernel_sp.len();
        let last = rank - 1;
        for (ox, slot) in row[..ox1].iter_mut().enumerate().skip(ox0) {
            let mut acc = if self.is_max { f32::NEG_INFINITY } else { 0.0 };
            let mut count = 0usize;
            k_pos.iter_mut().for_each(|p| *p = 0);
            for _ in 0..self.kernel_total {
                let mut off = base;
                let mut in_bounds = true;
                for d in 0..rank {
                    let out_coord = if d == last { ox } else { outer_pos[d] };
                    let pos = out_coord * self.strides[d] + k_pos[d];
                    if pos < self.pads[d] || pos - self.pads[d] >= self.xd_sp[d] {
                        in_bounds = false;
                        break;
                    }
                    off += (pos - self.pads[d]) * self.xs_sp[d];
                }
                if in_bounds {
                    let v = self.xdat[off];
                    if self.is_max {
                        acc = acc.max(v);
                    } else {
                        acc += v;
                    }
                    count += 1;
                }
                advance(k_pos, self.kernel_sp);
            }
            *slot = pool_result(acc, count, self);
        }
    }

    /// `N` consecutive interior columns starting at `ox`: one output element
    /// per lane. Outer-axis taps failing their bounds check are skipped for
    /// the whole bundle; every innermost tap of a surviving outer tap is in
    /// bounds by the caller's interior-range computation, and applies the
    /// scalar operation per lane in the odometer order.
    fn simd_cols<const N: usize>(
        &self,
        row: &mut [f32],
        base: usize,
        outer_pos: &[usize],
        k_outer: &mut [usize],
        ox: usize,
    ) {
        let rank = self.kernel_sp.len();
        let last = rank - 1;
        let (sw, pw) = (self.strides[last], self.pads[last]);
        let xs_last = self.xs_sp[last];
        let kw = self.kernel_sp[last];
        let lane_stride = sw * xs_last;
        k_outer.iter_mut().for_each(|p| *p = 0);
        let mut acc = F32Lanes::<N>::splat(if self.is_max { f32::NEG_INFINITY } else { 0.0 });
        let mut valid_outer = 0usize;
        for _ in 0..self.outer_count {
            let mut off = base;
            let mut in_bounds = true;
            for d in 0..last {
                let pos = outer_pos[d] * self.strides[d] + k_outer[d];
                if pos < self.pads[d] || pos - self.pads[d] >= self.xd_sp[d] {
                    in_bounds = false;
                    break;
                }
                off += (pos - self.pads[d]) * self.xs_sp[d];
            }
            if in_bounds {
                valid_outer += 1;
                for kx in 0..kw {
                    let x0 = off + (ox * sw + kx - pw) * xs_last;
                    let xv = if lane_stride == 1 {
                        F32Lanes::<N>::load(&self.xdat[x0..])
                    } else {
                        F32Lanes::<N>::gather(self.xdat, x0, lane_stride)
                    };
                    acc = if self.is_max { acc.max(xv) } else { acc + xv };
                }
            }
            advance(k_outer, &self.kernel_sp[..last]);
        }
        store_pool_lanes(acc, valid_outer * kw, self, row, ox);
    }
}

impl<'a> PoolKernel for PoolNd<'a> {
    fn is_max(&self) -> bool {
        self.is_max
    }
    fn count_include_pad(&self) -> bool {
        self.count_include_pad
    }
    fn kernel_total(&self) -> usize {
        self.kernel_total
    }
}

/// The pooling-mode constants [`pool_result`] and [`store_pool_lanes`] need,
/// shared by [`Pool2d`] and [`PoolNd`].
trait PoolKernel {
    fn is_max(&self) -> bool;
    fn count_include_pad(&self) -> bool;
    fn kernel_total(&self) -> usize;
}

/// Finishes one pooled element: the max as-is, or the average via the
/// reference kernel's padding-count semantics.
fn pool_result(acc: f32, count: usize, k: &impl PoolKernel) -> f32 {
    if k.is_max() {
        acc
    } else {
        let denom = if k.count_include_pad() {
            k.kernel_total()
        } else {
            count.max(1)
        };
        acc / denom as f32
    }
}

/// Finishes `N` pooled interior columns: `count` (in-bounds taps) is uniform
/// across the lanes, and the average divides per lane — one IEEE division,
/// exactly [`pool_result`]'s operation.
fn store_pool_lanes<const N: usize>(
    acc: F32Lanes<N>,
    count: usize,
    k: &impl PoolKernel,
    row: &mut [f32],
    ox: usize,
) {
    if k.is_max() {
        acc.store(&mut row[ox..]);
    } else {
        let denom = if k.count_include_pad() {
            k.kernel_total()
        } else {
            count.max(1)
        };
        let avg = acc / F32Lanes::<N>::splat(denom as f32);
        avg.store(&mut row[ox..]);
    }
}

/// `GlobalAveragePool` over contiguous per-channel spatial slices, parallel
/// over groups of `(batch, channel)` output elements. With SIMD enabled the
/// groups are lane-blocked: each lane owns one whole `(n, c)` output and
/// runs the scalar summation order over its own channel plane (gather loads
/// with the plane stride), so the lane path is bit-identical to the scalar
/// fold.
fn fast_global_average_pool(
    inputs: &[&Tensor],
    out_shape: &Shape,
    out: &mut [f32],
    pool: WorkPool,
) -> Result<(), OpError> {
    arity(OpKind::GlobalAveragePool, inputs, 1)?;
    let x = inputs[0];
    if x.shape().rank() < 3 {
        return Err(OpError::InvalidShape {
            op: OpKind::GlobalAveragePool,
            reason: "expected (N, C, spatial...) input".into(),
        });
    }
    if out.is_empty() {
        return Ok(());
    }
    let channels = out_shape.dim(1);
    debug_assert_eq!(out.len(), out_shape.dim(0) * channels);
    let spatial: usize = x.shape().dims()[2..].iter().product();
    let xdat = x.data();
    let pool = pool.for_work(xdat.len());
    let simd = pool.use_simd();
    let denom = spatial.max(1) as f32;
    pool.run_chunks(out, LANES, |group, chunk| {
        let mut o = 0usize;
        if simd && spatial > 0 {
            while o + LANES <= chunk.len() {
                gap_lanes::<LANES>(
                    xdat,
                    (group * LANES + o) * spatial,
                    spatial,
                    denom,
                    &mut chunk[o..],
                );
                o += LANES;
            }
            if o + 4 <= chunk.len() {
                gap_lanes::<4>(
                    xdat,
                    (group * LANES + o) * spatial,
                    spatial,
                    denom,
                    &mut chunk[o..],
                );
                o += 4;
            }
        }
        for (i, slot) in chunk.iter_mut().enumerate().skip(o) {
            let base = (group * LANES + i) * spatial;
            let sum: f32 = xdat[base..base + spatial].iter().sum();
            *slot = sum / denom;
        }
    });
    Ok(())
}

/// Sums `N` consecutive channel planes in lockstep, one plane per lane: step
/// `s` adds element `s` of every plane (`acc = acc + x`, the scalar fold's
/// exact order per lane), then divides once per lane.
fn gap_lanes<const N: usize>(
    xdat: &[f32],
    base: usize,
    spatial: usize,
    denom: f32,
    out: &mut [f32],
) {
    let mut acc = F32Lanes::<N>::splat(0.0);
    for s in 0..spatial {
        acc = acc + F32Lanes::<N>::gather(xdat, base + s, spatial);
    }
    let avg = acc / F32Lanes::<N>::splat(denom);
    avg.store(out);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{execute, infer_shapes};

    /// Shape-infers a `Conv` output for explicit packed-vs-unpacked runs.
    fn infer_conv_shape(attrs: &Attrs, x: &Tensor, w: &Tensor) -> Shape {
        infer_shapes(OpKind::Conv, attrs, &[x.shape().clone(), w.shape().clone()])
            .unwrap()
            .remove(0)
    }

    /// Runs `op` through both the fast and reference kernels and checks the
    /// outputs are bit-identical (same taps, same accumulation order). The
    /// fast kernel runs with its lane-blocked (SIMD) path enabled — the
    /// default — so every case here also pins SIMD == reference; the
    /// explicit scalar mode is checked against it bit for bit as well.
    fn assert_fast_matches_reference(op: OpKind, attrs: &Attrs, inputs: &[&Tensor]) {
        let shapes: Vec<Shape> = inputs.iter().map(|t| t.shape().clone()).collect();
        let out_shape = infer_shapes(op, attrs, &shapes).unwrap().remove(0);
        let mut fast = vec![0.0f32; out_shape.numel()];
        assert!(execute_fast_into(op, attrs, inputs, &out_shape, &mut fast).unwrap());
        let reference = execute(op, attrs, inputs).unwrap().remove(0);
        assert_eq!(
            fast.as_slice(),
            reference.data(),
            "{op} diverged from reference"
        );
        let mut scalar = vec![0.0f32; out_shape.numel()];
        assert!(execute_fast_into_threaded(
            op,
            attrs,
            inputs,
            &out_shape,
            &mut scalar,
            WorkPool::serial().with_simd(false),
        )
        .unwrap());
        assert_eq!(scalar, fast, "{op} scalar mode diverged from the SIMD path");
        assert_threaded_matches_serial(op, attrs, inputs, &out_shape, &fast);
    }

    /// Runs `op` through the threaded kernel at several thread counts (with
    /// the work gate disabled, so the parallel partitioning really runs) and
    /// checks every output byte matches the serial result.
    fn assert_threaded_matches_serial(
        op: OpKind,
        attrs: &Attrs,
        inputs: &[&Tensor],
        out_shape: &Shape,
        serial: &[f32],
    ) {
        for threads in [2, 3, 8] {
            let pool = WorkPool::with_min_work(threads, 0);
            let mut threaded = vec![0.0f32; out_shape.numel()];
            assert!(
                execute_fast_into_threaded(op, attrs, inputs, out_shape, &mut threaded, pool)
                    .unwrap()
            );
            assert_eq!(
                threaded.as_slice(),
                serial,
                "{op} not bit-identical at {threads} threads"
            );
        }
    }

    #[test]
    fn registry_matches_dispatch() {
        for op in OpKind::all() {
            if !has_fast_kernel(op) {
                let mut out = [0.0f32];
                let x = Tensor::scalar(1.0);
                // Elementwise ops get Ok(false); the registry is authoritative.
                if op.is_elementwise_unary() {
                    assert!(!execute_fast_into(
                        op,
                        &Attrs::new(),
                        &[&x],
                        &Shape::scalar(),
                        &mut out
                    )
                    .unwrap());
                }
            }
        }
        assert!(has_fast_kernel(OpKind::Conv));
        assert!(!has_fast_kernel(OpKind::Softmax));
    }

    #[test]
    fn conv_2d_matches_reference_with_padding_strides_and_bias() {
        let x = Tensor::random(Shape::new(vec![2, 3, 9, 7]), 1);
        let w = Tensor::random(Shape::new(vec![4, 3, 3, 3]), 2);
        let b = Tensor::random(Shape::new(vec![4]), 3);
        for attrs in [
            Attrs::new().with_ints("pads", vec![1, 1, 1, 1]),
            Attrs::new().with_ints("strides", vec![2, 2]),
            Attrs::new()
                .with_ints("pads", vec![2, 0, 2, 0])
                .with_ints("dilations", vec![2, 1]),
        ] {
            assert_fast_matches_reference(OpKind::Conv, &attrs, &[&x, &w, &b]);
            assert_fast_matches_reference(OpKind::Conv, &attrs, &[&x, &w]);
        }
    }

    #[test]
    fn grouped_conv_matches_reference() {
        let x = Tensor::random(Shape::new(vec![1, 4, 6, 6]), 4);
        let w = Tensor::random(Shape::new(vec![4, 1, 3, 3]), 5);
        let attrs = Attrs::new()
            .with_int("group", 4)
            .with_ints("pads", vec![1, 1, 1, 1]);
        assert_fast_matches_reference(OpKind::Conv, &attrs, &[&x, &w]);
    }

    #[test]
    fn conv_3d_matches_reference() {
        let x = Tensor::random(Shape::new(vec![1, 2, 4, 5, 4]), 6);
        let w = Tensor::random(Shape::new(vec![3, 2, 3, 3, 3]), 7);
        let attrs = Attrs::new().with_ints("pads", vec![1, 1, 1, 1, 1, 1]);
        assert_fast_matches_reference(OpKind::Conv, &attrs, &[&x, &w]);
    }

    #[test]
    fn matmul_matches_reference_including_batch_broadcast() {
        let a = Tensor::random(Shape::new(vec![3, 4]), 8);
        let b = Tensor::random(Shape::new(vec![4, 5]), 9);
        assert_fast_matches_reference(OpKind::MatMul, &Attrs::new(), &[&a, &b]);
        let a = Tensor::random(Shape::new(vec![2, 3, 4]), 10);
        let b = Tensor::random(Shape::new(vec![4, 5]), 11);
        assert_fast_matches_reference(OpKind::MatMul, &Attrs::new(), &[&a, &b]);
        let a = Tensor::random(Shape::new(vec![2, 1, 3, 4]), 12);
        let b = Tensor::random(Shape::new(vec![2, 4, 2]), 13);
        assert_fast_matches_reference(OpKind::MatMul, &Attrs::new(), &[&a, &b]);
        // Leading all-ones batch prefix takes the per-row parallel path.
        let a = Tensor::random(Shape::new(vec![1, 6, 4]), 24);
        let b = Tensor::random(Shape::new(vec![1, 4, 3]), 25);
        assert_fast_matches_reference(OpKind::MatMul, &Attrs::new(), &[&a, &b]);
    }

    #[test]
    fn gemm_matches_reference_with_transpose_and_bias() {
        let a = Tensor::random(Shape::new(vec![3, 4]), 14);
        let bt = Tensor::random(Shape::new(vec![5, 4]), 15);
        let c = Tensor::random(Shape::new(vec![5]), 16);
        let attrs = Attrs::new()
            .with_int("transB", 1)
            .with_float("alpha", 0.5)
            .with_float("beta", 2.0);
        assert_fast_matches_reference(OpKind::Gemm, &attrs, &[&a, &bt, &c]);
        let at = Tensor::random(Shape::new(vec![4, 3]), 17);
        let b = Tensor::random(Shape::new(vec![4, 5]), 18);
        let c2 = Tensor::random(Shape::new(vec![3, 1]), 19);
        let attrs = Attrs::new().with_int("transA", 1);
        assert_fast_matches_reference(OpKind::Gemm, &attrs, &[&at, &b, &c2]);
    }

    #[test]
    fn prepacked_gemm_b_panel_is_bit_identical_to_the_strided_operand() {
        // transB = 1 with a prepacked (K, N) panel: contiguous loads replace
        // the gathers, but every element value and the accumulation order
        // are unchanged, so outputs must match bit for bit — for widths
        // crossing the 8/4/scalar lane splits, and in forced-scalar mode.
        for n in [3usize, 7, 8, 21] {
            let a = Tensor::random(Shape::new(vec![4, 6]), 110 + n as u64);
            let bt = Tensor::random(Shape::new(vec![n, 6]), 120 + n as u64);
            let c = Tensor::random(Shape::new(vec![n]), 130 + n as u64);
            let panel = bt.transpose(&[1, 0]).unwrap();
            let attrs = Attrs::new()
                .with_int("transB", 1)
                .with_float("alpha", 0.75)
                .with_float("beta", 1.5);
            let out_shape = Shape::new(vec![4, n]);
            let mut unpacked = vec![0.0f32; out_shape.numel()];
            assert!(execute_fast_into(
                OpKind::Gemm,
                &attrs,
                &[&a, &bt, &c],
                &out_shape,
                &mut unpacked
            )
            .unwrap());
            for pool in [
                WorkPool::serial(),
                WorkPool::serial().with_simd(false),
                WorkPool::with_min_work(3, 0),
            ] {
                let mut packed = vec![0.0f32; out_shape.numel()];
                assert!(execute_fast_into_packed(
                    OpKind::Gemm,
                    &attrs,
                    &[&a, &bt, &c],
                    Some(&panel),
                    &out_shape,
                    &mut packed,
                    pool,
                )
                .unwrap());
                assert_eq!(packed, unpacked, "packed Gemm diverged at n = {n}");
            }
            // An untransposed Gemm ignores the panel entirely.
            let b = Tensor::random(Shape::new(vec![6, n]), 140 + n as u64);
            let plain = Attrs::new();
            let mut without = vec![0.0f32; out_shape.numel()];
            assert!(
                execute_fast_into(OpKind::Gemm, &plain, &[&a, &b], &out_shape, &mut without)
                    .unwrap()
            );
            let mut with = vec![0.0f32; out_shape.numel()];
            assert!(execute_fast_into_packed(
                OpKind::Gemm,
                &plain,
                &[&a, &b],
                Some(&panel),
                &out_shape,
                &mut with,
                WorkPool::serial(),
            )
            .unwrap());
            assert_eq!(with, without);
        }
    }

    #[test]
    fn prepacked_conv_oc_panel_is_bit_identical_to_the_strided_weights() {
        // OC-blocked panels replace the strided weight walk with contiguous
        // lane loads, but every tap value and the per-element accumulation
        // order are the scalar kernel's, so outputs must match bit for bit —
        // across the border/interior split, strides, dilations, bias, every
        // pool configuration, and both the 2-D and odometer (3-D) paths.
        let x = Tensor::random(Shape::new(vec![2, 3, 7, 13]), 200);
        let w = Tensor::random(Shape::new(vec![CONV_PANEL_LANES * 2, 3, 3, 3]), 201);
        let b = Tensor::random(Shape::new(vec![CONV_PANEL_LANES * 2]), 202);
        let x3 = Tensor::random(Shape::new(vec![1, 2, 4, 5, 11]), 203);
        let w3 = Tensor::random(Shape::new(vec![CONV_PANEL_LANES, 2, 3, 3, 3]), 204);
        let cases: [(&Tensor, &Tensor, Option<&Tensor>, Attrs); 5] = [
            (
                &x,
                &w,
                Some(&b),
                Attrs::new().with_ints("pads", vec![1, 1, 1, 1]),
            ),
            (&x, &w, None, Attrs::new().with_ints("strides", vec![2, 2])),
            (
                &x,
                &w,
                Some(&b),
                Attrs::new()
                    .with_ints("pads", vec![2, 0, 2, 0])
                    .with_ints("dilations", vec![2, 1]),
            ),
            (&x, &w, None, Attrs::new()),
            (
                &x3,
                &w3,
                None,
                Attrs::new().with_ints("pads", vec![1, 1, 1, 1, 1, 1]),
            ),
        ];
        for (x, w, b, attrs) in cases {
            let panel = pack_conv_oc_panel(w).expect("lane-aligned OC packs");
            let inputs: Vec<&Tensor> = match b {
                Some(b) => vec![x, w, b],
                None => vec![x, w],
            };
            let out_shape = infer_conv_shape(&attrs, x, w);
            let mut unpacked = vec![0.0f32; out_shape.numel()];
            assert!(
                execute_fast_into(OpKind::Conv, &attrs, &inputs, &out_shape, &mut unpacked)
                    .unwrap()
            );
            for pool in [
                WorkPool::serial(),
                WorkPool::serial().with_simd(false),
                WorkPool::with_min_work(3, 0),
                WorkPool::with_min_work(7, 0),
            ] {
                let mut packed = vec![0.0f32; out_shape.numel()];
                assert!(execute_fast_into_packed(
                    OpKind::Conv,
                    &attrs,
                    &inputs,
                    Some(&panel),
                    &out_shape,
                    &mut packed,
                    pool,
                )
                .unwrap());
                assert_eq!(packed, unpacked, "packed conv diverged for {attrs:?}");
            }
        }
    }

    #[test]
    fn conv_oc_panel_packing_gates_on_lane_aligned_output_channels() {
        // Non-multiple-of-LANES OC has no panel form.
        let w = Tensor::random(Shape::new(vec![CONV_PANEL_LANES + 1, 2, 3, 3]), 210);
        assert!(pack_conv_oc_panel(&w).is_none());
        // Rank < 3 (not a conv weight) has no panel form either.
        let m = Tensor::random(Shape::new(vec![CONV_PANEL_LANES, 4]), 211);
        assert!(pack_conv_oc_panel(&m).is_none());
        // A grouped conv ignores a (mis-sized for its per-group walk) panel
        // and still matches the unpacked kernel.
        let x = Tensor::random(Shape::new(vec![1, CONV_PANEL_LANES, 6, 6]), 212);
        let w = Tensor::random(Shape::new(vec![CONV_PANEL_LANES, 1, 3, 3]), 213);
        let panel = pack_conv_oc_panel(&w).unwrap();
        let attrs = Attrs::new()
            .with_int("group", CONV_PANEL_LANES as i64)
            .with_ints("pads", vec![1, 1, 1, 1]);
        let out_shape = infer_conv_shape(&attrs, &x, &w);
        let mut unpacked = vec![0.0f32; out_shape.numel()];
        assert!(
            execute_fast_into(OpKind::Conv, &attrs, &[&x, &w], &out_shape, &mut unpacked).unwrap()
        );
        let mut packed = vec![0.0f32; out_shape.numel()];
        assert!(execute_fast_into_packed(
            OpKind::Conv,
            &attrs,
            &[&x, &w],
            Some(&panel),
            &out_shape,
            &mut packed,
            WorkPool::serial(),
        )
        .unwrap());
        assert_eq!(packed, unpacked);
    }

    #[test]
    fn pools_match_reference() {
        let x = Tensor::random(Shape::new(vec![1, 3, 7, 7]), 20);
        let attrs = Attrs::new()
            .with_ints("kernel_shape", vec![3, 3])
            .with_ints("strides", vec![2, 2])
            .with_ints("pads", vec![1, 1, 1, 1]);
        assert_fast_matches_reference(OpKind::MaxPool, &attrs, &[&x]);
        assert_fast_matches_reference(OpKind::AveragePool, &attrs, &[&x]);
        let include = attrs.clone().with_int("count_include_pad", 1);
        assert_fast_matches_reference(OpKind::AveragePool, &include, &[&x]);
        // 3-D pooling takes the generic odometer path.
        let x3 = Tensor::random(Shape::new(vec![1, 2, 4, 4, 4]), 21);
        let attrs3 = Attrs::new()
            .with_ints("kernel_shape", vec![2, 2, 2])
            .with_ints("strides", vec![2, 2, 2]);
        assert_fast_matches_reference(OpKind::MaxPool, &attrs3, &[&x3]);
        assert_fast_matches_reference(OpKind::GlobalAveragePool, &Attrs::new(), &[&x3]);
    }

    #[test]
    fn simd_interiors_cover_every_lane_width_and_stride_form() {
        // Output widths chosen to force each lane split: 8-lane bundles
        // (ow >= 8 + borders), the 4-lane remainder pass, and scalar tails;
        // strides > 1 take the gather load, stride 1 the contiguous load.
        let x = Tensor::random(Shape::new(vec![1, 2, 5, 23]), 50);
        let w = Tensor::random(Shape::new(vec![3, 2, 3, 3]), 51);
        for attrs in [
            Attrs::new(),
            Attrs::new().with_ints("pads", vec![1, 1, 1, 1]),
            Attrs::new()
                .with_ints("strides", vec![1, 2])
                .with_ints("pads", vec![1, 1, 1, 1]),
            Attrs::new().with_ints("dilations", vec![1, 2]),
            Attrs::new().with_ints("pads", vec![0, 9, 0, 9]),
        ] {
            assert_fast_matches_reference(OpKind::Conv, &attrs, &[&x, &w]);
        }
        // 1x1 kernel: the whole row is interior.
        let w1 = Tensor::random(Shape::new(vec![3, 2, 1, 1]), 52);
        assert_fast_matches_reference(OpKind::Conv, &Attrs::new(), &[&x, &w1]);
        // MatMul/Gemm columns across the 8/4/scalar splits (n = 4, 7, 8, 21).
        for n in [4usize, 7, 8, 21] {
            let a = Tensor::random(Shape::new(vec![3, 5]), 53 + n as u64);
            let b = Tensor::random(Shape::new(vec![5, n]), 60 + n as u64);
            assert_fast_matches_reference(OpKind::MatMul, &Attrs::new(), &[&a, &b]);
            let bt = Tensor::random(Shape::new(vec![n, 5]), 70 + n as u64);
            let c = Tensor::random(Shape::new(vec![n]), 80 + n as u64);
            let attrs = Attrs::new().with_int("transB", 1).with_float("beta", 0.5);
            assert_fast_matches_reference(OpKind::Gemm, &attrs, &[&a, &bt, &c]);
        }
    }

    #[test]
    fn generic_rank_conv_interiors_cover_every_lane_width_and_stride_form() {
        // 1-D conv: width 23 forces 8-lane bundles, the 4-lane pass and a
        // scalar tail; pads exercise the border columns, strides > 1 the
        // gather load.
        let x1 = Tensor::random(Shape::new(vec![2, 3, 23]), 90);
        let w1 = Tensor::random(Shape::new(vec![4, 3, 3]), 91);
        let b1 = Tensor::random(Shape::new(vec![4]), 92);
        for attrs in [
            Attrs::new(),
            Attrs::new().with_ints("pads", vec![1, 1]),
            Attrs::new()
                .with_ints("strides", vec![2])
                .with_ints("pads", vec![2, 2]),
            Attrs::new().with_ints("dilations", vec![2]),
            Attrs::new().with_ints("pads", vec![9, 9]),
        ] {
            assert_fast_matches_reference(OpKind::Conv, &attrs, &[&x1, &w1, &b1]);
        }
        // 3-D conv wide enough for full bundles, with out-of-bounds outer
        // (depth/height) taps so the uniform row-skip path really fires.
        let x3 = Tensor::random(Shape::new(vec![1, 2, 3, 4, 23]), 93);
        let w3 = Tensor::random(Shape::new(vec![3, 2, 2, 3, 3]), 94);
        for attrs in [
            Attrs::new().with_ints("pads", vec![1, 1, 1, 1, 1, 1]),
            Attrs::new()
                .with_ints("strides", vec![1, 1, 2])
                .with_ints("pads", vec![1, 2, 1, 1, 2, 1]),
            Attrs::new().with_ints("dilations", vec![2, 1, 2]),
        ] {
            assert_fast_matches_reference(OpKind::Conv, &attrs, &[&x3, &w3]);
        }
        // Grouped 3-D conv takes the generic path with group offsets.
        let xg = Tensor::random(Shape::new(vec![1, 4, 3, 3, 17]), 95);
        let wg = Tensor::random(Shape::new(vec![4, 2, 2, 2, 3]), 96);
        let attrs = Attrs::new()
            .with_int("group", 2)
            .with_ints("pads", vec![0, 1, 1, 0, 1, 1]);
        assert_fast_matches_reference(OpKind::Conv, &attrs, &[&xg, &wg]);
    }

    #[test]
    fn pool_interiors_cover_every_lane_width_and_stride_form() {
        // 2-D pools wide enough for 8-lane bundles + 4-lane pass + scalar
        // tail; strides > 1 exercise the gather load, pads the borders.
        let x = Tensor::random(Shape::new(vec![1, 3, 5, 23]), 97);
        for attrs in [
            Attrs::new().with_ints("kernel_shape", vec![3, 3]),
            Attrs::new()
                .with_ints("kernel_shape", vec![3, 3])
                .with_ints("pads", vec![1, 1, 1, 1]),
            Attrs::new()
                .with_ints("kernel_shape", vec![2, 4])
                .with_ints("strides", vec![1, 2])
                .with_ints("pads", vec![1, 2, 1, 2]),
        ] {
            assert_fast_matches_reference(OpKind::MaxPool, &attrs, &[&x]);
            assert_fast_matches_reference(OpKind::AveragePool, &attrs, &[&x]);
            let include = attrs.clone().with_int("count_include_pad", 1);
            assert_fast_matches_reference(OpKind::AveragePool, &include, &[&x]);
        }
        // 3-D pools through the generic odometer path, with padding so
        // outer-axis taps go out of bounds (the uniform row-skip).
        let x3 = Tensor::random(Shape::new(vec![1, 2, 3, 4, 21]), 98);
        for attrs in [
            Attrs::new().with_ints("kernel_shape", vec![2, 2, 3]),
            Attrs::new()
                .with_ints("kernel_shape", vec![2, 3, 3])
                .with_ints("pads", vec![1, 1, 1, 1, 1, 1]),
            Attrs::new()
                .with_ints("kernel_shape", vec![2, 2, 2])
                .with_ints("strides", vec![2, 1, 2])
                .with_ints("pads", vec![0, 1, 1, 0, 1, 1]),
        ] {
            assert_fast_matches_reference(OpKind::MaxPool, &attrs, &[&x3]);
            assert_fast_matches_reference(OpKind::AveragePool, &attrs, &[&x3]);
            let include = attrs.clone().with_int("count_include_pad", 1);
            assert_fast_matches_reference(OpKind::AveragePool, &include, &[&x3]);
        }
        // 1-D pooling also runs the generic path.
        let x1 = Tensor::random(Shape::new(vec![2, 3, 19]), 99);
        let attrs1 = Attrs::new()
            .with_ints("kernel_shape", vec![4])
            .with_ints("pads", vec![2, 2]);
        assert_fast_matches_reference(OpKind::MaxPool, &attrs1, &[&x1]);
        assert_fast_matches_reference(OpKind::AveragePool, &attrs1, &[&x1]);
    }

    #[test]
    fn global_average_pool_lane_splits_match_the_scalar_fold() {
        // 21 (n, c) outputs: two 8-lane bundles, one 4-lane pass, one scalar
        // remainder; each lane sums its own plane in the fold order.
        let x = Tensor::random(Shape::new(vec![3, 7, 4, 5]), 100);
        assert_fast_matches_reference(OpKind::GlobalAveragePool, &Attrs::new(), &[&x]);
        // Fewer outputs than a 4-lane bundle stay fully scalar.
        let small = Tensor::random(Shape::new(vec![1, 3, 2, 2]), 101);
        assert_fast_matches_reference(OpKind::GlobalAveragePool, &Attrs::new(), &[&small]);
        // 5-D input: the spatial product covers all trailing axes.
        let x5 = Tensor::random(Shape::new(vec![2, 5, 2, 3, 4]), 102);
        assert_fast_matches_reference(OpKind::GlobalAveragePool, &Attrs::new(), &[&x5]);
    }

    #[test]
    fn large_conv_passes_the_default_work_gate_bit_identically() {
        // Big enough that WorkPool::new's default gate keeps the region
        // parallel — the production configuration, not just min_work = 0.
        let x = Tensor::random(Shape::new(vec![1, 8, 20, 20]), 26);
        let w = Tensor::random(Shape::new(vec![16, 8, 3, 3]), 27);
        let attrs = Attrs::new().with_ints("pads", vec![1, 1, 1, 1]);
        let out_shape = infer_shapes(
            OpKind::Conv,
            &attrs,
            &[x.shape().clone(), w.shape().clone()],
        )
        .unwrap()
        .remove(0);
        let mut serial = vec![0.0f32; out_shape.numel()];
        execute_fast_into(OpKind::Conv, &attrs, &[&x, &w], &out_shape, &mut serial).unwrap();
        let mut threaded = vec![0.0f32; out_shape.numel()];
        execute_fast_into_threaded(
            OpKind::Conv,
            &attrs,
            &[&x, &w],
            &out_shape,
            &mut threaded,
            WorkPool::new(4),
        )
        .unwrap();
        assert_eq!(serial, threaded);
    }

    #[test]
    fn invalid_ranks_are_rejected_not_panicked() {
        let x = Tensor::random(Shape::new(vec![4]), 22);
        let w = Tensor::random(Shape::new(vec![4]), 23);
        let mut out = vec![0.0f32; 4];
        let shape = Shape::new(vec![4]);
        assert!(
            execute_fast_into(OpKind::Conv, &Attrs::new(), &[&x, &w], &shape, &mut out).is_err()
        );
        assert!(
            execute_fast_into(OpKind::MatMul, &Attrs::new(), &[&x, &w], &shape, &mut out).is_err()
        );
        assert!(
            execute_fast_into(OpKind::MaxPool, &Attrs::new(), &[&x], &shape, &mut out).is_err()
        );
    }
}
