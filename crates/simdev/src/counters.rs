//! Execution counters — the quantities the paper reads from the Snapdragon
//! Profiler (Figure 8's memory accesses / memory consumption and Figure 9a's
//! utilization).

use crate::CacheStats;

/// Counters accumulated while executing one inference.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Counters {
    /// Number of kernel launches (one per fused operator execution).
    pub kernel_launches: u64,
    /// Bytes read and written to "global" memory (tensor traffic that
    /// crosses kernel boundaries).
    pub memory_access_bytes: u64,
    /// Peak bytes of live tensors (weights + inputs + intermediates that
    /// must be materialized) — the paper's "memory consumption".
    pub peak_memory_bytes: u64,
    /// Total floating-point operations executed.
    pub flops: u64,
    /// Modeled execution latency in microseconds.
    pub latency_us: f64,
    /// Modeled processor utilization in percent (0–100).
    pub utilization_percent: f64,
    /// Cache / TLB statistics from the cache simulator.
    pub cache: CacheStats,
}

impl Counters {
    /// Achieved throughput in GFLOP/s.
    #[must_use]
    pub fn achieved_gflops(&self) -> f64 {
        if self.latency_us <= 0.0 {
            0.0
        } else {
            self.flops as f64 / self.latency_us / 1e3
        }
    }

    /// Memory accesses in mebibytes.
    #[must_use]
    pub fn memory_access_mib(&self) -> f64 {
        self.memory_access_bytes as f64 / (1024.0 * 1024.0)
    }

    /// Peak memory consumption in mebibytes.
    #[must_use]
    pub fn peak_memory_mib(&self) -> f64 {
        self.peak_memory_bytes as f64 / (1024.0 * 1024.0)
    }

    /// Accumulates another counter set into this one (used when summing over
    /// fused blocks).
    pub fn accumulate(&mut self, other: &Counters) {
        self.kernel_launches += other.kernel_launches;
        self.memory_access_bytes += other.memory_access_bytes;
        self.peak_memory_bytes = self.peak_memory_bytes.max(other.peak_memory_bytes);
        self.flops += other.flops;
        self.latency_us += other.latency_us;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_metrics() {
        let c = Counters {
            flops: 2_000_000,
            latency_us: 1000.0,
            memory_access_bytes: 2 * 1024 * 1024,
            peak_memory_bytes: 1024 * 1024,
            ..Counters::default()
        };
        assert!((c.achieved_gflops() - 2.0).abs() < 1e-9);
        assert!((c.memory_access_mib() - 2.0).abs() < 1e-9);
        assert!((c.peak_memory_mib() - 1.0).abs() < 1e-9);
        assert_eq!(Counters::default().achieved_gflops(), 0.0);
    }

    #[test]
    fn accumulate_sums_traffic_and_keeps_peak() {
        let mut a = Counters {
            kernel_launches: 2,
            memory_access_bytes: 100,
            peak_memory_bytes: 500,
            flops: 10,
            latency_us: 1.0,
            ..Counters::default()
        };
        let b = Counters {
            kernel_launches: 3,
            memory_access_bytes: 50,
            peak_memory_bytes: 300,
            flops: 20,
            latency_us: 2.0,
            ..Counters::default()
        };
        a.accumulate(&b);
        assert_eq!(a.kernel_launches, 5);
        assert_eq!(a.memory_access_bytes, 150);
        assert_eq!(a.peak_memory_bytes, 500);
        assert_eq!(a.flops, 30);
        assert!((a.latency_us - 3.0).abs() < 1e-9);
    }
}
