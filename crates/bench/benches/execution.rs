//! Criterion benchmarks of actual (reference-kernel) execution with and
//! without fusion, plus the counter-estimation path used by the table
//! harness. The wall-clock ratio between `fused` and `unfused` reflects the
//! interpreter's elimination of intermediate materialization; the modeled
//! latency ratios for the full models are produced by the `table6_latency`
//! binary instead.

use std::collections::HashMap;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dnnf_core::{Compiler, CompilerOptions};
use dnnf_graph::Graph;
use dnnf_models::{ModelKind, ModelScale};
use dnnf_runtime::Executor;
use dnnf_simdev::DeviceSpec;
use dnnf_tensor::Tensor;

fn input_map(graph: &Graph) -> HashMap<String, Tensor> {
    graph
        .inputs()
        .iter()
        .map(|&id| {
            let v = graph.value(id);
            (v.name.clone(), Tensor::random(v.shape.clone(), 7))
        })
        .collect()
}

fn bench_execution(c: &mut Criterion) {
    let mut group = c.benchmark_group("execution");
    group.sample_size(10);
    let device = DeviceSpec::snapdragon_865_cpu();
    for kind in [ModelKind::Vgg16, ModelKind::TinyBert] {
        let graph = kind.build(ModelScale::tiny()).expect("model builds");
        let inputs = input_map(&graph);
        let executor = Executor::new(device.clone()).without_cache_simulation();
        let mut compiler = Compiler::new(CompilerOptions::default());
        let compiled = compiler.compile(&graph).expect("compiles");

        group.bench_with_input(BenchmarkId::new("unfused", kind.name()), &graph, |b, g| {
            b.iter(|| executor.run_unfused(g, &inputs).expect("runs"));
        });
        group.bench_function(BenchmarkId::new("fused", kind.name()), |b| {
            b.iter(|| executor.run_compiled(&compiled, &inputs).expect("runs"));
        });
        group.bench_function(BenchmarkId::new("estimate", kind.name()), |b| {
            b.iter(|| executor.estimate_plan(compiled.ecg.graph(), &compiled.plan));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_execution);
criterion_main!(benches);
