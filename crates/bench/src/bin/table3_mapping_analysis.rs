//! Table 3: the pairwise mapping type analysis — for every ordered pair of
//! mapping types, the fused mapping type and the green/yellow/red verdict.
//!
//! Run with `cargo run -p dnnf-bench --bin table3_mapping_analysis`.

use dnnf_bench::format_table;
use dnnf_core::{analyze_pair, fusable_cell_count, FusionVerdict};
use dnnf_ops::MappingType;

fn main() {
    let headers: Vec<&str> = std::iter::once("First \\ Second")
        .chain(MappingType::all().iter().map(|m| m.name()))
        .collect();
    let mut rows = Vec::new();
    for &first in MappingType::all() {
        let mut row = vec![first.to_string()];
        for &second in MappingType::all() {
            let decision = analyze_pair(first, second);
            let colour = match decision.verdict {
                FusionVerdict::Direct => "green",
                FusionVerdict::Profile => "yellow",
                FusionVerdict::Break => "RED",
            };
            row.push(format!("{} ({colour})", decision.fused_type));
        }
        rows.push(row);
    }
    println!("Table 3 — mapping type analysis (fused type and profitability verdict)\n");
    println!("{}", format_table(&headers, &rows));
    println!(
        "green/yellow cells: {} (one code-generation rule each, as in the paper); red cells: {}",
        fusable_cell_count(),
        MappingType::all().len() * MappingType::all().len() - fusable_cell_count()
    );
}
