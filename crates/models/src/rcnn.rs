//! R-CNN family models: Faster R-CNN and Mask R-CNN.
//!
//! These are the models no existing mobile framework in the paper could run
//! at all (Table 5 shows "-" for every competitor): thousands of layers, the
//! overwhelming majority memory-intensive proposal/box-manipulation
//! operators. The builders below reproduce that structure: a ResNet-style
//! backbone + FPN, a region proposal network per pyramid level, and a large
//! number of small element-wise box-decoding blocks.

use dnnf_graph::{Graph, GraphError, ValueId};
use dnnf_ops::{Attrs, OpKind};
use dnnf_tensor::Shape;

use crate::common::{conv_bn_act, ModelScale};

/// A ResNet bottleneck block (1x1 reduce, 3x3, 1x1 expand + residual).
fn bottleneck(
    g: &mut Graph,
    input: ValueId,
    in_ch: usize,
    mid_ch: usize,
    stride: usize,
    name: &str,
) -> Result<(ValueId, usize), GraphError> {
    let out_ch = mid_ch * 4;
    let c1 = conv_bn_act(
        g,
        input,
        in_ch,
        mid_ch,
        1,
        1,
        1,
        Some(OpKind::Relu),
        &format!("{name}.c1"),
    )?;
    let c2 = conv_bn_act(
        g,
        c1,
        mid_ch,
        mid_ch,
        3,
        stride,
        1,
        Some(OpKind::Relu),
        &format!("{name}.c2"),
    )?;
    let c3 = conv_bn_act(g, c2, mid_ch, out_ch, 1, 1, 1, None, &format!("{name}.c3"))?;
    let shortcut = if stride != 1 || in_ch != out_ch {
        conv_bn_act(
            g,
            input,
            in_ch,
            out_ch,
            1,
            stride,
            1,
            None,
            &format!("{name}.down"),
        )?
    } else {
        input
    };
    let sum = g.add_op(
        OpKind::Add,
        Attrs::new(),
        &[c3, shortcut],
        format!("{name}.add"),
    )?[0];
    let relu = g.add_op(OpKind::Relu, Attrs::new(), &[sum], format!("{name}.relu"))?[0];
    Ok((relu, out_ch))
}

/// A box-decoding block: the memory-intensive post-processing the detection
/// head applies per anchor group (split, scale/shift, exp, clip, concat).
fn box_decode_block(
    g: &mut Graph,
    deltas: ValueId,
    channels: usize,
    name: &str,
) -> Result<ValueId, GraphError> {
    let parts = g.add_op(
        OpKind::Split,
        Attrs::new().with_int("axis", 1).with_int("num_outputs", 2),
        &[deltas],
        format!("{name}.split"),
    )?;
    let scale = g.add_weight(
        format!("{name}.scale"),
        Shape::new(vec![1, channels / 2, 1, 1]),
    );
    let shift = g.add_weight(
        format!("{name}.shift"),
        Shape::new(vec![1, channels / 2, 1, 1]),
    );
    let centers = g.add_op(
        OpKind::Mul,
        Attrs::new(),
        &[parts[0], scale],
        format!("{name}.mul"),
    )?[0];
    let centers = g.add_op(
        OpKind::Add,
        Attrs::new(),
        &[centers, shift],
        format!("{name}.add"),
    )?[0];
    let sizes = g.add_op(
        OpKind::Exp,
        Attrs::new(),
        &[parts[1]],
        format!("{name}.exp"),
    )?[0];
    let sizes = g.add_op(
        OpKind::Clip,
        Attrs::new()
            .with_float("min", 0.0)
            .with_float("max", 1000.0),
        &[sizes],
        format!("{name}.clip"),
    )?[0];
    Ok(g.add_op(
        OpKind::Concat,
        Attrs::new().with_int("axis", 1),
        &[centers, sizes],
        format!("{name}.concat"),
    )?[0])
}

/// Shared Faster/Mask R-CNN trunk: backbone, FPN, RPN heads and box decoding.
fn rcnn_trunk(
    g: &mut Graph,
    scale: ModelScale,
    decode_blocks: usize,
) -> Result<Vec<(ValueId, usize)>, GraphError> {
    let s = scale.spatial.max(32);
    let input = g.add_input("image", Shape::new(vec![1, 3, s, s]));
    // ResNet-style backbone (stages scaled by depth_div).
    let mut x = conv_bn_act(
        g,
        input,
        3,
        scale.ch(64),
        7,
        2,
        1,
        Some(OpKind::Relu),
        "stem",
    )?;
    let mut ch = scale.ch(64);
    let stage_plan: [(usize, usize); 4] = [(64, 3), (128, 4), (256, 6), (512, 3)];
    let mut pyramid = Vec::new();
    for (si, &(width, blocks)) in stage_plan.iter().enumerate() {
        let mid = scale.ch(width);
        let blocks = scale.repeats(blocks);
        for b in 0..blocks {
            let stride = if b == 0 && si > 0 { 2 } else { 1 };
            let (y, c) = bottleneck(g, x, ch, mid, stride, &format!("res{si}.{b}"))?;
            x = y;
            ch = c;
        }
        pyramid.push((x, ch));
    }
    // FPN: lateral 1x1 convs + top-down upsample + add + output conv.
    let fpn_ch = scale.ch(256);
    let mut fpn_levels: Vec<(ValueId, usize)> = Vec::new();
    let mut top: Option<ValueId> = None;
    for (li, &(feat, feat_ch)) in pyramid.iter().enumerate().rev() {
        let lateral = conv_bn_act(
            g,
            feat,
            feat_ch,
            fpn_ch,
            1,
            1,
            1,
            None,
            &format!("fpn{li}.lateral"),
        )?;
        let merged = match top {
            Some(t) => {
                let up = g.add_op(
                    OpKind::Upsample,
                    Attrs::new().with_floats("scales", vec![1.0, 1.0, 2.0, 2.0]),
                    &[t],
                    format!("fpn{li}.up"),
                )?[0];
                g.add_op(
                    OpKind::Add,
                    Attrs::new(),
                    &[lateral, up],
                    format!("fpn{li}.add"),
                )?[0]
            }
            None => lateral,
        };
        top = Some(merged);
        let out = conv_bn_act(
            g,
            merged,
            fpn_ch,
            fpn_ch,
            3,
            1,
            1,
            Some(OpKind::Relu),
            &format!("fpn{li}.out"),
        )?;
        fpn_levels.push((out, fpn_ch));
    }
    // RPN per level: objectness + box deltas, then many decode blocks.
    let per_level_decodes = (decode_blocks / fpn_levels.len()).max(1);
    for (li, &(level, level_ch)) in fpn_levels.iter().enumerate() {
        let rpn = conv_bn_act(
            g,
            level,
            level_ch,
            level_ch,
            3,
            1,
            1,
            Some(OpKind::Relu),
            &format!("rpn{li}.conv"),
        )?;
        let obj_w = g.add_weight(
            format!("rpn{li}.obj.w"),
            Shape::new(vec![3, level_ch, 1, 1]),
        );
        let obj = g.add_op(
            OpKind::Conv,
            Attrs::new(),
            &[rpn, obj_w],
            format!("rpn{li}.obj"),
        )?[0];
        let obj = g.add_op(
            OpKind::Sigmoid,
            Attrs::new(),
            &[obj],
            format!("rpn{li}.obj.sigmoid"),
        )?[0];
        g.mark_output(obj);
        let box_w = g.add_weight(
            format!("rpn{li}.box.w"),
            Shape::new(vec![12, level_ch, 1, 1]),
        );
        let mut deltas = g.add_op(
            OpKind::Conv,
            Attrs::new(),
            &[rpn, box_w],
            format!("rpn{li}.box"),
        )?[0];
        for d in 0..per_level_decodes {
            deltas = box_decode_block(g, deltas, 12, &format!("decode{li}.{d}"))?;
        }
        g.mark_output(deltas);
    }
    Ok(fpn_levels)
}

/// Faster R-CNN (image segmentation / detection). Paper Table 5: 3,640
/// layers, 177 of them compute-intensive.
pub fn faster_rcnn(scale: ModelScale) -> Result<Graph, GraphError> {
    let mut g = Graph::new("Faster R-CNN");
    let decode_blocks = 320 / scale.depth_div.max(1);
    rcnn_trunk(&mut g, scale, decode_blocks)?;
    Ok(g)
}

/// Mask R-CNN: Faster R-CNN plus a mask head per pyramid level. Paper
/// Table 5: 3,999 layers.
pub fn mask_rcnn(scale: ModelScale) -> Result<Graph, GraphError> {
    let mut g = Graph::new("Mask R-CNN");
    let decode_blocks = 320 / scale.depth_div.max(1);
    let fpn_levels = rcnn_trunk(&mut g, scale, decode_blocks)?;
    // Mask head: four convs + a transposed conv + per-pixel sigmoid per level.
    for (li, &(level, level_ch)) in fpn_levels.iter().enumerate() {
        let mut x = level;
        for c in 0..4 {
            x = conv_bn_act(
                &mut g,
                x,
                level_ch,
                level_ch,
                3,
                1,
                1,
                Some(OpKind::Relu),
                &format!("mask{li}.c{c}"),
            )?;
        }
        let up_w = g.add_weight(
            format!("mask{li}.up.w"),
            Shape::new(vec![level_ch, level_ch, 2, 2]),
        );
        let up = g.add_op(
            OpKind::ConvTranspose,
            Attrs::new().with_ints("strides", vec![2, 2]),
            &[x, up_w],
            format!("mask{li}.up"),
        )?[0];
        let logit_w = g.add_weight(
            format!("mask{li}.logit.w"),
            Shape::new(vec![2, level_ch, 1, 1]),
        );
        let logits = g.add_op(
            OpKind::Conv,
            Attrs::new(),
            &[up, logit_w],
            format!("mask{li}.logits"),
        )?[0];
        let mask = g.add_op(
            OpKind::Sigmoid,
            Attrs::new(),
            &[logits],
            format!("mask{li}.sigmoid"),
        )?[0];
        g.mark_output(mask);
    }
    Ok(g)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn faster_rcnn_is_dominated_by_memory_intensive_layers() {
        let g = faster_rcnn(ModelScale::tiny()).unwrap();
        assert!(g.validate().is_ok());
        let stats = g.stats();
        assert!(stats.total_layers > 300, "{}", stats.total_layers);
        assert!(stats.memory_intensive_layers > 3 * stats.compute_intensive_layers);
    }

    #[test]
    fn mask_rcnn_extends_faster_rcnn() {
        let faster = faster_rcnn(ModelScale::tiny()).unwrap();
        let mask = mask_rcnn(ModelScale::tiny()).unwrap();
        assert!(mask.node_count() > faster.node_count());
        assert!(mask.nodes().any(|n| n.op == OpKind::ConvTranspose));
        assert!(mask.outputs().len() > faster.outputs().len());
    }

    #[test]
    fn box_decoding_uses_the_expected_operator_mix() {
        let g = faster_rcnn(ModelScale::tiny()).unwrap();
        for op in [
            OpKind::Split,
            OpKind::Exp,
            OpKind::Clip,
            OpKind::Concat,
            OpKind::Sigmoid,
        ] {
            assert!(g.nodes().any(|n| n.op == op), "missing {op}");
        }
    }
}
