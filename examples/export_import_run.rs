//! Export → import → run: save a model as a `.dnnfg` file (the text format
//! of `docs/graph-format.md`), load it back through the strict importer,
//! and show that the file round-trip is invisible — same structural
//! fingerprint, and bit-identical outputs through the full compile
//! pipeline. Finishes by serving the file directly as a tenant of the
//! multi-tenant server.
//!
//! Run with `cargo run --release --example export_import_run`.

use std::collections::HashMap;
use std::error::Error;

use dnnfusion::core::{Compiler, CompilerOptions};
use dnnfusion::graph::Graph;
use dnnfusion::models::{ModelKind, ModelScale};
use dnnfusion::runtime::{ExecOptions, Executor};
use dnnfusion::serve::{ServeConfig, Server};
use dnnfusion::simdev::DeviceSpec;
use dnnfusion::tensor::Tensor;

fn run(graph: &Graph, inputs: &HashMap<String, Tensor>) -> Result<Vec<Tensor>, Box<dyn Error>> {
    let compiled = Compiler::new(CompilerOptions::default()).compile(graph)?;
    Ok(Executor::new(DeviceSpec::snapdragon_865_cpu())
        .without_cache_simulation()
        .with_options(ExecOptions::serial())
        .run_compiled(&compiled, inputs)?
        .outputs)
}

fn main() -> Result<(), Box<dyn Error>> {
    // 1. Build a model and export it. `save` writes the canonical text
    //    form: versioned header, the whole graph (topology, attributes,
    //    weights), and a trailing checksum.
    let graph = ModelKind::MobileNetV1Ssd.build(ModelScale::tiny())?;
    let dir = std::env::temp_dir().join("dnnf-export-example");
    std::fs::create_dir_all(&dir)?;
    let path = dir.join("mobilenet-ssd.dnnfg");
    dnnfusion::io::save(&graph, &path)?;
    let bytes = std::fs::metadata(&path)?.len();
    println!(
        "exported `{}` ({} ops) to {} ({bytes} bytes)",
        graph.name(),
        graph.node_count(),
        path.display()
    );

    // 2. Load it back. The importer is strict: any damage to the file —
    //    a flipped bit, a truncated line, an unknown operator — rejects the
    //    whole file with a typed error instead of guessing.
    let imported = dnnfusion::io::load(&path)?;
    assert_eq!(imported.fingerprint(), graph.fingerprint());
    println!(
        "imported: fingerprint {} matches the in-memory builder",
        imported.fingerprint()
    );

    // 3. Run both through the full pipeline on the same inputs. The file
    //    round-trip must not perturb a single bit of any output.
    let inputs: HashMap<String, Tensor> = graph
        .inputs()
        .iter()
        .map(|&id| {
            let v = graph.value(id);
            (v.name.clone(), Tensor::random(v.shape.clone(), 42))
        })
        .collect();
    let original = run(&graph, &inputs)?;
    let roundtrip = run(&imported, &inputs)?;
    for (a, b) in original.iter().zip(&roundtrip) {
        assert_eq!(a.data(), b.data(), "outputs must be bit-identical");
    }
    println!(
        "executed both: {} outputs bit-identical (tolerance 0)",
        original.len()
    );

    // 4. A `.dnnfg` file can also be served directly: the server imports,
    //    compiles (batch-polymorphic, through the global PlanCache) and
    //    hosts it in one call.
    let server = Server::builder(ServeConfig::default())
        .model_from_dnnfg("ssd", &path)?
        .start();
    let response = server.submit("ssd", inputs)?.wait()?;
    println!(
        "served from file: {} outputs, first shape {:?}",
        response.outputs.len(),
        response.outputs[0].shape().dims()
    );
    server.shutdown();
    std::fs::remove_file(&path).ok();
    Ok(())
}
