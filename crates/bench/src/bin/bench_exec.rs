//! Wall-clock regression harness for the fused-block execution engine.
//!
//! Times the configurations below per model and writes the medians to
//! `BENCH_exec.json`, so future PRs can track the execution-engine
//! trajectory the same way the `table*`/`fig*` binaries track the paper's
//! counter metrics:
//!
//! * `unfused_ms` — the unfused baseline: every operator through its
//!   reference kernel via the interpreter (`Executor::run_unfused`). This
//!   is the paper's `OurB` role and the ISSUE's "unfused" side.
//! * `engine_unfused_ms` — the *same singleton plan* through the compiled
//!   engine, isolating how much of the win comes from the optimized anchor
//!   kernels alone.
//! * `fused_ms` — the DNNFusion plan through the compiled engine at
//!   `num_threads = 1`; the gap to `engine_unfused_ms` is the fusion-only
//!   benefit (fewer launches, no intermediate materialization).
//! * `scalar_fused_ms` — the fused single-thread configuration with
//!   `force_scalar` set, i.e. every lane-blocked (SIMD) microkernel and
//!   tape path disabled; `simd_speedup` is `scalar_fused_ms / fused_ms`.
//!   Results are bit-identical between the two (the determinism suite
//!   asserts it) — only the wall-clock moves.
//! * `thread_scaling` — the fused configuration again at each thread count
//!   in [`THREAD_COUNTS`] (production work gate, so tiny kernels stay
//!   serial); `parallel_speedup` is `fused_ms` over the highest thread
//!   count's median. Thread counts beyond the host's cores cannot speed
//!   anything up, so the scaling floors below only gate on capable hosts.
//!
//! Regression gates are **data-driven** per model (see [`FLOORS`]) rather
//! than a single VGG-16 assert, so TinyBERT/C3D regressions fail the run
//! too. The SIMD floor ([`SIMD_FLOOR_VGG`]) arms only where the compile
//! target's vector width covers the 8-lane bundles
//! (`detected_simd_width() >= 8`, e.g. AVX2 builds); narrower targets
//! still run the lane-blocked code but measure mostly its restructuring,
//! not vector issue width. See `docs/benchmarks.md`.
//!
//! Run with `cargo run --release -p dnnf-bench --bin bench_exec`.

use std::collections::HashMap;
use std::time::Instant;

use dnnf_core::{compile_plan, Compiler, CompilerOptions, Ecg, FusionPlan};
use dnnf_graph::Graph;
use dnnf_models::{ModelKind, ModelScale};
use dnnf_ops::simd::detected_simd_width;
use dnnf_runtime::{ExecOptions, Executor, WorkPool};
use dnnf_simdev::DeviceSpec;
use dnnf_tensor::Tensor;

/// Runs per configuration; the median is reported.
const RUNS: usize = 7;

/// Thread counts the fused configuration is re-timed at.
const THREAD_COUNTS: [usize; 3] = [1, 2, 4];

/// Per-model wall-clock floors: (model, fused-vs-unfused speedup at one
/// thread, parallel speedup at the top thread count). The parallel floor is
/// asserted only when the host has at least [`THREAD_COUNTS`]'s maximum
/// cores — oversubscribing a smaller host measures spawn overhead, not
/// kernel scaling. TinyBERT's floor is deliberately below 1: its tiny-scale
/// kernels sit under the parallelism work gate and must simply not regress.
const FLOORS: [(&str, f64, f64); 3] =
    [("VGG-16", 8.0, 2.5), ("TinyBERT", 4.0, 0.75), ("C3D", 3.0, 1.5)];

/// Minimum single-thread `simd_speedup` on VGG-16, asserted only when the
/// compile target's vector width covers the 8-lane bundles (AVX-class).
const SIMD_FLOOR_VGG: f64 = 1.3;

fn inputs_for(graph: &Graph) -> HashMap<String, Tensor> {
    graph
        .inputs()
        .iter()
        .map(|&id| {
            let v = graph.value(id);
            let tensor = if v.name.contains("token") {
                Tensor::zeros(v.shape.clone())
            } else {
                Tensor::random(v.shape.clone(), 7)
            };
            (v.name.clone(), tensor)
        })
        .collect()
}

fn median_ms(mut samples: Vec<f64>) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    samples[samples.len() / 2]
}

fn time_ms(mut run: impl FnMut()) -> Vec<f64> {
    (0..RUNS)
        .map(|_| {
            let t = Instant::now();
            run();
            t.elapsed().as_secs_f64() * 1e3
        })
        .collect()
}

struct Row {
    model: &'static str,
    unfused_ms: f64,
    engine_unfused_ms: f64,
    fused_ms: f64,
    /// The fused single-thread configuration with `force_scalar` set.
    scalar_fused_ms: f64,
    /// Median fused wall-clock per thread count, in [`THREAD_COUNTS`] order.
    thread_scaling: Vec<(usize, f64)>,
    kernel_launches_unfused: u64,
    kernel_launches_fused: u64,
}

impl Row {
    /// Fused engine (one thread) vs the unfused reference interpreter.
    fn speedup(&self) -> f64 {
        self.unfused_ms / self.fused_ms
    }

    /// Fused plan vs the singleton plan on the same engine: fusion only.
    fn fusion_only_speedup(&self) -> f64 {
        self.engine_unfused_ms / self.fused_ms
    }

    /// One-thread fused vs the highest measured thread count.
    fn parallel_speedup(&self) -> f64 {
        let top = self.thread_scaling.last().expect("at least one thread count").1;
        self.fused_ms / top
    }

    /// Lane-blocked kernels vs the forced-scalar engine, both single-thread.
    fn simd_speedup(&self) -> f64 {
        self.scalar_fused_ms / self.fused_ms
    }
}

fn main() {
    let device = DeviceSpec::snapdragon_865_cpu();
    let executor =
        Executor::new(device).without_cache_simulation().with_options(ExecOptions::serial());
    // The same detection the executor's default options use.
    let host_parallelism = WorkPool::host().threads();
    let mut rows = Vec::new();

    for kind in [ModelKind::Vgg16, ModelKind::TinyBert, ModelKind::C3d] {
        let graph = kind.build(ModelScale::tiny()).expect("model builds");
        let inputs = inputs_for(&graph);
        let mut compiler = Compiler::new(CompilerOptions::default());
        let compiled = compiler.compile(&graph).expect("model compiles");

        let ecg = Ecg::new(graph.clone());
        let singletons = FusionPlan::singletons(&ecg);
        // Pre-compile the singleton engine so this configuration, like the
        // fused one, times dispatch only — not per-run plan compilation.
        let singleton_engine = compile_plan(&graph, &singletons);

        let unfused_report = executor.run_unfused(&graph, &inputs).expect("unfused runs");
        let fused_report = executor.run_compiled(&compiled, &inputs).expect("fused runs");

        let unfused_ms = median_ms(time_ms(|| {
            executor.run_unfused(&graph, &inputs).expect("unfused runs");
        }));
        let engine_unfused_ms = median_ms(time_ms(|| {
            executor
                .run_plan_with_engine(&graph, &singletons, &singleton_engine, &inputs)
                .expect("engine singleton runs");
        }));
        let thread_scaling: Vec<(usize, f64)> = THREAD_COUNTS
            .iter()
            .map(|&threads| {
                let threaded = executor.clone().with_options(ExecOptions::with_threads(threads));
                let ms = median_ms(time_ms(|| {
                    threaded.run_compiled(&compiled, &inputs).expect("fused runs");
                }));
                (threads, ms)
            })
            .collect();
        let fused_ms = thread_scaling[0].1;
        let scalar = executor.clone().with_options(ExecOptions::serial().scalar_kernels());
        let scalar_fused_ms = median_ms(time_ms(|| {
            scalar.run_compiled(&compiled, &inputs).expect("scalar fused runs");
        }));

        rows.push(Row {
            model: kind.name(),
            unfused_ms,
            engine_unfused_ms,
            fused_ms,
            scalar_fused_ms,
            thread_scaling,
            kernel_launches_unfused: unfused_report.counters.kernel_launches,
            kernel_launches_fused: fused_report.counters.kernel_launches,
        });
    }

    let simd_width = detected_simd_width();
    println!(
        "Execution wall-clock, median of {RUNS} runs (host parallelism: {host_parallelism}, \
         target SIMD width: {simd_width})"
    );
    println!(
        "{:<16} {:>12} {:>15} {:>10} {:>11} {:>9} {:>12} {:>7} {:>10} {:>10} {:>9}",
        "model",
        "unfused ms",
        "engine-unf ms",
        "fused ms",
        "scalar ms",
        "speedup",
        "fusion-only",
        "simd",
        "launches_u",
        "launches_f",
        "parallel"
    );
    for row in &rows {
        println!(
            "{:<16} {:>12.3} {:>15.3} {:>10.3} {:>11.3} {:>8.1}x {:>11.2}x {:>6.2}x {:>10} {:>10} {:>8.2}x",
            row.model,
            row.unfused_ms,
            row.engine_unfused_ms,
            row.fused_ms,
            row.scalar_fused_ms,
            row.speedup(),
            row.fusion_only_speedup(),
            row.simd_speedup(),
            row.kernel_launches_unfused,
            row.kernel_launches_fused,
            row.parallel_speedup()
        );
        let scaling: Vec<String> =
            row.thread_scaling.iter().map(|(t, ms)| format!("{t}t: {ms:.3} ms")).collect();
        println!("{:<16} {}", "", scaling.join("  "));
    }

    let mut json = String::from("{\n");
    json.push_str("  \"schema\": \"dnnf-bench-exec/v3\",\n");
    json.push_str(&format!("  \"runs_per_config\": {RUNS},\n"));
    json.push_str("  \"scale\": \"tiny\",\n");
    json.push_str(&format!("  \"host_parallelism\": {host_parallelism},\n"));
    json.push_str(&format!("  \"target_simd_width\": {simd_width},\n"));
    json.push_str("  \"models\": [\n");
    for (i, row) in rows.iter().enumerate() {
        let scaling: Vec<String> = row
            .thread_scaling
            .iter()
            .map(|(t, ms)| format!("{{\"threads\": {t}, \"fused_ms\": {ms:.3}}}"))
            .collect();
        json.push_str(&format!(
            "    {{\"model\": \"{}\", \"unfused_ms\": {:.3}, \"engine_unfused_ms\": {:.3}, \
             \"fused_ms\": {:.3}, \"scalar_fused_ms\": {:.3}, \"speedup\": {:.2}, \
             \"fusion_only_speedup\": {:.2}, \"simd_speedup\": {:.2}, \
             \"parallel_speedup\": {:.2}, \"thread_scaling\": [{}], \
             \"kernel_launches_unfused\": {}, \"kernel_launches_fused\": {}}}{}\n",
            row.model,
            row.unfused_ms,
            row.engine_unfused_ms,
            row.fused_ms,
            row.scalar_fused_ms,
            row.speedup(),
            row.fusion_only_speedup(),
            row.simd_speedup(),
            row.parallel_speedup(),
            scaling.join(", "),
            row.kernel_launches_unfused,
            row.kernel_launches_fused,
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write("BENCH_exec.json", &json).expect("write BENCH_exec.json");
    println!("\nwrote BENCH_exec.json");

    // Data-driven regression gates: every model has a floor, not just VGG-16.
    for (model, min_speedup, min_parallel) in FLOORS {
        let row = rows.iter().find(|r| r.model == model).expect("floor references a timed model");
        assert!(
            row.speedup() >= min_speedup,
            "regression: fused {model} execution is only {:.2}x faster than unfused \
             (floor {min_speedup}x)",
            row.speedup()
        );
        let top_threads = row.thread_scaling.last().expect("thread counts timed").0;
        if host_parallelism >= top_threads {
            assert!(
                row.parallel_speedup() >= min_parallel,
                "regression: {model} at {top_threads} threads is only {:.2}x the single-thread \
                 fused time (floor {min_parallel}x)",
                row.parallel_speedup()
            );
        } else {
            println!(
                "note: skipping {model} parallel floor ({min_parallel}x at {top_threads} \
                 threads) — host has only {host_parallelism} core(s)"
            );
        }
    }

    // The SIMD floor arms only where the 8-lane bundles map onto real
    // vector registers; on narrower targets (e.g. baseline SSE2 builds) the
    // measurement reflects loop restructuring more than vector issue width.
    let vgg = rows.iter().find(|r| r.model == "VGG-16").expect("VGG-16 is timed");
    if simd_width >= 8 {
        assert!(
            vgg.simd_speedup() >= SIMD_FLOOR_VGG,
            "regression: VGG-16 SIMD path is only {:.2}x the forced-scalar engine \
             (floor {SIMD_FLOOR_VGG}x at target SIMD width {simd_width})",
            vgg.simd_speedup()
        );
    } else {
        println!(
            "note: skipping VGG-16 SIMD floor ({SIMD_FLOOR_VGG}x) — target SIMD width is \
             {simd_width}; build with RUSTFLAGS=\"-C target-cpu=native\" on an AVX2 host to arm it"
        );
    }
}
