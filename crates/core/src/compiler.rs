//! The end-to-end DNNFusion compiler driver.
//!
//! [`Compiler::compile`] runs the full pipeline — graph rewriting, fusion
//! plan generation, intra-/inter-block optimization and fused code
//! generation — and records per-phase statistics and timings. Every phase can
//! be switched off individually, which is how the evaluation harness
//! reproduces the optimization-breakdown experiment (Figure 7) and the
//! compilation-time experiment (Figure 9b).

use std::any::{Any, TypeId};
use std::collections::BTreeMap;
use std::fmt;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use dnnf_graph::Graph;
use dnnf_profiledb::ProfileDatabase;

use crate::codegen::{generate_all, FusedOp};
use crate::exec::{compile_plan, CompiledPlan};
use crate::rewrite::{AppliedRewrite, RewriteEngine};
use crate::{
    eliminate_data_movement, select_block_layouts, AnalyticLatencyModel, CoreError,
    DataMovementElimination, Ecg, FusionPlan, FusionPlanner, LatencyModel, LayoutDecision,
    PlanOptions,
};

/// Which optimizations the compiler runs (the knobs of Figure 7's ablation).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CompilerOptions {
    /// Mathematical-property-based graph rewriting (GR in Figure 7).
    pub enable_graph_rewriting: bool,
    /// Fusion plan generation + fused code generation (Fuse in Figure 7).
    pub enable_fusion: bool,
    /// Intra-block data-movement elimination (part of "Other").
    pub enable_intra_block_opt: bool,
    /// Inter-block data-format selection (part of "Other").
    pub enable_inter_block_opt: bool,
    /// Fusion-plan exploration knobs.
    pub plan: PlanOptions,
}

impl Default for CompilerOptions {
    fn default() -> Self {
        CompilerOptions {
            enable_graph_rewriting: true,
            enable_fusion: true,
            enable_intra_block_opt: true,
            enable_inter_block_opt: true,
            plan: PlanOptions::default(),
        }
    }
}

impl CompilerOptions {
    /// Everything off: the no-fusion baseline (`OurB`).
    #[must_use]
    pub fn baseline() -> Self {
        CompilerOptions {
            enable_graph_rewriting: false,
            enable_fusion: false,
            enable_intra_block_opt: false,
            enable_inter_block_opt: false,
            plan: PlanOptions::default(),
        }
    }

    /// Graph rewriting only (the `GR` bar of Figure 7).
    #[must_use]
    pub fn rewriting_only() -> Self {
        CompilerOptions {
            enable_fusion: false,
            enable_intra_block_opt: false,
            enable_inter_block_opt: false,
            ..Default::default()
        }
    }

    /// Rewriting + fusion, without the additional intra/inter-block
    /// optimizations (the `GR + Fuse` bar of Figure 7).
    #[must_use]
    pub fn rewriting_and_fusion() -> Self {
        CompilerOptions {
            enable_intra_block_opt: false,
            enable_inter_block_opt: false,
            ..Default::default()
        }
    }

    /// Fusion and the other optimizations but *no* graph rewriting (the
    /// `Fuse + Other` bar of Figure 7).
    #[must_use]
    pub fn without_rewriting() -> Self {
        CompilerOptions {
            enable_graph_rewriting: false,
            ..Default::default()
        }
    }

    /// A stable, human-readable encoding of every option that can change
    /// what [`Compiler::compile`] produces. Two option sets with equal cache
    /// keys compile any given graph to the same plan; the runtime's
    /// compilation cache uses this string as the options component of its
    /// `(fingerprint, shape signature, options)` key.
    #[must_use]
    pub fn cache_key(&self) -> String {
        format!(
            "gr={};fuse={};intra={};inter={};max_block_ops={};max_external_inputs={};use_profile={}",
            u8::from(self.enable_graph_rewriting),
            u8::from(self.enable_fusion),
            u8::from(self.enable_intra_block_opt),
            u8::from(self.enable_inter_block_opt),
            self.plan.max_block_ops,
            self.plan.max_external_inputs,
            u8::from(self.plan.use_profile),
        )
    }
}

/// Statistics collected during one compilation.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CompilationStats {
    /// Model name (from the input graph).
    pub model_name: String,
    /// Operator count before any optimization.
    pub original_layers: usize,
    /// Operator count after graph rewriting.
    pub layers_after_rewriting: usize,
    /// Fused layer count (= number of fusion blocks).
    pub fused_layers: usize,
    /// FLOPs before rewriting.
    pub original_flops: u64,
    /// FLOPs after rewriting.
    pub optimized_flops: u64,
    /// Intermediate-result bytes before fusion.
    pub original_irs_bytes: u64,
    /// Intermediate-result bytes that still cross fused-kernel boundaries.
    pub fused_irs_bytes: u64,
    /// Rewrites applied, in order.
    pub rewrites: Vec<AppliedRewrite>,
    /// Data-movement operators eliminated inside blocks.
    pub data_movement_ops_eliminated: usize,
    /// Bytes saved by the eliminated data-movement operators.
    pub data_movement_bytes_saved: u64,
    /// Layout conversions avoided by block-level format selection.
    pub layout_conversions_avoided: usize,
    /// How often each mapping-type-pair code-generation rule fired.
    pub codegen_rules_used: BTreeMap<String, usize>,
    /// Common sub-trees reused across all data-flow trees.
    pub common_subtrees_reused: usize,
    /// Profiling-database hits during plan exploration.
    pub profile_db_hits: u64,
    /// Profiling-database misses (i.e. measurements performed).
    pub profile_db_misses: u64,
    /// Entries in the profiling database after compilation.
    pub profile_db_entries: usize,
    /// Wall-clock time spent in graph rewriting.
    pub time_rewriting: Duration,
    /// Wall-clock time spent in fusion plan generation (including profiling).
    pub time_planning: Duration,
    /// Wall-clock time spent generating fused operators.
    pub time_codegen: Duration,
}

impl CompilationStats {
    /// Fusion rate = original layer count / fused layer count (Table 5).
    #[must_use]
    pub fn fusion_rate(&self) -> f64 {
        if self.fused_layers == 0 {
            1.0
        } else {
            self.original_layers as f64 / self.fused_layers as f64
        }
    }

    /// Intermediate-result reduction factor.
    #[must_use]
    pub fn irs_reduction(&self) -> f64 {
        if self.fused_irs_bytes == 0 {
            1.0
        } else {
            self.original_irs_bytes as f64 / self.fused_irs_bytes as f64
        }
    }

    /// Total compilation time across phases.
    #[must_use]
    pub fn total_time(&self) -> Duration {
        self.time_rewriting + self.time_planning + self.time_codegen
    }
}

/// An opaque, lazily initialized cache where the runtime attaches per-model
/// derived state (the materialized weight store of `dnnf-runtime`, the plan
/// cache's bookkeeping, …).
///
/// The slot lives on [`CompiledModel`] so the cached state has exactly the
/// model's lifetime: it is shared by clones of the model and by concurrent
/// executors (`Arc`), and dropped with the last model handle. It is
/// deliberately untyped (`dyn Any`) so `dnnf-core` stays independent of the
/// crates layered above it, and it holds one entry **per consumer type**
/// (keyed by [`TypeId`]), so independent consumers — say a weight store and
/// a serving layer's own state — can share one model without trampling each
/// other. Equality ignores the slot — caches are derived state, not part of
/// a model's semantic identity.
#[derive(Clone, Default)]
pub struct RuntimeCacheSlot(Arc<Mutex<BTreeMap<TypeId, Arc<dyn Any + Send + Sync>>>>);

impl RuntimeCacheSlot {
    /// Returns the cached value of type `T`, initializing it on first call.
    /// Every later call for the same `T` — from any thread, on any clone of
    /// the owning model — returns the same `Arc` (pointer-identical);
    /// concurrent first calls race safely and exactly one `init` result is
    /// kept. Calls for a *different* type get their own independent entry.
    pub fn get_or_init<T: Send + Sync + 'static>(&self, init: impl FnOnce() -> T) -> Arc<T> {
        let key = TypeId::of::<T>();
        if let Some(existing) = self.0.lock().expect("cache slot lock").get(&key) {
            return Arc::clone(existing)
                .downcast::<T>()
                .expect("cache entry is keyed by its own TypeId");
        }
        // Build the candidate outside the lock: a slow init must not block
        // other consumer types, and an init that itself touches the slot
        // must not deadlock. If another thread won the race meanwhile, its
        // value is kept and ours is dropped (same "exactly one init result
        // survives" semantics the old OnceLock gave a single type).
        let candidate: Arc<dyn Any + Send + Sync> = Arc::new(init());
        let mut map = self.0.lock().expect("cache slot lock");
        let entry = map.entry(key).or_insert(candidate);
        Arc::clone(entry)
            .downcast::<T>()
            .expect("cache entry is keyed by its own TypeId")
    }

    /// Whether any consumer has initialized an entry.
    #[must_use]
    pub fn is_initialized(&self) -> bool {
        !self.0.lock().expect("cache slot lock").is_empty()
    }
}

impl fmt::Debug for RuntimeCacheSlot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let entries = self.0.lock().expect("cache slot lock").len();
        f.debug_tuple("RuntimeCacheSlot").field(&entries).finish()
    }
}

impl PartialEq for RuntimeCacheSlot {
    /// Always equal: the cache is derived, re-creatable state.
    fn eq(&self, _: &Self) -> bool {
        true
    }
}

/// The result of compiling a model with DNNFusion.
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledModel {
    /// The (possibly rewritten) extended computational graph.
    pub ecg: Ecg,
    /// The fusion plan.
    pub plan: FusionPlan,
    /// Fused operators in execution order.
    pub fused_ops: Vec<FusedOp>,
    /// The plan compiled to executable kernels (see [`crate::exec`]), built
    /// once here so repeated inference never re-compiles on the hot path.
    pub engine: CompiledPlan,
    /// Layout decisions per block.
    pub layouts: LayoutDecision,
    /// Intra-block data-movement elimination results.
    pub elimination: DataMovementElimination,
    /// Compilation statistics.
    pub stats: CompilationStats,
    runtime_cache: RuntimeCacheSlot,
}

impl CompiledModel {
    /// The optimized computational graph the plan refers to.
    #[must_use]
    pub fn graph(&self) -> &Graph {
        self.ecg.graph()
    }

    /// The runtime's per-model cache slot (see [`RuntimeCacheSlot`]). Clones
    /// of this model share the slot, so whatever the runtime caches here —
    /// the materialized weight store — is built once per compiled model, not
    /// once per run or per executor.
    #[must_use]
    pub fn runtime_cache(&self) -> &RuntimeCacheSlot {
        &self.runtime_cache
    }
}

/// The DNNFusion compiler.
#[derive(Debug)]
pub struct Compiler<L: LatencyModel = AnalyticLatencyModel> {
    options: CompilerOptions,
    latency: L,
    database: ProfileDatabase,
}

impl Compiler<AnalyticLatencyModel> {
    /// Creates a compiler with the default analytic latency model.
    #[must_use]
    pub fn new(options: CompilerOptions) -> Self {
        Compiler {
            options,
            latency: AnalyticLatencyModel::default(),
            database: ProfileDatabase::new(),
        }
    }
}

impl<L: LatencyModel> Compiler<L> {
    /// Creates a compiler with a custom latency model (e.g. a simulated
    /// device from `dnnf-simdev`).
    #[must_use]
    pub fn with_latency_model(options: CompilerOptions, latency: L) -> Self {
        Compiler {
            options,
            latency,
            database: ProfileDatabase::new(),
        }
    }

    /// Pre-loads a profiling database (the "with database" configuration of
    /// Figure 9b).
    #[must_use]
    pub fn with_database(mut self, database: ProfileDatabase) -> Self {
        self.database = database;
        self
    }

    /// The compiler's options.
    #[must_use]
    pub fn options(&self) -> &CompilerOptions {
        &self.options
    }

    /// The profiling database accumulated so far.
    #[must_use]
    pub fn database(&self) -> &ProfileDatabase {
        &self.database
    }

    /// Consumes the compiler and returns its profiling database (to persist
    /// it for future compilations).
    #[must_use]
    pub fn into_database(self) -> ProfileDatabase {
        self.database
    }

    /// Compiles a model graph.
    ///
    /// # Errors
    ///
    /// Returns an error if the input graph is invalid or a pipeline
    /// invariant is violated.
    pub fn compile(&mut self, graph: &Graph) -> Result<CompiledModel, CoreError> {
        self.compile_inner(graph, None)
    }

    /// Compiles a model graph replaying a previously discovered fusion plan:
    /// phase 2's exploration is replaced by [`FusionPlan::from_blocks`] over
    /// `groups` (node-index groups on the *rewritten* graph). This is the
    /// warm-start path of the runtime's on-disk plan cache — rewriting is
    /// deterministic, so node indices recorded after one compilation's
    /// rewrite phase address the same operators after the next.
    ///
    /// Correctness never depends on the groups being *good*:
    /// `from_blocks` validates that they form a partition and that the
    /// fused block graph stays acyclic, and rejects them otherwise — a
    /// stale or corrupted plan produces an error (and a cold recompile at
    /// the caller), never a wrong program.
    ///
    /// # Errors
    ///
    /// Returns an error if the graph is invalid or the groups do not form a
    /// valid partition of the rewritten graph's nodes.
    pub fn compile_with_blocks(
        &mut self,
        graph: &Graph,
        groups: Vec<Vec<dnnf_graph::NodeId>>,
    ) -> Result<CompiledModel, CoreError> {
        self.compile_inner(graph, Some(groups))
    }

    fn compile_inner(
        &mut self,
        graph: &Graph,
        replay: Option<Vec<Vec<dnnf_graph::NodeId>>>,
    ) -> Result<CompiledModel, CoreError> {
        graph.validate()?;
        let original_stats = graph.stats();
        let mut stats = CompilationStats {
            model_name: graph.name().to_string(),
            original_layers: original_stats.total_layers,
            original_flops: original_stats.flops,
            original_irs_bytes: original_stats.intermediate_bytes,
            ..CompilationStats::default()
        };

        // Phase 1: mathematical-property-based graph rewriting.
        let t = Instant::now();
        let rewritten = if self.options.enable_graph_rewriting {
            let engine = RewriteEngine::with_default_rules();
            let (g, applied) = engine.run(graph);
            stats.rewrites = applied;
            g
        } else {
            graph.clone()
        };
        stats.time_rewriting = t.elapsed();
        let rewritten_stats = rewritten.stats();
        stats.layers_after_rewriting = rewritten_stats.total_layers;
        stats.optimized_flops = rewritten_stats.flops;

        // Phase 2: fusion plan generation on the ECG.
        let t = Instant::now();
        let mut ecg = Ecg::new(rewritten);
        self.database.reset_counters();
        let plan = match replay {
            Some(groups) => FusionPlan::from_blocks(&ecg, groups)?,
            None if self.options.enable_fusion => {
                let planner = FusionPlanner::new(&ecg, &self.latency, self.options.plan);
                planner.plan(&mut self.database)
            }
            None => FusionPlan::singletons(&ecg),
        };
        plan.validate(ecg.graph())?;
        stats.time_planning = t.elapsed();
        stats.fused_layers = plan.fused_layer_count();
        stats.fused_irs_bytes = plan.fused_irs_bytes(ecg.graph());
        stats.profile_db_hits = self.database.hits();
        stats.profile_db_misses = self.database.misses();
        stats.profile_db_entries = self.database.len();
        for value in plan.removable_values(ecg.graph()) {
            ecg.set_ir_removable(value, true);
        }

        // Phase 3: intra-block and inter-block optimizations.
        let elimination = if self.options.enable_intra_block_opt {
            eliminate_data_movement(&ecg, &plan)
        } else {
            DataMovementElimination::default()
        };
        stats.data_movement_ops_eliminated = elimination.count();
        stats.data_movement_bytes_saved = elimination.bytes_saved;
        let layouts = if self.options.enable_inter_block_opt {
            select_block_layouts(&ecg, &plan)
        } else {
            LayoutDecision {
                block_layouts: vec![Default::default(); plan.fused_layer_count()],
                conversions_with_fusion: 0,
                conversions_without_fusion: 0,
            }
        };
        stats.layout_conversions_avoided = layouts.conversions_avoided();

        // Phase 4: fused code generation — the descriptive artefacts (DFTs,
        // pseudo-C) and the executable kernels the runtime dispatches.
        let t = Instant::now();
        let fused_ops = generate_all(&ecg, &plan);
        let engine = compile_plan(ecg.graph(), &plan);
        stats.time_codegen = t.elapsed();
        for op in &fused_ops {
            stats.common_subtrees_reused += op.common_subtrees_reused;
            for &(a, b) in &op.rules_used {
                *stats
                    .codegen_rules_used
                    .entry(format!("{a} + {b}"))
                    .or_insert(0) += 1;
            }
        }

        Ok(CompiledModel {
            ecg,
            plan,
            fused_ops,
            engine,
            layouts,
            elimination,
            stats,
            runtime_cache: RuntimeCacheSlot::default(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnnf_ops::{Attrs, OpKind};
    use dnnf_tensor::Shape;

    /// A small CNN stage with a rewritable tail:
    /// Conv -> BN-ish (Mul/Add with broadcast) -> Relu -> MaxPool, plus the
    /// distributive pattern A⊙C + A⊙B on the side.
    fn sample_model() -> Graph {
        let mut g = Graph::new("sample");
        let x = g.add_input("x", Shape::new(vec![1, 8, 16, 16]));
        let w = g.add_weight("conv.w", Shape::new(vec![8, 8, 3, 3]));
        let conv = g
            .add_op(
                OpKind::Conv,
                Attrs::new().with_ints("pads", vec![1, 1, 1, 1]),
                &[x, w],
                "conv",
            )
            .unwrap()[0];
        let scale = g.add_weight("bn.scale", Shape::new(vec![1, 8, 1, 1]));
        let shift = g.add_weight("bn.shift", Shape::new(vec![1, 8, 1, 1]));
        let mul = g
            .add_op(OpKind::Mul, Attrs::new(), &[conv, scale], "bn.mul")
            .unwrap()[0];
        let add = g
            .add_op(OpKind::Add, Attrs::new(), &[mul, shift], "bn.add")
            .unwrap()[0];
        let relu = g
            .add_op(OpKind::Relu, Attrs::new(), &[add], "relu")
            .unwrap()[0];
        let pool = g
            .add_op(
                OpKind::MaxPool,
                Attrs::new()
                    .with_ints("kernel_shape", vec![2, 2])
                    .with_ints("strides", vec![2, 2]),
                &[relu],
                "pool",
            )
            .unwrap()[0];
        // Distributive tail: pool⊙C + pool⊙B.
        let cb = g.add_weight("C", Shape::new(vec![1, 8, 8, 8]));
        let bb = g.add_weight("B", Shape::new(vec![1, 8, 8, 8]));
        let pc = g
            .add_op(OpKind::Mul, Attrs::new(), &[pool, cb], "pc")
            .unwrap()[0];
        let pb = g
            .add_op(OpKind::Mul, Attrs::new(), &[pool, bb], "pb")
            .unwrap()[0];
        let out = g
            .add_op(OpKind::Add, Attrs::new(), &[pc, pb], "out")
            .unwrap()[0];
        g.mark_output(out);
        g
    }

    #[test]
    fn full_pipeline_reduces_layers_flops_and_irs() {
        let g = sample_model();
        let mut compiler = Compiler::new(CompilerOptions::default());
        let compiled = compiler.compile(&g).unwrap();
        let s = &compiled.stats;
        assert_eq!(s.original_layers, 8);
        assert!(
            s.layers_after_rewriting < s.original_layers,
            "rewriting should drop layers"
        );
        assert!(
            s.fused_layers < s.layers_after_rewriting,
            "fusion should drop layers further"
        );
        assert!(s.optimized_flops <= s.original_flops);
        assert!(s.fused_irs_bytes < s.original_irs_bytes);
        assert!(s.fusion_rate() > 1.0);
        assert!(s.irs_reduction() > 1.0);
        assert_eq!(compiled.fused_ops.len(), s.fused_layers);
    }

    #[test]
    fn baseline_options_do_nothing() {
        let g = sample_model();
        let mut compiler = Compiler::new(CompilerOptions::baseline());
        let compiled = compiler.compile(&g).unwrap();
        assert_eq!(compiled.stats.fused_layers, g.node_count());
        assert_eq!(compiled.stats.layers_after_rewriting, g.node_count());
        assert!(compiled.stats.rewrites.is_empty());
        assert_eq!(compiled.stats.data_movement_ops_eliminated, 0);
    }

    #[test]
    fn rewriting_only_keeps_every_layer_unfused() {
        let g = sample_model();
        let mut compiler = Compiler::new(CompilerOptions::rewriting_only());
        let compiled = compiler.compile(&g).unwrap();
        assert!(!compiled.stats.rewrites.is_empty());
        assert_eq!(
            compiled.stats.fused_layers,
            compiled.stats.layers_after_rewriting
        );
    }

    #[test]
    fn rewriting_enables_more_fusion_like_the_paper_gpt2_example() {
        let g = sample_model();
        let with = Compiler::new(CompilerOptions::default())
            .compile(&g)
            .unwrap();
        let without = Compiler::new(CompilerOptions::without_rewriting())
            .compile(&g)
            .unwrap();
        assert!(
            with.stats.fused_layers <= without.stats.fused_layers,
            "graph rewriting must never increase the fused layer count"
        );
    }

    #[test]
    fn profile_database_is_reusable_across_compilations() {
        let g = sample_model();
        let mut compiler = Compiler::new(CompilerOptions::default());
        let first = compiler.compile(&g).unwrap();
        let db = compiler.into_database();
        let first_misses = first.stats.profile_db_misses;
        let mut compiler2 = Compiler::new(CompilerOptions::default()).with_database(db);
        let second = compiler2.compile(&g).unwrap();
        assert!(second.stats.profile_db_misses <= first_misses);
        assert!(second.stats.profile_db_hits >= first.stats.profile_db_hits);
    }

    #[test]
    fn codegen_rules_and_timings_are_recorded() {
        let g = sample_model();
        let mut compiler = Compiler::new(CompilerOptions::default());
        let compiled = compiler.compile(&g).unwrap();
        assert!(!compiled.stats.codegen_rules_used.is_empty());
        assert!(compiled.stats.total_time() >= compiled.stats.time_rewriting);
        // The fused operator names are concatenations, e.g. Conv_Mul_Add_...
        assert!(compiled.fused_ops.iter().any(|f| f.name.contains('_')));
    }

    #[test]
    fn cache_slot_supports_multiple_consumer_types() {
        // Regression: attaching a second cache type used to panic
        // ("runtime cache slot holds one type per model").
        struct WeightsLike(Vec<f32>);
        struct PlanCacheLike(&'static str);

        let slot = RuntimeCacheSlot::default();
        assert!(!slot.is_initialized());
        let w = slot.get_or_init(|| WeightsLike(vec![1.0, 2.0]));
        let p = slot.get_or_init(|| PlanCacheLike("state"));
        assert_eq!(w.0, vec![1.0, 2.0]);
        assert_eq!(p.0, "state");
        assert!(slot.is_initialized());
        // Each type is built once; later calls return the same Arc and
        // never run the init closure again.
        let w2 = slot.get_or_init::<WeightsLike>(|| unreachable!("already cached"));
        assert!(Arc::ptr_eq(&w, &w2));
        let p2 = slot.get_or_init::<PlanCacheLike>(|| unreachable!("already cached"));
        assert!(Arc::ptr_eq(&p, &p2));
        // Clones of the slot (as clones of a model would hold) share entries.
        let clone = slot.clone();
        let w3 = clone.get_or_init::<WeightsLike>(|| unreachable!("shared with clone"));
        assert!(Arc::ptr_eq(&w, &w3));
    }

    #[test]
    fn options_cache_key_is_stable_and_discriminating() {
        let a = CompilerOptions::default().cache_key();
        assert_eq!(a, CompilerOptions::default().cache_key());
        assert_ne!(a, CompilerOptions::baseline().cache_key());
        let mut tweaked = CompilerOptions::default();
        tweaked.plan.max_block_ops = 7;
        assert_ne!(a, tweaked.cache_key());
    }

    #[test]
    fn compile_with_blocks_replays_a_plan_exactly() {
        let g = sample_model();
        let mut compiler = Compiler::new(CompilerOptions::default());
        let cold = compiler.compile(&g).unwrap();
        let groups: Vec<Vec<dnnf_graph::NodeId>> =
            cold.plan.blocks().iter().map(|b| b.nodes.clone()).collect();
        let replayed = compiler.compile_with_blocks(&g, groups).unwrap();
        // Same partition, same mapping types (the replay does not record the
        // exploration's seed nodes — they are provenance, not structure).
        for (r, c) in replayed.plan.blocks().iter().zip(cold.plan.blocks()) {
            assert_eq!(r.nodes, c.nodes);
            assert_eq!(r.mapping_type, c.mapping_type);
        }
        assert_eq!(replayed.fused_ops.len(), cold.fused_ops.len());
        assert_eq!(replayed.stats.fused_layers, cold.stats.fused_layers);
        // Garbage groups are rejected, not trusted.
        let bogus = vec![vec![dnnf_graph::NodeId::from_index(0); 2]];
        assert!(compiler.compile_with_blocks(&g, bogus).is_err());
    }

    #[test]
    fn compile_rejects_invalid_graphs() {
        let mut g = Graph::new("invalid");
        let x = g.add_input("x", Shape::new(vec![4]));
        g.add_op(OpKind::Relu, Attrs::new(), &[x], "r").unwrap();
        // No outputs marked.
        let mut compiler = Compiler::new(CompilerOptions::default());
        assert!(compiler.compile(&g).is_err());
    }
}
