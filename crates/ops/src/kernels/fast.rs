//! Optimized kernels for the compute-heavy anchor operators, used by the
//! fused-block execution engine.
//!
//! The reference kernels in this crate define the semantics; they index every
//! element through bounds-checked multi-dimensional lookups and allocate
//! scratch index vectors in their innermost loops, which makes them 1–2
//! orders of magnitude slower than necessary. The kernels here compute the
//! *same* result — they visit taps in exactly the same order and accumulate
//! in the same sequence, so outputs are bit-identical — but with precomputed
//! strides, flat-slice indexing and no allocation inside the hot loops.
//!
//! Inputs are expected to be shape-consistent with `out_shape`, exactly as
//! produced by graph construction / shape inference (the fused engine always
//! calls with graph-derived shapes). The differential test harness pins
//! every kernel here against its reference twin.

use dnnf_tensor::{broadcast_index, Shape, Tensor};

use crate::{Attrs, OpError, OpKind};

/// Whether `op` has an optimized kernel in this module. The fused engine
/// uses this registry to decide between the fast path and the reference
/// fallback ([`crate::execute`]).
#[must_use]
pub fn has_fast_kernel(op: OpKind) -> bool {
    use OpKind::*;
    matches!(op, Conv | MatMul | Gemm | MaxPool | AveragePool | GlobalAveragePool)
}

/// Executes `op` with its optimized kernel, writing the single output into
/// `out` (length `out_shape.numel()`). Returns `Ok(false)` without touching
/// `out` when the operator has no fast kernel.
///
/// # Errors
///
/// Returns an [`OpError`] when the inputs are structurally invalid for the
/// operator (wrong arity or rank).
///
/// # Panics
///
/// May panic on inputs whose shapes are inconsistent with `out_shape`;
/// callers are expected to pass shapes produced by shape inference.
pub fn execute_fast_into(
    op: OpKind,
    attrs: &Attrs,
    inputs: &[&Tensor],
    out_shape: &Shape,
    out: &mut [f32],
) -> Result<bool, OpError> {
    debug_assert_eq!(out.len(), out_shape.numel());
    match op {
        OpKind::Conv => fast_conv(attrs, inputs, out_shape, out)?,
        OpKind::MatMul => fast_matmul(op, inputs, out_shape, out)?,
        OpKind::Gemm => fast_gemm(attrs, inputs, out_shape, out)?,
        OpKind::MaxPool | OpKind::AveragePool => fast_pool(op, attrs, inputs, out_shape, out)?,
        OpKind::GlobalAveragePool => fast_global_average_pool(inputs, out_shape, out)?,
        _ => return Ok(false),
    }
    Ok(true)
}

fn arity(op: OpKind, inputs: &[&Tensor], min: usize) -> Result<(), OpError> {
    if inputs.len() < min {
        return Err(OpError::ArityMismatch { op, expected: min, actual: inputs.len() });
    }
    Ok(())
}

fn spatial_attrs(attrs: &Attrs, spatial_rank: usize) -> (Vec<usize>, Vec<usize>, Vec<usize>) {
    let strides: Vec<usize> = attrs
        .ints_or("strides", &vec![1; spatial_rank])
        .iter()
        .map(|&s| s.max(1) as usize)
        .collect();
    let dilations: Vec<usize> = attrs
        .ints_or("dilations", &vec![1; spatial_rank])
        .iter()
        .map(|&d| d.max(1) as usize)
        .collect();
    let pads: Vec<usize> = attrs
        .ints_or("pads", &vec![0; spatial_rank * 2])
        .iter()
        .map(|&p| p.max(0) as usize)
        .collect();
    (strides, dilations, pads)
}

/// Direct convolution with precomputed strides. Accumulates over input
/// channels then kernel taps in row-major order — the reference kernel's
/// exact summation sequence.
fn fast_conv(
    attrs: &Attrs,
    inputs: &[&Tensor],
    out_shape: &Shape,
    out: &mut [f32],
) -> Result<(), OpError> {
    arity(OpKind::Conv, inputs, 2)?;
    let x = inputs[0];
    let w = inputs[1];
    let bias = inputs.get(2).map(|b| b.data());
    if x.shape().rank() < 3 || w.shape().rank() != x.shape().rank() {
        return Err(OpError::InvalidShape {
            op: OpKind::Conv,
            reason: "expected (N, C, spatial...) input and matching-rank weight".into(),
        });
    }
    let spatial_rank = x.shape().rank() - 2;
    let (strides, dilations, pads) = spatial_attrs(attrs, spatial_rank);
    let group = attrs.int_or("group", 1).max(1) as usize;

    let xd = x.shape().dims().to_vec();
    let xs = x.shape().strides();
    let ws = w.shape().strides();
    let batch = out_shape.dim(0);
    let out_channels = out_shape.dim(1);
    let in_per_group = w.shape().dim(1);
    let channels_per_group_out = (out_channels / group).max(1);
    let xdat = x.data();
    let wdat = w.data();

    if spatial_rank == 2 {
        let (oh, ow) = (out_shape.dim(2), out_shape.dim(3));
        let (ih, iw) = (xd[2], xd[3]);
        let (kh, kw) = (w.shape().dim(2), w.shape().dim(3));
        let (sh, sw) = (strides[0], strides[1]);
        let (dh, dw) = (dilations[0], dilations[1]);
        let (ph, pw) = (pads[0], pads[1]);
        let mut o = 0usize;
        for n in 0..batch {
            for oc in 0..out_channels {
                let g = oc / channels_per_group_out;
                let b0 = bias.map_or(0.0, |b| b[oc]);
                let w_oc = oc * ws[0];
                for oy in 0..oh {
                    for ox in 0..ow {
                        let mut acc = b0;
                        for ic in 0..in_per_group {
                            let x_base = n * xs[0] + (g * in_per_group + ic) * xs[1];
                            let w_base = w_oc + ic * ws[1];
                            for ky in 0..kh {
                                let y = oy * sh + ky * dh;
                                if y < ph || y - ph >= ih {
                                    continue;
                                }
                                let x_row = x_base + (y - ph) * xs[2];
                                let w_row = w_base + ky * ws[2];
                                for kx in 0..kw {
                                    let xx = ox * sw + kx * dw;
                                    if xx < pw || xx - pw >= iw {
                                        continue;
                                    }
                                    acc += xdat[x_row + (xx - pw)] * wdat[w_row + kx];
                                }
                            }
                        }
                        out[o] = acc;
                        o += 1;
                    }
                }
            }
        }
        return Ok(());
    }

    // Generic spatial rank (1-D and 3-D convolutions) with odometer loops.
    let out_sp: Vec<usize> = out_shape.dims()[2..].to_vec();
    let kernel_sp: Vec<usize> = w.shape().dims()[2..].to_vec();
    let out_sp_count: usize = out_sp.iter().product();
    let kernel_count: usize = kernel_sp.iter().product();
    let mut o = 0usize;
    let mut out_pos = vec![0usize; spatial_rank];
    let mut k_pos = vec![0usize; spatial_rank];
    for n in 0..batch {
        for oc in 0..out_channels {
            let g = oc / channels_per_group_out;
            let b0 = bias.map_or(0.0, |b| b[oc]);
            out_pos.iter_mut().for_each(|p| *p = 0);
            for _ in 0..out_sp_count {
                let mut acc = b0;
                for ic in 0..in_per_group {
                    let x_base = n * xs[0] + (g * in_per_group + ic) * xs[1];
                    let w_base = oc * ws[0] + ic * ws[1];
                    k_pos.iter_mut().for_each(|p| *p = 0);
                    for _ in 0..kernel_count {
                        let mut x_off = x_base;
                        let mut w_off = w_base;
                        let mut in_bounds = true;
                        for d in 0..spatial_rank {
                            let pos = out_pos[d] * strides[d] + k_pos[d] * dilations[d];
                            if pos < pads[d] || pos - pads[d] >= xd[2 + d] {
                                in_bounds = false;
                                break;
                            }
                            x_off += (pos - pads[d]) * xs[2 + d];
                            w_off += k_pos[d] * ws[2 + d];
                        }
                        if in_bounds {
                            acc += xdat[x_off] * wdat[w_off];
                        }
                        advance(&mut k_pos, &kernel_sp);
                    }
                }
                out[o] = acc;
                o += 1;
                advance(&mut out_pos, &out_sp);
            }
        }
    }
    Ok(())
}

/// Row-major odometer increment.
fn advance(pos: &mut [usize], dims: &[usize]) {
    for axis in (0..dims.len()).rev() {
        pos[axis] += 1;
        if pos[axis] < dims[axis] {
            break;
        }
        pos[axis] = 0;
    }
}

/// Batched matrix multiplication with broadcasting over batch dimensions.
fn fast_matmul(
    op: OpKind,
    inputs: &[&Tensor],
    out_shape: &Shape,
    out: &mut [f32],
) -> Result<(), OpError> {
    arity(op, inputs, 2)?;
    let a = inputs[0];
    let b = inputs[1];
    if a.shape().rank() < 2 || b.shape().rank() < 2 {
        return Err(OpError::InvalidShape { op, reason: "operands must be rank >= 2".into() });
    }
    let m = out_shape.dim(out_shape.rank() - 2);
    let n = out_shape.dim(out_shape.rank() - 1);
    let k = a.shape().dim(a.shape().rank() - 1);
    let batch_shape = Shape::new(out_shape.dims()[..out_shape.rank() - 2].to_vec());
    let a_batch = Shape::new(a.shape().dims()[..a.shape().rank() - 2].to_vec());
    let b_batch = Shape::new(b.shape().dims()[..b.shape().rank() - 2].to_vec());
    let a_strides = a.shape().strides();
    let b_strides = b.shape().strides();
    let adat = a.data();
    let bdat = b.data();
    let a_row_stride = a_strides[a.shape().rank() - 2];
    let b_row_stride = b_strides[b.shape().rank() - 2];

    let mut o = 0usize;
    for batch in 0..batch_shape.numel().max(1) {
        let batch_idx = batch_shape.multi_index(batch);
        let a_prefix = broadcast_index(&batch_idx, &a_batch);
        let b_prefix = broadcast_index(&batch_idx, &b_batch);
        let a_base: usize = a_prefix.iter().zip(&a_strides).map(|(&i, &s)| i * s).sum();
        let b_base: usize = b_prefix.iter().zip(&b_strides).map(|(&i, &s)| i * s).sum();
        for i in 0..m {
            let a_row = &adat[a_base + i * a_row_stride..a_base + i * a_row_stride + k];
            for j in 0..n {
                let mut acc = 0.0f32;
                for (p, &av) in a_row.iter().enumerate() {
                    acc += av * bdat[b_base + p * b_row_stride + j];
                }
                out[o] = acc;
                o += 1;
            }
        }
    }
    Ok(())
}

/// ONNX `Gemm` with transpose flags, `alpha`/`beta` scaling and broadcast
/// bias, in the reference kernel's evaluation order.
fn fast_gemm(
    attrs: &Attrs,
    inputs: &[&Tensor],
    out_shape: &Shape,
    out: &mut [f32],
) -> Result<(), OpError> {
    arity(OpKind::Gemm, inputs, 2)?;
    let a = inputs[0];
    let b = inputs[1];
    if a.shape().rank() != 2 || b.shape().rank() != 2 {
        return Err(OpError::InvalidShape {
            op: OpKind::Gemm,
            reason: "operands must be rank 2".into(),
        });
    }
    let alpha = attrs.float_or("alpha", 1.0);
    let beta = attrs.float_or("beta", 1.0);
    let trans_a = attrs.int_or("transA", 0) != 0;
    let trans_b = attrs.int_or("transB", 0) != 0;
    let m = out_shape.dim(0);
    let n = out_shape.dim(1);
    let k = if trans_a { a.shape().dim(0) } else { a.shape().dim(1) };
    let adat = a.data();
    let bdat = b.data();
    let (a_cols, b_cols) = (a.shape().dim(1), b.shape().dim(1));
    // Broadcast strides of the optional bias over the (m, n) output.
    let c = inputs.get(2);
    let (c_dat, c_si, c_sj) = match c {
        Some(c) => {
            let cd = c.shape().dims();
            let (si, sj) = match cd.len() {
                2 => (
                    if cd[0] == 1 { 0 } else { cd[1] },
                    if cd[1] == 1 { 0 } else { 1 },
                ),
                1 => (0, if cd[0] == 1 { 0 } else { 1 }),
                _ => (0, 0),
            };
            (Some(c.data()), si, sj)
        }
        None => (None, 0, 0),
    };

    let mut o = 0usize;
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0f32;
            for p in 0..k {
                let av = if trans_a { adat[p * a_cols + i] } else { adat[i * a_cols + p] };
                let bv = if trans_b { bdat[j * b_cols + p] } else { bdat[p * b_cols + j] };
                acc += av * bv;
            }
            let mut v = alpha * acc;
            if let Some(cd) = c_dat {
                v += beta * cd[i * c_si + j * c_sj];
            }
            out[o] = v;
            o += 1;
        }
    }
    Ok(())
}

/// `MaxPool` / `AveragePool` with the reference kernel's window order and
/// padding-count semantics.
fn fast_pool(
    op: OpKind,
    attrs: &Attrs,
    inputs: &[&Tensor],
    out_shape: &Shape,
    out: &mut [f32],
) -> Result<(), OpError> {
    arity(op, inputs, 1)?;
    let x = inputs[0];
    if x.shape().rank() < 3 {
        return Err(OpError::InvalidShape {
            op,
            reason: "expected (N, C, spatial...) input".into(),
        });
    }
    let spatial_rank = x.shape().rank() - 2;
    let kernel: Vec<usize> = attrs
        .ints_or("kernel_shape", &vec![1; spatial_rank])
        .iter()
        .map(|&k| k.max(1) as usize)
        .collect();
    let (strides, _, pads) = spatial_attrs(attrs, spatial_rank);
    let count_include_pad = attrs.int_or("count_include_pad", 0) != 0;
    let kernel_total: usize = kernel.iter().product();
    let is_max = op == OpKind::MaxPool;

    let xd = x.shape().dims().to_vec();
    let xs = x.shape().strides();
    let xdat = x.data();
    let batch = out_shape.dim(0);
    let channels = out_shape.dim(1);
    let out_sp: Vec<usize> = out_shape.dims()[2..].to_vec();
    let out_sp_count: usize = out_sp.iter().product();

    let mut o = 0usize;
    if spatial_rank == 2 {
        let (ih, iw) = (xd[2], xd[3]);
        let (kh, kw) = (kernel[0], kernel[1]);
        let (sh, sw) = (strides[0], strides[1]);
        let (ph, pw) = (pads[0], pads[1]);
        let (oh, ow) = (out_sp[0], out_sp[1]);
        for n in 0..batch {
            for c in 0..channels {
                let base = n * xs[0] + c * xs[1];
                for oy in 0..oh {
                    for ox in 0..ow {
                        let mut acc = if is_max { f32::NEG_INFINITY } else { 0.0 };
                        let mut count = 0usize;
                        for ky in 0..kh {
                            let y = oy * sh + ky;
                            if y < ph || y - ph >= ih {
                                continue;
                            }
                            let row = base + (y - ph) * xs[2];
                            for kx in 0..kw {
                                let xx = ox * sw + kx;
                                if xx < pw || xx - pw >= iw {
                                    continue;
                                }
                                let v = xdat[row + (xx - pw)];
                                if is_max {
                                    acc = acc.max(v);
                                } else {
                                    acc += v;
                                }
                                count += 1;
                            }
                        }
                        out[o] = pool_result(is_max, acc, count, count_include_pad, kernel_total);
                        o += 1;
                    }
                }
            }
        }
        return Ok(());
    }

    let mut out_pos = vec![0usize; spatial_rank];
    let mut k_pos = vec![0usize; spatial_rank];
    for n in 0..batch {
        for c in 0..channels {
            let base = n * xs[0] + c * xs[1];
            out_pos.iter_mut().for_each(|p| *p = 0);
            for _ in 0..out_sp_count {
                let mut acc = if is_max { f32::NEG_INFINITY } else { 0.0 };
                let mut count = 0usize;
                k_pos.iter_mut().for_each(|p| *p = 0);
                for _ in 0..kernel_total {
                    let mut off = base;
                    let mut in_bounds = true;
                    for d in 0..spatial_rank {
                        let pos = out_pos[d] * strides[d] + k_pos[d];
                        if pos < pads[d] || pos - pads[d] >= xd[2 + d] {
                            in_bounds = false;
                            break;
                        }
                        off += (pos - pads[d]) * xs[2 + d];
                    }
                    if in_bounds {
                        let v = xdat[off];
                        if is_max {
                            acc = acc.max(v);
                        } else {
                            acc += v;
                        }
                        count += 1;
                    }
                    advance(&mut k_pos, &kernel);
                }
                out[o] = pool_result(is_max, acc, count, count_include_pad, kernel_total);
                o += 1;
                advance(&mut out_pos, &out_sp);
            }
        }
    }
    Ok(())
}

fn pool_result(
    is_max: bool,
    acc: f32,
    count: usize,
    count_include_pad: bool,
    kernel_total: usize,
) -> f32 {
    if is_max {
        acc
    } else {
        let denom = if count_include_pad { kernel_total } else { count.max(1) };
        acc / denom as f32
    }
}

/// `GlobalAveragePool` over contiguous per-channel spatial slices.
fn fast_global_average_pool(
    inputs: &[&Tensor],
    out_shape: &Shape,
    out: &mut [f32],
) -> Result<(), OpError> {
    arity(OpKind::GlobalAveragePool, inputs, 1)?;
    let x = inputs[0];
    if x.shape().rank() < 3 {
        return Err(OpError::InvalidShape {
            op: OpKind::GlobalAveragePool,
            reason: "expected (N, C, spatial...) input".into(),
        });
    }
    let batch = out_shape.dim(0);
    let channels = out_shape.dim(1);
    let spatial: usize = x.shape().dims()[2..].iter().product();
    let xdat = x.data();
    for n in 0..batch {
        for c in 0..channels {
            let base = (n * channels + c) * spatial;
            let sum: f32 = xdat[base..base + spatial].iter().sum();
            out[n * channels + c] = sum / spatial.max(1) as f32;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{execute, infer_shapes};

    /// Runs `op` through both the fast and reference kernels and checks the
    /// outputs are bit-identical (same taps, same accumulation order).
    fn assert_fast_matches_reference(op: OpKind, attrs: &Attrs, inputs: &[&Tensor]) {
        let shapes: Vec<Shape> = inputs.iter().map(|t| t.shape().clone()).collect();
        let out_shape = infer_shapes(op, attrs, &shapes).unwrap().remove(0);
        let mut fast = vec![0.0f32; out_shape.numel()];
        assert!(execute_fast_into(op, attrs, inputs, &out_shape, &mut fast).unwrap());
        let reference = execute(op, attrs, inputs).unwrap().remove(0);
        assert_eq!(fast.as_slice(), reference.data(), "{op} diverged from reference");
    }

    #[test]
    fn registry_matches_dispatch() {
        for op in OpKind::all() {
            if !has_fast_kernel(op) {
                let mut out = [0.0f32];
                let x = Tensor::scalar(1.0);
                // Elementwise ops get Ok(false); the registry is authoritative.
                if op.is_elementwise_unary() {
                    assert!(!execute_fast_into(op, &Attrs::new(), &[&x], &Shape::scalar(), &mut out)
                        .unwrap());
                }
            }
        }
        assert!(has_fast_kernel(OpKind::Conv));
        assert!(!has_fast_kernel(OpKind::Softmax));
    }

    #[test]
    fn conv_2d_matches_reference_with_padding_strides_and_bias() {
        let x = Tensor::random(Shape::new(vec![2, 3, 9, 7]), 1);
        let w = Tensor::random(Shape::new(vec![4, 3, 3, 3]), 2);
        let b = Tensor::random(Shape::new(vec![4]), 3);
        for attrs in [
            Attrs::new().with_ints("pads", vec![1, 1, 1, 1]),
            Attrs::new().with_ints("strides", vec![2, 2]),
            Attrs::new().with_ints("pads", vec![2, 0, 2, 0]).with_ints("dilations", vec![2, 1]),
        ] {
            assert_fast_matches_reference(OpKind::Conv, &attrs, &[&x, &w, &b]);
            assert_fast_matches_reference(OpKind::Conv, &attrs, &[&x, &w]);
        }
    }

    #[test]
    fn grouped_conv_matches_reference() {
        let x = Tensor::random(Shape::new(vec![1, 4, 6, 6]), 4);
        let w = Tensor::random(Shape::new(vec![4, 1, 3, 3]), 5);
        let attrs = Attrs::new().with_int("group", 4).with_ints("pads", vec![1, 1, 1, 1]);
        assert_fast_matches_reference(OpKind::Conv, &attrs, &[&x, &w]);
    }

    #[test]
    fn conv_3d_matches_reference() {
        let x = Tensor::random(Shape::new(vec![1, 2, 4, 5, 4]), 6);
        let w = Tensor::random(Shape::new(vec![3, 2, 3, 3, 3]), 7);
        let attrs = Attrs::new().with_ints("pads", vec![1, 1, 1, 1, 1, 1]);
        assert_fast_matches_reference(OpKind::Conv, &attrs, &[&x, &w]);
    }

    #[test]
    fn matmul_matches_reference_including_batch_broadcast() {
        let a = Tensor::random(Shape::new(vec![3, 4]), 8);
        let b = Tensor::random(Shape::new(vec![4, 5]), 9);
        assert_fast_matches_reference(OpKind::MatMul, &Attrs::new(), &[&a, &b]);
        let a = Tensor::random(Shape::new(vec![2, 3, 4]), 10);
        let b = Tensor::random(Shape::new(vec![4, 5]), 11);
        assert_fast_matches_reference(OpKind::MatMul, &Attrs::new(), &[&a, &b]);
        let a = Tensor::random(Shape::new(vec![2, 1, 3, 4]), 12);
        let b = Tensor::random(Shape::new(vec![2, 4, 2]), 13);
        assert_fast_matches_reference(OpKind::MatMul, &Attrs::new(), &[&a, &b]);
    }

    #[test]
    fn gemm_matches_reference_with_transpose_and_bias() {
        let a = Tensor::random(Shape::new(vec![3, 4]), 14);
        let bt = Tensor::random(Shape::new(vec![5, 4]), 15);
        let c = Tensor::random(Shape::new(vec![5]), 16);
        let attrs = Attrs::new()
            .with_int("transB", 1)
            .with_float("alpha", 0.5)
            .with_float("beta", 2.0);
        assert_fast_matches_reference(OpKind::Gemm, &attrs, &[&a, &bt, &c]);
        let at = Tensor::random(Shape::new(vec![4, 3]), 17);
        let b = Tensor::random(Shape::new(vec![4, 5]), 18);
        let c2 = Tensor::random(Shape::new(vec![3, 1]), 19);
        let attrs = Attrs::new().with_int("transA", 1);
        assert_fast_matches_reference(OpKind::Gemm, &attrs, &[&at, &b, &c2]);
    }

    #[test]
    fn pools_match_reference() {
        let x = Tensor::random(Shape::new(vec![1, 3, 7, 7]), 20);
        let attrs = Attrs::new()
            .with_ints("kernel_shape", vec![3, 3])
            .with_ints("strides", vec![2, 2])
            .with_ints("pads", vec![1, 1, 1, 1]);
        assert_fast_matches_reference(OpKind::MaxPool, &attrs, &[&x]);
        assert_fast_matches_reference(OpKind::AveragePool, &attrs, &[&x]);
        let include = attrs.clone().with_int("count_include_pad", 1);
        assert_fast_matches_reference(OpKind::AveragePool, &include, &[&x]);
        // 3-D pooling takes the generic odometer path.
        let x3 = Tensor::random(Shape::new(vec![1, 2, 4, 4, 4]), 21);
        let attrs3 =
            Attrs::new().with_ints("kernel_shape", vec![2, 2, 2]).with_ints("strides", vec![2, 2, 2]);
        assert_fast_matches_reference(OpKind::MaxPool, &attrs3, &[&x3]);
        assert_fast_matches_reference(OpKind::GlobalAveragePool, &Attrs::new(), &[&x3]);
    }

    #[test]
    fn invalid_ranks_are_rejected_not_panicked() {
        let x = Tensor::random(Shape::new(vec![4]), 22);
        let w = Tensor::random(Shape::new(vec![4]), 23);
        let mut out = vec![0.0f32; 4];
        let shape = Shape::new(vec![4]);
        assert!(execute_fast_into(OpKind::Conv, &Attrs::new(), &[&x, &w], &shape, &mut out).is_err());
        assert!(execute_fast_into(OpKind::MatMul, &Attrs::new(), &[&x, &w], &shape, &mut out).is_err());
        assert!(execute_fast_into(OpKind::MaxPool, &Attrs::new(), &[&x], &shape, &mut out).is_err());
    }
}
