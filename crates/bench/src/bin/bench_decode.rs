//! Wall-clock regression harness for the autoregressive KV-cache decode
//! loop.
//!
//! For each decoder size, times two ways of producing the same
//! `GENERATE`-token greedy completion (medians over [`RUNS`] runs, written
//! to `BENCH_decode.json`, schema `dnnf-bench-decode/v1`):
//!
//! * `cached_decode_ms` — a `DecodeSession`: one prefill, then single-token
//!   steps against the `Arc`-backed KV cache through the seq-polymorphic
//!   step plan (`PlanCache::compile_seq` + `Executor::run_compiled_seq`);
//!   `tokens_per_sec` derives from it.
//! * `recompute_decode_ms` — the no-cache baseline: every token recomputes
//!   its full prefix through a prompt-length prefill model. The per-length
//!   models are compiled **outside** the timed region, so the ratio
//!   isolates runtime work (quadratic recompute vs linear stepping), not
//!   plan-search amortization.
//!
//! `cached_vs_recompute_speedup` carries an **always-armed** ≥
//! [`CACHED_SPEEDUP_FLOOR`] floor: both sides run the same kernels on the
//! same host, so the ratio is structural. The run also hard-asserts the two
//! paths decode identical tokens (the determinism oracle, enforced at
//! benchmark time on every CI run), and that the timed decodes trigger
//! **zero** further plan searches (`plan_searches_decode`) — T-token
//! decoding costs exactly the two compile-time searches
//! (`plan_searches_compile`: prefill + step), independent of T.
//!
//! Run with `cargo run --release -p dnnf-bench --bin bench_decode`; CI
//! diffs the JSON against the checked-in `BENCH_decode.json` via
//! `bench_diff`. See `docs/benchmarks.md`.

use std::collections::HashMap;
use std::time::Instant;

use dnnf_core::{Compiler, CompilerOptions};
use dnnf_models::{decoder_prefill, decoder_step, DecoderConfig};
use dnnf_runtime::{greedy_argmax, DecodeSession, ExecOptions, Executor, PlanCache};
use dnnf_simdev::DeviceSpec;
use dnnf_tensor::{Shape, Tensor};

/// Runs per configuration; the median is reported.
const RUNS: usize = 7;

/// Prompt length each decoder is prefilled with.
const PROMPT_LEN: usize = 8;

/// Tokens generated per decode (1 from prefill + the rest from steps).
const GENERATE: usize = 16;

/// Always-armed floor on `recompute_decode_ms / cached_decode_ms`.
const CACHED_SPEEDUP_FLOOR: f64 = 2.0;

/// The decoder sizes benchmarked.
fn configs() -> Vec<(&'static str, DecoderConfig)> {
    vec![
        ("decoder-tiny", DecoderConfig::test_tiny()),
        (
            "decoder-small",
            DecoderConfig {
                layers: 4,
                hidden: 32,
                heads: 4,
                vocab: 64,
                max_seq: 64,
                ffn_mult: 2,
            },
        ),
    ]
}

fn median_ms(mut samples: Vec<f64>) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    samples[samples.len() / 2]
}

fn time_ms(mut run: impl FnMut()) -> Vec<f64> {
    (0..RUNS)
        .map(|_| {
            let t = Instant::now();
            run();
            t.elapsed().as_secs_f64() * 1e3
        })
        .collect()
}

struct Row {
    model: &'static str,
    prefill_ms: f64,
    cached_decode_ms: f64,
    recompute_decode_ms: f64,
    /// Plan searches (cache misses) to compile the session: prefill + step.
    plan_searches_compile: u64,
    /// Plan searches triggered by the timed decodes. Must be 0.
    plan_searches_decode: u64,
}

impl Row {
    fn tokens_per_sec(&self) -> f64 {
        GENERATE as f64 / (self.cached_decode_ms / 1e3)
    }

    fn cached_vs_recompute_speedup(&self) -> f64 {
        self.recompute_decode_ms / self.cached_decode_ms
    }
}

fn main() {
    let prompt: Vec<u32> = (0..PROMPT_LEN as u32).collect();
    let executor = Executor::new(DeviceSpec::snapdragon_865_cpu())
        .without_cache_simulation()
        .with_options(ExecOptions::serial());
    let mut rows = Vec::new();

    for (name, cfg) in configs() {
        // Rewriting stays off so cached stepping and full-prefix recompute
        // are the same float expression — the token-identity assertion
        // below is then exact, not approximate.
        let cache = PlanCache::new();
        let mut compiler = Compiler::new(CompilerOptions::without_rewriting());
        let prefill_graph = decoder_prefill(&cfg, PROMPT_LEN).expect("valid decoder config");
        let step_graph = decoder_step(&cfg, PROMPT_LEN).expect("valid decoder config");
        let mut session = DecodeSession::compile(
            executor.clone(),
            &cache,
            &mut compiler,
            &prefill_graph,
            &step_graph,
        )
        .expect("decoder compiles");
        let plan_searches_compile = cache.stats().misses;

        // The no-cache baseline recomputes the full prefix per token; its
        // per-length models are compiled outside the timed region.
        let recompute_models: Vec<_> = (PROMPT_LEN..PROMPT_LEN + GENERATE)
            .map(|len| {
                let graph = decoder_prefill(&cfg, len).expect("valid decoder config");
                cache
                    .compile_cached(&mut compiler, &graph)
                    .expect("decoder compiles")
                    .0
            })
            .collect();
        let recompute_decode = || -> Vec<u32> {
            let mut seq = prompt.clone();
            let mut out = Vec::with_capacity(GENERATE);
            for model in &recompute_models {
                let len = seq.len();
                let make = |values: Vec<f32>| {
                    Tensor::from_vec(Shape::new(vec![len]), values).expect("length matches shape")
                };
                let mut inputs = HashMap::new();
                inputs.insert(
                    "token_ids".to_string(),
                    make(seq.iter().map(|&t| t as f32).collect()),
                );
                inputs.insert(
                    "positions".to_string(),
                    make((0..len).map(|p| p as f32).collect()),
                );
                let report = executor.run_compiled(model, &inputs).expect("prefill runs");
                let logits = report.outputs.last().expect("logits output");
                let data = logits.data();
                let token = greedy_argmax(&data[data.len() - cfg.vocab..]) as u32;
                seq.push(token);
                out.push(token);
            }
            out
        };

        // The two paths must decode identical tokens — the determinism
        // oracle, enforced on every benchmark run before any timing.
        let cached_tokens = session.decode(&prompt, GENERATE).expect("decode runs");
        assert_eq!(
            cached_tokens,
            recompute_decode(),
            "{name}: KV-cached decode diverged from full-prefix recompute"
        );

        let searches_before_timing = cache.stats().misses;
        let prefill_ms = median_ms(time_ms(|| {
            session.prefill(&prompt).expect("prefill runs");
        }));
        let cached_decode_ms = median_ms(time_ms(|| {
            session.decode(&prompt, GENERATE).expect("decode runs");
        }));
        let recompute_decode_ms = median_ms(time_ms(|| {
            recompute_decode();
        }));
        let plan_searches_decode = cache.stats().misses - searches_before_timing;

        rows.push(Row {
            model: name,
            prefill_ms,
            cached_decode_ms,
            recompute_decode_ms,
            plan_searches_compile,
            plan_searches_decode,
        });
    }

    println!(
        "{:<14} {:>11} {:>17} {:>20} {:>14} {:>9} {:>13} {:>12}",
        "model",
        "prefill_ms",
        "cached_decode_ms",
        "recompute_decode_ms",
        "tokens_per_sec",
        "speedup",
        "plan_compile",
        "plan_decode"
    );
    for row in &rows {
        println!(
            "{:<14} {:>11.3} {:>17.3} {:>20.3} {:>14.1} {:>8.2}x {:>13} {:>12}",
            row.model,
            row.prefill_ms,
            row.cached_decode_ms,
            row.recompute_decode_ms,
            row.tokens_per_sec(),
            row.cached_vs_recompute_speedup(),
            row.plan_searches_compile,
            row.plan_searches_decode
        );
    }

    let mut json = String::from("{\n");
    json.push_str("  \"schema\": \"dnnf-bench-decode/v1\",\n");
    json.push_str(&format!("  \"runs_per_config\": {RUNS},\n"));
    json.push_str(&format!("  \"prompt_len\": {PROMPT_LEN},\n"));
    json.push_str(&format!("  \"generate\": {GENERATE},\n"));
    json.push_str("  \"models\": [\n");
    for (i, row) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"model\": \"{}\", \"prefill_ms\": {:.3}, \"cached_decode_ms\": {:.3}, \
             \"recompute_decode_ms\": {:.3}, \"tokens_per_sec\": {:.1}, \
             \"cached_vs_recompute_speedup\": {:.2}, \"plan_searches_compile\": {}, \
             \"plan_searches_decode\": {}}}{}\n",
            row.model,
            row.prefill_ms,
            row.cached_decode_ms,
            row.recompute_decode_ms,
            row.tokens_per_sec(),
            row.cached_vs_recompute_speedup(),
            row.plan_searches_compile,
            row.plan_searches_decode,
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    json.push_str("  ],\n");
    json.push_str("  \"floors\": [\n");
    for (i, row) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"model\": \"{}\", \"metric\": \"cached_vs_recompute_speedup\", \
             \"floor\": {CACHED_SPEEDUP_FLOOR:.2}, \"armed\": true, \"value\": {:.2}}}{}\n",
            row.model,
            row.cached_vs_recompute_speedup(),
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write("BENCH_decode.json", &json).expect("write BENCH_decode.json");
    println!("\nwrote BENCH_decode.json");

    // Enforce the gates after the JSON is on disk, so a regression still
    // leaves the measurements inspectable.
    for row in &rows {
        assert_eq!(
            row.plan_searches_decode, 0,
            "{}: decoding triggered {} plan searches — per-step dispatch must be codegen-only",
            row.model, row.plan_searches_decode
        );
        let speedup = row.cached_vs_recompute_speedup();
        assert!(
            speedup >= CACHED_SPEEDUP_FLOOR,
            "regression: {} cached_vs_recompute_speedup is {speedup:.2}x, below the \
             {CACHED_SPEEDUP_FLOOR:.2}x floor",
            row.model
        );
    }
}
