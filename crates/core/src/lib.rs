//! DNNFusion — the paper's primary contribution, reproduced in Rust.
//!
//! This crate implements the full DNNFusion compilation pipeline on top of
//! the computational-graph IR from `dnnf-graph`:
//!
//! 1. the **Extended Computational Graph** ([`Ecg`]): mapping types,
//!    mathematical properties and `IR_removable` flags attached to each node
//!    and value (paper §3.2);
//! 2. the **mapping type analysis** of Table 3 ([`analyze_pair`]): for every
//!    ordered pair of mapping types, the fused mapping type and a
//!    green/yellow/red profitability verdict;
//! 3. **mathematical-property-based graph rewriting** ([`rewrite`]): a greedy,
//!    FLOPs-driven engine applying associative / distributive / commutative
//!    rules inside property-closed partitions (paper §4.2, Table 4);
//! 4. **light-weight profile-driven fusion plan generation** ([`plan`]):
//!    Listing 1 — seed selection, recursive successor/predecessor
//!    exploration, constraint checks and profile-database lookups;
//! 5. **fusion code generation** ([`codegen`]): per-block data-flow trees,
//!    common-sub-tree elimination, and the 23 mapping-type-pair code
//!    generation rules (paper §4.4.1, Figure 4);
//! 6. **intra-block** data-movement elimination and **inter-block** layout
//!    selection (paper §4.4.2);
//! 7. an end-to-end [`Compiler`] driver with per-phase statistics used by the
//!    evaluation harness (Figures 7 and 9b).
//!
//! # Example
//!
//! ```
//! use dnnf_core::{Compiler, CompilerOptions};
//! use dnnf_graph::Graph;
//! use dnnf_ops::{Attrs, OpKind};
//! use dnnf_tensor::Shape;
//!
//! # fn main() -> Result<(), dnnf_core::CoreError> {
//! let mut g = Graph::new("conv-bn-relu");
//! let x = g.add_input("x", Shape::new(vec![1, 8, 16, 16]));
//! let w = g.add_weight("w", Shape::new(vec![8, 8, 3, 3]));
//! let c = g.add_op(OpKind::Conv, Attrs::new().with_ints("pads", vec![1, 1, 1, 1]), &[x, w], "conv")?[0];
//! let r = g.add_op(OpKind::Relu, Attrs::new(), &[c], "relu")?[0];
//! g.mark_output(r);
//!
//! let mut compiler = Compiler::new(CompilerOptions::default());
//! let compiled = compiler.compile(&g)?;
//! assert_eq!(compiled.stats.fused_layers, 1); // Conv+Relu fuse into one block
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

mod batch;
pub mod codegen;
mod compiler;
mod ecg;
mod error;
pub mod exec;
mod inter;
mod intra;
mod latency;
mod mapping;
pub mod plan;
pub mod rewrite;
mod seq;

pub use batch::BatchInstance;
pub use compiler::{CompilationStats, CompiledModel, Compiler, CompilerOptions, RuntimeCacheSlot};
pub use ecg::{Ecg, EcgNodeInfo};
pub use error::CoreError;
pub use exec::{
    compile_plan, BufferPool, CompiledPlan, FreshBuffers, FusedKernel, PackedWeights, ScalarTape,
};
pub use inter::{select_block_layouts, LayoutDecision};
pub use intra::{eliminate_data_movement, DataMovementElimination};
pub use latency::{AnalyticLatencyModel, LatencyModel};
pub use mapping::{analyze_pair, fusable_cell_count, FusionDecision, FusionVerdict};
pub use plan::{block_profile_key, FusionBlock, FusionPlan, FusionPlanner, PlanOptions};
pub use seq::SeqInstance;
