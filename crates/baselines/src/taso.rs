//! A TASO-like graph-substitution pass (used by the Figure 6 comparison).
//!
//! TASO optimizes computational graphs by applying automatically generated
//! algebraic substitutions, but — as the paper argues — it "does not
//! emphasize the relationship between graph rewriting and fusion". This
//! stand-in applies the same *algebraic* rules DNNFusion uses (associative,
//! distributive, commutative) while leaving out the fusion-facilitating
//! structural simplifications, and it performs no fusion itself: the
//! optimized graph is handed to a fixed-pattern baseline for execution, just
//! like the paper runs TASO-optimized models under TFLite.

use dnnf_core::rewrite::{default_rules, RewriteEngine, RuleCategory};
use dnnf_graph::Graph;

/// Applies the TASO-like substitution pass, returning the optimized graph and
/// the number of substitutions applied.
#[must_use]
pub fn taso_optimize(graph: &Graph) -> (Graph, usize) {
    let rules = default_rules()
        .into_iter()
        .filter(|r| r.category() != RuleCategory::Simplification)
        .collect();
    let engine = RewriteEngine::new(rules);
    let (optimized, applied) = engine.run(graph);
    (optimized, applied.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnnf_ops::{Attrs, OpKind};
    use dnnf_tensor::Shape;

    #[test]
    fn taso_applies_algebraic_substitutions() {
        // A ⊙ C + A ⊙ B is an algebraic substitution TASO finds.
        let mut g = Graph::new("algebra");
        let a = g.add_input("A", Shape::new(vec![8, 8]));
        let b = g.add_weight("B", Shape::new(vec![8, 8]));
        let c = g.add_weight("C", Shape::new(vec![8, 8]));
        let ac = g.add_op(OpKind::Mul, Attrs::new(), &[a, c], "ac").unwrap()[0];
        let ab = g.add_op(OpKind::Mul, Attrs::new(), &[a, b], "ab").unwrap()[0];
        let out = g
            .add_op(OpKind::Add, Attrs::new(), &[ac, ab], "sum")
            .unwrap()[0];
        g.mark_output(out);
        let (optimized, applied) = taso_optimize(&g);
        assert_eq!(applied, 1);
        assert!(optimized.stats().flops < g.stats().flops);
    }

    #[test]
    fn taso_skips_structure_only_cleanups() {
        // An Identity + Reshape/Reshape chain is a structural cleanup that
        // DNNFusion's rewriting removes but the TASO-like pass leaves alone.
        let mut g = Graph::new("structure");
        let x = g.add_input("X", Shape::new(vec![2, 3, 4]));
        let id = g
            .add_op(OpKind::Identity, Attrs::new(), &[x], "id")
            .unwrap()[0];
        let r1 = g
            .add_op(
                OpKind::Reshape,
                Attrs::new().with_ints("shape", vec![6, 4]),
                &[id],
                "r1",
            )
            .unwrap()[0];
        let r2 = g
            .add_op(
                OpKind::Reshape,
                Attrs::new().with_ints("shape", vec![24]),
                &[r1],
                "r2",
            )
            .unwrap()[0];
        g.mark_output(r2);
        let (optimized, applied) = taso_optimize(&g);
        assert_eq!(applied, 0);
        assert_eq!(optimized.node_count(), g.node_count());
    }
}
