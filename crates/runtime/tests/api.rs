//! Integration tests exercising the `dnnf-runtime` public re-export surface:
//! the executor's run/estimate entry points, the memory planner, the weight
//! materializer and the device latency model, driven end-to-end on a small
//! hand-built graph.

use std::collections::HashMap;

use dnnf_core::{Compiler, CompilerOptions, Ecg, FusionPlan};
use dnnf_graph::Graph;
use dnnf_ops::{Attrs, OpKind};
use dnnf_runtime::{materialize_weights, DeviceLatencyModel, Executor, MemoryPlan};
use dnnf_simdev::DeviceSpec;
use dnnf_tensor::{Shape, Tensor};

/// Conv anchor followed by an element-wise tail and a residual add.
fn small_graph() -> Graph {
    let mut g = Graph::new("runtime_api");
    let x = g.add_input("x", Shape::new(vec![1, 4, 6, 6]));
    let w = g.add_weight("w", Shape::new(vec![4, 4, 3, 3]));
    let conv = g
        .add_op(
            OpKind::Conv,
            Attrs::new().with_ints("pads", vec![1, 1, 1, 1]),
            &[x, w],
            "conv",
        )
        .unwrap()[0];
    let relu = g
        .add_op(OpKind::Relu, Attrs::new(), &[conv], "relu")
        .unwrap()[0];
    let sig = g
        .add_op(OpKind::Sigmoid, Attrs::new(), &[relu], "sig")
        .unwrap()[0];
    let res = g
        .add_op(OpKind::Add, Attrs::new(), &[sig, x], "res")
        .unwrap()[0];
    g.mark_output(res);
    g
}

fn inputs() -> HashMap<String, Tensor> {
    [(
        "x".to_string(),
        Tensor::random(Shape::new(vec![1, 4, 6, 6]), 11),
    )]
    .into()
}

#[test]
fn run_compiled_matches_run_unfused_and_launches_fewer_kernels() {
    let graph = small_graph();
    let executor = Executor::new(DeviceSpec::snapdragon_865_cpu());
    let unfused = executor.run_unfused(&graph, &inputs()).unwrap();
    let compiled = Compiler::new(CompilerOptions::default())
        .compile(&graph)
        .unwrap();
    let fused = executor.run_compiled(&compiled, &inputs()).unwrap();
    assert_eq!(unfused.outputs.len(), 1);
    assert!(unfused.outputs[0].allclose(&fused.outputs[0], 1e-4));
    assert!(fused.counters.kernel_launches < unfused.counters.kernel_launches);
    assert_eq!(unfused.counters.kernel_launches, graph.node_count() as u64);
    assert!(fused.latency_ms() > 0.0);
    assert!(unfused.counters.latency_us > 0.0);
}

#[test]
fn without_cache_simulation_does_not_change_results() {
    let graph = small_graph();
    let with_cache = Executor::new(DeviceSpec::snapdragon_865_cpu());
    let without_cache = Executor::new(DeviceSpec::snapdragon_865_cpu()).without_cache_simulation();
    assert_eq!(with_cache.device(), without_cache.device());
    let a = with_cache.run_unfused(&graph, &inputs()).unwrap();
    let b = without_cache.run_unfused(&graph, &inputs()).unwrap();
    assert!(
        a.outputs[0].allclose(&b.outputs[0], 0.0),
        "cache simulation is observational only"
    );
}

#[test]
fn estimates_agree_with_execution_on_launch_counts_and_traffic_direction() {
    let graph = small_graph();
    let executor = Executor::new(DeviceSpec::snapdragon_865_cpu());
    let (unfused_counters, unfused_memory) = executor.estimate_unfused(&graph);
    assert_eq!(unfused_counters.kernel_launches, graph.node_count() as u64);
    assert_eq!(
        unfused_counters.peak_memory_bytes,
        unfused_memory.peak_bytes()
    );

    let compiled = Compiler::new(CompilerOptions::default())
        .compile(&graph)
        .unwrap();
    let (fused_counters, fused_memory) = executor.estimate_plan(compiled.graph(), &compiled.plan);
    assert_eq!(
        fused_counters.kernel_launches,
        compiled.plan.fused_layer_count() as u64
    );
    assert!(fused_counters.kernel_launches < unfused_counters.kernel_launches);
    assert!(
        fused_counters.memory_access_bytes <= unfused_counters.memory_access_bytes,
        "fusion must not increase boundary traffic"
    );
    assert!(fused_memory.peak_bytes() <= unfused_memory.peak_bytes());

    // The estimate path must agree with actually running the plan.
    let report = executor.run_compiled(&compiled, &inputs()).unwrap();
    assert_eq!(
        report.counters.kernel_launches,
        fused_counters.kernel_launches
    );
}

#[test]
fn run_plan_accepts_an_explicit_plan_and_rejects_missing_inputs() {
    let graph = small_graph();
    let executor = Executor::new(DeviceSpec::snapdragon_865_cpu());
    let ecg = Ecg::new(graph.clone());
    let singletons = FusionPlan::singletons(&ecg);
    let report = executor.run_plan(&graph, &singletons, &inputs()).unwrap();
    assert_eq!(report.counters.kernel_launches, graph.node_count() as u64);

    let err = executor.run_plan(&graph, &singletons, &HashMap::new());
    assert!(
        err.is_err(),
        "missing inputs must be a runtime error, not a panic"
    );
}

#[test]
fn memory_plan_accounts_for_residents_and_intermediates() {
    let graph = small_graph();
    let ecg = Ecg::new(graph.clone());
    let plan = FusionPlan::singletons(&ecg);
    let order = plan.execution_order(&graph);
    let memory = MemoryPlan::build(&graph, &plan, &order, 4);
    assert!(memory.resident_bytes > 0, "weights and inputs are resident");
    assert!(
        memory.peak_intermediate_bytes > 0,
        "singleton execution materializes intermediates"
    );
    assert_eq!(
        memory.peak_bytes(),
        memory.resident_bytes + memory.peak_intermediate_bytes
    );
    assert!(memory.boundary_traffic_bytes > 0);
    assert!(memory.materialized_values > 0);
}

#[test]
fn materialize_weights_is_deterministic_and_covers_every_weight() {
    let graph = small_graph();
    let first = materialize_weights(&graph);
    let second = materialize_weights(&graph);
    let weight_count = graph.values().filter(|v| v.is_weight()).count();
    assert_eq!(first.len(), weight_count);
    for (id, tensor) in &first {
        assert_eq!(tensor.shape(), &graph.value(*id).shape);
        assert_eq!(
            tensor, &second[id],
            "weight data must be reproducible across calls"
        );
    }
}

#[test]
fn engine_reference_and_estimate_paths_agree_on_counters() {
    // The three entry points (compiled engine, reference interpreter, and
    // kernel-free estimation) must produce identical counters for the same
    // plan — the engine only changes how tensors are computed, never what
    // the simulated device observes.
    let graph = small_graph();
    let executor = Executor::new(DeviceSpec::snapdragon_865_cpu());
    let compiled = Compiler::new(CompilerOptions::default())
        .compile(&graph)
        .unwrap();
    let engine = executor.run_compiled(&compiled, &inputs()).unwrap();
    let reference = executor
        .run_plan_reference(compiled.graph(), &compiled.plan, &inputs())
        .unwrap();
    let (estimated, estimated_memory) = executor.estimate_plan(compiled.graph(), &compiled.plan);
    assert_eq!(engine.counters, reference.counters);
    assert_eq!(engine.counters, estimated);
    assert_eq!(engine.memory, estimated_memory);
    for (a, b) in engine.outputs.iter().zip(&reference.outputs) {
        assert!(
            a.allclose(b, 1e-5),
            "engine must reproduce reference semantics"
        );
    }
}

#[test]
fn repeated_engine_runs_are_deterministic_despite_buffer_reuse() {
    // The arena recycles buffers across blocks; stale data must never leak
    // into results, so back-to-back runs are bit-identical.
    let graph = small_graph();
    let executor = Executor::new(DeviceSpec::snapdragon_865_cpu()).without_cache_simulation();
    let compiled = Compiler::new(CompilerOptions::default())
        .compile(&graph)
        .unwrap();
    let first = executor.run_compiled(&compiled, &inputs()).unwrap();
    let second = executor.run_compiled(&compiled, &inputs()).unwrap();
    assert_eq!(first.outputs, second.outputs);
}

#[test]
fn memory_plan_lifetimes_drive_the_arena() {
    let graph = small_graph();
    let ecg = Ecg::new(graph.clone());
    let plan = FusionPlan::singletons(&ecg);
    let order = plan.execution_order(&graph);
    let memory = MemoryPlan::build(&graph, &plan, &order, 4);
    // Every materialized boundary value has a recorded lifetime the executor
    // can recycle on.
    assert_eq!(memory.lifetimes.len(), memory.materialized_values);
    assert!(memory
        .lifetimes
        .iter()
        .all(|l| l.birth <= l.death && l.death < order.len()));
}

#[test]
fn device_latency_model_describes_block_work_faithfully() {
    let graph = small_graph();
    let model = DeviceLatencyModel::new(DeviceSpec::snapdragon_865_cpu());
    assert!(model.cost_model().spec().flops_per_us() > 0.0);

    let all_nodes: Vec<_> = graph.nodes().map(|n| n.id).collect();
    let fused_work = model.block_work(&graph, &all_nodes);
    assert!(
        fused_work.has_compute_anchor,
        "the conv is a Many-to-Many anchor"
    );
    assert!(fused_work.flops > 0);
    assert!(fused_work.output_elems > 0);

    // Summing per-node boundary elements over-counts exactly the tensors
    // fusion keeps internal, so the fused block must touch less memory.
    let per_node: u64 = all_nodes
        .iter()
        .map(|&n| model.block_work(&graph, &[n]).boundary_elems)
        .sum();
    assert!(fused_work.boundary_elems < per_node);
}
