//! Light-weight profile-driven fusion plan generation (paper §4.3, Listing 1).
//!
//! The planner repeatedly
//!
//! 1. selects a **fusion seed**: the not-yet-fused One-to-One operator with
//!    the smallest intermediate result,
//! 2. explores fusion candidates recursively along the seed's **successors**
//!    and then its **predecessors**, deciding each candidate with the
//!    mapping-type analysis (green → fuse, red → stop, yellow → consult the
//!    profiling database / latency model), subject to a constraint check
//!    (block size, register-pressure proxy, and block convexity so the fused
//!    graph stays acyclic),
//! 3. closes the block and repeats until no seed remains; remaining operators
//!    become single-operator blocks.

use std::collections::BTreeSet;

use dnnf_graph::{Graph, NodeId, ValueId};
use dnnf_ops::{MappingType, OpKind};
use dnnf_profiledb::{ProfileDatabase, ProfileKey};

use crate::{analyze_pair, CoreError, Ecg, FusionVerdict, LatencyModel};

/// Anchors a block may fuse *through* downstream: reduction-shaped operators
/// that are memory-bound, not compute-bound, so absorbing one costs the
/// block nothing while letting the scalar-tape epilogue **after** it stay in
/// the same block instead of being stranded behind a fusion barrier. Table 3
/// paints a Many-to-Many successor red because a compute-intensive consumer
/// loses its continuous reads — a concern for a second Conv/Gemm, not for a
/// pooling window or a softmax normalization, which read each input a
/// bounded number of times and have no weight panel to disrupt.
///
/// The override is safe for determinism: a fused block executes its steps
/// sequentially against block-local scratch in the same tap/accumulation
/// order as standalone dispatch, so moving one of these anchors inside a
/// block changes only where its output buffer lives, never its bytes (the
/// anchored-DAG differential proptests and the golden model test pin this).
fn fuses_through_anchor(op: OpKind) -> bool {
    matches!(
        op,
        OpKind::MaxPool | OpKind::AveragePool | OpKind::GlobalAveragePool | OpKind::Softmax
    )
}

/// Tunable knobs of the fusion plan exploration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlanOptions {
    /// Maximum number of operators in one fusion block (constraint check —
    /// the paper's "empirically determined threshold" against register
    /// spills).
    pub max_block_ops: usize,
    /// Maximum number of distinct external input tensors a block may read
    /// (register-pressure proxy).
    pub max_external_inputs: usize,
    /// Whether yellow cells consult the profiling database / latency model.
    /// When `false`, yellow cells are fused optimistically (used by ablation
    /// benches).
    pub use_profile: bool,
}

impl Default for PlanOptions {
    fn default() -> Self {
        PlanOptions {
            max_block_ops: 40,
            max_external_inputs: 14,
            use_profile: true,
        }
    }
}

/// One fusion block: a set of operators compiled into a single fused kernel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FusionBlock {
    /// Block index within its plan.
    pub id: usize,
    /// The seed operator the block grew from (`None` for singleton blocks
    /// created for leftover operators).
    pub seed: Option<NodeId>,
    /// Member nodes in topological order.
    pub nodes: Vec<NodeId>,
    /// Mapping type of the fused operator.
    pub mapping_type: MappingType,
}

impl FusionBlock {
    /// Number of operators fused into this block.
    #[must_use]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the block is a single unfused operator.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }
}

/// A complete fusion plan: a partition of the graph's nodes into blocks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FusionPlan {
    blocks: Vec<FusionBlock>,
    node_block: Vec<usize>,
}

impl FusionPlan {
    /// Builds the trivial plan in which every operator is its own block —
    /// the "no fusion" baseline (`OurB` in the paper's evaluation).
    #[must_use]
    pub fn singletons(ecg: &Ecg) -> FusionPlan {
        let graph = ecg.graph();
        let mut blocks = Vec::with_capacity(graph.node_count());
        let mut node_block = vec![0usize; graph.node_count()];
        for (i, n) in graph.topo_order().into_iter().enumerate() {
            node_block[n.index()] = i;
            blocks.push(FusionBlock {
                id: i,
                seed: None,
                nodes: vec![n],
                mapping_type: ecg.mapping_type(n),
            });
        }
        FusionPlan { blocks, node_block }
    }

    /// Builds a plan from an explicit grouping of nodes into blocks — used by
    /// the fixed-pattern fusion baselines (`OurB+`, TVM/MNN/TFLite-style) so
    /// they can be executed and measured by the same runtime.
    ///
    /// Nodes not mentioned in `groups` become singleton blocks.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Plan`] if a node appears in more than one group
    /// or the resulting block graph is cyclic.
    pub fn from_blocks(ecg: &Ecg, groups: Vec<Vec<NodeId>>) -> Result<FusionPlan, CoreError> {
        let graph = ecg.graph();
        let mut node_block = vec![usize::MAX; graph.node_count()];
        let mut blocks = Vec::new();
        for group in groups {
            if group.is_empty() {
                continue;
            }
            let id = blocks.len();
            for &n in &group {
                if node_block[n.index()] != usize::MAX {
                    return Err(CoreError::Plan {
                        reason: format!("node {} assigned to more than one group", n.index()),
                    });
                }
                node_block[n.index()] = id;
            }
            let nodes: Vec<NodeId> = graph
                .topo_order()
                .into_iter()
                .filter(|n| group.contains(n))
                .collect();
            // Fold the members' mapping types pairwise to get the block type.
            let mut mapping = ecg.mapping_type(nodes[0]);
            for &n in nodes.iter().skip(1) {
                mapping = analyze_pair(mapping, ecg.mapping_type(n)).fused_type;
            }
            blocks.push(FusionBlock {
                id,
                seed: None,
                nodes,
                mapping_type: mapping,
            });
        }
        for n in graph.topo_order() {
            if node_block[n.index()] == usize::MAX {
                let id = blocks.len();
                node_block[n.index()] = id;
                blocks.push(FusionBlock {
                    id,
                    seed: None,
                    nodes: vec![n],
                    mapping_type: ecg.mapping_type(n),
                });
            }
        }
        let plan = FusionPlan { blocks, node_block };
        plan.validate(graph)?;
        Ok(plan)
    }

    /// The fusion blocks.
    #[must_use]
    pub fn blocks(&self) -> &[FusionBlock] {
        &self.blocks
    }

    /// Number of fused layers (= number of blocks), the denominator of the
    /// paper's fusion rate.
    #[must_use]
    pub fn fused_layer_count(&self) -> usize {
        self.blocks.len()
    }

    /// Fusion rate = original layer count / fused layer count.
    #[must_use]
    pub fn fusion_rate(&self, graph: &Graph) -> f64 {
        if self.blocks.is_empty() {
            return 1.0;
        }
        graph.node_count() as f64 / self.blocks.len() as f64
    }

    /// Index of the block containing `node`.
    ///
    /// # Panics
    ///
    /// Panics if the node does not belong to the planned graph.
    #[must_use]
    pub fn block_of(&self, node: NodeId) -> usize {
        self.node_block[node.index()]
    }

    /// Number of blocks containing more than one operator.
    #[must_use]
    pub fn multi_op_blocks(&self) -> usize {
        self.blocks.iter().filter(|b| b.len() > 1).count()
    }

    /// Whether a produced value is visible outside its producer's block — a
    /// graph output, a dead end, or consumed by another block. This single
    /// predicate decides what the fused engine materializes, what the memory
    /// planner tracks, and what the cache simulation touches; every layer
    /// must agree on it, so they all call here.
    ///
    /// Values without a producer (graph inputs, weights) return `false`:
    /// they are not block outputs.
    #[must_use]
    pub fn value_escapes(&self, graph: &Graph, value: ValueId) -> bool {
        let v = graph.value(value);
        let Some(producer) = v.producer else {
            return false;
        };
        let producer_block = self.block_of(producer);
        graph.outputs().contains(&value)
            || v.consumers.is_empty()
            || v.consumers
                .iter()
                .any(|&c| self.block_of(c) != producer_block)
    }

    /// Total bytes of intermediate results that still have to be
    /// materialized after fusion: values crossing a block boundary or marked
    /// as graph outputs. This is the paper's post-fusion "IRS size".
    #[must_use]
    pub fn fused_irs_bytes(&self, graph: &Graph) -> u64 {
        graph
            .values()
            .filter(|v| v.is_intermediate() && self.value_escapes(graph, v.id))
            .map(|v| v.size_bytes() as u64)
            .sum()
    }

    /// Values that no longer need to be materialized at all (every consumer
    /// lives in the producer's block) — the ECG's `IR_removable` set.
    #[must_use]
    pub fn removable_values(&self, graph: &Graph) -> Vec<ValueId> {
        graph
            .values()
            .filter(|v| {
                v.is_intermediate()
                    && !graph.outputs().contains(&v.id)
                    && !v.consumers.is_empty()
                    && v.producer.is_some_and(|p| {
                        let pb = self.block_of(p);
                        v.consumers.iter().all(|&c| self.block_of(c) == pb)
                    })
            })
            .map(|v| v.id)
            .collect()
    }

    /// Blocks in an execution (topological) order over the quotient graph.
    #[must_use]
    pub fn execution_order(&self, graph: &Graph) -> Vec<usize> {
        let n = self.blocks.len();
        let mut succs: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); n];
        let mut in_degree = vec![0usize; n];
        for node in graph.nodes() {
            let from = self.block_of(node.id);
            for succ in graph.successors(node.id) {
                let to = self.block_of(succ);
                if from != to && succs[from].insert(to) {
                    in_degree[to] += 1;
                }
            }
        }
        let mut queue: Vec<usize> = (0..n).filter(|&b| in_degree[b] == 0).collect();
        let mut order = Vec::with_capacity(n);
        while let Some(b) = queue.pop() {
            order.push(b);
            for &next in &succs[b] {
                in_degree[next] -= 1;
                if in_degree[next] == 0 {
                    queue.push(next);
                }
            }
        }
        order
    }

    /// Validates the plan: every node in exactly one block and the quotient
    /// graph acyclic.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Plan`] describing the violated invariant.
    pub fn validate(&self, graph: &Graph) -> Result<(), CoreError> {
        let mut seen = vec![false; graph.node_count()];
        for block in &self.blocks {
            for &n in &block.nodes {
                if seen[n.index()] {
                    return Err(CoreError::Plan {
                        reason: format!("node {} assigned to more than one block", n.index()),
                    });
                }
                seen[n.index()] = true;
                if self.node_block[n.index()] != block.id {
                    return Err(CoreError::Plan {
                        reason: format!("node {} block index is inconsistent", n.index()),
                    });
                }
            }
        }
        if seen.iter().any(|&s| !s) {
            return Err(CoreError::Plan {
                reason: "some nodes are not assigned to a block".into(),
            });
        }
        if self.execution_order(graph).len() != self.blocks.len() {
            return Err(CoreError::Plan {
                reason: "fused block graph contains a cycle".into(),
            });
        }
        Ok(())
    }
}

/// Exploration direction relative to the seed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Direction {
    Successor,
    Predecessor,
}

/// The fusion planner (Listing 1 of the paper).
#[derive(Debug)]
pub struct FusionPlanner<'a, L: LatencyModel> {
    ecg: &'a Ecg,
    latency: &'a L,
    options: PlanOptions,
}

impl<'a, L: LatencyModel> FusionPlanner<'a, L> {
    /// Creates a planner over an ECG with a latency model for yellow cells.
    #[must_use]
    pub fn new(ecg: &'a Ecg, latency: &'a L, options: PlanOptions) -> Self {
        FusionPlanner {
            ecg,
            latency,
            options,
        }
    }

    /// Generates the fusion plan, consulting (and extending) the profiling
    /// database for yellow-cell decisions.
    #[must_use]
    pub fn plan(&self, db: &mut ProfileDatabase) -> FusionPlan {
        let graph = self.ecg.graph();
        let node_count = graph.node_count();
        let mut assigned: Vec<Option<usize>> = vec![None; node_count];
        let mut blocks: Vec<FusionBlock> = Vec::new();

        // Step 1 (iterated): pick seeds in order of increasing IRS size.
        // One-to-One operators are preferred (lowest transformation
        // impedance, paper §4.3.1); once they are exhausted, the remaining
        // light-weight mapping types (Reorganize, Shuffle, One-to-Many — e.g.
        // a broadcasted bias Add with no activation after it) may also seed a
        // block so their producers are not stranded unfused.
        loop {
            let graph_nodes = graph.nodes().map(|n| n.id);
            let seed = self
                .ecg
                .one_to_one_nodes()
                .into_iter()
                .filter(|n| assigned[n.index()].is_none())
                .min_by_key(|&n| (self.ecg.node_info(n).output_bytes, n.index()))
                .or_else(|| {
                    graph_nodes
                        .filter(|n| {
                            assigned[n.index()].is_none()
                                && self.ecg.mapping_type(*n) != MappingType::ManyToMany
                        })
                        .min_by_key(|&n| (self.ecg.node_info(n).output_bytes, n.index()))
                });
            let Some(seed) = seed else { break };

            let block_id = blocks.len();
            let mut members: BTreeSet<NodeId> = BTreeSet::new();
            members.insert(seed);
            let mut mapping = self.ecg.mapping_type(seed);

            // Steps 2 and 3: propagate along the seed's predecessors and then
            // its successors. The paper notes the two steps can be swapped;
            // predecessor-first lets the compute-intensive producer (e.g. the
            // Conv feeding a bias/activation seed) join the block before a
            // downstream Many-to-Many operator locks the block's mapping type.
            for pred in graph.predecessors(seed) {
                self.explore(
                    &mut members,
                    &mut mapping,
                    pred,
                    Direction::Predecessor,
                    &assigned,
                    db,
                );
            }
            for succ in graph.successors(seed) {
                self.explore(
                    &mut members,
                    &mut mapping,
                    succ,
                    Direction::Successor,
                    &assigned,
                    db,
                );
            }

            for &n in &members {
                assigned[n.index()] = Some(block_id);
            }
            blocks.push(FusionBlock {
                id: block_id,
                seed: Some(seed),
                nodes: sort_topo(graph, &members),
                mapping_type: mapping,
            });
        }

        // Remaining operators become singleton blocks, in topological order.
        for n in graph.topo_order() {
            if assigned[n.index()].is_none() {
                let block_id = blocks.len();
                assigned[n.index()] = Some(block_id);
                blocks.push(FusionBlock {
                    id: block_id,
                    seed: None,
                    nodes: vec![n],
                    mapping_type: self.ecg.mapping_type(n),
                });
            }
        }

        let node_block = assigned
            .into_iter()
            .map(|b| b.expect("every node assigned"))
            .collect();
        FusionPlan { blocks, node_block }
    }

    /// Recursive candidate exploration (Listing 1, `fuse_successor` /
    /// `fuse_predecessor`).
    fn explore(
        &self,
        members: &mut BTreeSet<NodeId>,
        mapping: &mut MappingType,
        candidate: NodeId,
        direction: Direction,
        assigned: &[Option<usize>],
        db: &mut ProfileDatabase,
    ) {
        if members.contains(&candidate) || assigned[candidate.index()].is_some() {
            return;
        }
        let graph = self.ecg.graph();
        let candidate_type = self.ecg.mapping_type(candidate);
        // Step 2.1: mapping type analysis (Table 3).
        let decision = match direction {
            Direction::Successor => analyze_pair(*mapping, candidate_type),
            Direction::Predecessor => analyze_pair(candidate_type, *mapping),
        };
        if decision.verdict == FusionVerdict::Break
            && !(direction == Direction::Successor
                && fuses_through_anchor(graph.node(candidate).op))
        {
            // Red cell — except for the through-anchor override: a
            // pool/softmax *successor* joins the block anyway (see
            // `fuses_through_anchor`), so the epilogue tape behind it is
            // reachable instead of stranded.
            return;
        }
        // Once the block has absorbed a compute-intensive anchor, stop
        // claiming plain One-to-One operators further up the predecessor
        // chain: those are the natural epilogue of the *previous* anchor's
        // block, and stealing them would strand that anchor in a singleton
        // block (lowering the overall fusion rate). Data-movement operators
        // (Reorganize/Shuffle) and One-to-Many operators feeding the anchor —
        // the paper's "MatMul + Reshape + Transpose + Add" GPT-2 example —
        // are still absorbed.
        if direction == Direction::Predecessor
            && *mapping == MappingType::ManyToMany
            && candidate_type == MappingType::OneToOne
        {
            return;
        }
        // Step 2.2: constraint check (block size, register proxy, convexity).
        if !self.constraints_allow(members, candidate) {
            return;
        }
        if would_break_convexity(graph, members, candidate) {
            return;
        }
        // Step 2.3: profile-based selection for yellow cells.
        if decision.verdict == FusionVerdict::Profile && self.options.use_profile {
            let mut fused: Vec<NodeId> = members.iter().copied().collect();
            fused.push(candidate);
            let fused_latency = db.lookup_or_measure(self.profile_key(&fused), || {
                self.latency.fused_latency_us(graph, &fused)
            });
            let current: Vec<NodeId> = members.iter().copied().collect();
            let block_latency = db.lookup_or_measure(self.profile_key(&current), || {
                self.latency.fused_latency_us(graph, &current)
            });
            let candidate_latency = db.lookup_or_measure(self.profile_key(&[candidate]), || {
                self.latency.fused_latency_us(graph, &[candidate])
            });
            if fused_latency > block_latency + candidate_latency {
                return;
            }
        }
        // Fuse and recurse (Step 2.4).
        members.insert(candidate);
        *mapping = decision.fused_type;
        match direction {
            Direction::Successor => {
                for succ in graph.successors(candidate) {
                    self.explore(members, mapping, succ, Direction::Successor, assigned, db);
                }
            }
            Direction::Predecessor => {
                for pred in graph.predecessors(candidate) {
                    self.explore(members, mapping, pred, Direction::Predecessor, assigned, db);
                }
            }
        }
    }

    fn constraints_allow(&self, members: &BTreeSet<NodeId>, candidate: NodeId) -> bool {
        if members.len() + 1 > self.options.max_block_ops {
            return false;
        }
        // Register-pressure proxy: count distinct external inputs after the
        // candidate joins.
        let graph = self.ecg.graph();
        let mut extended: BTreeSet<NodeId> = members.clone();
        extended.insert(candidate);
        let mut external_inputs: BTreeSet<ValueId> = BTreeSet::new();
        for &n in &extended {
            for &input in &graph.node(n).inputs {
                let produced_inside = graph
                    .value(input)
                    .producer
                    .map(|p| extended.contains(&p))
                    .unwrap_or(false);
                if !produced_inside {
                    external_inputs.insert(input);
                }
            }
        }
        external_inputs.len() <= self.options.max_external_inputs
    }

    fn profile_key(&self, nodes: &[NodeId]) -> ProfileKey {
        block_profile_key(self.ecg.graph(), nodes)
    }
}

/// The profiling-database key for a (candidate) fusion block: its operator
/// names plus the first-output shape of every member. This is the key the
/// planner consults during exploration — exposed so the runtime can record
/// *measured* block latencies under exactly the same keys
/// (`Executor::profile_compiled` in `dnnf-runtime`), letting the next
/// compilation's plan search optimize against host-measured values instead
/// of the analytic model.
#[must_use]
pub fn block_profile_key(graph: &Graph, nodes: &[NodeId]) -> ProfileKey {
    let ops: Vec<String> = nodes
        .iter()
        .map(|&n| graph.node(n).op.name().to_string())
        .collect();
    let shapes: Vec<String> = nodes
        .iter()
        .filter_map(|&n| graph.node(n).outputs.first().copied())
        .map(|v| graph.value(v).shape.to_string())
        .collect();
    ProfileKey::new(ops, shapes.join(";"))
}

/// Sorts a node set into the graph's topological order.
fn sort_topo(graph: &Graph, members: &BTreeSet<NodeId>) -> Vec<NodeId> {
    graph
        .topo_order()
        .into_iter()
        .filter(|n| members.contains(n))
        .collect()
}

/// Returns `true` if adding `candidate` to the convex set `members` would
/// break convexity, i.e. some path between the set and the candidate passes
/// through an outside node — which would make the fused block graph cyclic.
fn would_break_convexity(graph: &Graph, members: &BTreeSet<NodeId>, candidate: NodeId) -> bool {
    let mut extended: BTreeSet<NodeId> = members.clone();
    extended.insert(candidate);
    // Paths from the set to the candidate.
    let desc_of_set = reachable(graph, members.iter().copied(), |g, n| g.successors(n));
    let anc_of_candidate = reachable(graph, [candidate], |g, n| g.predecessors(n));
    if desc_of_set
        .intersection(&anc_of_candidate)
        .any(|n| !extended.contains(n))
    {
        return true;
    }
    // Paths from the candidate to the set.
    let desc_of_candidate = reachable(graph, [candidate], |g, n| g.successors(n));
    let anc_of_set = reachable(graph, members.iter().copied(), |g, n| g.predecessors(n));
    desc_of_candidate
        .intersection(&anc_of_set)
        .any(|n| !extended.contains(n))
}

fn reachable(
    graph: &Graph,
    start: impl IntoIterator<Item = NodeId>,
    next: impl Fn(&Graph, NodeId) -> Vec<NodeId>,
) -> BTreeSet<NodeId> {
    let mut stack: Vec<NodeId> = start.into_iter().collect();
    let mut seen: BTreeSet<NodeId> = BTreeSet::new();
    while let Some(n) = stack.pop() {
        for m in next(graph, n) {
            if seen.insert(m) {
                stack.push(m);
            }
        }
    }
    seen
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AnalyticLatencyModel;
    use dnnf_ops::{Attrs, OpKind};
    use dnnf_tensor::Shape;

    fn plan_graph(graph: &Graph) -> FusionPlan {
        let ecg = Ecg::new(graph.clone());
        let model = AnalyticLatencyModel::default();
        let planner = FusionPlanner::new(&ecg, &model, PlanOptions::default());
        let mut db = ProfileDatabase::new();
        let plan = planner.plan(&mut db);
        plan.validate(graph).unwrap();
        plan
    }

    /// Conv -> Add(bias) -> Relu -> Mul -> Sub, plus a separate GEMM joining
    /// at the Mul — the example of Figure 3.
    fn figure3_graph() -> Graph {
        let mut g = Graph::new("figure3");
        let x = g.add_input("x", Shape::new(vec![1, 8, 8, 8]));
        let add_c = g.add_weight("add.c", Shape::new(vec![1, 8, 8, 8]));
        let add = g
            .add_op(OpKind::Add, Attrs::new(), &[x, add_c], "add")
            .unwrap()[0];
        let w = g.add_weight("conv.w", Shape::new(vec![8, 8, 3, 3]));
        let conv = g
            .add_op(
                OpKind::Conv,
                Attrs::new().with_ints("pads", vec![1, 1, 1, 1]),
                &[add, w],
                "conv",
            )
            .unwrap()[0];
        let relu = g
            .add_op(OpKind::Relu, Attrs::new(), &[conv], "relu")
            .unwrap()[0];
        // A separate GEMM branch that merges into Mul.
        let a = g.add_input("a", Shape::new(vec![64, 8]));
        let b = g.add_weight("gemm.b", Shape::new(vec![8, 8]));
        let gemm = g
            .add_op(OpKind::Gemm, Attrs::new(), &[a, b], "gemm")
            .unwrap()[0];
        let gemm_r = g
            .add_op(
                OpKind::Reshape,
                Attrs::new().with_ints("shape", vec![1, 8, 8, 8]),
                &[gemm],
                "reshape",
            )
            .unwrap()[0];
        let mul = g
            .add_op(OpKind::Mul, Attrs::new(), &[relu, gemm_r], "mul")
            .unwrap()[0];
        let sub_c = g.add_weight("sub.c", Shape::new(vec![1, 8, 8, 8]));
        let sub = g
            .add_op(OpKind::Sub, Attrs::new(), &[mul, sub_c], "sub")
            .unwrap()[0];
        g.mark_output(sub);
        g
    }

    #[test]
    fn conv_bias_relu_fuses_into_one_block() {
        let mut g = Graph::new("cbr");
        let x = g.add_input("x", Shape::new(vec![1, 8, 16, 16]));
        let w = g.add_weight("w", Shape::new(vec![8, 8, 3, 3]));
        let c = g
            .add_op(
                OpKind::Conv,
                Attrs::new().with_ints("pads", vec![1, 1, 1, 1]),
                &[x, w],
                "conv",
            )
            .unwrap()[0];
        let b = g.add_weight("b", Shape::new(vec![1, 8, 1, 1]));
        let bias = g
            .add_op(OpKind::Add, Attrs::new(), &[c, b], "bias")
            .unwrap()[0];
        let r = g
            .add_op(OpKind::Relu, Attrs::new(), &[bias], "relu")
            .unwrap()[0];
        g.mark_output(r);
        let plan = plan_graph(&g);
        assert_eq!(plan.fused_layer_count(), 1);
        assert_eq!(plan.blocks()[0].mapping_type, MappingType::ManyToMany);
        assert!((plan.fusion_rate(&g) - 3.0).abs() < 1e-9);
    }

    #[test]
    fn epilogues_fuse_through_pool_anchors() {
        // Conv -> bias -> Relu -> MaxPool -> Mul(scale) -> Conv: the pool is
        // a Many-to-Many successor (a red cell), but the through-anchor
        // override absorbs it, so the scalar epilogue behind it joins the
        // conv's block instead of being stranded. The trailing conv stays a
        // hard barrier.
        let mut g = Graph::new("through-pool");
        let x = g.add_input("x", Shape::new(vec![1, 8, 16, 16]));
        let w = g.add_weight("w", Shape::new(vec![8, 8, 3, 3]));
        let c = g
            .add_op(
                OpKind::Conv,
                Attrs::new().with_ints("pads", vec![1, 1, 1, 1]),
                &[x, w],
                "conv",
            )
            .unwrap()[0];
        let b = g.add_weight("b", Shape::new(vec![1, 8, 1, 1]));
        let bias = g
            .add_op(OpKind::Add, Attrs::new(), &[c, b], "bias")
            .unwrap()[0];
        let r = g
            .add_op(OpKind::Relu, Attrs::new(), &[bias], "relu")
            .unwrap()[0];
        let p = g
            .add_op(
                OpKind::MaxPool,
                Attrs::new()
                    .with_ints("kernel_shape", vec![2, 2])
                    .with_ints("strides", vec![2, 2]),
                &[r],
                "pool",
            )
            .unwrap()[0];
        let s = g.add_weight("scale", Shape::new(vec![1, 8, 1, 1]));
        let scaled = g
            .add_op(OpKind::Mul, Attrs::new(), &[p, s], "scale_mul")
            .unwrap()[0];
        let w2 = g.add_weight("w2", Shape::new(vec![8, 8, 3, 3]));
        let c2 = g
            .add_op(OpKind::Conv, Attrs::new(), &[scaled, w2], "conv2")
            .unwrap()[0];
        g.mark_output(c2);

        let plan = plan_graph(&g);
        let block_of = |name: &str| plan.block_of(g.nodes().find(|n| n.name == name).unwrap().id);
        assert_eq!(block_of("conv"), block_of("pool"), "pool joins the block");
        assert_eq!(
            block_of("pool"),
            block_of("scale_mul"),
            "the epilogue behind the pool is not stranded"
        );
        assert_ne!(
            block_of("conv"),
            block_of("conv2"),
            "a second conv is still a barrier"
        );
    }

    #[test]
    fn softmax_joins_its_producer_block_but_never_as_a_predecessor() {
        // Gemm -> Add -> Softmax (the classifier-tail shape): Softmax is a
        // Many-to-Many successor of the Gemm-anchored block — a red cell —
        // but the override absorbs it, so the whole tail is one block.
        let mut g = Graph::new("through-softmax");
        let x = g.add_input("x", Shape::new(vec![4, 16]));
        let w = g.add_weight("w", Shape::new(vec![16, 16]));
        let mm = g
            .add_op(OpKind::Gemm, Attrs::new(), &[x, w], "gemm")
            .unwrap()[0];
        let b = g.add_weight("b", Shape::new(vec![16]));
        let biased = g
            .add_op(OpKind::Add, Attrs::new(), &[mm, b], "bias")
            .unwrap()[0];
        let sm = g
            .add_op(
                OpKind::Softmax,
                Attrs::new().with_int("axis", 1),
                &[biased],
                "softmax",
            )
            .unwrap()[0];
        g.mark_output(sm);
        let plan = plan_graph(&g);
        let block_of = |name: &str| plan.block_of(g.nodes().find(|n| n.name == name).unwrap().id);
        assert_eq!(block_of("gemm"), block_of("bias"));
        assert_eq!(block_of("bias"), block_of("softmax"));

        // Predecessor direction gets no override: a block growing upstream
        // into a pool/softmax still stops at the red cell. Pool -> Conv ->
        // Relu: the conv block must not swallow the upstream pool.
        let mut g = Graph::new("pool-upstream");
        let x = g.add_input("x", Shape::new(vec![1, 4, 16, 16]));
        let p = g
            .add_op(
                OpKind::MaxPool,
                Attrs::new()
                    .with_ints("kernel_shape", vec![2, 2])
                    .with_ints("strides", vec![2, 2]),
                &[x],
                "pool",
            )
            .unwrap()[0];
        let w = g.add_weight("w", Shape::new(vec![4, 4, 3, 3]));
        let c = g
            .add_op(
                OpKind::Conv,
                Attrs::new().with_ints("pads", vec![1, 1, 1, 1]),
                &[p, w],
                "conv",
            )
            .unwrap()[0];
        let r = g.add_op(OpKind::Relu, Attrs::new(), &[c], "relu").unwrap()[0];
        g.mark_output(r);
        let plan = plan_graph(&g);
        let pool_id = g.nodes().find(|n| n.name == "pool").unwrap().id;
        let conv_id = g.nodes().find(|n| n.name == "conv").unwrap().id;
        assert_ne!(
            plan.block_of(pool_id),
            plan.block_of(conv_id),
            "upstream pools stay outside — the override is successor-only"
        );
    }

    #[test]
    fn two_convs_never_fuse_together() {
        let mut g = Graph::new("two-convs");
        let x = g.add_input("x", Shape::new(vec![1, 4, 8, 8]));
        let w1 = g.add_weight("w1", Shape::new(vec![4, 4, 3, 3]));
        let w2 = g.add_weight("w2", Shape::new(vec![4, 4, 3, 3]));
        let c1 = g
            .add_op(
                OpKind::Conv,
                Attrs::new().with_ints("pads", vec![1, 1, 1, 1]),
                &[x, w1],
                "c1",
            )
            .unwrap()[0];
        let r1 = g.add_op(OpKind::Relu, Attrs::new(), &[c1], "r1").unwrap()[0];
        let c2 = g
            .add_op(
                OpKind::Conv,
                Attrs::new().with_ints("pads", vec![1, 1, 1, 1]),
                &[r1, w2],
                "c2",
            )
            .unwrap()[0];
        let r2 = g.add_op(OpKind::Relu, Attrs::new(), &[c2], "r2").unwrap()[0];
        g.mark_output(r2);
        let plan = plan_graph(&g);
        assert_eq!(plan.fused_layer_count(), 2);
        // The two convs must land in different blocks.
        let conv_blocks: Vec<usize> = g
            .nodes()
            .filter(|n| n.op == OpKind::Conv)
            .map(|n| plan.block_of(n.id))
            .collect();
        assert_ne!(conv_blocks[0], conv_blocks[1]);
    }

    #[test]
    fn figure3_example_keeps_gemm_outside_the_seed_block() {
        let g = figure3_graph();
        let plan = plan_graph(&g);
        // The GEMM (Many-to-Many) cannot join the block that already absorbed
        // the Conv (fused type Many-to-Many): Table 3's red cell.
        let gemm = g.nodes().find(|n| n.op == OpKind::Gemm).unwrap().id;
        let conv = g.nodes().find(|n| n.op == OpKind::Conv).unwrap().id;
        assert_ne!(plan.block_of(gemm), plan.block_of(conv));
        // But Add/Relu/Mul/Sub all join the conv block (Figure 3's result).
        for name in ["add", "relu", "mul", "sub"] {
            let n = g.nodes().find(|n| n.name == name).unwrap().id;
            assert_eq!(
                plan.block_of(n),
                plan.block_of(conv),
                "{name} should fuse with conv"
            );
        }
        assert!(plan.fused_layer_count() < g.node_count());
    }

    #[test]
    fn fused_irs_bytes_shrinks_versus_original() {
        let g = figure3_graph();
        let plan = plan_graph(&g);
        let original: u64 = g
            .values()
            .filter(|v| v.is_intermediate())
            .map(|v| v.size_bytes() as u64)
            .sum();
        assert!(plan.fused_irs_bytes(&g) < original);
        assert!(!plan.removable_values(&g).is_empty());
    }

    #[test]
    fn execution_order_respects_dependencies() {
        let g = figure3_graph();
        let plan = plan_graph(&g);
        let order = plan.execution_order(&g);
        assert_eq!(order.len(), plan.fused_layer_count());
        // The block containing the final Sub must come last.
        let sub = g.nodes().find(|n| n.op == OpKind::Sub).unwrap().id;
        assert_eq!(*order.last().unwrap(), plan.block_of(sub));
    }

    #[test]
    fn convexity_check_prevents_cyclic_blocks() {
        // a -> conv -> b ; a -> b  (b = Add(conv_out, relu_out)). Fusing
        // {a, b} without conv would create a cycle between the block and conv.
        let mut g = Graph::new("convexity");
        let x = g.add_input("x", Shape::new(vec![1, 4, 8, 8]));
        let a = g.add_op(OpKind::Relu, Attrs::new(), &[x], "a").unwrap()[0];
        let w = g.add_weight("w", Shape::new(vec![4, 4, 3, 3]));
        let conv = g
            .add_op(
                OpKind::Conv,
                Attrs::new().with_ints("pads", vec![1, 1, 1, 1]),
                &[a, w],
                "conv",
            )
            .unwrap()[0];
        let b = g
            .add_op(OpKind::Add, Attrs::new(), &[a, conv], "b")
            .unwrap()[0];
        g.mark_output(b);
        let plan = plan_graph(&g);
        plan.validate(&g).unwrap();
        // Either the conv joined the same block (fine) or a/b are split; in
        // both cases the quotient graph must be acyclic, which validate()
        // already asserts. Additionally the plan must cover all 3 nodes.
        let covered: usize = plan.blocks().iter().map(FusionBlock::len).sum();
        assert_eq!(covered, 3);
    }

    #[test]
    fn max_block_ops_constraint_is_respected() {
        let mut g = Graph::new("long-chain");
        let mut v = g.add_input("x", Shape::new(vec![64]));
        for i in 0..20 {
            v = g
                .add_op(OpKind::Relu, Attrs::new(), &[v], format!("r{i}"))
                .unwrap()[0];
        }
        g.mark_output(v);
        let ecg = Ecg::new(g.clone());
        let model = AnalyticLatencyModel::default();
        let opts = PlanOptions {
            max_block_ops: 5,
            ..PlanOptions::default()
        };
        let planner = FusionPlanner::new(&ecg, &model, opts);
        let mut db = ProfileDatabase::new();
        let plan = planner.plan(&mut db);
        plan.validate(&g).unwrap();
        assert!(plan.blocks().iter().all(|b| b.len() <= 5));
        assert!(plan.fused_layer_count() >= 4);
    }

    #[test]
    fn profiling_database_is_populated_by_yellow_decisions() {
        // Conv -> Upsample (Many-to-Many then One-to-Many) is a yellow cell.
        let mut g = Graph::new("yellow");
        let x = g.add_input("x", Shape::new(vec![1, 4, 8, 8]));
        let w = g.add_weight("w", Shape::new(vec![4, 4, 3, 3]));
        let c = g
            .add_op(
                OpKind::Conv,
                Attrs::new().with_ints("pads", vec![1, 1, 1, 1]),
                &[x, w],
                "conv",
            )
            .unwrap()[0];
        let r = g.add_op(OpKind::Relu, Attrs::new(), &[c], "relu").unwrap()[0];
        let up = g
            .add_op(
                OpKind::Upsample,
                Attrs::new().with_floats("scales", vec![1.0, 1.0, 2.0, 2.0]),
                &[r],
                "up",
            )
            .unwrap()[0];
        g.mark_output(up);
        let ecg = Ecg::new(g.clone());
        let model = AnalyticLatencyModel::default();
        let planner = FusionPlanner::new(&ecg, &model, PlanOptions::default());
        let mut db = ProfileDatabase::new();
        let plan = planner.plan(&mut db);
        plan.validate(&g).unwrap();
        assert!(
            !db.is_empty(),
            "yellow decision should have recorded profile entries"
        );
    }

    #[test]
    fn plan_covers_graphs_without_one_to_one_seeds() {
        let mut g = Graph::new("no-seed");
        let x = g.add_input("x", Shape::new(vec![4, 8]));
        let w = g.add_weight("w", Shape::new(vec![8, 8]));
        let m = g
            .add_op(OpKind::MatMul, Attrs::new(), &[x, w], "mm")
            .unwrap()[0];
        let s = g.add_op(OpKind::Softmax, Attrs::new(), &[m], "sm").unwrap()[0];
        g.mark_output(s);
        let plan = plan_graph(&g);
        assert_eq!(plan.fused_layer_count(), 2);
        assert!(plan.blocks().iter().all(|b| b.seed.is_none()));
    }
}
