//! The request queue + worker pool server.

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

use dnnf_core::{CompiledModel, Compiler, CompilerOptions};
use dnnf_runtime::{Executor, PlanCache};
use dnnf_tensor::{Shape, Tensor};

use crate::{ServeConfig, ServeError};

/// One completed inference, as handed back through a [`Ticket`].
#[derive(Debug, Clone, PartialEq)]
pub struct Response {
    /// Output tensors for **this request's rows only**, in the model's
    /// output order — batching with other requests never changes them
    /// (bit-identical, see the crate docs).
    pub outputs: Vec<Tensor>,
    /// How many requests the dispatch that served this one coalesced
    /// (1 = the request ran alone).
    pub coalesced: usize,
    /// Total batch rows in that dispatch (≥ this request's rows).
    pub batch_rows: usize,
}

/// A pending response: block on [`Ticket::wait`] to receive it.
#[derive(Debug)]
pub struct Ticket {
    rx: mpsc::Receiver<Result<Response, ServeError>>,
}

impl Ticket {
    /// Blocks until the server answers this request.
    ///
    /// # Errors
    ///
    /// Returns the request's [`ServeError`]; if the server was torn down
    /// before answering, [`ServeError::ShuttingDown`].
    pub fn wait(self) -> Result<Response, ServeError> {
        self.rx.recv().unwrap_or(Err(ServeError::ShuttingDown))
    }
}

/// Counters for one hosted model (see [`Server::stats`]).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ModelStats {
    /// Model name.
    pub model: String,
    /// Requests admitted to the queue.
    pub submitted: u64,
    /// Requests rejected by backpressure ([`ServeError::QueueFull`]).
    pub rejected: u64,
    /// Requests answered successfully.
    pub completed: u64,
    /// Requests answered with an engine error.
    pub failed: u64,
    /// Dispatches run (each executes one coalesced batch).
    pub batches: u64,
    /// Sum of requests over all dispatches (`coalesced_requests / batches`
    /// is the mean coalescing factor).
    pub coalesced_requests: u64,
    /// Largest number of requests one dispatch coalesced.
    pub max_coalesced: u64,
    /// Requests currently queued.
    pub pending: usize,
}

/// Snapshot of every hosted model's counters.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ServerStats {
    /// Per-model counters, in registration order.
    pub models: Vec<ModelStats>,
}

impl ServerStats {
    /// The counters for one model, by name.
    #[must_use]
    pub fn model(&self, name: &str) -> Option<&ModelStats> {
        self.models.iter().find(|m| m.model == name)
    }
}

/// One queued request.
struct Pending {
    rows: usize,
    /// Input tensors in graph-input order.
    inputs: Vec<Tensor>,
    reply: mpsc::Sender<Result<Response, ServeError>>,
    enqueued: Instant,
}

/// A hosted model and its counters.
struct Registered {
    name: String,
    model: Arc<CompiledModel>,
    /// Graph input names, in graph order.
    input_names: Vec<String>,
    /// Per input, the dims after the leading batch dimension.
    input_tails: Vec<Vec<usize>>,
    submitted: AtomicU64,
    rejected: AtomicU64,
    completed: AtomicU64,
    failed: AtomicU64,
    batches: AtomicU64,
    coalesced_requests: AtomicU64,
    max_coalesced: AtomicU64,
}

struct State {
    /// One queue per registered model (same index as `Shared::models`).
    queues: Vec<VecDeque<Pending>>,
    shutdown: bool,
}

struct Shared {
    config: ServeConfig,
    models: Vec<Registered>,
    index: BTreeMap<String, usize>,
    state: Mutex<State>,
    cvar: Condvar,
}

/// Registers models before the worker pool starts (queues and the worker
/// count are fixed for the server's lifetime — no locking surprises later).
pub struct ServerBuilder {
    config: ServeConfig,
    models: Vec<Registered>,
    index: BTreeMap<String, usize>,
}

impl ServerBuilder {
    /// Hosts `model` under `name`.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::BadRequest`] when the name is already taken,
    /// the model has no inputs, or an input is rank-0 (no batch dimension
    /// to coalesce along).
    pub fn model(
        mut self,
        name: impl Into<String>,
        model: Arc<CompiledModel>,
    ) -> Result<Self, ServeError> {
        let name = name.into();
        if self.index.contains_key(&name) {
            return Err(ServeError::BadRequest {
                reason: format!("model `{name}` is already registered"),
            });
        }
        let graph = model.graph();
        if graph.inputs().is_empty() {
            return Err(ServeError::BadRequest {
                reason: format!("model `{name}` has no inputs to serve"),
            });
        }
        let mut input_names = Vec::new();
        let mut input_tails = Vec::new();
        for &id in graph.inputs() {
            let value = graph.value(id);
            if value.shape.rank() == 0 {
                return Err(ServeError::BadRequest {
                    reason: format!(
                        "model `{name}` input `{}` is rank-0 and has no batch dimension",
                        value.name
                    ),
                });
            }
            input_names.push(value.name.clone());
            input_tails.push(value.shape.dims()[1..].to_vec());
        }
        self.index.insert(name.clone(), self.models.len());
        self.models.push(Registered {
            name,
            model,
            input_names,
            input_tails,
            submitted: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            failed: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            coalesced_requests: AtomicU64::new(0),
            max_coalesced: AtomicU64::new(0),
        });
        Ok(self)
    }

    /// Hosts the graph stored in the `.dnnfg` file at `path` under `name`.
    ///
    /// The file is parsed with the strict importer of `dnnf-io` (see
    /// `docs/graph-format.md`), compiled through the process-wide
    /// [`PlanCache`] under a **batch-polymorphic** key
    /// ([`PlanCache::compile_batched`]), and registered exactly as
    /// [`ServerBuilder::model`] would — so a tenant loaded from disk serves
    /// bit-identical responses to one built and compiled in memory.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::ModelLoad`] when the file cannot be read,
    /// fails strict import, or fails to compile; and the same
    /// [`ServeError::BadRequest`] cases as [`ServerBuilder::model`] (name
    /// taken, no inputs, rank-0 input).
    pub fn model_from_dnnfg(
        self,
        name: impl Into<String>,
        path: impl AsRef<std::path::Path>,
    ) -> Result<Self, ServeError> {
        let path = path.as_ref();
        let load_error = |message: String| ServeError::ModelLoad {
            path: path.display().to_string(),
            message,
        };
        let graph = dnnf_io::load(path).map_err(|e| load_error(e.to_string()))?;
        let mut compiler = Compiler::new(CompilerOptions::default());
        let (model, _) = PlanCache::global()
            .compile_batched(&mut compiler, &graph)
            .map_err(|e| load_error(format!("compile failed: {e}")))?;
        self.model(name, model)
    }

    /// Starts the worker pool and returns the running server.
    #[must_use]
    pub fn start(self) -> Server {
        let queues = self.models.iter().map(|_| VecDeque::new()).collect();
        let shared = Arc::new(Shared {
            config: self.config,
            models: self.models,
            index: self.index,
            state: Mutex::new(State {
                queues,
                shutdown: false,
            }),
            cvar: Condvar::new(),
        });
        let workers = (0..shared.config.workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("dnnf-serve-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn serve worker")
            })
            .collect();
        Server { shared, workers }
    }
}

/// A running multi-tenant inference server (see the crate docs).
pub struct Server {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Starts describing a server; chain [`ServerBuilder::model`] calls and
    /// finish with [`ServerBuilder::start`].
    #[must_use]
    pub fn builder(config: ServeConfig) -> ServerBuilder {
        ServerBuilder {
            config: config.normalized(),
            models: Vec::new(),
            index: BTreeMap::new(),
        }
    }

    /// Submits an inference request: `inputs` maps each of the model's
    /// input names to a tensor of shape `[rows, tail…]`, where `tail` is
    /// the input's shape beyond the batch dimension and `rows` (1 ≤ rows ≤
    /// [`ServeConfig::max_batch`]) is the same for every input. Entries for
    /// names the model does not declare are ignored.
    ///
    /// Admission is checked here — the call never blocks on a full queue.
    /// On success the request is queued and the returned [`Ticket`] resolves
    /// once a worker has dispatched (and possibly coalesced) it.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownModel`], [`ServeError::BadRequest`] (missing
    /// input, wrong shape, inconsistent or oversized batch),
    /// [`ServeError::QueueFull`] (backpressure) or
    /// [`ServeError::ShuttingDown`].
    pub fn submit(
        &self,
        model: &str,
        inputs: HashMap<String, Tensor>,
    ) -> Result<Ticket, ServeError> {
        let &idx = self
            .shared
            .index
            .get(model)
            .ok_or_else(|| ServeError::UnknownModel {
                model: model.to_string(),
            })?;
        let registered = &self.shared.models[idx];

        let mut rows: Option<usize> = None;
        let mut ordered = Vec::with_capacity(registered.input_names.len());
        for (name, tail) in registered.input_names.iter().zip(&registered.input_tails) {
            let tensor = inputs.get(name).ok_or_else(|| ServeError::BadRequest {
                reason: format!("missing input `{name}`"),
            })?;
            let dims = tensor.shape().dims();
            if dims.is_empty() || &dims[1..] != tail.as_slice() {
                return Err(ServeError::BadRequest {
                    reason: format!(
                        "input `{name}` must be shaped [rows, {tail:?}…], got {dims:?}"
                    ),
                });
            }
            match rows {
                None => rows = Some(dims[0]),
                Some(r) if r != dims[0] => {
                    return Err(ServeError::BadRequest {
                        reason: format!(
                            "inputs disagree on batch size: `{name}` has {} rows, expected {r}",
                            dims[0]
                        ),
                    });
                }
                Some(_) => {}
            }
            ordered.push(tensor.clone());
        }
        let rows = rows.expect("models always have at least one input");
        if rows == 0 {
            return Err(ServeError::BadRequest {
                reason: "request carries zero batch rows".into(),
            });
        }
        if rows > self.shared.config.max_batch {
            return Err(ServeError::BadRequest {
                reason: format!(
                    "request carries {rows} rows, above max_batch {}",
                    self.shared.config.max_batch
                ),
            });
        }

        let (tx, rx) = mpsc::channel();
        {
            let mut state = self.shared.state.lock().expect("serve state lock");
            if state.shutdown {
                return Err(ServeError::ShuttingDown);
            }
            if state.queues[idx].len() >= self.shared.config.queue_capacity {
                registered.rejected.fetch_add(1, Ordering::Relaxed);
                return Err(ServeError::QueueFull {
                    model: registered.name.clone(),
                    capacity: self.shared.config.queue_capacity,
                });
            }
            state.queues[idx].push_back(Pending {
                rows,
                inputs: ordered,
                reply: tx,
                enqueued: Instant::now(),
            });
        }
        registered.submitted.fetch_add(1, Ordering::Relaxed);
        self.shared.cvar.notify_one();
        Ok(Ticket { rx })
    }

    /// Snapshot of every model's counters.
    #[must_use]
    pub fn stats(&self) -> ServerStats {
        let state = self.shared.state.lock().expect("serve state lock");
        ServerStats {
            models: self
                .shared
                .models
                .iter()
                .enumerate()
                .map(|(i, m)| ModelStats {
                    model: m.name.clone(),
                    submitted: m.submitted.load(Ordering::Relaxed),
                    rejected: m.rejected.load(Ordering::Relaxed),
                    completed: m.completed.load(Ordering::Relaxed),
                    failed: m.failed.load(Ordering::Relaxed),
                    batches: m.batches.load(Ordering::Relaxed),
                    coalesced_requests: m.coalesced_requests.load(Ordering::Relaxed),
                    max_coalesced: m.max_coalesced.load(Ordering::Relaxed),
                    pending: state.queues[i].len(),
                })
                .collect(),
        }
    }

    /// The names of the hosted models, in registration order.
    #[must_use]
    pub fn model_names(&self) -> Vec<String> {
        self.shared.models.iter().map(|m| m.name.clone()).collect()
    }

    /// Gracefully shuts down: already-queued requests are drained and
    /// answered (workers skip the batching window once shutdown begins),
    /// new submits fail with [`ServeError::ShuttingDown`], and the worker
    /// threads are joined. With `workers = 0` the queue cannot drain;
    /// whatever is still pending is answered with
    /// [`ServeError::ShuttingDown`].
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        {
            let mut state = self.shared.state.lock().expect("serve state lock");
            state.shutdown = true;
        }
        self.shared.cvar.notify_all();
        for worker in self.workers.drain(..) {
            worker.join().expect("serve worker panicked");
        }
        // With no workers (or after they exited) anything left gets an
        // explicit shutdown answer rather than a dropped channel.
        let mut state = self.shared.state.lock().expect("serve state lock");
        for queue in &mut state.queues {
            for pending in queue.drain(..) {
                let _ = pending.reply.send(Err(ServeError::ShuttingDown));
            }
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        if !self.workers.is_empty() || !self.shared.state.lock().map_or(true, |s| s.shutdown) {
            self.shutdown_inner();
        }
    }
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("models", &self.shared.models.len())
            .field("workers", &self.workers.len())
            .finish()
    }
}

/// Pops a coalesced batch off one model's queue: requests from the front,
/// greedily, while the combined rows fit `max_batch` (always at least one —
/// admission guarantees any single request fits).
fn extract_batch(queue: &mut VecDeque<Pending>, max_batch: usize) -> Vec<Pending> {
    let mut batch = Vec::new();
    let mut rows = 0;
    while let Some(front) = queue.front() {
        if !batch.is_empty() && rows + front.rows > max_batch {
            break;
        }
        rows += front.rows;
        batch.push(queue.pop_front().expect("front exists"));
        if rows >= max_batch {
            break;
        }
    }
    batch
}

/// Whether any queue currently satisfies a dispatch condition (batching
/// window expired, waiting rows filling a batch, or shutdown drain). Used
/// by a worker that just claimed a batch to decide whether to pass its
/// wakeup on to a sleeping peer.
fn any_dispatchable(state: &State, shared: &Shared, now: Instant) -> bool {
    state.queues.iter().any(|queue| {
        let Some(front) = queue.front() else {
            return false;
        };
        state.shutdown
            || now >= front.enqueued + shared.config.batch_window
            || queue.iter().map(|p| p.rows).sum::<usize>() >= shared.config.max_batch
    })
}

fn worker_loop(shared: &Shared) {
    let executor = {
        let e = Executor::new(shared.config.device.clone()).with_options(shared.config.exec);
        if shared.config.simulate_cache {
            e
        } else {
            e.without_cache_simulation()
        }
    };
    let queue_count = shared.models.len();
    let mut state = shared.state.lock().expect("serve state lock");
    // Where the next readiness scan begins. Rotated to just past the last
    // dispatched model, so under sustained load every ready queue is served
    // in turn — a fixed low-to-high scan would let a saturated tenant 0
    // (always ready by row count) starve every later-registered tenant.
    let mut scan_start = 0usize;
    loop {
        let now = Instant::now();
        // A model is dispatchable once its oldest request's batching window
        // expired, its waiting rows already fill a batch, or the server is
        // draining for shutdown. Otherwise remember the earliest deadline
        // to sleep until.
        let mut dispatchable = None;
        let mut earliest_deadline: Option<Instant> = None;
        for k in 0..queue_count {
            let idx = (scan_start + k) % queue_count;
            let queue = &state.queues[idx];
            let Some(front) = queue.front() else { continue };
            let deadline = front.enqueued + shared.config.batch_window;
            let rows_waiting: usize = queue.iter().map(|p| p.rows).sum();
            if state.shutdown || now >= deadline || rows_waiting >= shared.config.max_batch {
                dispatchable = Some(idx);
                break;
            }
            if earliest_deadline.is_none_or(|d| deadline < d) {
                earliest_deadline = Some(deadline);
            }
        }

        if let Some(idx) = dispatchable {
            scan_start = (idx + 1) % queue_count;
            let batch = extract_batch(&mut state.queues[idx], shared.config.max_batch);
            // `submit` only ever wakes one worker per request. If another
            // queue (or the remainder of this one) is already dispatchable,
            // hand the wakeup on before going off to execute — otherwise a
            // sleeping peer stays parked until its batch-window timeout and
            // ready tenants drain serially instead of concurrently.
            if any_dispatchable(&state, shared, now) {
                shared.cvar.notify_one();
            }
            drop(state);
            dispatch(&shared.models[idx], batch, &executor);
            state = shared.state.lock().expect("serve state lock");
        } else if let Some(deadline) = earliest_deadline {
            let timeout = deadline.saturating_duration_since(Instant::now());
            state = shared
                .cvar
                .wait_timeout(state, timeout)
                .expect("serve state lock")
                .0;
        } else if state.shutdown {
            return;
        } else {
            state = shared.cvar.wait(state).expect("serve state lock");
        }
    }
}

/// Executes one coalesced batch and fans the outputs back out, one
/// row-slice per request. Requests are concatenated along the batch
/// dimension (row-major tensors: a plain append) and split back the same
/// way, so each request's rows occupy a contiguous range.
fn dispatch(registered: &Registered, batch: Vec<Pending>, executor: &Executor) {
    if batch.is_empty() {
        return;
    }
    let total_rows: usize = batch.iter().map(|p| p.rows).sum();
    let coalesced = batch.len();
    registered.batches.fetch_add(1, Ordering::Relaxed);
    registered
        .coalesced_requests
        .fetch_add(coalesced as u64, Ordering::Relaxed);
    registered
        .max_coalesced
        .fetch_max(coalesced as u64, Ordering::Relaxed);

    let mut inputs = HashMap::with_capacity(registered.input_names.len());
    for (i, (name, tail)) in registered
        .input_names
        .iter()
        .zip(&registered.input_tails)
        .enumerate()
    {
        let tail_elems: usize = tail.iter().product::<usize>().max(1);
        let mut data = Vec::with_capacity(total_rows * tail_elems);
        for pending in &batch {
            data.extend_from_slice(pending.inputs[i].data());
        }
        let mut dims = Vec::with_capacity(tail.len() + 1);
        dims.push(total_rows);
        dims.extend_from_slice(tail);
        let tensor = Tensor::from_vec(Shape::new(dims), data)
            .expect("admission validated every request's input shape");
        inputs.insert(name.clone(), tensor);
    }

    let report = match executor.run_compiled_batched(&registered.model, &inputs) {
        Ok(report) => report,
        Err(e) => {
            let message = e.to_string();
            registered
                .failed
                .fetch_add(coalesced as u64, Ordering::Relaxed);
            for pending in batch {
                let _ = pending.reply.send(Err(ServeError::Engine {
                    message: message.clone(),
                }));
            }
            return;
        }
    };

    // Split every output back into per-request row ranges.
    for output in &report.outputs {
        if output.shape().rank() == 0 || output.shape().dim(0) != total_rows {
            let message = format!(
                "model `{}` output of shape {} is not batch-separable",
                registered.name,
                output.shape()
            );
            registered
                .failed
                .fetch_add(coalesced as u64, Ordering::Relaxed);
            for pending in batch {
                let _ = pending.reply.send(Err(ServeError::Engine {
                    message: message.clone(),
                }));
            }
            return;
        }
    }
    let mut offset = 0usize;
    for pending in batch {
        let outputs: Vec<Tensor> = report
            .outputs
            .iter()
            .map(|t| {
                let per_row = t.shape().numel() / total_rows;
                let mut dims = t.shape().dims().to_vec();
                dims[0] = pending.rows;
                let slice = t.data()[offset * per_row..(offset + pending.rows) * per_row].to_vec();
                Tensor::from_vec(Shape::new(dims), slice)
                    .expect("row slice matches the per-request shape")
            })
            .collect();
        offset += pending.rows;
        registered.completed.fetch_add(1, Ordering::Relaxed);
        let _ = pending.reply.send(Ok(Response {
            outputs,
            coalesced,
            batch_rows: total_rows,
        }));
    }
}
