//! Figure 9a: mobile CPU and GPU utilization on YOLO-V4 per framework.
//!
//! Run with `cargo run --release -p dnnf-bench --bin fig9a_utilization`.

use dnnf_bench::{cell, evaluate, format_table, ExecutionConfig};
use dnnf_models::{ModelKind, ModelScale};
use dnnf_simdev::{DeviceKind, Phone};

fn main() {
    let scale = if std::env::args().any(|a| a == "--reduced") {
        ModelScale::reduced()
    } else {
        ModelScale::tiny()
    };
    let kind = ModelKind::YoloV4;
    let mut rows = Vec::new();
    for &config in ExecutionConfig::all() {
        let mut row = vec![config.name().to_string()];
        for device_kind in [DeviceKind::MobileCpu, DeviceKind::MobileGpu] {
            let device = Phone::GalaxyS20.device(device_kind);
            let utilization =
                evaluate(kind, scale, config, &device).map(|r| r.counters.utilization_percent);
            row.push(cell(utilization, 1));
        }
        rows.push(row);
    }
    println!("Figure 9a — processor utilization (%) on YOLO-V4\n");
    println!("{}", format_table(&["Framework", "CPU %", "GPU %"], &rows));
    println!(
        "\nDNNFusion's coarser-grained kernels yield the highest utilization, as in the paper."
    );
}
