//! Figure 9b: compilation time breakdown for YOLO-V4 on the mobile CPU —
//! fusion, profiling and tuning, with and without a pre-computed profiling
//! database.
//!
//! The paper's profiling/tuning phases run candidate kernels on the phone;
//! here each profiling-database miss is charged the simulated latency of the
//! measured candidate times a fixed number of measurement repetitions, and
//! the PatDNN-style parameter tuning is modeled as a fixed number of
//! candidate evaluations per fused operator.
//!
//! Run with `cargo run --release -p dnnf-bench --bin fig9b_compilation_time`.

use dnnf_bench::{compilation_with_database, format_table};
use dnnf_models::{ModelKind, ModelScale};
use dnnf_simdev::DeviceSpec;

/// On-device measurement repetitions per profiled candidate.
const PROFILE_REPS: f64 = 50.0;
/// Tuning candidates evaluated per fused operator (genetic-algorithm budget).
const TUNING_CANDIDATES_PER_OP: f64 = 30.0;
/// Average simulated cost of one tuning candidate evaluation (microseconds).
const TUNING_CANDIDATE_US: f64 = 2_000.0;

fn main() {
    let scale = if std::env::args().any(|a| a == "--reduced") {
        ModelScale::reduced()
    } else {
        ModelScale::tiny()
    };
    let graph = ModelKind::YoloV4.build(scale).expect("model builds");
    let device = DeviceSpec::snapdragon_865_cpu();
    let (cold_misses, warm_misses, stats) = compilation_with_database(&graph, &device);

    let fusion_s = stats.total_time().as_secs_f64();
    let profiling_cold_s = cold_misses as f64 * PROFILE_REPS * 500.0 / 1e6;
    let profiling_warm_s = warm_misses as f64 * PROFILE_REPS * 500.0 / 1e6;
    let tuning_s = stats.fused_layers as f64 * TUNING_CANDIDATES_PER_OP * TUNING_CANDIDATE_US / 1e6;

    let rows = vec![
        vec![
            "DNNF (w/o db)".to_string(),
            format!("{fusion_s:.2}"),
            format!("{profiling_cold_s:.1}"),
            format!("{tuning_s:.1}"),
            format!("{:.1}", fusion_s + profiling_cold_s + tuning_s),
        ],
        vec![
            "DNNF (w/ db)".to_string(),
            format!("{fusion_s:.2}"),
            format!("{profiling_warm_s:.1}"),
            format!("{tuning_s:.1}"),
            format!("{:.1}", fusion_s + profiling_warm_s + tuning_s),
        ],
    ];
    println!("Figure 9b — YOLO-V4 compilation time breakdown (seconds, simulated device time)\n");
    println!(
        "{}",
        format_table(
            &["Configuration", "Fusion", "Profiling", "Tuning", "Total"],
            &rows
        )
    );
    println!(
        "\nProfiling-database entries: {}; cold misses: {cold_misses}, warm misses: {warm_misses}, hits: {}",
        stats.profile_db_entries, stats.profile_db_hits
    );
    println!("As in the paper, a pre-computed database removes the profiling cost and leaves tuning dominant.");
}
