//! The cross-run weight cache's contract:
//!
//! * [`WeightStore::of_model`] builds the store **once** per
//!   [`CompiledModel`] — repeated runs hand out the same `Arc` allocations
//!   (pointer identity, not just equality),
//! * concurrent executors running the same model share that one store, and
//! * the cached path ([`Executor::run_compiled`]) is bit-identical to the
//!   uncached per-run materialization path
//!   ([`Executor::run_plan_with_engine`]), including the prepacked `Gemm`
//!   panels.

use std::collections::HashMap;
use std::sync::Arc;

use dnnf_core::{CompiledModel, Compiler, CompilerOptions};
use dnnf_graph::Graph;
use dnnf_ops::{Attrs, OpKind};
use dnnf_runtime::{ExecOptions, Executor, WeightStore};
use dnnf_simdev::DeviceSpec;
use dnnf_tensor::{Shape, Tensor};

/// Conv -> Relu -> Flatten -> Gemm (transB weight) network: covers both the
/// plain weight tensors and the transposed-B panel prepacking.
fn gemm_cnn() -> Graph {
    let mut g = Graph::new("weight-cache-cnn");
    let x = g.add_input("x", Shape::new(vec![1, 3, 8, 8]));
    let w = g.add_weight("conv.w", Shape::new(vec![4, 3, 3, 3]));
    let conv = g
        .add_op(
            OpKind::Conv,
            Attrs::new().with_ints("pads", vec![1, 1, 1, 1]),
            &[x, w],
            "conv",
        )
        .unwrap()[0];
    let relu = g
        .add_op(OpKind::Relu, Attrs::new(), &[conv], "relu")
        .unwrap()[0];
    let flat = g
        .add_op(
            OpKind::Flatten,
            Attrs::new().with_int("axis", 1),
            &[relu],
            "flatten",
        )
        .unwrap()[0];
    // fc.w is stored (out_features, in_features) and consumed transposed —
    // the layout the prepacked panel exists for.
    let fc = g.add_weight("fc.w", Shape::new(vec![10, 256]));
    let out = g
        .add_op(
            OpKind::Gemm,
            Attrs::new().with_int("transB", 1),
            &[flat, fc],
            "fc",
        )
        .unwrap()[0];
    g.mark_output(out);
    g
}

fn compile(graph: &Graph) -> CompiledModel {
    Compiler::new(CompilerOptions::default())
        .compile(graph)
        .unwrap()
}

fn inputs_for(graph: &Graph, seed: u64) -> HashMap<String, Tensor> {
    graph
        .inputs()
        .iter()
        .map(|&id| {
            let v = graph.value(id);
            (v.name.clone(), Tensor::random(v.shape.clone(), seed))
        })
        .collect()
}

fn executor() -> Executor {
    Executor::new(DeviceSpec::snapdragon_865_cpu())
        .without_cache_simulation()
        .with_options(ExecOptions::serial())
}

#[test]
fn repeated_runs_reuse_the_same_store_and_tensor_allocations() {
    let graph = gemm_cnn();
    let model = compile(&graph);
    assert!(
        !model.runtime_cache().is_initialized(),
        "compilation must not eagerly materialize weights"
    );

    let exec = executor();
    let inputs = inputs_for(&graph, 7);
    let first = exec.run_compiled(&model, &inputs).unwrap();
    assert!(
        model.runtime_cache().is_initialized(),
        "the first run builds the store"
    );

    // The store observed after the first run is the one every later run
    // uses: pointer-identical store, pointer-identical weight tensors.
    let store = WeightStore::of_model(&model);
    let second = exec.run_compiled(&model, &inputs).unwrap();
    let again = WeightStore::of_model(&model);
    assert!(
        Arc::ptr_eq(&store, &again),
        "of_model must return the cached store"
    );
    for value in model.graph().values() {
        if value.is_weight() {
            let a = store.get(value.id).expect("weight materialized");
            let b = again.get(value.id).expect("weight materialized");
            assert!(
                Arc::ptr_eq(a, b),
                "weight `{}` was re-allocated",
                value.name
            );
        }
    }
    // And a clone of the model shares the slot (same Arc, not a rebuild).
    let clone = model.clone();
    assert!(Arc::ptr_eq(&store, &WeightStore::of_model(&clone)));

    for (a, b) in first.outputs.iter().zip(&second.outputs) {
        assert_eq!(
            a.first_disagreement(b, 0.0),
            None,
            "cached repeat run changed outputs"
        );
    }
}

#[test]
fn concurrent_executors_share_one_store() {
    let graph = gemm_cnn();
    let model = compile(&graph);
    let inputs = inputs_for(&graph, 11);
    let expected = executor().run_compiled(&model, &inputs).unwrap().outputs;

    // Several executors (distinct instances, some multi-threaded) racing on
    // the same model: exactly one store may be built, and every run must
    // reproduce the serial result bit for bit.
    std::thread::scope(|scope| {
        for threads in [1usize, 2, 4, 8] {
            let model = &model;
            let inputs = &inputs;
            let expected = &expected;
            scope.spawn(move || {
                let exec = Executor::new(DeviceSpec::snapdragon_865_cpu())
                    .without_cache_simulation()
                    .with_options(ExecOptions::with_threads(threads));
                let outputs = exec.run_compiled(model, inputs).unwrap().outputs;
                for (a, b) in expected.iter().zip(&outputs) {
                    assert_eq!(a.first_disagreement(b, 0.0), None);
                }
            });
        }
    });
    let store = WeightStore::of_model(&model);
    assert!(Arc::ptr_eq(&store, &WeightStore::of_model(&model)));
}

#[test]
fn cached_path_is_bit_identical_to_the_uncached_path() {
    let graph = gemm_cnn();
    let model = compile(&graph);
    let inputs = inputs_for(&graph, 23);
    let exec = executor();

    // run_plan_with_engine materializes a fresh store per call (the
    // pre-cache behaviour); run_compiled reuses the model's cached store.
    let uncached = exec
        .run_plan_with_engine(model.graph(), &model.plan, &model.engine, &inputs)
        .unwrap();
    let cached = exec.run_compiled(&model, &inputs).unwrap();
    assert_eq!(uncached.outputs.len(), cached.outputs.len());
    for (a, b) in uncached.outputs.iter().zip(&cached.outputs) {
        assert_eq!(
            a.first_disagreement(b, 0.0),
            None,
            "weight cache changed outputs"
        );
    }
    // The modeled device counters and memory plan cannot depend on caching.
    assert_eq!(uncached.counters, cached.counters);
    assert_eq!(uncached.memory, cached.memory);
}

/// Conv with a lane-aligned output-channel count (so the OC-blocked panel
/// actually packs) -> Add bias -> Relu -> MaxPool -> Flatten -> Gemm.
fn lane_aligned_cnn() -> Graph {
    let oc = dnnf_ops::CONV_PANEL_LANES * 2;
    let mut g = Graph::new("lane-aligned-cnn");
    let x = g.add_input("x", Shape::new(vec![1, 3, 8, 8]));
    let w = g.add_weight("conv.w", Shape::new(vec![oc, 3, 3, 3]));
    let conv = g
        .add_op(
            OpKind::Conv,
            Attrs::new()
                .with_ints("pads", vec![1, 1, 1, 1])
                .with_ints("strides", vec![2, 1]),
            &[x, w],
            "conv",
        )
        .unwrap()[0];
    let b = g.add_weight("conv.b", Shape::new(vec![1, oc, 1, 1]));
    let biased = g
        .add_op(OpKind::Add, Attrs::new(), &[conv, b], "bias")
        .unwrap()[0];
    let relu = g
        .add_op(OpKind::Relu, Attrs::new(), &[biased], "relu")
        .unwrap()[0];
    let pooled = g
        .add_op(
            OpKind::MaxPool,
            Attrs::new()
                .with_ints("kernel_shape", vec![2, 2])
                .with_ints("strides", vec![2, 2]),
            &[relu],
            "pool",
        )
        .unwrap()[0];
    let flat = g
        .add_op(
            OpKind::Flatten,
            Attrs::new().with_int("axis", 1),
            &[pooled],
            "flatten",
        )
        .unwrap()[0];
    let fc = g.add_weight("fc.w", Shape::new(vec![10, oc * 2 * 4]));
    let out = g
        .add_op(
            OpKind::Gemm,
            Attrs::new().with_int("transB", 1),
            &[flat, fc],
            "fc",
        )
        .unwrap()[0];
    g.mark_output(out);
    g
}

#[test]
fn packed_conv_panels_are_bit_identical_to_unpacked_across_threads_and_scalar_mode() {
    let graph = lane_aligned_cnn();
    let model = compile(&graph);
    let store = WeightStore::of_model(&model);
    let conv_w = model
        .graph()
        .values()
        .find(|v| v.is_weight() && store.packed().conv_oc(v.id).is_some())
        .expect("the lane-aligned conv weight must be packed");
    assert_eq!(
        store.packed().conv_oc(conv_w.id).unwrap().shape().dims(),
        &[2, 3 * 3 * 3, dnnf_ops::CONV_PANEL_LANES]
    );
    let unpacked = WeightStore::build_unpacked(model.graph());
    assert!(unpacked.packed().is_empty());

    let inputs = inputs_for(&graph, 41);
    let mut options: Vec<ExecOptions> = [1usize, 2, 3, 8]
        .iter()
        .map(|&t| ExecOptions::with_threads(t))
        .collect();
    // DNNF_FORCE_SCALAR's programmatic equivalent: panels are ignored
    // entirely in scalar mode, which must not change results either.
    options.push(ExecOptions::serial().scalar_kernels());
    options.push(ExecOptions::with_threads(4).scalar_kernels());

    let baseline = executor().run_compiled(&model, &inputs).unwrap().outputs;
    for opts in options {
        let exec = Executor::new(DeviceSpec::snapdragon_865_cpu())
            .without_cache_simulation()
            .with_options(opts);
        let packed_run = exec
            .run_compiled_with_store(&model, &store, &inputs)
            .unwrap();
        let unpacked_run = exec
            .run_compiled_with_store(&model, &unpacked, &inputs)
            .unwrap();
        for ((p, u), b) in packed_run
            .outputs
            .iter()
            .zip(&unpacked_run.outputs)
            .zip(&baseline)
        {
            assert_eq!(
                p.first_disagreement(u, 0.0),
                None,
                "packed vs unpacked diverged under {opts:?}"
            );
            assert_eq!(
                p.first_disagreement(b, 0.0),
                None,
                "run under {opts:?} diverged from the serial baseline"
            );
        }
    }
}

#[test]
fn transposed_gemm_weights_are_prepacked_and_results_match_the_reference() {
    let graph = gemm_cnn();
    let model = compile(&graph);
    let store = WeightStore::of_model(&model);
    // The graph's one transB Gemm weight got its panel; the conv weight and
    // the rewritten graph's other weights did not.
    assert_eq!(
        store.packed().len(),
        1,
        "exactly the transB Gemm weight is packed"
    );
    let packed_value = model
        .graph()
        .values()
        .find(|v| v.is_weight() && store.packed().transposed_b(v.id).is_some())
        .expect("packed weight exists in the compiled graph");
    let original = store.get(packed_value.id).unwrap();
    let panel = store.packed().transposed_b(packed_value.id).unwrap();
    assert_eq!(
        panel.shape().dims(),
        &[original.shape().dim(1), original.shape().dim(0)]
    );

    // End to end, the packed fast path must still reproduce the reference
    // interpreter exactly (the panel only changes the access pattern).
    let inputs = inputs_for(&graph, 31);
    let exec = executor();
    let fused = exec.run_compiled(&model, &inputs).unwrap();
    let reference = exec
        .run_plan_reference(model.graph(), &model.plan, &inputs)
        .unwrap();
    for (a, b) in fused.outputs.iter().zip(&reference.outputs) {
        assert_eq!(
            a.first_disagreement(b, 0.0),
            None,
            "packed Gemm diverged from reference"
        );
    }
}
