//! Element-wise unary, binary and ternary kernels.

use dnnf_tensor::{broadcast_index, broadcast_shapes, Tensor};

use crate::{Attrs, OpError, OpKind};

/// Applies a unary element-wise operator.
pub fn unary(op: OpKind, attrs: &Attrs, x: &Tensor) -> Tensor {
    x.map(|v| {
        op.scalar_unary(v, attrs)
            .expect("caller checked op is unary")
    })
}

/// Applies a binary element-wise operator with ONNX broadcasting.
pub fn binary(op: OpKind, a: &Tensor, b: &Tensor) -> Result<Tensor, OpError> {
    a.zip_broadcast(b, |x, y| {
        op.scalar_binary(x, y).expect("caller checked op is binary")
    })
    .map_err(OpError::from)
}

/// `Where(cond, x, y)`: selects `x` where `cond != 0`, `y` elsewhere, with
/// full three-way broadcasting.
pub fn where_select(cond: &Tensor, x: &Tensor, y: &Tensor) -> Result<Tensor, OpError> {
    let shape = broadcast_shapes(&broadcast_shapes(cond.shape(), x.shape())?, y.shape())?;
    let mut out = Tensor::zeros(shape.clone());
    for offset in 0..shape.numel() {
        let idx = shape.multi_index(offset);
        let c = cond.at(&broadcast_index(&idx, cond.shape()))?;
        let v = if c != 0.0 {
            x.at(&broadcast_index(&idx, x.shape()))?
        } else {
            y.at(&broadcast_index(&idx, y.shape()))?
        };
        out.data_mut()[offset] = v;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnnf_tensor::Shape;

    #[test]
    fn unary_relu_and_sigmoid() {
        let x = Tensor::from_vec(Shape::new(vec![4]), vec![-2.0, -0.5, 0.0, 3.0]).unwrap();
        let y = unary(OpKind::Relu, &Attrs::new(), &x);
        assert_eq!(y.data(), &[0.0, 0.0, 0.0, 3.0]);
        let y = unary(OpKind::Sigmoid, &Attrs::new(), &x);
        assert!((y.data()[2] - 0.5).abs() < 1e-6);
    }

    #[test]
    fn binary_broadcast_add() {
        let a = Tensor::arange(Shape::new(vec![2, 3]));
        let b = Tensor::from_vec(Shape::new(vec![1, 3]), vec![1.0, 2.0, 3.0]).unwrap();
        let y = binary(OpKind::Add, &a, &b).unwrap();
        assert_eq!(y.data(), &[1.0, 3.0, 5.0, 4.0, 6.0, 8.0]);
    }

    #[test]
    fn binary_rejects_incompatible_shapes() {
        let a = Tensor::zeros(Shape::new(vec![2]));
        let b = Tensor::zeros(Shape::new(vec![3]));
        assert!(binary(OpKind::Mul, &a, &b).is_err());
    }

    #[test]
    fn where_selects_per_element() {
        let cond = Tensor::from_vec(Shape::new(vec![3]), vec![1.0, 0.0, 1.0]).unwrap();
        let x = Tensor::full(Shape::new(vec![3]), 7.0);
        let y = Tensor::full(Shape::new(vec![3]), -1.0);
        let out = where_select(&cond, &x, &y).unwrap();
        assert_eq!(out.data(), &[7.0, -1.0, 7.0]);
    }

    #[test]
    fn where_broadcasts_condition() {
        let cond = Tensor::from_vec(Shape::new(vec![2, 1]), vec![1.0, 0.0]).unwrap();
        let x = Tensor::full(Shape::new(vec![2, 3]), 1.0);
        let y = Tensor::full(Shape::new(vec![2, 3]), 2.0);
        let out = where_select(&cond, &x, &y).unwrap();
        assert_eq!(out.data(), &[1.0, 1.0, 1.0, 2.0, 2.0, 2.0]);
    }
}
