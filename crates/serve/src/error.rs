//! Serving-layer errors.

use std::fmt;

/// Errors surfaced to serving clients.
///
/// Engine failures are carried as rendered messages (not the underlying
/// `RuntimeError`) because one failed dispatch fans out to every request in
/// the batch, and requests only ever see their own copy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// The request names a model the server does not host.
    UnknownModel {
        /// The requested model name.
        model: String,
    },
    /// The model's queue is at its admission limit — backpressure; retry
    /// later or shed load upstream.
    QueueFull {
        /// The model whose queue is full.
        model: String,
        /// The configured per-model limit, in requests.
        capacity: usize,
    },
    /// The request is malformed: missing input, wrong shape, inconsistent
    /// or oversized batch.
    BadRequest {
        /// Human-readable explanation.
        reason: String,
    },
    /// The server is shutting down (or was shut down before the request
    /// could be dispatched).
    ShuttingDown,
    /// The engine failed to execute the dispatched batch.
    Engine {
        /// The rendered runtime error.
        message: String,
    },
    /// A `.dnnfg` model file could not be loaded or compiled at
    /// registration time (see `docs/graph-format.md` for the format).
    ModelLoad {
        /// The path of the model file.
        path: String,
        /// The rendered import or compile error.
        message: String,
    },
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::UnknownModel { model } => write!(f, "unknown model `{model}`"),
            ServeError::QueueFull { model, capacity } => {
                write!(f, "queue for model `{model}` is full ({capacity} requests)")
            }
            ServeError::BadRequest { reason } => write!(f, "bad request: {reason}"),
            ServeError::ShuttingDown => write!(f, "server is shutting down"),
            ServeError::Engine { message } => write!(f, "engine error: {message}"),
            ServeError::ModelLoad { path, message } => {
                write!(f, "cannot load model from `{path}`: {message}")
            }
        }
    }
}

impl std::error::Error for ServeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative_and_error_is_send_sync() {
        assert!(ServeError::UnknownModel {
            model: "vgg".into()
        }
        .to_string()
        .contains("vgg"));
        assert!(ServeError::QueueFull {
            model: "m".into(),
            capacity: 4
        }
        .to_string()
        .contains('4'));
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ServeError>();
    }
}
