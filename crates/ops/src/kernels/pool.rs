//! Pooling kernels (max, average, global average).

use dnnf_tensor::{IndexIter, Shape, Tensor};

use crate::{Attrs, OpError, OpKind};

/// `MaxPool` / `AveragePool` over an `(N, C, spatial...)` input.
pub fn pool(op: OpKind, attrs: &Attrs, x: &Tensor, out_shape: &Shape) -> Result<Tensor, OpError> {
    let spatial_rank = x.shape().rank() - 2;
    let kernel: Vec<usize> = attrs
        .ints_or("kernel_shape", &vec![1; spatial_rank])
        .iter()
        .map(|&k| k.max(1) as usize)
        .collect();
    let strides: Vec<usize> = attrs
        .ints_or("strides", &vec![1; spatial_rank])
        .iter()
        .map(|&s| s.max(1) as usize)
        .collect();
    let pads: Vec<usize> = attrs
        .ints_or("pads", &vec![0; spatial_rank * 2])
        .iter()
        .map(|&p| p.max(0) as usize)
        .collect();
    let count_include_pad = attrs.int_or("count_include_pad", 0) != 0;

    let batch = x.shape().dim(0);
    let channels = x.shape().dim(1);
    let out_spatial = Shape::new(out_shape.dims()[2..].to_vec());
    let kernel_shape = Shape::new(kernel.clone());

    let mut out = Tensor::zeros(out_shape.clone());
    let mut offset = 0usize;
    for n in 0..batch {
        for c in 0..channels {
            for out_pos in IndexIter::new(&out_spatial) {
                let mut acc = if op == OpKind::MaxPool {
                    f32::NEG_INFINITY
                } else {
                    0.0
                };
                let mut count = 0usize;
                for k_pos in IndexIter::new(&kernel_shape) {
                    let mut idx = vec![n, c];
                    let mut in_bounds = true;
                    for d in 0..spatial_rank {
                        let pos = out_pos[d] * strides[d] + k_pos[d];
                        if pos < pads[d] || pos - pads[d] >= x.shape().dim(2 + d) {
                            in_bounds = false;
                            break;
                        }
                        idx.push(pos - pads[d]);
                    }
                    if in_bounds {
                        let v = x.at(&idx)?;
                        if op == OpKind::MaxPool {
                            acc = acc.max(v);
                        } else {
                            acc += v;
                        }
                        count += 1;
                    }
                }
                let v = if op == OpKind::MaxPool {
                    acc
                } else {
                    let denom = if count_include_pad {
                        kernel.iter().product::<usize>()
                    } else {
                        count.max(1)
                    };
                    acc / denom as f32
                };
                out.data_mut()[offset] = v;
                offset += 1;
            }
        }
    }
    Ok(out)
}

/// `GlobalAveragePool`: averages every spatial dimension per channel.
pub fn global_average_pool(x: &Tensor, out_shape: &Shape) -> Result<Tensor, OpError> {
    let batch = x.shape().dim(0);
    let channels = x.shape().dim(1);
    let spatial: usize = x.shape().dims()[2..].iter().product();
    let mut out = Tensor::zeros(out_shape.clone());
    for n in 0..batch {
        for c in 0..channels {
            let base = (n * channels + c) * spatial;
            let sum: f32 = (0..spatial).map(|s| x.at_linear(base + s)).sum();
            out.data_mut()[n * channels + c] = sum / spatial.max(1) as f32;
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::infer_shapes;

    fn run(op: OpKind, attrs: &Attrs, x: &Tensor) -> Tensor {
        let out = infer_shapes(op, attrs, &[x.shape().clone()]).unwrap();
        if op == OpKind::GlobalAveragePool {
            global_average_pool(x, &out[0]).unwrap()
        } else {
            pool(op, attrs, x, &out[0]).unwrap()
        }
    }

    #[test]
    fn maxpool_2x2_picks_window_max() {
        let x = Tensor::arange(Shape::new(vec![1, 1, 4, 4]));
        let attrs = Attrs::new()
            .with_ints("kernel_shape", vec![2, 2])
            .with_ints("strides", vec![2, 2]);
        let y = run(OpKind::MaxPool, &attrs, &x);
        assert_eq!(y.shape().dims(), &[1, 1, 2, 2]);
        assert_eq!(y.data(), &[5.0, 7.0, 13.0, 15.0]);
    }

    #[test]
    fn averagepool_2x2_averages_window() {
        let x = Tensor::arange(Shape::new(vec![1, 1, 4, 4]));
        let attrs = Attrs::new()
            .with_ints("kernel_shape", vec![2, 2])
            .with_ints("strides", vec![2, 2]);
        let y = run(OpKind::AveragePool, &attrs, &x);
        assert_eq!(y.data(), &[2.5, 4.5, 10.5, 12.5]);
    }

    #[test]
    fn averagepool_with_padding_excludes_pad_by_default() {
        let x = Tensor::full(Shape::new(vec![1, 1, 2, 2]), 4.0);
        let attrs = Attrs::new()
            .with_ints("kernel_shape", vec![3, 3])
            .with_ints("pads", vec![1, 1, 1, 1]);
        let y = run(OpKind::AveragePool, &attrs, &x);
        // Every window sees only in-bounds 4.0s, so the average stays 4.0.
        assert!(y.iter().all(|&v| (v - 4.0).abs() < 1e-6));
    }

    #[test]
    fn maxpool_3d_works() {
        let x = Tensor::arange(Shape::new(vec![1, 1, 2, 2, 2]));
        let attrs = Attrs::new()
            .with_ints("kernel_shape", vec![2, 2, 2])
            .with_ints("strides", vec![2, 2, 2]);
        let y = run(OpKind::MaxPool, &attrs, &x);
        assert_eq!(y.data(), &[7.0]);
    }

    #[test]
    fn global_average_pool_reduces_spatial() {
        let x = Tensor::arange(Shape::new(vec![1, 2, 2, 2]));
        let y = run(OpKind::GlobalAveragePool, &Attrs::new(), &x);
        assert_eq!(y.shape().dims(), &[1, 2, 1, 1]);
        assert_eq!(y.data(), &[1.5, 5.5]);
    }
}
