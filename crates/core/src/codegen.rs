//! Fusion code generation (paper §4.4.1, Figure 4).
//!
//! For every fusion block the code generator builds a **data-flow tree**
//! (DFT) whose leaves are the block's external inputs and whose internal
//! nodes are the block's operators, with common sub-trees identified and
//! reused. The DFT plus the per-pair mapping-type code-generation rules fully
//! determine the fused kernel. In this reproduction the "generated code" has
//! two artefacts:
//!
//! * a [`FusedOp`] description that the runtime's fused-kernel interpreter
//!   executes directly (the DFT *is* the kernel), and
//! * a pseudo-C listing (for inspection, examples and documentation), in the
//!   spirit of the C++/OpenCL emitted by the paper's implementation.

use std::collections::BTreeMap;

use dnnf_graph::{NodeId, ValueId};
use dnnf_ops::{Attrs, MappingType, OpKind};
use dnnf_tensor::Layout;

use crate::{analyze_pair, Ecg, FusionBlock, FusionPlan};

/// One node of a data-flow tree.
#[derive(Debug, Clone, PartialEq)]
pub enum DftNode {
    /// A leaf: a value read from outside the fusion block (model input,
    /// weight, or another block's output).
    Leaf {
        /// The external value.
        value: ValueId,
    },
    /// An operator applied to previously-built DFT nodes.
    Op {
        /// The graph node this entry corresponds to.
        node: NodeId,
        /// Operator kind.
        op: OpKind,
        /// Operator attributes.
        attrs: Attrs,
        /// Indices of child entries within the tree's node arena.
        children: Vec<usize>,
        /// The graph value produced by this operator.
        output: ValueId,
    },
}

/// A data-flow tree (really a DAG thanks to common-sub-tree reuse) for one
/// fusion block.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct DataFlowTree {
    /// Arena of tree nodes; children always precede parents.
    pub nodes: Vec<DftNode>,
    /// One root per block output: `(output value, arena index)`.
    pub roots: Vec<(ValueId, usize)>,
}

impl DataFlowTree {
    /// Number of arena entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the tree is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Leaf values in first-use order.
    #[must_use]
    pub fn leaves(&self) -> Vec<ValueId> {
        self.nodes
            .iter()
            .filter_map(|n| match n {
                DftNode::Leaf { value } => Some(*value),
                DftNode::Op { .. } => None,
            })
            .collect()
    }
}

/// A fused operator: the compiled form of one fusion block.
#[derive(Debug, Clone, PartialEq)]
pub struct FusedOp {
    /// Generated operator name (concatenation of member operator names, as
    /// in the paper's "almost each fusion generates a new operator").
    pub name: String,
    /// Index of the originating fusion block.
    pub block_id: usize,
    /// Member graph nodes in topological order.
    pub nodes: Vec<NodeId>,
    /// External values read by the block (activations and weights).
    pub inputs: Vec<ValueId>,
    /// Values produced by the block that are visible outside it.
    pub outputs: Vec<ValueId>,
    /// Mapping type of the fused operator.
    pub mapping_type: MappingType,
    /// The data-flow tree driving execution.
    pub dft: DataFlowTree,
    /// Data layout selected for the block by the inter-block optimization.
    pub layout: Layout,
    /// Mapping-type pairs whose code-generation rule was invoked, in fusion
    /// order.
    pub rules_used: Vec<(MappingType, MappingType)>,
    /// Number of times an already-built sub-tree was reused (common sub-tree
    /// elimination, Figure 4).
    pub common_subtrees_reused: usize,
    /// Pseudo-C listing of the fused kernel.
    pub source: String,
}

impl FusedOp {
    /// Number of operators folded into this fused operator.
    #[must_use]
    pub fn fused_op_count(&self) -> usize {
        self.nodes.len()
    }
}

/// Generates the fused operator for one block of a plan.
#[must_use]
pub fn generate_fused_op(ecg: &Ecg, plan: &FusionPlan, block: &FusionBlock) -> FusedOp {
    let graph = ecg.graph();
    let in_block = |n: NodeId| plan.block_of(n) == block.id;

    // Block outputs: values produced inside, visible outside.
    let mut outputs: Vec<ValueId> = Vec::new();
    for &n in &block.nodes {
        for &out in &graph.node(n).outputs {
            let v = graph.value(out);
            let escapes = graph.outputs().contains(&out)
                || v.consumers.is_empty()
                || v.consumers.iter().any(|&c| !in_block(c));
            if escapes {
                outputs.push(out);
            }
        }
    }

    // Build the DFT bottom-up from each block output, memoizing values so
    // shared sub-trees are built exactly once.
    let mut tree = DataFlowTree::default();
    let mut memo: BTreeMap<ValueId, usize> = BTreeMap::new();
    let mut reused = 0usize;
    let mut inputs: Vec<ValueId> = Vec::new();
    for &out in &outputs {
        let idx = build_dft(
            graph,
            &mut tree,
            &mut memo,
            &mut reused,
            &mut inputs,
            out,
            &in_block,
        );
        tree.roots.push((out, idx));
    }

    // Record the code-generation rules invoked while folding operators
    // pairwise, exactly as Figure 4 narrates.
    let mut rules_used = Vec::new();
    let mut running = block
        .nodes
        .first()
        .map(|&n| ecg.mapping_type(n))
        .unwrap_or(MappingType::OneToOne);
    for &n in block.nodes.iter().skip(1) {
        let next = ecg.mapping_type(n);
        rules_used.push((running, next));
        running = analyze_pair(running, next).fused_type;
    }

    let name = block
        .nodes
        .iter()
        .map(|&n| graph.node(n).op.name())
        .collect::<Vec<_>>()
        .join("_");

    let layout = select_layout(ecg, block);
    let source = emit_pseudo_code(ecg, block, &name, &inputs, &outputs, layout);

    FusedOp {
        name,
        block_id: block.id,
        nodes: block.nodes.clone(),
        inputs,
        outputs,
        mapping_type: block.mapping_type,
        dft: tree,
        layout,
        rules_used,
        common_subtrees_reused: reused,
        source,
    }
}

/// Generates fused operators for every block of a plan, in execution order.
#[must_use]
pub fn generate_all(ecg: &Ecg, plan: &FusionPlan) -> Vec<FusedOp> {
    let order = plan.execution_order(ecg.graph());
    order
        .iter()
        .map(|&b| generate_fused_op(ecg, plan, &plan.blocks()[b]))
        .collect()
}

fn build_dft(
    graph: &dnnf_graph::Graph,
    tree: &mut DataFlowTree,
    memo: &mut BTreeMap<ValueId, usize>,
    reused: &mut usize,
    inputs: &mut Vec<ValueId>,
    value: ValueId,
    in_block: &impl Fn(NodeId) -> bool,
) -> usize {
    if let Some(&idx) = memo.get(&value) {
        if matches!(tree.nodes[idx], DftNode::Op { .. }) {
            *reused += 1;
        }
        return idx;
    }
    let v = graph.value(value);
    let idx = match v.producer {
        Some(p) if in_block(p) => {
            let node = graph.node(p);
            let children: Vec<usize> = node
                .inputs
                .iter()
                .map(|&input| build_dft(graph, tree, memo, reused, inputs, input, in_block))
                .collect();
            tree.nodes.push(DftNode::Op {
                node: p,
                op: node.op,
                attrs: node.attrs.clone(),
                children,
                output: value,
            });
            tree.nodes.len() - 1
        }
        _ => {
            if !inputs.contains(&value) {
                inputs.push(value);
            }
            tree.nodes.push(DftNode::Leaf { value });
            tree.nodes.len() - 1
        }
    };
    memo.insert(value, idx);
    idx
}

/// The inter-block layout heuristic applied per block: use the dominant
/// operator's preferred layout (paper §4.4.2).
fn select_layout(ecg: &Ecg, block: &FusionBlock) -> Layout {
    let graph = ecg.graph();
    // Dominant operator: the layout-sensitive operator with most output bytes
    // (a cheap proxy for "performance impacted the most").
    block
        .nodes
        .iter()
        .filter(|&&n| graph.node(n).op.is_layout_dominant())
        .max_by_key(|&&n| ecg.node_info(n).output_bytes)
        .and_then(|&n| graph.node(n).op.preferred_layout())
        .or_else(|| {
            block
                .nodes
                .iter()
                .find_map(|&n| graph.node(n).op.preferred_layout())
        })
        .unwrap_or_default()
}

fn emit_pseudo_code(
    ecg: &Ecg,
    block: &FusionBlock,
    name: &str,
    inputs: &[ValueId],
    outputs: &[ValueId],
    layout: Layout,
) -> String {
    let graph = ecg.graph();
    let mut code = String::new();
    code.push_str(&format!(
        "// fused operator `{name}` ({} ops, {} mapping, {layout} layout)\n",
        block.nodes.len(),
        block.mapping_type
    ));
    let params: Vec<String> = inputs
        .iter()
        .map(|&v| format!("const float* {}", sanitize(&graph.value(v).name)))
        .chain(
            outputs
                .iter()
                .map(|&v| format!("float* {}", sanitize(&graph.value(v).name))),
        )
        .collect();
    code.push_str(&format!(
        "void fused_block_{}({}) {{\n",
        block.id,
        params.join(", ")
    ));
    let anchor = block
        .nodes
        .iter()
        .find(|&&n| ecg.mapping_type(n) == MappingType::ManyToMany)
        .copied();
    match anchor {
        Some(a) => {
            let out_shape = graph
                .node(a)
                .outputs
                .first()
                .map(|&v| graph.value(v).shape.to_string())
                .unwrap_or_default();
            code.push_str(&format!(
                "  for (out_idx in {out_shape}) {{  // {} anchor\n",
                graph.node(a).op
            ));
            code.push_str(&format!(
                "    float acc = {}_accumulate(out_idx);\n",
                sanitize(&graph.node(a).name)
            ));
            for &n in &block.nodes {
                if n == a {
                    continue;
                }
                let node = graph.node(n);
                code.push_str(&format!(
                    "    acc = {}(acc);  // rule: {} + {}\n",
                    node.op.name().to_lowercase(),
                    MappingType::ManyToMany,
                    ecg.mapping_type(n)
                ));
            }
            code.push_str("    out[out_idx] = acc;\n  }\n");
        }
        None => {
            code.push_str("  for (i in output) {  // element-wise fused loop\n");
            code.push_str("    float v = load_inputs(i);\n");
            for &n in &block.nodes {
                let node = graph.node(n);
                code.push_str(&format!("    v = {}(v);\n", node.op.name().to_lowercase()));
            }
            code.push_str("    out[i] = v;\n  }\n");
        }
    }
    code.push_str("}\n");
    code
}

fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| if c.is_alphanumeric() { c } else { '_' })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AnalyticLatencyModel, FusionPlanner, PlanOptions};
    use dnnf_graph::Graph;
    use dnnf_profiledb::ProfileDatabase;
    use dnnf_tensor::Shape;

    fn compile_blocks(graph: &Graph) -> (Ecg, FusionPlan, Vec<FusedOp>) {
        let ecg = Ecg::new(graph.clone());
        let model = AnalyticLatencyModel::default();
        let planner = FusionPlanner::new(&ecg, &model, PlanOptions::default());
        let mut db = ProfileDatabase::new();
        let plan = planner.plan(&mut db);
        let fused = generate_all(&ecg, &plan);
        (ecg, plan, fused)
    }

    /// Figure 4's example: Out = Recip(A·B ⊙ C) + Square(A·B ⊙ D)-ish shape
    /// with a shared sub-tree.
    fn figure4_graph() -> Graph {
        let mut g = Graph::new("figure4");
        let a = g.add_input("A", Shape::new(vec![4, 4]));
        let b = g.add_weight("B", Shape::new(vec![4, 4]));
        let c = g.add_weight("C", Shape::new(vec![4, 4]));
        let d = g.add_weight("D", Shape::new(vec![4, 4]));
        let gemm = g
            .add_op(OpKind::Gemm, Attrs::new(), &[a, b], "gemm")
            .unwrap()[0];
        let m1 = g
            .add_op(OpKind::Mul, Attrs::new(), &[gemm, c], "mul1")
            .unwrap()[0];
        let m2 = g
            .add_op(OpKind::Mul, Attrs::new(), &[gemm, d], "mul2")
            .unwrap()[0];
        let r = g
            .add_op(OpKind::Reciprocal, Attrs::new(), &[m1], "recip")
            .unwrap()[0];
        let s = g
            .add_op(OpKind::Square, Attrs::new(), &[m2], "square")
            .unwrap()[0];
        let add = g.add_op(OpKind::Add, Attrs::new(), &[r, s], "add").unwrap()[0];
        g.mark_output(add);
        g
    }

    #[test]
    fn dft_reuses_common_subtrees() {
        // Within one fusion block the shared prefix (here a Relu feeding two
        // Muls) is built exactly once in the DFT — the paper's common
        // sub-tree identification.
        let mut g = Graph::new("cse");
        let a = g.add_input("A", Shape::new(vec![4, 4]));
        let c = g.add_weight("C", Shape::new(vec![4, 4]));
        let d = g.add_weight("D", Shape::new(vec![4, 4]));
        let r = g.add_op(OpKind::Relu, Attrs::new(), &[a], "relu").unwrap()[0];
        let m1 = g
            .add_op(OpKind::Mul, Attrs::new(), &[r, c], "mul1")
            .unwrap()[0];
        let m2 = g
            .add_op(OpKind::Mul, Attrs::new(), &[r, d], "mul2")
            .unwrap()[0];
        let add = g
            .add_op(OpKind::Add, Attrs::new(), &[m1, m2], "add")
            .unwrap()[0];
        g.mark_output(add);
        let (_, plan, fused) = compile_blocks(&g);
        assert_eq!(plan.fused_layer_count(), 1);
        let op = &fused[0];
        assert!(op.common_subtrees_reused >= 1);
        // Leaves are exactly the external inputs A, C, D.
        assert_eq!(op.inputs.len(), 3);
        assert_eq!(op.outputs.len(), 1);
    }

    #[test]
    fn figure4_diamond_splits_at_the_gemm_and_reuses_its_subtree() {
        let g = figure4_graph();
        let (_, plan, fused) = compile_blocks(&g);
        // The one-directional seed exploration of Listing 1 yields two
        // blocks for the Figure 4 diamond: one anchored at the GEMM, one for
        // the remaining element-wise chain.
        assert_eq!(plan.fused_layer_count(), 2);
        let gemm_block = fused.iter().find(|f| f.name.contains("Gemm")).unwrap();
        // The GEMM output feeds both Muls; whichever Mul shares its block
        // reuses the already-built GEMM sub-tree.
        assert!(gemm_block.common_subtrees_reused >= 1);
        assert!(gemm_block.outputs.len() >= 2);
    }

    #[test]
    fn fused_op_name_concatenates_member_ops() {
        let g = figure4_graph();
        let (_, _, fused) = compile_blocks(&g);
        assert!(fused
            .iter()
            .any(|f| f.name.contains("Gemm") && f.name.contains("Mul")));
        assert!(fused.iter().any(|f| f.name.contains("Add")));
    }

    #[test]
    fn rules_used_are_pairwise_and_legal() {
        let g = figure4_graph();
        let (_, _, fused) = compile_blocks(&g);
        for op in &fused {
            assert_eq!(op.rules_used.len(), op.nodes.len().saturating_sub(1));
            for &(a, b) in &op.rules_used {
                assert_ne!(
                    crate::analyze_pair(a, b).verdict,
                    crate::FusionVerdict::Break,
                    "codegen must never see a red pair"
                );
            }
        }
    }

    #[test]
    fn pseudo_code_mentions_anchor_and_epilogue() {
        let g = figure4_graph();
        let (_, _, fused) = compile_blocks(&g);
        assert!(fused.iter().all(|f| f.source.contains("fused_block_")));
        assert!(fused.iter().any(|f| f.source.contains("Gemm anchor")));
        assert!(fused.iter().any(|f| f.source.contains("recip")));
    }

    #[test]
    fn elementwise_only_block_emits_flat_loop() {
        let mut g = Graph::new("chain");
        let mut v = g.add_input("x", Shape::new(vec![32]));
        for (i, op) in [OpKind::Relu, OpKind::Sigmoid, OpKind::Tanh]
            .iter()
            .enumerate()
        {
            v = g.add_op(*op, Attrs::new(), &[v], format!("n{i}")).unwrap()[0];
        }
        g.mark_output(v);
        let (_, plan, fused) = compile_blocks(&g);
        assert_eq!(plan.fused_layer_count(), 1);
        assert!(fused[0].source.contains("element-wise fused loop"));
        assert_eq!(fused[0].layout, Layout::RowMajor);
    }

    #[test]
    fn block_outputs_and_inputs_cross_block_boundaries_only() {
        let g = figure4_graph();
        let (ecg, plan, fused) = compile_blocks(&g);
        for op in &fused {
            for &input in &op.inputs {
                let v = ecg.graph().value(input);
                // External inputs are weights, graph inputs, or another
                // block's outputs.
                if let Some(p) = v.producer {
                    assert_ne!(plan.block_of(p), op.block_id);
                }
            }
        }
        assert_eq!(fused.len(), plan.fused_layer_count());
    }

    #[test]
    fn conv_block_prefers_nchw_layout() {
        let mut g = Graph::new("convblock");
        let x = g.add_input("x", Shape::new(vec![1, 4, 8, 8]));
        let w = g.add_weight("w", Shape::new(vec![4, 4, 3, 3]));
        let c = g
            .add_op(
                OpKind::Conv,
                Attrs::new().with_ints("pads", vec![1, 1, 1, 1]),
                &[x, w],
                "conv",
            )
            .unwrap()[0];
        let r = g.add_op(OpKind::Relu, Attrs::new(), &[c], "relu").unwrap()[0];
        g.mark_output(r);
        let (_, _, fused) = compile_blocks(&g);
        assert_eq!(fused[0].layout, Layout::Nchw);
    }
}
