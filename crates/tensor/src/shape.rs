//! Tensor shapes and row-major stride computation.

use std::fmt;

use crate::TensorError;

/// A tensor shape: an ordered list of dimension extents.
///
/// Rank-0 shapes (scalars) are represented by an empty dimension list and
/// have exactly one element.
///
/// # Example
///
/// ```
/// use dnnf_tensor::Shape;
///
/// let s = Shape::new(vec![2, 3, 4]);
/// assert_eq!(s.numel(), 24);
/// assert_eq!(s.strides(), vec![12, 4, 1]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct Shape {
    dims: Vec<usize>,
}

impl Shape {
    /// Creates a shape from its dimension extents.
    #[must_use]
    pub fn new(dims: Vec<usize>) -> Self {
        Shape { dims }
    }

    /// Creates a rank-0 (scalar) shape.
    #[must_use]
    pub fn scalar() -> Self {
        Shape { dims: Vec::new() }
    }

    /// Dimension extents.
    #[must_use]
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Number of dimensions.
    #[must_use]
    pub fn rank(&self) -> usize {
        self.dims.len()
    }

    /// Extent of dimension `axis`.
    ///
    /// # Panics
    ///
    /// Panics if `axis >= rank`.
    #[must_use]
    pub fn dim(&self, axis: usize) -> usize {
        self.dims[axis]
    }

    /// Total number of elements (product of extents, 1 for scalars).
    #[must_use]
    pub fn numel(&self) -> usize {
        self.dims.iter().product()
    }

    /// Whether any dimension is zero, i.e. the shape holds no elements.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.dims.contains(&0)
    }

    /// Row-major (C-order) strides, in elements.
    #[must_use]
    pub fn strides(&self) -> Vec<usize> {
        let mut strides = vec![1usize; self.dims.len()];
        for i in (0..self.dims.len().saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * self.dims[i + 1];
        }
        strides
    }

    /// Converts a multi-dimensional index into a row-major linear offset.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::IndexOutOfBounds`] if the index rank or any
    /// coordinate is out of bounds.
    pub fn linear_offset(&self, index: &[usize]) -> Result<usize, TensorError> {
        if index.len() != self.rank() || index.iter().zip(&self.dims).any(|(&i, &d)| i >= d) {
            return Err(TensorError::IndexOutOfBounds {
                index: index.to_vec(),
                shape: self.dims.clone(),
            });
        }
        Ok(self.linear_offset_unchecked(index))
    }

    /// Converts a multi-dimensional index into a linear offset without bounds
    /// checking. Out-of-range coordinates silently produce garbage offsets;
    /// callers in hot loops are expected to have validated shapes already.
    #[must_use]
    pub fn linear_offset_unchecked(&self, index: &[usize]) -> usize {
        let mut offset = 0usize;
        let mut stride = 1usize;
        for axis in (0..self.dims.len()).rev() {
            offset += index[axis] * stride;
            stride *= self.dims[axis];
        }
        offset
    }

    /// Converts a linear row-major offset back into a multi-dimensional index.
    #[must_use]
    pub fn multi_index(&self, mut offset: usize) -> Vec<usize> {
        let mut index = vec![0usize; self.rank()];
        for axis in (0..self.rank()).rev() {
            let d = self.dims[axis];
            if d > 0 {
                index[axis] = offset % d;
                offset /= d;
            }
        }
        index
    }

    /// Normalizes a possibly-negative ONNX-style axis to `0..rank`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidAxis`] if the axis is out of range.
    pub fn normalize_axis(&self, axis: i64) -> Result<usize, TensorError> {
        let rank = self.rank() as i64;
        let adjusted = if axis < 0 { axis + rank } else { axis };
        if adjusted < 0 || adjusted >= rank.max(1) {
            return Err(TensorError::InvalidAxis {
                axis: axis.unsigned_abs() as usize,
                rank: self.rank(),
            });
        }
        Ok(adjusted as usize)
    }

    /// Returns the shape obtained by removing dimension `axis`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidAxis`] if `axis >= rank`.
    pub fn remove_axis(&self, axis: usize) -> Result<Shape, TensorError> {
        if axis >= self.rank() {
            return Err(TensorError::InvalidAxis {
                axis,
                rank: self.rank(),
            });
        }
        let mut dims = self.dims.clone();
        dims.remove(axis);
        Ok(Shape::new(dims))
    }

    /// Returns the shape obtained by permuting dimensions with `perm`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidPermutation`] if `perm` is not a
    /// permutation of `0..rank`.
    pub fn permute(&self, perm: &[usize]) -> Result<Shape, TensorError> {
        if perm.len() != self.rank() {
            return Err(TensorError::InvalidPermutation {
                perm: perm.to_vec(),
                rank: self.rank(),
            });
        }
        let mut seen = vec![false; self.rank()];
        for &p in perm {
            if p >= self.rank() || seen[p] {
                return Err(TensorError::InvalidPermutation {
                    perm: perm.to_vec(),
                    rank: self.rank(),
                });
            }
            seen[p] = true;
        }
        Ok(Shape::new(perm.iter().map(|&p| self.dims[p]).collect()))
    }

    /// Size of this shape in bytes for an element of `elem_bytes` bytes.
    #[must_use]
    pub fn size_bytes(&self, elem_bytes: usize) -> usize {
        self.numel() * elem_bytes
    }
}

impl From<Vec<usize>> for Shape {
    fn from(dims: Vec<usize>) -> Self {
        Shape::new(dims)
    }
}

impl From<&[usize]> for Shape {
    fn from(dims: &[usize]) -> Self {
        Shape::new(dims.to_vec())
    }
}

impl<const N: usize> From<[usize; N]> for Shape {
    fn from(dims: [usize; N]) -> Self {
        Shape::new(dims.to_vec())
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, d) in self.dims.iter().enumerate() {
            if i > 0 {
                write!(f, "x")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numel_and_rank() {
        let s = Shape::new(vec![2, 3, 4]);
        assert_eq!(s.numel(), 24);
        assert_eq!(s.rank(), 3);
        assert_eq!(s.dim(1), 3);
        assert!(!s.is_empty());
        assert!(Shape::new(vec![2, 0, 4]).is_empty());
    }

    #[test]
    fn scalar_shape() {
        let s = Shape::scalar();
        assert_eq!(s.rank(), 0);
        assert_eq!(s.numel(), 1);
        assert_eq!(s.strides(), Vec::<usize>::new());
        assert_eq!(s.linear_offset(&[]).unwrap(), 0);
    }

    #[test]
    fn row_major_strides() {
        assert_eq!(Shape::new(vec![2, 3, 4]).strides(), vec![12, 4, 1]);
        assert_eq!(Shape::new(vec![5]).strides(), vec![1]);
    }

    #[test]
    fn linear_and_multi_index_roundtrip() {
        let s = Shape::new(vec![3, 4, 5]);
        for offset in 0..s.numel() {
            let idx = s.multi_index(offset);
            assert_eq!(s.linear_offset(&idx).unwrap(), offset);
        }
    }

    #[test]
    fn linear_offset_bounds_checking() {
        let s = Shape::new(vec![2, 2]);
        assert!(s.linear_offset(&[1, 1]).is_ok());
        assert!(s.linear_offset(&[2, 0]).is_err());
        assert!(s.linear_offset(&[0]).is_err());
    }

    #[test]
    fn normalize_axis_handles_negatives() {
        let s = Shape::new(vec![2, 3, 4]);
        assert_eq!(s.normalize_axis(-1).unwrap(), 2);
        assert_eq!(s.normalize_axis(0).unwrap(), 0);
        assert!(s.normalize_axis(3).is_err());
        assert!(s.normalize_axis(-4).is_err());
    }

    #[test]
    fn permute_validates_permutation() {
        let s = Shape::new(vec![2, 3, 4]);
        assert_eq!(s.permute(&[2, 0, 1]).unwrap(), Shape::new(vec![4, 2, 3]));
        assert!(s.permute(&[0, 0, 1]).is_err());
        assert!(s.permute(&[0, 1]).is_err());
        assert!(s.permute(&[0, 1, 3]).is_err());
    }

    #[test]
    fn remove_axis() {
        let s = Shape::new(vec![2, 3, 4]);
        assert_eq!(s.remove_axis(1).unwrap(), Shape::new(vec![2, 4]));
        assert!(s.remove_axis(3).is_err());
    }

    #[test]
    fn display_is_compact() {
        assert_eq!(
            Shape::new(vec![1, 3, 224, 224]).to_string(),
            "[1x3x224x224]"
        );
        assert_eq!(Shape::scalar().to_string(), "[]");
    }

    #[test]
    fn conversions_from_arrays_and_slices() {
        let a: Shape = [2usize, 3].into();
        let b: Shape = vec![2usize, 3].into();
        let c: Shape = (&[2usize, 3][..]).into();
        assert_eq!(a, b);
        assert_eq!(b, c);
    }

    #[test]
    fn size_bytes_scales_with_element_width() {
        let s = Shape::new(vec![10, 10]);
        assert_eq!(s.size_bytes(4), 400);
        assert_eq!(s.size_bytes(2), 200);
    }
}
